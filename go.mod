module bwcs

go 1.23
