package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/protocol"
	"bwcs/internal/textplot"
)

// AblationPolicyResult compares child-selection policies at equal fixed
// buffers (3 per node, no interruption), isolating the paper's
// bandwidth-centric ordering claim from buffering and preemption effects.
// This experiment is not in the paper; DESIGN.md calls it out as an
// ablation of the central design choice.
type AblationPolicyResult struct {
	Options     Options
	Populations []Population
}

// AblationPolicy runs all five orderings over the same population.
func AblationPolicy(o Options) (*AblationPolicyResult, error) {
	protos := []protocol.Protocol{
		protocol.NonInterruptibleFixed(3).WithOrder(protocol.BandwidthCentric),
		protocol.NonInterruptibleFixed(3).WithOrder(protocol.ComputeCentric),
		protocol.NonInterruptibleFixed(3).WithOrder(protocol.FCFS),
		protocol.NonInterruptibleFixed(3).WithOrder(protocol.RoundRobin),
		protocol.NonInterruptibleFixed(3).WithOrder(protocol.Random),
	}
	pops, err := RunPopulation(o, protos)
	if err != nil {
		return nil, err
	}
	return &AblationPolicyResult{Options: o, Populations: pops}, nil
}

// Render writes reached fractions and mean makespans per policy.
func (r *AblationPolicyResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: child-selection policy at fixed buffers (FB=3, no interruption)")
	labels := make([]string, len(r.Populations))
	reached := make([]float64, len(r.Populations))
	for i := range r.Populations {
		p := &r.Populations[i]
		labels[i] = p.Protocol.Order.String()
		reached[i] = 100 * p.ReachedFraction()
	}
	if err := textplot.Bars(w, "trees reaching optimal steady state (%)", labels, reached, 40); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-20s %10s %14s\n", "policy", "reached", "mean makespan")
	for i := range r.Populations {
		p := &r.Populations[i]
		var sum int64
		for j := range p.Outcomes {
			sum += int64(p.Outcomes[j].Makespan)
		}
		fmt.Fprintf(w, "%-20s %9.2f%% %14.0f\n", labels[i], reached[i], float64(sum)/float64(len(p.Outcomes)))
	}
	fmt.Fprintf(w, "\n%d trees, %d tasks\n", r.Options.Trees, r.Options.Tasks)
	return nil
}

// AblationInterruptResult compares IC against non-IC at equal fixed
// buffer budgets, isolating the value of interruption itself (the paper
// only compares IC FB=k against non-IC with growth).
type AblationInterruptResult struct {
	Options Options
	Buffers []int
	IC      []float64 // reached fraction under IC FB=b
	NonIC   []float64 // reached fraction under non-IC FB=b (no growth)
}

// AblationInterrupt runs both protocol families at FB in 1..3.
func AblationInterrupt(o Options) (*AblationInterruptResult, error) {
	out := &AblationInterruptResult{Options: o}
	for fb := 1; fb <= 3; fb++ {
		pops, err := RunPopulation(o, []protocol.Protocol{
			protocol.Interruptible(fb),
			protocol.NonInterruptibleFixed(fb),
		})
		if err != nil {
			return nil, err
		}
		out.Buffers = append(out.Buffers, fb)
		out.IC = append(out.IC, pops[0].ReachedFraction())
		out.NonIC = append(out.NonIC, pops[1].ReachedFraction())
	}
	return out, nil
}

// Render writes the comparison table.
func (r *AblationInterruptResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: interruption at equal fixed buffers (% of trees reaching optimal)")
	fmt.Fprintf(w, "%-8s %12s %12s %12s\n", "buffers", "IC", "non-IC", "IC gain")
	for i, fb := range r.Buffers {
		fmt.Fprintf(w, "%-8d %11.2f%% %11.2f%% %+11.2f%%\n",
			fb, 100*r.IC[i], 100*r.NonIC[i], 100*(r.IC[i]-r.NonIC[i]))
	}
	fmt.Fprintf(w, "\n%d trees, %d tasks\n", r.Options.Trees, r.Options.Tasks)
	return nil
}
