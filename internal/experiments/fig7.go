package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/rational"
	"bwcs/internal/sim"
	"bwcs/internal/textplot"
	"bwcs/internal/tree"
)

// Fig7Scenario is one curve of the paper's Figure 7: a run on the
// Figure 1 platform, optionally mutating P1's weights after 200 tasks.
type Fig7Scenario struct {
	Name string
	// Completions[k] is when task k+1 finished; the cumulative-completion
	// curve of Figure 7 plots (time, k+1).
	Completions []sim.Time
	// OptimalBefore and OptimalAfter are the optimal steady-state rates of
	// the platform before and after the mutation (equal when there is no
	// mutation); Figure 7's dashed lines have these slopes.
	OptimalBefore rational.Rat
	OptimalAfter  rational.Rat
	// TailRate is the measured rate over the post-mutation tail of the
	// run, for comparing against OptimalAfter.
	TailRate float64
}

// Fig7Result reproduces Figure 7: adaptability of the autonomous protocol
// to communication contention (c1: 1→3) and processor contention
// (w1: 3→1), each triggered after 200 completed tasks of a 1000-task run
// under the non-interruptible protocol with two fixed buffers (as in the
// paper's Section 4.2.3).
type Fig7Result struct {
	Tasks     int64
	MutateAt  int64
	Scenarios []Fig7Scenario
}

// Fig7 runs the adaptability experiment. tasks and mutateAt default to the
// paper's 1000 and 200 when zero.
func Fig7(tasks, mutateAt int64) (*Fig7Result, error) {
	if tasks == 0 {
		tasks = 1000
	}
	if mutateAt == 0 {
		mutateAt = 200
	}
	if mutateAt >= tasks {
		return nil, fmt.Errorf("fig7: mutation at %d but only %d tasks", mutateAt, tasks)
	}
	proto := protocol.NonInterruptibleFixed(2)

	type scenario struct {
		name string
		mut  []engine.Mutation
		alt  func(*tree.Tree) // applies the mutation to a copy for the optimal rate
	}
	scenarios := []scenario{
		{name: "c1=1, w1=3 (baseline)"},
		{
			name: "at 200 tasks, c1=3",
			mut:  []engine.Mutation{{AfterTasks: mutateAt, Node: P1, C: 3}},
			alt:  func(t *tree.Tree) { t.SetC(P1, 3) },
		},
		{
			name: "at 200 tasks, w1=1",
			mut:  []engine.Mutation{{AfterTasks: mutateAt, Node: P1, W: 1}},
			alt:  func(t *tree.Tree) { t.SetW(P1, 1) },
		},
	}

	out := &Fig7Result{Tasks: tasks, MutateAt: mutateAt}
	base := ExampleTree()
	optBefore := optimal.Weight(base).Inv()
	for _, sc := range scenarios {
		res, err := engine.Run(engine.Config{
			Tree:      ExampleTree(),
			Protocol:  proto,
			Tasks:     tasks,
			Mutations: sc.mut,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7 %q: %w", sc.name, err)
		}
		after := optBefore
		if sc.alt != nil {
			mutated := ExampleTree()
			sc.alt(mutated)
			after = optimal.Weight(mutated).Inv()
		}
		s := Fig7Scenario{
			Name:          sc.name,
			Completions:   res.Completions,
			OptimalBefore: optBefore,
			OptimalAfter:  after,
		}
		// Measured tail rate: tasks completed per time between the
		// mutation point (plus slack for re-adaptation) and the end.
		from := mutateAt + (tasks-mutateAt)/4
		dt := res.Completions[tasks-1] - res.Completions[from-1]
		if dt > 0 {
			s.TailRate = float64(tasks-from) / float64(dt)
		}
		out.Scenarios = append(out.Scenarios, s)
	}
	return out, nil
}

// Render writes the Figure 7 report: the cumulative-completion chart and a
// table of measured tail rates against per-phase optimal rates.
func (r *Fig7Result) Render(w io.Writer) error {
	chart := textplot.NewChart("Figure 7: adaptability on the Figure 1 platform (cumulative completions)", 72, 20).
		Labels("timesteps", "tasks completed")
	for _, sc := range r.Scenarios {
		xs := make([]float64, len(sc.Completions))
		ys := make([]float64, len(sc.Completions))
		for i, c := range sc.Completions {
			xs[i] = float64(c)
			ys[i] = float64(i + 1)
		}
		chart.Line(sc.Name, xs, ys)
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-28s %14s %14s %14s %8s\n", "scenario", "opt before", "opt after", "tail rate", "ratio")
	for _, sc := range r.Scenarios {
		ratio := 0.0
		if f := sc.OptimalAfter.Float64(); f > 0 {
			ratio = sc.TailRate / f
		}
		fmt.Fprintf(w, "%-28s %14s %14s %14.5f %8.3f\n",
			sc.Name, sc.OptimalBefore.Format(5), sc.OptimalAfter.Format(5), sc.TailRate, ratio)
	}
	fmt.Fprintf(w, "\nmutation after %d of %d tasks; protocol %s; ratio = measured tail rate / optimal-after\n",
		r.MutateAt, r.Tasks, protocol.NonInterruptibleFixed(2))
	return nil
}
