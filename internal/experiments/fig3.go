package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/protocol"

	"bwcs/internal/textplot"
)

// Fig3Exemplar is one of the three illustrative trees of Figure 3.
type Fig3Exemplar struct {
	Name  string
	Index int // tree index within the population
	// Normalized is the windowed rate normalized to the tree's optimal
	// steady-state rate; entry x-1 is window x (rate between completions
	// of tasks x and 2x).
	Normalized []float64
	Reached    bool
	Onset      int
}

// Fig3Result reproduces Figure 3: normalized sliding-growing-window
// throughput for three trees chosen to illustrate why onset detection is
// hard — one that spikes above optimal early yet settles just below
// (tree 1), one that stays well below optimal (tree 2), and one that
// climbs steadily and reaches it (tree 3).
type Fig3Result struct {
	Tasks     int64
	Exemplars []Fig3Exemplar
}

// Fig3 scans the population for the three behaviours and returns their
// full window series under IC FB=3.
func Fig3(o Options) (*Fig3Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	proto := protocol.Interruptible(3)
	out := &Fig3Result{Tasks: o.Tasks}

	var spiky, below, reached *Fig3Exemplar
	earlyCut := o.Threshold / 3
	if earlyCut < 10 {
		earlyCut = 10
	}
	// The scan is serial, so one Evaluator recycles run state across
	// every tree; the series built from res.Completions is consumed
	// before the next evaluation invalidates it.
	eval := NewEvaluator()
	for i := 0; i < o.Trees && (spiky == nil || below == nil || reached == nil); i++ {
		oc, _, err := eval.EvaluateTree(o, proto, i, nil)
		if err != nil {
			return nil, err
		}
		series := eval.Series()
		earlySpike := false
		for x := 1; x <= earlyCut && x <= series.Windows(); x++ {
			if series.AboveOptimal(x) {
				earlySpike = true
				break
			}
		}
		ex := Fig3Exemplar{Index: i, Normalized: series.NormalizedSeries(), Reached: oc.Reached, Onset: oc.Onset}
		switch {
		case !oc.Reached && earlySpike && spiky == nil:
			ex.Name = "tree 1 (early spikes, settles near optimal)"
			spiky = &ex
		case !oc.Reached && !earlySpike && below == nil:
			ex.Name = "tree 2 (well below optimal)"
			below = &ex
		case oc.Reached && reached == nil:
			ex.Name = "tree 3 (climbs to optimal)"
			reached = &ex
		}
	}
	for _, ex := range []*Fig3Exemplar{spiky, below, reached} {
		if ex != nil {
			out.Exemplars = append(out.Exemplars, *ex)
		}
	}
	if len(out.Exemplars) == 0 {
		return nil, fmt.Errorf("fig3: no exemplars found in %d trees", o.Trees)
	}
	return out, nil
}

// Render writes the startup view (Figure 3a) and the whole-run view
// (Figure 3b) plus a summary table.
func (r *Fig3Result) Render(w io.Writer) error {
	startup := textplot.NewChart("Figure 3(a): normalized windowed throughput — startup", 72, 16).
		Labels("window start (tasks completed)", "rate / optimal")
	full := textplot.NewChart("Figure 3(b): normalized windowed throughput — entire run", 72, 16).
		Labels("window start (tasks completed)", "rate / optimal")
	for _, ex := range r.Exemplars {
		n := len(ex.Normalized)
		cut := n / 5
		if cut < 1 {
			cut = n
		}
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i + 1)
		}
		startup.Line(ex.Name, xs[:cut], ex.Normalized[:cut])
		full.Line(ex.Name, xs, ex.Normalized)
	}
	if err := startup.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := full.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-45s %8s %8s %8s\n", "exemplar", "tree", "reached", "onset")
	for _, ex := range r.Exemplars {
		onset := "-"
		if ex.Reached {
			onset = fmt.Sprintf("%d", ex.Onset)
		}
		fmt.Fprintf(w, "%-45s %8d %8v %8s\n", ex.Name, ex.Index, ex.Reached, onset)
	}
	return nil
}
