// Package experiments reproduces the paper's evaluation (Section 4): one
// harness per table and figure, each with a typed result and a text
// renderer, plus the ablation studies called out in DESIGN.md.
//
// Every experiment draws its random trees with randtree.TreeAt, keyed by
// (seed, tree index), so results are identical no matter how many workers
// run the sweep, and any individual tree can be regenerated for debugging.
//
// The paper's full scale (25,000 trees × 10,000 tasks) is reachable by
// raising Options; the defaults are scaled down to keep the harness
// interactive while preserving every qualitative shape (see EXPERIMENTS.md
// for measured-vs-paper numbers at both scales).
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/sim"
	"bwcs/internal/stats"
	"bwcs/internal/window"
)

// Options scales an experiment run.
type Options struct {
	// Trees is the number of random trees in the population. The paper
	// uses 25,000 for Figure 4/Table 1 and 1,000 per class for Figure 5.
	Trees int
	// Tasks is the application size. The paper uses 10,000 for Figure 4
	// and 4,000 for Figure 5/Table 2.
	Tasks int64
	// Threshold is the onset detector's window threshold (paper: 300).
	Threshold int
	// Seed drives tree generation and any randomized baseline policy.
	Seed uint64
	// Params generates the tree population.
	Params randtree.Params
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int

	// Progress, when non-nil, observes sweep advancement: it is called
	// after each simulated tree with the number of trees finished so far
	// in the current population and the population size. Calls are
	// serialized (done is strictly increasing) but arrive from worker
	// goroutines, so the callback must be fast and must not call back
	// into the sweep. Reporting does not perturb results: the tree
	// population and all outcomes are independent of it.
	Progress func(done, total int)
}

// Default returns scaled-down defaults that preserve the paper's shapes:
// the population is smaller but the tree distribution, task counts and
// detector threshold match the paper's methodology.
func Default() Options {
	return Options{
		Trees:     400,
		Tasks:     2_000,
		Threshold: window.DefaultThreshold,
		Seed:      2003, // the paper's year; any fixed seed works
		Params:    randtree.Defaults(),
	}
}

// Paper returns the paper's full experiment scale for Figure 4 and
// Table 1: 25,000 trees by 10,000 tasks.
func Paper() Options {
	o := Default()
	o.Trees = 25_000
	o.Tasks = 10_000
	return o
}

// Validate reports whether the options are runnable.
func (o Options) Validate() error {
	if o.Trees < 1 {
		return fmt.Errorf("experiments: trees %d < 1", o.Trees)
	}
	if o.Tasks < 2 {
		return fmt.Errorf("experiments: tasks %d < 2", o.Tasks)
	}
	if o.Threshold < 0 {
		return fmt.Errorf("experiments: negative threshold %d", o.Threshold)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative workers %d", o.Workers)
	}
	return o.Params.Validate()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TreeOutcome is the per-tree measurement every population experiment
// shares: did the run reach the optimal steady state, when, and at what
// buffer cost.
type TreeOutcome struct {
	Index int // tree index within the population (regenerable via TreeAt)

	// Platform shape.
	Nodes int
	Depth int

	// Steady-state detection (paper Section 4.1).
	Reached bool
	Onset   int // window index of the second above-optimal point

	// Buffer usage (non-IC growth; constant for fixed-buffer protocols):
	// MaxNodeBuffers is the largest grown capacity at any node;
	// MaxNodeUsed the most tasks any node ever had queued — the buffers
	// the run actually needed (the paper's m = MAX(m_i), which Tables 1
	// and 2 report).
	MaxNodeBuffers int64
	MaxNodeUsed    int64
	TotalBuffers   int64

	// Used subtree: nodes that computed at least one task (Figure 6).
	UsedNodes int
	UsedDepth int

	Makespan sim.Time
}

// SweepMetrics instruments one population sweep: wall-clock throughput
// plus the engine counters summed over every tree in the population. The
// Engine aggregate is deterministic (integer sums over deterministic
// runs); Elapsed and TreesPerSec are wall-clock measurements.
type SweepMetrics struct {
	Elapsed     time.Duration
	TreesPerSec float64
	Engine      engine.Metrics
}

// Population is the outcome of one protocol over the whole tree
// population.
type Population struct {
	Protocol protocol.Protocol
	Outcomes []TreeOutcome
	Sweep    SweepMetrics
}

// ReachedFraction returns the fraction of trees that reached the optimal
// steady-state rate.
func (p *Population) ReachedFraction() float64 {
	n := 0
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			n++
		}
	}
	if len(p.Outcomes) == 0 {
		return 0
	}
	return float64(n) / float64(len(p.Outcomes))
}

// OnsetCDF returns the paper's Figure 4 curve: the fraction of all trees
// whose onset window is <= x, for each x in xs (ascending).
func (p *Population) OnsetCDF(xs []int64) []float64 {
	c := stats.NewCDF()
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			c.AddReached(int64(p.Outcomes[i].Onset))
		} else {
			c.AddNotReached()
		}
	}
	return c.Series(xs)
}

// MedianOnset returns the median onset window among trees that reached the
// optimal steady state, quantifying startup length (the paper observes
// much longer startups under non-IC). It returns 0 when no tree reached.
func (p *Population) MedianOnset() int64 {
	var onsets []int64
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			onsets = append(onsets, int64(p.Outcomes[i].Onset))
		}
	}
	if len(onsets) == 0 {
		return 0
	}
	return stats.Median(onsets)
}

// ReachedWithAtMostBuffers returns the fraction of all trees that both
// reached the optimal rate and never needed more than n buffered tasks at
// any single node (Table 1's non-IC row).
func (p *Population) ReachedWithAtMostBuffers(n int64) float64 {
	count := 0
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached && p.Outcomes[i].MaxNodeUsed <= n {
			count++
		}
	}
	if len(p.Outcomes) == 0 {
		return 0
	}
	return float64(count) / float64(len(p.Outcomes))
}

// EvaluateTree runs one protocol on one tree and reduces the run to a
// TreeOutcome. Checkpoints, when non-nil, are passed through to the engine
// (Table 2 snapshots buffer usage mid-run); the raw result is returned for
// experiments that need more than the outcome summary.
func EvaluateTree(o Options, p protocol.Protocol, index int, checkpoints []int64) (TreeOutcome, *engine.Result, error) {
	tr := randtree.TreeAt(o.Params, o.Seed, index)
	res, err := engine.Run(engine.Config{
		Tree:        tr,
		Protocol:    p,
		Tasks:       o.Tasks,
		Seed:        o.Seed + uint64(index),
		Checkpoints: checkpoints,
	})
	if err != nil {
		return TreeOutcome{}, nil, fmt.Errorf("tree %d under %v: %w", index, p, err)
	}
	opt := optimal.Compute(tr)
	series, err := window.New(res.Completions, opt.TreeWeight)
	if err != nil {
		return TreeOutcome{}, nil, fmt.Errorf("tree %d under %v: %w", index, p, err)
	}
	out := TreeOutcome{
		Index:          index,
		Nodes:          tr.Len(),
		Depth:          tr.MaxDepth(),
		MaxNodeBuffers: res.MaxNodeBuffers(),
		MaxNodeUsed:    res.MaxNodeUsed(),
		TotalBuffers:   res.TotalBuffers(),
		UsedNodes:      res.UsedCount(),
		UsedDepth:      res.UsedMaxDepth(),
		Makespan:       res.Makespan,
	}
	out.Onset, out.Reached = series.Onset(o.Threshold)
	return out, res, nil
}

// RunPopulation evaluates each protocol over the same tree population in
// parallel and returns one Population per protocol, in order.
func RunPopulation(o Options, protos []protocol.Protocol) ([]Population, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("experiments: no protocols")
	}
	out := make([]Population, len(protos))
	for pi, p := range protos {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		outcomes := make([]TreeOutcome, o.Trees)
		var (
			mu    sync.Mutex
			agg   engine.Metrics
			done  int
			start = time.Now()
		)
		if err := parallelFor(o.Trees, o.workers(), func(i int) error {
			oc, res, err := EvaluateTree(o, p, i, nil)
			if err != nil {
				return err
			}
			outcomes[i] = oc
			mu.Lock()
			agg.Add(res.Metrics)
			done++
			d := done
			if o.Progress != nil {
				o.Progress(d, o.Trees)
			}
			mu.Unlock()
			return nil
		}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		sweep := SweepMetrics{Elapsed: elapsed, Engine: agg}
		if s := elapsed.Seconds(); s > 0 {
			sweep.TreesPerSec = float64(o.Trees) / s
		}
		out[pi] = Population{Protocol: p, Outcomes: outcomes, Sweep: sweep}
	}
	return out, nil
}

// parallelFor runs fn(0..n-1) across at most workers goroutines and
// returns the first error encountered, wrapped with the failing index
// (all workers drain before return, so every index is either processed
// or abandoned deterministically).
func parallelFor(n, workers int, fn func(i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return fmt.Errorf("experiments: index %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("experiments: index %d: %w", i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// gridInt64 returns points spaced evenly from step to max inclusive.
func gridInt64(max, points int) []int64 {
	if points < 2 {
		points = 2
	}
	out := make([]int64, points)
	for i := range out {
		out[i] = int64((i + 1) * max / points)
	}
	return out
}

// toFloats converts for plotting.
func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
