// Package experiments reproduces the paper's evaluation (Section 4): one
// harness per table and figure, each with a typed result and a text
// renderer, plus the ablation studies called out in DESIGN.md.
//
// Every experiment draws its random trees with randtree.TreeAt, keyed by
// (seed, tree index), so results are identical no matter how many workers
// run the sweep, and any individual tree can be regenerated for debugging.
//
// The paper's full scale (25,000 trees × 10,000 tasks) is reachable by
// raising Options; the defaults are scaled down to keep the harness
// interactive while preserving every qualitative shape (see EXPERIMENTS.md
// for measured-vs-paper numbers at both scales).
package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/sim"
	"bwcs/internal/stats"
	"bwcs/internal/window"
)

// Options scales an experiment run.
type Options struct {
	// Trees is the number of random trees in the population. The paper
	// uses 25,000 for Figure 4/Table 1 and 1,000 per class for Figure 5.
	Trees int
	// Tasks is the application size. The paper uses 10,000 for Figure 4
	// and 4,000 for Figure 5/Table 2.
	Tasks int64
	// Threshold is the onset detector's window threshold (paper: 300).
	Threshold int
	// Seed drives tree generation and any randomized baseline policy.
	Seed uint64
	// Params generates the tree population.
	Params randtree.Params
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int

	// Progress, when non-nil, observes sweep advancement: it is called
	// after each simulated tree with the number of trees finished so far
	// in the current population and the population size. Calls are
	// serialized and done increases by exactly one per call, but they
	// arrive from worker goroutines. The callback runs outside the
	// sweep's aggregation lock, so a slow callback delays reporting but
	// never serializes the workers; it must not call back into the
	// sweep. Reporting does not perturb results: the tree population and
	// all outcomes are independent of it.
	Progress func(done, total int)

	// Stream, when true, makes RunPopulation aggregate each tree's
	// outcome incrementally instead of materializing the Outcomes slice:
	// the returned Populations carry a nil Outcomes and a PopulationAgg
	// holding the same aggregates (reached fraction, onset CDF, median
	// onset, buffer maxima) bit-identical to the materialized path, in
	// O(Tasks) memory regardless of tree count. Experiments that need
	// per-tree records (Figure 6's shape histograms, ablations) must run
	// materialized.
	Stream bool

	// Observer, when non-nil, receives every TreeOutcome as it
	// completes, from worker goroutines, unordered. It lets streaming
	// callers keep custom per-tree statistics without materializing the
	// population. The callback must be safe for concurrent use.
	Observer func(TreeOutcome)
}

// Default returns scaled-down defaults that preserve the paper's shapes:
// the population is smaller but the tree distribution, task counts and
// detector threshold match the paper's methodology.
func Default() Options {
	return Options{
		Trees:     400,
		Tasks:     2_000,
		Threshold: window.DefaultThreshold,
		Seed:      2003, // the paper's year; any fixed seed works
		Params:    randtree.Defaults(),
	}
}

// Paper returns the paper's full experiment scale for Figure 4 and
// Table 1: 25,000 trees by 10,000 tasks.
func Paper() Options {
	o := Default()
	o.Trees = 25_000
	o.Tasks = 10_000
	return o
}

// Validate reports whether the options are runnable.
func (o Options) Validate() error {
	if o.Trees < 1 {
		return fmt.Errorf("experiments: trees %d < 1", o.Trees)
	}
	if o.Tasks < 2 {
		return fmt.Errorf("experiments: tasks %d < 2", o.Tasks)
	}
	if o.Threshold < 0 {
		return fmt.Errorf("experiments: negative threshold %d", o.Threshold)
	}
	if o.Workers < 0 {
		return fmt.Errorf("experiments: negative workers %d", o.Workers)
	}
	return o.Params.Validate()
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// TreeOutcome is the per-tree measurement every population experiment
// shares: did the run reach the optimal steady state, when, and at what
// buffer cost.
type TreeOutcome struct {
	Index int // tree index within the population (regenerable via TreeAt)

	// Platform shape.
	Nodes int
	Depth int

	// Steady-state detection (paper Section 4.1).
	Reached bool
	Onset   int // window index of the second above-optimal point

	// Buffer usage (non-IC growth; constant for fixed-buffer protocols):
	// MaxNodeBuffers is the largest grown capacity at any node;
	// MaxNodeUsed the most tasks any node ever had queued — the buffers
	// the run actually needed (the paper's m = MAX(m_i), which Tables 1
	// and 2 report).
	MaxNodeBuffers int64
	MaxNodeUsed    int64
	TotalBuffers   int64

	// Used subtree: nodes that computed at least one task (Figure 6).
	UsedNodes int
	UsedDepth int

	Makespan sim.Time
}

// SweepMetrics instruments one population sweep: wall-clock throughput
// plus the engine counters summed over every tree in the population. The
// Engine aggregate is deterministic (integer sums over deterministic
// runs) with one caveat: FreeListHits and EventAllocs depend on how warm
// each worker's reused run state is, so their split varies with the
// worker count and work partition (their sum, the total Schedule count,
// stays deterministic). Elapsed and TreesPerSec are wall-clock
// measurements.
type SweepMetrics struct {
	Elapsed     time.Duration
	TreesPerSec float64
	Engine      engine.Metrics
}

// PopulationAgg is the streaming aggregate of one protocol's population
// sweep. It holds counting histograms over the per-tree outcome fields
// the figures and tables consume, so every aggregate the materialized
// Population offers is available — bit-identical — without retaining a
// TreeOutcome per tree. Onset windows are bounded by Tasks/2 and buffer
// counts by Tasks, so the histograms take O(Tasks) memory regardless of
// how many trees the sweep visits.
type PopulationAgg struct {
	Trees   int // trees observed
	Reached int // trees that reached the optimal steady state

	onsets      *stats.Counter // onset window per reached tree
	reachedUsed *stats.Counter // MaxNodeUsed per reached tree

	// Population-wide maxima (zero when no trees were observed).
	MaxNodeBuffersMax int64
	MaxNodeUsedMax    int64
	TotalBuffersMax   int64
}

// NewPopulationAgg returns an empty streaming aggregate.
func NewPopulationAgg() *PopulationAgg {
	return &PopulationAgg{onsets: stats.NewCounter(), reachedUsed: stats.NewCounter()}
}

// Observe folds one tree's outcome into the aggregate. It is not safe
// for concurrent use; RunPopulation serializes calls under its
// aggregation lock. Observation order does not affect any aggregate.
func (a *PopulationAgg) Observe(oc TreeOutcome) {
	a.Trees++
	if oc.Reached {
		a.Reached++
		a.onsets.Add(int64(oc.Onset))
		a.reachedUsed.Add(oc.MaxNodeUsed)
	}
	a.MaxNodeBuffersMax = max(a.MaxNodeBuffersMax, oc.MaxNodeBuffers)
	a.MaxNodeUsedMax = max(a.MaxNodeUsedMax, oc.MaxNodeUsed)
	a.TotalBuffersMax = max(a.TotalBuffersMax, oc.TotalBuffers)
}

// ReachedFraction returns the fraction of trees that reached the optimal
// steady-state rate.
func (a *PopulationAgg) ReachedFraction() float64 {
	if a.Trees == 0 {
		return 0
	}
	return float64(a.Reached) / float64(a.Trees)
}

// OnsetCDF returns the Figure 4 curve from the onset histogram: the
// fraction of all trees with onset <= x for each x in xs (ascending).
func (a *PopulationAgg) OnsetCDF(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if i > 0 && x < xs[i-1] {
			panic("experiments: CDF series points must be ascending")
		}
		if a.Trees == 0 {
			continue
		}
		out[i] = float64(a.onsets.CountAtMost(x)) / float64(a.Trees)
	}
	return out
}

// MedianOnset returns the median onset window among reached trees, or 0
// when none reached.
func (a *PopulationAgg) MedianOnset() int64 {
	if a.onsets.Total() == 0 {
		return 0
	}
	return a.onsets.Median()
}

// ReachedWithAtMostBuffers returns the fraction of all trees that both
// reached the optimal rate and never needed more than n buffered tasks
// at any single node.
func (a *PopulationAgg) ReachedWithAtMostBuffers(n int64) float64 {
	if a.Trees == 0 {
		return 0
	}
	return float64(a.reachedUsed.CountAtMost(n)) / float64(a.Trees)
}

// Population is the outcome of one protocol over the whole tree
// population. Outcomes is nil when the sweep ran with Options.Stream;
// the aggregate methods below answer from Agg in that case and remain
// bit-identical to the materialized computation.
type Population struct {
	Protocol protocol.Protocol
	Outcomes []TreeOutcome
	Agg      *PopulationAgg
	Sweep    SweepMetrics
}

// ReachedFraction returns the fraction of trees that reached the optimal
// steady-state rate.
func (p *Population) ReachedFraction() float64 {
	if p.Outcomes == nil && p.Agg != nil {
		return p.Agg.ReachedFraction()
	}
	n := 0
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			n++
		}
	}
	if len(p.Outcomes) == 0 {
		return 0
	}
	return float64(n) / float64(len(p.Outcomes))
}

// OnsetCDF returns the paper's Figure 4 curve: the fraction of all trees
// whose onset window is <= x, for each x in xs (ascending).
func (p *Population) OnsetCDF(xs []int64) []float64 {
	if p.Outcomes == nil && p.Agg != nil {
		return p.Agg.OnsetCDF(xs)
	}
	c := stats.NewCDF()
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			c.AddReached(int64(p.Outcomes[i].Onset))
		} else {
			c.AddNotReached()
		}
	}
	return c.Series(xs)
}

// MedianOnset returns the median onset window among trees that reached the
// optimal steady state, quantifying startup length (the paper observes
// much longer startups under non-IC). It returns 0 when no tree reached.
func (p *Population) MedianOnset() int64 {
	if p.Outcomes == nil && p.Agg != nil {
		return p.Agg.MedianOnset()
	}
	var onsets []int64
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached {
			onsets = append(onsets, int64(p.Outcomes[i].Onset))
		}
	}
	if len(onsets) == 0 {
		return 0
	}
	return stats.Median(onsets)
}

// ReachedWithAtMostBuffers returns the fraction of all trees that both
// reached the optimal rate and never needed more than n buffered tasks at
// any single node (Table 1's non-IC row).
func (p *Population) ReachedWithAtMostBuffers(n int64) float64 {
	if p.Outcomes == nil && p.Agg != nil {
		return p.Agg.ReachedWithAtMostBuffers(n)
	}
	count := 0
	for i := range p.Outcomes {
		if p.Outcomes[i].Reached && p.Outcomes[i].MaxNodeUsed <= n {
			count++
		}
	}
	if len(p.Outcomes) == 0 {
		return 0
	}
	return float64(count) / float64(len(p.Outcomes))
}

// Evaluator runs trees through a persistent engine.Runner, so the event
// free list, node table and completions buffer recycle across trees
// instead of being reallocated per run. It is not safe for concurrent
// use: sweeps hold one Evaluator per worker. The *engine.Result an
// evaluation returns aliases the Evaluator's buffers and is valid only
// until the next EvaluateTree call.
type Evaluator struct {
	r      *engine.Runner
	series *window.Series
}

// NewEvaluator returns an Evaluator with cold run state.
func NewEvaluator() *Evaluator { return &Evaluator{r: engine.NewRunner()} }

// EvaluateTree runs one protocol on one tree and reduces the run to a
// TreeOutcome. Checkpoints, when non-nil, are passed through to the engine
// (Table 2 snapshots buffer usage mid-run); the raw result is returned for
// experiments that need more than the outcome summary, and is valid only
// until this Evaluator's next run.
func (ev *Evaluator) EvaluateTree(o Options, p protocol.Protocol, index int, checkpoints []int64) (TreeOutcome, *engine.Result, error) {
	tr := randtree.TreeAt(o.Params, o.Seed, index)
	res, err := ev.r.Run(engine.Config{
		Tree:        tr,
		Protocol:    p,
		Tasks:       o.Tasks,
		Seed:        o.Seed + uint64(index),
		Checkpoints: checkpoints,
	})
	if err != nil {
		return TreeOutcome{}, nil, fmt.Errorf("tree %d under %v: %w", index, p, err)
	}
	series, err := window.New(res.Completions, optimal.Weight(tr))
	if err != nil {
		return TreeOutcome{}, nil, fmt.Errorf("tree %d under %v: %w", index, p, err)
	}
	ev.series = series
	out := TreeOutcome{
		Index:          index,
		Nodes:          tr.Len(),
		Depth:          tr.MaxDepth(),
		MaxNodeBuffers: res.MaxNodeBuffers(),
		MaxNodeUsed:    res.MaxNodeUsed(),
		TotalBuffers:   res.TotalBuffers(),
		UsedNodes:      res.UsedCount(),
		UsedDepth:      res.UsedMaxDepth(),
		Makespan:       res.Makespan,
	}
	out.Onset, out.Reached = series.Onset(o.Threshold)
	return out, res, nil
}

// Series returns the window series built by the last EvaluateTree call.
// Like the *engine.Result, it aliases the Evaluator's buffers and is
// valid only until the next EvaluateTree call.
func (ev *Evaluator) Series() *window.Series { return ev.series }

// EvaluateTree runs one tree through a fresh Evaluator. The result does
// not alias shared state, so it may be retained; sweeps should prefer a
// per-worker Evaluator to recycle run state across trees.
func EvaluateTree(o Options, p protocol.Protocol, index int, checkpoints []int64) (TreeOutcome, *engine.Result, error) {
	return NewEvaluator().EvaluateTree(o, p, index, checkpoints)
}

// RunPopulation evaluates each protocol over the same tree population in
// parallel and returns one Population per protocol, in order. Each
// worker reuses one Evaluator for the whole sweep, and every Population
// carries the streaming aggregate; with o.Stream the per-tree Outcomes
// slice is not materialized at all.
func RunPopulation(o Options, protos []protocol.Protocol) ([]Population, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("experiments: no protocols")
	}
	workers := o.workers()
	evals := make([]*Evaluator, workers)
	for i := range evals {
		evals[i] = NewEvaluator()
	}
	out := make([]Population, len(protos))
	for pi, p := range protos {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		var outcomes []TreeOutcome
		if !o.Stream {
			outcomes = make([]TreeOutcome, o.Trees)
		}
		popAgg := NewPopulationAgg()
		var (
			mu         sync.Mutex // guards agg, popAgg, done
			agg        engine.Metrics
			done       int
			progressMu sync.Mutex // serializes Progress callbacks
			reported   int        // guarded by mu; last done value reported
			start      = time.Now()
		)
		// report drains pending progress values outside mu: whoever wins
		// progressMu reports each done value 1..Trees exactly once, in
		// order, while losers return immediately — a slow callback
		// therefore delays reporting, never the workers. The post-unlock
		// recheck closes the window where a worker increments done and
		// finds progressMu still held by a drainer that just decided to
		// stop.
		report := func() {
			for {
				if !progressMu.TryLock() {
					return
				}
				for {
					mu.Lock()
					if reported >= done {
						mu.Unlock()
						break
					}
					reported++
					next := reported
					mu.Unlock()
					o.Progress(next, o.Trees)
				}
				progressMu.Unlock()
				mu.Lock()
				again := reported < done
				mu.Unlock()
				if !again {
					return
				}
			}
		}
		if err := parallelFor(o.Trees, workers, func(worker, i int) error {
			oc, res, err := evals[worker].EvaluateTree(o, p, i, nil)
			if err != nil {
				return err
			}
			if outcomes != nil {
				outcomes[i] = oc
			}
			if o.Observer != nil {
				o.Observer(oc)
			}
			mu.Lock()
			agg.Add(res.Metrics)
			popAgg.Observe(oc)
			done++
			mu.Unlock()
			if o.Progress != nil {
				report()
			}
			return nil
		}); err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		sweep := SweepMetrics{Elapsed: elapsed, Engine: agg}
		if s := elapsed.Seconds(); s > 0 {
			sweep.TreesPerSec = float64(o.Trees) / s
		}
		out[pi] = Population{Protocol: p, Outcomes: outcomes, Agg: popAgg, Sweep: sweep}
	}
	return out, nil
}

// parallelFor runs fn over indices 0..n-1 across at most workers
// goroutines and returns the first error encountered, wrapped with the
// failing index (all workers drain before return, so every index is
// either processed or abandoned deterministically). fn also receives the
// worker's index in 0..workers-1, so callers can hold per-worker reusable
// state (an Evaluator) without locking.
func parallelFor(n, workers int, fn func(worker, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return fmt.Errorf("experiments: index %d: %w", i, err)
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	grab := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	fail := func(i int, err error) {
		mu.Lock()
		defer mu.Unlock()
		if firstErr == nil {
			firstErr = fmt.Errorf("experiments: index %d: %w", i, err)
		}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				i, ok := grab()
				if !ok {
					return
				}
				if err := fn(worker, i); err != nil {
					fail(i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}

// gridInt64 returns up to points values spaced evenly up to max
// inclusive. Integer division makes several consecutive grid points
// collapse to the same value (and the leading ones to zero) whenever
// points > max; those zeros and duplicates are dropped, so the result
// is strictly increasing and at most min(points, max) long.
func gridInt64(max, points int) []int64 {
	if points < 2 {
		points = 2
	}
	out := make([]int64, 0, points)
	var prev int64
	for i := 0; i < points; i++ {
		v := int64(i+1) * int64(max) / int64(points)
		if v == 0 || v == prev {
			continue
		}
		out = append(out, v)
		prev = v
	}
	return out
}

// toFloats converts for plotting.
func toFloats(xs []int64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}
