package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/steady"
	"bwcs/internal/window"
)

// DetectorResult evaluates the paper's empirical onset heuristic against
// the exact periodicity detector (internal/steady) on the same runs: the
// paper admits its window-300 double-crossing rule "is purely empirical"
// and leaves "more theoretically-justified decision criteria" to future
// work — this experiment quantifies how often the heuristic agrees with
// an exact criterion.
type DetectorResult struct {
	Options Options
	// Agreement matrix over the population, under IC FB=3:
	// counts[heuristic][exact] with heuristic ∈ {reached, not} and exact ∈
	// {optimal, suboptimal/none}.
	BothOptimal        int // heuristic reached, periodic rate == optimal
	HeuristicOnly      int // heuristic reached, exact says otherwise
	ExactOnly          int // heuristic missed, exact proves optimal
	NeitherOptimal     int
	NoPeriodicityFound int // exact detector found no steady interval at all
}

// Detector runs the comparison.
func Detector(o Options) (*DetectorResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	out := &DetectorResult{Options: o}
	proto := protocol.Interruptible(3)
	type verdict struct {
		heuristic bool
		exact     steady.Class
	}
	verdicts := make([]verdict, o.Trees)
	if err := parallelFor(o.Trees, o.workers(), func(_, i int) error {
		tr := randtree.TreeAt(o.Params, o.Seed, i)
		_, res, err := EvaluateTree(o, proto, i, nil)
		if err != nil {
			return err
		}
		w := optimal.Weight(tr)
		series, err := window.New(res.Completions, w)
		if err != nil {
			return err
		}
		det := steady.Detect(res.Completions, steady.Options{})
		verdicts[i] = verdict{
			heuristic: series.Reached(o.Threshold),
			exact:     det.Classify(w),
		}
		if verdicts[i].exact == steady.Anomalous {
			return fmt.Errorf("detector: tree %d steady rate above optimal (model bug)", i)
		}
		return nil
	}); err != nil {
		return nil, err
	}
	for _, v := range verdicts {
		exactOptimal := v.exact == steady.Optimal
		switch {
		case v.heuristic && exactOptimal:
			out.BothOptimal++
		case v.heuristic && !exactOptimal:
			out.HeuristicOnly++
		case !v.heuristic && exactOptimal:
			out.ExactOnly++
		default:
			out.NeitherOptimal++
		}
		if v.exact == steady.NoSteadyState {
			out.NoPeriodicityFound++
		}
	}
	return out, nil
}

// Agreement returns the fraction of trees where both detectors agree.
func (r *DetectorResult) Agreement() float64 {
	total := r.BothOptimal + r.HeuristicOnly + r.ExactOnly + r.NeitherOptimal
	if total == 0 {
		return 0
	}
	return float64(r.BothOptimal+r.NeitherOptimal) / float64(total)
}

// Render writes the agreement matrix.
func (r *DetectorResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Detector study: paper's window heuristic vs exact periodicity detection (IC FB=3)")
	fmt.Fprintf(w, "%-32s %10s\n", "", "trees")
	fmt.Fprintf(w, "%-32s %10d\n", "both say optimal", r.BothOptimal)
	fmt.Fprintf(w, "%-32s %10d\n", "heuristic only (likely wiggle)", r.HeuristicOnly)
	fmt.Fprintf(w, "%-32s %10d\n", "exact only (heuristic missed)", r.ExactOnly)
	fmt.Fprintf(w, "%-32s %10d\n", "neither", r.NeitherOptimal)
	fmt.Fprintf(w, "%-32s %10d\n", "no periodic interval found", r.NoPeriodicityFound)
	fmt.Fprintf(w, "\nagreement: %.2f%% over %d trees, %d tasks\n", 100*r.Agreement(), r.Options.Trees, r.Options.Tasks)
	fmt.Fprintln(w, "reading the matrix: on large heterogeneous platforms exact periodicity rarely")
	fmt.Fprintln(w, "materialises within practical horizons — the steady-state period is bounded only")
	fmt.Fprintln(w, "by (roughly) the LCM of all weights, which the paper itself calls impractically")
	fmt.Fprintln(w, "large. A high 'heuristic only' row therefore vindicates the paper's empirical")
	fmt.Fprintln(w, "window criterion for such populations; the exact detector is the right tool for")
	fmt.Fprintln(w, "small or regular platforms, where the heuristic fails instead (exactly-periodic")
	fmt.Fprintln(w, "runs never go strictly above the optimal rate).")
	return nil
}
