package experiments

import (
	"fmt"
	"io"
	"math/rand/v2"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/tree"
)

// ChurnResult measures the paper's future-work question of resilience "to
// changes in resource conditions and to dynamically evolving pools of
// resources": random platforms run the same application with and without
// churn (random subtrees departing and fresh ones joining mid-run), and
// the slowdown plus the re-executed work quantify the cost of churn under
// the autonomous protocol.
type ChurnResult struct {
	Options Options
	Events  int // departures and attachments per run

	// MeanSlowdown is the mean of makespan(churn)/makespan(static).
	MeanSlowdown float64
	// MeanRequeuedFraction is the mean of requeued/Tasks.
	MeanRequeuedFraction float64
	// Completed reports whether every churned run finished all tasks (a
	// correctness check: churn must never lose work).
	Completed bool
}

// Churn runs the study with the given number of churn events per run
// (half departures, half joins), spread evenly across the application.
func Churn(o Options, events int) (*ChurnResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if events < 2 {
		return nil, fmt.Errorf("churn: need at least 2 events, got %d", events)
	}
	proto := protocol.Interruptible(3)
	out := &ChurnResult{Options: o, Events: events, Completed: true}
	slow := make([]float64, o.Trees)
	req := make([]float64, o.Trees)
	finished := make([]bool, o.Trees)
	if err := parallelFor(o.Trees, o.workers(), func(_, i int) error {
		tr := randtree.TreeAt(o.Params, o.Seed, i)
		static, err := engine.Run(engine.Config{Tree: tr, Protocol: proto, Tasks: o.Tasks})
		if err != nil {
			return err
		}

		rng := rand.New(rand.NewPCG(o.Seed^0x5bd1e995, uint64(i)))
		cfg := engine.Config{Tree: tr, Protocol: proto, Tasks: o.Tasks}
		step := o.Tasks / int64(events+1)
		for ev := 0; ev < events; ev++ {
			at := step * int64(ev+1)
			if ev%2 == 0 && tr.Len() > 1 {
				// Depart a random non-root node of the original tree.
				victim := tree.NodeID(rng.IntN(tr.Len()-1) + 1)
				cfg.Departures = append(cfg.Departures, engine.DepartMutation{AfterTasks: at, Node: victim})
			} else {
				// A small random site joins under a random original node.
				site := tree.New(rng.Int64N(o.Params.Comp) + 1)
				for k := rng.IntN(4); k > 0; k-- {
					site.AddChild(site.Root(), rng.Int64N(o.Params.Comp)+1, rng.Int64N(o.Params.MaxComm)+1)
				}
				cfg.Attachments = append(cfg.Attachments, engine.AttachMutation{
					AfterTasks: at,
					Parent:     tree.NodeID(rng.IntN(tr.Len())),
					Subtree:    site,
					C:          rng.Int64N(o.Params.MaxComm) + 1,
				})
			}
		}
		churned, err := engine.Run(cfg)
		if err != nil {
			return err
		}
		finished[i] = int64(len(churned.Completions)) == o.Tasks
		slow[i] = float64(churned.Makespan) / float64(static.Makespan)
		req[i] = float64(churned.Requeued) / float64(o.Tasks)
		return nil
	}); err != nil {
		return nil, err
	}
	var sumSlow, sumReq float64
	for i := range slow {
		sumSlow += slow[i]
		sumReq += req[i]
		if !finished[i] {
			out.Completed = false
		}
	}
	out.MeanSlowdown = sumSlow / float64(o.Trees)
	out.MeanRequeuedFraction = sumReq / float64(o.Trees)
	return out, nil
}

// Render writes the churn study summary.
func (r *ChurnResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Churn study (future work §6): resilience to dynamically evolving resource pools")
	fmt.Fprintf(w, "%d random platforms, %d tasks, %d churn events each (alternating departures and joins), IC FB=3\n\n",
		r.Options.Trees, r.Options.Tasks, r.Events)
	fmt.Fprintf(w, "all tasks completed under churn: %v\n", r.Completed)
	fmt.Fprintf(w, "mean makespan slowdown vs static platform: %.3fx\n", r.MeanSlowdown)
	fmt.Fprintf(w, "mean re-executed work: %.2f%% of the application\n", 100*r.MeanRequeuedFraction)
	return nil
}

// AblationDecayResult compares the non-IC growth protocol with and without
// buffer decay: decay should shrink buffer footprints without hurting the
// reached fraction. The paper calls for decay but neither specifies nor
// evaluates it; this is the missing experiment.
type AblationDecayResult struct {
	Options Options
	// Plain and Decay summarize non-IC IB=1 without and with decay.
	PlainReached, DecayReached     float64
	PlainMeanTotal, DecayMeanTotal float64 // mean total buffers per tree
	MeanRetired                    float64 // mean buffers retired per tree (decay run)
}

// AblationDecay runs both variants over the population.
func AblationDecay(o Options) (*AblationDecayResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	out := &AblationDecayResult{Options: o}
	for variant := 0; variant < 2; variant++ {
		proto := protocol.NonInterruptible(1)
		if variant == 1 {
			proto = proto.WithDecay(0)
		}
		reached := 0
		var sumTotal, sumRetired float64
		outcomes := make([]TreeOutcome, o.Trees)
		results := make([]*engine.Result, o.Trees)
		if err := parallelFor(o.Trees, o.workers(), func(_, i int) error {
			oc, res, err := EvaluateTree(o, proto, i, nil)
			outcomes[i] = oc
			results[i] = res
			return err
		}); err != nil {
			return nil, err
		}
		for i := range outcomes {
			if outcomes[i].Reached {
				reached++
			}
			sumTotal += float64(results[i].TotalBuffers())
			for _, ns := range results[i].Nodes {
				sumRetired += float64(ns.Decayed)
			}
		}
		frac := float64(reached) / float64(o.Trees)
		mean := sumTotal / float64(o.Trees)
		if variant == 0 {
			out.PlainReached, out.PlainMeanTotal = frac, mean
		} else {
			out.DecayReached, out.DecayMeanTotal = frac, mean
			out.MeanRetired = sumRetired / float64(o.Trees)
		}
	}
	return out, nil
}

// Render writes the decay ablation summary.
func (r *AblationDecayResult) Render(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: buffer decay on non-IC IB=1 (the growth+decay protocol §3.1 calls for)")
	fmt.Fprintf(w, "%-12s %10s %22s\n", "variant", "reached", "mean total buffers/tree")
	fmt.Fprintf(w, "%-12s %9.2f%% %22.0f\n", "growth only", 100*r.PlainReached, r.PlainMeanTotal)
	fmt.Fprintf(w, "%-12s %9.2f%% %22.0f\n", "with decay", 100*r.DecayReached, r.DecayMeanTotal)
	fmt.Fprintf(w, "\nmean buffers retired by decay per tree: %.0f\n", r.MeanRetired)
	fmt.Fprintf(w, "%d trees, %d tasks\n", r.Options.Trees, r.Options.Tasks)
	return nil
}
