package experiments

import "bwcs/internal/tree"

// ExampleTree reconstructs the paper's Figure 1 platform: a root node P0
// holding the data repository, two more nodes at site 1, one of which
// bridges to two nodes at site 2, and a site-3 node with two children.
//
// The scanned figure's weight placement is partly ambiguous; this
// reconstruction fixes the values the text depends on — node P1 has
// communication time c1 = 1 and compute time w1 = 3, as required by the
// adaptability experiment of Section 4.2.3 — and chooses the remaining
// weights from the figure's label set so that the tree is moderately
// bandwidth-constrained (the regime where adaptation is visible).
//
// Layout (ids follow the paper's P-numbers):
//
//	P0 (w=5)
//	├── P1 (c=1, w=3)    site 1
//	├── P2 (c=2, w=5)    site 1, bridge to site 2
//	│   ├── P3 (c=4, w=4)   site 2
//	│   └── P4 (c=6, w=6)   site 2
//	└── P5 (c=5, w=6)    site 3
//	    ├── P6 (c=1, w=1)   site 3
//	    └── P7 (c=4, w=4)   site 3
func ExampleTree() *tree.Tree {
	t := tree.New(5)          // P0
	t.AddChild(0, 3, 1)       // P1
	p2 := t.AddChild(0, 5, 2) // P2
	t.AddChild(p2, 4, 4)      // P3
	t.AddChild(p2, 6, 6)      // P4
	p5 := t.AddChild(0, 6, 5) // P5
	t.AddChild(p5, 1, 1)      // P6
	t.AddChild(p5, 4, 4)      // P7
	return t
}

// P1 is the node whose weights the adaptability experiment mutates.
const P1 tree.NodeID = 1
