package experiments

import (
	"fmt"
	"io"
	"time"
)

// PaperScale runs the paper's full evaluation scale as one routine
// artifact: the four Figure 4 protocol variants swept over the whole
// tree population in streaming mode (no per-tree outcomes are
// materialized, so the 25,000 × 10,000 sweep runs in O(Tasks) memory per
// protocol), with Table 1 derived from the same runs. Options defaults
// come from Paper(); smaller values make smoke runs.
type PaperScaleResult struct {
	Fig4    *Fig4Result
	Table1  *Table1Result
	Elapsed time.Duration
}

// PaperScale runs the streaming full-scale sweep.
func PaperScale(o Options) (*PaperScaleResult, error) {
	o.Stream = true
	start := time.Now()
	f4, err := Fig4(o)
	if err != nil {
		return nil, err
	}
	t1, err := Table1(f4)
	if err != nil {
		return nil, err
	}
	return &PaperScaleResult{Fig4: f4, Table1: t1, Elapsed: time.Since(start)}, nil
}

// Render writes the figure-4 CDF, the headline fractions and Table 1.
func (r *PaperScaleResult) Render(w io.Writer) error {
	if err := r.Fig4.Render(w); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := r.Table1.Render(w); err != nil {
		return err
	}
	var trees int
	var treesPerSec float64
	for i := range r.Fig4.Populations {
		trees += r.Fig4.Populations[i].Agg.Trees
		treesPerSec += r.Fig4.Populations[i].Sweep.TreesPerSec
	}
	fmt.Fprintf(w, "\npaper-scale sweep: %d simulations in %v (mean %.0f trees/sec per population)\n",
		trees, r.Elapsed.Round(time.Millisecond), treesPerSec/float64(len(r.Fig4.Populations)))
	return nil
}

// PaperScaleJSON is the machine-readable paper-scale artifact the CI job
// uploads; the schema is versioned independently of the bench baseline.
type PaperScaleJSON struct {
	Schema     string            `json:"schema"`
	Trees      int               `json:"trees"`
	Tasks      int64             `json:"tasks"`
	Threshold  int               `json:"threshold"`
	Seed       uint64            `json:"seed"`
	ElapsedSec float64           `json:"elapsed_sec"`
	Protocols  []PaperScaleProto `json:"protocols"`
	Table1     PaperScaleTable1  `json:"table1"`
}

// PaperScaleProto is one protocol's aggregate in the JSON artifact.
type PaperScaleProto struct {
	Label           string    `json:"label"`
	ReachedFraction float64   `json:"reached_fraction"`
	MedianOnset     int64     `json:"median_onset"`
	MaxNodeUsed     int64     `json:"max_node_used"`
	TreesPerSec     float64   `json:"trees_per_sec"`
	CDFX            []int64   `json:"cdf_x"`
	CDFY            []float64 `json:"cdf_y"`
}

// PaperScaleTable1 mirrors Table1Result for the artifact.
type PaperScaleTable1 struct {
	Buckets []int64   `json:"buckets"`
	NonIC   []float64 `json:"non_ic"`
	IC      []float64 `json:"ic"`
}

// JSON reduces the result to its artifact form.
func (r *PaperScaleResult) JSON() PaperScaleJSON {
	o := r.Fig4.Options
	out := PaperScaleJSON{
		Schema:     "bwcs-paperscale/v1",
		Trees:      o.Trees,
		Tasks:      o.Tasks,
		Threshold:  o.Threshold,
		Seed:       o.Seed,
		ElapsedSec: r.Elapsed.Seconds(),
		Table1: PaperScaleTable1{
			Buckets: Table1Buckets,
			NonIC:   r.Table1.NonIC,
			IC:      r.Table1.IC,
		},
	}
	xs := gridInt64(int(o.Tasks)/2, 60)
	for i := range r.Fig4.Populations {
		p := &r.Fig4.Populations[i]
		out.Protocols = append(out.Protocols, PaperScaleProto{
			Label:           p.Protocol.Label,
			ReachedFraction: p.ReachedFraction(),
			MedianOnset:     p.MedianOnset(),
			MaxNodeUsed:     p.Agg.MaxNodeUsedMax,
			TreesPerSec:     p.Sweep.TreesPerSec,
			CDFX:            xs,
			CDFY:            p.OnsetCDF(xs),
		})
	}
	return out
}
