package experiments

import (
	"encoding/json"
	"strings"
	"testing"

	"bwcs/internal/textplot"
)

func TestReconverge(t *testing.T) {
	r, err := Reconverge(0, 0)
	if err != nil {
		t.Fatalf("Reconverge: %v", err)
	}
	if len(r.Scenarios) != 4 {
		t.Fatalf("scenarios = %d", len(r.Scenarios))
	}
	for _, sc := range r.Scenarios {
		// The acceptance bar: every autonomous protocol settles back onto
		// a steady rate after the mid-run re-weight, in finite time.
		if !sc.Converged {
			t.Errorf("%s: never re-converged", sc.Name)
			continue
		}
		if sc.TimeToReconverge <= 0 || sc.ConvergedAt <= sc.MutateTime {
			t.Errorf("%s: time-to-reconverge %d (converged at %d, mutated at %d)",
				sc.Name, sc.TimeToReconverge, sc.ConvergedAt, sc.MutateTime)
		}
		if sc.ConvergedAt >= sc.Makespan {
			t.Errorf("%s: converged at %d, after makespan %d", sc.Name, sc.ConvergedAt, sc.Makespan)
		}
		// Raising c1 lowers the optimal rate, and the tail tracks the new
		// optimum — the Figure 7 shape, measured instead of eyeballed.
		if !sc.OptimalAfter.Less(sc.OptimalBefore) {
			t.Errorf("%s: mutation did not lower the optimal rate", sc.Name)
		}
		opt := sc.OptimalAfter.Float64()
		if sc.TailRate < 0.7*opt || sc.TailRate > 1.1*opt {
			t.Errorf("%s: tail rate %.4f far from optimal-after %.4f", sc.Name, sc.TailRate, opt)
		}
		if len(sc.Rate.Points) == 0 {
			t.Errorf("%s: empty rate series", sc.Name)
		}
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "t_reconverge") {
		t.Fatalf("render missing table header:\n%s", buf.String())
	}

	raw, err := json.Marshal(r.JSON())
	if err != nil {
		t.Fatalf("marshal JSON artifact: %v", err)
	}
	var doc struct {
		Schema    string `json:"schema"`
		Scenarios []struct {
			Converged bool `json:"converged"`
			Rate      struct {
				Points []struct{ T int64 } `json:"points"`
			} `json:"rate"`
		} `json:"scenarios"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("round-trip JSON artifact: %v", err)
	}
	if doc.Schema != TimelineSchemaV1 {
		t.Fatalf("artifact schema = %q, want %q", doc.Schema, TimelineSchemaV1)
	}
	for i, sc := range doc.Scenarios {
		if !sc.Converged || len(sc.Rate.Points) == 0 {
			t.Fatalf("artifact scenario %d lost data: %+v", i, sc)
		}
	}
}

func TestReconvergeRejectsLateMutation(t *testing.T) {
	if _, err := Reconverge(100, 100); err == nil {
		t.Fatalf("accepted mutation at task count >= tasks")
	}
}

func TestSpark(t *testing.T) {
	got := textplot.Spark([]float64{0, 1, 2, 3})
	if got != "▁▃▅█" {
		t.Fatalf("Spark ramp = %q", got)
	}
	if got := textplot.Spark([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Fatalf("Spark flat = %q", got)
	}
	if got := textplot.Spark(nil); got != "" {
		t.Fatalf("Spark empty = %q", got)
	}
}
