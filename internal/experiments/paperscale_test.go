package experiments

import (
	"strings"
	"testing"
)

// TestPaperScaleSmoke runs the paper-scale harness with the paper's full
// Tasks (10,000) on a handful of trees: the streamed Figure 4 + Table 1
// pipeline, the render, and the JSON artifact all at the real
// application size. Skipped under -short.
func TestPaperScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-Tasks smoke test skipped in -short mode")
	}
	o := Default()
	o.Trees = 3
	o.Tasks = 10_000
	o.Workers = 2
	r, err := PaperScale(o)
	if err != nil {
		t.Fatalf("PaperScale: %v", err)
	}
	if len(r.Fig4.Populations) != len(Fig4Protocols()) {
		t.Fatalf("got %d populations, want %d", len(r.Fig4.Populations), len(Fig4Protocols()))
	}
	for i := range r.Fig4.Populations {
		p := &r.Fig4.Populations[i]
		if p.Outcomes != nil {
			t.Fatalf("%v: paper-scale sweep materialized outcomes", p.Protocol)
		}
		if p.Agg == nil || p.Agg.Trees != o.Trees {
			t.Fatalf("%v: aggregate covers %v trees, want %d", p.Protocol, p.Agg, o.Trees)
		}
		if f := p.ReachedFraction(); f < 0 || f > 1 {
			t.Fatalf("%v: reached fraction %v out of range", p.Protocol, f)
		}
	}
	var sb strings.Builder
	if err := r.Render(&sb); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(sb.String(), "Table 1") || !strings.Contains(sb.String(), "paper-scale sweep") {
		t.Fatalf("render missing sections:\n%s", sb.String())
	}
	j := r.JSON()
	if j.Schema != "bwcs-paperscale/v1" || j.Tasks != 10_000 || len(j.Protocols) != 4 {
		t.Fatalf("artifact malformed: %+v", j)
	}
	for _, p := range j.Protocols {
		if len(p.CDFX) == 0 || len(p.CDFX) != len(p.CDFY) {
			t.Fatalf("%s: CDF series malformed (%d xs, %d ys)", p.Label, len(p.CDFX), len(p.CDFY))
		}
	}
}
