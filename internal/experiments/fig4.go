package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/protocol"
	"bwcs/internal/textplot"
)

// Fig4Protocols returns the four protocol variants Figure 4 compares.
func Fig4Protocols() []protocol.Protocol {
	return []protocol.Protocol{
		protocol.NonInterruptible(1),
		protocol.Interruptible(1),
		protocol.Interruptible(2),
		protocol.Interruptible(3),
	}
}

// Fig4Result reproduces Figure 4: for each protocol, the cumulative
// fraction of trees whose onset of optimal steady state falls within x
// completed tasks. The populations also back Table 1 and Figure 6, which
// reuse the same runs.
type Fig4Result struct {
	Options     Options
	Populations []Population
}

// Fig4 runs the four protocol variants over the tree population.
func Fig4(o Options) (*Fig4Result, error) {
	pops, err := RunPopulation(o, Fig4Protocols())
	if err != nil {
		return nil, err
	}
	return &Fig4Result{Options: o, Populations: pops}, nil
}

// Render writes the CDF chart and the headline reached-fractions.
func (r *Fig4Result) Render(w io.Writer) error {
	xs := gridInt64(int(r.Options.Tasks)/2, 60)
	chart := textplot.NewChart("Figure 4: trees at optimal steady state within x tasks (CDF)", 72, 18).
		Labels("onset window (tasks completed)", "fraction of trees")
	for i := range r.Populations {
		p := &r.Populations[i]
		chart.Line(p.Protocol.Label, toFloats(xs), p.OnsetCDF(xs))
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-16s %10s %14s     (paper: non-IC 20.18%%, IC1 81.9%%, IC2 98.51%%, IC3 99.57%%)\n",
		"protocol", "reached", "median onset")
	for i := range r.Populations {
		p := &r.Populations[i]
		fmt.Fprintf(w, "%-16s %9.2f%% %14d\n", p.Protocol.Label, 100*p.ReachedFraction(), p.MedianOnset())
	}
	fmt.Fprintf(w, "\n%d trees, %d tasks, onset threshold window %d\n", r.Options.Trees, r.Options.Tasks, r.Options.Threshold)
	return nil
}
