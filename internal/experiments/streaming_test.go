package experiments

import (
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"bwcs/internal/protocol"
)

// TestStreamingMatchesMaterialized: every aggregate the streaming mode
// offers is bit-identical to the materialized path on the same seed —
// same reached fractions, same CDF points, same medians, same maxima.
func TestStreamingMatchesMaterialized(t *testing.T) {
	o := tinyOptions()
	protos := Fig4Protocols()
	mat, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatalf("materialized: %v", err)
	}
	o.Stream = true
	str, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatalf("streaming: %v", err)
	}
	xs := gridInt64(int(o.Tasks)/2, 60)
	for i := range protos {
		m, s := &mat[i], &str[i]
		if m.Outcomes == nil {
			t.Fatalf("%v: materialized run lacks outcomes", protos[i])
		}
		if s.Outcomes != nil {
			t.Fatalf("%v: streaming run materialized %d outcomes", protos[i], len(s.Outcomes))
		}
		if s.Agg == nil || s.Agg.Trees != o.Trees {
			t.Fatalf("%v: streaming aggregate missing or short: %+v", protos[i], s.Agg)
		}
		if got, want := s.ReachedFraction(), m.ReachedFraction(); got != want {
			t.Fatalf("%v: streaming reached fraction %v != materialized %v", protos[i], got, want)
		}
		if got, want := s.MedianOnset(), m.MedianOnset(); got != want {
			t.Fatalf("%v: streaming median onset %d != materialized %d", protos[i], got, want)
		}
		if got, want := s.OnsetCDF(xs), m.OnsetCDF(xs); !slices.Equal(got, want) {
			t.Fatalf("%v: streaming onset CDF differs\nstream: %v\nmater:  %v", protos[i], got, want)
		}
		for _, n := range Table1Buckets {
			if got, want := s.ReachedWithAtMostBuffers(n), m.ReachedWithAtMostBuffers(n); got != want {
				t.Fatalf("%v: streaming reached@<=%d = %v != materialized %v", protos[i], n, got, want)
			}
		}
		var wantMaxBuf, wantMaxUsed, wantTotBuf int64
		for j := range m.Outcomes {
			wantMaxBuf = max(wantMaxBuf, m.Outcomes[j].MaxNodeBuffers)
			wantMaxUsed = max(wantMaxUsed, m.Outcomes[j].MaxNodeUsed)
			wantTotBuf = max(wantTotBuf, m.Outcomes[j].TotalBuffers)
		}
		if s.Agg.MaxNodeBuffersMax != wantMaxBuf || s.Agg.MaxNodeUsedMax != wantMaxUsed || s.Agg.TotalBuffersMax != wantTotBuf {
			t.Fatalf("%v: streaming maxima (%d, %d, %d) != materialized (%d, %d, %d)", protos[i],
				s.Agg.MaxNodeBuffersMax, s.Agg.MaxNodeUsedMax, s.Agg.TotalBuffersMax,
				wantMaxBuf, wantMaxUsed, wantTotBuf)
		}
		// The materialized run builds the same aggregate alongside.
		if m.Agg == nil || m.Agg.Trees != o.Trees ||
			m.Agg.ReachedFraction() != s.Agg.ReachedFraction() ||
			m.Agg.MedianOnset() != s.Agg.MedianOnset() {
			t.Fatalf("%v: materialized run's aggregate disagrees with streaming run's", protos[i])
		}
	}
}

// TestStreamingObserver: the observer sees every tree exactly once, with
// regenerable indices.
func TestStreamingObserver(t *testing.T) {
	o := tinyOptions()
	o.Stream = true
	var mu sync.Mutex
	seen := map[int]int{}
	o.Observer = func(oc TreeOutcome) {
		mu.Lock()
		seen[oc.Index]++
		mu.Unlock()
	}
	if _, err := RunPopulation(o, []protocol.Protocol{protocol.Interruptible(3)}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != o.Trees {
		t.Fatalf("observer saw %d distinct trees, want %d", len(seen), o.Trees)
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("observer saw tree %d %d times", idx, n)
		}
		if idx < 0 || idx >= o.Trees {
			t.Fatalf("observer saw out-of-range tree index %d", idx)
		}
	}
}

// TestProgressSlowCallbackDoesNotBlockWorkers: the progress callback runs
// outside the aggregation lock, so a callback that stalls cannot
// serialize the sweep — every other worker keeps simulating while the
// report is stuck, and the stalled reporter later drains the backlog in
// order. Under the old behaviour (callback invoked under the lock) this
// test deadlocks.
func TestProgressSlowCallbackDoesNotBlockWorkers(t *testing.T) {
	o := tinyOptions()
	o.Workers = 4
	allDone := make(chan struct{})
	var outcomes atomic.Int64
	o.Observer = func(TreeOutcome) {
		if outcomes.Add(1) == int64(o.Trees) {
			close(allDone)
		}
	}
	var seen []int // appends are serialized by the progress contract
	o.Progress = func(done, total int) {
		seen = append(seen, done)
		if done == 1 {
			// Stall the first report until every tree has simulated.
			<-allDone
		}
	}
	if _, err := RunPopulation(o, []protocol.Protocol{protocol.Interruptible(3)}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != o.Trees {
		t.Fatalf("progress fired %d times, want %d", len(seen), o.Trees)
	}
	for i, d := range seen {
		if d != i+1 {
			t.Fatalf("progress sequence %v not 1..%d", seen, o.Trees)
		}
	}
}

// TestGridInt64 pins the checkpoint-grid fix: integer division used to
// emit zeros and duplicate points whenever points > max.
func TestGridInt64(t *testing.T) {
	cases := []struct {
		max, points int
		want        []int64
	}{
		{10, 5, []int64{2, 4, 6, 8, 10}},
		{60, 2, []int64{30, 60}},
		{3, 6, []int64{1, 2, 3}}, // points > max: dupes collapse
		{5, 10, []int64{1, 2, 3, 4, 5}},
		{1, 4, []int64{1}},
		{2, 7, []int64{1, 2}},
		{0, 3, nil},
		{7, 1, []int64{3, 7}}, // points clamps up to 2
	}
	for _, tc := range cases {
		got := gridInt64(tc.max, tc.points)
		if !slices.Equal(got, tc.want) {
			t.Fatalf("gridInt64(%d, %d) = %v, want %v", tc.max, tc.points, got, tc.want)
		}
		for i := 1; i < len(got); i++ {
			if got[i] <= got[i-1] {
				t.Fatalf("gridInt64(%d, %d) = %v not strictly increasing", tc.max, tc.points, got)
			}
		}
		if len(got) > 0 && got[len(got)-1] != int64(tc.max) {
			t.Fatalf("gridInt64(%d, %d) = %v does not end at max", tc.max, tc.points, got)
		}
	}
}
