package experiments

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"bwcs/internal/protocol"
)

// TestParallelForWrapsFailingIndex: the error carries the index that
// failed, in both the serial and the parallel execution paths.
func TestParallelForWrapsFailingIndex(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := parallelFor(50, workers, func(_, i int) error {
			if i == 13 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if !strings.Contains(err.Error(), "index 13") {
			t.Fatalf("workers=%d: err = %v, want the failing index", workers, err)
		}
	}
}

// TestParallelForFirstErrorWins: when several indices fail, the reported
// error is the first failure that was recorded, and later failures never
// overwrite it.
func TestParallelForFirstErrorWins(t *testing.T) {
	var order []int
	var mu sync.Mutex
	err := parallelFor(40, 4, func(_, i int) error {
		if i%10 == 7 { // indices 7, 17, 27, 37 fail
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			return fmt.Errorf("fail-%d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatalf("no error returned")
	}
	mu.Lock()
	first := order[0]
	mu.Unlock()
	if want := fmt.Sprintf("experiments: index %d: fail-%d", first, first); err.Error() != want {
		t.Fatalf("err = %q, want the first recorded failure %q", err, want)
	}
}

// TestParallelForDrainsWorkers: after an error, parallelFor still waits
// for every in-flight call to return before it does — no fn invocation
// may still be running when the caller regains control — and no new
// indices are grabbed once the error is recorded.
func TestParallelForDrainsWorkers(t *testing.T) {
	const n = 1000
	var started, finished atomic.Int64
	gate := make(chan struct{})
	err := parallelFor(n, 8, func(_, i int) error {
		started.Add(1)
		defer finished.Add(1)
		if i == 0 {
			// Fail fast while other workers are blocked mid-call, forcing
			// the drain path to actually wait.
			close(gate)
			return errors.New("early failure")
		}
		<-gate
		return nil
	})
	if err == nil {
		t.Fatalf("no error returned")
	}
	s, f := started.Load(), finished.Load()
	if s != f {
		t.Fatalf("parallelFor returned with %d calls still running (%d started, %d finished)", s-f, s, f)
	}
	// The scheduler must have stopped early: with 8 workers and an
	// error on the first index, nearly all of the 1000 indices must
	// never have started.
	if s >= n {
		t.Fatalf("all %d indices ran despite an early error", n)
	}
}

// TestProgressCallbackMonotone: Progress reports strictly increasing
// done counts, ends at the population size, and fires once per tree per
// protocol.
func TestProgressCallbackMonotone(t *testing.T) {
	o := tinyOptions()
	o.Workers = 4
	var mu sync.Mutex
	var calls int
	last := 0
	o.Progress = func(done, total int) {
		mu.Lock()
		defer mu.Unlock()
		if total != o.Trees {
			t.Errorf("total = %d, want %d", total, o.Trees)
		}
		if done != last+1 && done != 1 { // resets to 1 at each new population
			t.Errorf("done jumped %d -> %d", last, done)
		}
		last = done
		calls++
	}
	protos := []protocol.Protocol{protocol.Interruptible(3), protocol.NonInterruptible(1)}
	pops, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatalf("RunPopulation: %v", err)
	}
	if want := o.Trees * len(protos); calls != want {
		t.Fatalf("progress calls = %d, want %d", calls, want)
	}
	if last != o.Trees {
		t.Fatalf("final done = %d, want %d", last, o.Trees)
	}
	// The sweep aggregate must reflect real engine work and deterministic
	// counts: every task in every tree computed exactly once.
	for _, p := range pops {
		wantComputes := int64(o.Trees) * o.Tasks
		if p.Sweep.Engine.ComputesDone != wantComputes {
			t.Fatalf("%v: aggregate ComputesDone = %d, want %d", p.Protocol, p.Sweep.Engine.ComputesDone, wantComputes)
		}
		if p.Sweep.Engine.Events == 0 || p.Sweep.TreesPerSec <= 0 || p.Sweep.Elapsed <= 0 {
			t.Fatalf("%v: sweep metrics not populated: %+v", p.Protocol, p.Sweep)
		}
	}
}

// TestSweepAggregateDeterministic: the engine-side sweep aggregate is a
// pure function of the options, regardless of worker count — except the
// FreeListHits/EventAllocs split, which depends on how warm each
// worker's reused run state is (one worker recycles across all trees;
// six workers start cold six times). Their sum, the total Schedule
// count, must still be deterministic.
func TestSweepAggregateDeterministic(t *testing.T) {
	o := tinyOptions()
	protos := []protocol.Protocol{protocol.Interruptible(3)}
	o.Workers = 1
	serial, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatal(err)
	}
	o.Workers = 6
	parallel, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial[0].Sweep.Engine, parallel[0].Sweep.Engine
	if sa, sb := a.FreeListHits+a.EventAllocs, b.FreeListHits+b.EventAllocs; sa != sb {
		t.Fatalf("total Schedule count differs by worker count: %d vs %d", sa, sb)
	}
	a.FreeListHits, a.EventAllocs = 0, 0
	b.FreeListHits, b.EventAllocs = 0, 0
	if a != b {
		t.Fatalf("aggregate metrics differ by worker count:\nserial:   %+v\nparallel: %+v", a, b)
	}
}
