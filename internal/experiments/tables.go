package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/protocol"
	"bwcs/internal/stats"
)

// Table1Buckets are the buffer budgets the paper's Table 1 reports.
var Table1Buckets = []int64{1, 2, 3, 10, 20, 100}

// Table1Result reproduces Table 1: the percentage of trees that reached
// the optimal steady-state rate using at most n buffers per node.
//
// The two rows are measured differently, as in the paper: the non-IC row
// filters one growth-protocol population by observed per-node buffer
// high-water; the IC row runs separate fixed-buffer populations (FB = n
// for n in 1..3; larger budgets change nothing because the IC protocol
// never uses them).
type Table1Result struct {
	Options Options
	// NonIC[i] is the fraction of trees that reached optimal while never
	// needing more than Table1Buckets[i] queued tasks at any node, under
	// non-IC IB=1.
	NonIC []float64
	// IC[n] is the fraction reached under IC FB=n+1 for n in 0..2.
	IC []float64
}

// Table1 derives the table from Figure 4's populations (the same runs).
func Table1(f4 *Fig4Result) (*Table1Result, error) {
	out := &Table1Result{Options: f4.Options}
	var nonIC *Population
	icByFB := map[int]*Population{}
	for i := range f4.Populations {
		p := &f4.Populations[i]
		switch {
		case !p.Protocol.Interruptible && p.Protocol.Grow:
			nonIC = p
		case p.Protocol.Interruptible:
			icByFB[p.Protocol.InitialBuffers] = p
		}
	}
	if nonIC == nil {
		return nil, fmt.Errorf("table1: figure 4 result lacks the non-IC population")
	}
	for _, n := range Table1Buckets {
		out.NonIC = append(out.NonIC, nonIC.ReachedWithAtMostBuffers(n))
	}
	for fb := 1; fb <= 3; fb++ {
		p, ok := icByFB[fb]
		if !ok {
			return nil, fmt.Errorf("table1: figure 4 result lacks IC FB=%d", fb)
		}
		out.IC = append(out.IC, p.ReachedFraction())
	}
	return out, nil
}

// Render writes the table in the paper's layout.
func (r *Table1Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: % of trees that reached the optimal steady-state rate using at most n buffers")
	fmt.Fprintf(w, "%-10s", "protocol")
	for _, n := range Table1Buckets {
		fmt.Fprintf(w, " %8d", n)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "non-IC")
	for _, v := range r.NonIC {
		fmt.Fprintf(w, " %7.2f%%", 100*v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-10s", "IC")
	for i, v := range r.IC {
		_ = i
		fmt.Fprintf(w, " %7.2f%%", 100*v)
	}
	fmt.Fprintf(w, "      (FB=1..3; unchanged beyond 3)\n")
	fmt.Fprintln(w, "paper:   non-IC ... 0.0 0.0 0.2 0.8 5.1 (n=2,3,10,20,100); IC 81.9 98.5 99.6 (n=1,2,3)")
	return nil
}

// Table2Checkpoints are the completed-task counts at which Table 2
// snapshots buffer usage.
var Table2Checkpoints = []int64{100, 1000, 4000}

// Table2Class is one row of Table 2: the non-IC protocol's buffer usage on
// the tree class with computation parameter X.
type Table2Class struct {
	X int64
	// MedianAt[i] is the median (across trees) of the per-tree maximum
	// buffers any node had actually used (queued-tasks high-water) when
	// Table2Checkpoints[i] tasks had completed.
	MedianAt []int64
	// Max is the largest per-tree maximum observed at the final
	// checkpoint.
	Max int64
}

// Table2Result reproduces Table 2: median and maximum buffers used by
// non-IC IB=1 across tree classes with x in {500, 1000, 5000, 10000}.
type Table2Result struct {
	Options Options
	Classes []Table2Class
}

// CompClasses are the computation-parameter sweep of Figure 5 and
// Table 2.
var CompClasses = []int64{500, 1000, 5000, 10000}

// Table2 runs the sweep. The task count comes from o.Tasks, which should
// be at least the last checkpoint (the paper uses 4000).
func Table2(o Options) (*Table2Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	checkpoints := make([]int64, 0, len(Table2Checkpoints))
	for _, c := range Table2Checkpoints {
		if c <= o.Tasks {
			checkpoints = append(checkpoints, c)
		}
	}
	if len(checkpoints) == 0 {
		return nil, fmt.Errorf("table2: task count %d below first checkpoint %d", o.Tasks, Table2Checkpoints[0])
	}
	proto := protocol.NonInterruptible(1)
	out := &Table2Result{Options: o}
	for _, x := range CompClasses {
		co := o
		co.Params = o.Params.WithComp(x)
		maxAt := make([][]int64, len(checkpoints)) // per checkpoint: per-tree max-node-buffers
		for i := range maxAt {
			maxAt[i] = make([]int64, co.Trees)
		}
		finalMax := make([]int64, co.Trees)
		evals := make([]*Evaluator, co.workers())
		for i := range evals {
			evals[i] = NewEvaluator()
		}
		if err := parallelFor(co.Trees, co.workers(), func(worker, i int) error {
			_, res, err := evals[worker].EvaluateTree(co, proto, i, checkpoints)
			if err != nil {
				return err
			}
			for ci, ck := range res.Checkpoints {
				maxAt[ci][i] = ck.MaxNodeUsed
			}
			finalMax[i] = res.MaxNodeUsed()
			return nil
		}); err != nil {
			return nil, err
		}
		cls := Table2Class{X: x, Max: stats.Max(finalMax)}
		for ci := range checkpoints {
			cls.MedianAt = append(cls.MedianAt, stats.Median(maxAt[ci]))
		}
		out.Classes = append(out.Classes, cls)
	}
	return out, nil
}

// Render writes the table in the paper's layout.
func (r *Table2Result) Render(w io.Writer) error {
	fmt.Fprintln(w, "Table 2: median and maximum per-node buffers used by non-IC IB=1")
	fmt.Fprintf(w, "%-8s", "x")
	for _, c := range Table2Checkpoints {
		if c <= r.Options.Tasks {
			fmt.Fprintf(w, " med@%-6d", c)
		}
	}
	fmt.Fprintf(w, " %9s\n", "max")
	for _, cls := range r.Classes {
		fmt.Fprintf(w, "%-8d", cls.X)
		for _, m := range cls.MedianAt {
			fmt.Fprintf(w, " %9d", m)
		}
		fmt.Fprintf(w, " %9d\n", cls.Max)
	}
	fmt.Fprintln(w, "paper:  x=500: 3/3/3 max 165 · x=1000: 4/5/5 max 472 · x=5000: 150/212/218 max 1535 · x=10000: 551/560/561 max 1951")
	fmt.Fprintf(w, "%d trees per class, %d tasks\n", r.Options.Trees, r.Options.Tasks)
	return nil
}
