package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/optimal"
	"bwcs/internal/overlay"
	"bwcs/internal/rational"
	"bwcs/internal/textplot"
)

// OverlayResult compares overlay-construction strategies (the paper's
// future work, Section 6) across a population of random host graphs. Each
// strategy is scored by its overlay's optimal steady-state rate normalized
// to the best strategy on that graph.
type OverlayResult struct {
	Graphs     int
	Hosts      int
	Strategies []overlay.Strategy
	// MeanNormalized[i] is the mean of rate/bestRate for strategy i.
	MeanNormalized []float64
	// Wins[i] counts graphs where strategy i achieved the best rate
	// (ties count for every tied strategy).
	Wins []int
}

// Overlay runs the comparison over graphs random host graphs derived from
// the options' generator parameters.
func Overlay(o Options, graphs int) (*OverlayResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if graphs < 1 {
		return nil, fmt.Errorf("overlay: graphs %d < 1", graphs)
	}
	hosts := (o.Params.MinNodes + o.Params.MaxNodes) / 2
	if hosts < 2 {
		hosts = 2
	}
	strategies := overlay.Strategies()
	out := &OverlayResult{
		Graphs:         graphs,
		Hosts:          hosts,
		Strategies:     strategies,
		MeanNormalized: make([]float64, len(strategies)),
		Wins:           make([]int, len(strategies)),
	}
	sums := make([]float64, len(strategies))
	for gi := 0; gi < graphs; gi++ {
		g := overlay.Random(overlay.RandomParams{
			Hosts:      hosts,
			MinComm:    o.Params.MinComm,
			MaxComm:    o.Params.MaxComm,
			Comp:       o.Params.Comp,
			ExtraLinks: hosts, // moderately meshy physical network
		}, o.Seed+uint64(gi))
		comps, err := overlay.Compare(g, 0, o.Seed+uint64(gi))
		if err != nil {
			return nil, err
		}
		best := comps[0].Rate
		for _, c := range comps[1:] {
			if best.Less(c.Rate) {
				best = c.Rate
			}
		}
		for i, c := range comps {
			sums[i] += c.Rate.Div(best).Float64()
			if c.Rate.Equal(best) {
				out.Wins[i]++
			}
		}
	}
	for i := range sums {
		out.MeanNormalized[i] = sums[i] / float64(graphs)
	}
	return out, nil
}

// Render writes the comparison as a bar chart and table.
func (r *OverlayResult) Render(w io.Writer) error {
	labels := make([]string, len(r.Strategies))
	values := make([]float64, len(r.Strategies))
	for i, s := range r.Strategies {
		labels[i] = string(s)
		values[i] = r.MeanNormalized[i]
	}
	title := fmt.Sprintf("Overlay construction (future work): mean optimal rate vs best, %d graphs of %d hosts", r.Graphs, r.Hosts)
	if err := textplot.Bars(w, title, labels, values, 40); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-12s %16s %8s\n", "strategy", "mean normalized", "wins")
	for i := range r.Strategies {
		fmt.Fprintf(w, "%-12s %16.4f %8d\n", r.Strategies[i], r.MeanNormalized[i], r.Wins[i])
	}
	return nil
}

// OverlayImproveResult quantifies the headroom local search finds over
// constructive overlay strategies on smaller host graphs (search costs a
// rate evaluation per candidate move, so the population is modest).
type OverlayImproveResult struct {
	Graphs int
	Hosts  int
	// Mean rates normalized per graph to the best of the three variants.
	RandomBase     float64 // random spanning tree as built
	RandomImproved float64 // random spanning tree + hill climbing
	MinComm        float64 // min-communication spanning tree as built
	MeanMoves      float64 // accepted moves per graph
}

// OverlayImprove runs the study on graphs random host graphs of the given
// size (0 = 40 hosts).
func OverlayImprove(o Options, graphs, hosts int) (*OverlayImproveResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if graphs < 1 {
		return nil, fmt.Errorf("overlay-improve: graphs %d < 1", graphs)
	}
	if hosts <= 1 {
		hosts = 40
	}
	out := &OverlayImproveResult{Graphs: graphs, Hosts: hosts}
	var sumBase, sumImp, sumMin, sumMoves float64
	for gi := 0; gi < graphs; gi++ {
		g := overlay.Random(overlay.RandomParams{
			Hosts:      hosts,
			MinComm:    o.Params.MinComm,
			MaxComm:    o.Params.MaxComm,
			Comp:       o.Params.Comp,
			ExtraLinks: hosts * 2,
		}, o.Seed+uint64(gi))
		seed := o.Seed + uint64(gi)
		baseTree, _, err := overlay.Build(g, 0, overlay.RandomSpanning, seed)
		if err != nil {
			return nil, err
		}
		base := optimal.Weight(baseTree).Inv()
		imp, err := overlay.Improve(g, 0, overlay.RandomSpanning, seed, 0)
		if err != nil {
			return nil, err
		}
		minTree, _, err := overlay.Build(g, 0, overlay.MinComm, seed)
		if err != nil {
			return nil, err
		}
		minRate := optimal.Weight(minTree).Inv()
		best := rational.Max(rational.Max(base, imp.Rate), minRate)
		sumBase += base.Div(best).Float64()
		sumImp += imp.Rate.Div(best).Float64()
		sumMin += minRate.Div(best).Float64()
		sumMoves += float64(imp.Moves)
	}
	out.RandomBase = sumBase / float64(graphs)
	out.RandomImproved = sumImp / float64(graphs)
	out.MinComm = sumMin / float64(graphs)
	out.MeanMoves = sumMoves / float64(graphs)
	return out, nil
}

// Render writes the improvement study summary.
func (r *OverlayImproveResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Overlay local search: %d graphs of %d hosts (rates normalized to per-graph best)\n\n", r.Graphs, r.Hosts)
	labels := []string{"random spanning", "random + search", "min-comm spanning"}
	values := []float64{r.RandomBase, r.RandomImproved, r.MinComm}
	if err := textplot.Bars(w, "", labels, values, 40); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nmean accepted moves per graph: %.1f\n", r.MeanMoves)
	fmt.Fprintln(w, "local search recovers most of the gap a poor starting overlay leaves")
	return nil
}
