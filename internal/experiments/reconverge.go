package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/engine"
	"bwcs/internal/metrics"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/rational"
	"bwcs/internal/sim"
	"bwcs/internal/stats"
	"bwcs/internal/textplot"
	"bwcs/internal/tree"
)

// TimelineSchemaV1 identifies the timeline JSON artifact emitted by
// bwexp -exp reconverge -json; the live overlay's /timeline dump carries
// the same schema string.
const TimelineSchemaV1 = "bwcs-timeline/v1"

// ReconvergeScenario is one protocol's run of the re-convergence
// experiment: the Figure 1 platform with P1's link re-weighted (c1: 1→3)
// after MutateAt completed tasks, with the engine's timeline sampling
// the interval completion rate throughout.
type ReconvergeScenario struct {
	Name     string
	Protocol string
	// OptimalBefore and OptimalAfter are the platform's optimal
	// steady-state rates before and after the mutation.
	OptimalBefore rational.Rat
	OptimalAfter  rational.Rat
	// MutateTime is when the mutation actually fired (the completion
	// time of task MutateAt).
	MutateTime sim.Time
	Makespan   sim.Time
	// TailRate is the measured rate over the post-mutation tail.
	TailRate float64
	// Converged reports whether the post-mutation rate settled; if so,
	// ConvergedAt is the sample time it entered its final steady band
	// and TimeToReconverge = ConvergedAt - MutateTime.
	Converged        bool
	ConvergedAt      sim.Time
	TimeToReconverge sim.Time
	// Rate is the sampled interval-completion-rate series of the run.
	Rate metrics.SeriesSnapshot
}

// ReconvergeResult measures time-to-re-converge: how long each protocol
// takes to settle back onto a steady completion rate after the platform
// changes under it (the adaptability claim of Section 4.2.3, here made
// quantitative with the timeline sampler and the stats.Converge
// detector instead of eyeballing Figure 7's slopes).
type ReconvergeResult struct {
	Tasks       int64
	MutateAt    int64
	SampleEvery sim.Time
	Eps         float64
	Window      int
	Scenarios   []ReconvergeScenario
}

// Reconverge runs the re-convergence experiment over the autonomous
// protocols. tasks and mutateAt default to 2000 and 200 when zero.
func Reconverge(tasks, mutateAt int64) (*ReconvergeResult, error) {
	if tasks == 0 {
		tasks = 2000
	}
	if mutateAt == 0 {
		mutateAt = 200
	}
	if mutateAt >= tasks {
		return nil, fmt.Errorf("reconverge: mutation at %d but only %d tasks", mutateAt, tasks)
	}
	const (
		sampleEvery = sim.Time(64)
		eps         = 0.05
		window      = 8
	)
	protocols := []struct {
		name  string
		proto protocol.Protocol
	}{
		{"interruptible FB=3", protocol.Interruptible(3)},
		{"interruptible FB=1", protocol.Interruptible(1)},
		{"non-intr IB=1", protocol.NonInterruptible(1)},
		{"non-intr FB=2", protocol.NonInterruptibleFixed(2)},
	}
	mut := []engine.Mutation{{AfterTasks: mutateAt, Node: P1, C: 3}}
	alt := func(t *tree.Tree) { t.SetC(P1, 3) }

	optBefore := optimal.Weight(ExampleTree()).Inv()
	mutated := ExampleTree()
	alt(mutated)
	optAfter := optimal.Weight(mutated).Inv()

	out := &ReconvergeResult{
		Tasks: tasks, MutateAt: mutateAt,
		SampleEvery: sampleEvery, Eps: eps, Window: window,
	}
	for _, p := range protocols {
		res, err := engine.Run(engine.Config{
			Tree:        ExampleTree(),
			Protocol:    p.proto,
			Tasks:       tasks,
			Mutations:   mut,
			SampleEvery: sampleEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("reconverge %q: %w", p.name, err)
		}
		sc := ReconvergeScenario{
			Name:          p.name,
			Protocol:      fmt.Sprint(p.proto),
			OptimalBefore: optBefore,
			OptimalAfter:  optAfter,
			MutateTime:    res.Completions[mutateAt-1],
			Makespan:      res.Makespan,
		}
		if rate := res.Timeline.Find("rate"); rate != nil {
			sc.Rate = *rate
			// The steady-state regime ends when the root pool empties:
			// from there the rate ramps down as buffers drain, which is
			// depletion, not instability. Convergence is judged over the
			// window (mutation, pool-exhaustion] only — pre-mutation
			// samples would count the old steady state as an excursion,
			// drain samples would drag the trailing mean to zero.
			drainT := int64(res.Makespan) + 1
			if pool := res.Timeline.Find("pool_depth"); pool != nil {
				for _, pt := range pool.Points {
					// Below 1 rather than 0: ring merges can average the
					// final pool-empty reading with its predecessor. The
					// interval ending at this sample straddles
					// exhaustion, so cut strictly before it.
					if pt.V < 1 {
						drainT = pt.T
						break
					}
				}
			}
			var times []int64
			var values []float64
			for _, pt := range rate.Points {
				if pt.T > int64(sc.MutateTime) && pt.T < drainT {
					times = append(times, pt.T)
					values = append(values, pt.V)
				}
			}
			if at, ok := stats.Converge(times, values, eps, window); ok {
				sc.Converged = true
				sc.ConvergedAt = sim.Time(at)
				sc.TimeToReconverge = sc.ConvergedAt - sc.MutateTime
			}
		}
		from := mutateAt + (tasks-mutateAt)/4
		if dt := res.Completions[tasks-1] - res.Completions[from-1]; dt > 0 {
			sc.TailRate = float64(tasks-from) / float64(dt)
		}
		out.Scenarios = append(out.Scenarios, sc)
	}
	return out, nil
}

// Render writes the re-convergence report: one rate sparkline per
// protocol (the dip-and-recover shape of Figure 7's slope change) and a
// table of time-to-re-converge against the per-phase optimal rates.
func (r *ReconvergeResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Re-convergence after c1: 1→3 at task %d of %d (sampled every %d steps)\n\n",
		r.MutateAt, r.Tasks, r.SampleEvery)
	for _, sc := range r.Scenarios {
		vals := make([]float64, len(sc.Rate.Points))
		for i, p := range sc.Rate.Points {
			vals[i] = p.V
		}
		fmt.Fprintf(w, "%-20s %s\n", sc.Name, textplot.Spark(vals))
	}
	fmt.Fprintf(w, "\n%-20s %10s %10s %10s %10s %12s\n",
		"protocol", "opt before", "opt after", "tail rate", "t_mutate", "t_reconverge")
	for _, sc := range r.Scenarios {
		reconv := "never"
		if sc.Converged {
			reconv = fmt.Sprintf("%d", sc.TimeToReconverge)
		}
		fmt.Fprintf(w, "%-20s %10s %10s %10.5f %10d %12s\n",
			sc.Name, sc.OptimalBefore.Format(5), sc.OptimalAfter.Format(5),
			sc.TailRate, sc.MutateTime, reconv)
	}
	fmt.Fprintf(w, "\nt_reconverge = first sample time from which the rate stays within ±%.0f%% of its\nfinal %d-sample mean, minus t_mutate; sim timesteps throughout\n",
		r.Eps*100, r.Window)
	return nil
}

// JSON returns the bwcs-timeline/v1 document for this result, suitable
// for bwexp -json.
func (r *ReconvergeResult) JSON() any {
	type row struct {
		Name             string                 `json:"name"`
		Protocol         string                 `json:"protocol"`
		OptimalBefore    float64                `json:"optimalBefore"`
		OptimalAfter     float64                `json:"optimalAfter"`
		TailRate         float64                `json:"tailRate"`
		MutateTime       int64                  `json:"mutateTime"`
		Makespan         int64                  `json:"makespan"`
		Converged        bool                   `json:"converged"`
		ConvergedAt      int64                  `json:"convergedAt"`
		TimeToReconverge int64                  `json:"timeToReconverge"`
		Rate             metrics.SeriesSnapshot `json:"rate"`
	}
	rows := make([]row, 0, len(r.Scenarios))
	for _, sc := range r.Scenarios {
		rows = append(rows, row{
			Name:             sc.Name,
			Protocol:         sc.Protocol,
			OptimalBefore:    sc.OptimalBefore.Float64(),
			OptimalAfter:     sc.OptimalAfter.Float64(),
			TailRate:         sc.TailRate,
			MutateTime:       int64(sc.MutateTime),
			Makespan:         int64(sc.Makespan),
			Converged:        sc.Converged,
			ConvergedAt:      int64(sc.ConvergedAt),
			TimeToReconverge: int64(sc.TimeToReconverge),
			Rate:             sc.Rate,
		})
	}
	return struct {
		Schema      string  `json:"schema"`
		Experiment  string  `json:"experiment"`
		Tasks       int64   `json:"tasks"`
		MutateAt    int64   `json:"mutateAt"`
		SampleEvery int64   `json:"sampleEvery"`
		Eps         float64 `json:"eps"`
		Window      int     `json:"window"`
		Scenarios   []row   `json:"scenarios"`
	}{
		Schema: TimelineSchemaV1, Experiment: "reconverge",
		Tasks: r.Tasks, MutateAt: r.MutateAt,
		SampleEvery: int64(r.SampleEvery), Eps: r.Eps, Window: r.Window,
		Scenarios: rows,
	}
}
