package experiments

import (
	"errors"
	"strings"
	"testing"

	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
)

// tinyOptions returns a fast configuration for tests: few trees, short
// applications, a low onset threshold, and small platforms.
func tinyOptions() Options {
	return Options{
		Trees:     12,
		Tasks:     400,
		Threshold: 50,
		Seed:      7,
		Params:    randtree.Params{MinNodes: 5, MaxNodes: 60, MinComm: 1, MaxComm: 40, Comp: 2000},
		Workers:   2,
	}
}

func TestOptionsValidate(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default invalid: %v", err)
	}
	if err := Paper().Validate(); err != nil {
		t.Fatalf("Paper invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Options)
	}{
		{"no trees", func(o *Options) { o.Trees = 0 }},
		{"one task", func(o *Options) { o.Tasks = 1 }},
		{"negative threshold", func(o *Options) { o.Threshold = -1 }},
		{"negative workers", func(o *Options) { o.Workers = -1 }},
		{"bad params", func(o *Options) { o.Params.MinComm = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := Default()
			tc.mutate(&o)
			if o.Validate() == nil {
				t.Fatalf("invalid options accepted")
			}
		})
	}
}

func TestExampleTree(t *testing.T) {
	tr := ExampleTree()
	if err := tr.Validate(); err != nil {
		t.Fatalf("example tree invalid: %v", err)
	}
	if tr.Len() != 8 {
		t.Fatalf("example tree has %d nodes, want 8", tr.Len())
	}
	// The adaptability text requires c1=1 and w1=3 at P1.
	if tr.C(P1) != 1 || tr.W(P1) != 3 {
		t.Fatalf("P1 weights (c=%d, w=%d), want (1, 3)", tr.C(P1), tr.W(P1))
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("depth %d, want 2", tr.MaxDepth())
	}
}

func TestEvaluateTreeDeterministic(t *testing.T) {
	o := tinyOptions()
	a, _, err := EvaluateTree(o, protocol.Interruptible(3), 4, nil)
	if err != nil {
		t.Fatalf("EvaluateTree: %v", err)
	}
	b, _, err := EvaluateTree(o, protocol.Interruptible(3), 4, nil)
	if err != nil {
		t.Fatalf("EvaluateTree: %v", err)
	}
	if a != b {
		t.Fatalf("outcomes differ: %+v vs %+v", a, b)
	}
	if a.Nodes < o.Params.MinNodes || a.Nodes > o.Params.MaxNodes {
		t.Fatalf("node count %d outside generator bounds", a.Nodes)
	}
	if a.UsedNodes > a.Nodes || a.UsedDepth > a.Depth {
		t.Fatalf("used subtree exceeds tree: %+v", a)
	}
	if a.UsedNodes < 1 {
		t.Fatalf("nothing computed")
	}
}

func TestRunPopulationParallelMatchesSerial(t *testing.T) {
	o := tinyOptions()
	serial := o
	serial.Workers = 1
	protos := []protocol.Protocol{protocol.Interruptible(2)}
	a, err := RunPopulation(o, protos)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	b, err := RunPopulation(serial, protos)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	for i := range a[0].Outcomes {
		if a[0].Outcomes[i] != b[0].Outcomes[i] {
			t.Fatalf("tree %d differs between parallel and serial runs", i)
		}
	}
}

func TestRunPopulationRejectsBadInput(t *testing.T) {
	if _, err := RunPopulation(tinyOptions(), nil); err == nil {
		t.Fatalf("no protocols accepted")
	}
	bad := tinyOptions()
	bad.Trees = 0
	if _, err := RunPopulation(bad, []protocol.Protocol{protocol.Interruptible(1)}); err == nil {
		t.Fatalf("bad options accepted")
	}
	if _, err := RunPopulation(tinyOptions(), []protocol.Protocol{{}}); err == nil {
		t.Fatalf("bad protocol accepted")
	}
}

func TestPopulationHelpers(t *testing.T) {
	p := Population{Outcomes: []TreeOutcome{
		{Reached: true, Onset: 100, MaxNodeUsed: 2},
		{Reached: true, Onset: 300, MaxNodeUsed: 9},
		{Reached: false, MaxNodeUsed: 50},
		{Reached: true, Onset: 150, MaxNodeUsed: 1},
	}}
	if got := p.ReachedFraction(); got != 0.75 {
		t.Fatalf("ReachedFraction = %v", got)
	}
	if got := p.ReachedWithAtMostBuffers(2); got != 0.5 {
		t.Fatalf("ReachedWithAtMostBuffers(2) = %v", got)
	}
	cdf := p.OnsetCDF([]int64{100, 200, 400})
	want := []float64{0.25, 0.5, 0.75}
	for i := range want {
		if cdf[i] != want[i] {
			t.Fatalf("OnsetCDF = %v, want %v", cdf, want)
		}
	}
}

func TestFig4AndDerivedTables(t *testing.T) {
	o := tinyOptions()
	f4, err := Fig4(o)
	if err != nil {
		t.Fatalf("Fig4: %v", err)
	}
	if len(f4.Populations) != 4 {
		t.Fatalf("populations = %d, want 4", len(f4.Populations))
	}
	// The paper's core result: IC FB=3 does at least as well as non-IC
	// IB=1. (FB=3 vs FB=1 ordering needs long horizons — FB=1 has shorter
	// startup, so tiny runs can flip it; the long-horizon ordering is
	// asserted by the full-scale harness in EXPERIMENTS.md.)
	frac := map[string]float64{}
	for i := range f4.Populations {
		p := &f4.Populations[i]
		frac[p.Protocol.Label] = p.ReachedFraction()
	}
	if frac["IC FB=3"] < frac["non-IC IB=1"] {
		t.Fatalf("IC3 %.2f < non-IC %.2f", frac["IC FB=3"], frac["non-IC IB=1"])
	}

	var buf strings.Builder
	if err := f4.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 4") || !strings.Contains(buf.String(), "IC FB=3") {
		t.Fatalf("render missing content:\n%s", buf.String())
	}

	t1, err := Table1(f4)
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(t1.NonIC) != len(Table1Buckets) || len(t1.IC) != 3 {
		t.Fatalf("table1 sizes wrong: %+v", t1)
	}
	// Non-IC column is monotone in the buffer budget.
	for i := 1; i < len(t1.NonIC); i++ {
		if t1.NonIC[i] < t1.NonIC[i-1] {
			t.Fatalf("table1 non-IC not monotone: %v", t1.NonIC)
		}
	}
	buf.Reset()
	if err := t1.Render(&buf); err != nil {
		t.Fatalf("Table1 render: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("table1 render missing title")
	}

	f6, err := Fig6(f4)
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	if f6.AllSize.Total != int64(o.Trees) {
		t.Fatalf("fig6 histogram total %d, want %d", f6.AllSize.Total, o.Trees)
	}
	buf.Reset()
	if err := f6.Render(&buf); err != nil {
		t.Fatalf("Fig6 render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 6(a)") || !strings.Contains(buf.String(), "Figure 6(b)") {
		t.Fatalf("fig6 render missing charts")
	}
}

func TestTable1RequiresNonIC(t *testing.T) {
	f4 := &Fig4Result{Populations: []Population{{Protocol: protocol.Interruptible(1)}}}
	if _, err := Table1(f4); err == nil {
		t.Fatalf("Table1 accepted missing non-IC population")
	}
}

func TestFig6RequiresBothProtocols(t *testing.T) {
	f4 := &Fig4Result{Populations: []Population{{Protocol: protocol.Interruptible(3)}}}
	if _, err := Fig6(f4); err == nil {
		t.Fatalf("Fig6 accepted missing populations")
	}
}

func TestFig3FindsExemplars(t *testing.T) {
	o := tinyOptions()
	o.Trees = 40
	r, err := Fig3(o)
	if err != nil {
		t.Fatalf("Fig3: %v", err)
	}
	if len(r.Exemplars) == 0 {
		t.Fatalf("no exemplars")
	}
	for _, ex := range r.Exemplars {
		if len(ex.Normalized) != int(o.Tasks)/2 {
			t.Fatalf("exemplar series length %d, want %d", len(ex.Normalized), o.Tasks/2)
		}
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 3(a)") {
		t.Fatalf("render missing startup chart")
	}
}

func TestFig5Shape(t *testing.T) {
	o := tinyOptions()
	o.Trees = 8
	r, err := Fig5(o)
	if err != nil {
		t.Fatalf("Fig5: %v", err)
	}
	if len(r.Classes) != len(CompClasses) {
		t.Fatalf("classes = %d", len(r.Classes))
	}
	for _, cls := range r.Classes {
		if len(cls.Populations) != 2 {
			t.Fatalf("x=%d populations = %d", cls.X, len(cls.Populations))
		}
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 5") {
		t.Fatalf("render missing title")
	}
}

func TestTable2BufferGrowthRisesWithX(t *testing.T) {
	o := tinyOptions()
	o.Trees = 10
	o.Tasks = 400
	r, err := Table2(o)
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(r.Classes) != len(CompClasses) {
		t.Fatalf("classes = %d", len(r.Classes))
	}
	// Shape: the highest-ratio class uses at least as many buffers as the
	// lowest at the final checkpoint.
	lo := r.Classes[0]
	hi := r.Classes[len(r.Classes)-1]
	if hi.MedianAt[len(hi.MedianAt)-1] < lo.MedianAt[len(lo.MedianAt)-1] {
		t.Fatalf("buffer growth did not rise with x: lo=%v hi=%v", lo.MedianAt, hi.MedianAt)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Table 2") {
		t.Fatalf("render missing title")
	}
}

func TestTable2RejectsTinyTasks(t *testing.T) {
	o := tinyOptions()
	o.Tasks = 50 // below the first checkpoint
	if _, err := Table2(o); err == nil {
		t.Fatalf("Table2 accepted task count below first checkpoint")
	}
}

func TestFig7Adaptability(t *testing.T) {
	r, err := Fig7(600, 150)
	if err != nil {
		t.Fatalf("Fig7: %v", err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(r.Scenarios))
	}
	base, slower, faster := r.Scenarios[0], r.Scenarios[1], r.Scenarios[2]
	// Baseline optimal unchanged; contention lowers it; a faster CPU
	// cannot lower it.
	if !base.OptimalBefore.Equal(base.OptimalAfter) {
		t.Fatalf("baseline optimal changed")
	}
	if !slower.OptimalAfter.Less(slower.OptimalBefore) {
		t.Fatalf("raising c1 did not lower the optimal rate")
	}
	if faster.OptimalAfter.Less(faster.OptimalBefore) {
		t.Fatalf("lowering w1 lowered the optimal rate")
	}
	// The protocol adapts: each scenario's measured tail rate lands near
	// its own post-mutation optimal rate.
	for _, sc := range r.Scenarios {
		opt := sc.OptimalAfter.Float64()
		if sc.TailRate < 0.7*opt || sc.TailRate > 1.1*opt {
			t.Fatalf("%s: tail rate %.4f far from optimal %.4f", sc.Name, sc.TailRate, opt)
		}
	}
	// Slower communication must slow the whole run relative to baseline.
	if slower.Completions[len(slower.Completions)-1] <= base.Completions[len(base.Completions)-1] {
		t.Fatalf("contention scenario not slower than baseline")
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Figure 7") {
		t.Fatalf("render missing title")
	}
}

func TestFig7RejectsLateMutation(t *testing.T) {
	if _, err := Fig7(100, 100); err == nil {
		t.Fatalf("accepted mutation at task count >= tasks")
	}
}

func TestAblationPolicy(t *testing.T) {
	o := tinyOptions()
	o.Trees = 8
	r, err := AblationPolicy(o)
	if err != nil {
		t.Fatalf("AblationPolicy: %v", err)
	}
	if len(r.Populations) != 5 {
		t.Fatalf("populations = %d", len(r.Populations))
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "bandwidth-centric") {
		t.Fatalf("render missing policies")
	}
}

func TestAblationInterrupt(t *testing.T) {
	o := tinyOptions()
	o.Trees = 8
	r, err := AblationInterrupt(o)
	if err != nil {
		t.Fatalf("AblationInterrupt: %v", err)
	}
	if len(r.Buffers) != 3 {
		t.Fatalf("buffers = %v", r.Buffers)
	}
	// Interruption never hurts at equal buffers on aggregate populations.
	for i := range r.Buffers {
		if r.IC[i]+1e-9 < r.NonIC[i] {
			t.Fatalf("FB=%d: IC %.3f below non-IC %.3f", r.Buffers[i], r.IC[i], r.NonIC[i])
		}
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
}

func TestParallelForErrorPropagates(t *testing.T) {
	o := tinyOptions()
	o.Params.Comp = 1 // still valid
	err := parallelFor(100, 4, func(_, i int) error {
		if i == 37 {
			return errTest
		}
		return nil
	})
	if !errors.Is(err, errTest) {
		t.Fatalf("err = %v, want wrapped errTest", err)
	}
	if !strings.Contains(err.Error(), "index 37") {
		t.Fatalf("err = %v, want the failing index in the message", err)
	}
}

var errTest = &testError{}

type testError struct{}

func (*testError) Error() string { return "test error" }

// TestOptimalRateIsUpperBound cross-checks engine against theorem: no
// protocol ever sustains a windowed rate above the optimal rate over the
// long run (the last window of a long-enough run).
func TestOptimalRateIsUpperBound(t *testing.T) {
	o := tinyOptions()
	for i := 0; i < 6; i++ {
		tr := randtree.TreeAt(o.Params, o.Seed, i)
		opt := optimal.Compute(tr)
		oc, res, err := EvaluateTree(o, protocol.Interruptible(3), i, nil)
		if err != nil {
			t.Fatalf("EvaluateTree: %v", err)
		}
		_ = oc
		// Whole-run rate cannot beat the optimal steady-state rate by more
		// than the startup transient allows: tasks / makespan <= rate
		// within 1%.
		whole := float64(o.Tasks) / float64(res.Makespan)
		if whole > opt.Rate.Float64()*1.01 {
			t.Fatalf("tree %d: whole-run rate %.5f exceeds optimal %.5f", i, whole, opt.Rate.Float64())
		}
	}
}
