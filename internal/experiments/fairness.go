package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/sim"
	"bwcs/internal/stats"
	"bwcs/internal/tree"
	"bwcs/internal/window"
)

// The fairness study extends the paper's evaluation to the multi-tenant
// generalization: N applications with weights 1..N share one tree under
// weighted bandwidth-centric scheduling (IC(3), the paper's best
// protocol). Two properties are measured per tree:
//
//   - Work conservation: the merged completion stream's steady-state
//     rate must match the single-application optimal — sharing the tree
//     costs the aggregate nothing. By construction the tagged run's
//     aggregate schedule is identical to the untagged one, so this also
//     cross-checks the tagging invariance end to end.
//   - Weighted fairness: measured mid-run, each tenant's share of the
//     completion stream must be monotone in its weight, and Jain's
//     index over the weight-normalized shares must be near 1.

// FairnessOutcome measures one tree shared by one tenant-count.
type FairnessOutcome struct {
	// Index is the tree's position in the random population, or -1 for
	// the paper's Figure 1 example tree.
	Index int
	// Apps is the number of tenants (weights 1..Apps).
	Apps int
	// RateRatio is the aggregate mid-run completion rate divided by the
	// single-application optimal rate 1/TreeWeight.
	RateRatio float64
	// Reached reports the paper's onset detector (Section 4.1) found the
	// merged stream reaching the optimal steady-state rate.
	Reached bool
	// Shares is each tenant's fraction of mid-run completions, ordered by
	// weight (tenant i has weight i+1).
	Shares []float64
	// Monotone reports that Shares is non-decreasing in weight (within a
	// one-percentage-point measurement tolerance).
	Monotone bool
	// Jain is Jain's fairness index over the weight-normalized shares.
	Jain float64
}

// FairnessPoint aggregates one tenant-count over the whole population.
type FairnessPoint struct {
	Apps     int
	Example  FairnessOutcome // the Figure 1 tree
	Outcomes []FairnessOutcome
}

// Within returns the fraction of outcomes (example tree included) whose
// aggregate rate is within tol of the single-application optimal.
func (p *FairnessPoint) Within(tol float64) float64 {
	n, ok := 0, 0
	for _, oc := range p.all() {
		n++
		if oc.RateRatio >= 1-tol && oc.RateRatio <= 1+tol {
			ok++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// MonotoneFraction returns the fraction of outcomes whose shares are
// monotone in weight.
func (p *FairnessPoint) MonotoneFraction() float64 {
	n, ok := 0, 0
	for _, oc := range p.all() {
		n++
		if oc.Monotone {
			ok++
		}
	}
	if n == 0 {
		return 0
	}
	return float64(ok) / float64(n)
}

// MeanJain and MinJain summarize the fairness index across the
// population; MinRatio is the worst aggregate-rate ratio observed.
func (p *FairnessPoint) MeanJain() float64 {
	var sum float64
	all := p.all()
	for _, oc := range all {
		sum += oc.Jain
	}
	if len(all) == 0 {
		return 0
	}
	return sum / float64(len(all))
}

func (p *FairnessPoint) MinJain() float64 {
	min := 1.0
	for _, oc := range p.all() {
		if oc.Jain < min {
			min = oc.Jain
		}
	}
	return min
}

func (p *FairnessPoint) MinRatio() float64 {
	first := true
	var min float64
	for _, oc := range p.all() {
		if first || oc.RateRatio < min {
			min, first = oc.RateRatio, false
		}
	}
	return min
}

func (p *FairnessPoint) all() []FairnessOutcome {
	return append([]FairnessOutcome{p.Example}, p.Outcomes...)
}

// FairnessResult is the whole study: tenant counts 2..MaxApps over the
// Figure 1 tree plus the random population.
type FairnessResult struct {
	Options Options
	Points  []FairnessPoint
}

// fairnessMaxApps is the largest tenant count the study sweeps.
const fairnessMaxApps = 8

// fairnessWorkloads builds N tenants with weights 1..N and task counts
// proportional to weight (so every tenant stays busy through the whole
// horizon and mid-run shares reflect scheduling, not early exhaustion),
// totalling tasks.
func fairnessWorkloads(n int, tasks int64) []engine.Workload {
	sumW := int64(n) * int64(n+1) / 2
	ws := make([]engine.Workload, n)
	var used int64
	for i := range ws {
		w := int64(i + 1)
		t := tasks * w / sumW
		if t < 2 {
			t = 2
		}
		ws[i] = engine.Workload{App: fmt.Sprintf("app%d", i+1), Tasks: t, Weight: w}
		used += t
	}
	// Remainder to the heaviest tenant, keeping the total exact.
	if d := tasks - used; d > 0 {
		ws[n-1].Tasks += d
	}
	return ws
}

// evaluateFairnessTree runs n tenants on tr and reduces the run to a
// FairnessOutcome.
func evaluateFairnessTree(o Options, tr *tree.Tree, index, n int) (FairnessOutcome, error) {
	p := protocol.Interruptible(3)
	res, err := engine.Run(engine.Config{
		Tree:      tr,
		Protocol:  p,
		Workloads: fairnessWorkloads(n, o.Tasks),
		Seed:      o.Seed + uint64(index+1),
	})
	if err != nil {
		return FairnessOutcome{}, fmt.Errorf("fairness tree %d, %d apps: %w", index, n, err)
	}
	opt := optimal.Compute(tr)
	out := FairnessOutcome{Index: index, Apps: n}

	// Aggregate rate over the central 60% of the merged stream (clear of
	// ramp-up and drain), against the single-application optimal.
	comps := res.Completions
	m := len(comps)
	lo, hi := comps[m/5], comps[m*4/5]
	if hi > lo {
		rate := float64(countBetween(comps, lo, hi)) / float64(hi-lo)
		out.RateRatio = rate * opt.TreeWeight.Float64()
	}
	series, err := window.New(comps, opt.TreeWeight)
	if err != nil {
		return FairnessOutcome{}, fmt.Errorf("fairness tree %d, %d apps: %w", index, n, err)
	}
	_, out.Reached = series.Onset(o.Threshold)

	// Per-tenant shares over the same window; fall back to the full run
	// when the window is degenerate (tiny trees).
	per := make([]int64, n)
	var total int64
	for i, ar := range res.Apps {
		per[i] = int64(countBetween(ar.Completions, lo, hi))
		total += per[i]
	}
	if total == 0 {
		for i, ar := range res.Apps {
			per[i] = int64(len(ar.Completions))
			total += per[i]
		}
	}
	out.Shares = make([]float64, n)
	norm := make([]float64, n)
	for i := range per {
		out.Shares[i] = float64(per[i]) / float64(total)
		norm[i] = out.Shares[i] / float64(res.Apps[i].Weight)
	}
	out.Monotone = true
	for i := 1; i < n; i++ {
		if out.Shares[i] < out.Shares[i-1]-0.01 {
			out.Monotone = false
		}
	}
	out.Jain = stats.Jain(norm)
	return out, nil
}

// countBetween counts completion times in (lo, hi]; completions are
// ascending, so binary search keeps the sweep cheap.
func countBetween(ts []sim.Time, lo, hi sim.Time) int {
	a := sort.Search(len(ts), func(i int) bool { return ts[i] > lo })
	b := sort.Search(len(ts), func(i int) bool { return ts[i] > hi })
	return b - a
}

// Fairness runs the multi-tenant fairness study: tenant counts 2..8,
// each over the Figure 1 tree plus o.Trees random trees.
func Fairness(o Options) (*FairnessResult, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	counts := make([]int, 0, fairnessMaxApps-1)
	for n := 2; n <= fairnessMaxApps; n++ {
		counts = append(counts, n)
	}
	r := &FairnessResult{Options: o, Points: make([]FairnessPoint, len(counts))}
	for ci, n := range counts {
		pt := FairnessPoint{Apps: n, Outcomes: make([]FairnessOutcome, o.Trees)}
		ex, err := evaluateFairnessTree(o, ExampleTree(), -1, n)
		if err != nil {
			return nil, err
		}
		pt.Example = ex
		var (
			mu   sync.Mutex
			done int
		)
		if err := parallelFor(o.Trees, o.workers(), func(_, i int) error {
			tr := randtree.TreeAt(o.Params, o.Seed, i)
			oc, err := evaluateFairnessTree(o, tr, i, n)
			if err != nil {
				return err
			}
			pt.Outcomes[i] = oc
			if o.Progress != nil {
				mu.Lock()
				done++
				o.Progress(ci*o.Trees+done, len(counts)*o.Trees)
				mu.Unlock()
			}
			return nil
		}); err != nil {
			return nil, err
		}
		r.Points[ci] = pt
	}
	return r, nil
}

// Render writes the per-tenant-count table plus the example tree's
// measured shares.
func (r *FairnessResult) Render(w io.Writer) error {
	fmt.Fprintf(w, "Fairness: N tenants, weights 1..N, IC(3), %d random trees + Figure 1 tree, %d tasks\n\n",
		r.Options.Trees, r.Options.Tasks)
	fmt.Fprintf(w, "%4s %12s %10s %10s %10s %10s %10s\n",
		"N", "agg<=5%off", "min ratio", "reached", "monotone", "mean Jain", "min Jain")
	for i := range r.Points {
		p := &r.Points[i]
		reached := 0
		for _, oc := range p.all() {
			if oc.Reached {
				reached++
			}
		}
		fmt.Fprintf(w, "%4d %11.1f%% %10.4f %9.1f%% %9.1f%% %10.4f %10.4f\n",
			p.Apps, 100*p.Within(0.05), p.MinRatio(),
			100*float64(reached)/float64(len(p.all())),
			100*p.MonotoneFraction(), p.MeanJain(), p.MinJain())
	}
	fmt.Fprintf(w, "\nFigure 1 tree, measured mid-run shares (weights 1..N; ideal share of tenant i is i/ΣW):\n")
	for i := range r.Points {
		p := &r.Points[i]
		fmt.Fprintf(w, "  N=%d:", p.Apps)
		for _, s := range p.Example.Shares {
			fmt.Fprintf(w, " %6.3f", s)
		}
		fmt.Fprintf(w, "   (Jain %.4f, agg ratio %.4f)\n", p.Example.Jain, p.Example.RateRatio)
	}
	return nil
}
