package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/stats"
	"bwcs/internal/textplot"
)

// Fig6Result reproduces Figure 6: probability distribution functions of
// tree size (a) and maximum depth (b), comparing the full platform trees
// with the "used" subtrees — nodes that actually computed tasks — under
// non-IC IB=1 and IC FB=3. It reuses Figure 4's populations.
type Fig6Result struct {
	Options Options
	// AllSize/AllDepth histogram every tree in the population.
	AllSize  *stats.Histogram
	AllDepth *stats.Histogram
	// UsedSize/UsedDepth histogram the used-subtree characteristics per
	// protocol, keyed by protocol label in Labels order.
	Labels    []string
	UsedSize  []*stats.Histogram
	UsedDepth []*stats.Histogram
}

// Fig6 derives the histograms from Figure 4's populations.
func Fig6(f4 *Fig4Result) (*Fig6Result, error) {
	var nonIC, ic3 *Population
	for i := range f4.Populations {
		p := &f4.Populations[i]
		switch {
		case !p.Protocol.Interruptible && p.Protocol.Grow && p.Protocol.InitialBuffers == 1:
			nonIC = p
		case p.Protocol.Interruptible && p.Protocol.InitialBuffers == 3:
			ic3 = p
		}
	}
	if nonIC == nil || ic3 == nil {
		return nil, fmt.Errorf("fig6: figure 4 result lacks non-IC IB=1 or IC FB=3")
	}
	out := &Fig6Result{
		Options:  f4.Options,
		AllSize:  stats.NewHistogram(20),
		AllDepth: stats.NewHistogram(4),
	}
	for i := range nonIC.Outcomes {
		out.AllSize.Add(int64(nonIC.Outcomes[i].Nodes))
		out.AllDepth.Add(int64(nonIC.Outcomes[i].Depth))
	}
	for _, p := range []*Population{nonIC, ic3} {
		hs, hd := stats.NewHistogram(20), stats.NewHistogram(4)
		for i := range p.Outcomes {
			hs.Add(int64(p.Outcomes[i].UsedNodes))
			hd.Add(int64(p.Outcomes[i].UsedDepth))
		}
		out.Labels = append(out.Labels, p.Protocol.Label)
		out.UsedSize = append(out.UsedSize, hs)
		out.UsedDepth = append(out.UsedDepth, hd)
	}
	return out, nil
}

// Render writes both PDF charts and a summary of means.
func (r *Fig6Result) Render(w io.Writer) error {
	plot := func(title, xlabel string, all *stats.Histogram, used []*stats.Histogram) error {
		chart := textplot.NewChart(title, 72, 14).Labels(xlabel, "fraction of trees")
		add := func(name string, h *stats.Histogram) {
			pdf := h.PDF()
			xs := make([]float64, len(pdf))
			for i := range pdf {
				xs[i] = h.BinCenter(i)
			}
			chart.Line(name, xs, pdf)
		}
		add("all nodes", all)
		for i, h := range used {
			add("used, "+r.Labels[i], h)
		}
		return chart.Render(w)
	}
	if err := plot("Figure 6(a): tree size PDF", "nodes in tree", r.AllSize, r.UsedSize); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := plot("Figure 6(b): tree depth PDF", "maximum node depth", r.AllDepth, r.UsedDepth); err != nil {
		return err
	}
	mean := func(h *stats.Histogram) float64 {
		pdf := h.PDF()
		m := 0.0
		for i, p := range pdf {
			m += p * h.BinCenter(i)
		}
		return m
	}
	fmt.Fprintf(w, "\nmean tree size %.0f, mean depth %.0f (paper: avg 245 nodes, depths 2..82)\n",
		mean(r.AllSize), mean(r.AllDepth))
	for i := range r.Labels {
		fmt.Fprintf(w, "mean used size %.0f, mean used depth %.0f under %s (paper: >50 nodes, depth ~18)\n",
			mean(r.UsedSize[i]), mean(r.UsedDepth[i]), r.Labels[i])
	}
	return nil
}
