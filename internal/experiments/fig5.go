package experiments

import (
	"fmt"
	"io"

	"bwcs/internal/protocol"
	"bwcs/internal/textplot"
)

// Fig5Class is one computation-to-communication class of Figure 5: the
// onset CDFs of non-IC IB=1 and IC FB=3 on trees generated with
// computation parameter X.
type Fig5Class struct {
	X           int64
	Populations []Population // non-IC IB=1 and IC FB=3, in that order
}

// Fig5Result reproduces Figure 5: the impact of the
// computation-to-communication ratio on both protocols. The paper uses
// 1000 trees per class and 4000 tasks.
type Fig5Result struct {
	Options Options
	Classes []Fig5Class
}

// Fig5Protocols returns the two protocols Figure 5 compares.
func Fig5Protocols() []protocol.Protocol {
	return []protocol.Protocol{
		protocol.NonInterruptible(1),
		protocol.Interruptible(3),
	}
}

// Fig5 runs the sweep over the four x classes.
func Fig5(o Options) (*Fig5Result, error) {
	out := &Fig5Result{Options: o}
	for _, x := range CompClasses {
		co := o
		co.Params = o.Params.WithComp(x)
		pops, err := RunPopulation(co, Fig5Protocols())
		if err != nil {
			return nil, fmt.Errorf("fig5 x=%d: %w", x, err)
		}
		out.Classes = append(out.Classes, Fig5Class{X: x, Populations: pops})
	}
	return out, nil
}

// Render writes the CDF chart (all classes and protocols) and the summary
// table of reached fractions per class.
func (r *Fig5Result) Render(w io.Writer) error {
	xs := gridInt64(int(r.Options.Tasks)/2, 50)
	chart := textplot.NewChart("Figure 5: onset CDF across computation-to-communication classes", 72, 18).
		Labels("onset window (tasks completed)", "fraction of trees")
	for _, cls := range r.Classes {
		for i := range cls.Populations {
			p := &cls.Populations[i]
			chart.Line(fmt.Sprintf("%s x=%d", p.Protocol.Label, cls.X), toFloats(xs), p.OnsetCDF(xs))
		}
	}
	if err := chart.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\n%-8s", "x")
	for i := range r.Classes[0].Populations {
		fmt.Fprintf(w, " %16s", r.Classes[0].Populations[i].Protocol.Label)
	}
	fmt.Fprintln(w)
	for _, cls := range r.Classes {
		fmt.Fprintf(w, "%-8d", cls.X)
		for i := range cls.Populations {
			fmt.Fprintf(w, " %15.2f%%", 100*cls.Populations[i].ReachedFraction())
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "\npaper shape: IC FB=3 high across all classes; non-IC degrades sharply as x grows\n")
	fmt.Fprintf(w, "%d trees per class, %d tasks, threshold window %d\n", r.Options.Trees, r.Options.Tasks, r.Options.Threshold)
	return nil
}
