package experiments

import (
	"strings"
	"testing"
)

func TestOverlayExperiment(t *testing.T) {
	o := tinyOptions()
	r, err := Overlay(o, 6)
	if err != nil {
		t.Fatalf("Overlay: %v", err)
	}
	if r.Graphs != 6 || len(r.MeanNormalized) != len(r.Strategies) {
		t.Fatalf("result shape wrong: %+v", r)
	}
	wins := 0
	for i, m := range r.MeanNormalized {
		if m <= 0 || m > 1.0000001 {
			t.Fatalf("strategy %s mean normalized %v outside (0,1]", r.Strategies[i], m)
		}
		wins += r.Wins[i]
	}
	// Every graph has at least one winner.
	if wins < r.Graphs {
		t.Fatalf("wins %d < graphs %d", wins, r.Graphs)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "min-comm") {
		t.Fatalf("render missing strategies")
	}
}

func TestOverlayRejectsBadInput(t *testing.T) {
	if _, err := Overlay(tinyOptions(), 0); err == nil {
		t.Fatalf("zero graphs accepted")
	}
	bad := tinyOptions()
	bad.Trees = 0
	if _, err := Overlay(bad, 3); err == nil {
		t.Fatalf("bad options accepted")
	}
}

func TestChurnStudy(t *testing.T) {
	o := tinyOptions()
	o.Trees = 6
	r, err := Churn(o, 4)
	if err != nil {
		t.Fatalf("Churn: %v", err)
	}
	if !r.Completed {
		t.Fatalf("churn lost tasks")
	}
	if r.MeanSlowdown <= 0 {
		t.Fatalf("slowdown = %v", r.MeanSlowdown)
	}
	if r.MeanRequeuedFraction < 0 || r.MeanRequeuedFraction > 1 {
		t.Fatalf("requeued fraction = %v", r.MeanRequeuedFraction)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Churn study") {
		t.Fatalf("render missing title")
	}
}

func TestChurnRejectsBadInput(t *testing.T) {
	if _, err := Churn(tinyOptions(), 1); err == nil {
		t.Fatalf("too few events accepted")
	}
	bad := tinyOptions()
	bad.Trees = 0
	if _, err := Churn(bad, 4); err == nil {
		t.Fatalf("bad options accepted")
	}
}

func TestAblationDecay(t *testing.T) {
	o := tinyOptions()
	o.Trees = 8
	r, err := AblationDecay(o)
	if err != nil {
		t.Fatalf("AblationDecay: %v", err)
	}
	// Retired buffers can regrow if they turn out to be needed, so final
	// totals only approximately shrink; decay must not inflate them.
	if r.DecayMeanTotal > r.PlainMeanTotal*1.05 {
		t.Fatalf("decay inflated buffer usage: %v > %v", r.DecayMeanTotal, r.PlainMeanTotal)
	}
	if r.DecayReached < r.PlainReached-0.25 {
		t.Fatalf("decay collapsed the reached fraction: %v vs %v", r.DecayReached, r.PlainReached)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "decay") {
		t.Fatalf("render missing content")
	}
}

func TestDetectorStudy(t *testing.T) {
	o := tinyOptions()
	o.Trees = 10
	r, err := Detector(o)
	if err != nil {
		t.Fatalf("Detector: %v", err)
	}
	total := r.BothOptimal + r.HeuristicOnly + r.ExactOnly + r.NeitherOptimal
	if total != o.Trees {
		t.Fatalf("matrix total %d != %d trees", total, o.Trees)
	}
	if a := r.Agreement(); a < 0 || a > 1 {
		t.Fatalf("agreement = %v", a)
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "Detector study") {
		t.Fatalf("render missing title")
	}
}

func TestDetectorRejectsBadOptions(t *testing.T) {
	bad := tinyOptions()
	bad.Trees = 0
	if _, err := Detector(bad); err == nil {
		t.Fatalf("bad options accepted")
	}
}

func TestOverlayImprove(t *testing.T) {
	o := tinyOptions()
	r, err := OverlayImprove(o, 3, 20)
	if err != nil {
		t.Fatalf("OverlayImprove: %v", err)
	}
	if r.RandomImproved+1e-9 < r.RandomBase {
		t.Fatalf("search made the random overlay worse: %v < %v", r.RandomImproved, r.RandomBase)
	}
	for _, v := range []float64{r.RandomBase, r.RandomImproved, r.MinComm} {
		if v <= 0 || v > 1.0000001 {
			t.Fatalf("normalized rate %v outside (0,1]", v)
		}
	}
	var buf strings.Builder
	if err := r.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !strings.Contains(buf.String(), "local search") {
		t.Fatalf("render missing content")
	}
}

func TestOverlayImproveRejectsBadInput(t *testing.T) {
	if _, err := OverlayImprove(tinyOptions(), 0, 20); err == nil {
		t.Fatalf("zero graphs accepted")
	}
}
