package experiments

import (
	"io"
	"testing"
)

func TestFairnessWorkloads(t *testing.T) {
	for n := 2; n <= fairnessMaxApps; n++ {
		ws := fairnessWorkloads(n, 1000)
		var total int64
		for i, w := range ws {
			if w.Weight != int64(i+1) {
				t.Fatalf("n=%d: workload %d weight %d", n, i, w.Weight)
			}
			if w.Tasks < 2 {
				t.Fatalf("n=%d: workload %d has %d tasks", n, i, w.Tasks)
			}
			total += w.Tasks
		}
		if total != 1000 {
			t.Fatalf("n=%d: total tasks %d, want 1000", n, total)
		}
	}
}

func TestFairness(t *testing.T) {
	o := tinyOptions()
	o.Tasks = 800 // enough completions for a stable mid-run window per tenant
	r, err := Fairness(o)
	if err != nil {
		t.Fatalf("Fairness: %v", err)
	}
	if len(r.Points) != fairnessMaxApps-1 {
		t.Fatalf("points = %d, want %d", len(r.Points), fairnessMaxApps-1)
	}
	for _, p := range r.Points {
		// The ISSUE's acceptance bar: aggregate steady-state rate within 5%
		// of the single-application optimal, shares monotone in weight.
		if f := p.Within(0.05); f < 0.9 {
			t.Errorf("N=%d: only %.0f%% of trees within 5%% of optimal", p.Apps, 100*f)
		}
		if f := p.MonotoneFraction(); f < 0.9 {
			t.Errorf("N=%d: only %.0f%% of trees share-monotone", p.Apps, 100*f)
		}
		if j := p.MeanJain(); j < 0.95 {
			t.Errorf("N=%d: mean Jain %.4f", p.Apps, j)
		}
		if len(p.Example.Shares) != p.Apps {
			t.Fatalf("N=%d: example tree has %d shares", p.Apps, len(p.Example.Shares))
		}
	}
	// Tagging invariance, observed from the outside: the merged schedule
	// of tree i is the same no matter how many tenants split the tasks, so
	// the aggregate rate ratio must be identical across all N.
	for _, p := range r.Points[1:] {
		for i := range p.Outcomes {
			if p.Outcomes[i].RateRatio != r.Points[0].Outcomes[i].RateRatio {
				t.Fatalf("tree %d: aggregate ratio differs between N=%d (%v) and N=%d (%v)",
					i, p.Apps, p.Outcomes[i].RateRatio, r.Points[0].Apps, r.Points[0].Outcomes[i].RateRatio)
			}
		}
	}
	if err := r.Render(io.Discard); err != nil {
		t.Fatalf("Render: %v", err)
	}
}
