package randtree

import (
	"testing"

	"bwcs/internal/tree"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Params
		ok   bool
	}{
		{"defaults", Defaults(), true},
		{"single node", Params{MinNodes: 1, MaxNodes: 1, MinComm: 1, MaxComm: 1, Comp: 1}, true},
		{"min nodes zero", Params{MinNodes: 0, MaxNodes: 5, MinComm: 1, MaxComm: 2, Comp: 10}, false},
		{"max < min nodes", Params{MinNodes: 10, MaxNodes: 5, MinComm: 1, MaxComm: 2, Comp: 10}, false},
		{"comm zero", Params{MinNodes: 1, MaxNodes: 5, MinComm: 0, MaxComm: 2, Comp: 10}, false},
		{"max < min comm", Params{MinNodes: 1, MaxNodes: 5, MinComm: 3, MaxComm: 2, Comp: 10}, false},
		{"comp zero", Params{MinNodes: 1, MaxNodes: 5, MinComm: 1, MaxComm: 2, Comp: 0}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok != (err == nil) {
				t.Fatalf("Validate = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestWithComp(t *testing.T) {
	p := Defaults().WithComp(500)
	if p.Comp != 500 {
		t.Fatalf("WithComp did not apply")
	}
	if p.MinNodes != 10 || p.MaxNodes != 500 {
		t.Fatalf("WithComp clobbered other fields")
	}
}

func TestGeneratedTreesAreValid(t *testing.T) {
	g := New(Defaults(), 42)
	for i := 0; i < 30; i++ {
		tr := g.Tree()
		if err := tr.Validate(); err != nil {
			t.Fatalf("tree %d invalid: %v", i, err)
		}
		p := g.Params()
		if tr.Len() < p.MinNodes || tr.Len() > p.MaxNodes {
			t.Fatalf("tree %d has %d nodes, want [%d,%d]", i, tr.Len(), p.MinNodes, p.MaxNodes)
		}
		lo := p.minComp()
		tr.Walk(func(id tree.NodeID) bool {
			if w := tr.W(id); w < lo || w > p.Comp {
				t.Fatalf("tree %d node %d weight %d outside [%d,%d]", i, id, w, lo, p.Comp)
			}
			if id != tr.Root() {
				if c := tr.C(id); c < p.MinComm || c > p.MaxComm {
					t.Fatalf("tree %d node %d comm %d outside [%d,%d]", i, id, c, p.MinComm, p.MaxComm)
				}
			}
			return true
		})
	}
}

func TestDeterminism(t *testing.T) {
	a, b := New(Defaults(), 7), New(Defaults(), 7)
	for i := 0; i < 5; i++ {
		ta, tb := a.Tree(), b.Tree()
		if ta.Len() != tb.Len() {
			t.Fatalf("tree %d sizes differ: %d vs %d", i, ta.Len(), tb.Len())
		}
		for id := tree.NodeID(0); int(id) < ta.Len(); id++ {
			if ta.Parent(id) != tb.Parent(id) || ta.W(id) != tb.W(id) || ta.C(id) != tb.C(id) {
				t.Fatalf("tree %d node %d differs between same-seed generators", i, id)
			}
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	ta, tb := New(Defaults(), 1).Tree(), New(Defaults(), 2).Tree()
	if ta.Len() == tb.Len() {
		same := true
		for id := tree.NodeID(0); int(id) < ta.Len(); id++ {
			if ta.W(id) != tb.W(id) || ta.Parent(id) != tb.Parent(id) {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("different seeds produced identical trees")
		}
	}
}

func TestTreeAtIndependentOfOrder(t *testing.T) {
	// TreeAt(i) must not depend on which trees were generated before it.
	t5 := TreeAt(Defaults(), 99, 5)
	t3 := TreeAt(Defaults(), 99, 3)
	t5again := TreeAt(Defaults(), 99, 5)
	if t5.Len() != t5again.Len() {
		t.Fatalf("TreeAt not reproducible")
	}
	for id := tree.NodeID(0); int(id) < t5.Len(); id++ {
		if t5.W(id) != t5again.W(id) || t5.Parent(id) != t5again.Parent(id) || t5.C(id) != t5again.C(id) {
			t.Fatalf("TreeAt(5) differs across calls")
		}
	}
	if t3.Len() == t5.Len() && t3.Len() > 1 && t3.W(1) == t5.W(1) && t3.C(1) == t5.C(1) {
		// Extremely unlikely for distinct indices with 500-node trees;
		// treat as failure to key streams by index.
		t.Fatalf("TreeAt(3) and TreeAt(5) look identical")
	}
}

func TestSmallCompClampsWeights(t *testing.T) {
	p := Params{MinNodes: 5, MaxNodes: 5, MinComm: 1, MaxComm: 1, Comp: 3}
	g := New(p, 1)
	tr := g.Tree()
	tr.Walk(func(id tree.NodeID) bool {
		if w := tr.W(id); w < 1 || w > 3 {
			t.Fatalf("weight %d outside [1,3]", w)
		}
		return true
	})
}

func TestSingleNodeTree(t *testing.T) {
	p := Params{MinNodes: 1, MaxNodes: 1, MinComm: 1, MaxComm: 10, Comp: 100}
	tr := New(p, 3).Tree()
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

// TestPopulationCharacteristics checks the paper's reported population
// shape: with default parameters the trees "had an average of 245 nodes,
// and ranged in depth from 2 to 82". With a uniform node count in [10,500]
// the average must be near 255; depths must span a wide range.
func TestPopulationCharacteristics(t *testing.T) {
	if testing.Short() {
		t.Skip("population statistics need many trees")
	}
	g := New(Defaults(), 2003)
	const trees = 300
	var sumNodes, minDepth, maxDepth int
	minDepth = 1 << 30
	for i := 0; i < trees; i++ {
		tr := g.Tree()
		sumNodes += tr.Len()
		d := tr.MaxDepth()
		if d < minDepth {
			minDepth = d
		}
		if d > maxDepth {
			maxDepth = d
		}
	}
	avg := float64(sumNodes) / trees
	if avg < 200 || avg > 310 {
		t.Fatalf("average nodes %.1f, want near 255", avg)
	}
	if minDepth > 6 {
		t.Fatalf("min depth %d, expected shallow trees to occur", minDepth)
	}
	if maxDepth < 30 {
		t.Fatalf("max depth %d, expected deep trees to occur", maxDepth)
	}
}

func BenchmarkGenerateDefault(b *testing.B) {
	g := New(Defaults(), 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = g.Tree()
	}
}
