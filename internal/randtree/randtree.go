// Package randtree implements the paper's random platform generator
// (Section 4.1).
//
// Each tree is described by five parameters (m, n, b, d, x):
//
//   - the tree has a random number of nodes between m and n;
//   - after creating the nodes, edges are chosen one by one between two
//     randomly chosen nodes, provided the edge does not create a cycle,
//     until the nodes form a single tree;
//   - each link gets a random task communication time between b and d;
//   - each node gets a random task computation time between x/100 and x.
//
// All distributions are uniform, matching the paper. The paper's default
// parameters are m=10, n=500, b=1, d=100, x=10000 (Defaults), which
// produced trees averaging 245 nodes with depths from 2 to 82; this
// generator reproduces those characteristics (see the package tests).
//
// Generation is deterministic given a seed, so experiment sweeps are
// reproducible and individual trees can be regenerated from their index.
package randtree

import (
	"fmt"
	"math/rand/v2"

	"bwcs/internal/tree"
)

// Params holds the five generator parameters of the paper plus a seed.
type Params struct {
	MinNodes int   // m: minimum number of nodes (inclusive)
	MaxNodes int   // n: maximum number of nodes (inclusive)
	MinComm  int64 // b: minimum task communication time (inclusive)
	MaxComm  int64 // d: maximum task communication time (inclusive)
	Comp     int64 // x: task computation times are uniform in [x/100, x]
}

// Defaults returns the paper's simulation parameters:
// m=10, n=500, b=1, d=100, x=10000.
func Defaults() Params {
	return Params{MinNodes: 10, MaxNodes: 500, MinComm: 1, MaxComm: 100, Comp: 10_000}
}

// WithComp returns p with the computation parameter x replaced. The
// paper's Figure 5 and Table 2 sweep x over {500, 1000, 5000, 10000}.
func (p Params) WithComp(x int64) Params {
	p.Comp = x
	return p
}

// Validate reports whether the parameters describe a generable platform.
func (p Params) Validate() error {
	if p.MinNodes < 1 {
		return fmt.Errorf("randtree: MinNodes %d < 1", p.MinNodes)
	}
	if p.MaxNodes < p.MinNodes {
		return fmt.Errorf("randtree: MaxNodes %d < MinNodes %d", p.MaxNodes, p.MinNodes)
	}
	if p.MinComm < 1 {
		return fmt.Errorf("randtree: MinComm %d < 1", p.MinComm)
	}
	if p.MaxComm < p.MinComm {
		return fmt.Errorf("randtree: MaxComm %d < MinComm %d", p.MaxComm, p.MinComm)
	}
	if p.Comp < 1 {
		return fmt.Errorf("randtree: Comp %d < 1", p.Comp)
	}
	return nil
}

// minComp returns the lower bound of the computation-time range, x/100,
// clamped to at least 1 so weights stay positive for small x.
func (p Params) minComp() int64 {
	lo := p.Comp / 100
	if lo < 1 {
		lo = 1
	}
	return lo
}

// Generator produces random trees. It is not safe for concurrent use; give
// each goroutine its own Generator (New is cheap).
type Generator struct {
	params Params
	rng    *rand.Rand
}

// New returns a deterministic generator for the given parameters and seed.
// It panics if the parameters do not validate; generator parameters are
// chosen by code, not by external input.
func New(p Params, seed uint64) *Generator {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return &Generator{params: p, rng: rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))}
}

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.params }

// uniform returns a uniform random value in [lo, hi].
func (g *Generator) uniform(lo, hi int64) int64 {
	return lo + g.rng.Int64N(hi-lo+1)
}

// Tree generates the next random tree.
//
// The construction follows the paper: nodes are created first, then random
// edges are accepted whenever they join two distinct components (union-
// find), until a spanning tree forms. Node 0 is designated the root (the
// data repository) and the tree is oriented away from it.
func (g *Generator) Tree() *tree.Tree {
	n := int(g.uniform(int64(g.params.MinNodes), int64(g.params.MaxNodes)))
	adj := g.spanningEdges(n)

	// Orient the undirected spanning tree away from node 0 by BFS, mapping
	// original node indices to dense tree IDs.
	w := func() int64 { return g.uniform(g.params.minComp(), g.params.Comp) }
	c := func() int64 { return g.uniform(g.params.MinComm, g.params.MaxComm) }

	t := tree.New(w())
	ids := make([]tree.NodeID, n)
	for i := range ids {
		ids[i] = tree.None
	}
	ids[0] = t.Root()
	queue := []int{0}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if ids[v] != tree.None {
				continue
			}
			ids[v] = t.AddChild(ids[u], w(), c())
			queue = append(queue, v)
		}
	}
	return t
}

// spanningEdges returns an adjacency list of a uniform-ish random spanning
// structure built by the paper's accept/reject process: repeatedly pick two
// random nodes and connect them if they are in different components.
func (g *Generator) spanningEdges(n int) [][]int {
	parent := make([]int, n)
	rank := make([]int8, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(a int) int {
		for parent[a] != a {
			parent[a] = parent[parent[a]] // path halving
			a = parent[a]
		}
		return a
	}
	union := func(a, b int) bool {
		ra, rb := find(a), find(b)
		if ra == rb {
			return false
		}
		if rank[ra] < rank[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if rank[ra] == rank[rb] {
			rank[ra]++
		}
		return true
	}

	adj := make([][]int, n)
	edges := 0
	for edges < n-1 {
		u := g.rng.IntN(n)
		v := g.rng.IntN(n)
		if u == v || !union(u, v) {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		edges++
	}
	return adj
}

// TreeAt regenerates the i'th tree of the stream that a fresh generator
// with the given seed would produce. Experiment sweeps use TreeAt(seed, i)
// to parallelize over workers while keeping tree i identical regardless of
// worker count: each tree gets its own PCG stream keyed by (seed, i).
func TreeAt(p Params, seed uint64, i int) *tree.Tree {
	g := &Generator{params: p, rng: rand.New(rand.NewPCG(seed, uint64(i)*0xbf58476d1ce4e5b9+1))}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return g.Tree()
}
