package lint

import (
	"go/ast"
	"go/types"

	"bwcs/internal/lint/analysis"
)

// deterministicPkgs are the packages whose behavior must be a pure
// function of their inputs: the simulator and engine (the paper's
// 25,000-tree sweeps are only comparable if replayable bit for bit), the
// protocol policies they host, and the optimal-rate computation the
// sweeps are judged against.
var deterministicPkgs = []string{
	"bwcs/internal/sim",
	"bwcs/internal/engine",
	"bwcs/internal/protocol",
	"bwcs/internal/optimal",
}

// SimDeterminism forbids nondeterminism sources in the simulation core:
// wall-clock reads (time.Now, time.Since), the global math/rand source
// (seeded-Rand values constructed with rand.New are fine), and map
// iteration whose body order leaks into results — a send on a channel,
// or an append to an outer slice that the function never sorts.
var SimDeterminism = &analysis.Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock reads, the global math/rand source, and " +
		"order-leaking map iteration in the deterministic simulation packages",
	Match: func(path string) bool {
		for _, p := range deterministicPkgs {
			if path == p {
				return true
			}
		}
		return false
	},
	Run: runSimDeterminism,
}

// globalRandAllowed are the math/rand and math/rand/v2 package-level
// functions that construct explicit sources instead of drawing from the
// global one.
var globalRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func runSimDeterminism(pass *analysis.Pass) error {
	for id, obj := range pass.TypesInfo.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		switch fn.Pkg().Path() {
		case "time":
			if fn.Name() == "Now" || fn.Name() == "Since" {
				pass.Reportf(id.Pos(), "time.%s reads the wall clock in a deterministic package; derive time from simulation state", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Recv() == nil && !globalRandAllowed[fn.Name()] {
				pass.Reportf(id.Pos(), "%s.%s draws from the process-global random source; use a seeded *rand.Rand carried in the run's state", fn.Pkg().Name(), fn.Name())
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if rng, ok := n.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, fd)
				}
				return true
			})
		}
	}
	return nil
}

// checkMapRange flags order-observable work inside a map-iteration body:
// channel sends, and appends to slices declared outside the loop unless
// the enclosing function visibly sorts that slice afterwards (the
// collect-then-sort idiom is the sanctioned way to iterate a map
// deterministically).
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // deferred execution; not this iteration's order
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration: map order is random, so message order becomes nondeterministic")
		case *ast.AssignStmt:
			checkRangeAppend(pass, n, rng, enclosing)
		}
		return true
	})
}

func checkRangeAppend(pass *analysis.Pass, as *ast.AssignStmt, rng *ast.RangeStmt, enclosing *ast.FuncDecl) {
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltin(pass, call.Fun, "append") || i >= len(as.Lhs) {
			continue
		}
		target, ok := as.Lhs[i].(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(target)
		if obj == nil {
			continue
		}
		// A slice declared inside the loop body is rebuilt per iteration;
		// its order cannot leak out of the loop.
		if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
			continue
		}
		if enclosing != nil && sortsSlice(pass, enclosing.Body, obj) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %q inside map iteration without a later sort: element order follows the random map order", target.Name)
	}
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.ObjectOf(id).(*types.Builtin)
	return ok
}

// sortSinks are the sort/slices entry points whose first argument is the
// slice being ordered.
var sortSinks = map[string]bool{
	"sort.Slice": true, "sort.SliceStable": true, "sort.Sort": true, "sort.Stable": true,
	"sort.Ints": true, "sort.Strings": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

// sortsSlice reports whether body contains a recognized sorting call whose
// first argument is obj.
func sortsSlice(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found || len(call.Args) == 0 {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if !sortSinks[fn.Pkg().Name()+"."+fn.Name()] {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(arg) == obj {
			found = true
		}
		return !found
	})
	return found
}
