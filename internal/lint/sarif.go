package lint

import (
	"encoding/json"
	"go/token"
	"path/filepath"
	"sort"

	"bwcs/internal/lint/analysis"
)

// SARIF 2.1.0 rendering, minimal but schema-conformant: one run, one
// driver ("bwvet"), one rule per analyzer that fired, one result per
// diagnostic. GitHub code scanning ingests this via upload-sarif and
// surfaces findings as inline PR annotations.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. File URIs are made
// relative to root (the module root) so code-scanning annotations line
// up with repository paths regardless of the checkout directory.
func SARIF(fset *token.FileSet, root string, diags []analysis.Diagnostic) ([]byte, error) {
	ruleSet := make(map[string]bool)
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		uri := pos.Filename
		if rel, err := filepath.Rel(root, pos.Filename); err == nil {
			uri = filepath.ToSlash(rel)
		}
		ruleSet[d.Analyzer] = true
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: uri},
					Region:           sarifRegion{StartLine: pos.Line, StartColumn: pos.Column},
				},
			}},
		})
	}

	docs := make(map[string]string, len(Analyzers))
	for _, a := range Analyzers {
		docs[a.Name] = firstSentence(a.Doc)
	}
	ruleIDs := make([]string, 0, len(ruleSet))
	for id := range ruleSet {
		ruleIDs = append(ruleIDs, id)
	}
	sort.Strings(ruleIDs)
	rules := make([]sarifRule, 0, len(ruleIDs))
	for _, id := range ruleIDs {
		doc := docs[id]
		if doc == "" {
			doc = id // e.g. the synthetic "bwvet-ignore" rule
		}
		rules = append(rules, sarifRule{ID: id, ShortDescription: sarifMessage{Text: doc}})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "bwvet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// firstSentence trims an analyzer Doc to its first sentence for the
// rule's short description.
func firstSentence(doc string) string {
	for i := 0; i < len(doc); i++ {
		if doc[i] == '.' || doc[i] == '\n' {
			return doc[:i]
		}
	}
	return doc
}
