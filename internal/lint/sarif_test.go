package lint_test

import (
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"bwcs/internal/lint"
	"bwcs/internal/lint/analysis"
)

// TestSARIF pins the shape GitHub code scanning ingests: schema/version
// headers, the bwvet driver with one sorted rule per analyzer that
// fired, and per-result module-relative URIs with 1-based line/column.
func TestSARIF(t *testing.T) {
	fset := token.NewFileSet()
	f := fset.AddFile("/mod/live/wire.go", -1, 1000)
	f.SetLinesForContent([]byte(strings.Repeat("xxxxxxxxx\n", 100)))
	pos := func(line, col int) token.Pos { return f.LineStart(line) + token.Pos(col-1) }

	diags := []analysis.Diagnostic{
		{Pos: pos(12, 3), Analyzer: "lockdiscipline", Message: "channel send under mutex"},
		{Pos: pos(40, 2), Analyzer: "bwvet-ignore", Message: "stale bwvet-ignore: this suppresses no finding anymore"},
	}
	data, err := lint.SARIF(fset, "/mod", diags)
	if err != nil {
		t.Fatalf("SARIF: %v", err)
	}

	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine   int `json:"startLine"`
							StartColumn int `json:"startColumn"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("emitted SARIF does not parse: %v\n%s", err, data)
	}

	if !strings.Contains(log.Schema, "sarif-schema-2.1.0") || log.Version != "2.1.0" {
		t.Errorf("schema/version = %q / %q, want SARIF 2.1.0", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "bwvet" {
		t.Errorf("driver = %q, want bwvet", run.Tool.Driver.Name)
	}

	// One rule per distinct analyzer, sorted; real analyzers carry their
	// doc sentence, the synthetic bwvet-ignore rule falls back to its id.
	if len(run.Tool.Driver.Rules) != 2 {
		t.Fatalf("rules = %+v, want 2", run.Tool.Driver.Rules)
	}
	if run.Tool.Driver.Rules[0].ID != "bwvet-ignore" || run.Tool.Driver.Rules[1].ID != "lockdiscipline" {
		t.Errorf("rule ids not sorted: %+v", run.Tool.Driver.Rules)
	}
	if run.Tool.Driver.Rules[0].ShortDescription.Text != "bwvet-ignore" {
		t.Errorf("synthetic rule description = %q, want the id itself", run.Tool.Driver.Rules[0].ShortDescription.Text)
	}
	if d := run.Tool.Driver.Rules[1].ShortDescription.Text; d == "" || strings.Contains(d, "\n") {
		t.Errorf("lockdiscipline description = %q, want its first doc sentence", d)
	}

	if len(run.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(run.Results))
	}
	r := run.Results[0]
	if r.RuleID != "lockdiscipline" || r.Level != "error" || r.Message.Text != "channel send under mutex" {
		t.Errorf("result[0] = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "live/wire.go" {
		t.Errorf("uri = %q, want module-relative live/wire.go", loc.ArtifactLocation.URI)
	}
	if loc.Region.StartLine != 12 || loc.Region.StartColumn != 3 {
		t.Errorf("region = %+v, want 12:3", loc.Region)
	}
}
