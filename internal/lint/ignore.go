package lint

import (
	"go/token"
	"os"
	"regexp"
	"strings"

	"bwcs/internal/lint/analysis"
	"bwcs/internal/lint/loader"
)

// The suppression escape hatch. The reason is mandatory: an unexplained
// ignore hides an invariant violation from the next reader.
var ignoreRE = regexp.MustCompile(`^//\s*lint:bwvet-ignore(?:[ \t]+(.*))?$`)

// ignoreDirective is one //lint:bwvet-ignore comment.
type ignoreDirective struct {
	pos        token.Pos
	line       int
	file       string
	reason     string
	standalone bool // comment is alone on its line: it covers the next line
}

// applyIgnores drops diagnostics covered by a well-formed ignore
// directive (same line as the finding, or the line directly above when
// the comment stands alone) and appends a finding for every malformed
// directive — a bwvet-ignore with no reason.
func applyIgnores(pkg *loader.Package, diags []analysis.Diagnostic) []analysis.Diagnostic {
	var directives []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				directives = append(directives, ignoreDirective{
					pos:        c.Pos(),
					line:       pos.Line,
					file:       pos.Filename,
					reason:     strings.TrimSpace(m[1]),
					standalone: onlyCommentOnLine(pos),
				})
			}
		}
	}
	if len(directives) == 0 {
		return diags
	}

	covered := func(d analysis.Diagnostic) bool {
		p := pkg.Fset.Position(d.Pos)
		for _, dir := range directives {
			if dir.reason == "" || dir.file != p.Filename {
				continue
			}
			if dir.line == p.Line || (dir.standalone && dir.line+1 == p.Line) {
				return true
			}
		}
		return false
	}
	kept := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		if dir.reason == "" {
			kept = append(kept, analysis.Diagnostic{
				Pos:      dir.pos,
				Message:  "malformed bwvet-ignore: a suppression must state its reason (//lint:bwvet-ignore <reason>)",
				Analyzer: "bwvet-ignore",
			})
		}
	}
	return kept
}

// onlyCommentOnLine reports whether nothing but whitespace precedes the
// comment on its source line, by inspecting the file text directly.
func onlyCommentOnLine(pos token.Position) bool {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	lines := strings.Split(string(data), "\n")
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}
