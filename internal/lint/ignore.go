package lint

import (
	"go/token"
	"os"
	"regexp"
	"strings"

	"bwcs/internal/lint/analysis"
	"bwcs/internal/lint/loader"
)

// The suppression escape hatch. The reason is mandatory: an unexplained
// ignore hides an invariant violation from the next reader.
var ignoreRE = regexp.MustCompile(`^//\s*lint:bwvet-ignore(?:[ \t]+(.*))?$`)

// IgnoreDirective is one //lint:bwvet-ignore comment, with the audit
// state the driver fills in while filtering diagnostics. `bwvet
// -ignores` lists these.
type IgnoreDirective struct {
	Pos        token.Pos
	End        token.Pos // end of the comment text
	Line       int
	File       string
	Reason     string
	Standalone bool // comment is alone on its line: it covers the next line
	Used       bool // suppressed at least one diagnostic this run
}

// collectIgnores gathers every bwvet-ignore directive in the package.
func collectIgnores(pkg *loader.Package) []*IgnoreDirective {
	var directives []*IgnoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				directives = append(directives, &IgnoreDirective{
					Pos:        c.Pos(),
					End:        c.End(),
					Line:       pos.Line,
					File:       pos.Filename,
					Reason:     strings.TrimSpace(m[1]),
					Standalone: onlyCommentOnLine(pos),
				})
			}
		}
	}
	return directives
}

// applyIgnores drops diagnostics covered by a well-formed ignore
// directive (same line as the finding, or the line directly above when
// the comment stands alone), marking every directive that earned its
// keep. It appends a finding for each malformed directive — a
// bwvet-ignore with no reason — and for each reasoned directive that
// suppressed nothing: a stale ignore is a silenced alarm nobody is
// ringing anymore, so it becomes an alarm itself, with a suggested fix
// deleting the comment.
func applyIgnores(pkg *loader.Package, diags []analysis.Diagnostic, directives []*IgnoreDirective) []analysis.Diagnostic {
	if len(directives) == 0 {
		return diags
	}

	covered := func(d analysis.Diagnostic) bool {
		p := pkg.Fset.Position(d.Pos)
		hit := false
		for _, dir := range directives {
			if dir.Reason == "" || dir.File != p.Filename {
				continue
			}
			if dir.Line == p.Line || (dir.Standalone && dir.Line+1 == p.Line) {
				dir.Used = true
				hit = true
			}
		}
		return hit
	}
	kept := diags[:0]
	for _, d := range diags {
		if !covered(d) {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		switch {
		case dir.Reason == "":
			kept = append(kept, analysis.Diagnostic{
				Pos:      dir.Pos,
				Message:  "malformed bwvet-ignore: a suppression must state its reason (//lint:bwvet-ignore <reason>)",
				Analyzer: "bwvet-ignore",
			})
		case !dir.Used:
			kept = append(kept, analysis.Diagnostic{
				Pos:      dir.Pos,
				Message:  "stale bwvet-ignore: this suppresses no finding anymore; delete it (reason was: " + dir.Reason + ")",
				Analyzer: "bwvet-ignore",
				SuggestedFixes: []analysis.SuggestedFix{{
					Message:   "delete the stale ignore comment",
					TextEdits: []analysis.TextEdit{deleteCommentEdit(pkg.Fset, dir)},
				}},
			})
		}
	}
	return kept
}

// deleteCommentEdit removes the directive's comment: a standalone
// comment goes away with its whole line (newline included), an inline
// one with the run of whitespace separating it from the code before it.
func deleteCommentEdit(fset *token.FileSet, dir *IgnoreDirective) analysis.TextEdit {
	start, end := dir.Pos, dir.End
	file := fset.File(dir.Pos)
	if file == nil {
		return analysis.TextEdit{Pos: start, End: end}
	}
	if dir.Standalone {
		start = file.LineStart(dir.Line)
		if dir.Line < file.LineCount() {
			end = file.LineStart(dir.Line + 1)
		}
		return analysis.TextEdit{Pos: start, End: end}
	}
	if data, err := os.ReadFile(dir.File); err == nil {
		off := file.Offset(start)
		for off > 0 && (data[off-1] == ' ' || data[off-1] == '\t') {
			off--
		}
		start = file.Pos(off)
	}
	return analysis.TextEdit{Pos: start, End: end}
}

// onlyCommentOnLine reports whether nothing but whitespace precedes the
// comment on its source line, by inspecting the file text directly.
func onlyCommentOnLine(pos token.Position) bool {
	data, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	lines := strings.Split(string(data), "\n")
	if pos.Line-1 >= len(lines) || pos.Column < 1 {
		return false
	}
	prefix := lines[pos.Line-1]
	if pos.Column-1 < len(prefix) {
		prefix = prefix[:pos.Column-1]
	}
	return strings.TrimSpace(prefix) == ""
}
