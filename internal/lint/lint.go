// Package lint is bwvet's analyzer suite: custom static checks for the
// repo invariants the compiler cannot see — simulation determinism, wire
// protocol exhaustiveness, lock discipline, atomic/plain access mixing,
// context plumbing, hot-path allocation discipline, goroutine lifecycle,
// and error discipline. cmd/bwvet drives the suite over the module; each
// analyzer has golden-fixture coverage under testdata/src.
//
// False positives are suppressed with a documented escape hatch:
//
//	//lint:bwvet-ignore <reason>
//
// on (or immediately above) the flagged line. An ignore comment without a
// reason is itself a finding — suppressions must say why — and so is an
// ignore that no longer suppresses anything (stale ignores accrete into
// blind spots; `bwvet -ignores` audits them).
package lint

import (
	"sort"

	"bwcs/internal/lint/analysis"
	"bwcs/internal/lint/loader"
)

// Analyzers is the full bwvet suite, in reporting order.
var Analyzers = []*analysis.Analyzer{
	SimDeterminism,
	WireExhaustive,
	LockDiscipline,
	AtomicMix,
	CtxFlow,
	HotPathAlloc,
	GoroLeak,
	ErrDiscipline,
}

// Check runs the given analyzers over one package, honoring each
// analyzer's Match scope, and returns the diagnostics that survive
// //lint:bwvet-ignore filtering (plus findings about malformed or stale
// ignore comments), sorted by position.
func Check(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	diags, _, err := check(pkg, analyzers)
	return diags, err
}

// Ignores runs the given analyzers over one package and returns every
// //lint:bwvet-ignore directive it holds, each marked with whether it
// actually suppressed a finding. `bwvet -ignores` renders this audit.
func Ignores(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]*IgnoreDirective, error) {
	_, directives, err := check(pkg, analyzers)
	return directives, err
}

func check(pkg *loader.Package, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, []*IgnoreDirective, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     &pkg.Facts,
		}
		name := a.Name
		pass.Report = func(d analysis.Diagnostic) {
			d.Analyzer = name
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, err
		}
	}
	directives := collectIgnores(pkg)
	diags = applyIgnores(pkg, diags, directives)
	fset := pkg.Fset
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return diags, directives, nil
}
