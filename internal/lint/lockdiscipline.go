package lint

import (
	"go/ast"
	"go/types"

	"bwcs/internal/lint/analysis"
)

// LockDiscipline flags blocking operations performed while a sync.Mutex
// or sync.RWMutex acquired in the same function is still held: channel
// sends and receives outside a select with a default clause, selects with
// no default, sync.WaitGroup.Wait, time.Sleep, and writes/reads on
// net.Conn or gob codecs. Holding a node lock across a network write is
// the exact stall shape the live runtime's ROADMAP incident came from —
// the send blocks, the lock pins every other goroutine, the tree wedges.
//
// The analysis is per-function and syntactic (no interprocedural flow):
// a branch is analyzed with a copy of the held set, and a deferred
// Unlock keeps the lock held to the end of the function. The sanctioned
// non-blocking wake pattern — select with a default — is allowed.
var LockDiscipline = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc: "flag channel operations and blocking calls made while a mutex " +
		"acquired in the same function is held",
	Run: runLockDiscipline,
}

func runLockDiscipline(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					walkHeld(pass, n.Body.List, map[string]bool{})
				}
			case *ast.FuncLit:
				// A literal's body runs later (goroutine, callback) or at
				// least in its own locking context; analyze it standalone.
				walkHeld(pass, n.Body.List, map[string]bool{})
			}
			return true
		})
	}
	return nil
}

// walkHeld traverses a statement list in order, tracking which mutexes
// are held, and flags blocking operations inside held regions. held maps
// the lock expression's printed form ("n.mu") to true.
func walkHeld(pass *analysis.Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if key, op := lockCall(pass, s.X); key != "" {
				switch op {
				case "Lock", "RLock":
					held[key] = true
				case "Unlock", "RUnlock":
					delete(held, key)
				}
				continue
			}
			checkBlocking(pass, s.X, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at return: the region spans the
			// rest of the function, which is exactly what held records.
			if key, _ := lockCall(pass, s.Call); key == "" {
				checkBlocking(pass, s.Call.Fun, held)
			}
		case *ast.GoStmt:
			// The goroutine body runs without this function's locks; the
			// FuncLit case of the inspector analyzes it standalone.
		case *ast.SendStmt:
			if len(held) > 0 {
				pass.Reportf(s.Pos(), "channel send while holding %s: a blocked receiver pins the lock (wrap in a select with default, or send after unlocking)", heldNames(held))
			}
			checkBlocking(pass, s.Value, held)
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault && len(held) > 0 {
				pass.Reportf(s.Pos(), "blocking select while holding %s: no default clause, so the lock is pinned until a case fires", heldNames(held))
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.BlockStmt:
			walkHeld(pass, s.List, held)
		case *ast.IfStmt:
			if s.Init != nil {
				walkHeld(pass, []ast.Stmt{s.Init}, held)
			}
			checkBlocking(pass, s.Cond, held)
			walkHeld(pass, s.Body.List, copyHeld(held))
			if s.Else != nil {
				walkHeld(pass, []ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			walkHeld(pass, s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					walkHeld(pass, cc.Body, copyHeld(held))
				}
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				checkBlocking(pass, e, held)
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				checkBlocking(pass, e, held)
			}
		default:
			// Other statements cannot block on their own.
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func heldNames(held map[string]bool) string {
	// Deterministic smallest name, enough for a message.
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockCall recognizes x.Lock/RLock/Unlock/RUnlock where the method is
// sync.Mutex's or sync.RWMutex's (including embedded ones) and returns
// the lock expression's printed form and the method name.
func lockCall(pass *analysis.Pass, e ast.Expr) (key, op string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	recv := recvTypeName(fn)
	if recv != "Mutex" && recv != "RWMutex" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name()
	}
	return "", ""
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// checkBlocking flags blocking expressions (receives and known blocking
// calls) reachable in e while locks are held. Function literals inside e
// are skipped — they execute in their own context.
func checkBlocking(pass *analysis.Pass, e ast.Expr, held map[string]bool) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while holding %s: the lock is pinned until a value arrives", heldNames(held))
			}
		case *ast.CallExpr:
			if msg := blockingCall(pass, n); msg != "" {
				pass.Reportf(n.Pos(), "%s while holding %s: a stalled peer pins the lock for every other goroutine", msg, heldNames(held))
			}
		}
		return true
	})
}

// blockingCall recognizes calls that can block indefinitely: WaitGroup
// waits, time.Sleep, and reads/writes on net.Conn or gob codecs (the
// live runtime's network I/O paths).
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "sync":
		if recvTypeName(fn) == "WaitGroup" && fn.Name() == "Wait" {
			return "sync.WaitGroup.Wait"
		}
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "encoding/gob":
		if fn.Name() == "Encode" || fn.Name() == "Decode" {
			return "gob." + recvTypeName(fn) + "." + fn.Name()
		}
	}
	// Interface or concrete net.Conn I/O: a Read/Write method on a type
	// satisfying net.Conn.
	if fn.Name() == "Read" || fn.Name() == "Write" {
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && implementsNetConn(t) {
			return "net.Conn." + fn.Name()
		}
	}
	return ""
}

// netConnMethods is the method-set fingerprint used to recognize
// net.Conn-like values without importing net's type object directly.
var netConnMethods = []string{"Read", "Write", "Close", "LocalAddr", "RemoteAddr", "SetDeadline"}

func implementsNetConn(t types.Type) bool {
	for _, name := range netConnMethods {
		obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
		if _, ok := obj.(*types.Func); !ok {
			return false
		}
	}
	return true
}
