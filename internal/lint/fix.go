package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"

	"bwcs/internal/lint/analysis"
)

// ApplyFixes collects the first suggested fix of every diagnostic that
// carries one and applies the edits, returning the rewritten content of
// each touched file (keyed by filename). Nothing is written to disk —
// the caller decides whether to overwrite (`bwvet -fix`) or render a
// diff (`bwvet -fix -diff`). Overlapping edits within a file are an
// error: fixes are meant to be independent, and silently dropping one
// would leave the file half-repaired.
func ApplyFixes(fset *token.FileSet, diags []analysis.Diagnostic) (map[string][]byte, error) {
	type edit struct {
		start, end int
		text       []byte
	}
	perFile := make(map[string][]edit)
	for _, d := range diags {
		if len(d.SuggestedFixes) == 0 {
			continue
		}
		for _, te := range d.SuggestedFixes[0].TextEdits {
			f := fset.File(te.Pos)
			if f == nil {
				return nil, fmt.Errorf("fix: edit position outside any known file")
			}
			end := te.End
			if !end.IsValid() {
				end = te.Pos
			}
			perFile[f.Name()] = append(perFile[f.Name()], edit{
				start: f.Offset(te.Pos),
				end:   f.Offset(end),
				text:  te.NewText,
			})
		}
	}

	out := make(map[string][]byte, len(perFile))
	for name, edits := range perFile {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("fix: %w", err)
		}
		sort.Slice(edits, func(i, j int) bool { return edits[i].start < edits[j].start })
		for i := 1; i < len(edits); i++ {
			if edits[i].start < edits[i-1].end {
				return nil, fmt.Errorf("fix: overlapping edits in %s (offsets %d and %d)", name, edits[i-1].start, edits[i].start)
			}
		}
		// Apply back-to-front so earlier offsets stay valid.
		for i := len(edits) - 1; i >= 0; i-- {
			e := edits[i]
			if e.start < 0 || e.end > len(data) || e.start > e.end {
				return nil, fmt.Errorf("fix: edit out of range in %s", name)
			}
			data = append(data[:e.start], append(append([]byte(nil), e.text...), data[e.end:]...)...)
		}
		out[name] = data
	}
	return out, nil
}

// Diff renders a minimal unified-style diff between the on-disk content
// of each fixed file and its rewritten form, for `bwvet -fix -diff`.
// Returns the empty string when nothing would change.
func Diff(fixed map[string][]byte) (string, error) {
	names := make([]string, 0, len(fixed))
	for name := range fixed {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		orig, err := os.ReadFile(name)
		if err != nil {
			return "", fmt.Errorf("diff: %w", err)
		}
		if string(orig) == string(fixed[name]) {
			continue
		}
		fmt.Fprintf(&b, "--- %s\n+++ %s (fixed)\n", name, name)
		writeHunks(&b, strings.Split(string(orig), "\n"), strings.Split(string(fixed[name]), "\n"))
	}
	return b.String(), nil
}

// writeHunks emits one hunk covering the changed region: the lines
// before the first difference and after the last are elided. bwvet
// fixes are local, so a single hunk per file reads fine.
func writeHunks(b *strings.Builder, oldLines, newLines []string) {
	pre := 0
	for pre < len(oldLines) && pre < len(newLines) && oldLines[pre] == newLines[pre] {
		pre++
	}
	post := 0
	for post < len(oldLines)-pre && post < len(newLines)-pre &&
		oldLines[len(oldLines)-1-post] == newLines[len(newLines)-1-post] {
		post++
	}
	fmt.Fprintf(b, "@@ -%d,%d +%d,%d @@\n", pre+1, len(oldLines)-pre-post, pre+1, len(newLines)-pre-post)
	for _, l := range oldLines[pre : len(oldLines)-post] {
		fmt.Fprintf(b, "-%s\n", l)
	}
	for _, l := range newLines[pre : len(newLines)-post] {
		fmt.Fprintf(b, "+%s\n", l)
	}
}
