package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bwcs/internal/lint/analysis"
)

// HotPathAlloc enforces allocation discipline on the steady-state hot
// paths: any function annotated //bwvet:hotpath must not contain
// heap-allocating constructs — map/slice composite literals,
// address-taken composite literals, make/new, fmt.Sprintf-family and
// errors.New calls, non-constant string concatenation, capturing
// closures, interface boxing of non-pointer values at call sites, and
// append growth on slices declared fresh in the same function.
//
// Two escape-aware allowances keep the rule honest rather than noisy:
// allocations lexically inside an if-statement whose condition involves
// len/cap or a nil comparison are init-gates (the free-list-miss /
// buffer-growth / lazy-map idiom: amortized, not per-call), and
// allocations inside panic arguments or a return carrying a non-nil
// error are cold paths (taken once, on failure). Everything else needs
// a //lint:bwvet-ignore with a reason.
//
// The seed list below names the functions PR 8's allocation hunt fought
// for (sim event loop, window onset scan, optimal.Weight, the binary
// codec); a seeded function missing its annotation is itself a finding,
// so the protection cannot be dropped by deleting a comment. The
// TestHotPathAllocsPinned probes cross-check the same functions against
// testing.AllocsPerRun, so the static rule and runtime truth cannot
// drift apart.
var HotPathAlloc = &analysis.Analyzer{
	Name: "hotpathalloc",
	Doc: "functions annotated //bwvet:hotpath must not contain " +
		"heap-allocating constructs outside init-gates and cold error paths",
	Run: runHotPathAlloc,
}

// HotPathSeeds maps import paths to the function keys ("Func" or
// "Recv.Method") that must carry the //bwvet:hotpath annotation: the
// warm paths whose zero-allocation behavior the ROADMAP's throughput
// numbers depend on. Exported so the runtime-probe audit test can
// cross-check it against the annotations actually present.
var HotPathSeeds = map[string][]string{
	"bwcs/internal/sim": {
		"Simulator.Schedule", "Simulator.Cancel", "Simulator.Step",
		"Simulator.Run", "Simulator.RunUntil", "Simulator.recycle",
		"Simulator.push", "Simulator.remove", "Simulator.up",
		"Simulator.down", "Simulator.swap",
	},
	"bwcs/internal/window": {
		"Series.cmpOptimal", "Series.span", "Series.AboveOptimal",
		"Series.AtOrAboveOptimal", "Series.Onset", "Series.OnsetInclusive",
		"Series.onset", "Series.Windows", "Series.Reached",
	},
	"bwcs/internal/optimal": {
		"Weight", "weightCalc.fork", "weightCalc.sortedKids",
	},
	"bwcs/internal/metrics": {
		"TimeSeries.Append", "TimeSeries.downsample",
	},
	"bwcs/live": {
		"appendFrame", "decodeFrame", "appendStringField", "appendBytesField",
		"appendBool", "appendU64Field", "readFrame", "interner.intern",
		"frameReader.uvarint", "frameReader.intField", "frameReader.raw",
		"frameReader.boolField",
	},
}

// HotPathKey returns fd's key in HotPathSeeds form: "Func" for a plain
// function, "Recv.Method" for a method (pointer receivers included).
func HotPathKey(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if se, ok := t.(*ast.StarExpr); ok {
			t = se.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// IsHotPathAnnotated reports whether fd carries the //bwvet:hotpath
// directive in its doc comment.
func IsHotPathAnnotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == "//bwvet:hotpath" || strings.HasPrefix(c.Text, "//bwvet:hotpath ") {
			return true
		}
	}
	return false
}

func runHotPathAlloc(pass *analysis.Pass) error {
	seedSet := make(map[string]bool)
	for _, k := range HotPathSeeds[pass.Pkg.Path()] {
		seedSet[k] = true
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			key := HotPathKey(fd)
			annotated := IsHotPathAnnotated(fd)
			if seedSet[key] && !annotated {
				pass.Reportf(fd.Name.Pos(), "%s is a seeded hot path (bwvet hotpathalloc config) but is missing its //bwvet:hotpath annotation", key)
			}
			if annotated || seedSet[key] {
				checkHotFunc(pass, fd, key)
			}
		}
	}
	return nil
}

// span is a half-open source range [start, end).
type span struct{ start, end token.Pos }

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if s.start <= pos && pos < s.end {
			return true
		}
	}
	return false
}

// checkHotFunc walks one annotated function body and reports every
// allocating construct outside the cold and init-gate allowances.
func checkHotFunc(pass *analysis.Pass, fd *ast.FuncDecl, key string) {
	cold := coldSpans(pass, fd)
	gates := gateSpans(pass, fd)
	fresh := freshSlices(pass, fd)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if capt := capturedVar(pass, fd, n); capt != "" {
				if !inSpans(cold, n.Pos()) {
					pass.Reportf(n.Pos(), "hot path %s: closure captures %s, allocating per call; use a method value or hoist state into a struct", key, capt)
				}
				return false
			}
			return true
		case *ast.CompositeLit:
			if inSpans(cold, n.Pos()) {
				return true
			}
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "hot path %s: map literal allocates on every call; hoist it or reuse a field", key)
			case *types.Slice:
				pass.Reportf(n.Pos(), "hot path %s: slice literal allocates on every call; reuse a buffer", key)
			}
		case *ast.UnaryExpr:
			if n.Op != token.AND {
				return true
			}
			cl, ok := ast.Unparen(n.X).(*ast.CompositeLit)
			if !ok || inSpans(cold, n.Pos()) {
				return true
			}
			if t := pass.TypesInfo.TypeOf(cl); t != nil {
				switch t.Underlying().(type) {
				case *types.Struct, *types.Array:
					pass.Reportf(n.Pos(), "hot path %s: &composite literal escapes to the heap; reuse a pooled or field-backed value", key)
				}
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD || inSpans(cold, n.Pos()) {
				return true
			}
			if t := pass.TypesInfo.TypeOf(n); t != nil && isString(t) {
				if tv, ok := pass.TypesInfo.Types[n]; !ok || tv.Value == nil {
					pass.Reportf(n.Pos(), "hot path %s: string concatenation allocates; append into a reusable []byte instead", key)
				}
			}
		case *ast.CallExpr:
			checkHotCall(pass, fd, n, key, cold, gates, fresh)
		}
		return true
	})
}

func checkHotCall(pass *analysis.Pass, fd *ast.FuncDecl, call *ast.CallExpr, key string, cold, gates []span, fresh map[types.Object]bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "make", "new":
				if !inSpans(cold, call.Pos()) && !inSpans(gates, call.Pos()) {
					pass.Reportf(call.Pos(), "hot path %s: %s allocates on every call; hoist the allocation or gate it behind a len/cap/nil check", key, b.Name())
				}
			case "append":
				if len(call.Args) == 0 || inSpans(cold, call.Pos()) {
					return
				}
				if dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok && fresh[pass.TypesInfo.ObjectOf(dst)] {
					pass.Reportf(call.Pos(), "hot path %s: append grows fresh slice %s without preallocation; size it up front or reuse a buffer", key, dst.Name)
				}
			}
			return
		}
	}

	// Formatting and error-construction helpers allocate their result.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok && fn.Pkg() != nil {
			full := fn.Pkg().Path() + "." + fn.Name()
			switch full {
			case "fmt.Sprintf", "fmt.Sprint", "fmt.Sprintln", "fmt.Errorf", "errors.New":
				if !inSpans(cold, call.Pos()) {
					pass.Reportf(call.Pos(), "hot path %s: %s allocates on every call; restrict it to cold error paths", key, full)
				}
				return
			}
		}
	}

	// Interface boxing: a non-pointer, non-constant concrete argument
	// passed to an interface parameter is copied to the heap.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok || inSpans(cold, call.Pos()) {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // the slice is passed through, no per-element boxing
			}
			pt = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && (tv.Value != nil || tv.IsNil()) {
			continue // constants and nil are boxed statically
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
			continue // pointer-shaped: stored directly in the interface word
		}
		pass.Reportf(arg.Pos(), "hot path %s: passing non-pointer %s to an interface parameter boxes it on the heap", key, at.String())
	}
}

// coldSpans collects the regions where allocation is tolerated because
// execution reaches them at most once per failure: panic arguments and
// return statements that carry a non-nil error.
func coldSpans(pass *analysis.Pass, fd *ast.FuncDecl) []span {
	var spans []span
	errIdx := errorResultIndexes(pass, fd)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && b.Name() == "panic" {
					spans = append(spans, span{n.Pos(), n.End()})
				}
			}
		case *ast.ReturnStmt:
			if returnsNonNilError(n, errIdx) {
				spans = append(spans, span{n.Pos(), n.End()})
			}
		}
		return true
	})
	return spans
}

// errorResultIndexes returns the positions of error-typed results in
// fd's signature (flattened), or nil if there are none.
func errorResultIndexes(pass *analysis.Pass, fd *ast.FuncDecl) []int {
	obj := pass.TypesInfo.ObjectOf(fd.Name)
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	var idx []int
	for i := 0; i < sig.Results().Len(); i++ {
		if named, ok := sig.Results().At(i).Type().(*types.Named); ok &&
			named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
			idx = append(idx, i)
		}
	}
	return idx
}

func returnsNonNilError(ret *ast.ReturnStmt, errIdx []int) bool {
	if len(errIdx) == 0 {
		return false
	}
	for _, i := range errIdx {
		if i >= len(ret.Results) {
			// Bare return or a multi-value call: treat as cold only when
			// the single result is itself a call (its error flows through).
			return len(ret.Results) == 1
		}
		if id, ok := ast.Unparen(ret.Results[i]).(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		return true
	}
	return false
}

// gateSpans collects if-statements whose condition (or init) involves a
// len/cap call or a nil comparison: the free-list-miss / buffer-growth /
// lazy-init idiom, where allocation is amortized rather than per-call.
// The span covers the whole if (else branch included: "free list hit,
// else allocate" gates the allocation in the else arm).
func gateSpans(pass *analysis.Pass, fd *ast.FuncDecl) []span {
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		gated := false
		check := func(e ast.Node) {
			if e == nil {
				return
			}
			ast.Inspect(e, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.CallExpr:
					if id, ok := ast.Unparen(m.Fun).(*ast.Ident); ok {
						if b, isBuiltin := pass.TypesInfo.ObjectOf(id).(*types.Builtin); isBuiltin && (b.Name() == "len" || b.Name() == "cap") {
							gated = true
						}
					}
				case *ast.BinaryExpr:
					if m.Op == token.EQL || m.Op == token.NEQ {
						if isNilIdent(m.X) || isNilIdent(m.Y) {
							gated = true
						}
					}
				}
				return true
			})
		}
		if ifs.Init != nil {
			check(ifs.Init)
		}
		check(ifs.Cond)
		if gated {
			spans = append(spans, span{ifs.Pos(), ifs.End()})
		}
		return true
	})
	return spans
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// freshSlices returns the objects of local variables declared as empty
// slices with no capacity (`var x []T`): appending to one of these
// grows from zero on every call.
func freshSlices(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gd, ok := decl.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, s := range gd.Specs {
			vs, ok := s.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.ObjectOf(name)
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// capturedVar returns the name of a variable the literal captures from
// the enclosing function (forcing a heap-allocated closure), or "".
func capturedVar(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	capt := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() {
			return true
		}
		// Captured iff declared inside the enclosing function but outside
		// the literal (package-level vars are not captures).
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			capt = v.Name()
		}
		return true
	})
	return capt
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
