// Fixture for the atomicmix analyzer: a field touched through
// sync/atomic anywhere must be touched that way everywhere.
package atomicmix

import "sync/atomic"

type counters struct {
	hits  int64
	safe  int64
	typed atomic.Int64
}

func bump(c *counters) {
	atomic.AddInt64(&c.hits, 1)
	atomic.AddInt64(&c.safe, 1)
}

func plainRead(c *counters) int64 {
	return c.hits // want "field \"hits\" is accessed via sync/atomic elsewhere but plainly here"
}

func plainWrite(c *counters) {
	c.hits = 0 // want "field \"hits\" is accessed via sync/atomic elsewhere but plainly here"
}

func atomicRead(c *counters) int64 {
	return atomic.LoadInt64(&c.safe) // ok: consistently atomic
}

func construct() *counters {
	return &counters{} // ok: zero value before publication
}

func typedField(c *counters) int64 {
	return c.typed.Load() // ok: the typed wrappers cannot be mixed
}
