// Fixture for the lockdiscipline analyzer: blocking operations under a
// held mutex are flagged; the non-blocking select-with-default wake
// pattern, sends after release, and goroutine bodies pass.
package lock

import (
	"encoding/gob"
	"sync"
	"time"
)

type node struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func sendHeld(n *node) {
	n.mu.Lock()
	n.ch <- 1 // want "channel send while holding n.mu"
	n.mu.Unlock()
	n.ch <- 2 // ok: released above
}

func recvHeldDeferred(n *node) int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return <-n.ch // want "channel receive while holding n.mu"
}

func rlockHeld(n *node) int {
	n.rw.RLock()
	defer n.rw.RUnlock()
	return <-n.ch // want "channel receive while holding n.rw"
}

func blockingSelect(n *node) {
	n.mu.Lock()
	select { // want "blocking select while holding n.mu"
	case v := <-n.ch:
		_ = v
	}
	n.mu.Unlock()
}

func nonBlockingWake(n *node) {
	n.mu.Lock()
	select { // ok: default clause makes the send non-blocking
	case n.ch <- 1:
	default:
	}
	n.mu.Unlock()
}

func waitHeld(n *node) {
	n.mu.Lock()
	n.wg.Wait() // want "sync.WaitGroup.Wait while holding n.mu"
	n.mu.Unlock()
}

func sleepHeld(n *node) {
	n.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding n.mu"
	n.mu.Unlock()
}

func encodeHeld(n *node, enc *gob.Encoder) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return enc.Encode(1) // want "gob.Encoder.Encode while holding n.mu"
}

// fakeConn carries net.Conn's method-set fingerprint; the analyzer
// recognizes it structurally without importing net.
type fakeConn struct{}

func (fakeConn) Read(p []byte) (int, error)    { return 0, nil }
func (fakeConn) Write(p []byte) (int, error)   { return 0, nil }
func (fakeConn) Close() error                  { return nil }
func (fakeConn) LocalAddr() string             { return "" }
func (fakeConn) RemoteAddr() string            { return "" }
func (fakeConn) SetDeadline(t time.Time) error { return nil }

func connWriteHeld(n *node, c fakeConn) {
	n.mu.Lock()
	_, _ = c.Write(nil) // want "net.Conn.Write while holding n.mu"
	n.mu.Unlock()
}

func branchRelease(n *node, cond bool) {
	n.mu.Lock()
	if cond {
		n.mu.Unlock()
		n.ch <- 1 // ok: released on this path
		return
	}
	n.mu.Unlock()
}

func goroutineBody(n *node) {
	n.mu.Lock()
	go func() {
		n.ch <- 1 // ok: runs without this function's locks
	}()
	n.mu.Unlock()
}
