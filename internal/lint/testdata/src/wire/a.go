// Fixture for the wireexhaustive analyzer: a switch on a frame-kind type
// must enumerate every kind constant or carry an explicit default.
package wire

type kind uint8

const (
	kindA kind = iota + 1
	kindB
	kindC
)

type frame uint8

const (
	FrameAny frame = iota
	FrameA
)

// other is not a frame-kind type: its constants carry no kind/Frame
// prefix, so its switches are out of scope.
type other uint8

const (
	otherX other = iota
	otherY
)

func missingCase(k kind) int {
	switch k { // want "switch on kind is not exhaustive and has no default: missing kindC"
	case kindA:
		return 1
	case kindB:
		return 2
	}
	return 0
}

func exhaustive(k kind) int {
	switch k {
	case kindA, kindB:
		return 1
	case kindC:
		return 2
	}
	return 0
}

func defaulted(k kind) int {
	switch k {
	case kindA:
		return 1
	default:
		return 0
	}
}

func frameMissing(f frame) bool {
	switch f { // want "switch on frame is not exhaustive and has no default: missing FrameA"
	case FrameAny:
		return true
	}
	return false
}

func unscoped(o other) bool {
	switch o {
	case otherX:
		return true
	}
	return false
}

// envelope mirrors the live wire message after the multi-application
// change: the frame kind plus an appended application tag. Switches that
// dispatch on a tagged envelope's kind field are the exact shape the relay
// loops use, so the analyzer must see through the selector.
type envelope struct {
	Kind kind
	App  string
}

func relayTagged(m envelope) string {
	switch m.Kind { // want "switch on kind is not exhaustive and has no default: missing kindB"
	case kindA:
		return m.App
	case kindC:
		return ""
	}
	return m.App
}

func relayTaggedExhaustive(m envelope) string {
	switch m.Kind {
	case kindA, kindB, kindC:
		return m.App
	}
	return ""
}

// marshalMissing mirrors the binary codec's appendFrame: an encoder
// switch that deliberately carries no default, so a kind constant added
// without a marshal case fails bwvet instead of silently erroring at
// runtime on the new frame.
func marshalMissing(buf []byte, m envelope) []byte {
	switch m.Kind { // want "switch on kind is not exhaustive and has no default: missing kindC"
	case kindA:
		buf = append(buf, 1, m.App[0])
	case kindB:
		buf = append(buf, 2)
	}
	return buf
}

// marshalExhaustive is the passing shape appendFrame keeps: every kind
// has an encode arm and unknown kinds are unrepresentable.
func marshalExhaustive(buf []byte, m envelope) []byte {
	switch m.Kind {
	case kindA, kindB:
		buf = append(buf, byte(m.Kind))
	case kindC:
		buf = append(buf, 3, m.App[0])
	}
	return buf
}

func perAppCounters(m envelope) map[string]int {
	counts := map[string]int{}
	switch m.Kind {
	case kindA:
		counts[m.App]++
	default:
		// tagged frames of any future kind still land somewhere
		counts[""]++
	}
	return counts
}
