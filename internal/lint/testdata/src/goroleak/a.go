// Fixture for the goroleak analyzer: every go statement must show a
// shutdown path — WaitGroup Add/Done pairing (same-function or
// cross-method via the package fact store), a done/ctx wait in the
// body, or a range over a channel.
package goroleak

import "sync"

type node struct {
	wg   sync.WaitGroup
	done chan struct{}
}

func (n *node) worker() {
	defer n.wg.Done()
}

func (n *node) watcher() {
	for {
		select {
		case <-n.done:
			return
		}
	}
}

func (n *node) idle() {}

func (n *node) spawnTracked() {
	n.wg.Add(1)
	go n.worker() // cross-method pairing: worker's Done is a package fact
}

func (n *node) spawnWatcher() {
	go n.watcher() // lifecycle wait in the body: allowed
}

func (n *node) spawnUntracked() {
	go n.worker() // want "goroutine node.worker retires a WaitGroup \\(wg\\) but no matching Add is visible before the spawn in spawnUntracked"
}

func (n *node) spawnLeaky() {
	go n.idle() // want "goroutine node.idle has no visible shutdown path"
}

func inlinePaired(n *node) {
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
	}()
}

func inlineUnpaired(n *node) {
	go func() { // want "goroutine calls n.wg.Done but no n.wg.Add is visible before the spawn in inlineUnpaired"
		defer n.wg.Done()
	}()
}

func inlineDoneWait(n *node) {
	go func() {
		<-n.done
	}()
}

func inlineRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func inlineLeaky() {
	go func() { // want "goroutine has no visible shutdown path"
		println("working")
	}()
}

func freeHelper() {}

func spawnFreeFunc() {
	go freeHelper() // want "goroutine freeHelper has no visible shutdown path"
}
