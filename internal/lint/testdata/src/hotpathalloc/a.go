// Fixture for the hotpathalloc analyzer: annotated functions must not
// contain heap-allocating constructs, with init-gate and cold-path
// allowances. Unannotated functions are never checked.
package hotpathalloc

import "fmt"

type point struct{ x, y int }

type state struct {
	buf []byte
	m   map[string]int
}

func sink(v any) {}

//bwvet:hotpath
func allocEverything(name string) string {
	b := make([]byte, 8)           // want "make allocates on every call"
	p := new(int)                  // want "new allocates on every call"
	m := map[string]int{}          // want "map literal allocates"
	sl := []int{1, 2}              // want "slice literal allocates"
	pt := &point{1, 2}             // want "&composite literal escapes to the heap"
	s := fmt.Sprintf("%d", len(b)) // want "fmt.Sprintf allocates"
	_, _, _, _, _ = p, m, sl, pt, s
	return "x-" + name // want "string concatenation allocates"
}

//bwvet:hotpath
func closureAndBoxing(n int) {
	f := func() int { return n } // want "closure captures n"
	_ = f
	pt := point{1, 2} // value literal: no heap allocation
	sink(pt)          // want "passing non-pointer hotpathalloc.point to an interface parameter"
	sink(&pt)         // pointer: stored directly in the interface word
}

//bwvet:hotpath
func freshAppend() int {
	var out []int
	out = append(out, 1) // want "append grows fresh slice out without preallocation"
	return len(out)
}

//bwvet:hotpath
func (s *state) gatedAndReused(v byte) {
	if cap(s.buf) < 16 {
		s.buf = make([]byte, 0, 16) // growth gate: amortized, allowed
	}
	if s.m == nil {
		s.m = make(map[string]int) // lazy-init gate: allowed
	}
	s.buf = append(s.buf, v) // field-backed append: allowed
}

//bwvet:hotpath
func coldPaths(n int) error {
	if n < 0 {
		return fmt.Errorf("bad n %d", n) // cold error path: allowed
	}
	if n > 100 {
		panic(fmt.Sprintf("huge %d", n)) // panic argument: allowed
	}
	return nil
}

func notAnnotated() []int {
	return []int{1, 2, 3} // unannotated: allocation is fine
}
