// Fixture for //lint:bwvet-ignore handling, exercised through the
// lockdiscipline analyzer: a reasoned ignore on the flagged line or the
// line above suppresses the finding; an ignore with no reason is itself
// reported (and suppresses nothing).
package ignore

import "sync"

type t struct {
	mu sync.Mutex
	ch chan int
}

func sameLine(x *t) {
	x.mu.Lock()
	x.ch <- 1 //lint:bwvet-ignore fixture: reasoned same-line suppression
	x.mu.Unlock()
}

func lineAbove(x *t) {
	x.mu.Lock()
	//lint:bwvet-ignore fixture: reasoned suppression covering the next line
	x.ch <- 2
	x.mu.Unlock()
}

func missingReason(x *t) {
	x.mu.Lock()
	x.ch <- 3 //lint:bwvet-ignore
	// want-above "channel send while holding x.mu" "malformed bwvet-ignore: a suppression must state its reason"
	x.mu.Unlock()
}

func unsuppressed(x *t) {
	x.mu.Lock()
	x.ch <- 4 // want "channel send while holding x.mu"
	x.mu.Unlock()
}
