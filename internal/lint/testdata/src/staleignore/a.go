// Fixture for stale-ignore detection, exercised through lockdiscipline:
// a reasoned ignore that suppresses a live finding is kept quiet, but
// one whose finding has since been fixed becomes a finding itself, with
// a suggested fix deleting the comment (see a.go.golden).
package staleignore

import "sync"

type t struct {
	mu sync.Mutex
	ch chan int
}

func stillNeeded(x *t) {
	x.mu.Lock()
	x.ch <- 1 //lint:bwvet-ignore fixture: finding still live, suppression earns its keep
	x.mu.Unlock()
}

func fixedLongAgo(x *t) {
	x.mu.Lock()
	x.mu.Unlock()
	//lint:bwvet-ignore fixture: the send this excused was removed
	// want-above "stale bwvet-ignore: this suppresses no finding anymore"
	x.ch <- 2
}

func inlineStale(x *t) {
	x.ch <- 3 //lint:bwvet-ignore fixture: nothing locked here anymore // want "stale bwvet-ignore"
}
