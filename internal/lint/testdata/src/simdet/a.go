// Fixture for the simdeterminism analyzer: wall-clock reads, the global
// math/rand source, and order-leaking map iteration are flagged; seeded
// sources and the collect-then-sort idiom pass.
package simdet

import (
	"math/rand/v2"
	"sort"
	"time"
)

type state struct {
	byID map[int]string
	out  chan string
	rng  *rand.Rand
}

func wallClock() time.Duration {
	start := time.Now()    // want "time.Now reads the wall clock in a deterministic package"
	return time.Since(start) // want "time.Since reads the wall clock in a deterministic package"
}

func globalRand() int {
	return rand.IntN(7) // want "rand.IntN draws from the process-global random source"
}

func seededRand(s *state) int {
	r := rand.New(rand.NewPCG(1, 2)) // ok: explicit source construction
	return r.IntN(7) + s.rng.IntN(7) // ok: method on a carried *rand.Rand
}

func leakyIteration(s *state) []string {
	var names []string
	for _, v := range s.byID {
		names = append(names, v) // want "append to \"names\" inside map iteration without a later sort"
		s.out <- v               // want "channel send inside map iteration"
	}
	return names
}

func collectThenSort(s *state) []string {
	names := make([]string, 0, len(s.byID))
	for _, v := range s.byID {
		names = append(names, v) // ok: sorted below before the order can leak
	}
	sort.Strings(names)
	return names
}

func loopLocal(s *state) int {
	n := 0
	for _, v := range s.byID {
		parts := []string{}
		parts = append(parts, v) // ok: rebuilt every iteration
		n += len(parts)
	}
	return n
}
