// Fixture for the ctxflow analyzer: exported functions that accept a
// context must thread it, not shadow it with a fresh Background/TODO.
package ctxflow

import "context"

func Unused(ctx context.Context, n int) int { // want "exported Unused never uses its context.Context parameter \"ctx\""
	return n + 1
}

func Blank(_ context.Context) {} // want "exported Blank discards its context.Context parameter"

func Anonymous(context.Context) {} // want "exported Anonymous discards its context.Context parameter"

func Detached(ctx context.Context) error {
	_ = ctx.Err()
	return run(context.Background()) // want "Detached has a ctx parameter but calls context.Background here"
}

func DetachedTODO(ctx context.Context) error {
	_ = ctx.Err()
	return run(context.TODO()) // want "DetachedTODO has a ctx parameter but calls context.TODO here"
}

func NilGuard(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background() // ok: the sanctioned nil-guard
	}
	return run(ctx)
}

func Threaded(ctx context.Context) error {
	ctx, cancel := context.WithCancel(ctx) // ok: derived from the parameter
	defer cancel()
	return run(ctx)
}

func unexported(ctx context.Context, n int) int { // ok: internal helpers are out of scope
	return n
}

func run(ctx context.Context) error { return ctx.Err() }
