// Fixture for the errdiscipline analyzer: silently discarded errors are
// findings outside the teardown allowlist, and fmt.Errorf wrapping must
// use %w (with a suggested fix rewriting the verb — see a.go.golden).
package errdiscipline

import (
	"bufio"
	"errors"
	"fmt"
)

type conn struct{}

func (conn) Close() error               { return nil }
func (conn) SetWriteDeadline(int) error { return nil }
func (conn) send(string) error          { return nil }

func mayFail() error { return errors.New("boom") }

func discards(c conn) {
	_ = mayFail()   // want "error discarded: mayFail returns an error that is dropped"
	mayFail()       // want "error ignored: this bare call drops the error from mayFail"
	defer mayFail() // want "error ignored: this deferred call drops the error from mayFail"
	_ = c.send("x") // want "error discarded: c.send returns an error that is dropped"
}

func teardown(c conn, w *bufio.Writer) {
	_ = c.Close()             // Close: peer already gone
	defer c.Close()           // deferred teardown
	_ = c.SetWriteDeadline(0) // deadline setters: next I/O reports it
	_ = w.Flush()             // bufio teardown flush
	fmt.Println("drained")    // terminal write
}

func reasoned() {
	_ = mayFail() //lint:bwvet-ignore fixture: demonstrating a reasoned suppression
}

func wrap(err error) error {
	return fmt.Errorf("decode %q failed: %v", "frame", err) // want "fmt.Errorf wraps an error without %w"
}

func wrapOK(err error) error {
	return fmt.Errorf("decode failed: %w", err)
}

func noErrArg(n int) error {
	return fmt.Errorf("bad count %d", n)
}
