package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"bwcs/internal/lint/analysis"
)

// GoroLeak ties every goroutine spawned in the live runtime and the
// command binaries to a shutdown path the analyzer can see. A `go`
// statement must satisfy one of:
//
//   - WaitGroup pairing: the goroutine body (function literal or the
//     spawned method, cross-method via the package fact store) calls
//     Done on a sync.WaitGroup, and the spawning function calls Add on
//     the same WaitGroup before the spawn;
//   - lifecycle wait: the goroutine body blocks on a done-style signal —
//     a receive on a chan struct{} (the done-channel idiom), a
//     ctx.Done() select case, or a range over a channel (which ends when
//     the channel closes);
//   - a reasoned //lint:bwvet-ignore for the deliberate exceptions.
//
// The live runtime has a dozen spawn sites guarded only by convention;
// one forgotten Done is a leaked goroutine that Close waits on forever,
// which is exactly the hang shape the heartbeat/sever tests exist to
// prevent.
var GoroLeak = &analysis.Analyzer{
	Name: "goroleak",
	Doc: "every goroutine in live/ and cmd/ must have a visible shutdown " +
		"path: WaitGroup Add/Done pairing or a done/ctx select in its body",
	Match: func(path string) bool {
		return path == "bwcs/live" || strings.HasPrefix(path, "bwcs/cmd/")
	},
	Run: runGoroLeak,
}

// goroFact records what one method offers as a shutdown path; facts are
// computed once per package and cached in the fact store so a spawn
// site in one method can trust a Done in another.
type goroFact struct {
	doneFields    []string // receiver WaitGroup fields this method calls Done on
	lifecycleWait bool     // body blocks on a done channel / ctx / channel range
}

const goroFactKey = "goroleak.methods"

func runGoroLeak(pass *analysis.Pass) error {
	facts := methodFacts(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkSpawn(pass, fd, g, facts)
				return true
			})
		}
	}
	return nil
}

// methodFacts gathers (or retrieves from the package fact store) the
// shutdown-path facts for every method and function in the package.
func methodFacts(pass *analysis.Pass) map[string]*goroFact {
	if v, ok := pass.Facts.Get(goroFactKey); ok {
		return v.(map[string]*goroFact)
	}
	facts := make(map[string]*goroFact)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			facts[HotPathKey(fd)] = &goroFact{
				doneFields:    wgDoneFields(pass, fd.Body),
				lifecycleWait: hasLifecycleWait(pass, fd.Body),
			}
		}
	}
	pass.Facts.Set(goroFactKey, facts)
	return facts
}

func checkSpawn(pass *analysis.Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, facts map[string]*goroFact) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		// Inline body: look for Done and lifecycle waits directly.
		if expr := wgDoneExpr(pass, fun.Body); expr != "" {
			if !addBefore(pass, enclosing, g, func(recv string) bool { return recv == expr }) {
				pass.Reportf(g.Pos(), "goroutine calls %s.Done but no %s.Add is visible before the spawn in %s: pair them or the WaitGroup cannot guard this goroutine", expr, expr, enclosing.Name.Name)
			}
			return
		}
		if hasLifecycleWait(pass, fun.Body) {
			return
		}
		pass.Reportf(g.Pos(), "goroutine has no visible shutdown path: pair it with a WaitGroup Add/Done, block on a done/ctx channel in its body, or carry a reasoned //lint:bwvet-ignore")
	case *ast.SelectorExpr:
		// Spawned method: consult the package facts.
		checkSpawnByKey(pass, enclosing, g, facts, methodKeyOf(pass, fun))
	case *ast.Ident:
		checkSpawnByKey(pass, enclosing, g, facts, fun.Name)
	default:
		pass.Reportf(g.Pos(), "goroutine has no visible shutdown path: add WaitGroup Add/Done pairing, a done/ctx wait in its body, or a reasoned //lint:bwvet-ignore")
	}
}

// checkSpawnByKey validates a spawned named function or method against
// the package facts recorded for it.
func checkSpawnByKey(pass *analysis.Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, facts map[string]*goroFact, key string) {
	if fact, ok := facts[key]; ok {
		if len(fact.doneFields) > 0 {
			for _, field := range fact.doneFields {
				if addBefore(pass, enclosing, g, func(recv string) bool {
					return recv == field || strings.HasSuffix(recv, "."+field)
				}) {
					return
				}
			}
			pass.Reportf(g.Pos(), "goroutine %s retires a WaitGroup (%s) but no matching Add is visible before the spawn in %s", key, strings.Join(fact.doneFields, ", "), enclosing.Name.Name)
			return
		}
		if fact.lifecycleWait {
			return
		}
	}
	pass.Reportf(g.Pos(), "goroutine %s has no visible shutdown path: add WaitGroup Add/Done pairing, a done/ctx wait in its body, or a reasoned //lint:bwvet-ignore", key)
}

// methodKeyOf resolves `x.M` to its "Type.M" fact key via x's static
// type, falling back to the printed selector.
func methodKeyOf(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	if fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func); ok {
		if recv := recvTypeName(fn); recv != "" {
			return recv + "." + fn.Name()
		}
		return fn.Name()
	}
	return types.ExprString(sel)
}

// wgDoneFields returns the WaitGroup receiver-field names body calls
// Done on ("wg" for n.wg.Done()).
func wgDoneFields(pass *analysis.Pass, body ast.Node) []string {
	var fields []string
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isWaitGroupCall(pass, call, "Done") {
			return true
		}
		sel := call.Fun.(*ast.SelectorExpr)
		switch x := ast.Unparen(sel.X).(type) {
		case *ast.SelectorExpr:
			fields = append(fields, x.Sel.Name)
		case *ast.Ident:
			fields = append(fields, x.Name)
		}
		return true
	})
	return fields
}

// wgDoneExpr returns the printed receiver of the first WaitGroup Done
// call in body ("n.wg"), or "".
func wgDoneExpr(pass *analysis.Pass, body ast.Node) string {
	expr := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if expr != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(pass, call, "Done") {
			expr = types.ExprString(call.Fun.(*ast.SelectorExpr).X)
		}
		return true
	})
	return expr
}

// addBefore reports whether the enclosing function calls Add on a
// matching WaitGroup receiver at a position before the go statement.
func addBefore(pass *analysis.Pass, enclosing *ast.FuncDecl, g *ast.GoStmt, match func(recv string) bool) bool {
	found := false
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() >= g.Pos() || !isWaitGroupCall(pass, call, "Add") {
			return true
		}
		if match(types.ExprString(call.Fun.(*ast.SelectorExpr).X)) {
			found = true
		}
		return true
	})
	return found
}

func isWaitGroupCall(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return recvTypeName(fn) == "WaitGroup" && fn.Name() == name
}

// hasLifecycleWait reports whether body blocks on a shutdown-style
// signal: a receive on a chan struct{} (any position, select case or
// direct), a ctx.Done() case, or a range over a channel.
func hasLifecycleWait(pass *analysis.Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && isDoneChannel(pass, n.X) {
				found = true
			}
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// isDoneChannel reports whether e is a channel of struct{} — the done
// idiom — including the <-chan struct{} a ctx.Done() call returns.
func isDoneChannel(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
