package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"bwcs/internal/lint/analysis"
)

// CtxFlow checks context plumbing in the public API surface (the bwcs
// root package and live): an exported function that accepts a
// context.Context must actually thread it — the parameter may not be
// ignored, and the body may not mint a fresh context.Background() or
// context.TODO() (which would detach callees from the caller's deadline
// and cancellation). The one sanctioned Background use is the nil-guard
// that assigns to the parameter itself (if ctx == nil { ctx = ... }).
var CtxFlow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "exported functions taking a context.Context must use it and must " +
		"not replace it with context.Background/TODO",
	Match: func(path string) bool { return path == "bwcs" || path == "bwcs/live" },
	Run:   runCtxFlow,
}

func runCtxFlow(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			ctxParam := contextParam(pass, fd)
			if ctxParam == nil {
				continue
			}
			checkCtxUse(pass, fd, ctxParam)
		}
	}
	return nil
}

// contextParam returns the function's context.Context parameter object,
// or nil. An anonymous or blank context parameter counts (and is flagged
// by the caller as dropped).
func contextParam(pass *analysis.Pass, fd *ast.FuncDecl) *paramInfo {
	for _, field := range fd.Type.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if t == nil || !isContextType(t) {
			continue
		}
		if len(field.Names) == 0 {
			return &paramInfo{fd: fd, pos: field.Pos()}
		}
		name := field.Names[0]
		return &paramInfo{fd: fd, pos: name.Pos(), obj: pass.TypesInfo.ObjectOf(name), name: name.Name}
	}
	return nil
}

type paramInfo struct {
	fd   *ast.FuncDecl
	pos  token.Pos
	obj  types.Object // nil when the parameter is anonymous
	name string
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func checkCtxUse(pass *analysis.Pass, fd *ast.FuncDecl, p *paramInfo) {
	if p.obj == nil || p.name == "_" {
		pass.Reportf(p.pos, "exported %s discards its context.Context parameter: name it and thread it to context-aware callees", fd.Name.Name)
		return
	}
	used := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == p.obj {
			used = true
		}
		return true
	})
	if !used {
		pass.Reportf(p.pos, "exported %s never uses its context.Context parameter %q: thread it to callees or drop it from the signature", fd.Name.Name, p.name)
		return
	}
	// Background()/TODO() inside a context-taking function detaches the
	// callee from the caller's cancellation — except when re-assigned to
	// the parameter itself as a nil-guard.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		if nilGuardAssign(pass, fd.Body, call, p.obj) {
			return true
		}
		pass.Reportf(call.Pos(), "%s has a ctx parameter but calls context.%s here, detaching callees from the caller's cancellation; pass %s (or a context derived from it)", fd.Name.Name, fn.Name(), p.name)
		return true
	})
}

// nilGuardAssign reports whether call appears as the right-hand side of
// an assignment to the context parameter itself — the `if ctx == nil {
// ctx = context.Background() }` idiom.
func nilGuardAssign(pass *analysis.Pass, body *ast.BlockStmt, call *ast.CallExpr, param types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || found {
			return !found
		}
		for i, rhs := range as.Rhs {
			if ast.Unparen(rhs) != call || i >= len(as.Lhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == param {
				found = true
			}
		}
		return !found
	})
	return found
}
