package lint_test

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bwcs/internal/lint"
	"bwcs/internal/lint/loader"
)

// hotPathProbes is the audit manifest tying every //bwvet:hotpath
// annotation to the thing that proves it at run time: either
// "runtime:<TestName>" (a testing.AllocsPerRun probe in the annotated
// package, required to exist) or "static:<reason>" (why no runtime probe
// can pin the function to zero allocations). TestHotPathAllocsPinned
// fails when an annotation appears without a manifest entry, when a
// manifest entry names a function that lost its annotation, or when a
// runtime probe named here does not exist — so the static rule, the
// seeds, and the runtime truth cannot drift apart.
var hotPathProbes = map[string]map[string]string{
	"bwcs/internal/sim": {
		"Simulator.Schedule": "runtime:TestHotPathAllocsPinned",
		"Simulator.Cancel":   "runtime:TestHotPathAllocsPinned",
		"Simulator.Step":     "runtime:TestHotPathAllocsPinned",
		"Simulator.Run":      "runtime:TestHotPathAllocsPinned",
		"Simulator.RunUntil": "runtime:TestHotPathAllocsPinned",
		"Simulator.recycle":  "runtime:TestHotPathAllocsPinned",
		"Simulator.push":     "runtime:TestHotPathAllocsPinned",
		"Simulator.remove":   "runtime:TestHotPathAllocsPinned",
		"Simulator.up":       "runtime:TestHotPathAllocsPinned",
		"Simulator.down":     "runtime:TestHotPathAllocsPinned",
		"Simulator.swap":     "runtime:TestHotPathAllocsPinned",
	},
	"bwcs/internal/window": {
		"Series.cmpOptimal":       "runtime:TestHotPathAllocsPinned",
		"Series.span":             "runtime:TestHotPathAllocsPinned",
		"Series.AboveOptimal":     "runtime:TestHotPathAllocsPinned",
		"Series.AtOrAboveOptimal": "runtime:TestHotPathAllocsPinned",
		"Series.Onset":            "runtime:TestHotPathAllocsPinned",
		"Series.OnsetInclusive":   "runtime:TestHotPathAllocsPinned",
		"Series.onset":            "runtime:TestHotPathAllocsPinned",
		"Series.Windows":          "runtime:TestHotPathAllocsPinned",
		"Series.Reached":          "runtime:TestHotPathAllocsPinned",
	},
	"bwcs/internal/metrics": {
		"TimeSeries.Append":     "runtime:TestTimeSeriesAppendZeroAllocs",
		"TimeSeries.downsample": "runtime:TestTimeSeriesAppendZeroAllocs",
	},
	"bwcs/internal/optimal": {
		// The weight pass works in math/big scratch that grows on demand
		// inside big.Rat, so a zero-alloc runtime pin is impossible by
		// design; the source-level discipline (no churn the analyzer can
		// see) is the enforceable half, and the allocation budget is
		// watched through BenchmarkComputeDefaultTree.
		"Weight":                "static:big.Rat scratch grows inside math/big; budget watched via BenchmarkComputeDefaultTree",
		"weightCalc.fork":       "static:big.Rat scratch grows inside math/big; budget watched via BenchmarkComputeDefaultTree",
		"weightCalc.sortedKids": "static:reused kids buffer; exercised under BenchmarkComputeDefaultTree",
	},
	"bwcs/live": {
		"appendFrame":           "runtime:TestHotPathAllocsPinned",
		"decodeFrame":           "runtime:TestHotPathAllocsPinned",
		"appendStringField":     "runtime:TestHotPathAllocsPinned",
		"appendBytesField":      "runtime:TestHotPathAllocsPinned",
		"appendBool":            "runtime:TestHotPathAllocsPinned",
		"appendU64Field":        "runtime:TestHotPathAllocsPinned",
		"readFrame":             "runtime:TestHotPathAllocsPinned",
		"interner.intern":       "runtime:TestHotPathAllocsPinned",
		"frameReader.uvarint":   "runtime:TestHotPathAllocsPinned",
		"frameReader.intField":  "runtime:TestHotPathAllocsPinned",
		"frameReader.raw":       "runtime:TestHotPathAllocsPinned",
		"frameReader.boolField": "runtime:TestHotPathAllocsPinned",
	},
}

func TestHotPathAllocsPinned(t *testing.T) {
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	l, err := loader.New(cwd)
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	for path, probes := range hotPathProbes {
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("load %s: %v", path, err)
		}

		// Every annotation present in the source must have a manifest
		// entry, and vice versa.
		annotated := map[string]bool{}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || !lint.IsHotPathAnnotated(fd) {
					continue
				}
				key := lint.HotPathKey(fd)
				annotated[key] = true
				if _, ok := probes[key]; !ok {
					t.Errorf("%s.%s carries //bwvet:hotpath but has no probe manifest entry", path, key)
				}
			}
		}
		for key := range probes {
			if !annotated[key] {
				t.Errorf("probe manifest lists %s.%s but the function is not annotated (renamed? annotation dropped?)", path, key)
			}
		}

		// The seeds and the manifest must agree: a seeded function with
		// no probe entry would be enforced statically but never proven
		// at run time.
		for _, key := range lint.HotPathSeeds[path] {
			if _, ok := probes[key]; !ok {
				t.Errorf("%s.%s is seeded in HotPathSeeds but missing from the probe manifest", path, key)
			}
		}

		// Runtime probes must actually exist in the package's test files.
		needed := map[string]bool{}
		for _, probe := range probes {
			if name, ok := strings.CutPrefix(probe, "runtime:"); ok {
				needed[name] = true
			}
		}
		if len(needed) == 0 {
			continue
		}
		found := map[string]bool{}
		entries, err := os.ReadDir(pkg.Dir)
		if err != nil {
			t.Fatalf("read %s: %v", pkg.Dir, err)
		}
		for _, e := range entries {
			if !strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(pkg.Dir, e.Name()))
			if err != nil {
				t.Fatalf("read %s: %v", e.Name(), err)
			}
			for name := range needed {
				if strings.Contains(string(src), "func "+name+"(") {
					found[name] = true
				}
			}
		}
		for name := range needed {
			if !found[name] {
				t.Errorf("%s: probe manifest names runtime test %s but no _test.go defines it", path, name)
			}
		}
	}
}
