package lint_test

import (
	"testing"

	"bwcs/internal/lint"
	"bwcs/internal/lint/analysistest"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SimDeterminism, "simdet")
}

func TestWireExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WireExhaustive, "wire")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockDiscipline, "lock")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicMix, "atomicmix")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFlow, "ctxflow")
}

// TestIgnoreDirectives pins the //lint:bwvet-ignore contract: a reasoned
// ignore on the flagged line or the line above suppresses, a reasonless
// one is reported and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockDiscipline, "ignore")
}

// TestMatchScopes pins which packages each scoped analyzer patrols, so a
// package rename cannot silently drop it from coverage.
func TestMatchScopes(t *testing.T) {
	cases := []struct {
		name  string
		match func(string) bool
		in    []string
		out   []string
	}{
		{
			"simdeterminism", lint.SimDeterminism.Match,
			[]string{"bwcs/internal/sim", "bwcs/internal/engine", "bwcs/internal/protocol", "bwcs/internal/optimal"},
			[]string{"bwcs", "bwcs/live", "bwcs/internal/metrics"},
		},
		{
			"wireexhaustive", lint.WireExhaustive.Match,
			[]string{"bwcs/live"},
			[]string{"bwcs", "bwcs/internal/sim"},
		},
		{
			"ctxflow", lint.CtxFlow.Match,
			[]string{"bwcs", "bwcs/live"},
			[]string{"bwcs/internal/engine"},
		},
	}
	for _, c := range cases {
		for _, p := range c.in {
			if !c.match(p) {
				t.Errorf("%s: expected to cover %s", c.name, p)
			}
		}
		for _, p := range c.out {
			if c.match(p) {
				t.Errorf("%s: expected not to cover %s", c.name, p)
			}
		}
	}
	if lint.LockDiscipline.Match != nil || lint.AtomicMix.Match != nil {
		t.Error("lockdiscipline and atomicmix are repo-wide: Match must be nil")
	}
}
