package lint_test

import (
	"testing"

	"bwcs/internal/lint"
	"bwcs/internal/lint/analysistest"
)

func TestSimDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", lint.SimDeterminism, "simdet")
}

func TestWireExhaustive(t *testing.T) {
	analysistest.Run(t, "testdata", lint.WireExhaustive, "wire")
}

func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockDiscipline, "lock")
}

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", lint.AtomicMix, "atomicmix")
}

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", lint.CtxFlow, "ctxflow")
}

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", lint.HotPathAlloc, "hotpathalloc")
}

func TestGoroLeak(t *testing.T) {
	analysistest.Run(t, "testdata", lint.GoroLeak, "goroleak")
}

func TestErrDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", lint.ErrDiscipline, "errdiscipline")
}

// TestErrDisciplineFixes round-trips the %w suggested fix through the
// golden file: `bwvet -fix` must produce exactly a.go.golden.
func TestErrDisciplineFixes(t *testing.T) {
	analysistest.RunFixes(t, "testdata", lint.ErrDiscipline, "errdiscipline")
}

// TestIgnoreDirectives pins the //lint:bwvet-ignore contract: a reasoned
// ignore on the flagged line or the line above suppresses, a reasonless
// one is reported and suppresses nothing.
func TestIgnoreDirectives(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockDiscipline, "ignore")
}

// TestStaleIgnores pins stale-ignore detection: a reasoned ignore that
// suppresses nothing becomes a finding, and its suggested fix deletes
// the comment (whole line when it stands alone).
func TestStaleIgnores(t *testing.T) {
	analysistest.Run(t, "testdata", lint.LockDiscipline, "staleignore")
}

func TestStaleIgnoreFixes(t *testing.T) {
	analysistest.RunFixes(t, "testdata", lint.LockDiscipline, "staleignore")
}

// TestMatchScopes pins which packages each scoped analyzer patrols, so a
// package rename cannot silently drop it from coverage.
func TestMatchScopes(t *testing.T) {
	cases := []struct {
		name  string
		match func(string) bool
		in    []string
		out   []string
	}{
		{
			"simdeterminism", lint.SimDeterminism.Match,
			[]string{"bwcs/internal/sim", "bwcs/internal/engine", "bwcs/internal/protocol", "bwcs/internal/optimal"},
			[]string{"bwcs", "bwcs/live", "bwcs/internal/metrics"},
		},
		{
			"wireexhaustive", lint.WireExhaustive.Match,
			[]string{"bwcs/live"},
			[]string{"bwcs", "bwcs/internal/sim"},
		},
		{
			"ctxflow", lint.CtxFlow.Match,
			[]string{"bwcs", "bwcs/live"},
			[]string{"bwcs/internal/engine"},
		},
		{
			"goroleak", lint.GoroLeak.Match,
			[]string{"bwcs/live", "bwcs/cmd/bwnode", "bwcs/cmd/bwload"},
			[]string{"bwcs", "bwcs/internal/engine"},
		},
		{
			"errdiscipline", lint.ErrDiscipline.Match,
			[]string{"bwcs/live", "bwcs/cmd/bwnode", "bwcs/cmd/bwvet"},
			[]string{"bwcs", "bwcs/internal/sim"},
		},
	}
	for _, c := range cases {
		for _, p := range c.in {
			if !c.match(p) {
				t.Errorf("%s: expected to cover %s", c.name, p)
			}
		}
		for _, p := range c.out {
			if c.match(p) {
				t.Errorf("%s: expected not to cover %s", c.name, p)
			}
		}
	}
	if lint.LockDiscipline.Match != nil || lint.AtomicMix.Match != nil {
		t.Error("lockdiscipline and atomicmix are repo-wide: Match must be nil")
	}
	if lint.HotPathAlloc.Match != nil {
		t.Error("hotpathalloc is repo-wide (annotation-driven): Match must be nil")
	}
}
