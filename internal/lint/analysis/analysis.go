// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough Analyzer/Pass/Diagnostic
// surface for bwvet's repo-invariant analyzers. The build environment is
// hermetic (no module proxy), so the real x/tools cannot be vendored; the
// shapes below mirror it closely enough that migrating to the upstream
// framework later is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one repo-invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore audits.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
	// Match, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; the driver skips the rest. Fixture tests
	// bypass Match and run the analyzer directly.
	Match func(pkgPath string) bool
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Facts is the package-level fact store, shared by every analyzer
	// that runs over the package (and cached on the loader's Package, so
	// facts survive across analyzers). goroleak, for example, records
	// which methods retire a WaitGroup stored in a struct field, so a
	// spawn site in one method can trust a Done in another.
	Facts *FactStore

	// Report collects one diagnostic; installed by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding. SuggestedFixes, when non-empty, carry
// mechanical textual edits that resolve the finding; `bwvet -fix`
// applies them and `bwvet -fix -diff` previews them.
type Diagnostic struct {
	Pos            token.Pos
	Message        string
	Analyzer       string // filled in by the driver
	SuggestedFixes []SuggestedFix
}

// SuggestedFix is one self-contained resolution of a diagnostic: a set
// of non-overlapping text edits plus a one-line description.
type SuggestedFix struct {
	Message   string
	TextEdits []TextEdit
}

// TextEdit replaces the source range [Pos, End) with NewText. End may
// equal Pos for a pure insertion; NewText may be empty for a deletion.
type TextEdit struct {
	Pos     token.Pos
	End     token.Pos
	NewText []byte
}

// FactStore is a package-scoped blackboard: an analyzer derives a fact
// set once per package (keyed by an analyzer-chosen string), and later
// queries — from the same analyzer or another — reuse it instead of
// re-walking the AST. Stores are per-package and single-goroutine, like
// the passes that use them.
type FactStore struct {
	m map[string]any
}

// Get returns the fact stored under key, or (nil, false).
func (s *FactStore) Get(key string) (any, bool) {
	v, ok := s.m[key]
	return v, ok
}

// Set stores a fact under key, replacing any previous value.
func (s *FactStore) Set(key string, v any) {
	if s.m == nil {
		s.m = make(map[string]any)
	}
	s.m[key] = v
}
