// Package analysis is a dependency-free miniature of the
// golang.org/x/tools/go/analysis API: just enough Analyzer/Pass/Diagnostic
// surface for bwvet's repo-invariant analyzers. The build environment is
// hermetic (no module proxy), so the real x/tools cannot be vendored; the
// shapes below mirror it closely enough that migrating to the upstream
// framework later is a mechanical rename.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one repo-invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore audits.
	Name string
	// Doc is a one-paragraph description: the invariant guarded and why.
	Doc string
	// Run applies the analyzer to one type-checked package.
	Run func(*Pass) error
	// Match, when non-nil, restricts the analyzer to packages whose
	// import path it accepts; the driver skips the rest. Fixture tests
	// bypass Match and run the analyzer directly.
	Match func(pkgPath string) bool
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report collects one diagnostic; installed by the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string // filled in by the driver
}
