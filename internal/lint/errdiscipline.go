package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"bwcs/internal/lint/analysis"
)

// ErrDiscipline forbids silently discarded errors in the live runtime
// and the command binaries: `_ =` assignments and bare/deferred/go
// calls that drop an error-typed result are findings unless the callee
// is on the teardown allowlist (Close and deadline setters, bufio
// Flush, fmt printing, and the status server's response writes — paths
// where the error is uninformative or the connection is already being
// torn down). It also requires fmt.Errorf wrapping to use %w when an
// error is among the arguments, so errors.Is/As keep working through
// the wrap; that finding carries a suggested fix rewriting the verb.
var ErrDiscipline = &analysis.Analyzer{
	Name: "errdiscipline",
	Doc: "no silently discarded error returns in live/ and cmd/ outside " +
		"the teardown allowlist; fmt.Errorf wrapping must use %w",
	Match: func(path string) bool {
		return path == "bwcs/live" || strings.HasPrefix(path, "bwcs/cmd/")
	},
	Run: runErrDiscipline,
}

func runErrDiscipline(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkBlankAssign(pass, n)
			case *ast.ExprStmt:
				checkBareCall(pass, n.X, "bare call")
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "deferred call")
			case *ast.GoStmt:
				checkBareCall(pass, n.Call, "go statement")
			case *ast.CallExpr:
				checkErrorfWrap(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags `_ = f()` / `_, _ = f()` where every
// left-hand side is blank and f returns an error.
func checkBlankAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return
		}
	}
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || !returnsError(pass, call) || allowedDiscard(pass, call) {
		return
	}
	pass.Reportf(as.Pos(), "error discarded: %s returns an error that is dropped; handle it, surface it into a counter, or add a reasoned //lint:bwvet-ignore", calleeName(pass, call))
}

// checkBareCall flags expression/defer/go calls whose error result
// vanishes without even a blank assignment to mark the intent.
func checkBareCall(pass *analysis.Pass, e ast.Expr, kind string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || !returnsError(pass, call) || allowedDiscard(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error ignored: this %s drops the error from %s; handle it, surface it into a counter, or add a reasoned //lint:bwvet-ignore", kind, calleeName(pass, call))
}

// returnsError reports whether the call produces at least one
// error-typed result.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypesInfo.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// allowedDiscard is the teardown allowlist: callees whose errors are
// legitimately uninteresting at their call sites in this repo.
func allowedDiscard(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return false
	}
	name := fn.Name()
	// Teardown: close errors mean the peer is already gone.
	if name == "Close" || name == "close" {
		return true
	}
	// Deadline setters fail only on closed sockets, which the next I/O
	// call reports anyway.
	if name == "SetDeadline" || name == "SetReadDeadline" || name == "SetWriteDeadline" {
		return true
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch {
	case pkg == "bufio" && name == "Flush":
		return true // teardown flush on a conn already being closed
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		return true // terminal/stderr writes
	case pkg == "net/http" && name == "Serve" && recvTypeName(fn) == "Server":
		return true // returns ErrServerClosed on orderly shutdown
	case pkg == "encoding/json" && name == "Encode" && recvTypeName(fn) == "Encoder":
		return true // status-server response write: client went away
	case pkg == "bwcs/internal/metrics" && name == "WritePrometheus":
		return true // status-server response write: client went away
	}
	return false
}

func calleeName(pass *analysis.Pass, call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return types.ExprString(fun)
	case *ast.Ident:
		return fun.Name
	}
	return "the call"
}

// checkErrorfWrap flags fmt.Errorf calls that take an error argument
// but use no %w verb: the wrap breaks errors.Is/As. The finding carries
// a suggested fix rewriting the error argument's %v/%s verb to %w.
func checkErrorfWrap(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
		return
	}
	if len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return
	}
	verbs := formatVerbs(lit.Value)
	for _, v := range verbs {
		if v.verb == 'w' {
			return
		}
	}
	errArg := -1
	for i, arg := range call.Args[1:] {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && isErrorType(t) {
			errArg = i
			break
		}
	}
	if errArg < 0 {
		return
	}
	d := analysis.Diagnostic{
		Pos:     call.Pos(),
		Message: "fmt.Errorf wraps an error without %w: errors.Is/As cannot see through this wrap; use %w for the error argument",
	}
	if errArg < len(verbs) && (verbs[errArg].verb == 'v' || verbs[errArg].verb == 's') {
		pos := lit.Pos() + token.Pos(verbs[errArg].offset)
		d.SuggestedFixes = []analysis.SuggestedFix{{
			Message:   "wrap the error with %w",
			TextEdits: []analysis.TextEdit{{Pos: pos, End: pos + 1, NewText: []byte("w")}},
		}}
	}
	pass.Report(d)
}

// formatVerb is one verb in a format string: its letter and the byte
// offset of that letter within the raw (quoted) literal source.
type formatVerb struct {
	verb   byte
	offset int
}

// formatVerbs scans the raw quoted literal for printf verbs. Escape
// sequences are skipped wholesale so offsets stay source-accurate; %%
// consumes no argument and is dropped.
func formatVerbs(raw string) []formatVerb {
	var verbs []formatVerb
	for i := 0; i < len(raw); i++ {
		switch raw[i] {
		case '\\':
			i++ // escape sequence: the next byte is literal
		case '%':
			j := i + 1
			for j < len(raw) && strings.IndexByte("#0- +.*123456789[]", raw[j]) >= 0 {
				j++
			}
			if j < len(raw) {
				if raw[j] == '%' {
					i = j
					continue
				}
				verbs = append(verbs, formatVerb{verb: raw[j], offset: j})
				i = j
			}
		}
	}
	return verbs
}
