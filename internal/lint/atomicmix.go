package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"bwcs/internal/lint/analysis"
)

// AtomicMix flags struct fields that are accessed through sync/atomic in
// one place and by plain read/write in another — the PR 2 metrics-registry
// race was exactly this family: an atomically published pointer read bare
// on another goroutine. A field is either always atomic or always guarded;
// mixing the two silently loses the happens-before edge.
//
// Fields of the typed atomic wrappers (atomic.Int64 and friends) are
// inherently safe and out of scope. Composite-literal keys are not
// counted as plain accesses: zero-initialization before publication is
// the sanctioned construction pattern.
var AtomicMix = &analysis.Analyzer{
	Name: "atomicmix",
	Doc: "flag struct fields accessed both via sync/atomic and by plain " +
		"read/write",
	Run: runAtomicMix,
}

func runAtomicMix(pass *analysis.Pass) error {
	atomicFields := make(map[types.Object]token.Pos) // field -> one atomic site
	inAtomicArg := make(map[*ast.SelectorExpr]bool)
	literalKeys := make(map[*ast.Ident]bool)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if !isAtomicCall(pass, n) {
					return true
				}
				for _, arg := range n.Args {
					u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || u.Op != token.AND {
						continue
					}
					sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if obj := fieldObject(pass, sel); obj != nil {
						if _, seen := atomicFields[obj]; !seen {
							atomicFields[obj] = sel.Pos()
						}
						inAtomicArg[sel] = true
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							literalKeys[id] = true
						}
					}
				}
			}
			return true
		})
	}
	if len(atomicFields) == 0 {
		return nil
	}

	type finding struct {
		pos   token.Pos
		field string
	}
	var plain []finding
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || inAtomicArg[sel] {
				return true
			}
			obj := fieldObject(pass, sel)
			if obj == nil {
				return true
			}
			if _, isAtomic := atomicFields[obj]; isAtomic && !literalKeys[sel.Sel] {
				plain = append(plain, finding{sel.Pos(), obj.Name()})
			}
			return true
		})
	}
	sort.Slice(plain, func(i, j int) bool { return plain[i].pos < plain[j].pos })
	for _, p := range plain {
		pass.Reportf(p.pos, "field %q is accessed via sync/atomic elsewhere but plainly here: pick one regime, or the atomic ordering is lost", p.field)
	}
	return nil
}

func isAtomicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

// fieldObject resolves a selector to the struct field it names, or nil.
func fieldObject(pass *analysis.Pass, sel *ast.SelectorExpr) types.Object {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	return s.Obj()
}
