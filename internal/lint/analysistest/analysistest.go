// Package analysistest is a golden-fixture harness for bwvet analyzers,
// mirroring golang.org/x/tools/go/analysis/analysistest: fixture packages
// live under testdata/src/<path>, and every line expecting a diagnostic
// carries a // want "regexp" comment (several per line allowed). The
// harness runs the analyzer through the same ignore-filtering pipeline as
// cmd/bwvet, so //lint:bwvet-ignore behavior is testable in fixtures too.
package analysistest

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"bwcs/internal/lint"
	"bwcs/internal/lint/analysis"
	"bwcs/internal/lint/loader"
)

// want expectations attach to the comment's own line; want-above to the
// line directly before it. The latter exists for diagnostics that point
// at a line comment (a malformed //lint:bwvet-ignore), which cannot share
// its line with a second comment.
var wantRE = regexp.MustCompile(`//\s*want\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantAboveRE = regexp.MustCompile(`//\s*want-above\s+((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run loads each fixture package under testdata/src and checks the
// analyzer's diagnostics (after ignore filtering) against the fixtures'
// want comments. The analyzer's Match scope is bypassed: fixtures opt in
// by existing.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(fix))
		l, err := loader.New(dir)
		if err != nil {
			t.Fatalf("%s: loader: %v", fix, err)
		}
		pkg, err := l.LoadDir(fix, dir)
		if err != nil {
			t.Fatalf("%s: load: %v", fix, err)
		}
		unscoped := *a
		unscoped.Match = nil
		diags, err := lint.Check(pkg, []*analysis.Analyzer{&unscoped})
		if err != nil {
			t.Fatalf("%s: run: %v", fix, err)
		}
		compare(t, fix, pkg, diags)
	}
}

// RunFixes loads each fixture, runs the analyzer through the same
// pipeline as Run, applies every suggested fix, and compares the result
// for each edited file against a sibling <file>.golden. The golden file
// is the round-trip contract for `bwvet -fix`: what the fixed source
// must look like, byte for byte.
func RunFixes(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...string) {
	t.Helper()
	for _, fix := range fixtures {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(fix))
		l, err := loader.New(dir)
		if err != nil {
			t.Fatalf("%s: loader: %v", fix, err)
		}
		pkg, err := l.LoadDir(fix, dir)
		if err != nil {
			t.Fatalf("%s: load: %v", fix, err)
		}
		unscoped := *a
		unscoped.Match = nil
		diags, err := lint.Check(pkg, []*analysis.Analyzer{&unscoped})
		if err != nil {
			t.Fatalf("%s: run: %v", fix, err)
		}
		fixed, err := lint.ApplyFixes(pkg.Fset, diags)
		if err != nil {
			t.Fatalf("%s: apply fixes: %v", fix, err)
		}
		if len(fixed) == 0 {
			t.Errorf("%s: analyzer produced no suggested fixes to round-trip", fix)
		}
		for name, got := range fixed {
			want, err := os.ReadFile(name + ".golden")
			if err != nil {
				t.Errorf("%s: %v (suggested fixes need a golden file)", fix, err)
				continue
			}
			if string(got) != string(want) {
				t.Errorf("%s: fixed %s does not match %s.golden:\n--- got ---\n%s\n--- want ---\n%s",
					fix, filepath.Base(name), filepath.Base(name), got, want)
			}
		}
	}
}

// expectation is one want regexp at a file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	hit  bool
}

func compare(t *testing.T, fix string, pkg *loader.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				line := 0
				var args string
				if m := wantAboveRE.FindStringSubmatch(c.Text); m != nil {
					line, args = -1, m[1]
				} else if m := wantRE.FindStringSubmatch(c.Text); m != nil {
					args = m[1]
				} else {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(args, -1) {
					pattern := unquote(arg[1])
					re, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: %s:%d: bad want regexp %q: %v", fix, pos.Filename, pos.Line, pattern, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line + line, re: re, raw: pattern})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic at %s:%d: [%s] %s", fix, filepath.Base(pos.Filename), pos.Line, d.Analyzer, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: missing diagnostic at %s:%d matching %q", fix, filepath.Base(w.file), w.line, w.raw)
		}
	}
}

// unquote undoes the escaping inside a want "..." argument (\" and \\).
func unquote(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) && (s[i+1] == '"' || s[i+1] == '\\') {
			i++
		}
		out = append(out, s[i])
	}
	return string(out)
}
