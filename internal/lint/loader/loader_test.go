package loader_test

import (
	"path/filepath"
	"runtime"
	"testing"

	"bwcs/internal/lint/loader"
)

// repoRoot walks up from this file to the module root.
func repoRoot(t *testing.T) string {
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadTypeChecksModulePackage(t *testing.T) {
	l, err := loader.New(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if got := l.ModulePath(); got != "bwcs" {
		t.Fatalf("module path = %q, want bwcs", got)
	}
	pkg, err := l.Load("bwcs/internal/rational")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types == nil || !pkg.Types.Complete() {
		t.Fatal("package not fully type-checked")
	}
	if len(pkg.Info.Defs) == 0 {
		t.Fatal("no type info recorded")
	}
	// The loader memoizes: loading again must return the same package.
	again, err := l.Load("bwcs/internal/rational")
	if err != nil {
		t.Fatal(err)
	}
	if again != pkg {
		t.Fatal("second Load returned a different *Package")
	}
}

func TestExpandSkipsTestdataAndHiddenDirs(t *testing.T) {
	root := repoRoot(t)
	l, err := loader.New(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.Expand(root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		if seen[p] {
			t.Errorf("duplicate package %s", p)
		}
		seen[p] = true
		if filepath.Base(p) == "testdata" {
			t.Errorf("testdata leaked into expansion: %s", p)
		}
	}
	for _, want := range []string{"bwcs", "bwcs/live", "bwcs/internal/lint", "bwcs/cmd/bwvet"} {
		if !seen[want] {
			t.Errorf("expansion missing %s (got %d packages)", want, len(paths))
		}
	}
	if seen["bwcs/internal/lint/testdata/src/simdet"] {
		t.Error("fixture package leaked into ./... expansion")
	}
}

func TestLoadRejectsForeignPath(t *testing.T) {
	l, err := loader.New(repoRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Load("example.com/elsewhere"); err == nil {
		t.Fatal("expected error for a path outside the module")
	}
}
