// Package loader parses and type-checks packages of this module for the
// bwvet analyzers, with no dependency beyond the standard library. Imports
// inside the module are resolved by walking the repository itself; every
// other import (all standard library here) is type-checked from GOROOT
// source via go/importer's "source" compiler, which needs neither
// pre-compiled export data nor network access.
package loader

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"bwcs/internal/lint/analysis"
)

// Package is one parsed, type-checked package.
type Package struct {
	Path  string // import path, e.g. "bwcs/live"
	Dir   string // absolute directory
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// Facts is the package-level fact store shared by every analyzer pass
	// over this package; it lives on the Package (not the Pass) so facts
	// one analyzer derives — say, which methods retire a struct-field
	// WaitGroup — survive for the analyzers that run after it.
	Facts analysis.FactStore
}

// Loader loads packages of a single module.
type Loader struct {
	Fset *token.FileSet

	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*Package
	loading map[string]bool
}

// New returns a loader for the module containing dir (found by walking up
// to go.mod).
func New(dir string) (*Loader, error) {
	root, path, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	// The source importer consults the global build context; cgo would
	// drag compiler-specific headers into type-checking, and nothing in
	// this module needs it.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		modRoot: root,
		modPath: path,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module's import path.
func (l *Loader) ModulePath() string { return l.modPath }

// ModuleRoot returns the module's root directory (the one holding
// go.mod); SARIF output makes file URIs relative to it.
func (l *Loader) ModuleRoot() string { return l.modRoot }

// findModule walks up from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("loader: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("loader: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Expand resolves package patterns relative to base into import paths.
// Supported forms: "./...", "dir/...", "./dir", "dir", and absolute
// directories inside the module.
func (l *Loader) Expand(base string, patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if p, ok := l.importPathFor(dir); ok && !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
			if pat == "." || pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive, pat = true, "."
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(base, dir)
		}
		if !recursive {
			add(dir)
			continue
		}
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != dir && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(p)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("loader: expand %q: %w", pat, err)
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// importPathFor maps a directory to its module import path if it holds at
// least one non-test Go file.
func (l *Loader) importPathFor(dir string) (string, bool) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", false
	}
	rel, err := filepath.Rel(l.modRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", false
	}
	names, err := goFilesIn(abs)
	if err != nil || len(names) == 0 {
		return "", false
	}
	if rel == "." {
		return l.modPath, true
	}
	return l.modPath + "/" + filepath.ToSlash(rel), true
}

func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") || strings.HasPrefix(n, ".") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}

// Load parses and type-checks the package at the given module import
// path (or, via LoadDir, any directory).
func (l *Loader) Load(path string) (*Package, error) {
	if !l.inModule(path) {
		return nil, fmt.Errorf("loader: %q is outside module %s", path, l.modPath)
	}
	return l.loadDir(path, l.dirFor(path))
}

// LoadDir parses and type-checks the package in dir under the given
// import path, without requiring dir to live inside the module tree (the
// analysistest harness loads fixture directories this way).
func (l *Loader) LoadDir(path, dir string) (*Package, error) {
	return l.loadDir(path, dir)
}

func (l *Loader) inModule(path string) bool {
	return path == l.modPath || strings.HasPrefix(path, l.modPath+"/")
}

func (l *Loader) dirFor(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	return filepath.Join(l.modRoot, filepath.FromSlash(strings.TrimPrefix(path, l.modPath+"/")))
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	names, err := goFilesIn(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %w", dir, err)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("loader: type-check %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// importDep resolves one import: module-internal paths recurse through
// the loader, everything else goes to the GOROOT source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if l.inModule(path) {
		p, err := l.loadDir(path, l.dirFor(path))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
