package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"bwcs/internal/lint/analysis"
)

// WireExhaustive requires every switch over a wire frame-kind type to
// either enumerate all of the type's kind constants or carry an explicit
// default clause. PR 3 appended kindResultAck to several hand-maintained
// switches; this analyzer makes the next appended frame kind a build
// break instead of a silently dropped frame.
//
// A "frame-kind type" is a named type defined in the inspected package
// all of whose package-level constants are named kind* or Frame* (the
// wire kinds and their fault-injection selectors).
var WireExhaustive = &analysis.Analyzer{
	Name: "wireexhaustive",
	Doc: "switches on a wire frame kind must enumerate every kind constant " +
		"or have an explicit default",
	Match: func(path string) bool { return path == "bwcs/live" },
	Run:   runWireExhaustive,
}

func runWireExhaustive(pass *analysis.Pass) error {
	kindTypes := frameKindTypes(pass.Pkg)
	if len(kindTypes) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			t := pass.TypesInfo.TypeOf(sw.Tag)
			named, ok := t.(*types.Named)
			if !ok {
				return true
			}
			consts, ok := kindTypes[named.Obj()]
			if !ok {
				return true
			}
			checkKindSwitch(pass, sw, named.Obj().Name(), consts)
			return true
		})
	}
	return nil
}

// frameKindTypes maps each frame-kind type defined in pkg to its
// package-level constants.
func frameKindTypes(pkg *types.Package) map[*types.TypeName][]*types.Const {
	byType := make(map[*types.TypeName][]*types.Const)
	scope := pkg.Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Pkg() != pkg {
			continue
		}
		byType[named.Obj()] = append(byType[named.Obj()], c)
	}
	for tn, consts := range byType {
		if len(consts) < 2 {
			delete(byType, tn)
			continue
		}
		for _, c := range consts {
			if !strings.HasPrefix(c.Name(), "kind") && !strings.HasPrefix(c.Name(), "Frame") {
				delete(byType, tn)
				break
			}
		}
	}
	return byType
}

func checkKindSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, typeName string, consts []*types.Const) {
	covered := make(map[types.Object]bool)
	hasDefault := false
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			hasDefault = true
			continue
		}
		for _, e := range cc.List {
			e = ast.Unparen(e)
			switch e := e.(type) {
			case *ast.Ident:
				covered[pass.TypesInfo.ObjectOf(e)] = true
			case *ast.SelectorExpr:
				covered[pass.TypesInfo.ObjectOf(e.Sel)] = true
			}
		}
	}
	if hasDefault {
		return
	}
	var missing []string
	for _, c := range consts {
		if !covered[c] {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	pass.Reportf(sw.Pos(), "switch on %s is not exhaustive and has no default: missing %s — an appended frame kind would be silently dropped here",
		typeName, strings.Join(missing, ", "))
}
