package metrics

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestPrometheusGolden pins the exact text exposition: one counter, one
// gauge, one histogram, registered in order, rendered byte-for-byte.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events dispatched")
	g := r.Gauge("test_queue_depth", "current queue depth")
	h := r.Histogram("test_latency_steps", "event latency in timesteps", []int64{1, 10})

	c.Inc()
	c.Add(2)
	g.Set(5)
	g.Add(-7)
	for _, v := range []int64{1, 5, 10, 102} {
		h.Observe(v)
	}

	var buf strings.Builder
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP test_events_total events dispatched
# TYPE test_events_total counter
test_events_total 3
# HELP test_queue_depth current queue depth
# TYPE test_queue_depth gauge
test_queue_depth -2
# HELP test_latency_steps event latency in timesteps
# TYPE test_latency_steps histogram
test_latency_steps_bucket{le="1"} 1
test_latency_steps_bucket{le="10"} 3
test_latency_steps_bucket{le="+Inf"} 4
test_latency_steps_sum 118
test_latency_steps_count 4
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestPrometheusLabels pins the rendering of hand-assembled labeled
// samples (the path the live /metrics endpoint uses for per-child
// counters), including label-value escaping.
func TestPrometheusLabels(t *testing.T) {
	snap := Snapshot{{
		Name: "live_forwarded_by_child_total",
		Type: "counter",
		Samples: []Sample{
			{Labels: []Label{{Key: "child", Value: "w1"}}, Value: 7},
			{Labels: []Label{{Key: "child", Value: `we"ird\name`}, {Key: "site", Value: "a"}}, Value: 1},
			// Only \, " and newline have defined escapes in the text
			// format; a tab or stray byte must pass through verbatim,
			// not as Go-style \t or \xNN.
			{Labels: []Label{{Key: "child", Value: "tab\there\nand\xffbyte"}}, Value: 2},
		},
	}}
	var buf strings.Builder
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# TYPE live_forwarded_by_child_total counter
live_forwarded_by_child_total{child="w1"} 7
live_forwarded_by_child_total{child="we\"ird\\name",site="a"} 1
live_forwarded_by_child_total{child="tab	here\nand` + "\xff" + `byte"} 2
`
	if buf.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", buf.String(), want)
	}
}

// TestJSONRoundTrips checks the JSON rendering parses back and carries
// the same families.
func TestJSONRoundTrips(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "a").Add(41)
	r.Gauge("b", "b").Set(-3)
	var buf strings.Builder
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if len(back) != 2 || back[0].Name != "a_total" || back[0].Samples[0].Value != 41 || back[1].Samples[0].Value != -3 {
		t.Fatalf("round trip = %+v", back)
	}
}

// TestRegistryIdempotent: same name+kind returns the same instrument;
// same name, different kind panics.
func TestRegistryIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "x")
	b := r.Counter("x_total", "x")
	if a != b {
		t.Fatalf("re-registration returned a different counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("aliased counter out of sync")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("kind conflict did not panic")
		}
	}()
	r.Gauge("x_total", "x")
}

// TestHistogramBoundsMismatchPanics: re-registering a histogram must
// either reuse it (same bounds) or fail loudly (different bounds) —
// never silently hand back an instrument with bounds the caller did not
// ask for.
func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Histogram("h_steps", "", []int64{1, 10})
	if b := r.Histogram("h_steps", "", []int64{1, 10}); a != b {
		t.Fatalf("same-bounds re-registration returned a different histogram")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("bounds mismatch did not panic")
		}
	}()
	r.Histogram("h_steps", "", []int64{1, 10, 100})
}

// TestInvalidNamePanics rejects names outside the Prometheus charset.
func TestInvalidNamePanics(t *testing.T) {
	for _, name := range []string{"", "0abc", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", name)
				}
			}()
			NewRegistry().Counter(name, "")
		}()
	}
}

// TestNegativeCounterAddPanics keeps counters monotone.
func TestNegativeCounterAddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("negative counter add accepted")
		}
	}()
	NewRegistry().Counter("c_total", "").Add(-1)
}

// TestGaugeSetMax is a CAS loop; check the high-water semantics.
func TestGaugeSetMax(t *testing.T) {
	var g Gauge
	g.SetMax(5)
	g.SetMax(3)
	g.SetMax(9)
	if got := g.Value(); got != 9 {
		t.Fatalf("SetMax high water = %d, want 9", got)
	}
}

// TestConcurrentUpdates hammers one registry from many goroutines; run
// under -race this validates the lock-free update paths, and the final
// sums validate no increment was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 10_000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(id int) {
			defer wg.Done()
			// Interleave registration and updates: every goroutine asks the
			// registry for the instruments rather than sharing pointers.
			c := r.Counter("conc_total", "")
			g := r.Gauge("conc_peak", "")
			h := r.Histogram("conc_hist", "", []int64{10, 100})
			for j := 0; j < perG; j++ {
				c.Inc()
				g.SetMax(int64(id*perG + j))
				h.Observe(int64(j % 150))
				if j%1000 == 0 {
					_ = r.Snapshot() // scrapes race against updates
				}
			}
		}(i)
	}
	wg.Wait()
	if got := r.Counter("conc_total", "").Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
	if got := r.Gauge("conc_peak", "").Value(); got != goroutines*perG-1 {
		t.Fatalf("peak = %d, want %d", got, goroutines*perG-1)
	}
	if got := r.Histogram("conc_hist", "", []int64{10, 100}).Count(); got != goroutines*perG {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*perG)
	}
}
