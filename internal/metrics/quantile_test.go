package metrics

import (
	"testing"

	"bwcs/internal/stats"
)

// familyOf renders a histogram as the Family a Snapshot would carry, so
// the quantile tests exercise the same cumulative-buckets path /metrics
// consumers see.
func familyOf(t *testing.T, h *Histogram, r *Registry) Family {
	t.Helper()
	for _, f := range r.Snapshot() {
		if f.Type == "histogram" {
			return f
		}
	}
	t.Fatalf("no histogram family in snapshot")
	return Family{}
}

func TestQuantileEmptyHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_empty", "", []int64{1, 10})
	f := familyOf(t, h, r)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := f.Quantile(q); got != 0 {
			t.Errorf("Quantile(%v) on empty histogram = %v, want 0", q, got)
		}
	}
}

func TestQuantileAllInFirstBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_first", "", []int64{5, 50, 500})
	for i := 0; i < 7; i++ {
		h.Observe(3)
	}
	f := familyOf(t, h, r)
	for _, q := range []float64{0, 0.01, 0.5, 1} {
		if got := f.Quantile(q); got != 5 {
			t.Errorf("Quantile(%v) = %v, want first bound 5", q, got)
		}
	}
}

func TestQuantileInfOverflowBucket(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_inf", "", []int64{10, 20})
	// Half the observations beyond the last bound: they live only in the
	// implicit +Inf bucket, which has no finite bound — quantiles landing
	// there fall back to the family mean.
	h.Observe(10)
	h.Observe(20)
	h.Observe(100)
	h.Observe(200)
	f := familyOf(t, h, r)
	if got := f.Quantile(0.25); got != 10 {
		t.Errorf("Quantile(0.25) = %v, want 10", got)
	}
	if got := f.Quantile(0.5); got != 20 {
		t.Errorf("Quantile(0.5) = %v, want 20", got)
	}
	mean := float64(10+20+100+200) / 4
	for _, q := range []float64{0.75, 0.99, 1} {
		if got := f.Quantile(q); got != mean {
			t.Errorf("Quantile(%v) = %v, want mean %v for the +Inf bucket", q, got, mean)
		}
	}
}

// TestQuantileAgreesWithCounterPercentile pins the two percentile
// implementations to each other: a histogram with a bound at every
// distinct value loses nothing to bucketing, so its Quantile must equal
// stats.Counter.Percentile on the same inputs. Integer percentile points
// are used because there both nearest-rank conventions (round-half-up
// vs ceiling) pick the same rank.
func TestQuantileAgreesWithCounterPercentile(t *testing.T) {
	bounds := make([]int64, 20)
	for i := range bounds {
		bounds[i] = int64(i)
	}
	r := NewRegistry()
	h := r.Histogram("q_agree", "", bounds)
	c := stats.NewCounter()
	for i := 0; i < 100; i++ {
		v := int64((i * 37) % 20)
		h.Observe(v)
		c.Add(v)
	}
	f := familyOf(t, h, r)
	for p := 1; p <= 100; p++ {
		want := float64(c.Percentile(float64(p)))
		got := f.Quantile(float64(p) / 100)
		if got != want {
			t.Errorf("p=%d: Quantile = %v, Counter.Percentile = %v", p, got, want)
		}
	}
}
