package metrics

import (
	"fmt"
	"sync"
)

// Point is one time-series sample: a value observed at time T. T's unit
// is whatever the producer samples in — sim timesteps for the engine,
// nanoseconds since an epoch for the live runtime. Consumers treat it as
// an opaque monotonic axis.
type Point struct {
	T int64   `json:"t"`
	V float64 `json:"v"`
}

// TimeSeries is a fixed-capacity series of (t, value) points with
// automatic 2× downsampling: when the buffer fills, adjacent pairs are
// averaged in place (halving the point count and doubling the effective
// resolution), and subsequent points arriving closer together than the
// current resolution are merged into the newest point by running mean.
// Memory therefore stays O(capacity) no matter how many samples a run
// produces, at the cost of coarser (mean-of-means) early history — the
// right trade for telemetry, where recent detail matters most and old
// detail only needs to preserve the curve's shape.
//
// The buffer is allocated once at construction; Append never allocates.
// A TimeSeries is not safe for concurrent use — the engine drives one
// per run from its single-threaded event loop, and the live runtime
// serializes access through a Sampler.
type TimeSeries struct {
	name  string
	pts   []Point
	res   int64 // current minimum spacing between stored points
	res0  int64 // construction-time resolution, restored by Reset
	lastN int64 // raw samples merged into the newest point
}

// NewTimeSeries returns an empty series that stores at most capacity
// points (capacity >= 2) at an initial resolution of res time units
// between stored points (res >= 1; points arriving closer together than
// the resolution merge into their predecessor).
func NewTimeSeries(name string, capacity int, res int64) *TimeSeries {
	if capacity < 2 {
		panic(fmt.Sprintf("metrics: time series %q capacity %d must be >= 2", name, capacity))
	}
	if res < 1 {
		panic(fmt.Sprintf("metrics: time series %q resolution %d must be >= 1", name, res))
	}
	return &TimeSeries{name: name, pts: make([]Point, 0, capacity), res: res, res0: res}
}

// Name returns the series name.
func (ts *TimeSeries) Name() string { return ts.name }

// Len returns the number of stored points.
func (ts *TimeSeries) Len() int { return len(ts.pts) }

// Cap returns the fixed point capacity.
func (ts *TimeSeries) Cap() int { return cap(ts.pts) }

// Resolution returns the current minimum spacing between stored points.
// It starts at the construction-time resolution and doubles on every
// downsampling pass.
func (ts *TimeSeries) Resolution() int64 { return ts.res }

// At returns the i'th stored point (0 <= i < Len), oldest first.
func (ts *TimeSeries) At(i int) Point { return ts.pts[i] }

// Last returns the newest stored point, or ok=false on an empty series.
func (ts *TimeSeries) Last() (Point, bool) {
	if len(ts.pts) == 0 {
		return Point{}, false
	}
	return ts.pts[len(ts.pts)-1], true
}

// Points returns a copy of the stored points, oldest first.
func (ts *TimeSeries) Points() []Point {
	return append([]Point(nil), ts.pts...)
}

// Reset empties the series and restores the initial resolution, keeping
// the buffer so a reused series (engine.Runner sweeps) stays
// allocation-free across runs.
func (ts *TimeSeries) Reset() {
	ts.pts = ts.pts[:0]
	ts.res = ts.res0
	ts.lastN = 0
}

// Append records value v observed at time t. Times must be
// non-decreasing; a point closer than the current resolution to the
// newest stored point merges into it (running mean over the merged raw
// samples, timestamp advanced to t). Append never allocates.
//
//bwvet:hotpath
func (ts *TimeSeries) Append(t int64, v float64) {
	if n := len(ts.pts); n > 0 {
		last := &ts.pts[n-1]
		if t < last.T {
			panic(fmt.Sprintf("metrics: time series %q time went backwards: %d -> %d", ts.name, last.T, t))
		}
		if t-last.T < ts.res {
			ts.lastN++
			last.V += (v - last.V) / float64(ts.lastN)
			last.T = t
			return
		}
	}
	if len(ts.pts) == cap(ts.pts) {
		ts.downsample()
	}
	ts.pts = append(ts.pts, Point{T: t, V: v})
	ts.lastN = 1
}

// downsample halves the stored history: adjacent pairs are replaced by
// their mean at the later timestamp, an odd trailing point is kept
// verbatim, and the resolution doubles so future points land at the new
// spacing.
//
//bwvet:hotpath
func (ts *TimeSeries) downsample() {
	n := len(ts.pts)
	j := 0
	for i := 0; i+1 < n; i += 2 {
		ts.pts[j] = Point{T: ts.pts[i+1].T, V: (ts.pts[i].V + ts.pts[i+1].V) / 2}
		j++
	}
	if n%2 == 1 {
		ts.pts[j] = ts.pts[n-1]
		j++
	}
	ts.pts = ts.pts[:j]
	ts.res *= 2
	ts.lastN = 1
}

// SeriesSnapshot is the renderable view of one TimeSeries, the unit of
// the /timeline JSON document and the bwcs-timeline/v1 artifact.
type SeriesSnapshot struct {
	Name       string  `json:"name"`
	Resolution int64   `json:"resolution"`
	Points     []Point `json:"points"`
}

// SnapshotSeries captures a TimeSeries as a SeriesSnapshot (points
// copied, safe to retain).
func SnapshotSeries(ts *TimeSeries) SeriesSnapshot {
	return SeriesSnapshot{Name: ts.Name(), Resolution: ts.Resolution(), Points: ts.Points()}
}

// Sampler is a mutex-guarded registry of TimeSeries sharing one capacity
// and resolution — the live runtime's wall-clock sampler appends from
// its sampling goroutine while HTTP handlers snapshot concurrently. The
// engine does not use a Sampler: its event loop is single-threaded and
// holds TimeSeries directly.
type Sampler struct {
	mu     sync.Mutex
	cap    int
	res    int64
	order  []*TimeSeries
	byName map[string]*TimeSeries
	ticks  uint64
}

// NewSampler returns an empty sampler whose series store at most
// capacity points at the given initial resolution.
func NewSampler(capacity int, res int64) *Sampler {
	return &Sampler{cap: capacity, res: res, byName: make(map[string]*TimeSeries)}
}

// Observe appends (t, v) to the named series, creating it on first use.
func (s *Sampler) Observe(name string, t int64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ts, ok := s.byName[name]
	if !ok {
		ts = NewTimeSeries(name, s.cap, s.res)
		s.byName[name] = ts
		s.order = append(s.order, ts)
	}
	ts.Append(t, v)
}

// Tick marks the end of one sampling pass (one Observe per series) and
// returns the new tick count. Followers of a streaming endpoint use the
// count as a cursor: a change means a fresh row of samples exists.
func (s *Sampler) Tick() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	return s.ticks
}

// Ticks returns the number of completed sampling passes.
func (s *Sampler) Ticks() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// Snapshot captures every series in first-use order.
func (s *Sampler) Snapshot() []SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.order))
	for _, ts := range s.order {
		out = append(out, SnapshotSeries(ts))
	}
	return out
}

// Latest returns the newest point of every series in first-use order,
// with the tick count at capture time — the row a /timeline follower
// streams as one NDJSON line.
func (s *Sampler) Latest() (uint64, []SeriesSnapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]SeriesSnapshot, 0, len(s.order))
	for _, ts := range s.order {
		p, ok := ts.Last()
		if !ok {
			continue
		}
		out = append(out, SeriesSnapshot{Name: ts.Name(), Resolution: ts.Resolution(), Points: []Point{p}})
	}
	return s.ticks, out
}
