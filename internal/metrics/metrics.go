// Package metrics is a small, dependency-free instrumentation layer: a
// registry of named counters, gauges and histograms with atomic,
// allocation-free update paths, plus snapshot rendering in Prometheus
// text exposition format and JSON.
//
// The package deliberately implements the minimal subset of the
// Prometheus data model this repository needs — three instrument kinds,
// static help strings, and labels only at render time — so the hot paths
// (engine event loops, the live overlay's data plane) pay one atomic add
// per update and zero allocations.
//
// Instruments are obtained from a Registry and cached by the caller;
// looking one up on every update would reintroduce a map access to the
// hot path. Snapshots are consistent per-instrument (each value is read
// atomically) but not across instruments, which is the usual contract
// for scrape-style collection.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing value. The zero value is ready
// to use.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by d, which must be non-negative.
func (c *Counter) Add(d int64) {
	if d < 0 {
		panic(fmt.Sprintf("metrics: counter add of negative %d", d))
	}
	c.v.Add(d)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a value that can go up and down. The zero value is ready to
// use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add shifts the gauge by d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// SetMax raises the gauge to v if v is larger — a high-water mark.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram counts observations into cumulative buckets with fixed
// upper bounds, mirroring the Prometheus histogram model. Observations
// are integer-valued (this repository measures timesteps, events and
// bytes, never fractions).
type Histogram struct {
	bounds  []int64 // ascending upper bounds; an implicit +Inf bucket follows
	buckets []atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	if i < len(h.bounds) {
		h.buckets[i].Add(1)
	}
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// kind discriminates instrument types in the registry.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

var kindNames = [...]string{kindCounter: "counter", kindGauge: "gauge", kindHistogram: "histogram"}

// instrument is one registered metric.
type instrument struct {
	name string
	help string
	kind kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named instruments. Registration is idempotent: asking
// for an existing name of the same kind returns the existing instrument;
// re-registering a name as a different kind panics (a programming
// error). The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	order []*instrument
	byKey map[string]*instrument
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*instrument)}
}

// validName enforces the Prometheus metric-name charset.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		letter := r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !letter && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}

// lookup finds or registers the instrument for name. The instrument is
// fully constructed (its c/g/h pointer set) before it becomes visible in
// byKey/order, and only while holding r.mu, so concurrent registration
// and Snapshot never observe a half-built entry.
func (r *Registry) lookup(name, help string, k kind, bounds []int64) *instrument {
	if !validName(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[name]; ok {
		if in.kind != k {
			panic(fmt.Sprintf("metrics: %q registered as %s, requested as %s", name, kindNames[in.kind], kindNames[k]))
		}
		if k == kindHistogram && !boundsEqual(in.h.bounds, bounds) {
			panic(fmt.Sprintf("metrics: histogram %q re-registered with different bounds", name))
		}
		return in
	}
	in := &instrument{name: name, help: help, kind: k}
	switch k {
	case kindCounter:
		in.c = &Counter{}
	case kindGauge:
		in.g = &Gauge{}
	case kindHistogram:
		in.h = &Histogram{bounds: append([]int64(nil), bounds...), buckets: make([]atomic.Int64, len(bounds))}
	}
	r.byKey[name] = in
	r.order = append(r.order, in)
	return in
}

func boundsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter with the given name, registering it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil).c
}

// Gauge returns the gauge with the given name, registering it on first
// use.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil).g
}

// Histogram returns the histogram with the given name, registering it
// with the given ascending bucket bounds on first use. Later calls must
// pass the same bounds; a mismatch panics.
func (r *Registry) Histogram(name, help string, bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q bounds not ascending", name))
		}
	}
	return r.lookup(name, help, kindHistogram, bounds).h
}

// Label is one key="value" pair attached to a sample at render time.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Sample is one rendered metric point.
type Sample struct {
	Labels []Label `json:"labels,omitempty"`
	Value  int64   `json:"value"`
}

// Family is all samples of one named metric, with its metadata.
type Family struct {
	Name    string   `json:"name"`
	Help    string   `json:"help,omitempty"`
	Type    string   `json:"type"`
	Samples []Sample `json:"samples"`
	// Histogram families carry the raw distribution instead of Samples.
	Bounds  []int64 `json:"bounds,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"` // cumulative counts per bound
	Sum     int64   `json:"sum,omitempty"`
	Count   int64   `json:"count,omitempty"`
}

// Quantile estimates the q'th quantile (0..1) of a histogram family
// from its cumulative buckets: the smallest bound whose cumulative count
// covers q of the observations (the Prometheus upper-bound convention,
// without interpolation — this repository's histograms measure small
// integer counts, so a bucket bound is the honest answer). Observations
// beyond the last bound live only in the implicit +Inf bucket, which has
// no finite bound to report; when the quantile lands there, the family
// mean Sum/Count is returned as a best effort. An empty family reports 0.
func (f Family) Quantile(q float64) float64 {
	if f.Count == 0 {
		return 0
	}
	// The tiny slack keeps q values like 0.10 — not exactly representable
	// in binary — from ceiling one observation past the exact rank.
	need := int64(math.Ceil(q*float64(f.Count) - 1e-9))
	if need < 1 {
		need = 1
	}
	for i, cum := range f.Buckets {
		if cum >= need {
			return float64(f.Bounds[i])
		}
	}
	return float64(f.Sum) / float64(f.Count)
}

// Snapshot is a point-in-time view of a metric set, renderable as
// Prometheus text or JSON. Snapshots can also be assembled by hand (see
// the live package, which renders labeled per-child samples from its own
// counters).
type Snapshot []Family

// Snapshot captures every registered instrument in registration order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	order := append([]*instrument(nil), r.order...)
	r.mu.Unlock()
	snap := make(Snapshot, 0, len(order))
	for _, in := range order {
		f := Family{Name: in.name, Help: in.help, Type: kindNames[in.kind]}
		switch in.kind {
		case kindCounter:
			f.Samples = []Sample{{Value: in.c.Value()}}
		case kindGauge:
			f.Samples = []Sample{{Value: in.g.Value()}}
		case kindHistogram:
			f.Bounds = append([]int64(nil), in.h.bounds...)
			f.Buckets = make([]int64, len(in.h.buckets))
			cum := int64(0)
			for i := range in.h.buckets {
				cum += in.h.buckets[i].Load()
				f.Buckets[i] = cum
			}
			f.Sum = in.h.Sum()
			f.Count = in.h.Count()
		}
		snap = append(snap, f)
	}
	return snap
}

// labelEscaper rewrites exactly the characters the Prometheus text
// format defines escapes for — backslash, double-quote and newline.
// Anything else (tabs, control bytes, non-UTF-8) passes through
// verbatim; Go's %q would emit \t and \xNN forms the format does not
// define and standard scrapers reject.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4).
func (s Snapshot) WritePrometheus(w io.Writer) error {
	for _, f := range s {
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.Name, f.Type); err != nil {
			return err
		}
		if f.Type == "histogram" {
			for i, b := range f.Bounds {
				if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", f.Name, b, f.Buckets[i]); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
				f.Name, f.Count, f.Name, f.Sum, f.Name, f.Count); err != nil {
				return err
			}
			continue
		}
		for _, sm := range f.Samples {
			if len(sm.Labels) == 0 {
				if _, err := fmt.Fprintf(w, "%s %d\n", f.Name, sm.Value); err != nil {
					return err
				}
				continue
			}
			if _, err := io.WriteString(w, f.Name+"{"); err != nil {
				return err
			}
			for i, l := range sm.Labels {
				sep := ","
				if i == 0 {
					sep = ""
				}
				if _, err := fmt.Fprintf(w, "%s%s=\"%s\"", sep, l.Key, labelEscaper.Replace(l.Value)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "} %d\n", sm.Value); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the snapshot as an indented JSON array of families.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
