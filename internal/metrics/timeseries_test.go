package metrics

import (
	"testing"
)

func TestTimeSeriesAppendAndSnapshot(t *testing.T) {
	ts := NewTimeSeries("rate", 8, 10)
	for i := int64(0); i < 5; i++ {
		ts.Append(i*10, float64(i))
	}
	if ts.Len() != 5 {
		t.Fatalf("Len = %d, want 5", ts.Len())
	}
	if ts.Resolution() != 10 {
		t.Fatalf("Resolution = %d, want 10", ts.Resolution())
	}
	snap := SnapshotSeries(ts)
	if snap.Name != "rate" || snap.Resolution != 10 || len(snap.Points) != 5 {
		t.Fatalf("snapshot = %+v", snap)
	}
	for i, p := range snap.Points {
		if p.T != int64(i)*10 || p.V != float64(i) {
			t.Fatalf("point %d = %+v", i, p)
		}
	}
	// The snapshot owns its points: mutating it must not touch the series.
	snap.Points[0].V = 99
	if got := ts.At(0).V; got != 0 {
		t.Fatalf("snapshot aliases the series buffer: At(0).V = %v", got)
	}
}

func TestTimeSeriesSubResolutionMerge(t *testing.T) {
	ts := NewTimeSeries("x", 8, 10)
	ts.Append(0, 2)
	// Three more samples inside the same 10-step bucket: running mean,
	// timestamp advances to the newest.
	ts.Append(3, 4)
	ts.Append(6, 6)
	ts.Append(9, 8)
	if ts.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (merged)", ts.Len())
	}
	p, _ := ts.Last()
	if p.T != 9 || p.V != 5 {
		t.Fatalf("merged point = %+v, want {9 5}", p)
	}
	// A point a full resolution past the (advanced) merged timestamp
	// starts a fresh point with a fresh mean.
	ts.Append(19, 100)
	ts.Append(20, 200)
	p, _ = ts.Last()
	if ts.Len() != 2 || p.T != 20 || p.V != 150 {
		t.Fatalf("after new bucket: len=%d last=%+v", ts.Len(), p)
	}
}

func TestTimeSeriesDownsampleOnOverflow(t *testing.T) {
	ts := NewTimeSeries("x", 4, 1)
	for i := int64(0); i < 4; i++ {
		ts.Append(i, float64(i))
	}
	if ts.Len() != 4 || ts.Resolution() != 1 {
		t.Fatalf("before overflow: len=%d res=%d", ts.Len(), ts.Resolution())
	}
	// The 5th point overflows: pairs (0,1) and (2,3) average to 2 points
	// at the later timestamps, resolution doubles, then the new point
	// lands.
	ts.Append(4, 4)
	if ts.Len() != 3 {
		t.Fatalf("after overflow: len = %d, want 3", ts.Len())
	}
	if ts.Resolution() != 2 {
		t.Fatalf("after overflow: res = %d, want 2", ts.Resolution())
	}
	want := []Point{{T: 1, V: 0.5}, {T: 3, V: 2.5}, {T: 4, V: 4}}
	for i, w := range want {
		if got := ts.At(i); got != w {
			t.Fatalf("point %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestTimeSeriesDownsampleOddCount(t *testing.T) {
	// An odd point count keeps the trailing point verbatim.
	ts := NewTimeSeries("x", 5, 1)
	for i := int64(0); i < 5; i++ {
		ts.Append(i, float64(i*10))
	}
	ts.Append(5, 50)
	// Pairs (0,10)@1, (20,30)@3, odd 40@4 kept, then 50@5 appended.
	want := []Point{{T: 1, V: 5}, {T: 3, V: 25}, {T: 4, V: 40}, {T: 5, V: 50}}
	if ts.Len() != len(want) {
		t.Fatalf("len = %d, want %d", ts.Len(), len(want))
	}
	for i, w := range want {
		if got := ts.At(i); got != w {
			t.Fatalf("point %d = %+v, want %+v", i, got, w)
		}
	}
}

func TestTimeSeriesBoundedOverLongRun(t *testing.T) {
	// A million appends at unit spacing must stay within capacity, with
	// monotone timestamps and ever-coarser resolution.
	ts := NewTimeSeries("x", 64, 1)
	for i := int64(0); i < 1_000_000; i++ {
		ts.Append(i, 1.0)
	}
	if ts.Len() > 64 {
		t.Fatalf("series exceeded capacity: %d", ts.Len())
	}
	for i := 1; i < ts.Len(); i++ {
		if ts.At(i).T <= ts.At(i-1).T {
			t.Fatalf("timestamps not strictly ascending at %d: %v then %v", i, ts.At(i-1), ts.At(i))
		}
	}
	if ts.Resolution() <= 1 {
		t.Fatalf("resolution never coarsened: %d", ts.Resolution())
	}
	// Constant input must survive mean-of-means exactly.
	for i := 0; i < ts.Len(); i++ {
		if ts.At(i).V != 1.0 {
			t.Fatalf("constant series distorted at %d: %v", i, ts.At(i))
		}
	}
}

func TestTimeSeriesReset(t *testing.T) {
	ts := NewTimeSeries("x", 4, 1)
	for i := int64(0); i < 10; i++ {
		ts.Append(i, float64(i))
	}
	if ts.Resolution() == 1 {
		t.Fatalf("fixture never downsampled")
	}
	ts.Reset()
	if ts.Len() != 0 || ts.Resolution() != 1 {
		t.Fatalf("after Reset: len=%d res=%d", ts.Len(), ts.Resolution())
	}
	ts.Append(5, 7)
	p, ok := ts.Last()
	if !ok || p.T != 5 || p.V != 7 {
		t.Fatalf("append after Reset: %+v %v", p, ok)
	}
}

func TestTimeSeriesBackwardsTimePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("backwards time did not panic")
		}
	}()
	ts := NewTimeSeries("x", 4, 1)
	ts.Append(10, 1)
	ts.Append(9, 1)
}

func TestNewTimeSeriesValidates(t *testing.T) {
	for _, tc := range []struct {
		cap1 int
		res  int64
	}{{1, 1}, {2, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewTimeSeries(cap=%d res=%d) did not panic", tc.cap1, tc.res)
				}
			}()
			NewTimeSeries("x", tc.cap1, tc.res)
		}()
	}
}

// TestTimeSeriesAppendZeroAllocs is the runtime probe backing the
// //bwvet:hotpath annotations on TimeSeries.Append and
// TimeSeries.downsample (see internal/lint's probe manifest): the engine
// calls Append from its event loop, so it must not allocate even across
// downsampling passes.
func TestTimeSeriesAppendZeroAllocs(t *testing.T) {
	ts := NewTimeSeries("x", 64, 1)
	var i int64
	allocs := testing.AllocsPerRun(10_000, func() {
		ts.Append(i, float64(i))
		i++
	})
	if allocs != 0 {
		t.Fatalf("Append allocates %.1f times per call on the warm path", allocs)
	}
}

func TestSamplerObserveSnapshotLatest(t *testing.T) {
	s := NewSampler(16, 1)
	s.Observe("a", 1, 10)
	s.Observe("b", 1, 20)
	if n := s.Tick(); n != 1 {
		t.Fatalf("Tick = %d, want 1", n)
	}
	s.Observe("a", 2, 11)
	s.Observe("b", 2, 21)
	if n := s.Tick(); n != 2 {
		t.Fatalf("Tick = %d, want 2", n)
	}
	if s.Ticks() != 2 {
		t.Fatalf("Ticks = %d", s.Ticks())
	}

	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot order/content: %+v", snap)
	}
	if len(snap[0].Points) != 2 || snap[0].Points[1] != (Point{T: 2, V: 11}) {
		t.Fatalf("series a: %+v", snap[0])
	}

	tick, latest := s.Latest()
	if tick != 2 || len(latest) != 2 {
		t.Fatalf("Latest = (%d, %d series)", tick, len(latest))
	}
	if latest[1].Points[0] != (Point{T: 2, V: 21}) {
		t.Fatalf("latest b = %+v", latest[1])
	}
}
