package stats

import "testing"

func TestConvergeFindsBandEntry(t *testing.T) {
	// Ramp 0.2 → 1.0, then hold at 1.0 within ±2%.
	times := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	values := []float64{0.2, 0.5, 0.8, 0.99, 1.01, 1.0, 0.99, 1.0}
	at, ok := Converge(times, values, 0.05, 3)
	if !ok {
		t.Fatalf("Converge: no convergence found")
	}
	if at != 40 {
		t.Fatalf("Converge at %d, want 40 (first sample of the in-band suffix)", at)
	}
}

func TestConvergeRejectsStillMoving(t *testing.T) {
	// Monotone ramp with no flat tail: the last window's mean sits above
	// most of the suffix, so the in-band suffix is shorter than window.
	times := []int64{1, 2, 3, 4, 5, 6}
	values := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.1}
	if at, ok := Converge(times, values, 0.01, 4); ok {
		t.Fatalf("Converge claimed convergence at %d on a pure ramp", at)
	}
}

func TestConvergeWholeSeriesSteady(t *testing.T) {
	times := []int64{5, 10, 15, 20}
	values := []float64{2.0, 2.0, 2.0, 2.0}
	at, ok := Converge(times, values, 0.01, 2)
	if !ok || at != 5 {
		t.Fatalf("Converge = (%d, %v), want (5, true) for an all-steady series", at, ok)
	}
}

func TestConvergeDipAndRecover(t *testing.T) {
	// The Fig 7 shape: steady, a dip after a mutation, recovery to a new
	// steady value. Convergence must land after the dip, not before it.
	times := []int64{0, 10, 20, 30, 40, 50, 60, 70, 80, 90}
	values := []float64{1.0, 1.0, 1.0, 0.4, 0.5, 0.68, 0.70, 0.69, 0.70, 0.70}
	at, ok := Converge(times, values, 0.05, 4)
	if !ok {
		t.Fatalf("Converge: no convergence after recovery")
	}
	if at != 50 {
		t.Fatalf("Converge at %d, want 50 (first post-dip in-band sample)", at)
	}
}

func TestConvergeTooShort(t *testing.T) {
	if _, ok := Converge([]int64{1, 2}, []float64{1, 1}, 0.1, 3); ok {
		t.Fatalf("Converge claimed convergence with fewer samples than the window")
	}
}

func TestConvergeZeroSteady(t *testing.T) {
	// A series that decays to zero: the band degenerates to |v| <= eps.
	times := []int64{1, 2, 3, 4, 5}
	values := []float64{3.0, 1.0, 0.0, 0.0, 0.0}
	at, ok := Converge(times, values, 0.05, 3)
	if !ok || at != 3 {
		t.Fatalf("Converge = (%d, %v), want (3, true) for a zero-steady tail", at, ok)
	}
}
