package stats

import (
	"math/rand/v2"
	"testing"
)

// TestCounterMatchesSliceStats: on random multisets, every Counter order
// statistic equals the sorted-slice computation exactly.
func TestCounterMatchesSliceStats(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.IntN(400)
		vs := make([]int64, n)
		c := NewCounter()
		for i := range vs {
			vs[i] = int64(rng.IntN(60))
			c.Add(vs[i])
		}
		if c.Total() != int64(n) {
			t.Fatalf("trial %d: total %d, want %d", trial, c.Total(), n)
		}
		if got, want := c.Median(), Median(vs); got != want {
			t.Fatalf("trial %d: median %d, want %d", trial, got, want)
		}
		if got, want := c.Max(), Max(vs); got != want {
			t.Fatalf("trial %d: max %d, want %d", trial, got, want)
		}
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 95, 99, 100} {
			if got, want := c.Percentile(p), Percentile(vs, p); got != want {
				t.Fatalf("trial %d: p%v = %d, want %d", trial, p, got, want)
			}
		}
		for _, x := range []int64{-1, 0, 1, 5, 30, 59, 60, 1000} {
			var want int64
			for _, v := range vs {
				if v <= x {
					want++
				}
			}
			if got := c.CountAtMost(x); got != want {
				t.Fatalf("trial %d: CountAtMost(%d) = %d, want %d", trial, x, got, want)
			}
		}
	}
}

// TestCounterEmptyPanics: the empty-counter contracts match the slice
// functions' panics.
func TestCounterEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(*Counter){
		"median":     func(c *Counter) { c.Median() },
		"max":        func(c *Counter) { c.Max() },
		"percentile": func(c *Counter) { c.Percentile(50) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s of empty counter did not panic", name)
				}
			}()
			fn(NewCounter())
		}()
	}
	if got := NewCounter().CountAtMost(5); got != 0 {
		t.Fatalf("empty CountAtMost = %d, want 0", got)
	}
}
