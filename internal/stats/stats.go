// Package stats provides the small set of descriptive statistics the
// paper's evaluation uses: medians and extrema over tree populations
// (Table 2), probability distribution functions over binned counts
// (Figure 6), and cumulative distribution series (Figures 4 and 5).
package stats

import (
	"fmt"
	"slices"
)

// Median returns the median of vs: the middle element for odd lengths, the
// mean of the two middle elements (rounded down) for even lengths. It
// panics on an empty slice.
func Median(vs []int64) int64 {
	if len(vs) == 0 {
		panic("stats: median of empty slice")
	}
	s := slices.Clone(vs)
	slices.Sort(s)
	mid := len(s) / 2
	if len(s)%2 == 1 {
		return s[mid]
	}
	return (s[mid-1] + s[mid]) / 2
}

// Max returns the maximum of vs. It panics on an empty slice.
func Max(vs []int64) int64 {
	if len(vs) == 0 {
		panic("stats: max of empty slice")
	}
	return slices.Max(vs)
}

// Min returns the minimum of vs. It panics on an empty slice.
func Min(vs []int64) int64 {
	if len(vs) == 0 {
		panic("stats: min of empty slice")
	}
	return slices.Min(vs)
}

// Mean returns the arithmetic mean of vs. It panics on an empty slice.
func Mean(vs []int64) float64 {
	if len(vs) == 0 {
		panic("stats: mean of empty slice")
	}
	var sum int64
	for _, v := range vs {
		sum += v
	}
	return float64(sum) / float64(len(vs))
}

// Jain returns Jain's fairness index over the allocations xs:
// (Σx)² ⁄ (n·Σx²). The index is 1 when every allocation is equal and
// approaches 1/n as one allocation dominates; it is 0 when all
// allocations are 0 (or xs is empty).
func Jain(xs []float64) float64 {
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Percentile returns the p'th percentile (0..100) of vs using
// nearest-rank. It panics on an empty slice or out-of-range p.
func Percentile(vs []int64, p float64) int64 {
	if len(vs) == 0 {
		panic("stats: percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	s := slices.Clone(vs)
	slices.Sort(s)
	if p == 0 {
		return s[0]
	}
	rank := int(p/100*float64(len(s))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(s) {
		rank = len(s) - 1
	}
	return s[rank]
}

// Histogram bins values into fixed-width buckets for PDF plots.
type Histogram struct {
	// BinWidth is the width of each bucket; bucket i covers
	// [i*BinWidth, (i+1)*BinWidth).
	BinWidth int64
	// Counts[i] is the number of values in bucket i.
	Counts []int64
	// Total is the number of values added.
	Total int64
}

// NewHistogram returns an empty histogram with the given bin width.
func NewHistogram(binWidth int64) *Histogram {
	if binWidth <= 0 {
		panic(fmt.Sprintf("stats: bin width %d must be positive", binWidth))
	}
	return &Histogram{BinWidth: binWidth}
}

// Add records a non-negative value.
func (h *Histogram) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative histogram value %d", v))
	}
	bin := int(v / h.BinWidth)
	for len(h.Counts) <= bin {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[bin]++
	h.Total++
}

// PDF returns each bucket's share of the total (0..1); an empty histogram
// returns nil.
func (h *Histogram) PDF() []float64 {
	if h.Total == 0 {
		return nil
	}
	out := make([]float64, len(h.Counts))
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// BinCenter returns the midpoint of bucket i, for plotting.
func (h *Histogram) BinCenter(i int) float64 {
	return (float64(i) + 0.5) * float64(h.BinWidth)
}

// CDF builds the cumulative distribution the paper's Figures 4 and 5 plot:
// given per-item onset values (and a flag for items that never reached
// onset), it reports the fraction of ALL items whose onset is <= x for
// each requested x. Items that never reached contribute to the
// denominator but never to the numerator, exactly as trees that never
// reach steady state hold the curves below 100%.
type CDF struct {
	onsets []int64
	total  int
}

// NewCDF returns an empty CDF accumulator.
func NewCDF() *CDF { return &CDF{} }

// AddReached records an item that reached onset at the given value.
func (c *CDF) AddReached(onset int64) {
	c.onsets = append(c.onsets, onset)
	c.total++
}

// AddNotReached records an item that never reached onset.
func (c *CDF) AddNotReached() { c.total++ }

// Total returns the number of items recorded.
func (c *CDF) Total() int { return c.total }

// ReachedFraction returns the fraction of items that reached onset at all.
func (c *CDF) ReachedFraction() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(len(c.onsets)) / float64(c.total)
}

// At returns the fraction of all items with onset <= x.
func (c *CDF) At(x int64) float64 {
	if c.total == 0 {
		return 0
	}
	n := 0
	for _, o := range c.onsets {
		if o <= x {
			n++
		}
	}
	return float64(n) / float64(c.total)
}

// Series evaluates the CDF at each x in xs, which must be ascending.
func (c *CDF) Series(xs []int64) []float64 {
	if !slices.IsSorted(xs) {
		panic("stats: CDF series points must be ascending")
	}
	if len(c.onsets) > 1 {
		slices.Sort(c.onsets)
	}
	out := make([]float64, len(xs))
	i := 0
	for j, x := range xs {
		for i < len(c.onsets) && c.onsets[i] <= x {
			i++
		}
		if c.total == 0 {
			out[j] = 0
		} else {
			out[j] = float64(i) / float64(c.total)
		}
	}
	return out
}
