package stats

import (
	"math"
	"math/rand/v2"
	"slices"
	"testing"
)

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []int64
		want int64
	}{
		{[]int64{5}, 5},
		{[]int64{1, 2, 3}, 2},
		{[]int64{3, 1, 2}, 2},
		{[]int64{1, 2, 3, 4}, 2},
		{[]int64{10, 20}, 15},
		{[]int64{-5, 5, 100}, 5},
	}
	for _, tc := range cases {
		if got := Median(tc.in); got != tc.want {
			t.Fatalf("Median(%v) = %d, want %d", tc.in, got, tc.want)
		}
	}
	// Median must not mutate its input.
	in := []int64{3, 1, 2}
	Median(in)
	if !slices.Equal(in, []int64{3, 1, 2}) {
		t.Fatalf("Median mutated input: %v", in)
	}
}

func TestMinMaxMean(t *testing.T) {
	vs := []int64{4, -2, 9, 9, 0}
	if Max(vs) != 9 || Min(vs) != -2 {
		t.Fatalf("Max/Min wrong")
	}
	if got := Mean(vs); math.Abs(got-4) > 1e-12 {
		t.Fatalf("Mean = %v, want 4", got)
	}
}

func TestEmptyPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"median":     func() { Median(nil) },
		"max":        func() { Max(nil) },
		"min":        func() { Min(nil) },
		"mean":       func() { Mean(nil) },
		"percentile": func() { Percentile(nil, 50) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			fn()
		})
	}
}

func TestPercentile(t *testing.T) {
	vs := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := Percentile(vs, 0); got != 1 {
		t.Fatalf("P0 = %d", got)
	}
	if got := Percentile(vs, 100); got != 10 {
		t.Fatalf("P100 = %d", got)
	}
	if got := Percentile(vs, 50); got != 5 {
		t.Fatalf("P50 = %d", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("out-of-range percentile accepted")
		}
	}()
	Percentile(vs, 101)
}

func TestPropertyMedianAndPercentileAgree(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 9))
	for i := 0; i < 100; i++ {
		n := rng.IntN(99)*2 + 1 // odd lengths: median == P50 exactly
		vs := make([]int64, n)
		for j := range vs {
			vs[j] = rng.Int64N(1000)
		}
		if Median(vs) != Percentile(vs, 50) {
			t.Fatalf("median %d != P50 %d for %v", Median(vs), Percentile(vs, 50), vs)
		}
		if Min(vs) > Median(vs) || Median(vs) > Max(vs) {
			t.Fatalf("ordering violated")
		}
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10)
	for _, v := range []int64{0, 5, 9, 10, 15, 25, 99} {
		h.Add(v)
	}
	if h.Total != 7 {
		t.Fatalf("Total = %d", h.Total)
	}
	if h.Counts[0] != 3 || h.Counts[1] != 2 || h.Counts[2] != 1 || h.Counts[9] != 1 {
		t.Fatalf("Counts = %v", h.Counts)
	}
	pdf := h.PDF()
	var sum float64
	for _, p := range pdf {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("PDF sums to %v", sum)
	}
	if got := h.BinCenter(2); got != 25 {
		t.Fatalf("BinCenter(2) = %v", got)
	}
}

func TestHistogramEmptyAndErrors(t *testing.T) {
	if NewHistogram(5).PDF() != nil {
		t.Fatalf("empty PDF not nil")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("zero bin width accepted")
			}
		}()
		NewHistogram(0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("negative value accepted")
			}
		}()
		NewHistogram(5).Add(-1)
	}()
}

func TestCDF(t *testing.T) {
	c := NewCDF()
	c.AddReached(100)
	c.AddReached(300)
	c.AddReached(300)
	c.AddNotReached()
	if c.Total() != 4 {
		t.Fatalf("Total = %d", c.Total())
	}
	if got := c.ReachedFraction(); math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("ReachedFraction = %v", got)
	}
	for _, tc := range []struct {
		x    int64
		want float64
	}{
		{50, 0}, {100, 0.25}, {299, 0.25}, {300, 0.75}, {1000, 0.75},
	} {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("At(%d) = %v, want %v", tc.x, got, tc.want)
		}
	}
}

func TestCDFSeriesMatchesAt(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	c := NewCDF()
	for i := 0; i < 200; i++ {
		if rng.IntN(5) == 0 {
			c.AddNotReached()
		} else {
			c.AddReached(rng.Int64N(5000))
		}
	}
	xs := make([]int64, 50)
	for i := range xs {
		xs[i] = int64(i * 100)
	}
	series := c.Series(xs)
	for i, x := range xs {
		if math.Abs(series[i]-c.At(x)) > 1e-12 {
			t.Fatalf("Series[%d]=%v != At(%d)=%v", i, series[i], x, c.At(x))
		}
	}
	// Monotone non-decreasing, capped by reached fraction.
	for i := 1; i < len(series); i++ {
		if series[i] < series[i-1] {
			t.Fatalf("CDF not monotone at %d", i)
		}
	}
	if series[len(series)-1] > c.ReachedFraction()+1e-12 {
		t.Fatalf("CDF exceeds reached fraction")
	}
}

func TestCDFSeriesRejectsUnsorted(t *testing.T) {
	c := NewCDF()
	c.AddReached(1)
	defer func() {
		if recover() == nil {
			t.Fatalf("unsorted xs accepted")
		}
	}()
	c.Series([]int64{5, 1})
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF()
	if c.At(10) != 0 || c.ReachedFraction() != 0 {
		t.Fatalf("empty CDF not zero")
	}
	if got := c.Series([]int64{1, 2}); got[0] != 0 || got[1] != 0 {
		t.Fatalf("empty Series not zero: %v", got)
	}
}
