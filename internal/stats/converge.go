package stats

import (
	"fmt"
	"math"
)

// Converge detects when a sampled series settled: the first time the
// values enter — and never again leave — a relative ε-band around the
// series' trailing steady value (the mean of the last window samples).
// It returns the timestamp of the first sample of that final in-band
// suffix, and whether the suffix is at least window samples long (a
// shorter suffix means the series was still moving at the end and no
// convergence can be claimed).
//
// This is the re-convergence metric of the adaptability experiments: a
// platform mutation knocks the completion rate off its steady value, and
// "time to re-converge" is Converge over the post-mutation samples minus
// the mutation time. The detector is deliberately retrospective (the
// steady value is taken from the tail, not predicted), which is the
// right definition for a finished run and needs no model of the target
// rate.
//
// times and values are parallel slices, times ascending. eps is the
// relative half-width of the band (0.05 = ±5%); for a steady value of
// zero the band degenerates to |v| <= eps. window must be >= 1.
func Converge(times []int64, values []float64, eps float64, window int) (at int64, ok bool) {
	if len(times) != len(values) {
		panic(fmt.Sprintf("stats: converge over %d times but %d values", len(times), len(values)))
	}
	if window < 1 {
		panic(fmt.Sprintf("stats: converge window %d must be >= 1", window))
	}
	if eps < 0 {
		panic(fmt.Sprintf("stats: negative converge band %v", eps))
	}
	n := len(values)
	if n < window {
		return 0, false
	}
	var sum float64
	for _, v := range values[n-window:] {
		sum += v
	}
	steady := sum / float64(window)
	tol := eps * math.Abs(steady)
	i := n
	for i > 0 && math.Abs(values[i-1]-steady) <= tol {
		i--
	}
	if n-i < window {
		return 0, false
	}
	return times[i], true
}
