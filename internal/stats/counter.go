package stats

import "fmt"

// Counter is a counting histogram over non-negative int64 values with a
// small range (onset windows, buffer counts). It answers order
// statistics — median, percentile, rank counts — exactly, matching the
// sorted-slice functions above bit for bit, while storing one counter
// per distinct value instead of one element per observation. That is
// what lets a streaming sweep over millions of trees keep exact
// aggregates in O(value range) memory.
type Counter struct {
	counts []int64
	total  int64
	max    int64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{} }

// Add records a non-negative value.
func (c *Counter) Add(v int64) {
	if v < 0 {
		panic(fmt.Sprintf("stats: negative counter value %d", v))
	}
	for int64(len(c.counts)) <= v {
		c.counts = append(c.counts, 0)
	}
	c.counts[v]++
	c.total++
	if v > c.max {
		c.max = v
	}
}

// Total returns the number of values added.
func (c *Counter) Total() int64 { return c.total }

// Max returns the largest value added; it panics when empty, like Max.
func (c *Counter) Max() int64 {
	if c.total == 0 {
		panic("stats: max of empty counter")
	}
	return c.max
}

// CountAtMost returns how many added values are <= x.
func (c *Counter) CountAtMost(x int64) int64 {
	if x < 0 {
		return 0
	}
	if x >= c.max {
		return c.total
	}
	var n int64
	for v := int64(0); v <= x; v++ {
		n += c.counts[v]
	}
	return n
}

// Kth returns the k'th smallest added value, 0-based — the value that
// would sit at index k of the sorted slice of observations.
func (c *Counter) Kth(k int64) int64 {
	if k < 0 || k >= c.total {
		panic(fmt.Sprintf("stats: rank %d out of range 0..%d", k, c.total-1))
	}
	var seen int64
	for v, n := range c.counts {
		seen += n
		if seen > k {
			return int64(v)
		}
	}
	panic("stats: counter books unbalanced")
}

// Median returns the median: the middle value for odd totals, the mean
// of the two middle values (rounded down) for even totals — the same
// result as Median over the equivalent slice. It panics when empty.
func (c *Counter) Median() int64 {
	if c.total == 0 {
		panic("stats: median of empty counter")
	}
	mid := c.total / 2
	if c.total%2 == 1 {
		return c.Kth(mid)
	}
	return (c.Kth(mid-1) + c.Kth(mid)) / 2
}

// Percentile returns the p'th percentile (0..100) by nearest-rank, the
// same result as Percentile over the equivalent slice. It panics when
// empty or when p is out of range.
func (c *Counter) Percentile(p float64) int64 {
	if c.total == 0 {
		panic("stats: percentile of empty counter")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of range", p))
	}
	if p == 0 {
		return c.Kth(0)
	}
	rank := int64(p/100*float64(c.total)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= c.total {
		rank = c.total - 1
	}
	return c.Kth(rank)
}
