// Package tree implements the platform model of the paper: a node-weighted,
// edge-weighted tree T = (V, E, w, c) describing a heterogeneous computing
// platform organized as an overlay network.
//
// Each node i is a compute resource with weight W(i), the time it takes to
// compute one application task. Each non-root node also carries the weight
// C(i) of the edge to its parent: the total time to send one task's input
// data down that edge and return its results. Larger weights mean slower
// resources. The root holds the application's task pool (the data
// repository, "data starts & ends here" in the paper's Figure 1).
//
// Trees are mutable — the paper's adaptability experiments change node and
// edge weights mid-run, and its future-work section calls for dynamically
// growing overlays, which Attach and Detach support — but the topology is
// always a rooted tree by construction: nodes are added under an existing
// parent, so cycles cannot arise.
package tree

import (
	"errors"
	"fmt"
)

// NodeID identifies a node within a Tree. IDs are dense indices: a tree
// with n nodes uses IDs 0..n-1, and the root is always ID 0.
type NodeID int32

// None is the parent of the root node.
const None NodeID = -1

// node is the internal per-node record.
type node struct {
	parent   NodeID
	children []NodeID
	w        int64 // compute time per task, > 0
	c        int64 // communication time to parent per task, > 0 (unused for root)
	depth    int32 // cached distance from root
}

// Tree is a rooted, weighted platform tree. The zero value is not usable;
// construct with New.
type Tree struct {
	nodes []node
}

// New returns a tree containing only a root with compute weight rootW.
// It panics if rootW is not positive.
func New(rootW int64) *Tree {
	if rootW <= 0 {
		panic(fmt.Sprintf("tree: root compute weight %d must be positive", rootW))
	}
	return &Tree{nodes: []node{{parent: None, w: rootW}}}
}

// AddChild adds a new leaf under parent with compute weight w and
// communication weight c, returning its ID. It panics if parent is not a
// valid node or the weights are not positive; programmatic tree
// construction with bad arguments is a bug, not a runtime condition.
func (t *Tree) AddChild(parent NodeID, w, c int64) NodeID {
	t.mustHave(parent)
	if w <= 0 {
		panic(fmt.Sprintf("tree: compute weight %d must be positive", w))
	}
	if c <= 0 {
		panic(fmt.Sprintf("tree: communication weight %d must be positive", c))
	}
	id := NodeID(len(t.nodes))
	t.nodes = append(t.nodes, node{
		parent: parent,
		w:      w,
		c:      c,
		depth:  t.nodes[parent].depth + 1,
	})
	t.nodes[parent].children = append(t.nodes[parent].children, id)
	return id
}

func (t *Tree) mustHave(id NodeID) {
	if id < 0 || int(id) >= len(t.nodes) {
		panic(fmt.Sprintf("tree: no node %d (tree has %d nodes)", id, len(t.nodes)))
	}
}

// Root returns the ID of the root node, which is always 0.
func (t *Tree) Root() NodeID { return 0 }

// Len returns the number of nodes in the tree.
func (t *Tree) Len() int { return len(t.nodes) }

// Valid reports whether id names a node of t.
func (t *Tree) Valid(id NodeID) bool { return id >= 0 && int(id) < len(t.nodes) }

// Parent returns the parent of id, or None for the root.
func (t *Tree) Parent(id NodeID) NodeID {
	t.mustHave(id)
	return t.nodes[id].parent
}

// Children returns the children of id in insertion order. The returned
// slice is owned by the tree and must not be modified.
func (t *Tree) Children(id NodeID) []NodeID {
	t.mustHave(id)
	return t.nodes[id].children
}

// IsLeaf reports whether id has no children.
func (t *Tree) IsLeaf(id NodeID) bool { return len(t.Children(id)) == 0 }

// W returns the compute weight of id: the time to compute one task there.
func (t *Tree) W(id NodeID) int64 {
	t.mustHave(id)
	return t.nodes[id].w
}

// C returns the communication weight of the edge from id to its parent:
// the time to move one task (input and results) across it. C of the root
// is meaningless and returns 0.
func (t *Tree) C(id NodeID) int64 {
	t.mustHave(id)
	if t.nodes[id].parent == None {
		return 0
	}
	return t.nodes[id].c
}

// SetW changes the compute weight of id. The paper's adaptability
// experiments use this to model changing processor contention.
func (t *Tree) SetW(id NodeID, w int64) {
	t.mustHave(id)
	if w <= 0 {
		panic(fmt.Sprintf("tree: compute weight %d must be positive", w))
	}
	t.nodes[id].w = w
}

// SetC changes the communication weight of the edge above id. The paper's
// adaptability experiments use this to model changing network contention.
// It panics when id is the root, which has no parent edge.
func (t *Tree) SetC(id NodeID, c int64) {
	t.mustHave(id)
	if t.nodes[id].parent == None {
		panic("tree: root has no parent edge")
	}
	if c <= 0 {
		panic(fmt.Sprintf("tree: communication weight %d must be positive", c))
	}
	t.nodes[id].c = c
}

// Depth returns the number of edges between id and the root.
func (t *Tree) Depth(id NodeID) int {
	t.mustHave(id)
	return int(t.nodes[id].depth)
}

// MaxDepth returns the depth of the deepest node.
func (t *Tree) MaxDepth() int {
	max := int32(0)
	for i := range t.nodes {
		if t.nodes[i].depth > max {
			max = t.nodes[i].depth
		}
	}
	return int(max)
}

// Walk visits every node in preorder (parents before children), calling fn
// with each ID. Iteration stops early if fn returns false.
func (t *Tree) Walk(fn func(NodeID) bool) {
	stack := []NodeID{t.Root()}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(id) {
			return
		}
		kids := t.nodes[id].children
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
}

// WalkPost visits every node in postorder (children before parents). The
// bottom-up optimal-rate computation relies on this ordering.
func (t *Tree) WalkPost(fn func(NodeID)) {
	var rec func(NodeID)
	rec = func(id NodeID) {
		for _, k := range t.nodes[id].children {
			rec(k)
		}
		fn(id)
	}
	rec(t.Root())
}

// Subtree returns the IDs of all nodes in the subtree rooted at id, in
// preorder.
func (t *Tree) Subtree(id NodeID) []NodeID {
	t.mustHave(id)
	out := []NodeID{}
	stack := []NodeID{id}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, n)
		kids := t.nodes[n].children
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
	return out
}

// Clone returns a deep copy of t.
func (t *Tree) Clone() *Tree {
	nodes := make([]node, len(t.nodes))
	copy(nodes, t.nodes)
	for i := range nodes {
		if len(nodes[i].children) > 0 {
			nodes[i].children = append([]NodeID(nil), nodes[i].children...)
		}
	}
	return &Tree{nodes: nodes}
}

// Attach grafts a deep copy of sub under parent, connecting sub's root to
// parent with communication weight c. It returns the new ID of sub's root.
// This models a subtree of resources joining a running overlay, which the
// paper highlights as a key property of autonomous scheduling.
func (t *Tree) Attach(parent NodeID, sub *Tree, c int64) NodeID {
	t.mustHave(parent)
	ids := make([]NodeID, sub.Len())
	var newRoot NodeID
	sub.Walk(func(old NodeID) bool {
		if old == sub.Root() {
			newRoot = t.AddChild(parent, sub.W(old), c)
			ids[old] = newRoot
		} else {
			ids[old] = t.AddChild(ids[sub.Parent(old)], sub.W(old), sub.C(old))
		}
		return true
	})
	return newRoot
}

// Detach removes the subtree rooted at id (which must not be the root) and
// returns it as an independent tree plus a remainder tree; t itself is not
// modified. Both results are freshly indexed; detachedIDs and remainderIDs
// map old IDs to new ones (entries for nodes absent from that result are
// None). This models resources leaving a running overlay.
func (t *Tree) Detach(id NodeID) (detached, remainder *Tree, detachedIDs, remainderIDs []NodeID) {
	t.mustHave(id)
	if id == t.Root() {
		panic("tree: cannot detach the root")
	}
	inSub := make([]bool, len(t.nodes))
	for _, n := range t.Subtree(id) {
		inSub[n] = true
	}
	detachedIDs = make([]NodeID, len(t.nodes))
	remainderIDs = make([]NodeID, len(t.nodes))
	for i := range detachedIDs {
		detachedIDs[i] = None
		remainderIDs[i] = None
	}
	detached = New(t.W(id))
	detachedIDs[id] = detached.Root()
	remainder = New(t.W(t.Root()))
	remainderIDs[t.Root()] = remainder.Root()
	t.Walk(func(n NodeID) bool {
		switch {
		case n == t.Root() || n == id:
			// Already created as the respective roots.
		case inSub[n]:
			detachedIDs[n] = detached.AddChild(detachedIDs[t.Parent(n)], t.W(n), t.C(n))
		default:
			remainderIDs[n] = remainder.AddChild(remainderIDs[t.Parent(n)], t.W(n), t.C(n))
		}
		return true
	})
	return detached, remainder, detachedIDs, remainderIDs
}

// Validate checks structural invariants: dense IDs, a single root at ID 0,
// consistent parent/child links, correct depths, and positive weights. A
// tree built only through this package's API always validates; Validate
// exists to vet trees decoded from external data.
func (t *Tree) Validate() error {
	if len(t.nodes) == 0 {
		return errors.New("tree: empty")
	}
	if t.nodes[0].parent != None {
		return errors.New("tree: node 0 is not a root")
	}
	seen := 0
	for id := range t.nodes {
		n := &t.nodes[id]
		if n.w <= 0 {
			return fmt.Errorf("tree: node %d has non-positive compute weight %d", id, n.w)
		}
		if n.parent == None {
			if id != 0 {
				return fmt.Errorf("tree: node %d is a second root", id)
			}
		} else {
			if int(n.parent) < 0 || int(n.parent) >= len(t.nodes) {
				return fmt.Errorf("tree: node %d has invalid parent %d", id, n.parent)
			}
			if n.c <= 0 {
				return fmt.Errorf("tree: node %d has non-positive communication weight %d", id, n.c)
			}
			if n.depth != t.nodes[n.parent].depth+1 {
				return fmt.Errorf("tree: node %d has depth %d, parent depth %d", id, n.depth, t.nodes[n.parent].depth)
			}
			found := false
			for _, k := range t.nodes[n.parent].children {
				if int(k) == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("tree: node %d missing from children of %d", id, n.parent)
			}
		}
		seen++
	}
	// Reachability: every node must be visited from the root exactly once.
	count := 0
	t.Walk(func(NodeID) bool { count++; return true })
	if count != seen {
		return fmt.Errorf("tree: %d of %d nodes reachable from root", count, seen)
	}
	return nil
}

// String renders a short human-readable summary.
func (t *Tree) String() string {
	return fmt.Sprintf("tree{nodes: %d, depth: %d}", t.Len(), t.MaxDepth())
}
