package tree

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// jsonNode is the wire representation of one node in the JSON codec.
type jsonNode struct {
	ID     NodeID `json:"id"`
	Parent NodeID `json:"parent"` // -1 for the root
	W      int64  `json:"w"`
	C      int64  `json:"c,omitempty"` // omitted for the root
}

// jsonTree is the wire representation of a whole tree.
type jsonTree struct {
	Nodes []jsonNode `json:"nodes"`
}

// MarshalJSON implements json.Marshaler. Nodes are emitted in ID order so
// output is deterministic and parents always precede children.
func (t *Tree) MarshalJSON() ([]byte, error) {
	out := jsonTree{Nodes: make([]jsonNode, t.Len())}
	for id := 0; id < t.Len(); id++ {
		n := jsonNode{ID: NodeID(id), Parent: t.nodes[id].parent, W: t.nodes[id].w}
		if n.Parent != None {
			n.C = t.nodes[id].c
		}
		out.Nodes[id] = n
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded tree.
// Nodes must be listed in ID order with parents before children (the order
// MarshalJSON produces).
func (t *Tree) UnmarshalJSON(b []byte) error {
	var in jsonTree
	if err := json.Unmarshal(b, &in); err != nil {
		return err
	}
	built, err := fromRecords(in.Nodes)
	if err != nil {
		return err
	}
	*t = *built
	return nil
}

func fromRecords(recs []jsonNode) (*Tree, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("tree: no nodes")
	}
	if recs[0].ID != 0 || recs[0].Parent != None {
		return nil, fmt.Errorf("tree: first node must be root with id 0 and parent -1")
	}
	if recs[0].W <= 0 {
		return nil, fmt.Errorf("tree: root compute weight %d must be positive", recs[0].W)
	}
	built := New(recs[0].W)
	for i, r := range recs[1:] {
		if int(r.ID) != i+1 {
			return nil, fmt.Errorf("tree: node ids must be dense and ordered, got %d at position %d", r.ID, i+1)
		}
		if !built.Valid(r.Parent) {
			return nil, fmt.Errorf("tree: node %d references parent %d before it exists", r.ID, r.Parent)
		}
		if r.W <= 0 || r.C <= 0 {
			return nil, fmt.Errorf("tree: node %d has non-positive weight (w=%d c=%d)", r.ID, r.W, r.C)
		}
		built.AddChild(r.Parent, r.W, r.C)
	}
	if err := built.Validate(); err != nil {
		return nil, err
	}
	return built, nil
}

// Encode writes t in the compact text format:
//
//	bwcs-tree v1
//	<id> <parent> <w> <c>     (one line per node; root line has parent -1 and c 0)
//
// Lines appear in ID order. Blank lines and lines starting with '#' are
// ignored by Decode so files can carry comments.
func (t *Tree) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "bwcs-tree v1"); err != nil {
		return err
	}
	for id := 0; id < t.Len(); id++ {
		n := &t.nodes[id]
		c := n.c
		if n.parent == None {
			c = 0
		}
		if _, err := fmt.Fprintf(bw, "%d %d %d %d\n", id, n.parent, n.w, c); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads a tree in the format written by Encode.
func Decode(r io.Reader) (*Tree, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	header := false
	var recs []jsonNode
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if !header {
			if text != "bwcs-tree v1" {
				return nil, fmt.Errorf("tree: line %d: bad header %q", line, text)
			}
			header = true
			continue
		}
		var rec jsonNode
		if _, err := fmt.Sscanf(text, "%d %d %d %d", &rec.ID, &rec.Parent, &rec.W, &rec.C); err != nil {
			return nil, fmt.Errorf("tree: line %d: %v", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !header {
		return nil, fmt.Errorf("tree: missing header")
	}
	return fromRecords(recs)
}
