package tree

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzDecode hardens the text codec against arbitrary input: Decode must
// never panic, and anything it accepts must validate and round-trip.
func FuzzDecode(f *testing.F) {
	var seed bytes.Buffer
	if err := buildSample().Encode(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("bwcs-tree v1\n0 -1 5 0\n")
	f.Add("bwcs-tree v1\n0 -1 5 0\n1 0 3 1\n# comment\n")
	f.Add("")
	f.Add("bwcs-tree v9\n")
	f.Add("bwcs-tree v1\n0 -1 -5 0\n")
	f.Add("bwcs-tree v1\n0 0 1 1\n")
	f.Add("bwcs-tree v1\n0 -1 1 0\n2 0 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Decode(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid tree: %v\ninput: %q", err, in)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		back, err := Decode(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round trip changed size: %d vs %d", back.Len(), tr.Len())
		}
	})
}

// FuzzJSON does the same for the JSON codec.
func FuzzJSON(f *testing.F) {
	b, _ := buildSample().MarshalJSON()
	f.Add(string(b))
	f.Add(`{"nodes":[{"id":0,"parent":-1,"w":1}]}`)
	f.Add(`{"nodes":[]}`)
	f.Add(`{}`)
	f.Add(`[1,2,3]`)
	f.Fuzz(func(t *testing.T, in string) {
		var tr Tree
		if err := tr.UnmarshalJSON([]byte(in)); err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("UnmarshalJSON accepted an invalid tree: %v\ninput: %q", err, in)
		}
	})
}
