package tree

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := buildSample()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Tree
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	assertSameTree(t, tr, &back)
}

func TestJSONRejectsBadInput(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty nodes", `{"nodes":[]}`},
		{"no root", `{"nodes":[{"id":0,"parent":3,"w":1}]}`},
		{"zero weight root", `{"nodes":[{"id":0,"parent":-1,"w":0}]}`},
		{"gap in ids", `{"nodes":[{"id":0,"parent":-1,"w":1},{"id":2,"parent":0,"w":1,"c":1}]}`},
		{"forward parent", `{"nodes":[{"id":0,"parent":-1,"w":1},{"id":1,"parent":2,"w":1,"c":1},{"id":2,"parent":0,"w":1,"c":1}]}`},
		{"zero c", `{"nodes":[{"id":0,"parent":-1,"w":1},{"id":1,"parent":0,"w":1,"c":0}]}`},
		{"not json", `horse`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tr Tree
			if err := json.Unmarshal([]byte(tc.in), &tr); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
}

func TestTextRoundTrip(t *testing.T) {
	tr := buildSample()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	assertSameTree(t, tr, back)
}

func TestTextDecodeCommentsAndBlanks(t *testing.T) {
	in := `
# a platform with two nodes
bwcs-tree v1

0 -1 5 0
# fast child
1 0 3 1
`
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if tr.Len() != 2 || tr.W(1) != 3 || tr.C(1) != 1 {
		t.Fatalf("decoded wrong tree: %v", tr)
	}
}

func TestTextDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty", ""},
		{"bad header", "bwcs-tree v9\n0 -1 5 0\n"},
		{"garbage line", "bwcs-tree v1\n0 -1 5 0\nxyzzy\n"},
		{"no nodes", "bwcs-tree v1\n"},
		{"bad weight", "bwcs-tree v1\n0 -1 0 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(strings.NewReader(tc.in)); err == nil {
				t.Fatalf("accepted %q", tc.in)
			}
		})
	}
}

func TestPropertyCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 19))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, rng.IntN(120)+1)

		b, err := json.Marshal(tr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var viaJSON Tree
		if err := json.Unmarshal(b, &viaJSON); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		assertSameTree(t, tr, &viaJSON)

		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("encode: %v", err)
		}
		viaText, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		assertSameTree(t, tr, viaText)
	}
}

func assertSameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("sizes differ: %d vs %d", a.Len(), b.Len())
	}
	for id := NodeID(0); int(id) < a.Len(); id++ {
		if a.Parent(id) != b.Parent(id) || a.W(id) != b.W(id) || a.C(id) != b.C(id) || a.Depth(id) != b.Depth(id) {
			t.Fatalf("node %d differs: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", id,
				a.Parent(id), a.W(id), a.C(id), a.Depth(id),
				b.Parent(id), b.W(id), b.C(id), b.Depth(id))
		}
	}
}
