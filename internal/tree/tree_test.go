package tree

import (
	"math/rand/v2"
	"testing"
)

// buildSample returns the tree
//
//	0 (w=5)
//	├── 1 (w=3, c=1)
//	│   ├── 3 (w=2, c=2)
//	│   └── 4 (w=4, c=6)
//	└── 2 (w=6, c=5)
func buildSample() *Tree {
	t := New(5)
	a := t.AddChild(t.Root(), 3, 1)
	t.AddChild(t.Root(), 6, 5)
	t.AddChild(a, 2, 2)
	t.AddChild(a, 4, 6)
	return t
}

func TestBuildAndAccessors(t *testing.T) {
	tr := buildSample()
	if tr.Len() != 5 {
		t.Fatalf("Len = %d, want 5", tr.Len())
	}
	if tr.Root() != 0 {
		t.Fatalf("Root = %d, want 0", tr.Root())
	}
	if got := tr.Parent(0); got != None {
		t.Fatalf("Parent(root) = %d, want None", got)
	}
	if got := tr.Parent(3); got != 1 {
		t.Fatalf("Parent(3) = %d, want 1", got)
	}
	if got := tr.W(4); got != 4 {
		t.Fatalf("W(4) = %d, want 4", got)
	}
	if got := tr.C(4); got != 6 {
		t.Fatalf("C(4) = %d, want 6", got)
	}
	if got := tr.C(0); got != 0 {
		t.Fatalf("C(root) = %d, want 0", got)
	}
	if kids := tr.Children(1); len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
		t.Fatalf("Children(1) = %v", kids)
	}
	if !tr.IsLeaf(2) || tr.IsLeaf(1) {
		t.Fatalf("IsLeaf wrong")
	}
	if tr.Depth(0) != 0 || tr.Depth(1) != 1 || tr.Depth(4) != 2 {
		t.Fatalf("Depth wrong: %d %d %d", tr.Depth(0), tr.Depth(1), tr.Depth(4))
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("MaxDepth = %d, want 2", tr.MaxDepth())
	}
	if !tr.Valid(4) || tr.Valid(5) || tr.Valid(-1) {
		t.Fatalf("Valid wrong")
	}
}

func TestConstructionPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"zero root w", func() { New(0) }},
		{"neg child w", func() { buildSample().AddChild(0, -1, 1) }},
		{"zero child c", func() { buildSample().AddChild(0, 1, 0) }},
		{"bad parent", func() { buildSample().AddChild(99, 1, 1) }},
		{"setW zero", func() { buildSample().SetW(1, 0) }},
		{"setC root", func() { buildSample().SetC(0, 1) }},
		{"setC zero", func() { buildSample().SetC(1, 0) }},
		{"detach root", func() { buildSample().Detach(0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestSetWeights(t *testing.T) {
	tr := buildSample()
	tr.SetW(1, 9)
	tr.SetC(1, 7)
	if tr.W(1) != 9 || tr.C(1) != 7 {
		t.Fatalf("SetW/SetC not applied: w=%d c=%d", tr.W(1), tr.C(1))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after set: %v", err)
	}
}

func TestWalkPreorder(t *testing.T) {
	tr := buildSample()
	var order []NodeID
	tr.Walk(func(id NodeID) bool {
		order = append(order, id)
		return true
	})
	want := []NodeID{0, 1, 3, 4, 2}
	if len(order) != len(want) {
		t.Fatalf("Walk visited %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Walk visited %v, want %v", order, want)
		}
	}
	// Early stop.
	n := 0
	tr.Walk(func(NodeID) bool { n++; return n < 2 })
	if n != 2 {
		t.Fatalf("Walk early stop visited %d, want 2", n)
	}
}

func TestWalkPostorder(t *testing.T) {
	tr := buildSample()
	pos := map[NodeID]int{}
	i := 0
	tr.WalkPost(func(id NodeID) {
		pos[id] = i
		i++
	})
	if i != tr.Len() {
		t.Fatalf("WalkPost visited %d nodes, want %d", i, tr.Len())
	}
	tr.Walk(func(id NodeID) bool {
		for _, k := range tr.Children(id) {
			if pos[k] >= pos[id] {
				t.Fatalf("WalkPost visited child %d after parent %d", k, id)
			}
		}
		return true
	})
}

func TestSubtree(t *testing.T) {
	tr := buildSample()
	got := tr.Subtree(1)
	want := []NodeID{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Subtree(1) = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Subtree(1) = %v, want %v", got, want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	tr := buildSample()
	cp := tr.Clone()
	cp.SetW(1, 100)
	cp.AddChild(2, 8, 8)
	if tr.W(1) != 3 {
		t.Fatalf("clone mutation leaked into original W")
	}
	if tr.Len() != 5 || cp.Len() != 6 {
		t.Fatalf("clone sizes wrong: %d %d", tr.Len(), cp.Len())
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("original invalid after clone mutation: %v", err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("clone invalid: %v", err)
	}
}

func TestAttach(t *testing.T) {
	tr := buildSample()
	sub := New(7)
	sub.AddChild(sub.Root(), 8, 9)
	id := tr.Attach(2, sub, 4)
	if tr.Len() != 7 {
		t.Fatalf("Len after attach = %d, want 7", tr.Len())
	}
	if tr.Parent(id) != 2 || tr.C(id) != 4 || tr.W(id) != 7 {
		t.Fatalf("attached root wrong: parent=%d c=%d w=%d", tr.Parent(id), tr.C(id), tr.W(id))
	}
	kid := tr.Children(id)[0]
	if tr.W(kid) != 8 || tr.C(kid) != 9 || tr.Depth(kid) != 3 {
		t.Fatalf("attached child wrong: w=%d c=%d depth=%d", tr.W(kid), tr.C(kid), tr.Depth(kid))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate after attach: %v", err)
	}
	// The source tree must be untouched (deep copy semantics).
	if sub.Len() != 2 {
		t.Fatalf("attach mutated source tree")
	}
}

func TestDetach(t *testing.T) {
	tr := buildSample()
	det, rem, detIDs, remIDs := tr.Detach(1)
	if tr.Len() != 5 {
		t.Fatalf("Detach mutated the original tree")
	}
	if det.Len() != 3 {
		t.Fatalf("detached Len = %d, want 3", det.Len())
	}
	if rem.Len() != 2 {
		t.Fatalf("remainder Len = %d, want 2", rem.Len())
	}
	if err := det.Validate(); err != nil {
		t.Fatalf("detached invalid: %v", err)
	}
	if err := rem.Validate(); err != nil {
		t.Fatalf("remainder invalid: %v", err)
	}
	if det.W(detIDs[1]) != 3 || det.W(detIDs[3]) != 2 || det.W(detIDs[4]) != 4 {
		t.Fatalf("detached weights wrong")
	}
	if det.C(detIDs[4]) != 6 {
		t.Fatalf("detached edge weight wrong")
	}
	if rem.W(remIDs[0]) != 5 || rem.W(remIDs[2]) != 6 {
		t.Fatalf("remainder weights wrong")
	}
	if detIDs[0] != None || detIDs[2] != None {
		t.Fatalf("detachedIDs should be None for nodes outside the subtree")
	}
	if remIDs[1] != None || remIDs[3] != None || remIDs[4] != None {
		t.Fatalf("remainderIDs should be None for nodes inside the subtree")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	tr := buildSample()
	if err := tr.Validate(); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	// Corrupt internals directly.
	bad := tr.Clone()
	bad.nodes[3].parent = 2 // child list of 2 does not contain 3
	if err := bad.Validate(); err == nil {
		t.Fatalf("Validate accepted inconsistent parent link")
	}
	bad2 := tr.Clone()
	bad2.nodes[2].w = 0
	if err := bad2.Validate(); err == nil {
		t.Fatalf("Validate accepted zero weight")
	}
	bad3 := tr.Clone()
	bad3.nodes[4].depth = 9
	if err := bad3.Validate(); err == nil {
		t.Fatalf("Validate accepted wrong depth")
	}
	bad4 := &Tree{}
	if err := bad4.Validate(); err == nil {
		t.Fatalf("Validate accepted empty tree")
	}
}

// randomTree builds a random valid tree for property tests.
func randomTree(rng *rand.Rand, n int) *Tree {
	tr := New(rng.Int64N(100) + 1)
	for i := 1; i < n; i++ {
		parent := NodeID(rng.IntN(tr.Len()))
		tr.AddChild(parent, rng.Int64N(100)+1, rng.Int64N(100)+1)
	}
	return tr
}

func TestPropertyRandomTreesValidate(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 100; i++ {
		tr := randomTree(rng, rng.IntN(200)+1)
		if err := tr.Validate(); err != nil {
			t.Fatalf("random tree invalid: %v", err)
		}
		// Depth of every child is parent depth + 1; walk covers all nodes.
		visited := 0
		tr.Walk(func(id NodeID) bool {
			visited++
			if p := tr.Parent(id); p != None && tr.Depth(id) != tr.Depth(p)+1 {
				t.Fatalf("depth invariant violated at %d", id)
			}
			return true
		})
		if visited != tr.Len() {
			t.Fatalf("walk visited %d of %d", visited, tr.Len())
		}
	}
}

func TestPropertyDetachAttachRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	for i := 0; i < 50; i++ {
		tr := randomTree(rng, rng.IntN(50)+2)
		victim := NodeID(rng.IntN(tr.Len()-1) + 1)
		c := tr.C(victim)
		parent := tr.Parent(victim)
		det, rem, _, remIDs := tr.Detach(victim)
		// Re-attach the detached subtree where it was: same node count and
		// weight multiset as the original.
		rem.Attach(remIDs[parent], det, c)
		if rem.Len() != tr.Len() {
			t.Fatalf("round trip size %d, want %d", rem.Len(), tr.Len())
		}
		sumW := func(tt *Tree) int64 {
			var s int64
			tt.Walk(func(id NodeID) bool { s += tt.W(id); return true })
			return s
		}
		if sumW(rem) != sumW(tr) {
			t.Fatalf("round trip weight sum %d, want %d", sumW(rem), sumW(tr))
		}
		if err := rem.Validate(); err != nil {
			t.Fatalf("round trip invalid: %v", err)
		}
	}
}
