package trace

import (
	"strings"
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/tree"
)

// runTraced executes a small two-child platform with the recorder
// attached.
func runTraced(t *testing.T, p protocol.Protocol, tasks int64) (*Recorder, *engine.Result) {
	t.Helper()
	tr := tree.New(3)
	tr.AddChild(tr.Root(), 2, 1)   // fast link
	tr.AddChild(tr.Root(), 10, 10) // slow link
	rec := &Recorder{}
	res, err := engine.Run(engine.Config{Tree: tr, Protocol: p, Tasks: tasks, Tracer: rec})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rec, res
}

func TestRecorderCapturesConsistentStory(t *testing.T) {
	rec, res := runTraced(t, protocol.Interruptible(1), 40)
	counts := rec.Counts()
	if counts[ComputeDone] != 40 {
		t.Fatalf("ComputeDone events = %d, want 40", counts[ComputeDone])
	}
	if counts[ComputeStart] != counts[ComputeDone] {
		t.Fatalf("starts %d != dones %d", counts[ComputeStart], counts[ComputeDone])
	}
	// Every interruption must be followed by exactly one resume (all
	// shelved transfers eventually complete).
	if counts[SendInterrupt] != counts[SendResume] {
		t.Fatalf("interrupts %d != resumes %d", counts[SendInterrupt], counts[SendResume])
	}
	if counts[SendInterrupt] == 0 {
		t.Fatalf("expected interruptions on this platform")
	}
	// Sends started (fresh) must equal sends completed.
	if counts[SendStart] != counts[SendDone] {
		t.Fatalf("send starts %d != dones %d", counts[SendStart], counts[SendDone])
	}
	if int64(counts[SendDone]) != res.Nodes[0].Forwarded {
		t.Fatalf("send dones %d != forwarded %d", counts[SendDone], res.Nodes[0].Forwarded)
	}
	// Events are time-ordered.
	evs := rec.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].At < evs[i-1].At {
			t.Fatalf("events out of order at %d", i)
		}
	}
}

func TestRecorderGrowthEvents(t *testing.T) {
	rec, res := runTraced(t, protocol.NonInterruptible(1), 40)
	grows := rec.Filter(OfKind(Grow))
	var grown int64
	for i := range res.Nodes {
		grown += res.Nodes[i].Buffers - 1
	}
	if int64(len(grows)) != grown {
		t.Fatalf("grow events %d != capacity growth %d", len(grows), grown)
	}
	// Capacity values are monotone per node.
	last := map[tree.NodeID]int64{}
	for _, e := range grows {
		if e.Value <= last[e.Node] {
			t.Fatalf("capacity not monotone at %v", e)
		}
		last[e.Node] = e.Value
	}
}

func TestFilterPredicates(t *testing.T) {
	rec, _ := runTraced(t, protocol.Interruptible(2), 30)
	node1 := rec.Filter(ByNode(1))
	for _, e := range node1 {
		if e.Node != 1 {
			t.Fatalf("ByNode leaked %v", e)
		}
	}
	window := rec.Filter(Between(10, 20))
	for _, e := range window {
		if e.At < 10 || e.At > 20 {
			t.Fatalf("Between leaked %v", e)
		}
	}
	both := rec.Filter(OfKind(ComputeDone), Between(0, 1<<40))
	if len(both) != 30 {
		t.Fatalf("combined filter = %d, want 30", len(both))
	}
}

func TestMaxCapsRecording(t *testing.T) {
	tr := tree.New(2)
	rec := &Recorder{Max: 5}
	if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 100, Tracer: rec}); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if rec.Len() != 5 {
		t.Fatalf("Len = %d, want 5", rec.Len())
	}
}

func TestEventString(t *testing.T) {
	e := Event{At: 7, Kind: SendStart, Node: 1, Peer: 2, Value: 9}
	if got := e.String(); !strings.Contains(got, "send-start") || !strings.Contains(got, "1->2") {
		t.Fatalf("String = %q", got)
	}
	e2 := Event{At: 3, Kind: ComputeDone, Node: 4, Peer: -1, Value: 10}
	if got := e2.String(); !strings.Contains(got, "compute-done") || strings.Contains(got, "->") {
		t.Fatalf("String = %q", got)
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Fatalf("unknown kind string")
	}
}

func TestWriteLog(t *testing.T) {
	rec, _ := runTraced(t, protocol.Interruptible(1), 5)
	var b strings.Builder
	if err := rec.WriteLog(&b); err != nil {
		t.Fatalf("WriteLog: %v", err)
	}
	if got := strings.Count(b.String(), "\n"); got != rec.Len() {
		t.Fatalf("log lines %d != events %d", got, rec.Len())
	}
}

func TestTimeline(t *testing.T) {
	rec, res := runTraced(t, protocol.Interruptible(1), 20)
	var b strings.Builder
	if err := rec.Timeline(&b, 0, res.Makespan, 1, 0); err != nil {
		t.Fatalf("Timeline: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "#") {
		t.Fatalf("no compute marks:\n%s", out)
	}
	if !strings.Contains(out, ">") {
		t.Fatalf("no send marks:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 nodes
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// The root (node 0) works essentially continuously (a send mark
	// overwrites a simultaneous compute mark in its bucket): its row
	// should be mostly busy.
	row0 := lines[1]
	row0 = row0[strings.Index(row0, "|")+1 : strings.LastIndex(row0, "|")]
	busy := strings.Count(row0, "#") + strings.Count(row0, ">")
	if busy < len(row0)/2 {
		t.Fatalf("root row suspiciously idle:\n%s", out)
	}
}

func TestTimelineErrors(t *testing.T) {
	rec := &Recorder{}
	var b strings.Builder
	if err := rec.Timeline(&b, 0, 10, 0, 0); err == nil {
		t.Fatalf("zero bucket accepted")
	}
	if err := rec.Timeline(&b, 10, 10, 1, 0); err == nil {
		t.Fatalf("empty interval accepted")
	}
	if err := rec.Timeline(&b, 0, 1<<20, 1, 0); err == nil {
		t.Fatalf("oversized timeline accepted")
	}
	b.Reset()
	if err := rec.Timeline(&b, 0, 10, 1, 0); err != nil {
		t.Fatalf("empty recorder: %v", err)
	}
	if !strings.Contains(b.String(), "no events") {
		t.Fatalf("empty recorder output: %q", b.String())
	}
}

// TestInterruptionVisibleInTrace pins the semantics of preemption at the
// event level: an interrupt of a send to the slow child is followed by a
// fresh send to the fast child before the slow transfer resumes.
func TestInterruptionVisibleInTrace(t *testing.T) {
	rec, _ := runTraced(t, protocol.Interruptible(1), 40)
	evs := rec.Events()
	for i, e := range evs {
		if e.Kind != SendInterrupt {
			continue
		}
		if e.Peer != 2 {
			t.Fatalf("interrupted send to child %d, want the slow child 2", e.Peer)
		}
		// The very next transfer action from the root must target the
		// fast child.
		for j := i + 1; j < len(evs); j++ {
			if evs[j].Node == 0 && (evs[j].Kind == SendStart || evs[j].Kind == SendResume) {
				if evs[j].Peer != 1 {
					t.Fatalf("after interrupt, sent to %d, want fast child 1", evs[j].Peer)
				}
				break
			}
		}
		return // checking the first interruption suffices
	}
	t.Fatalf("no interruption found")
}
