package trace

// Protocol-conformance tests: replay a recorded event stream and verify
// the paper's scheduling rules at every decision point, independently of
// the engine's internal implementation.

import (
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/tree"
)

// TestBandwidthCentricServiceOrder replays IC FB=3 runs on random
// platforms through the exported Replay with every check enabled: at every
// fresh send start the chosen child had the smallest communication time
// among serviceable children (pending request, no transfer already in
// flight or shelved) — the paper's bandwidth-centric rule, checked against
// state reconstructed purely from the event stream — and the run drains.
func TestBandwidthCentricServiceOrder(t *testing.T) {
	params := randtree.Params{MinNodes: 5, MaxNodes: 50, MinComm: 1, MaxComm: 40, Comp: 600}
	const tasks = 600
	for ti := 0; ti < 6; ti++ {
		tr := randtree.TreeAt(params, 555, ti)
		rec := &Recorder{}
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: tasks, Tracer: rec}); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		rp := &Replay{Tree: tr, Tasks: tasks, InitialPending: 3, CheckPriority: true, CheckDrain: true}
		if err := rp.Run(rec.Events()); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		if rp.Fresh == 0 {
			t.Fatalf("tree %d: no sends at all", ti)
		}
	}
}

// TestReplayRejectsViolations pins that the replay actually fails on
// non-conforming streams, so a green conformance run means something.
func TestReplayRejectsViolations(t *testing.T) {
	tr := tree.New(1)
	slow := tr.AddChild(tr.Root(), 1, 10)
	fast := tr.AddChild(tr.Root(), 1, 1)
	root := tr.Root()
	cases := []struct {
		name   string
		events []Event
	}{
		{"send without request", []Event{
			{Kind: SendStart, Node: root, Peer: fast},
		}},
		{"send over faster sibling", []Event{
			{Kind: Request, Node: slow}, {Kind: Request, Node: fast},
			{Kind: SendStart, Node: root, Peer: slow},
		}},
		{"double send in flight", []Event{
			{Kind: Request, Node: fast}, {Kind: Request, Node: fast},
			{Kind: SendStart, Node: root, Peer: fast},
			{Kind: SendStart, Node: root, Peer: fast},
		}},
		{"resume with nothing in flight", []Event{
			{Kind: SendResume, Node: root, Peer: fast},
		}},
		{"compute without a task", []Event{
			{Kind: ComputeStart, Node: fast},
		}},
		{"undrained pool", []Event{}},
	}
	for _, tc := range cases {
		rp := &Replay{Tree: tr, Tasks: 2, CheckPriority: true, CheckDrain: true}
		if err := rp.Run(tc.events); err == nil {
			t.Errorf("%s: replay accepted a violating stream", tc.name)
		}
	}
	// And the recovery path: a requeue returns the task, re-legalizing a
	// second dispatch of it.
	rp := &Replay{Tree: tr, Tasks: 1}
	ok := []Event{
		{Kind: Request, Node: fast}, {Kind: Request, Node: fast},
		{Kind: SendStart, Node: root, Peer: fast},
		{Kind: Requeue, Node: root, Peer: fast},
		{Kind: SendStart, Node: root, Peer: fast},
	}
	if err := rp.Run(ok); err != nil {
		t.Errorf("requeue replay: %v", err)
	}
}

// TestGrowthEventsOnlyUnderGrowthProtocol: fixed-buffer protocols must
// never emit Grow events; the growth protocol's Grow events must raise
// capacity monotonically from the initial pool.
func TestGrowthEventsOnlyUnderGrowthProtocol(t *testing.T) {
	tr := randtree.TreeAt(randtree.Params{MinNodes: 10, MaxNodes: 30, MinComm: 1, MaxComm: 30, Comp: 900}, 3, 0)
	for _, p := range []protocol.Protocol{protocol.Interruptible(3), protocol.NonInterruptibleFixed(2)} {
		rec := &Recorder{}
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: p, Tasks: 300, Tracer: rec}); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got := rec.Counts()[Grow]; got != 0 {
			t.Fatalf("%v emitted %d grow events", p, got)
		}
	}
	rec := &Recorder{}
	if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 300, Tracer: rec}); err != nil {
		t.Fatalf("non-IC: %v", err)
	}
	last := map[tree.NodeID]int64{}
	for _, e := range rec.Filter(OfKind(Grow)) {
		if e.Value != last[e.Node]+1 && last[e.Node] != 0 {
			t.Fatalf("node %d capacity jumped %d -> %d", e.Node, last[e.Node], e.Value)
		}
		last[e.Node] = e.Value
	}
}
