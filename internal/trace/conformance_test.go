package trace

// Protocol-conformance tests: replay a recorded event stream and verify
// the paper's scheduling rules at every decision point, independently of
// the engine's internal implementation.

import (
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/tree"
)

// replayState reconstructs per-node scheduling state from a trace.
type replayState struct {
	t *tree.Tree
	// pending[child] counts outstanding requests not yet matched by a
	// fresh send start.
	pending map[tree.NodeID]int
	// inflight[child] is true while a transfer to child is in flight or
	// shelved (fresh start .. done, minus nothing: interrupts keep it).
	inflight map[tree.NodeID]bool
	// buffered[node] counts tasks delivered but not yet consumed; the
	// root is tracked via remaining pool.
	buffered map[tree.NodeID]int
	pool     int64
}

func newReplay(t *tree.Tree, tasks int64) *replayState {
	return &replayState{
		t:        t,
		pending:  map[tree.NodeID]int{},
		inflight: map[tree.NodeID]bool{},
		buffered: map[tree.NodeID]int{},
		pool:     tasks,
	}
}

func (r *replayState) hasTask(n tree.NodeID) bool {
	if n == r.t.Root() {
		return r.pool > 0
	}
	return r.buffered[n] > 0
}

func (r *replayState) take(n tree.NodeID) {
	if n == r.t.Root() {
		r.pool--
		return
	}
	r.buffered[n]--
}

// TestBandwidthCentricServiceOrder replays IC FB=3 runs on random
// platforms and asserts, at every fresh send start, that the chosen child
// had the smallest communication time among serviceable children (pending
// request, no transfer already in flight or shelved) — the paper's
// bandwidth-centric rule, checked against state reconstructed purely from
// the event stream.
func TestBandwidthCentricServiceOrder(t *testing.T) {
	params := randtree.Params{MinNodes: 5, MaxNodes: 50, MinComm: 1, MaxComm: 40, Comp: 600}
	const tasks = 600
	for ti := 0; ti < 6; ti++ {
		tr := randtree.TreeAt(params, 555, ti)
		rec := &Recorder{}
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: tasks, Tracer: rec}); err != nil {
			t.Fatalf("tree %d: %v", ti, err)
		}
		rs := newReplay(tr, tasks)
		// Initial requests: FB per node.
		tr.Walk(func(id tree.NodeID) bool {
			if id != tr.Root() {
				rs.pending[id] = 3
			}
			return true
		})
		sawFresh := 0
		for _, e := range rec.Events() {
			switch e.Kind {
			case Request:
				rs.pending[e.Node]++
			case SendStart:
				// Conformance check: the chosen child must be serviceable
				// and have minimal c among serviceable siblings.
				parent := e.Node
				chosen := e.Peer
				if !rs.hasTask(parent) {
					t.Fatalf("tree %d: fresh send from %d without a task", ti, parent)
				}
				if rs.pending[chosen] < 1 || rs.inflight[chosen] {
					t.Fatalf("tree %d: send to unserviceable child %d (pending=%d inflight=%v)",
						ti, chosen, rs.pending[chosen], rs.inflight[chosen])
				}
				for _, sib := range rs.t.Children(parent) {
					if sib == chosen || rs.pending[sib] < 1 || rs.inflight[sib] {
						continue
					}
					if rs.t.C(sib) < rs.t.C(chosen) {
						t.Fatalf("tree %d: served child %d (c=%d) over faster sibling %d (c=%d)",
							ti, chosen, rs.t.C(chosen), sib, rs.t.C(sib))
					}
				}
				rs.pending[chosen]--
				rs.inflight[chosen] = true
				rs.take(parent)
				sawFresh++
			case SendResume:
				if !rs.inflight[e.Peer] {
					t.Fatalf("tree %d: resume without an in-flight transfer to %d", ti, e.Peer)
				}
			case SendInterrupt:
				if !rs.inflight[e.Peer] {
					t.Fatalf("tree %d: interrupt without an in-flight transfer to %d", ti, e.Peer)
				}
			case SendDone:
				if !rs.inflight[e.Peer] {
					t.Fatalf("tree %d: delivery without an in-flight transfer to %d", ti, e.Peer)
				}
				rs.inflight[e.Peer] = false
				rs.buffered[e.Peer]++
			case ComputeStart:
				if !rs.hasTask(e.Node) {
					t.Fatalf("tree %d: node %d computing without a task", ti, e.Node)
				}
				rs.take(e.Node)
			}
		}
		if sawFresh == 0 {
			t.Fatalf("tree %d: no sends at all", ti)
		}
		// All tasks accounted for: pool drained, nothing left buffered or
		// in flight.
		if rs.pool != 0 {
			t.Fatalf("tree %d: %d tasks left in the pool", ti, rs.pool)
		}
		for id, n := range rs.buffered {
			if n != 0 {
				t.Fatalf("tree %d: node %d ends with %d buffered tasks", ti, id, n)
			}
		}
		for id, f := range rs.inflight {
			if f {
				t.Fatalf("tree %d: transfer to %d never completed", ti, id)
			}
		}
	}
}

// TestGrowthEventsOnlyUnderGrowthProtocol: fixed-buffer protocols must
// never emit Grow events; the growth protocol's Grow events must raise
// capacity monotonically from the initial pool.
func TestGrowthEventsOnlyUnderGrowthProtocol(t *testing.T) {
	tr := randtree.TreeAt(randtree.Params{MinNodes: 10, MaxNodes: 30, MinComm: 1, MaxComm: 30, Comp: 900}, 3, 0)
	for _, p := range []protocol.Protocol{protocol.Interruptible(3), protocol.NonInterruptibleFixed(2)} {
		rec := &Recorder{}
		if _, err := engine.Run(engine.Config{Tree: tr, Protocol: p, Tasks: 300, Tracer: rec}); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		if got := rec.Counts()[Grow]; got != 0 {
			t.Fatalf("%v emitted %d grow events", p, got)
		}
	}
	rec := &Recorder{}
	if _, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 300, Tracer: rec}); err != nil {
		t.Fatalf("non-IC: %v", err)
	}
	last := map[tree.NodeID]int64{}
	for _, e := range rec.Filter(OfKind(Grow)) {
		if e.Value != last[e.Node]+1 && last[e.Node] != 0 {
			t.Fatalf("node %d capacity jumped %d -> %d", e.Node, last[e.Node], e.Value)
		}
		last[e.Node] = e.Value
	}
}
