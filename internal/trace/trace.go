// Package trace records and renders engine execution traces.
//
// A Recorder implements engine.Tracer and captures every scheduling action
// — compute start/finish, send start/interrupt/resume/finish, requests,
// buffer growth — as a flat, time-ordered event list. The list can be
// filtered, asserted against in tests (the engine test suite validates
// protocol behaviour at the event level), and rendered as a per-node text
// timeline for debugging schedules by eye.
package trace

import (
	"fmt"
	"io"
	"strings"

	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

// Kind discriminates trace events.
type Kind int

const (
	ComputeStart Kind = iota
	ComputeDone
	SendStart
	SendResume
	SendInterrupt
	SendDone
	Request
	Grow
	// Requeue is a task reclaimed from a failed subtree back into the
	// acting node's pool (the live runtime's recovery path; the
	// deterministic engine never emits it). Node is the reclaiming parent,
	// Peer the subtree the task was reclaimed from.
	Requeue
)

var kindNames = [...]string{
	ComputeStart:  "compute-start",
	ComputeDone:   "compute-done",
	SendStart:     "send-start",
	SendResume:    "send-resume",
	SendInterrupt: "send-interrupt",
	SendDone:      "send-done",
	Request:       "request",
	Grow:          "grow",
	Requeue:       "requeue",
}

// String returns the event kind's name.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one recorded action.
type Event struct {
	At   sim.Time
	Kind Kind
	// Node is the acting node (the sender for transfer events).
	Node tree.NodeID
	// Peer is the counterpart for transfer events (the child), or -1.
	Peer tree.NodeID
	// Value carries kind-specific data: the scheduled finish time for
	// ComputeStart/SendStart/SendResume, the remaining time for
	// SendInterrupt, the completed count for ComputeDone, and the new
	// capacity for Grow.
	Value int64
}

// String renders the event compactly.
func (e Event) String() string {
	if e.Peer >= 0 {
		return fmt.Sprintf("t=%d %s %d->%d (%d)", e.At, e.Kind, e.Node, e.Peer, e.Value)
	}
	return fmt.Sprintf("t=%d %s %d (%d)", e.At, e.Kind, e.Node, e.Value)
}

// Recorder captures engine actions. It implements engine.Tracer. The zero
// value is ready to use. Recorders are not safe for concurrent use; the
// engine is single-goroutine.
type Recorder struct {
	events []Event
	// Max caps the number of retained events when positive; recording
	// stops (silently) at the cap so a stray infinite run cannot exhaust
	// memory.
	Max int
}

func (r *Recorder) add(e Event) {
	if r.Max > 0 && len(r.events) >= r.Max {
		return
	}
	r.events = append(r.events, e)
}

// ComputeStart implements engine.Tracer.
func (r *Recorder) ComputeStart(now sim.Time, node tree.NodeID, until sim.Time) {
	r.add(Event{At: now, Kind: ComputeStart, Node: node, Peer: -1, Value: int64(until)})
}

// ComputeDone implements engine.Tracer.
func (r *Recorder) ComputeDone(now sim.Time, node tree.NodeID, completed int64) {
	r.add(Event{At: now, Kind: ComputeDone, Node: node, Peer: -1, Value: completed})
}

// SendStart implements engine.Tracer.
func (r *Recorder) SendStart(now sim.Time, parent, child tree.NodeID, until sim.Time, fromShelf bool) {
	k := SendStart
	if fromShelf {
		k = SendResume
	}
	r.add(Event{At: now, Kind: k, Node: parent, Peer: child, Value: int64(until)})
}

// SendInterrupted implements engine.Tracer.
func (r *Recorder) SendInterrupted(now sim.Time, parent, child tree.NodeID, remaining sim.Time) {
	r.add(Event{At: now, Kind: SendInterrupt, Node: parent, Peer: child, Value: int64(remaining)})
}

// SendDone implements engine.Tracer.
func (r *Recorder) SendDone(now sim.Time, parent, child tree.NodeID) {
	r.add(Event{At: now, Kind: SendDone, Node: parent, Peer: child})
}

// Requested implements engine.Tracer.
func (r *Recorder) Requested(now sim.Time, child tree.NodeID) {
	r.add(Event{At: now, Kind: Request, Node: child, Peer: -1})
}

// Grew implements engine.Tracer.
func (r *Recorder) Grew(now sim.Time, node tree.NodeID, capacity int64) {
	r.add(Event{At: now, Kind: Grow, Node: node, Peer: -1, Value: capacity})
}

// Events returns the recorded events in order. The slice is owned by the
// recorder.
func (r *Recorder) Events() []Event { return r.events }

// Len returns the number of recorded events.
func (r *Recorder) Len() int { return len(r.events) }

// Filter returns the events matching every given predicate.
func (r *Recorder) Filter(preds ...func(Event) bool) []Event {
	var out []Event
	for _, e := range r.events {
		keep := true
		for _, p := range preds {
			if !p(e) {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, e)
		}
	}
	return out
}

// OfKind returns a predicate matching one event kind.
func OfKind(k Kind) func(Event) bool {
	return func(e Event) bool { return e.Kind == k }
}

// ByNode returns a predicate matching the acting node.
func ByNode(n tree.NodeID) func(Event) bool {
	return func(e Event) bool { return e.Node == n }
}

// Between returns a predicate matching events in [from, to].
func Between(from, to sim.Time) func(Event) bool {
	return func(e Event) bool { return e.At >= from && e.At <= to }
}

// Counts returns how many events of each kind were recorded.
func (r *Recorder) Counts() map[Kind]int {
	out := make(map[Kind]int)
	for _, e := range r.events {
		out[e.Kind]++
	}
	return out
}

// WriteLog writes every event, one per line.
func (r *Recorder) WriteLog(w io.Writer) error {
	for _, e := range r.events {
		if _, err := fmt.Fprintln(w, e); err != nil {
			return err
		}
	}
	return nil
}

// Timeline renders a per-node text Gantt chart of the interval [from, to],
// one character per bucket of the given width in timesteps:
//
//	'#'  computing
//	'>'  sending
//	'.'  idle
//
// Nodes appear in ID order up to maxNodes rows. Interrupted transfers show
// as gaps in the sender's '>' run.
func (r *Recorder) Timeline(w io.Writer, from, to sim.Time, bucket sim.Time, maxNodes int) error {
	if bucket <= 0 {
		return fmt.Errorf("trace: bucket %d must be positive", bucket)
	}
	if to <= from {
		return fmt.Errorf("trace: empty interval [%d, %d]", from, to)
	}
	cols := int((to - from + bucket - 1) / bucket)
	if cols > 4096 {
		return fmt.Errorf("trace: %d columns; enlarge the bucket", cols)
	}

	// Determine the node set.
	maxNode := tree.NodeID(-1)
	for _, e := range r.events {
		if e.Node > maxNode {
			maxNode = e.Node
		}
		if e.Peer > maxNode {
			maxNode = e.Peer
		}
	}
	n := int(maxNode) + 1
	if maxNodes > 0 && n > maxNodes {
		n = maxNodes
	}
	if n == 0 {
		_, err := fmt.Fprintln(w, "(no events)")
		return err
	}

	rows := make([][]byte, n)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", cols))
	}
	mark := func(node tree.NodeID, a, b sim.Time, ch byte) {
		if int(node) >= n {
			return
		}
		if a < from {
			a = from
		}
		if b > to {
			b = to
		}
		for t := a; t < b; t += bucket {
			col := int((t - from) / bucket)
			if col >= 0 && col < cols {
				rows[node][col] = ch
			}
		}
	}

	// Open intervals per node for compute and send.
	computeSince := make(map[tree.NodeID]sim.Time)
	sendSince := make(map[tree.NodeID]sim.Time)
	for _, e := range r.events {
		switch e.Kind {
		case ComputeStart:
			computeSince[e.Node] = e.At
		case ComputeDone:
			if s, ok := computeSince[e.Node]; ok {
				mark(e.Node, s, e.At, '#')
				delete(computeSince, e.Node)
			}
		case SendStart, SendResume:
			sendSince[e.Node] = e.At
		case SendInterrupt, SendDone:
			if s, ok := sendSince[e.Node]; ok {
				mark(e.Node, s, e.At, '>')
				delete(sendSince, e.Node)
			}
		}
	}
	// Intervals still open at the horizon.
	for node, s := range computeSince {
		mark(node, s, to, '#')
	}
	for node, s := range sendSince {
		mark(node, s, to, '>')
	}

	fmt.Fprintf(w, "timeline %d..%d, %d timesteps per column ('#' compute, '>' send, '.' idle)\n", from, to, bucket)
	for i := 0; i < n; i++ {
		if _, err := fmt.Fprintf(w, "%4d |%s|\n", i, rows[i]); err != nil {
			return err
		}
	}
	return nil
}
