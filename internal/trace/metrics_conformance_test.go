package trace

// Trace-vs-metrics conformance: the engine maintains cheap inline
// counters (engine.Result.Metrics) and, independently, reports every
// action to an attached Tracer. For the same run the two layers must
// agree exactly — every action counter equals the count of the
// corresponding recorded event kind. A drift between them means one of
// the instrumentation paths lost an action.

import (
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
)

// assertConformance runs one config with a recorder attached and checks
// every counter against the trace.
func assertConformance(t *testing.T, cfg engine.Config, label string) {
	t.Helper()
	rec := &Recorder{}
	cfg.Tracer = rec
	res, err := engine.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	counts := rec.Counts()
	m := res.Metrics
	checks := []struct {
		name    string
		counter int64
		kind    Kind
	}{
		{"SendsStarted", m.SendsStarted, SendStart},
		{"SendsResumed", m.SendsResumed, SendResume},
		{"SendsInterrupted", m.SendsInterrupted, SendInterrupt},
		{"SendsCompleted", m.SendsCompleted, SendDone},
		{"ComputesStarted", m.ComputesStarted, ComputeStart},
		{"ComputesDone", m.ComputesDone, ComputeDone},
		{"Requests", m.Requests, Request},
		{"Grows", m.Grows, Grow},
	}
	for _, c := range checks {
		if c.counter != int64(counts[c.kind]) {
			t.Errorf("%s: Metrics.%s = %d, trace has %d %v events",
				label, c.name, c.counter, counts[c.kind], c.kind)
		}
	}
	// Cross-layer sanity beyond raw counts: every task computed exactly
	// once, and every started or resumed send either completed or was
	// interrupted (transfers in a finished run cannot dangle).
	if m.ComputesDone != cfg.Tasks {
		t.Errorf("%s: %d computes for %d tasks", label, m.ComputesDone, cfg.Tasks)
	}
	if m.SendsStarted+m.SendsResumed != m.SendsCompleted+m.SendsInterrupted {
		t.Errorf("%s: sends unbalanced: started %d + resumed %d != completed %d + interrupted %d",
			label, m.SendsStarted, m.SendsResumed, m.SendsCompleted, m.SendsInterrupted)
	}
	if m.Events != res.Steps {
		t.Errorf("%s: Metrics.Events = %d, Result.Steps = %d", label, m.Events, res.Steps)
	}
}

// TestMetricsMatchTrace checks conformance for a fixed seed population
// under both headline protocols: IC FB=3 (exercises interrupts and
// resumes) and non-IC (exercises growth).
func TestMetricsMatchTrace(t *testing.T) {
	params := randtree.Params{MinNodes: 8, MaxNodes: 60, MinComm: 1, MaxComm: 40, Comp: 800}
	for ti := 0; ti < 4; ti++ {
		tr := randtree.TreeAt(params, 777, ti)
		assertConformance(t, engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 500},
			"IC3")
		assertConformance(t, engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 500},
			"non-IC")
		assertConformance(t, engine.Config{Tree: tr, Protocol: protocol.NonInterruptible(1).WithDecay(50), Tasks: 500},
			"non-IC decay")
	}
}

// TestMetricsInterruptsExercised guards the fixture: at least one IC run
// above must actually interrupt and resume, otherwise the conformance
// test silently stops covering the preemption counters.
func TestMetricsInterruptsExercised(t *testing.T) {
	params := randtree.Params{MinNodes: 8, MaxNodes: 60, MinComm: 1, MaxComm: 40, Comp: 800}
	var interrupted, resumed int64
	for ti := 0; ti < 4; ti++ {
		tr := randtree.TreeAt(params, 777, ti)
		res, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 500})
		if err != nil {
			t.Fatal(err)
		}
		interrupted += res.Metrics.SendsInterrupted
		resumed += res.Metrics.SendsResumed
	}
	if interrupted == 0 || resumed == 0 {
		t.Fatalf("fixture exercises no preemption (interrupted=%d resumed=%d); grow the population",
			interrupted, resumed)
	}
}
