package trace

// Protocol-conformance replay: reconstruct per-node scheduling state from
// an event stream and verify the paper's rules at every decision point,
// independently of whoever produced the stream. The engine test suite
// replays simulator traces with every check enabled; cmd/bwtrace replays
// merged live flight-recorder timelines with the checks that assume
// ground-truth link costs or a fault-free run switched off.

import (
	"fmt"

	"bwcs/internal/tree"
)

// Replay verifies an event stream against the protocol's invariants.
type Replay struct {
	// Tree is the platform the events ran on.
	Tree *tree.Tree
	// Tasks is the root's initial pool size.
	Tasks int64
	// InitialPending seeds every non-root node's outstanding-request count
	// before replay — the protocol's FB startup requests, which the
	// simulator does not emit as events. Live replays leave it 0: a live
	// node's startup requests appear as Request events.
	InitialPending int
	// CheckPriority verifies the bandwidth-centric rule at every fresh
	// send: the chosen child must have minimal Tree.C among serviceable
	// siblings. It requires Tree.C to be ground truth, so it is a
	// simulator-only check; live runs schedule on measured estimates and
	// are verified against those separately.
	CheckPriority bool
	// CheckDrain requires the replay to end with the pool empty and no
	// task buffered or in flight — true for a completed fault-free run.
	CheckDrain bool

	// Fresh counts the fresh send starts the last Run saw; a replay of a
	// working run that moved any task at all has Fresh > 0.
	Fresh int
}

// replayState is the per-node scheduling state reconstructed from events.
type replayState struct {
	t *tree.Tree
	// pending[child] counts outstanding requests not yet matched by a
	// fresh send start.
	pending map[tree.NodeID]int
	// inflight[child] is true while a transfer to child is in flight or
	// shelved (fresh start .. done; interrupts keep it).
	inflight map[tree.NodeID]bool
	// buffered[node] counts tasks delivered but not yet consumed; the
	// root is tracked via the remaining pool.
	buffered map[tree.NodeID]int
	pool     int64
}

func (r *replayState) hasTask(n tree.NodeID) bool {
	if n == r.t.Root() {
		return r.pool > 0
	}
	return r.buffered[n] > 0
}

func (r *replayState) take(n tree.NodeID) {
	if n == r.t.Root() {
		r.pool--
		return
	}
	r.buffered[n]--
}

func (r *replayState) give(n tree.NodeID) {
	if n == r.t.Root() {
		r.pool++
		return
	}
	r.buffered[n]++
}

// Run replays the events in order and returns the first invariant
// violation, or nil if the stream conforms.
func (rp *Replay) Run(events []Event) error {
	rs := &replayState{
		t:        rp.Tree,
		pending:  map[tree.NodeID]int{},
		inflight: map[tree.NodeID]bool{},
		buffered: map[tree.NodeID]int{},
		pool:     rp.Tasks,
	}
	if rp.InitialPending > 0 {
		rp.Tree.Walk(func(id tree.NodeID) bool {
			if id != rp.Tree.Root() {
				rs.pending[id] = rp.InitialPending
			}
			return true
		})
	}
	rp.Fresh = 0
	for _, e := range events {
		switch e.Kind {
		case Request:
			// The sim emits one event per request (Value unset); live
			// requests are batched, with Value carrying the count.
			n := int(e.Value)
			if n <= 0 {
				n = 1
			}
			rs.pending[e.Node] += n
		case SendStart:
			// A fresh send must serve a serviceable child (pending request,
			// no transfer already in flight or shelved) from a held task.
			parent, chosen := e.Node, e.Peer
			if !rs.hasTask(parent) {
				return fmt.Errorf("trace: fresh send from %d without a task (%s)", parent, e)
			}
			if rs.pending[chosen] < 1 || rs.inflight[chosen] {
				return fmt.Errorf("trace: send to unserviceable child %d (pending=%d inflight=%v) (%s)",
					chosen, rs.pending[chosen], rs.inflight[chosen], e)
			}
			if rp.CheckPriority {
				for _, sib := range rs.t.Children(parent) {
					if sib == chosen || rs.pending[sib] < 1 || rs.inflight[sib] {
						continue
					}
					if rs.t.C(sib) < rs.t.C(chosen) {
						return fmt.Errorf("trace: served child %d (c=%d) over faster sibling %d (c=%d) (%s)",
							chosen, rs.t.C(chosen), sib, rs.t.C(sib), e)
					}
				}
			}
			rs.pending[chosen]--
			rs.inflight[chosen] = true
			rs.take(parent)
			rp.Fresh++
		case SendResume:
			if !rs.inflight[e.Peer] {
				return fmt.Errorf("trace: resume without an in-flight transfer to %d (%s)", e.Peer, e)
			}
		case SendInterrupt:
			if !rs.inflight[e.Peer] {
				return fmt.Errorf("trace: interrupt without an in-flight transfer to %d (%s)", e.Peer, e)
			}
		case SendDone:
			if !rs.inflight[e.Peer] {
				return fmt.Errorf("trace: delivery without an in-flight transfer to %d (%s)", e.Peer, e)
			}
			rs.inflight[e.Peer] = false
			rs.buffered[e.Peer]++
		case ComputeStart:
			if !rs.hasTask(e.Node) {
				return fmt.Errorf("trace: node %d computing without a task (%s)", e.Node, e)
			}
			rs.take(e.Node)
		case Requeue:
			// Recovery: the acting node reclaims one task from the Peer
			// subtree. Whether the task was mid-transfer (in flight) or
			// fully delivered (outstanding), it re-enters the node's pool;
			// the child side's copy, if any, produces a duplicate result
			// that dedupe suppresses, invisible at this layer.
			rs.inflight[e.Peer] = false
			rs.give(e.Node)
		}
	}
	if rp.CheckDrain {
		if rs.pool != 0 {
			return fmt.Errorf("trace: %d tasks left in the pool", rs.pool)
		}
		for id, n := range rs.buffered {
			if n != 0 {
				return fmt.Errorf("trace: node %d ends with %d buffered tasks", id, n)
			}
		}
		for id, f := range rs.inflight {
			if f {
				return fmt.Errorf("trace: transfer to %d never completed", id)
			}
		}
	}
	return nil
}
