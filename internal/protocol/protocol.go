// Package protocol defines the autonomous scheduling policies of the
// paper (Section 3) plus baseline child-ordering strategies used for
// ablation studies.
//
// A protocol is pure policy: which child to serve next, whether an
// in-flight communication may be interrupted, how many task buffers a node
// starts with, and whether and how the buffer pool may grow. The engine
// package interprets a Protocol while simulating; nothing here depends on
// simulation state.
//
// The two protocols evaluated in the paper are:
//
//   - NonInterruptible(ib): bandwidth-centric priorities, communications
//     run to completion once started, and nodes grow buffers on the three
//     events of Section 3.1 (all-buffers-empty with a child waiting; send
//     completion with a child waiting and empty buffers; compute
//     completion with empty buffers).
//   - Interruptible(fb): bandwidth-centric priorities with a fixed number
//     of buffers; a request from a higher-priority (faster-communicating)
//     child interrupts an in-flight send to a slower child, which is
//     shelved and later resumed from where it left off.
package protocol

import "fmt"

// Order selects how a node prioritizes children competing for its send
// port.
type Order int

const (
	// BandwidthCentric serves the child with the smallest communication
	// time first. This is the paper's policy: priorities depend only on
	// communication capability, never on compute speed.
	BandwidthCentric Order = iota
	// ComputeCentric serves the child with the smallest task compute time
	// first — a natural-looking but wrong heuristic, kept as a baseline.
	ComputeCentric
	// FCFS serves the child whose oldest outstanding request arrived
	// first.
	FCFS
	// RoundRobin cycles through requesting children.
	RoundRobin
	// Random serves a uniformly random requesting child.
	Random
)

var orderNames = map[Order]string{
	BandwidthCentric: "bandwidth-centric",
	ComputeCentric:   "compute-centric",
	FCFS:             "fcfs",
	RoundRobin:       "round-robin",
	Random:           "random",
}

// String returns the hyphenated lower-case name of the order.
func (o Order) String() string {
	if s, ok := orderNames[o]; ok {
		return s
	}
	return fmt.Sprintf("Order(%d)", int(o))
}

// HasPriority reports whether the order defines a static priority notion
// under which interruption is meaningful. RoundRobin and Random do not:
// there is no "higher-priority child" to preempt for.
func (o Order) HasPriority() bool {
	switch o {
	case BandwidthCentric, ComputeCentric, FCFS:
		return true
	default:
		return false
	}
}

// Protocol is a complete scheduling policy.
type Protocol struct {
	// Label names the protocol in reports, e.g. "IC FB=3".
	Label string
	// Interruptible enables preemption of in-flight sends by
	// higher-priority requests (Section 3.2).
	Interruptible bool
	// InitialBuffers is the number of task buffers each node starts with
	// (the paper's IB for growth protocols, FB for fixed ones).
	InitialBuffers int
	// Grow enables the three buffer-growth events of Section 3.1.
	Grow bool
	// MaxBuffers caps growth when positive; 0 means unbounded. The paper's
	// Table 1 measures usage rather than capping, but a cap lets bounded-
	// buffer deployments be simulated.
	MaxBuffers int
	// Order is the child-selection policy; the paper always uses
	// BandwidthCentric, the others are baselines.
	Order Order

	// Decay enables buffer decay, which the paper calls for alongside
	// growth ("a correct protocol must allow for buffer growth and,
	// optimally, buffer decay") but does not specify. The rule implemented
	// here: a node that completes DecayWindow consecutive tasks without
	// its buffers ever running empty releases one grown buffer — the next
	// buffer that frees is retired instead of generating a request.
	// Requires Grow.
	Decay bool
	// DecayWindow is the number of uninterrupted completions that trigger
	// one decay; 0 means DefaultDecayWindow.
	DecayWindow int
}

// DefaultDecayWindow is the decay observation window used when
// Protocol.DecayWindow is zero.
const DefaultDecayWindow = 16

// NonInterruptible returns the paper's non-IC protocol: bandwidth-centric,
// run-to-completion sends, ib initial buffers, growth enabled and
// unbounded.
func NonInterruptible(ib int) Protocol {
	return Protocol{
		Label:          fmt.Sprintf("non-IC IB=%d", ib),
		InitialBuffers: ib,
		Grow:           true,
	}
}

// NonInterruptibleFixed returns a non-IC protocol with a fixed number of
// buffers and no growth. The paper's adaptability experiment (Figure 7)
// runs "our non-interruptible protocol with two fixed buffers".
func NonInterruptibleFixed(fb int) Protocol {
	return Protocol{
		Label:          fmt.Sprintf("non-IC FB=%d", fb),
		InitialBuffers: fb,
	}
}

// Interruptible returns the paper's IC protocol with fb fixed buffers per
// node. The engine additionally provides the paper's one in-flight slot
// per child to hold partially-completed transmissions.
func Interruptible(fb int) Protocol {
	return Protocol{
		Label:          fmt.Sprintf("IC FB=%d", fb),
		Interruptible:  true,
		InitialBuffers: fb,
	}
}

// WithOrder returns p with the child-selection order replaced and the
// label annotated.
func (p Protocol) WithOrder(o Order) Protocol {
	p.Order = o
	if o != BandwidthCentric {
		p.Label = fmt.Sprintf("%s [%s]", p.Label, o)
	}
	return p
}

// WithCap returns p with buffer growth capped at max buffers per node.
func (p Protocol) WithCap(max int) Protocol {
	p.MaxBuffers = max
	p.Label = fmt.Sprintf("%s cap=%d", p.Label, max)
	return p
}

// WithDecay returns p with buffer decay enabled over the given observation
// window (0 = DefaultDecayWindow).
func (p Protocol) WithDecay(window int) Protocol {
	p.Decay = true
	p.DecayWindow = window
	p.Label = fmt.Sprintf("%s decay", p.Label)
	return p
}

// Validate reports whether the protocol is internally consistent.
func (p Protocol) Validate() error {
	if p.InitialBuffers < 1 {
		return fmt.Errorf("protocol: initial buffers %d < 1", p.InitialBuffers)
	}
	if p.MaxBuffers < 0 {
		return fmt.Errorf("protocol: negative buffer cap %d", p.MaxBuffers)
	}
	if p.MaxBuffers > 0 && p.MaxBuffers < p.InitialBuffers {
		return fmt.Errorf("protocol: buffer cap %d below initial buffers %d", p.MaxBuffers, p.InitialBuffers)
	}
	if p.MaxBuffers > 0 && !p.Grow {
		return fmt.Errorf("protocol: buffer cap set but growth disabled")
	}
	if p.Interruptible && p.Grow {
		return fmt.Errorf("protocol: the interruptible protocol uses fixed buffers, not growth")
	}
	if p.Decay && !p.Grow {
		return fmt.Errorf("protocol: decay requires growth")
	}
	if p.DecayWindow < 0 {
		return fmt.Errorf("protocol: negative decay window %d", p.DecayWindow)
	}
	if p.DecayWindow > 0 && !p.Decay {
		return fmt.Errorf("protocol: decay window set but decay disabled")
	}
	if p.Interruptible && !p.Order.HasPriority() {
		return fmt.Errorf("protocol: interruption requires a priority order, %v has none", p.Order)
	}
	if _, ok := orderNames[p.Order]; !ok {
		return fmt.Errorf("protocol: unknown order %d", int(p.Order))
	}
	return nil
}

// String returns the protocol's label.
func (p Protocol) String() string { return p.Label }
