package protocol

import (
	"strings"
	"testing"
)

func TestConstructors(t *testing.T) {
	p := NonInterruptible(1)
	if p.Interruptible || !p.Grow || p.InitialBuffers != 1 || p.Order != BandwidthCentric {
		t.Fatalf("NonInterruptible wrong: %+v", p)
	}
	if p.Label != "non-IC IB=1" {
		t.Fatalf("label = %q", p.Label)
	}

	p = NonInterruptibleFixed(2)
	if p.Interruptible || p.Grow || p.InitialBuffers != 2 {
		t.Fatalf("NonInterruptibleFixed wrong: %+v", p)
	}

	p = Interruptible(3)
	if !p.Interruptible || p.Grow || p.InitialBuffers != 3 {
		t.Fatalf("Interruptible wrong: %+v", p)
	}
	if p.Label != "IC FB=3" {
		t.Fatalf("label = %q", p.Label)
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		p    Protocol
		ok   bool
	}{
		{"non-IC", NonInterruptible(1), true},
		{"non-IC fixed", NonInterruptibleFixed(2), true},
		{"IC 3", Interruptible(3), true},
		{"IC capped via WithCap invalid", Interruptible(3).WithCap(5), false},
		{"non-IC capped", NonInterruptible(1).WithCap(10), true},
		{"cap below initial", NonInterruptible(5).WithCap(3), false},
		{"cap without growth", Protocol{InitialBuffers: 1, MaxBuffers: 5}, false},
		{"zero buffers", Protocol{InitialBuffers: 0}, false},
		{"negative cap", Protocol{InitialBuffers: 1, MaxBuffers: -1, Grow: true}, false},
		{"IC with round-robin", Interruptible(2).WithOrder(RoundRobin), false},
		{"IC with random", Interruptible(2).WithOrder(Random), false},
		{"IC with fcfs", Interruptible(2).WithOrder(FCFS), true},
		{"non-IC with random", NonInterruptible(1).WithOrder(Random), true},
		{"unknown order", Protocol{InitialBuffers: 1, Order: Order(99)}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.p.Validate()
			if tc.ok != (err == nil) {
				t.Fatalf("Validate(%+v) = %v, want ok=%v", tc.p, err, tc.ok)
			}
		})
	}
}

func TestOrderString(t *testing.T) {
	for o, want := range map[Order]string{
		BandwidthCentric: "bandwidth-centric",
		ComputeCentric:   "compute-centric",
		FCFS:             "fcfs",
		RoundRobin:       "round-robin",
		Random:           "random",
	} {
		if o.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(o), o.String(), want)
		}
	}
	if !strings.Contains(Order(42).String(), "42") {
		t.Fatalf("unknown order string: %q", Order(42).String())
	}
}

func TestHasPriority(t *testing.T) {
	for o, want := range map[Order]bool{
		BandwidthCentric: true,
		ComputeCentric:   true,
		FCFS:             true,
		RoundRobin:       false,
		Random:           false,
	} {
		if o.HasPriority() != want {
			t.Fatalf("%v.HasPriority() = %v, want %v", o, o.HasPriority(), want)
		}
	}
}

func TestWithOrderLabels(t *testing.T) {
	p := NonInterruptible(1).WithOrder(ComputeCentric)
	if !strings.Contains(p.Label, "compute-centric") {
		t.Fatalf("label not annotated: %q", p.Label)
	}
	// BandwidthCentric is the default and adds no annotation.
	q := NonInterruptible(1).WithOrder(BandwidthCentric)
	if q.Label != "non-IC IB=1" {
		t.Fatalf("default order annotated: %q", q.Label)
	}
}

func TestStringIsLabel(t *testing.T) {
	p := Interruptible(2)
	if p.String() != p.Label {
		t.Fatalf("String != Label")
	}
}

func TestWithDecay(t *testing.T) {
	p := NonInterruptible(1).WithDecay(8)
	if !p.Decay || p.DecayWindow != 8 {
		t.Fatalf("WithDecay wrong: %+v", p)
	}
	if !strings.Contains(p.Label, "decay") {
		t.Fatalf("label not annotated: %q", p.Label)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// Default window (0) is valid.
	if err := NonInterruptible(1).WithDecay(0).Validate(); err != nil {
		t.Fatalf("default window: %v", err)
	}
}

func TestValidateDecayRules(t *testing.T) {
	cases := []struct {
		name string
		p    Protocol
	}{
		{"decay without growth", Protocol{InitialBuffers: 1, Decay: true}},
		{"negative window", Protocol{InitialBuffers: 1, Grow: true, Decay: true, DecayWindow: -2}},
		{"window without decay", Protocol{InitialBuffers: 1, Grow: true, DecayWindow: 3}},
	}
	for _, tc := range cases {
		if tc.p.Validate() == nil {
			t.Fatalf("%s accepted", tc.name)
		}
	}
}
