package optimal

import (
	"math/rand/v2"
	"testing"

	"bwcs/internal/randtree"
	"bwcs/internal/rational"
	"bwcs/internal/tree"
)

func rat(num, den int64) rational.Rat { return rational.New(num, den) }

func TestSingleNode(t *testing.T) {
	tr := tree.New(5)
	a := Compute(tr)
	if !a.TreeWeight.Equal(rational.FromInt(5)) {
		t.Fatalf("TreeWeight = %v, want 5", a.TreeWeight)
	}
	if !a.Rate.Equal(rat(1, 5)) {
		t.Fatalf("Rate = %v, want 1/5", a.Rate)
	}
	if !a.NodeRate[0].Equal(rat(1, 5)) {
		t.Fatalf("NodeRate = %v, want 1/5", a.NodeRate[0])
	}
	if a.Class(tr, 0) != Saturated {
		t.Fatalf("Class = %v, want saturated", a.Class(tr, 0))
	}
}

func TestForkAllSaturated(t *testing.T) {
	// w0=10 with two children (w=2, c=1): c/w = 1/2 each, port exactly
	// saturates; rate = 1/10 + 1/2 + 1/2 = 11/10.
	tr := tree.New(10)
	tr.AddChild(0, 2, 1)
	tr.AddChild(0, 2, 1)
	a := Compute(tr)
	if !a.TreeWeight.Equal(rat(10, 11)) {
		t.Fatalf("TreeWeight = %v, want 10/11", a.TreeWeight)
	}
	for id := tree.NodeID(0); id < 3; id++ {
		if a.Class(tr, id) != Saturated {
			t.Fatalf("node %d class %v, want saturated", id, a.Class(tr, id))
		}
	}
	if !a.PortBusy[0].Equal(rational.One()) {
		t.Fatalf("PortBusy = %v, want 1", a.PortBusy[0])
	}
}

func TestForkStarvation(t *testing.T) {
	// Both children are fast but the port only feeds one: the second
	// starves no matter its speed ("bandwidth-centric").
	tr := tree.New(10)
	tr.AddChild(0, 1, 1) // saturating this child uses the whole port
	tr.AddChild(0, 1, 1) // starved
	a := Compute(tr)
	if !a.TreeWeight.Equal(rat(10, 11)) {
		t.Fatalf("TreeWeight = %v, want 10/11", a.TreeWeight)
	}
	if a.Class(tr, 1) != Saturated {
		t.Fatalf("child 1 class %v, want saturated", a.Class(tr, 1))
	}
	if a.Class(tr, 2) != Starved {
		t.Fatalf("child 2 class %v, want starved", a.Class(tr, 2))
	}
	if a.Used(2) {
		t.Fatalf("starved child reported as used")
	}
}

func TestForkPartialChild(t *testing.T) {
	// w0=4; child1 (w=2,c=1) needs 1/2 the port; child2 (w=2,c=2) would
	// need all of it, gets ε=1/2: rate = 1/4 + 1/2 + (1/2)/2 = 1.
	tr := tree.New(4)
	c1 := tr.AddChild(0, 2, 1)
	c2 := tr.AddChild(0, 2, 2)
	a := Compute(tr)
	if !a.TreeWeight.Equal(rational.One()) {
		t.Fatalf("TreeWeight = %v, want 1", a.TreeWeight)
	}
	if a.Class(tr, c1) != Saturated {
		t.Fatalf("child1 %v, want saturated", a.Class(tr, c1))
	}
	if a.Class(tr, c2) != Partial {
		t.Fatalf("child2 %v, want partial", a.Class(tr, c2))
	}
	if !a.NodeRate[c2].Equal(rat(1, 4)) {
		t.Fatalf("child2 rate %v, want 1/4", a.NodeRate[c2])
	}
	if !a.PortBusy[0].Equal(rational.One()) {
		t.Fatalf("PortBusy = %v, want 1", a.PortBusy[0])
	}
}

func TestLinkCapPropagates(t *testing.T) {
	// B is very fast (w=1) behind A, but A's inbound link (c=2) caps the
	// whole subtree: W(A) = max(2, 100/101) = 2.
	tr := tree.New(100)
	a1 := tr.AddChild(0, 100, 2)
	tr.AddChild(a1, 1, 1)
	a := Compute(tr)
	if !a.SubWeight[a1].Equal(rational.FromInt(2)) {
		t.Fatalf("SubWeight(A) = %v, want 2", a.SubWeight[a1])
	}
	// Root: 1/100 + 1/2 = 51/100.
	if !a.TreeWeight.Equal(rat(100, 51)) {
		t.Fatalf("TreeWeight = %v, want 100/51", a.TreeWeight)
	}
}

func TestPriorityByCommNotCompute(t *testing.T) {
	// The slow-computing child with the fast link is preferred over the
	// fast-computing child with the slow link.
	tr := tree.New(1000)
	slowCPU := tr.AddChild(0, 100, 1) // fast link
	fastCPU := tr.AddChild(0, 1, 100) // slow link
	a := Compute(tr)
	if a.InflowRate[slowCPU].IsZero() {
		t.Fatalf("fast-link child got nothing")
	}
	if !a.InflowRate[slowCPU].Equal(rat(1, 100)) {
		t.Fatalf("fast-link child inflow %v, want 1/100", a.InflowRate[slowCPU])
	}
	// Port left: 1 - 1*(1/100) = 99/100; fastCPU gets min(1/100... W =
	// max(100,1)=100) -> 1/100 of ... budget/c = (99/100)/100.
	if a.InflowRate[fastCPU].IsZero() {
		t.Fatalf("slow-link child should still get leftover bandwidth")
	}
}

func TestTieBreakDeterminism(t *testing.T) {
	tr := tree.New(7)
	tr.AddChild(0, 3, 5)
	tr.AddChild(0, 4, 5) // same c, higher id
	a1 := Compute(tr)
	a2 := Compute(tr)
	for i := range a1.NodeRate {
		if !a1.NodeRate[i].Equal(a2.NodeRate[i]) {
			t.Fatalf("non-deterministic allocation at node %d", i)
		}
	}
}

func TestFork(t *testing.T) {
	// Same as TestForkPartialChild via the direct API.
	got := Fork(0, 4, [][2]int64{{2, 1}, {2, 2}})
	if !got.Equal(rational.One()) {
		t.Fatalf("Fork = %v, want 1", got)
	}
	// With an inbound cap larger than the internal weight, c0 wins.
	got = Fork(3, 4, [][2]int64{{2, 1}, {2, 2}})
	if !got.Equal(rational.FromInt(3)) {
		t.Fatalf("Fork with c0=3 = %v, want 3", got)
	}
}

func TestChainTree(t *testing.T) {
	// root(w=2) -> a(w=2,c=1) -> b(w=2,c=1): each node saturates,
	// rate = 3/2, and every link is under capacity.
	tr := tree.New(2)
	a1 := tr.AddChild(0, 2, 1)
	tr.AddChild(a1, 2, 1)
	a := Compute(tr)
	if !a.Rate.Equal(rat(3, 2)) {
		t.Fatalf("Rate = %v, want 3/2", a.Rate)
	}
	for id := tree.NodeID(0); int(id) < tr.Len(); id++ {
		if a.Class(tr, id) != Saturated {
			t.Fatalf("node %d not saturated", id)
		}
	}
}

func TestNodeClassString(t *testing.T) {
	if Starved.String() != "starved" || Partial.String() != "partial" || Saturated.String() != "saturated" {
		t.Fatalf("NodeClass strings wrong")
	}
	if NodeClass(42).String() != "NodeClass(42)" {
		t.Fatalf("unknown class string wrong")
	}
}

// checkInvariants asserts the structural properties every allocation must
// satisfy, on any tree.
func checkInvariants(t *testing.T, tr *tree.Tree, a *Allocation) {
	t.Helper()
	one := rational.One()
	sum := rational.Zero()
	for id := tree.NodeID(0); int(id) < tr.Len(); id++ {
		w := rational.FromInt(tr.W(id))
		if a.NodeRate[id].Sign() < 0 {
			t.Fatalf("node %d negative rate %v", id, a.NodeRate[id])
		}
		if w.Inv().Less(a.NodeRate[id]) {
			t.Fatalf("node %d rate %v exceeds 1/w = %v", id, a.NodeRate[id], w.Inv())
		}
		if one.Less(a.PortBusy[id]) {
			t.Fatalf("node %d port busy %v > 1", id, a.PortBusy[id])
		}
		if id != tr.Root() {
			c := rational.FromInt(tr.C(id))
			if a.SubWeight[id].Less(c) {
				t.Fatalf("node %d subtree weight %v below link weight %v", id, a.SubWeight[id], c)
			}
			if a.SubWeight[id].Inv().Less(a.InflowRate[id]) {
				t.Fatalf("node %d inflow %v exceeds subtree capacity %v", id, a.InflowRate[id], a.SubWeight[id].Inv())
			}
			// Used nodes must have a fed parent chain.
			if !a.InflowRate[id].IsZero() && a.InflowRate[tr.Parent(id)].IsZero() && tr.Parent(id) != tr.Root() {
				t.Fatalf("node %d fed while parent %d is not", id, tr.Parent(id))
			}
		}
		sum = sum.Add(a.NodeRate[id])
		// Conservation at each node: inflow = own compute + handed down.
		down := rational.Zero()
		for _, k := range tr.Children(id) {
			down = down.Add(a.InflowRate[k])
		}
		if !a.InflowRate[id].Equal(a.NodeRate[id].Add(down)) {
			t.Fatalf("node %d conservation: inflow %v != own %v + down %v", id, a.InflowRate[id], a.NodeRate[id], down)
		}
	}
	if !sum.Equal(a.Rate) {
		t.Fatalf("Σ node rates = %v, want %v", sum, a.Rate)
	}
}

func TestPropertyInvariantsOnRandomTrees(t *testing.T) {
	g := randtree.New(randtree.Params{MinNodes: 1, MaxNodes: 80, MinComm: 1, MaxComm: 50, Comp: 500}, 31)
	for i := 0; i < 60; i++ {
		tr := g.Tree()
		a := Compute(tr)
		checkInvariants(t, tr, a)
		// Bounds: the rate is at least the root alone and at most all CPUs
		// running flat out.
		if a.Rate.Less(rational.New(1, tr.W(tr.Root()))) {
			t.Fatalf("rate below root-only rate")
		}
		all := rational.Zero()
		tr.Walk(func(id tree.NodeID) bool {
			all = all.Add(rational.New(1, tr.W(id)))
			return true
		})
		if all.Less(a.Rate) {
			t.Fatalf("rate %v above sum of CPU rates %v", a.Rate, all)
		}
	}
}

func TestPropertyMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	g := randtree.New(randtree.Params{MinNodes: 2, MaxNodes: 40, MinComm: 2, MaxComm: 50, Comp: 200}, 77)
	for i := 0; i < 40; i++ {
		tr := g.Tree()
		before := Compute(tr).Rate

		// Speeding up one node's CPU never hurts.
		faster := tr.Clone()
		id := tree.NodeID(rng.IntN(tr.Len()))
		faster.SetW(id, (tr.W(id)+1)/2)
		if Compute(faster).Rate.Less(before) {
			t.Fatalf("tree %d: faster CPU at %d reduced the optimal rate", i, id)
		}

		// Speeding up one link never hurts.
		if tr.Len() > 1 {
			faster2 := tr.Clone()
			id2 := tree.NodeID(rng.IntN(tr.Len()-1) + 1)
			faster2.SetC(id2, (tr.C(id2)+1)/2)
			if Compute(faster2).Rate.Less(before) {
				t.Fatalf("tree %d: faster link at %d reduced the optimal rate", i, id2)
			}
		}

		// Adding a child never hurts.
		grown := tr.Clone()
		grown.AddChild(tree.NodeID(rng.IntN(tr.Len())), 10, 10)
		if Compute(grown).Rate.Less(before) {
			t.Fatalf("tree %d: adding a node reduced the optimal rate", i)
		}
	}
}

func TestPropertyForkMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 60; i++ {
		w0 := rng.Int64N(100) + 1
		k := rng.IntN(6)
		children := make([][2]int64, k)
		tr := tree.New(w0)
		for j := range children {
			w := rng.Int64N(100) + 1
			c := rng.Int64N(30) + 1
			children[j] = [2]int64{w, c}
			tr.AddChild(0, w, c)
		}
		if got, want := Fork(0, w0, children), Compute(tr).TreeWeight; !got.Equal(want) {
			t.Fatalf("Fork = %v, Compute = %v", got, want)
		}
	}
}

func BenchmarkComputeDefaultTree(b *testing.B) {
	tr := randtree.New(randtree.Defaults(), 1).Tree()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Compute(tr)
	}
}
