// Package optimal implements the bandwidth-centric theorem (Theorem 1 of
// the paper, from Beaumont, Carter, Ferrante, Legrand and Robert,
// IPDPS'02): the optimal steady-state task execution rate of a weighted
// platform tree, and the optimal fluid allocation that attains it.
//
// # The theorem
//
// For a single-level fork with root P0 (compute time w0, inbound
// communication time c0) and children P1..Pk with communication times
// c1 ≤ c2 ≤ ... ≤ ck and compute times w1..wk, the minimal computational
// weight of the tree (time per task; the optimal rate is its inverse) is
//
//	wtree = max(c0, 1 / (1/w0 + Σ_{i=1..p} 1/wi + ε/c_{p+1}))
//
// where p is the largest index with Σ_{i=1..p} ci/wi ≤ 1 and
// ε = 1 − Σ_{i=1..p} ci/wi (ε = 0 if p = k). Intuitively: the children
// that communicate fastest are fed until the parent's send port saturates;
// the next child is fed with the leftover port fraction ε; the rest starve
// regardless of their compute speed — hence "bandwidth-centric".
//
// # Multi-level trees
//
// A bottom-up traversal applies the fork formula at every node, replacing
// each child's compute time wi with the computational weight W(i) of the
// subtree rooted there (which already folds in that child's own inbound
// link cap, W(i) ≥ c(i)). The root has no inbound link, so its weight has
// no c0 term. All arithmetic is exact rational arithmetic: the onset
// detector compares simulated rates to these values and must not be
// perturbed by rounding.
package optimal

import (
	"fmt"
	"math/big"
	"slices"

	"bwcs/internal/rational"
	"bwcs/internal/tree"
)

// Allocation is the result of the theorem on a tree: the optimal
// steady-state weight and rate, and one optimal fluid schedule attaining
// it.
type Allocation struct {
	// TreeWeight is wtree: the steady-state time per task of the whole
	// tree. Rate is its inverse, the optimal tasks-per-time rate.
	TreeWeight rational.Rat
	Rate       rational.Rat

	// SubWeight[i] is W(i), the computational weight of the subtree rooted
	// at node i as seen through its inbound link: tasks can flow into that
	// subtree at rate at most 1/W(i).
	SubWeight []rational.Rat

	// NodeRate[i] is the rate at which node i itself computes tasks in the
	// optimal schedule. InflowRate[i] is the rate at which tasks flow into
	// the subtree rooted at i (for the root: the whole tree's rate).
	NodeRate   []rational.Rat
	InflowRate []rational.Rat

	// PortBusy[i] is the fraction of time node i's send port is busy in
	// the optimal schedule; it never exceeds 1.
	PortBusy []rational.Rat
}

// NodeClass classifies a node's role in the optimal steady state.
type NodeClass int

const (
	// Starved nodes receive no tasks at all: their subtree communicates
	// too slowly to be worth feeding.
	Starved NodeClass = iota
	// Partial nodes compute at a positive rate below their full speed.
	Partial
	// Saturated nodes compute continuously (rate = 1/w).
	Saturated
)

// String returns the lower-case name of the class.
func (c NodeClass) String() string {
	switch c {
	case Starved:
		return "starved"
	case Partial:
		return "partial"
	case Saturated:
		return "saturated"
	default:
		return fmt.Sprintf("NodeClass(%d)", int(c))
	}
}

// Class returns the classification of node id under this allocation.
func (a *Allocation) Class(t *tree.Tree, id tree.NodeID) NodeClass {
	r := a.NodeRate[id]
	if r.IsZero() {
		return Starved
	}
	if r.Equal(rational.New(1, t.W(id))) {
		return Saturated
	}
	return Partial
}

// Used reports whether node id computes any tasks in the optimal schedule.
func (a *Allocation) Used(id tree.NodeID) bool { return !a.NodeRate[id].IsZero() }

// Compute runs the theorem on t and returns the optimal allocation.
func Compute(t *tree.Tree) *Allocation {
	n := t.Len()
	a := &Allocation{
		SubWeight:  make([]rational.Rat, n),
		NodeRate:   make([]rational.Rat, n),
		InflowRate: make([]rational.Rat, n),
		PortBusy:   make([]rational.Rat, n),
	}

	// Bottom-up: subtree weights via the fork formula.
	wc := computeWeights(t)
	for i := range a.SubWeight {
		a.SubWeight[i] = rational.FromBig(&wc.sub[i])
	}
	a.TreeWeight = a.SubWeight[t.Root()]
	a.Rate = a.TreeWeight.Inv()

	// Top-down: distribute the achievable inflow. The root consumes from
	// the local task pool at the full tree rate.
	a.InflowRate[t.Root()] = a.Rate
	t.Walk(func(id tree.NodeID) bool {
		distribute(t, id, a)
		return true
	})
	return a
}

// Weight computes only wtree — the bottom-up pass of the theorem —
// without materializing the optimal schedule. The population sweeps call
// this once per tree (the onset detector needs nothing but the optimal
// rate), so it avoids the top-down distribution pass and runs the fork
// formula with in-place big.Rat arithmetic instead of immutable
// rational.Rat churn: same exact values, a fraction of the allocations.
//
//bwvet:hotpath
func Weight(t *tree.Tree) rational.Rat {
	wc := computeWeights(t)
	return rational.FromBig(&wc.sub[t.Root()])
}

// weightCalc holds the bottom-up pass's state: exact subtree weights
// plus reusable scratch, so the per-node fork formula allocates only
// when a rational outgrows its backing storage.
type weightCalc struct {
	sub  []big.Rat // W(i), exact
	kids []tree.NodeID

	rate, budget, c, need, tmp big.Rat
}

// computeWeights runs the fork formula bottom-up over the whole tree.
func computeWeights(t *tree.Tree) *weightCalc {
	wc := &weightCalc{sub: make([]big.Rat, t.Len())}
	t.WalkPost(func(id tree.NodeID) {
		wc.fork(t, id)
	})
	return wc
}

// fork applies the single-level formula at node id: it sets sub[id] to
// the subtree weight W(id) — the internal weight capped below by the
// node's own inbound communication time (except at the root, which has
// no inbound link).
//
//bwvet:hotpath
func (wc *weightCalc) fork(t *tree.Tree, id tree.NodeID) {
	// rate accumulates 1/w0 + Σ 1/W(i) + ε/c_{p+1}; budget is the
	// remaining send-port fraction.
	rate, budget := &wc.rate, &wc.budget
	rate.SetFrac64(1, t.W(id))
	budget.SetInt64(1)
	for _, child := range wc.sortedKids(t, id) {
		sub := &wc.sub[child]
		wc.c.SetInt64(t.C(child))
		wc.need.Quo(&wc.c, sub) // port fraction to keep this subtree saturated
		if wc.need.Cmp(budget) <= 0 {
			rate.Add(rate, wc.tmp.Inv(sub))
			budget.Sub(budget, &wc.need)
			continue
		}
		// Partially fed child: leftover port fraction ε buys ε/c tasks
		// per time; everyone after starves.
		if budget.Sign() > 0 {
			rate.Add(rate, wc.tmp.Quo(budget, &wc.c))
		}
		break
	}
	res := &wc.sub[id]
	res.Inv(rate)
	if id != t.Root() {
		if wc.c.SetInt64(t.C(id)); res.Cmp(&wc.c) < 0 {
			res.Set(&wc.c)
		}
	}
}

// sortedKids returns id's children ordered by increasing communication
// time (ties by node ID), in a buffer reused across nodes.
//
//bwvet:hotpath
func (wc *weightCalc) sortedKids(t *tree.Tree, id tree.NodeID) []tree.NodeID {
	wc.kids = append(wc.kids[:0], t.Children(id)...)
	sortByComm(t, wc.kids)
	return wc.kids
}

// distribute splits node id's inflow between its own CPU and its children
// in bandwidth-centric priority order, filling NodeRate, InflowRate and
// PortBusy. Children of starved/partial nodes receive what is left after
// the node's own CPU, mirroring the protocols (the local CPU has
// communication cost zero, so it has top priority).
func distribute(t *tree.Tree, id tree.NodeID, a *Allocation) {
	inflow := a.InflowRate[id]
	own := rational.Min(rational.New(1, t.W(id)), inflow)
	a.NodeRate[id] = own
	remaining := inflow.Sub(own)
	budget := rational.One()
	busy := rational.Zero()
	for _, child := range sortedByComm(t, id) {
		if remaining.Sign() <= 0 || budget.Sign() <= 0 {
			a.InflowRate[child] = rational.Zero()
			continue
		}
		c := rational.FromInt(t.C(child))
		give := rational.Min(a.SubWeight[child].Inv(), remaining)
		give = rational.Min(give, budget.Div(c))
		a.InflowRate[child] = give
		remaining = remaining.Sub(give)
		cost := c.Mul(give)
		budget = budget.Sub(cost)
		busy = busy.Add(cost)
	}
	a.PortBusy[id] = busy
}

// sortedByComm returns the children of id ordered by increasing
// communication time, breaking ties by node ID so results are
// deterministic. This is the bandwidth-centric priority order.
func sortedByComm(t *tree.Tree, id tree.NodeID) []tree.NodeID {
	kids := append([]tree.NodeID(nil), t.Children(id)...)
	sortByComm(t, kids)
	return kids
}

// sortByComm orders kids in place by increasing communication time,
// breaking ties by node ID.
func sortByComm(t *tree.Tree, kids []tree.NodeID) {
	slices.SortFunc(kids, func(a, b tree.NodeID) int {
		if ca, cb := t.C(a), t.C(b); ca != cb {
			if ca < cb {
				return -1
			}
			return 1
		}
		if a < b {
			return -1
		}
		if a > b {
			return 1
		}
		return 0
	})
}

// Fork computes Theorem 1 directly for a single-level fork, given the
// root's inbound communication time c0 (0 when the root is the platform
// root), its compute time w0, and each child's (w, c). It exists for
// exposition and testing; Compute subsumes it.
func Fork(c0, w0 int64, children [][2]int64) rational.Rat {
	t := tree.New(w0)
	for _, wc := range children {
		t.AddChild(t.Root(), wc[0], wc[1])
	}
	internal := Compute(t).TreeWeight
	if c0 > 0 {
		return rational.Max(rational.FromInt(c0), internal)
	}
	return internal
}
