package window

import (
	"math"
	"math/big"
	"testing"

	"bwcs/internal/rational"
	"bwcs/internal/sim"
)

// uniformCompletions returns completion times of n tasks finishing every
// step timesteps.
func uniformCompletions(n int, step sim.Time) []sim.Time {
	out := make([]sim.Time, n)
	for i := range out {
		out[i] = sim.Time(i+1) * step
	}
	return out
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New([]sim.Time{1, 2}, rational.Zero()); err == nil {
		t.Fatalf("accepted zero weight")
	}
	if _, err := New([]sim.Time{1, 2}, rational.FromInt(-1)); err == nil {
		t.Fatalf("accepted negative weight")
	}
	if _, err := New([]sim.Time{5, 3}, rational.One()); err == nil {
		t.Fatalf("accepted unsorted completions")
	}
}

func TestWindowsCount(t *testing.T) {
	for _, tc := range []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 1}, {10, 5}, {11, 5},
	} {
		s, err := New(uniformCompletions(tc.n, 3), rational.FromInt(3))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if got := s.Windows(); got != tc.want {
			t.Fatalf("Windows(%d tasks) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestRateUniform(t *testing.T) {
	// Tasks complete every 4 steps: rate is exactly 1/4 in every window.
	s, err := New(uniformCompletions(100, 4), rational.FromInt(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for x := 1; x <= s.Windows(); x++ {
		if got := s.Rate(x); math.Abs(got-0.25) > 1e-12 {
			t.Fatalf("Rate(%d) = %v, want 0.25", x, got)
		}
		if got := s.Normalized(x); math.Abs(got-1) > 1e-12 {
			t.Fatalf("Normalized(%d) = %v, want 1", x, got)
		}
		// Exactly at optimal is not strictly above.
		if s.AboveOptimal(x) {
			t.Fatalf("AboveOptimal(%d) at exactly optimal rate", x)
		}
	}
}

func TestRateIndexOutOfRangePanics(t *testing.T) {
	s, _ := New(uniformCompletions(10, 1), rational.One())
	for _, x := range []int{0, 6} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Rate(%d) did not panic", x)
				}
			}()
			s.Rate(x)
		}()
	}
}

func TestAboveOptimalExactArithmetic(t *testing.T) {
	// Optimal weight 10/3 (rate 0.3). Window 3 spans t_6 - t_3. Choose
	// completions so the window rate is exactly 3/10 then 3/(10-1).
	completions := []sim.Time{10, 20, 30, 40, 50, 60} // rate(3) = 3/30 = 1/10
	s, err := New(completions, rational.New(10, 1))   // optimal rate 1/10
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.AboveOptimal(3) {
		t.Fatalf("rate exactly optimal reported above")
	}
	// Shave one timestep off t_6: 3/29 > 1/10 is false... 3*10=30 > 29 ⇒ true.
	completions2 := []sim.Time{10, 20, 30, 40, 50, 59}
	s2, _ := New(completions2, rational.New(10, 1))
	if !s2.AboveOptimal(3) {
		t.Fatalf("rate just above optimal not detected")
	}
}

func TestZeroSpanWindow(t *testing.T) {
	// Tasks 1..4 all complete at t=7: every span is zero.
	s, err := New([]sim.Time{7, 7, 7, 7}, rational.One())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !s.AboveOptimal(1) || !s.AboveOptimal(2) {
		t.Fatalf("zero-span window not above optimal")
	}
	if s.Rate(1) <= 0 {
		t.Fatalf("zero-span rate not positive")
	}
}

func TestOnsetSecondCrossing(t *testing.T) {
	// Construct a run that is slow early, then slightly beats the optimal
	// rate from window 6 onward. Threshold 4 ⇒ crossings at 5? windows
	// 5,6,7...; the second crossing is the onset.
	n := 40
	completions := make([]sim.Time, n)
	tt := sim.Time(0)
	for i := 0; i < n; i++ {
		if i < 10 {
			tt += 20 // slow startup
		} else {
			tt += 9 // just faster than optimal weight 10
		}
		completions[i] = tt
	}
	s, err := New(completions, rational.FromInt(10))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	first := -1
	var crossings []int
	for x := 5; x <= s.Windows(); x++ {
		if s.AboveOptimal(x) {
			crossings = append(crossings, x)
			if first < 0 {
				first = x
			}
		}
	}
	if len(crossings) < 2 {
		t.Fatalf("test construction broken: crossings %v", crossings)
	}
	got, ok := s.Onset(4)
	if !ok {
		t.Fatalf("Onset not detected")
	}
	if got != crossings[1] {
		t.Fatalf("Onset = %d, want second crossing %d", got, crossings[1])
	}
	if !s.Reached(4) {
		t.Fatalf("Reached = false")
	}
}

func TestOnsetRequiresTwoCrossings(t *testing.T) {
	// One early spike above optimal, then forever below: not reached.
	completions := []sim.Time{1, 2, 3, 4, 5, 6, 7, 8, 100, 200, 300, 400, 500, 600, 700, 800}
	s, err := New(completions, rational.FromInt(10))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	above := 0
	for x := 3; x <= s.Windows(); x++ {
		if s.AboveOptimal(x) {
			above++
		}
	}
	if above > 1 {
		t.Skipf("construction yielded %d crossings; adjust", above)
	}
	if s.Reached(2) && above < 2 {
		t.Fatalf("Reached with %d crossings", above)
	}
}

func TestOnsetDefaultThreshold(t *testing.T) {
	// With a negative threshold the default (300) applies; a 100-task run
	// has only 50 windows, so onset is impossible.
	s, err := New(uniformCompletions(100, 1), rational.New(2, 1))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := s.Onset(-1); ok {
		t.Fatalf("onset detected before threshold windows exist")
	}
}

func TestOnsetAfterThresholdOnly(t *testing.T) {
	// Rate is far above optimal everywhere; the detector must still wait
	// until after the threshold: onset at threshold+2 (second crossing).
	s, err := New(uniformCompletions(1000, 1), rational.FromInt(100))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	got, ok := s.Onset(300)
	if !ok || got != 302 {
		t.Fatalf("Onset = %d,%v; want 302,true", got, ok)
	}
}

func TestNormalizedSeries(t *testing.T) {
	s, err := New(uniformCompletions(20, 5), rational.FromInt(5))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	series := s.NormalizedSeries()
	if len(series) != 10 {
		t.Fatalf("series length %d, want 10", len(series))
	}
	for i, v := range series {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("series[%d] = %v, want 1", i, v)
		}
	}
}

func TestFractionalOptimalWeight(t *testing.T) {
	// W = 7/3 (rate 3/7 ≈ 0.4286). Completions every 2 steps give rate
	// 1/2 > 3/7 in every window.
	s, err := New(uniformCompletions(50, 2), rational.New(7, 3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for x := 1; x <= s.Windows(); x++ {
		if !s.AboveOptimal(x) {
			t.Fatalf("window %d not above optimal", x)
		}
	}
	got, ok := s.Onset(5)
	if !ok || got != 7 {
		t.Fatalf("Onset = %d,%v, want 7,true", got, ok)
	}
}

func TestAtOrAboveOptimal(t *testing.T) {
	// Exactly periodic at the optimal rate: never strictly above, always
	// at-or-above.
	s, err := New(uniformCompletions(800, 4), rational.FromInt(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for _, x := range []int{1, 100, 400} {
		if s.AboveOptimal(x) {
			t.Fatalf("strictly above at exact rate")
		}
		if !s.AtOrAboveOptimal(x) {
			t.Fatalf("not at-or-above at exact rate")
		}
	}
	if _, ok := s.Onset(300); ok {
		t.Fatalf("strict onset detected on exactly-periodic run")
	}
	got, ok := s.OnsetInclusive(300)
	if !ok || got != 302 {
		t.Fatalf("OnsetInclusive = %d,%v, want 302,true", got, ok)
	}
}

func TestAtOrAboveOptimalOutOfRangePanics(t *testing.T) {
	s, _ := New(uniformCompletions(10, 1), rational.One())
	defer func() {
		if recover() == nil {
			t.Fatalf("no panic")
		}
	}()
	s.AtOrAboveOptimal(0)
}

func TestInclusiveBelowOptimalStillFails(t *testing.T) {
	// Just below optimal everywhere: neither detector fires.
	s, err := New(uniformCompletions(800, 5), rational.FromInt(4))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, ok := s.OnsetInclusive(300); ok {
		t.Fatalf("inclusive onset fired below optimal")
	}
}

// TestOnsetScanZeroAllocs pins the int64 fast path: a full onset scan
// over a realistic series must not allocate at all. The detector used to
// build four big.Ints per window comparison, which at paper scale (10k
// tasks ⇒ 5k windows per tree) was tens of thousands of allocations per
// tree for an int64-sized question.
func TestOnsetScanZeroAllocs(t *testing.T) {
	completions := uniformCompletions(2000, 7)
	// Perturb the tail so the scan sees both outcomes of the comparison.
	for i := 1200; i < len(completions); i++ {
		completions[i] -= sim.Time(i - 1200)
	}
	s, err := New(completions, rational.New(22, 3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !s.fits64 {
		t.Fatalf("paper-sized weight did not take the int64 fast path")
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Onset(DefaultThreshold)
		s.OnsetInclusive(DefaultThreshold)
	})
	if allocs != 0 {
		t.Fatalf("onset scan allocates %.0f times, want 0", allocs)
	}
}

// TestNormalizedZeroAllocs: the optimal-rate float is computed once in
// New, so Normalized/NormalizedSeries no longer build a big.Rat per call.
func TestNormalizedZeroAllocs(t *testing.T) {
	s, err := New(uniformCompletions(200, 4), rational.New(9, 2))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		for x := 1; x <= s.Windows(); x++ {
			s.Normalized(x)
		}
	})
	if allocs != 0 {
		t.Fatalf("Normalized allocates %.0f times per sweep, want 0", allocs)
	}
}

// TestBigWeightFallback: a weight whose numerator overflows int64 routes
// through the big.Int scratch path and still compares exactly.
func TestBigWeightFallback(t *testing.T) {
	// W = (2^80)/3 — rate 3/2^80, far below every windowed rate here.
	huge := new(big.Rat).SetFrac(new(big.Int).Lsh(big.NewInt(1), 80), big.NewInt(3))
	s, err := New(uniformCompletions(100, 5), rational.FromBig(huge))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if s.fits64 {
		t.Fatalf("2^80/3 claimed to fit in int64")
	}
	for x := 1; x <= s.Windows(); x++ {
		if !s.AboveOptimal(x) {
			t.Fatalf("window %d: rate 1/5 not above 3/2^80", x)
		}
	}
	// And a huge weight matching the series exactly: W = 5·2^70/2^70.
	// big.Rat normalizes that back to 5, so force a non-reducible huge
	// pair instead: rate 2^70/(5·2^70 + 1) is just below 1/5.
	den := new(big.Int).Add(new(big.Int).Lsh(big.NewInt(5), 70), big.NewInt(1))
	just := new(big.Rat).SetFrac(den, new(big.Int).Lsh(big.NewInt(1), 70))
	s2, err := New(uniformCompletions(100, 5), rational.FromBig(just))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	for x := 1; x <= s2.Windows(); x++ {
		if !s2.AboveOptimal(x) {
			t.Fatalf("window %d: rate 1/5 not above (1/5 − ε)", x)
		}
		if !s2.AtOrAboveOptimal(x) {
			t.Fatalf("window %d: AtOrAboveOptimal disagrees with AboveOptimal", x)
		}
	}
}

// TestFastPathMatchesBigInt cross-checks the 128-bit fast path against
// the big.Int scratch path over a grid of weights and spans, including
// products far beyond 64 bits.
func TestFastPathMatchesBigInt(t *testing.T) {
	completions := []sim.Time{
		1, 2, 3, 1 << 40, 1<<40 + 1, 1 << 62, 1<<62 + 1, 1<<62 + 2,
	}
	weights := []rational.Rat{
		rational.New(1, 1),
		rational.New(3, 7),
		rational.New(1<<62, 3),
		rational.New(3, 1<<62),
		rational.New((1<<62)+1, (1<<61)+3),
	}
	for _, w := range weights {
		s, err := New(completions, w)
		if err != nil {
			t.Fatalf("New(%v): %v", w, err)
		}
		if !s.fits64 {
			t.Fatalf("weight %v should fit in int64", w)
		}
		for x := 1; x <= s.Windows(); x++ {
			dt := s.span(x)
			if dt == 0 {
				continue
			}
			want := new(big.Int).Mul(big.NewInt(int64(x)), s.optNum).Cmp(
				new(big.Int).Mul(big.NewInt(int64(dt)), s.optDen))
			if got := s.cmpOptimal(x, dt); got != want {
				t.Fatalf("weight %v window %d (dt=%d): fast path %d, big.Int %d", w, x, dt, got, want)
			}
		}
	}
}
