package window

import (
	"testing"

	"bwcs/internal/rational"
	"bwcs/internal/sim"
)

// TestHotPathAllocsPinned is the runtime half of the bwvet hotpathalloc
// contract for this package: every //bwvet:hotpath function on the
// windowed onset scan (Onset, OnsetInclusive, AboveOptimal,
// AtOrAboveOptimal, Reached, Windows and the comparison helpers under
// them) runs allocation-free on the int64 fast path. The static analyzer
// proves no allocating construct appears in the source; this probe
// proves the toolchain agrees at run time (see
// internal/lint/hotpath_audit_test.go for the annotation-to-probe
// cross-check).
func TestHotPathAllocsPinned(t *testing.T) {
	completions := uniformCompletions(1500, 6)
	// Dent the tail so both branches of every comparison run.
	for i := 900; i < len(completions); i++ {
		completions[i] -= sim.Time(i - 900)
	}
	s, err := New(completions, rational.New(19, 3))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !s.fits64 {
		t.Fatalf("paper-sized weight did not take the int64 fast path")
	}
	allocs := testing.AllocsPerRun(50, func() {
		s.Onset(DefaultThreshold)
		s.OnsetInclusive(DefaultThreshold)
		s.Reached(DefaultThreshold)
		for x := 1; x <= s.Windows(); x += 97 {
			s.AboveOptimal(x)
			s.AtOrAboveOptimal(x)
		}
	})
	if allocs != 0 {
		t.Fatalf("onset hot path allocates %.0f times, want 0 (hotpathalloc contract)", allocs)
	}
}
