// Package window implements the paper's steady-state analysis methodology
// (Section 4.1): throughput over a sliding, growing window, and the
// empirical onset-of-steady-state detector.
//
// Determining when an execution reaches steady state is hard — the
// bandwidth-centric theorem gives the optimal rate but its period has no
// practical bound. The paper therefore measures the average rate in a
// window that grows with the run: the value plotted at window index x is
// the rate between the completion of task x and the completion of task 2x,
//
//	rate(x) = (2x − x) / (t_{2x} − t_x) = x / (t_{2x} − t_x),
//
// so that late windows exclude startup but cover a full period.
//
// A tree is deemed to have reached the optimal steady state when its
// windowed rate goes above the optimal rate for the second time after
// window 300 (the paper found that non-reaching trees show at most one
// such point, reaching trees more than one). The comparison
// rate(x) > R = 1/W is evaluated exactly in integer arithmetic:
// x·Wnum > (t_{2x} − t_x)·Wden.
package window

import (
	"fmt"
	"math/big"
	"math/bits"

	"bwcs/internal/rational"
	"bwcs/internal/sim"
)

// DefaultThreshold is the window index after which the paper's onset
// detector starts counting above-optimal points.
const DefaultThreshold = 300

// Series is the windowed-rate view of one run. A Series caches scratch
// state for its comparisons, so it is not safe for concurrent use; build
// one Series per goroutine.
type Series struct {
	completions []sim.Time
	optNum      *big.Int // numerator of the optimal weight W
	optDen      *big.Int // denominator of W
	optRate     float64  // 1/W as a float, computed once

	// Fast path: when W's numerator and denominator both fit in an
	// int64, the exact comparison x·Wnum vs Δt·Wden is done with a
	// 128-bit product (bits.Mul64) — the full product of two uint64s
	// always fits in 128 bits, so the fast path never loses exactness
	// and never allocates. The big.Int scratch below is touched only
	// when W itself overflows int64 (platforms far beyond the paper's).
	num64, den64 uint64
	fits64       bool
	xScratch     big.Int
	dtScratch    big.Int
	lhsScratch   big.Int
	rhsScratch   big.Int
}

// New returns a Series over the completion times of a run (ascending, as
// produced by the engine) measured against the optimal steady-state weight
// optWeight = wtree (time per task; the optimal rate is 1/optWeight).
func New(completions []sim.Time, optWeight rational.Rat) (*Series, error) {
	if optWeight.Sign() <= 0 {
		return nil, fmt.Errorf("window: optimal weight %v must be positive", optWeight)
	}
	for i := 1; i < len(completions); i++ {
		if completions[i] < completions[i-1] {
			return nil, fmt.Errorf("window: completions not ascending at %d", i)
		}
	}
	s := &Series{
		completions: completions,
		optNum:      optWeight.Num(),
		optDen:      optWeight.Den(),
	}
	s.optRate, _ = new(big.Rat).SetFrac(s.optDen, s.optNum).Float64() // 1/W
	if s.optNum.IsInt64() && s.optDen.IsInt64() {
		// Sign() > 0 and big.Rat normalization guarantee both parts
		// are positive, so the uint64 conversions are exact.
		s.num64 = uint64(s.optNum.Int64())
		s.den64 = uint64(s.optDen.Int64())
		s.fits64 = true
	}
	return s, nil
}

// cmpOptimal compares the windowed rate x/dt against the optimal rate
// 1/W exactly: it returns the sign of x·Wnum − dt·Wden. Both x and dt
// are positive by construction.
//
//bwvet:hotpath
func (s *Series) cmpOptimal(x int, dt sim.Time) int {
	if s.fits64 {
		lhsHi, lhsLo := bits.Mul64(uint64(x), s.num64)
		rhsHi, rhsLo := bits.Mul64(uint64(dt), s.den64)
		if lhsHi != rhsHi {
			if lhsHi > rhsHi {
				return 1
			}
			return -1
		}
		if lhsLo != rhsLo {
			if lhsLo > rhsLo {
				return 1
			}
			return -1
		}
		return 0
	}
	lhs := s.lhsScratch.Mul(s.xScratch.SetInt64(int64(x)), s.optNum)
	rhs := s.rhsScratch.Mul(s.dtScratch.SetInt64(int64(dt)), s.optDen)
	return lhs.Cmp(rhs)
}

// Windows returns the number of valid window indices: window x needs task
// 2x to have completed, so indices run 1..len/2.
//
//bwvet:hotpath
func (s *Series) Windows() int { return len(s.completions) / 2 }

// span returns t_{2x} − t_x for window x (1-based).
//
//bwvet:hotpath
func (s *Series) span(x int) sim.Time {
	return s.completions[2*x-1] - s.completions[x-1]
}

// Rate returns the windowed rate x/(t_{2x}−t_x) for window x in 1..Windows.
// A zero time span (2x tasks finishing simultaneously) reports +Inf-like
// behaviour via a true report from AboveOptimal and is returned here as 0
// denominator guarded to the maximum representable rate.
func (s *Series) Rate(x int) float64 {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return float64(x) // degenerate; treat the span as one timestep
	}
	return float64(x) / float64(dt)
}

// Normalized returns Rate(x) divided by the optimal rate — the y-axis of
// the paper's Figure 3. Values hover around 1 when the tree runs at the
// optimal steady-state rate.
func (s *Series) Normalized(x int) float64 {
	return s.Rate(x) / s.optRate
}

// AboveOptimal reports whether the windowed rate at x strictly exceeds the
// optimal rate, compared exactly: x/(t_{2x}−t_x) > 1/W  ⇔  x·W > Δt.
//
//bwvet:hotpath
func (s *Series) AboveOptimal(x int) bool {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return true
	}
	return s.cmpOptimal(x, dt) > 0
}

// AtOrAboveOptimal reports whether the windowed rate at x is at least the
// optimal rate.
//
//bwvet:hotpath
func (s *Series) AtOrAboveOptimal(x int) bool {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return true
	}
	return s.cmpOptimal(x, dt) >= 0
}

// Onset runs the paper's detector: scanning windows strictly after the
// threshold index, it returns the index of the second window whose rate
// exceeds the optimal rate, and ok=true. If fewer than two such windows
// exist the tree did not reach the optimal steady state and ok is false.
//
//bwvet:hotpath
func (s *Series) Onset(threshold int) (window int, ok bool) {
	return s.onset(threshold, (*Series).AboveOptimal)
}

// OnsetInclusive is Onset with an at-or-above comparison. The paper's
// strict criterion relies on the discreteness wiggle of large random
// trees; a platform whose schedule is exactly periodic at the optimal rate
// never goes strictly above it and would be misclassified. Library users
// analysing individual (often small, regular) platforms should prefer this
// variant; the experiment harness keeps the strict one for fidelity.
//
//bwvet:hotpath
func (s *Series) OnsetInclusive(threshold int) (window int, ok bool) {
	return s.onset(threshold, (*Series).AtOrAboveOptimal)
}

//bwvet:hotpath
func (s *Series) onset(threshold int, above func(*Series, int) bool) (int, bool) {
	if threshold < 0 {
		threshold = DefaultThreshold
	}
	count := 0
	for x := threshold + 1; x <= s.Windows(); x++ {
		if above(s, x) {
			count++
			if count == 2 {
				return x, true
			}
		}
	}
	return 0, false
}

// Reached reports whether the run reached the optimal steady state under
// the paper's criterion with the given threshold window.
//
//bwvet:hotpath
func (s *Series) Reached(threshold int) bool {
	_, ok := s.Onset(threshold)
	return ok
}

// NormalizedSeries returns the normalized rate for every window index
// 1..Windows, for plotting Figure 3-style curves.
func (s *Series) NormalizedSeries() []float64 {
	out := make([]float64, s.Windows())
	for x := 1; x <= s.Windows(); x++ {
		out[x-1] = s.Normalized(x)
	}
	return out
}
