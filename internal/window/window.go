// Package window implements the paper's steady-state analysis methodology
// (Section 4.1): throughput over a sliding, growing window, and the
// empirical onset-of-steady-state detector.
//
// Determining when an execution reaches steady state is hard — the
// bandwidth-centric theorem gives the optimal rate but its period has no
// practical bound. The paper therefore measures the average rate in a
// window that grows with the run: the value plotted at window index x is
// the rate between the completion of task x and the completion of task 2x,
//
//	rate(x) = (2x − x) / (t_{2x} − t_x) = x / (t_{2x} − t_x),
//
// so that late windows exclude startup but cover a full period.
//
// A tree is deemed to have reached the optimal steady state when its
// windowed rate goes above the optimal rate for the second time after
// window 300 (the paper found that non-reaching trees show at most one
// such point, reaching trees more than one). The comparison
// rate(x) > R = 1/W is evaluated exactly in integer arithmetic:
// x·Wnum > (t_{2x} − t_x)·Wden.
package window

import (
	"fmt"
	"math/big"

	"bwcs/internal/rational"
	"bwcs/internal/sim"
)

// DefaultThreshold is the window index after which the paper's onset
// detector starts counting above-optimal points.
const DefaultThreshold = 300

// Series is the windowed-rate view of one run.
type Series struct {
	completions []sim.Time
	optNum      *big.Int // numerator of the optimal weight W
	optDen      *big.Int // denominator of W
}

// New returns a Series over the completion times of a run (ascending, as
// produced by the engine) measured against the optimal steady-state weight
// optWeight = wtree (time per task; the optimal rate is 1/optWeight).
func New(completions []sim.Time, optWeight rational.Rat) (*Series, error) {
	if optWeight.Sign() <= 0 {
		return nil, fmt.Errorf("window: optimal weight %v must be positive", optWeight)
	}
	for i := 1; i < len(completions); i++ {
		if completions[i] < completions[i-1] {
			return nil, fmt.Errorf("window: completions not ascending at %d", i)
		}
	}
	return &Series{
		completions: completions,
		optNum:      optWeight.Num(),
		optDen:      optWeight.Den(),
	}, nil
}

// Windows returns the number of valid window indices: window x needs task
// 2x to have completed, so indices run 1..len/2.
func (s *Series) Windows() int { return len(s.completions) / 2 }

// span returns t_{2x} − t_x for window x (1-based).
func (s *Series) span(x int) sim.Time {
	return s.completions[2*x-1] - s.completions[x-1]
}

// Rate returns the windowed rate x/(t_{2x}−t_x) for window x in 1..Windows.
// A zero time span (2x tasks finishing simultaneously) reports +Inf-like
// behaviour via a true report from AboveOptimal and is returned here as 0
// denominator guarded to the maximum representable rate.
func (s *Series) Rate(x int) float64 {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return float64(x) // degenerate; treat the span as one timestep
	}
	return float64(x) / float64(dt)
}

// Normalized returns Rate(x) divided by the optimal rate — the y-axis of
// the paper's Figure 3. Values hover around 1 when the tree runs at the
// optimal steady-state rate.
func (s *Series) Normalized(x int) float64 {
	opt, _ := new(big.Rat).SetFrac(s.optDen, s.optNum).Float64() // 1/W
	return s.Rate(x) / opt
}

// AboveOptimal reports whether the windowed rate at x strictly exceeds the
// optimal rate, compared exactly: x/(t_{2x}−t_x) > 1/W  ⇔  x·W > Δt.
func (s *Series) AboveOptimal(x int) bool {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return true
	}
	lhs := new(big.Int).Mul(big.NewInt(int64(x)), s.optNum)
	rhs := new(big.Int).Mul(big.NewInt(int64(dt)), s.optDen)
	return lhs.Cmp(rhs) > 0
}

// AtOrAboveOptimal reports whether the windowed rate at x is at least the
// optimal rate.
func (s *Series) AtOrAboveOptimal(x int) bool {
	if x < 1 || x > s.Windows() {
		panic(fmt.Sprintf("window: index %d out of range 1..%d", x, s.Windows()))
	}
	dt := s.span(x)
	if dt == 0 {
		return true
	}
	lhs := new(big.Int).Mul(big.NewInt(int64(x)), s.optNum)
	rhs := new(big.Int).Mul(big.NewInt(int64(dt)), s.optDen)
	return lhs.Cmp(rhs) >= 0
}

// Onset runs the paper's detector: scanning windows strictly after the
// threshold index, it returns the index of the second window whose rate
// exceeds the optimal rate, and ok=true. If fewer than two such windows
// exist the tree did not reach the optimal steady state and ok is false.
func (s *Series) Onset(threshold int) (window int, ok bool) {
	return s.onset(threshold, (*Series).AboveOptimal)
}

// OnsetInclusive is Onset with an at-or-above comparison. The paper's
// strict criterion relies on the discreteness wiggle of large random
// trees; a platform whose schedule is exactly periodic at the optimal rate
// never goes strictly above it and would be misclassified. Library users
// analysing individual (often small, regular) platforms should prefer this
// variant; the experiment harness keeps the strict one for fidelity.
func (s *Series) OnsetInclusive(threshold int) (window int, ok bool) {
	return s.onset(threshold, (*Series).AtOrAboveOptimal)
}

func (s *Series) onset(threshold int, above func(*Series, int) bool) (int, bool) {
	if threshold < 0 {
		threshold = DefaultThreshold
	}
	count := 0
	for x := threshold + 1; x <= s.Windows(); x++ {
		if above(s, x) {
			count++
			if count == 2 {
				return x, true
			}
		}
	}
	return 0, false
}

// Reached reports whether the run reached the optimal steady state under
// the paper's criterion with the given threshold window.
func (s *Series) Reached(threshold int) bool {
	_, ok := s.Onset(threshold)
	return ok
}

// NormalizedSeries returns the normalized rate for every window index
// 1..Windows, for plotting Figure 3-style curves.
func (s *Series) NormalizedSeries() []float64 {
	out := make([]float64, s.Windows())
	for x := 1; x <= s.Windows(); x++ {
		out[x-1] = s.Normalized(x)
	}
	return out
}
