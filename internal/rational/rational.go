// Package rational provides exact rational arithmetic for steady-state rate
// computations.
//
// The bandwidth-centric theorem (Theorem 1 of the paper) produces tree
// weights of the form
//
//	wtree = max(c0, 1 / (1/w0 + Σ 1/wi + ε/c_{p+1}))
//
// whose exact values are rationals with potentially large numerators and
// denominators. Floating point is not acceptable here: the steady-state
// onset detector compares measured windowed rates against the optimal rate
// and must never misclassify a tree because of rounding. This package wraps
// math/big with a small, value-oriented API sized to what the scheduler
// needs: construction from integers, field operations, exact comparisons,
// and ordering helpers.
//
// A Rat is immutable once created; all operations return new values. The
// zero value of Rat is the rational number 0/1 and is ready to use.
package rational

import (
	"fmt"
	"math/big"
)

// Rat is an immutable, exact rational number. The zero value is 0.
type Rat struct {
	// r is nil for the zero value, which denotes 0. Every method treats a
	// nil r as an exact zero so that var x Rat is usable without
	// initialization.
	r *big.Rat
}

// New returns the rational num/den. It panics if den is zero.
func New(num, den int64) Rat {
	if den == 0 {
		panic("rational: zero denominator")
	}
	return Rat{big.NewRat(num, den)}
}

// FromInt returns the rational n/1.
func FromInt(n int64) Rat { return Rat{new(big.Rat).SetInt64(n)} }

// FromBig returns a Rat backed by a copy of r. It panics if r is nil.
func FromBig(r *big.Rat) Rat {
	if r == nil {
		panic("rational: nil big.Rat")
	}
	return Rat{new(big.Rat).Set(r)}
}

// Zero returns the rational 0.
func Zero() Rat { return Rat{} }

// One returns the rational 1.
func One() Rat { return FromInt(1) }

// big returns the receiver as a *big.Rat without copying. Callers must not
// mutate the result.
func (x Rat) big() *big.Rat {
	if x.r == nil {
		return new(big.Rat)
	}
	return x.r
}

// Big returns a copy of x as a *big.Rat.
func (x Rat) Big() *big.Rat { return new(big.Rat).Set(x.big()) }

// Num returns a copy of the numerator of x in lowest terms.
func (x Rat) Num() *big.Int { return new(big.Int).Set(x.big().Num()) }

// Den returns a copy of the denominator of x in lowest terms. It is always
// positive.
func (x Rat) Den() *big.Int { return new(big.Int).Set(x.big().Denom()) }

// Add returns x + y.
func (x Rat) Add(y Rat) Rat { return Rat{new(big.Rat).Add(x.big(), y.big())} }

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat { return Rat{new(big.Rat).Sub(x.big(), y.big())} }

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat { return Rat{new(big.Rat).Mul(x.big(), y.big())} }

// Div returns x / y. It panics if y is zero.
func (x Rat) Div(y Rat) Rat {
	if y.Sign() == 0 {
		panic("rational: division by zero")
	}
	return Rat{new(big.Rat).Quo(x.big(), y.big())}
}

// Inv returns 1/x. It panics if x is zero.
func (x Rat) Inv() Rat {
	if x.Sign() == 0 {
		panic("rational: inverse of zero")
	}
	return Rat{new(big.Rat).Inv(x.big())}
}

// Neg returns -x.
func (x Rat) Neg() Rat { return Rat{new(big.Rat).Neg(x.big())} }

// Cmp compares x and y and returns -1, 0, or +1.
func (x Rat) Cmp(y Rat) int { return x.big().Cmp(y.big()) }

// Less reports whether x < y.
func (x Rat) Less(y Rat) bool { return x.Cmp(y) < 0 }

// LessEq reports whether x <= y.
func (x Rat) LessEq(y Rat) bool { return x.Cmp(y) <= 0 }

// Equal reports whether x == y exactly.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// Sign returns -1, 0, or +1 according to the sign of x.
func (x Rat) Sign() int { return x.big().Sign() }

// IsZero reports whether x == 0.
func (x Rat) IsZero() bool { return x.Sign() == 0 }

// Max returns the larger of x and y.
func Max(x, y Rat) Rat {
	if x.Cmp(y) >= 0 {
		return x
	}
	return y
}

// Min returns the smaller of x and y.
func Min(x, y Rat) Rat {
	if x.Cmp(y) <= 0 {
		return x
	}
	return y
}

// Sum returns the sum of all values. Sum of no values is 0.
func Sum(vs ...Rat) Rat {
	acc := new(big.Rat)
	for _, v := range vs {
		acc.Add(acc, v.big())
	}
	return Rat{acc}
}

// Float64 returns the nearest float64 to x. Intended for reporting and
// plotting only; scheduling decisions must use exact comparisons.
func (x Rat) Float64() float64 {
	f, _ := x.big().Float64()
	return f
}

// String renders x in lowest terms as "num/den", or "num" when den == 1.
func (x Rat) String() string {
	b := x.big()
	if b.IsInt() {
		return b.Num().String()
	}
	return b.RatString()
}

// Format renders x as a decimal with the given number of digits after the
// point, for human-readable reports.
func (x Rat) Format(prec int) string { return x.big().FloatString(prec) }

// Parse parses a rational from a string in "a/b" or integer or decimal
// form, as accepted by big.Rat.SetString.
func Parse(s string) (Rat, error) {
	r, ok := new(big.Rat).SetString(s)
	if !ok {
		return Rat{}, fmt.Errorf("rational: cannot parse %q", s)
	}
	return Rat{r}, nil
}

// MarshalText implements encoding.TextMarshaler using String.
func (x Rat) MarshalText() ([]byte, error) { return []byte(x.String()), nil }

// UnmarshalText implements encoding.TextUnmarshaler; it accepts the forms
// accepted by Parse.
func (x *Rat) UnmarshalText(b []byte) error {
	v, err := Parse(string(b))
	if err != nil {
		return err
	}
	*x = v
	return nil
}

// CmpIntProduct compares a*b with c*d exactly using integer arithmetic and
// returns -1, 0 or +1. It is a convenience for overflow-free comparisons of
// products of simulation times.
func CmpIntProduct(a, b, c, d int64) int {
	lhs := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	rhs := new(big.Int).Mul(big.NewInt(c), big.NewInt(d))
	return lhs.Cmp(rhs)
}
