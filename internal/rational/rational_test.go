package rational

import (
	"encoding/json"
	"math/big"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestZeroValueIsZero(t *testing.T) {
	var x Rat
	if !x.IsZero() {
		t.Fatalf("zero value IsZero() = false")
	}
	if got := x.Add(FromInt(3)); !got.Equal(FromInt(3)) {
		t.Fatalf("0 + 3 = %v, want 3", got)
	}
	if got := x.Mul(FromInt(5)); !got.IsZero() {
		t.Fatalf("0 * 5 = %v, want 0", got)
	}
	if x.String() != "0" {
		t.Fatalf("zero String() = %q, want \"0\"", x.String())
	}
}

func TestNewPanicsOnZeroDen(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(1, 0) did not panic")
		}
	}()
	New(1, 0)
}

func TestDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Div by zero did not panic")
		}
	}()
	FromInt(1).Div(Zero())
}

func TestInvPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("Inv of zero did not panic")
		}
	}()
	Zero().Inv()
}

func TestArithmeticBasics(t *testing.T) {
	tests := []struct {
		name string
		got  Rat
		want Rat
	}{
		{"add", New(1, 2).Add(New(1, 3)), New(5, 6)},
		{"sub", New(1, 2).Sub(New(1, 3)), New(1, 6)},
		{"mul", New(2, 3).Mul(New(3, 4)), New(1, 2)},
		{"div", New(2, 3).Div(New(4, 3)), New(1, 2)},
		{"inv", New(3, 7).Inv(), New(7, 3)},
		{"neg", New(3, 7).Neg(), New(-3, 7)},
		{"normalize", New(4, 8), New(1, 2)},
		{"negden", New(1, -2), New(-1, 2)},
		{"sum", Sum(New(1, 2), New(1, 3), New(1, 6)), One()},
		{"sum-empty", Sum(), Zero()},
		{"max", Max(New(1, 2), New(2, 3)), New(2, 3)},
		{"min", Min(New(1, 2), New(2, 3)), New(1, 2)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Equal(tt.want) {
				t.Fatalf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestComparisons(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !a.Less(b) || b.Less(a) {
		t.Fatalf("Less ordering wrong for %v, %v", a, b)
	}
	if !a.LessEq(a) || !a.LessEq(b) {
		t.Fatalf("LessEq wrong for %v, %v", a, b)
	}
	if a.Cmp(b) != -1 || b.Cmp(a) != 1 || a.Cmp(a) != 0 {
		t.Fatalf("Cmp wrong")
	}
	if FromInt(-2).Sign() != -1 || Zero().Sign() != 0 || One().Sign() != 1 {
		t.Fatalf("Sign wrong")
	}
}

func TestStringAndFormat(t *testing.T) {
	if got := New(7, 2).String(); got != "7/2" {
		t.Fatalf("String = %q, want 7/2", got)
	}
	if got := FromInt(9).String(); got != "9" {
		t.Fatalf("String = %q, want 9", got)
	}
	if got := New(1, 3).Format(4); got != "0.3333" {
		t.Fatalf("Format = %q, want 0.3333", got)
	}
}

func TestParse(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Rat
		ok   bool
	}{
		{"3/4", New(3, 4), true},
		{"-3/4", New(-3, 4), true},
		{"5", FromInt(5), true},
		{"0.25", New(1, 4), true},
		{"", Zero(), false},
		{"a/b", Zero(), false},
	} {
		got, err := Parse(tt.in)
		if tt.ok != (err == nil) {
			t.Fatalf("Parse(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
		}
		if err == nil && !got.Equal(tt.want) {
			t.Fatalf("Parse(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestTextRoundTripJSON(t *testing.T) {
	type wrapper struct {
		R Rat `json:"r"`
	}
	in := wrapper{New(22, 7)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out wrapper
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !out.R.Equal(in.R) {
		t.Fatalf("round trip: got %v, want %v", out.R, in.R)
	}
}

func TestUnmarshalTextRejectsGarbage(t *testing.T) {
	var r Rat
	if err := r.UnmarshalText([]byte("not-a-rat")); err == nil {
		t.Fatalf("UnmarshalText accepted garbage")
	}
}

func TestImmutability(t *testing.T) {
	a := New(1, 2)
	b := a.Add(One())
	if !a.Equal(New(1, 2)) {
		t.Fatalf("Add mutated receiver: %v", a)
	}
	if !b.Equal(New(3, 2)) {
		t.Fatalf("Add result wrong: %v", b)
	}
	// Big must return a defensive copy.
	big := a.Big()
	big.SetInt64(99)
	if !a.Equal(New(1, 2)) {
		t.Fatalf("Big exposed internal state")
	}
}

func TestFromBigCopies(t *testing.T) {
	src := big.NewRat(3, 4)
	r := FromBig(src)
	src.SetInt64(7)
	if !r.Equal(New(3, 4)) {
		t.Fatalf("FromBig did not copy: %v", r)
	}
}

func TestCmpIntProduct(t *testing.T) {
	for _, tt := range []struct {
		a, b, c, d int64
		want       int
	}{
		{2, 3, 6, 1, 0},
		{2, 3, 7, 1, -1},
		{1 << 40, 1 << 40, 1, 1, 1},     // would overflow int64
		{-(1 << 40), 1 << 40, 0, 1, -1}, // negative overflow path
		{3_000_000_000, 3_000_000_000, 9_000_000_000_000_000_000, 1, 0},
	} {
		if got := CmpIntProduct(tt.a, tt.b, tt.c, tt.d); got != tt.want {
			t.Fatalf("CmpIntProduct(%d,%d,%d,%d) = %d, want %d", tt.a, tt.b, tt.c, tt.d, got, tt.want)
		}
	}
}

// randRat generates a random non-degenerate rational for property tests.
func randRat(rng *rand.Rand) Rat {
	num := rng.Int64N(2001) - 1000
	den := rng.Int64N(1000) + 1
	return New(num, den)
}

func TestPropertyFieldLaws(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 500; i++ {
		a, b, c := randRat(rng), randRat(rng), randRat(rng)
		if !a.Add(b).Equal(b.Add(a)) {
			t.Fatalf("add not commutative: %v %v", a, b)
		}
		if !a.Mul(b).Equal(b.Mul(a)) {
			t.Fatalf("mul not commutative: %v %v", a, b)
		}
		if !a.Add(b).Add(c).Equal(a.Add(b.Add(c))) {
			t.Fatalf("add not associative")
		}
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			t.Fatalf("mul does not distribute")
		}
		if !a.Sub(a).IsZero() {
			t.Fatalf("a-a != 0")
		}
		if !a.IsZero() && !a.Div(a).Equal(One()) {
			t.Fatalf("a/a != 1")
		}
		if !a.IsZero() && !a.Inv().Inv().Equal(a) {
			t.Fatalf("inv not involutive: %v", a)
		}
	}
}

func TestPropertyOrdering(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 500; i++ {
		a, b := randRat(rng), randRat(rng)
		// Exactly one of <, ==, > holds.
		n := 0
		if a.Less(b) {
			n++
		}
		if a.Equal(b) {
			n++
		}
		if b.Less(a) {
			n++
		}
		if n != 1 {
			t.Fatalf("trichotomy violated for %v, %v", a, b)
		}
		// Adding a positive value increases.
		p := New(rng.Int64N(100)+1, rng.Int64N(100)+1)
		if !a.Less(a.Add(p)) {
			t.Fatalf("a < a+p violated: %v %v", a, p)
		}
	}
}

func TestQuickStringParseRoundTrip(t *testing.T) {
	f := func(num int64, den uint32) bool {
		d := int64(den%100000) + 1
		r := New(num%1_000_000, d)
		back, err := Parse(r.String())
		return err == nil && back.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCmpIntProductMatchesRat(t *testing.T) {
	f := func(a, b, c, d int32) bool {
		got := CmpIntProduct(int64(a), int64(b), int64(c), int64(d))
		want := FromInt(int64(a)).Mul(FromInt(int64(b))).Cmp(FromInt(int64(c)).Mul(FromInt(int64(d))))
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAdd(b *testing.B) {
	x, y := New(355, 113), New(22, 7)
	for i := 0; i < b.N; i++ {
		_ = x.Add(y)
	}
}

func BenchmarkCmp(b *testing.B) {
	x, y := New(355, 113), New(356, 113)
	for i := 0; i < b.N; i++ {
		_ = x.Cmp(y)
	}
}

func TestNumDen(t *testing.T) {
	r := New(6, -8) // normalizes to -3/4
	if r.Num().Int64() != -3 || r.Den().Int64() != 4 {
		t.Fatalf("Num/Den = %v/%v", r.Num(), r.Den())
	}
	// Returned values are copies.
	n := r.Num()
	n.SetInt64(99)
	if r.Num().Int64() != -3 {
		t.Fatalf("Num exposed internals")
	}
	var zero Rat
	if zero.Num().Sign() != 0 || zero.Den().Int64() != 1 {
		t.Fatalf("zero Num/Den = %v/%v", zero.Num(), zero.Den())
	}
}

func TestFloat64(t *testing.T) {
	if got := New(1, 4).Float64(); got != 0.25 {
		t.Fatalf("Float64 = %v", got)
	}
	if got := Zero().Float64(); got != 0 {
		t.Fatalf("zero Float64 = %v", got)
	}
}

func TestMinMaxBothBranches(t *testing.T) {
	a, b := New(1, 3), New(1, 2)
	if !Max(a, b).Equal(b) || !Max(b, a).Equal(b) {
		t.Fatalf("Max wrong")
	}
	if !Min(a, b).Equal(a) || !Min(b, a).Equal(a) {
		t.Fatalf("Min wrong")
	}
	if !Max(a, a).Equal(a) || !Min(a, a).Equal(a) {
		t.Fatalf("Max/Min of equal values wrong")
	}
}

func TestFromBigNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("FromBig(nil) did not panic")
		}
	}()
	FromBig(nil)
}
