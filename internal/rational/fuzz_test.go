package rational

import "testing"

// FuzzParse hardens Parse against arbitrary strings: it must never panic,
// and accepted values must survive a String round trip.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{"1/2", "-3/4", "0", "10000", "0.125", "", "a/b", "1/0", "9223372036854775807/3", "1e9"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		r, err := Parse(in)
		if err != nil {
			return
		}
		back, err := Parse(r.String())
		if err != nil {
			t.Fatalf("String output %q of %q does not re-parse: %v", r.String(), in, err)
		}
		if !back.Equal(r) {
			t.Fatalf("round trip changed value: %v vs %v", back, r)
		}
	})
}
