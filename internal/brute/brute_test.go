package brute

import (
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/rational"
	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

func mustSearch(t *testing.T, tr *tree.Tree, tasks int) *Result {
	t.Helper()
	r, err := Search(tr, tasks, Options{})
	if err != nil {
		t.Fatalf("Search: %v", err)
	}
	return r
}

func TestSingleNodeIsSerial(t *testing.T) {
	tr := tree.New(7)
	for tasks := 1; tasks <= 5; tasks++ {
		r := mustSearch(t, tr, tasks)
		if want := sim.Time(7 * tasks); r.Makespan != want {
			t.Fatalf("tasks=%d makespan=%d, want %d", tasks, r.Makespan, want)
		}
	}
}

func TestDelegationBeatsGreedyLocalCompute(t *testing.T) {
	// Root w=100 with a child (w=1, c=1), 2 tasks: computing locally
	// costs 100; sending both costs max(1+1, 2+1) = 3.
	tr := tree.New(100)
	tr.AddChild(tr.Root(), 1, 1)
	r := mustSearch(t, tr, 2)
	if r.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", r.Makespan)
	}
}

func TestPipelineOverlap(t *testing.T) {
	// Root w=2 and child (w=2, c=1), 2 tasks: compute one locally (2)
	// while sending the other (arrives 1, done 3) => makespan 3.
	tr := tree.New(2)
	tr.AddChild(tr.Root(), 2, 1)
	r := mustSearch(t, tr, 2)
	if r.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", r.Makespan)
	}
}

func TestTwoChildrenSplit(t *testing.T) {
	// Root w=10, children (w=2,c=1) and (w=2,c=1), 3 tasks. Send one to
	// each (arrive 1 and 2, done 3 and 4); compute one locally? 10. Or
	// send the third to the first child (arrives 3, done 5): makespan 5.
	tr := tree.New(10)
	tr.AddChild(tr.Root(), 2, 1)
	tr.AddChild(tr.Root(), 2, 1)
	r := mustSearch(t, tr, 3)
	if r.Makespan != 5 {
		t.Fatalf("makespan = %d, want 5", r.Makespan)
	}
}

func TestDeepChainRelay(t *testing.T) {
	// root -> a (c=1) -> b (c=1), b is the only fast CPU (w=1; others
	// w=50). 1 task: send root->a (1), relay a->b (2), compute (3).
	tr := tree.New(50)
	a := tr.AddChild(tr.Root(), 50, 1)
	tr.AddChild(a, 1, 1)
	r := mustSearch(t, tr, 1)
	if r.Makespan != 3 {
		t.Fatalf("makespan = %d, want 3", r.Makespan)
	}
}

func TestInputValidation(t *testing.T) {
	tr := tree.New(2)
	if _, err := Search(tr, 0, Options{}); err == nil {
		t.Fatalf("zero tasks accepted")
	}
	if _, err := Search(tr, 100, Options{}); err == nil {
		t.Fatalf("oversized instance accepted")
	}
	big := tree.New(1)
	for i := 0; i < 10; i++ {
		big.AddChild(big.Root(), 1, 1)
	}
	if _, err := Search(big, 2, Options{}); err == nil {
		t.Fatalf("oversized platform accepted")
	}
}

func TestStateBudget(t *testing.T) {
	tr := tree.New(3)
	tr.AddChild(tr.Root(), 2, 1)
	tr.AddChild(tr.Root(), 4, 2)
	if _, err := Search(tr, 8, Options{MaxStates: 10}); err == nil {
		t.Fatalf("budget exhaustion not reported")
	}
}

// tinyPlatforms are the cross-validation instances.
func tinyPlatforms() []*tree.Tree {
	var out []*tree.Tree
	t1 := tree.New(3)
	t1.AddChild(t1.Root(), 2, 1)
	out = append(out, t1)

	t2 := tree.New(4)
	t2.AddChild(t2.Root(), 2, 1)
	t2.AddChild(t2.Root(), 3, 2)
	out = append(out, t2)

	t3 := tree.New(5)
	a := t3.AddChild(t3.Root(), 3, 1)
	t3.AddChild(a, 2, 2)
	out = append(out, t3)

	t4 := tree.New(2)
	t4.AddChild(t4.Root(), 1, 3) // link slower than both CPUs
	out = append(out, t4)
	return out
}

// TestEngineNeverBeatsBruteForce: engine schedules are valid schedules, so
// the exhaustive optimum lower-bounds every protocol's makespan.
func TestEngineNeverBeatsBruteForce(t *testing.T) {
	protos := []protocol.Protocol{
		protocol.Interruptible(1),
		protocol.Interruptible(3),
		protocol.NonInterruptible(1),
		protocol.NonInterruptibleFixed(2),
	}
	for pi, tr := range tinyPlatforms() {
		for tasks := 1; tasks <= 8; tasks++ {
			opt := mustSearch(t, tr, tasks)
			for _, p := range protos {
				res, err := engine.Run(engine.Config{Tree: tr, Protocol: p, Tasks: int64(tasks)})
				if err != nil {
					t.Fatalf("engine: %v", err)
				}
				if err := Verify(tr, tasks, res.Makespan, Options{}); err != nil {
					t.Fatalf("platform %d tasks %d %v: %v", pi, tasks, p, err)
				}
				if res.Makespan < opt.Makespan {
					t.Fatalf("platform %d tasks %d %v: engine %d < brute %d", pi, tasks, p, res.Makespan, opt.Makespan)
				}
			}
		}
	}
}

// TestBruteForceRespectsSteadyStateBound: T tasks cannot finish faster
// than T·wtree − K for a startup constant K ≤ Σ(w_i + c_i): the theorem's
// rate is an upper bound on sustainable throughput.
func TestBruteForceRespectsSteadyStateBound(t *testing.T) {
	for pi, tr := range tinyPlatforms() {
		alloc := optimal.Compute(tr)
		var slack int64
		tr.Walk(func(id tree.NodeID) bool {
			slack += tr.W(id) + tr.C(id)
			return true
		})
		for tasks := 2; tasks <= 8; tasks += 2 {
			r := mustSearch(t, tr, tasks)
			bound := rational.FromInt(int64(tasks)).Mul(alloc.TreeWeight).Sub(rational.FromInt(slack))
			if rational.FromInt(int64(r.Makespan)).Less(bound) {
				t.Fatalf("platform %d tasks %d: brute makespan %d below steady-state bound %s",
					pi, tasks, r.Makespan, bound.Format(2))
			}
		}
	}
}

// TestICCloseToBruteOptimum quantifies the headline claim on small
// instances: the autonomous IC FB=3 protocol's makespan is within a small
// additive constant of the provable optimum.
func TestICCloseToBruteOptimum(t *testing.T) {
	for pi, tr := range tinyPlatforms() {
		var slack int64
		tr.Walk(func(id tree.NodeID) bool {
			slack += tr.W(id) + tr.C(id)
			return true
		})
		for tasks := 4; tasks <= 8; tasks += 2 {
			opt := mustSearch(t, tr, tasks)
			res, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: int64(tasks)})
			if err != nil {
				t.Fatalf("engine: %v", err)
			}
			if int64(res.Makespan) > int64(opt.Makespan)+slack {
				t.Fatalf("platform %d tasks %d: IC makespan %d far from optimum %d (slack %d)",
					pi, tasks, res.Makespan, opt.Makespan, slack)
			}
		}
	}
}
