// Package brute finds provably optimal schedules for tiny platforms by
// exhaustive search, cross-validating both the bandwidth-centric theorem
// and the protocol engine on small instances.
//
// The search explores every schedule valid under the paper's base model —
// at any moment a node may start computing a held task (if its CPU is
// idle) or start sending a held task to one child (if its send port is
// idle); tasks originate at the root and become usable at a child when
// their transfer completes — and returns the minimum makespan for a fixed
// task count, assuming ample buffers (as the theorem does).
//
// Two cross-checks follow, both exercised in the tests:
//
//   - no engine run may beat the brute-force makespan (engine schedules
//     are valid schedules);
//   - the brute-force makespan respects the steady-state bound
//     T·wtree − K for the additive startup constant K the theory allows.
//
// The state space is exponential; Search memoizes canonical states and
// enforces an explicit budget, so it is strictly a verification tool for
// platforms of a handful of nodes and tasks.
package brute

import (
	"fmt"
	"sort"
	"strings"

	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

// Options bounds the search.
type Options struct {
	// MaxStates caps visited states; 0 means 2 million.
	MaxStates int
}

// Result is the outcome of an exhaustive search.
type Result struct {
	// Makespan is the provably minimal completion time for the task
	// count.
	Makespan sim.Time
	// States is the number of distinct canonical states visited.
	States int
}

// arrival is an in-flight task landing at a node.
type arrival struct {
	node int16
	at   sim.Time
}

// state is the searcher's mutable configuration. All times are absolute.
type state struct {
	held      []int16    // usable tasks per node (root holds the pool)
	cpuFree   []sim.Time // when each CPU frees
	portFree  []sim.Time // when each send port frees
	arrivals  []arrival  // in-flight transfers, unordered
	completed int16
}

type searcher struct {
	t         *tree.Tree
	tasks     int16
	best      sim.Time
	visited   map[string]sim.Time
	maxStates int
	overflow  bool
}

// Search returns the minimal makespan for running tasks tasks on t under
// the base model. It returns an error if the state budget is exhausted
// before the search completes (the result would not be proven optimal).
func Search(t *tree.Tree, tasks int, o Options) (*Result, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if tasks < 1 {
		return nil, fmt.Errorf("brute: tasks %d < 1", tasks)
	}
	if tasks > 30 || t.Len() > 8 {
		return nil, fmt.Errorf("brute: %d tasks on %d nodes is beyond exhaustive search", tasks, t.Len())
	}
	maxStates := o.MaxStates
	if maxStates <= 0 {
		maxStates = 2_000_000
	}
	s := &searcher{
		t:         t,
		tasks:     int16(tasks),
		best:      1 << 40,
		visited:   make(map[string]sim.Time),
		maxStates: maxStates,
	}
	n := t.Len()
	st := &state{
		held:     make([]int16, n),
		cpuFree:  make([]sim.Time, n),
		portFree: make([]sim.Time, n),
	}
	st.held[0] = int16(tasks)
	s.search(st, 0, 0)
	if s.overflow {
		return nil, fmt.Errorf("brute: state budget %d exhausted", maxStates)
	}
	if s.best >= 1<<40 {
		return nil, fmt.Errorf("brute: no schedule found (searcher bug)")
	}
	return &Result{Makespan: s.best, States: len(s.visited)}, nil
}

// key canonicalizes a state relative to the current time. Arrivals are
// sorted so permutations collapse.
func (s *searcher) key(st *state, now sim.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", st.completed)
	for i := range st.held {
		cpu, port := st.cpuFree[i]-now, st.portFree[i]-now
		if cpu < 0 {
			cpu = 0
		}
		if port < 0 {
			port = 0
		}
		fmt.Fprintf(&b, "%d,%d,%d;", st.held[i], cpu, port)
	}
	arr := make([]arrival, len(st.arrivals))
	copy(arr, st.arrivals)
	sort.Slice(arr, func(i, j int) bool {
		if arr[i].node != arr[j].node {
			return arr[i].node < arr[j].node
		}
		return arr[i].at < arr[j].at
	})
	for _, a := range arr {
		fmt.Fprintf(&b, "a%d@%d;", a.node, a.at-now)
	}
	return b.String()
}

// search explores all decisions from (st, now). makespan is the latest
// compute completion scheduled so far.
func (s *searcher) search(st *state, now, makespan sim.Time) {
	if s.overflow {
		return
	}
	if st.completed == s.tasks {
		if makespan < s.best {
			s.best = makespan
		}
		return
	}
	if now >= s.best || makespan >= s.best {
		return
	}
	k := s.key(st, now)
	if prev, ok := s.visited[k]; ok && prev <= now {
		return
	}
	if len(s.visited) >= s.maxStates {
		s.overflow = true
		return
	}
	s.visited[k] = now

	n := s.t.Len()
	for i := 0; i < n && !s.overflow; i++ {
		if st.held[i] == 0 {
			continue
		}
		ni := tree.NodeID(i)
		// Start computing at node i.
		if st.cpuFree[i] <= now {
			done := now + sim.Time(s.t.W(ni))
			savedCPU := st.cpuFree[i]
			st.held[i]--
			st.cpuFree[i] = done
			st.completed++
			ms := makespan
			if done > ms {
				ms = done
			}
			s.search(st, now, ms)
			st.completed--
			st.cpuFree[i] = savedCPU
			st.held[i]++
		}
		// Start sending to each child.
		if st.portFree[i] <= now {
			for _, child := range s.t.Children(ni) {
				land := now + sim.Time(s.t.C(child))
				savedPort := st.portFree[i]
				st.held[i]--
				st.portFree[i] = land
				st.arrivals = append(st.arrivals, arrival{node: int16(child), at: land})
				s.search(st, now, makespan)
				st.arrivals = st.arrivals[:len(st.arrivals)-1]
				st.portFree[i] = savedPort
				st.held[i]++
			}
		}
	}

	// Wait: advance to the next event (resource freeing or arrival) and
	// deliver any arrivals due by then.
	next := sim.Time(1 << 40)
	for i := 0; i < n; i++ {
		if st.cpuFree[i] > now && st.cpuFree[i] < next {
			next = st.cpuFree[i]
		}
		if st.portFree[i] > now && st.portFree[i] < next {
			next = st.portFree[i]
		}
	}
	for _, a := range st.arrivals {
		if a.at > now && a.at < next {
			next = a.at
		}
	}
	if next == 1<<40 {
		return // nothing pending; only reachable when actions were taken above
	}
	// Deliver arrivals due at the new time.
	var delivered []int16
	rest := st.arrivals[:0:0]
	for _, a := range st.arrivals {
		if a.at <= next {
			st.held[a.node]++
			delivered = append(delivered, a.node)
		} else {
			rest = append(rest, a)
		}
	}
	savedArr := st.arrivals
	st.arrivals = rest
	s.search(st, next, makespan)
	st.arrivals = savedArr
	for _, node := range delivered {
		st.held[node]--
	}
}

// Verify reports whether makespan is consistent with Search's optimum for
// the same instance: an error means the claimed makespan beats the
// provable optimum, i.e. the claimant's model is broken.
func Verify(t *tree.Tree, tasks int, makespan sim.Time, o Options) error {
	r, err := Search(t, tasks, o)
	if err != nil {
		return err
	}
	if makespan < r.Makespan {
		return fmt.Errorf("brute: claimed makespan %d beats the provable optimum %d", makespan, r.Makespan)
	}
	return nil
}
