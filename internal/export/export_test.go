package export

import (
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"

	"bwcs/internal/experiments"
	"bwcs/internal/protocol"
	"bwcs/internal/sim"
)

func samplePopulation() experiments.Population {
	return experiments.Population{
		Protocol: protocol.Interruptible(3),
		Outcomes: []experiments.TreeOutcome{
			{Index: 0, Nodes: 40, Depth: 6, Reached: true, Onset: 310, MaxNodeBuffers: 3, MaxNodeUsed: 3, TotalBuffers: 120, UsedNodes: 12, UsedDepth: 4, Makespan: 9001},
			{Index: 1, Nodes: 11, Depth: 2, Reached: false, MaxNodeBuffers: 3, MaxNodeUsed: 2, TotalBuffers: 33, UsedNodes: 3, UsedDepth: 1, Makespan: 777},
		},
	}
}

func TestPopulationCSV(t *testing.T) {
	var b strings.Builder
	p := samplePopulation()
	if err := PopulationCSV(&b, &p); err != nil {
		t.Fatalf("PopulationCSV: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][0] != "index" || rows[0][10] != "makespan" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][3] != "true" || rows[2][3] != "false" {
		t.Fatalf("reached column wrong: %v / %v", rows[1], rows[2])
	}
	if rows[1][10] != "9001" {
		t.Fatalf("makespan = %v", rows[1][10])
	}
}

func TestSeriesCSV(t *testing.T) {
	var b strings.Builder
	err := SeriesCSV(&b, "tasks", []int64{100, 200}, []string{"ic3", "nonic"},
		[][]float64{{0.5, 0.75}, {0.1, 0.2}})
	if err != nil {
		t.Fatalf("SeriesCSV: %v", err)
	}
	rows, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(rows) != 3 || rows[0][1] != "ic3" || rows[2][2] != "0.2" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestSeriesCSVErrors(t *testing.T) {
	var b strings.Builder
	if err := SeriesCSV(&b, "x", []int64{1}, []string{"a", "b"}, [][]float64{{1}}); err == nil {
		t.Fatalf("label/series mismatch accepted")
	}
	if err := SeriesCSV(&b, "x", []int64{1, 2}, []string{"a"}, [][]float64{{1}}); err == nil {
		t.Fatalf("length mismatch accepted")
	}
}

func TestCompletionsCSV(t *testing.T) {
	var b strings.Builder
	if err := CompletionsCSV(&b, []sim.Time{5, 9, 14}); err != nil {
		t.Fatalf("CompletionsCSV: %v", err)
	}
	rows, _ := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if len(rows) != 4 || rows[3][0] != "3" || rows[3][1] != "14" {
		t.Fatalf("rows = %v", rows)
	}
}

func TestPopulationsJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	pops := []experiments.Population{samplePopulation()}
	if err := PopulationsJSON(&b, pops); err != nil {
		t.Fatalf("PopulationsJSON: %v", err)
	}
	var decoded []struct {
		Protocol string                    `json:"protocol"`
		Reached  float64                   `json:"reachedFraction"`
		Outcomes []experiments.TreeOutcome `json:"outcomes"`
	}
	if err := json.Unmarshal([]byte(b.String()), &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Protocol != "IC FB=3" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if decoded[0].Reached != 0.5 {
		t.Fatalf("reached = %v", decoded[0].Reached)
	}
	if len(decoded[0].Outcomes) != 2 || decoded[0].Outcomes[0].Makespan != 9001 {
		t.Fatalf("outcomes = %+v", decoded[0].Outcomes)
	}
}

// failAfter errors once n bytes have been written, to exercise writer
// error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errBoom
	}
	if len(p) > f.n {
		wrote := f.n
		f.n = 0
		return wrote, errBoom
	}
	f.n -= len(p)
	return len(p), nil
}

var errBoom = &boomError{}

type boomError struct{}

func (*boomError) Error() string { return "boom" }

func TestWriterFailuresSurface(t *testing.T) {
	p := samplePopulation()
	if err := PopulationCSV(&failAfter{n: 10}, &p); err == nil {
		t.Fatalf("PopulationCSV swallowed writer error")
	}
	if err := SeriesCSV(&failAfter{n: 3}, "x", []int64{1, 2}, []string{"a"}, [][]float64{{1, 2}}); err == nil {
		t.Fatalf("SeriesCSV swallowed writer error")
	}
	if err := CompletionsCSV(&failAfter{n: 3}, []sim.Time{1, 2, 3}); err == nil {
		t.Fatalf("CompletionsCSV swallowed writer error")
	}
	if err := PopulationsJSON(&failAfter{n: 3}, []experiments.Population{p}); err == nil {
		t.Fatalf("PopulationsJSON swallowed writer error")
	}
}
