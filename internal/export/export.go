// Package export writes experiment results in machine-readable formats
// (CSV and JSON) so sweeps can be analyzed outside this repository —
// plotted with external tooling, diffed across runs, or archived next to
// EXPERIMENTS.md.
package export

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"bwcs/internal/experiments"
	"bwcs/internal/sim"
)

// PopulationCSV writes one row per tree of a population sweep:
//
//	index,nodes,depth,reached,onset,max_node_buffers,max_node_used,total_buffers,used_nodes,used_depth,makespan
func PopulationCSV(w io.Writer, p *experiments.Population) error {
	cw := csv.NewWriter(w)
	header := []string{
		"index", "nodes", "depth", "reached", "onset",
		"max_node_buffers", "max_node_used", "total_buffers",
		"used_nodes", "used_depth", "makespan",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range p.Outcomes {
		o := &p.Outcomes[i]
		row := []string{
			strconv.Itoa(o.Index),
			strconv.Itoa(o.Nodes),
			strconv.Itoa(o.Depth),
			strconv.FormatBool(o.Reached),
			strconv.Itoa(o.Onset),
			strconv.FormatInt(o.MaxNodeBuffers, 10),
			strconv.FormatInt(o.MaxNodeUsed, 10),
			strconv.FormatInt(o.TotalBuffers, 10),
			strconv.Itoa(o.UsedNodes),
			strconv.Itoa(o.UsedDepth),
			strconv.FormatInt(int64(o.Makespan), 10),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SeriesCSV writes aligned series under an x column:
//
//	x,<label1>,<label2>,...
//
// Every series must have len(xs) points.
func SeriesCSV(w io.Writer, xName string, xs []int64, labels []string, series [][]float64) error {
	if len(labels) != len(series) {
		return fmt.Errorf("export: %d labels but %d series", len(labels), len(series))
	}
	for i, s := range series {
		if len(s) != len(xs) {
			return fmt.Errorf("export: series %q has %d points, want %d", labels[i], len(s), len(xs))
		}
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(append([]string{xName}, labels...)); err != nil {
		return err
	}
	row := make([]string, 1+len(series))
	for i, x := range xs {
		row[0] = strconv.FormatInt(x, 10)
		for j := range series {
			row[1+j] = strconv.FormatFloat(series[j][i], 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CompletionsCSV writes a run's completion times, one row per task:
//
//	task,time
func CompletionsCSV(w io.Writer, completions []sim.Time) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"task", "time"}); err != nil {
		return err
	}
	for i, t := range completions {
		if err := cw.Write([]string{strconv.Itoa(i + 1), strconv.FormatInt(int64(t), 10)}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// populationJSON is the JSON wire form of a population.
type populationJSON struct {
	Protocol string                    `json:"protocol"`
	Reached  float64                   `json:"reachedFraction"`
	Outcomes []experiments.TreeOutcome `json:"outcomes"`
}

// PopulationsJSON writes population sweeps as a JSON document with one
// entry per protocol.
func PopulationsJSON(w io.Writer, pops []experiments.Population) error {
	out := make([]populationJSON, len(pops))
	for i := range pops {
		out[i] = populationJSON{
			Protocol: pops[i].Protocol.Label,
			Reached:  pops[i].ReachedFraction(),
			Outcomes: pops[i].Outcomes,
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
