package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
)

// recorder collects fired events for assertions.
type recorder struct {
	fired  []record
	sim    *Simulator
	onFire func(e *Event)
}

type record struct {
	at   Time
	kind Kind
	node int32
}

func (r *recorder) Handle(e *Event) {
	r.fired = append(r.fired, record{r.sim.Now(), e.Kind, e.Node})
	if r.onFire != nil {
		r.onFire(e)
	}
}

func newSim() (*Simulator, *recorder) {
	r := &recorder{}
	s := New(r)
	r.sim = s
	return s, r
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("New(nil) did not panic")
		}
	}()
	New(nil)
}

func TestNegativeDelayPanics(t *testing.T) {
	s, _ := newSim()
	defer func() {
		if recover() == nil {
			t.Fatalf("negative delay did not panic")
		}
	}()
	s.Schedule(-1, 0, 0, 0)
}

func TestFiresInTimeOrder(t *testing.T) {
	s, r := newSim()
	s.Schedule(30, 3, 0, 0)
	s.Schedule(10, 1, 0, 0)
	s.Schedule(20, 2, 0, 0)
	s.Run(0)
	if len(r.fired) != 3 {
		t.Fatalf("fired %d events, want 3", len(r.fired))
	}
	for i, want := range []Time{10, 20, 30} {
		if r.fired[i].at != want || r.fired[i].kind != Kind(i+1) {
			t.Fatalf("event %d fired at %d kind %d", i, r.fired[i].at, r.fired[i].kind)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now = %d, want 30", s.Now())
	}
	if s.Steps() != 3 {
		t.Fatalf("Steps = %d, want 3", s.Steps())
	}
}

func TestTieBreakBySchedulingOrder(t *testing.T) {
	s, r := newSim()
	s.Schedule(5, 1, 0, 0)
	s.Schedule(5, 2, 0, 0)
	s.Schedule(5, 3, 0, 0)
	s.Run(0)
	for i := range r.fired {
		if r.fired[i].kind != Kind(i+1) {
			t.Fatalf("same-time events fired out of scheduling order: %v", r.fired)
		}
	}
}

func TestZeroDelayFiresAtNow(t *testing.T) {
	s, r := newSim()
	r.onFire = func(e *Event) {
		if e.Kind == 1 {
			s.Schedule(0, 2, 0, 0)
		}
	}
	s.Schedule(7, 1, 0, 0)
	s.Run(0)
	if len(r.fired) != 2 || r.fired[1].at != 7 {
		t.Fatalf("zero-delay chain wrong: %v", r.fired)
	}
}

func TestCancelReturnsRemaining(t *testing.T) {
	s, r := newSim()
	e := s.Schedule(50, 1, 0, 0)
	s.Schedule(10, 2, 0, 0)
	s.Run(1) // fire the kind-2 event at t=10
	if got := s.Cancel(e); got != 40 {
		t.Fatalf("Cancel remaining = %d, want 40", got)
	}
	s.Run(0)
	for _, f := range r.fired {
		if f.kind == 1 {
			t.Fatalf("cancelled event fired")
		}
	}
	if s.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0", s.Pending())
	}
}

func TestCancelTwicePanics(t *testing.T) {
	s, _ := newSim()
	e := s.Schedule(5, 1, 0, 0)
	s.Cancel(e)
	defer func() {
		if recover() == nil {
			t.Fatalf("double cancel did not panic")
		}
	}()
	s.Cancel(e)
}

func TestRunMaxSteps(t *testing.T) {
	s, r := newSim()
	for i := 0; i < 10; i++ {
		s.Schedule(Time(i), 0, int32(i), 0)
	}
	if n := s.Run(4); n != 4 {
		t.Fatalf("Run(4) fired %d", n)
	}
	if len(r.fired) != 4 || s.Pending() != 6 {
		t.Fatalf("fired %d pending %d", len(r.fired), s.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	s, r := newSim()
	s.Schedule(10, 1, 0, 0)
	s.Schedule(20, 2, 0, 0)
	s.Schedule(30, 3, 0, 0)
	s.RunUntil(20)
	if len(r.fired) != 2 {
		t.Fatalf("RunUntil fired %d, want 2", len(r.fired))
	}
	if s.Now() != 20 {
		t.Fatalf("Now = %d, want 20", s.Now())
	}
	s.RunUntil(25)
	if s.Now() != 25 || len(r.fired) != 2 {
		t.Fatalf("RunUntil(25) advanced wrong: now=%d fired=%d", s.Now(), len(r.fired))
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	s, r := newSim()
	count := 0
	r.onFire = func(e *Event) {
		if count < 5 {
			count++
			s.Schedule(3, Kind(count), 0, 0)
		}
	}
	s.Schedule(1, 0, 0, 0)
	s.Run(0)
	if len(r.fired) != 6 {
		t.Fatalf("fired %d, want 6", len(r.fired))
	}
	if last := r.fired[5].at; last != 16 {
		t.Fatalf("last fired at %d, want 16", last)
	}
}

func TestEventRecyclingKeepsPayloadCorrect(t *testing.T) {
	// Recycled events must carry the new payload, not the old one.
	s, r := newSim()
	e := s.Schedule(5, 9, 42, 7)
	s.Cancel(e)
	s.Schedule(5, 1, 1, 2) // likely reuses the same allocation
	s.Run(0)
	if len(r.fired) != 1 || r.fired[0].kind != 1 || r.fired[0].node != 1 {
		t.Fatalf("recycled event carried stale payload: %+v", r.fired)
	}
}

// TestRandomizedAgainstReferenceModel drives the heap with random
// schedule/cancel/step operations and checks the fired sequence against a
// sorted reference.
func TestRandomizedAgainstReferenceModel(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	for trial := 0; trial < 30; trial++ {
		s, r := newSim()
		type refEvent struct {
			at   Time
			seq  uint64
			kind Kind
		}
		var live []*Event
		var ref []refEvent
		seq := uint64(0)
		// Random interleaving of schedules and cancels.
		for op := 0; op < 300; op++ {
			if len(live) > 0 && rng.IntN(4) == 0 {
				i := rng.IntN(len(live))
				victim := live[i]
				// Find and drop the matching reference entry.
				for j := range ref {
					if ref[j].seq == victim.seq {
						ref = append(ref[:j], ref[j+1:]...)
						break
					}
				}
				s.Cancel(victim)
				live = append(live[:i], live[i+1:]...)
				continue
			}
			at := Time(rng.IntN(1000))
			e := s.Schedule(at, Kind(op), 0, 0)
			live = append(live, e)
			ref = append(ref, refEvent{at, e.seq, Kind(op)})
			seq++
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].at != ref[j].at {
				return ref[i].at < ref[j].at
			}
			return ref[i].seq < ref[j].seq
		})
		s.Run(0)
		if len(r.fired) != len(ref) {
			t.Fatalf("trial %d: fired %d, want %d", trial, len(r.fired), len(ref))
		}
		for i := range ref {
			if r.fired[i].at != ref[i].at || r.fired[i].kind != ref[i].kind {
				t.Fatalf("trial %d: event %d = (%d,%d), want (%d,%d)",
					trial, i, r.fired[i].at, r.fired[i].kind, ref[i].at, ref[i].kind)
			}
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []record {
		s, r := newSim()
		rng := rand.New(rand.NewPCG(1, 1))
		r.onFire = func(e *Event) {
			if s.Steps() < 200 {
				s.Schedule(Time(rng.IntN(20)), Kind(rng.IntN(5)), int32(rng.IntN(10)), 0)
			}
		}
		s.Schedule(0, 0, 0, 0)
		s.Run(0)
		return r.fired
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

type nopHandler struct{}

func (nopHandler) Handle(*Event) {}

func BenchmarkScheduleFire(b *testing.B) {
	s := New(nopHandler{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Schedule(Time(i%64), 0, 0, 0)
		if i%8 == 7 {
			s.Run(8)
		}
	}
	s.Run(0)
}

func BenchmarkScheduleCancel(b *testing.B) {
	s := New(nopHandler{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := s.Schedule(Time(i%128), 0, 0, 0)
		s.Cancel(e)
	}
}
