// Package sim is a deterministic discrete-event simulation kernel, the
// substrate on which the scheduling protocols execute.
//
// The paper evaluated its protocols on the Simgrid toolkit; this package
// is the from-scratch equivalent sized to the paper's model: an integer
// clock, a priority queue of events, and O(log n) cancellation — the
// interruptible-communication protocol shelves in-flight transfers, which
// requires removing their completion events from the queue.
//
// Determinism: events fire in (time, sequence) order, where sequence is
// the order of scheduling. Two runs over the same inputs produce identical
// event orders, which the test suite and reproducible experiments rely on.
//
// Events are allocated from an internal free list and recycled after they
// fire or are cancelled; callers must not retain an *Event after either.
package sim

import "fmt"

// Time is the simulated clock in integer timesteps. All durations in the
// paper's model (task communication and computation times) are integers,
// and interruption preserves integrality, so no fractional clock is
// needed.
type Time int64

// Kind discriminates event types. The kernel does not interpret it; the
// handler does.
type Kind int32

// Event is a scheduled occurrence. Node and Child carry handler-defined
// payload (for this repository: tree node IDs).
type Event struct {
	at    Time
	seq   uint64
	index int32 // position in the heap, -1 when not queued
	Kind  Kind
	Node  int32
	Child int32
}

// At returns the simulated time at which the event will fire.
func (e *Event) At() Time { return e.at }

// Handler receives events as they fire.
type Handler interface {
	Handle(e *Event)
}

// Simulator owns the clock and the pending-event queue. It is not safe
// for concurrent use; run one Simulator per goroutine.
type Simulator struct {
	now     Time
	seq     uint64
	heap    []*Event
	free    []*Event
	handler Handler
	steps   uint64

	// Instrumentation counters, all maintained inline on the hot paths
	// (an integer increment each, no allocation).
	peakHeap  int    // most events ever queued simultaneously
	freeHits  uint64 // Schedule calls served from the free list
	allocs    uint64 // Schedule calls that allocated a new Event
	cancelled uint64 // events removed by Cancel
}

// New returns a simulator at time 0 that dispatches to h.
func New(h Handler) *Simulator {
	if h == nil {
		panic("sim: nil handler")
	}
	return &Simulator{handler: h}
}

// Now returns the current simulated time.
func (s *Simulator) Now() Time { return s.now }

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return len(s.heap) }

// Steps returns the number of events dispatched so far.
func (s *Simulator) Steps() uint64 { return s.steps }

// PeakPending returns the most events that were ever queued at once —
// the high-water mark of the event heap.
func (s *Simulator) PeakPending() int { return s.peakHeap }

// FreeListHits returns how many Schedule calls reused a recycled Event.
func (s *Simulator) FreeListHits() uint64 { return s.freeHits }

// Allocs returns how many Schedule calls allocated a fresh Event (free
// list empty). FreeListHits + Allocs equals the total Schedule count.
func (s *Simulator) Allocs() uint64 { return s.allocs }

// Cancelled returns how many queued events were removed by Cancel.
func (s *Simulator) Cancelled() uint64 { return s.cancelled }

// Reset returns the simulator to time 0 with an empty queue so it can
// run another simulation. Events still queued are recycled, and the free
// list is kept: a sweep that reuses one Simulator per worker serves the
// next run's Schedule calls from already-allocated events instead of
// starting cold (see engine.Runner). The per-run instrumentation
// counters (Steps, PeakPending, FreeListHits, Allocs, Cancelled) restart
// at zero; FreeListHits of a warm reused simulator therefore counts
// cross-run recycling as hits, which is the point.
func (s *Simulator) Reset() {
	for _, e := range s.heap {
		s.recycle(e)
	}
	s.heap = s.heap[:0]
	s.now = 0
	s.seq = 0
	s.steps = 0
	s.peakHeap = 0
	s.freeHits = 0
	s.allocs = 0
	s.cancelled = 0
}

// Schedule queues an event delay timesteps from now and returns it. The
// returned pointer is valid until the event fires or is cancelled. Delay
// must be non-negative.
//
//bwvet:hotpath
func (s *Simulator) Schedule(delay Time, kind Kind, node, child int32) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", delay))
	}
	var e *Event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free = s.free[:n-1]
		s.freeHits++
	} else {
		e = new(Event)
		s.allocs++
	}
	e.at = s.now + delay
	e.seq = s.seq
	s.seq++
	e.Kind = kind
	e.Node = node
	e.Child = child
	s.push(e)
	return e
}

// Cancel removes a queued event and returns the time that remained until
// it would have fired. Cancelling an event that already fired or was
// already cancelled panics: the caller's bookkeeping is broken and
// continuing would corrupt the recycled event.
//
//bwvet:hotpath
func (s *Simulator) Cancel(e *Event) Time {
	if e.index < 0 {
		panic("sim: cancel of event not in queue")
	}
	remaining := e.at - s.now
	s.remove(e)
	s.recycle(e)
	s.cancelled++
	return remaining
}

// Step fires the next event, if any, and reports whether one fired.
//
//bwvet:hotpath
func (s *Simulator) Step() bool {
	if len(s.heap) == 0 {
		return false
	}
	e := s.heap[0]
	s.remove(e)
	if e.at < s.now {
		panic(fmt.Sprintf("sim: time went backwards: %d -> %d", s.now, e.at))
	}
	s.now = e.at
	s.steps++
	s.handler.Handle(e)
	s.recycle(e)
	return true
}

// Run fires events until the queue is empty or maxSteps events have fired
// (0 means no limit). It returns the number of events fired.
//
//bwvet:hotpath
func (s *Simulator) Run(maxSteps uint64) uint64 {
	fired := uint64(0)
	for maxSteps == 0 || fired < maxSteps {
		if !s.Step() {
			break
		}
		fired++
	}
	return fired
}

// RunUntil fires events with time <= t, then sets the clock to t.
//
//bwvet:hotpath
func (s *Simulator) RunUntil(t Time) {
	for len(s.heap) > 0 && s.heap[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

//bwvet:hotpath
func (s *Simulator) recycle(e *Event) {
	e.index = -1
	if len(s.free) < 1024 {
		s.free = append(s.free, e)
	}
}

// less orders the heap by (time, scheduling sequence).
func less(a, b *Event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//bwvet:hotpath
func (s *Simulator) push(e *Event) {
	e.index = int32(len(s.heap))
	s.heap = append(s.heap, e)
	if len(s.heap) > s.peakHeap {
		s.peakHeap = len(s.heap)
	}
	s.up(int(e.index))
}

//bwvet:hotpath
func (s *Simulator) remove(e *Event) {
	i := int(e.index)
	last := len(s.heap) - 1
	if i != last {
		s.heap[i] = s.heap[last]
		s.heap[i].index = int32(i)
	}
	s.heap = s.heap[:last]
	if i != last {
		if !s.up(i) {
			s.down(i)
		}
	}
	e.index = -1
}

// up restores the heap property upward from i and reports whether the
// element moved.
//
//bwvet:hotpath
func (s *Simulator) up(i int) bool {
	moved := false
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.heap[i], s.heap[parent]) {
			break
		}
		s.swap(i, parent)
		i = parent
		moved = true
	}
	return moved
}

//bwvet:hotpath
func (s *Simulator) down(i int) {
	n := len(s.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && less(s.heap[right], s.heap[left]) {
			smallest = right
		}
		if !less(s.heap[smallest], s.heap[i]) {
			return
		}
		s.swap(i, smallest)
		i = smallest
	}
}

//bwvet:hotpath
func (s *Simulator) swap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heap[i].index = int32(i)
	s.heap[j].index = int32(j)
}
