package sim

import "testing"

// TestHotPathAllocsPinned is the runtime half of the bwvet hotpathalloc
// contract for this package: every //bwvet:hotpath function on the
// schedule/step cycle (Schedule, Step, Run, RunUntil, Cancel, and the
// heap plumbing under them) runs allocation-free once the free list is
// warm. The static analyzer proves no allocating construct appears in
// the source; this probe proves the toolchain agrees at run time, so the
// two cannot drift apart (see internal/lint/hotpath_audit_test.go for
// the annotation-to-probe cross-check).
func TestHotPathAllocsPinned(t *testing.T) {
	s := New(nopHandler{})
	cycle := func() {
		// Mixed schedule ladder so push/up and remove/down/swap all
		// move entries, plus a cancellation mid-queue.
		e1 := s.Schedule(5, 1, 0, 0)
		s.Schedule(3, 2, 1, 0)
		s.Schedule(9, 3, 2, 1)
		s.Cancel(e1)
		for s.Step() {
		}
		s.Schedule(4, 1, 0, 0)
		s.RunUntil(s.Now() + 10)
		s.Schedule(2, 2, 1, 1)
		s.Run(8)
	}
	cycle() // warm the free list
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("warm schedule/step cycle allocates %.0f times, want 0 (hotpathalloc contract)", allocs)
	}
	if s.Allocs() > 4 {
		t.Fatalf("free list allocated %d events for a 4-deep ladder", s.Allocs())
	}
}
