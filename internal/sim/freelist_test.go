package sim

import "testing"

// collect is a test handler that records fired events by value.
type collect struct {
	fired []Event
}

func (c *collect) Handle(e *Event) { c.fired = append(c.fired, *e) }

// TestFreeListRecyclesAfterFire: an event that fires goes back to the
// free list and the very next Schedule reuses its memory.
func TestFreeListRecyclesAfterFire(t *testing.T) {
	h := &collect{}
	s := New(h)
	e1 := s.Schedule(5, 1, 10, 20)
	if !s.Step() {
		t.Fatalf("no event fired")
	}
	e2 := s.Schedule(7, 2, 30, 40)
	if e1 != e2 {
		t.Fatalf("fired event was not recycled: %p vs %p", e1, e2)
	}
	if got := s.FreeListHits(); got != 1 {
		t.Fatalf("free-list hits = %d, want 1", got)
	}
	if got := s.Allocs(); got != 1 {
		t.Fatalf("allocs = %d, want 1", got)
	}
	if e2.Kind != 2 || e2.Node != 30 || e2.Child != 40 || e2.At() != 5+7 {
		t.Fatalf("recycled event carries stale payload: %+v", *e2)
	}
}

// TestFreeListRecyclesAfterCancel: a cancelled event is recycled the
// same way, and Cancel reports the remaining time.
func TestFreeListRecyclesAfterCancel(t *testing.T) {
	s := New(&collect{})
	s.Schedule(1, 1, 0, 0)
	e := s.Schedule(9, 1, 1, 0)
	if !s.Step() { // advance the clock to t=1
		t.Fatalf("no event fired")
	}
	if rem := s.Cancel(e); rem != 8 {
		t.Fatalf("remaining = %d, want 8", rem)
	}
	if got := s.Cancelled(); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
	if e2 := s.Schedule(1, 1, 2, 0); e2 != e {
		t.Fatalf("cancelled event was not recycled")
	}
}

// TestResetKeepsFreeListWarm: Reset clears the clock, queue and per-run
// counters but keeps the free list, so the next run's Schedule calls are
// served from recycled events instead of allocating cold.
func TestResetKeepsFreeListWarm(t *testing.T) {
	s := New(&collect{})
	for i := 0; i < 4; i++ {
		s.Schedule(Time(i+1), 1, int32(i), 0)
	}
	s.Step()
	s.Step() // two fired, two still queued

	s.Reset()
	if s.Now() != 0 || s.Steps() != 0 || s.Pending() != 0 || s.PeakPending() != 0 {
		t.Fatalf("reset left state behind: now=%d steps=%d pending=%d peak=%d",
			s.Now(), s.Steps(), s.Pending(), s.PeakPending())
	}
	if s.FreeListHits() != 0 || s.Allocs() != 0 || s.Cancelled() != 0 {
		t.Fatalf("reset left counters: hits=%d allocs=%d cancelled=%d",
			s.FreeListHits(), s.Allocs(), s.Cancelled())
	}

	// All four events from the first run (fired and still-queued alike)
	// are now in the free list: the warm run allocates nothing.
	for i := 0; i < 4; i++ {
		s.Schedule(Time(i+1), 2, int32(i), 0)
	}
	if s.Allocs() != 0 {
		t.Fatalf("warm run allocated %d events, want 0", s.Allocs())
	}
	if s.FreeListHits() != 4 {
		t.Fatalf("warm run free-list hits = %d, want 4", s.FreeListHits())
	}
	// And the second run is a working simulation from t=0.
	if !s.Step() {
		t.Fatalf("no event fired after reset")
	}
	if s.Now() != 1 {
		t.Fatalf("clock after first post-reset event = %d, want 1", s.Now())
	}
}

// TestResetDeterministicReplay: the same schedule drives identical event
// orders before and after a Reset — reuse cannot leak state that changes
// scheduling.
func TestResetDeterministicReplay(t *testing.T) {
	run := func(s *Simulator, h *collect) []Event {
		h.fired = nil
		s.Schedule(3, 1, 1, 0)
		s.Schedule(3, 2, 2, 0)
		e := s.Schedule(1, 3, 3, 0)
		s.Schedule(2, 4, 4, 0)
		s.Cancel(e)
		s.Run(0)
		return h.fired
	}
	h := &collect{}
	s := New(h)
	first := run(s, h)
	s.Reset()
	second := run(s, h)
	if len(first) != len(second) {
		t.Fatalf("replay lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i].at != second[i].at || first[i].seq != second[i].seq ||
			first[i].Kind != second[i].Kind || first[i].Node != second[i].Node {
			t.Fatalf("event %d differs after reset: %+v vs %+v", i, first[i], second[i])
		}
	}
}

// TestCancelHeavyConsistency drives an IC-shelving-like workload — a
// rolling window of scheduled events where a fixed fraction is cancelled
// before it can fire — and checks the kernel's books stay balanced
// throughout: Pending tracks live events exactly, Steps counts only
// fired events, fired+cancelled equals scheduled, and the free list
// bounds allocations to the window's width.
func TestCancelHeavyConsistency(t *testing.T) {
	h := &collect{}
	s := New(h)

	const rounds = 5000
	live := make([]*Event, 0, 8)
	scheduled, cancelled := 0, 0
	for i := 0; i < rounds; i++ {
		// Keep an 8-wide window of pending events.
		for len(live) < 8 {
			live = append(live, s.Schedule(Time(1+(i+len(live))%13), Kind(1), int32(i), 0))
			scheduled++
		}
		if i%3 == 0 {
			// Cancel the event most recently scheduled (deterministically
			// "shelve" it), like the IC protocol preempting a send.
			e := live[len(live)-1]
			live = live[:len(live)-1]
			before := s.Pending()
			if rem := s.Cancel(e); rem < 0 {
				t.Fatalf("round %d: negative remaining %d", i, rem)
			}
			cancelled++
			if s.Pending() != before-1 {
				t.Fatalf("round %d: cancel did not shrink the queue: %d -> %d", i, before, s.Pending())
			}
		} else {
			before := s.Pending()
			stepsBefore := s.Steps()
			if !s.Step() {
				t.Fatalf("round %d: queue unexpectedly empty", i)
			}
			if s.Steps() != stepsBefore+1 {
				t.Fatalf("round %d: Steps did not advance by one", i)
			}
			if s.Pending() != before-1 {
				t.Fatalf("round %d: fire did not shrink the queue: %d -> %d", i, before, s.Pending())
			}
			// Drop the fired event from our shadow window (it is whichever
			// live pointer just fired; match by index invariants instead of
			// pointer identity, which recycling invalidates).
			fired := h.fired[len(h.fired)-1]
			found := false
			for j := range live {
				if live[j].index < 0 && live[j].Kind == fired.Kind {
					live = append(live[:j], live[j+1:]...)
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("round %d: fired event not in the shadow window", i)
			}
		}
	}

	if int(s.Steps())+cancelled+s.Pending() != scheduled {
		t.Fatalf("books unbalanced: %d fired + %d cancelled + %d pending != %d scheduled",
			s.Steps(), cancelled, s.Pending(), scheduled)
	}
	if s.FreeListHits()+s.Allocs() != uint64(scheduled) {
		t.Fatalf("free-list hits %d + allocs %d != %d schedules", s.FreeListHits(), s.Allocs(), scheduled)
	}
	// Only the window's width (plus one in-flight) ever needs distinct
	// Event allocations; everything else must come from recycling.
	if s.Allocs() > 9 {
		t.Fatalf("allocs = %d, want <= 9 (free list not recycling)", s.Allocs())
	}
	if got := s.PeakPending(); got != 8 {
		t.Fatalf("peak pending = %d, want 8", got)
	}
}
