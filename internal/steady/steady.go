// Package steady detects exact steady-state behaviour in completion
// streams by periodicity analysis.
//
// The paper's onset heuristic (window rate above optimal twice after
// window 300, package window) is empirical; its Section 4.1 leaves "more
// theoretically-justified decision criteria" as future work. This package
// supplies one: in steady state the completion stream is eventually
// periodic — there are integers b (tasks) and p (timesteps) with
//
//	t[k+b] = t[k] + p
//
// for every k in the steady interval, because the engine is a
// deterministic finite-state system driven by a constant task supply. The
// detector finds the smallest such b and the longest interval over which
// the relation holds exactly, yielding the steady-state rate b/p as an
// exact rational that can be compared to the optimal rate with no
// tolerance at all.
//
// The startup interval (before periodicity sets in) and the wind-down
// interval (after the root's pool drains) are automatically excluded: they
// are simply outside the detected periodic run.
package steady

import (
	"fmt"

	"bwcs/internal/rational"
	"bwcs/internal/sim"
)

// Options bounds the search.
type Options struct {
	// MaxBatch is the largest tasks-per-period b to try; 0 means
	// len(completions)/4.
	MaxBatch int
	// MinRun is the minimum number of consecutive tasks the periodic
	// relation must cover to count as steady state; 0 means
	// max(4*b, len/8) per candidate b.
	MinRun int
}

// Detection is the result of periodicity analysis.
type Detection struct {
	// Found reports whether a steady interval was detected.
	Found bool
	// Batch and Period: Batch tasks complete every Period timesteps.
	Batch  int
	Period sim.Time
	// Rate is Batch/Period, exact.
	Rate rational.Rat
	// Start and End delimit the detected steady interval as 1-based task
	// indices: t[k+Batch] = t[k] + Period holds for Start <= k,
	// k+Batch <= End.
	Start, End int
}

// String summarizes the detection.
func (d Detection) String() string {
	if !d.Found {
		return "no steady state detected"
	}
	return fmt.Sprintf("steady state: %d tasks per %d timesteps (rate %s) over tasks %d..%d",
		d.Batch, d.Period, d.Rate, d.Start, d.End)
}

// Class compares a detected steady rate against the optimal rate.
type Class int

const (
	// NoSteadyState means no periodic interval was found in the horizon.
	NoSteadyState Class = iota
	// Suboptimal means a steady state exists but below the optimal rate.
	Suboptimal
	// Optimal means the detected steady rate equals the optimal rate
	// exactly.
	Optimal
	// Anomalous means the detected rate exceeds the optimal rate, which
	// the bandwidth-centric theorem rules out; it indicates a modeling
	// error and exists to surface bugs.
	Anomalous
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case NoSteadyState:
		return "no-steady-state"
	case Suboptimal:
		return "suboptimal"
	case Optimal:
		return "optimal"
	case Anomalous:
		return "anomalous"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Classify compares the detection against the optimal steady-state weight
// optWeight (time per task; the optimal rate is its inverse).
func (d Detection) Classify(optWeight rational.Rat) Class {
	if !d.Found {
		return NoSteadyState
	}
	opt := optWeight.Inv()
	switch d.Rate.Cmp(opt) {
	case -1:
		return Suboptimal
	case 0:
		return Optimal
	default:
		return Anomalous
	}
}

// Detect searches completions (ascending completion times, as produced by
// the engine) for the smallest-batch periodic steady interval.
func Detect(completions []sim.Time, o Options) Detection {
	n := len(completions)
	if n < 8 {
		return Detection{}
	}
	maxB := o.MaxBatch
	if maxB <= 0 {
		maxB = n / 4
	}
	if maxB > n/2 {
		maxB = n / 2
	}
	for b := 1; b <= maxB; b++ {
		minRun := o.MinRun
		if minRun <= 0 {
			minRun = 4 * b
			if alt := n / 8; alt > minRun {
				minRun = alt
			}
		}
		if d, ok := tryBatch(completions, b, minRun); ok {
			return d
		}
	}
	return Detection{}
}

// tryBatch looks for the longest run of constant t[k+b]-t[k] and accepts
// it if it covers at least minRun tasks.
func tryBatch(t []sim.Time, b, minRun int) (Detection, bool) {
	n := len(t)
	bestStart, bestEnd := 0, 0 // 0-based k range [bestStart, bestEnd)
	var bestP sim.Time
	runStart := 0
	for k := 1; k <= n-b; k++ {
		// delta at index k-1 (0-based): t[k-1+b] - t[k-1]
		if k < n-b {
			cur := t[k+b-1] - t[k-1]
			nxt := t[k+b] - t[k]
			if cur == nxt {
				continue
			}
		}
		// Run of equal deltas ends at k-1 (0-based run [runStart, k)).
		if k-runStart > bestEnd-bestStart {
			bestStart, bestEnd = runStart, k
			bestP = t[runStart+b] - t[runStart]
		}
		runStart = k
	}
	// Tasks covered: from bestStart+1 (1-based) through bestEnd+b.
	covered := bestEnd - bestStart + b
	if bestEnd == bestStart || covered < minRun || bestP <= 0 {
		return Detection{}, false
	}
	return Detection{
		Found:  true,
		Batch:  b,
		Period: bestP,
		Rate:   rational.New(int64(b), int64(bestP)),
		Start:  bestStart + 1,
		End:    bestEnd + b,
	}, true
}
