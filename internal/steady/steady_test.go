package steady

import (
	"strings"
	"testing"

	"bwcs/internal/engine"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/rational"
	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

func times(deltas ...sim.Time) []sim.Time {
	out := make([]sim.Time, len(deltas))
	var t sim.Time
	for i, d := range deltas {
		t += d
		out[i] = t
	}
	return out
}

func repeat(pattern []sim.Time, n int) []sim.Time {
	var deltas []sim.Time
	for i := 0; i < n; i++ {
		deltas = append(deltas, pattern...)
	}
	return times(deltas...)
}

func TestUniformStreamIsBatchOne(t *testing.T) {
	d := Detect(repeat([]sim.Time{5}, 100), Options{})
	if !d.Found || d.Batch != 1 || d.Period != 5 {
		t.Fatalf("detection = %+v", d)
	}
	if !d.Rate.Equal(rational.New(1, 5)) {
		t.Fatalf("rate = %v", d.Rate)
	}
	if d.Start != 1 || d.End != 100 {
		t.Fatalf("interval = %d..%d", d.Start, d.End)
	}
}

func TestAlternatingDeltasNeedBatchTwo(t *testing.T) {
	// Deltas 3,5,3,5...: t[k+1]-t[k] is not constant but t[k+2]-t[k] = 8.
	d := Detect(repeat([]sim.Time{3, 5}, 60), Options{})
	if !d.Found || d.Batch != 2 || d.Period != 8 {
		t.Fatalf("detection = %+v", d)
	}
	if !d.Rate.Equal(rational.New(1, 4)) {
		t.Fatalf("rate = %v", d.Rate)
	}
}

func TestStartupExcluded(t *testing.T) {
	// Irregular startup, then strictly periodic.
	startup := []sim.Time{17, 2, 9, 31, 4}
	var deltas []sim.Time
	deltas = append(deltas, startup...)
	for i := 0; i < 100; i++ {
		deltas = append(deltas, 7)
	}
	d := Detect(times(deltas...), Options{})
	if !d.Found || d.Batch != 1 || d.Period != 7 {
		t.Fatalf("detection = %+v", d)
	}
	if d.Start <= len(startup)-1 {
		t.Fatalf("steady interval claims the startup: start %d", d.Start)
	}
}

func TestWindDownExcluded(t *testing.T) {
	var deltas []sim.Time
	for i := 0; i < 100; i++ {
		deltas = append(deltas, 7)
	}
	deltas = append(deltas, 19, 44, 3) // wind-down stragglers
	d := Detect(times(deltas...), Options{})
	if !d.Found || d.Period != 7 {
		t.Fatalf("detection = %+v", d)
	}
	if d.End > 101 {
		t.Fatalf("steady interval claims the wind-down: end %d", d.End)
	}
}

func TestNoPeriodicity(t *testing.T) {
	// Strictly growing deltas never repeat.
	var deltas []sim.Time
	for i := 1; i <= 60; i++ {
		deltas = append(deltas, sim.Time(i))
	}
	d := Detect(times(deltas...), Options{})
	if d.Found {
		t.Fatalf("detected phantom steady state: %+v", d)
	}
	if d.Classify(rational.One()) != NoSteadyState {
		t.Fatalf("classify = %v", d.Classify(rational.One()))
	}
}

func TestTooShortStream(t *testing.T) {
	if d := Detect(times(1, 1, 1), Options{}); d.Found {
		t.Fatalf("found steady state in 3 samples")
	}
}

func TestMinRunRespected(t *testing.T) {
	// 10 periodic tasks, but demand a 50-task run.
	d := Detect(repeat([]sim.Time{4}, 10), Options{MinRun: 50})
	if d.Found {
		t.Fatalf("short run accepted: %+v", d)
	}
}

func TestClassify(t *testing.T) {
	d := Detection{Found: true, Rate: rational.New(1, 4)}
	// Optimal weight 4 => optimal rate 1/4.
	if got := d.Classify(rational.FromInt(4)); got != Optimal {
		t.Fatalf("Classify = %v, want optimal", got)
	}
	if got := d.Classify(rational.FromInt(3)); got != Suboptimal {
		t.Fatalf("Classify = %v, want suboptimal", got)
	}
	if got := d.Classify(rational.FromInt(5)); got != Anomalous {
		t.Fatalf("Classify = %v, want anomalous", got)
	}
	for c, want := range map[Class]string{
		NoSteadyState: "no-steady-state", Suboptimal: "suboptimal",
		Optimal: "optimal", Anomalous: "anomalous",
	} {
		if c.String() != want {
			t.Fatalf("%d.String() = %q", int(c), c.String())
		}
	}
	if !strings.Contains(Class(9).String(), "9") {
		t.Fatalf("unknown class string")
	}
}

func TestDetectionString(t *testing.T) {
	if got := (Detection{}).String(); !strings.Contains(got, "no steady state") {
		t.Fatalf("String = %q", got)
	}
	d := Detection{Found: true, Batch: 2, Period: 8, Rate: rational.New(1, 4), Start: 5, End: 100}
	if got := d.String(); !strings.Contains(got, "2 tasks per 8") {
		t.Fatalf("String = %q", got)
	}
}

// TestEngineRunsReachExactOptimalSteadyState is the payoff: on platforms
// the protocol handles perfectly, the detected periodic rate equals the
// theorem's optimal rate exactly — no threshold, no tolerance.
func TestEngineRunsReachExactOptimalSteadyState(t *testing.T) {
	platforms := []func() *tree.Tree{
		func() *tree.Tree { // simple saturated fork
			tr := tree.New(10)
			tr.AddChild(tr.Root(), 5, 1)
			tr.AddChild(tr.Root(), 2, 8)
			return tr
		},
		func() *tree.Tree { // chain
			tr := tree.New(6)
			a := tr.AddChild(tr.Root(), 4, 2)
			tr.AddChild(a, 4, 2)
			return tr
		},
	}
	for i, build := range platforms {
		tr := build()
		res, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 3000})
		if err != nil {
			t.Fatalf("platform %d: %v", i, err)
		}
		opt := optimal.Compute(tr)
		d := Detect(res.Completions, Options{})
		if !d.Found {
			t.Fatalf("platform %d: no steady state found", i)
		}
		if got := d.Classify(opt.TreeWeight); got != Optimal {
			t.Fatalf("platform %d: class %v, detected rate %v vs optimal %v", i, got, d.Rate, opt.Rate)
		}
	}
}

// TestRandomTreesNeverAnomalous cross-validates engine and theorem: no
// detected steady rate may exceed the optimal rate.
func TestRandomTreesNeverAnomalous(t *testing.T) {
	params := randtree.Params{MinNodes: 5, MaxNodes: 60, MinComm: 1, MaxComm: 40, Comp: 1000}
	for i := 0; i < 15; i++ {
		tr := randtree.TreeAt(params, 99, i)
		res, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 2000})
		if err != nil {
			t.Fatalf("tree %d: %v", i, err)
		}
		d := Detect(res.Completions, Options{})
		if d.Classify(optimal.Compute(tr).TreeWeight) == Anomalous {
			t.Fatalf("tree %d: detected rate %v above optimal", i, d.Rate)
		}
	}
}
