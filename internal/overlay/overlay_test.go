package overlay

import (
	"testing"

	"bwcs/internal/optimal"
	"bwcs/internal/tree"
)

// diamond returns a 4-host graph:
//
//	0 --1-- 1 --1-- 3
//	0 --5-- 2 --1-- 3
func diamond() *Graph {
	g := NewGraph([]int64{10, 10, 10, 10})
	g.AddLink(0, 1, 1)
	g.AddLink(1, 3, 1)
	g.AddLink(0, 2, 5)
	g.AddLink(2, 3, 1)
	return g
}

func TestGraphBasics(t *testing.T) {
	g := diamond()
	if g.Hosts() != 4 {
		t.Fatalf("Hosts = %d", g.Hosts())
	}
	if g.Compute(2) != 10 {
		t.Fatalf("Compute(2) = %d", g.Compute(2))
	}
	if !g.Connected() {
		t.Fatalf("diamond not connected")
	}
	lonely := NewGraph([]int64{1, 1})
	if lonely.Connected() {
		t.Fatalf("linkless graph reported connected")
	}
}

func TestGraphPanics(t *testing.T) {
	cases := map[string]func(){
		"no hosts":     func() { NewGraph(nil) },
		"zero compute": func() { NewGraph([]int64{0}) },
		"self link":    func() { diamond().AddLink(1, 1, 1) },
		"bad host":     func() { diamond().AddLink(0, 9, 1) },
		"zero cost":    func() { diamond().AddLink(0, 1, 0) },
		"bad params":   func() { Random(RandomParams{}, 1) },
	}
	for name, fn := range cases {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("no panic")
				}
			}()
			fn()
		})
	}
}

func TestBuildStrategiesProduceValidSpanningTrees(t *testing.T) {
	g := Random(RandomParams{Hosts: 40, MinComm: 1, MaxComm: 30, Comp: 500, ExtraLinks: 60}, 9)
	for _, s := range Strategies() {
		tr, hostOf, err := Build(g, 0, s, 3)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: invalid tree: %v", s, err)
		}
		if tr.Len() != g.Hosts() {
			t.Fatalf("%s: tree has %d nodes, want %d", s, tr.Len(), g.Hosts())
		}
		if len(hostOf) != g.Hosts() {
			t.Fatalf("%s: hostOf has %d entries", s, len(hostOf))
		}
		seen := make([]bool, g.Hosts())
		for node, h := range hostOf {
			if seen[h] {
				t.Fatalf("%s: host %d mapped twice", s, h)
			}
			seen[h] = true
			if tr.W(tree.NodeID(node)) != g.Compute(h) {
				t.Fatalf("%s: node %d compute mismatch", s, node)
			}
		}
	}
}

func TestBFSMinimizesHops(t *testing.T) {
	g := diamond()
	tr, _, err := Build(g, 0, BFS, 0)
	if err != nil {
		t.Fatalf("BFS: %v", err)
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("BFS depth = %d, want 2", tr.MaxDepth())
	}
}

func TestStarIsFlatWithRoutedCosts(t *testing.T) {
	g := diamond()
	tr, hostOf, err := Build(g, 0, Star, 0)
	if err != nil {
		t.Fatalf("Star: %v", err)
	}
	if tr.MaxDepth() != 1 {
		t.Fatalf("Star depth = %d, want 1", tr.MaxDepth())
	}
	// Host 3's shortest path is 0-1-3 with cost 2.
	for node, h := range hostOf {
		if h == 3 && tr.C(tree.NodeID(node)) != 2 {
			t.Fatalf("host 3 routed cost = %d, want 2", tr.C(tree.NodeID(node)))
		}
	}
}

func TestMinCommPicksCheapLinks(t *testing.T) {
	g := diamond()
	tr, hostOf, err := Build(g, 0, MinComm, 0)
	if err != nil {
		t.Fatalf("MinComm: %v", err)
	}
	// The expensive 0-2 (cost 5) link must be avoided: host 2 attaches via
	// 3 with cost 1.
	var total int64
	tr.Walk(func(id tree.NodeID) bool {
		total += tr.C(id)
		return true
	})
	if total != 3 {
		t.Fatalf("MinComm total link cost = %d, want 3", total)
	}
	_ = hostOf
}

func TestBuildErrors(t *testing.T) {
	g := diamond()
	if _, _, err := Build(g, 9, BFS, 0); err == nil {
		t.Fatalf("bad root accepted")
	}
	if _, _, err := Build(g, 0, Strategy("nope"), 0); err == nil {
		t.Fatalf("unknown strategy accepted")
	}
	disc := NewGraph([]int64{1, 1})
	if _, _, err := Build(disc, 0, BFS, 0); err == nil {
		t.Fatalf("disconnected graph accepted")
	}
}

func TestCompare(t *testing.T) {
	g := Random(RandomParams{Hosts: 60, MinComm: 1, MaxComm: 50, Comp: 2000, ExtraLinks: 120}, 5)
	comps, err := Compare(g, 0, 1)
	if err != nil {
		t.Fatalf("Compare: %v", err)
	}
	if len(comps) != len(Strategies()) {
		t.Fatalf("comparisons = %d", len(comps))
	}
	for _, c := range comps {
		if c.Rate.Sign() <= 0 {
			t.Fatalf("%s: non-positive rate", c.Strategy)
		}
	}
	// Every overlay is bounded by the sum of all CPU rates.
	var allCPU float64
	for h := 0; h < g.Hosts(); h++ {
		allCPU += 1 / float64(g.Compute(h))
	}
	for _, c := range comps {
		if c.Rate.Float64() > allCPU*1.0001 {
			t.Fatalf("%s: rate %v above CPU bound %v", c.Strategy, c.Rate.Float64(), allCPU)
		}
	}
}

func TestRandomGraphsAreConnectedAndDeterministic(t *testing.T) {
	p := RandomParams{Hosts: 30, MinComm: 1, MaxComm: 9, Comp: 300, ExtraLinks: 10}
	a := Random(p, 42)
	b := Random(p, 42)
	if !a.Connected() {
		t.Fatalf("random graph disconnected")
	}
	for h := 0; h < p.Hosts; h++ {
		if a.Compute(h) != b.Compute(h) {
			t.Fatalf("same-seed graphs differ at host %d", h)
		}
	}
	ta, _, _ := Build(a, 0, MinComm, 0)
	tb, _, _ := Build(b, 0, MinComm, 0)
	if !optimal.Compute(ta).Rate.Equal(optimal.Compute(tb).Rate) {
		t.Fatalf("same-seed overlays differ")
	}
}

func TestSingleHostGraph(t *testing.T) {
	g := NewGraph([]int64{7})
	for _, s := range Strategies() {
		tr, _, err := Build(g, 0, s, 0)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if tr.Len() != 1 {
			t.Fatalf("%s: %d nodes", s, tr.Len())
		}
	}
}
