// Package overlay addresses the paper's stated future work: "One question
// we have not addressed is that of the tree overlay network. Some trees
// are bound to be more effective than others."
//
// It models the physical platform as an undirected host graph with
// per-host compute times and per-link communication times, and builds
// candidate tree overlays rooted at the data repository with several
// strategies. Overlay quality is judged by the optimal steady-state rate
// of the resulting tree (package optimal) — the rate an ideal scheduler
// could extract — which is exactly the figure of merit the paper's
// protocols then approach autonomously.
//
// Spanning strategies (BFS, MinComm, RandomSpanning) use physical links
// only, as in the paper's Figure 1. The Star strategy routes overlay edges
// over shortest physical paths (cost = summed link time), modeling
// tunneled connections to the repository.
package overlay

import (
	"container/heap"
	"fmt"
	"math/rand/v2"

	"bwcs/internal/optimal"
	"bwcs/internal/rational"
	"bwcs/internal/tree"
)

// Graph is an undirected host graph. Hosts are numbered 0..n-1.
type Graph struct {
	compute []int64
	adj     [][]link
}

type link struct {
	to int
	c  int64
}

// NewGraph returns a graph over len(computeTimes) hosts with no links.
// Every compute time must be positive.
func NewGraph(computeTimes []int64) *Graph {
	if len(computeTimes) == 0 {
		panic("overlay: no hosts")
	}
	for i, w := range computeTimes {
		if w <= 0 {
			panic(fmt.Sprintf("overlay: host %d compute time %d must be positive", i, w))
		}
	}
	g := &Graph{
		compute: append([]int64(nil), computeTimes...),
		adj:     make([][]link, len(computeTimes)),
	}
	return g
}

// Hosts returns the number of hosts.
func (g *Graph) Hosts() int { return len(g.compute) }

// Compute returns host h's task compute time.
func (g *Graph) Compute(h int) int64 { return g.compute[h] }

// AddLink adds an undirected link between a and b with task communication
// time c. Parallel links are allowed; strategies use the cheapest.
func (g *Graph) AddLink(a, b int, c int64) {
	if a == b {
		panic("overlay: self link")
	}
	if a < 0 || a >= len(g.adj) || b < 0 || b >= len(g.adj) {
		panic(fmt.Sprintf("overlay: link %d-%d outside 0..%d", a, b, len(g.adj)-1))
	}
	if c <= 0 {
		panic(fmt.Sprintf("overlay: link time %d must be positive", c))
	}
	g.adj[a] = append(g.adj[a], link{to: b, c: c})
	g.adj[b] = append(g.adj[b], link{to: a, c: c})
}

// Connected reports whether every host is reachable from host 0.
func (g *Graph) Connected() bool {
	seen := make([]bool, g.Hosts())
	stack := []int{0}
	seen[0] = true
	count := 0
	for len(stack) > 0 {
		h := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		count++
		for _, l := range g.adj[h] {
			if !seen[l.to] {
				seen[l.to] = true
				stack = append(stack, l.to)
			}
		}
	}
	return count == g.Hosts()
}

// RandomParams configures Random graph generation.
type RandomParams struct {
	Hosts      int
	MinComm    int64 // link times uniform in [MinComm, MaxComm]
	MaxComm    int64
	Comp       int64 // compute times uniform in [Comp/100, Comp], as in randtree
	ExtraLinks int   // links beyond the connecting spanning set
}

// Random generates a connected random host graph: a random spanning tree
// plus ExtraLinks additional random links, with weights drawn as in the
// paper's tree generator.
func Random(p RandomParams, seed uint64) *Graph {
	if p.Hosts < 1 || p.MinComm < 1 || p.MaxComm < p.MinComm || p.Comp < 1 || p.ExtraLinks < 0 {
		panic(fmt.Sprintf("overlay: bad random params %+v", p))
	}
	rng := rand.New(rand.NewPCG(seed, 0x2545f4914f6cdd1d))
	lo := p.Comp / 100
	if lo < 1 {
		lo = 1
	}
	compute := make([]int64, p.Hosts)
	for i := range compute {
		compute[i] = lo + rng.Int64N(p.Comp-lo+1)
	}
	g := NewGraph(compute)
	c := func() int64 { return p.MinComm + rng.Int64N(p.MaxComm-p.MinComm+1) }
	// Random connecting set: attach each host i>0 to a random earlier one.
	for i := 1; i < p.Hosts; i++ {
		g.AddLink(i, rng.IntN(i), c())
	}
	for i := 0; i < p.ExtraLinks && p.Hosts > 2; i++ {
		a := rng.IntN(p.Hosts)
		b := rng.IntN(p.Hosts)
		if a == b {
			continue
		}
		g.AddLink(a, b, c())
	}
	return g
}

// Strategy names an overlay construction method.
type Strategy string

const (
	// BFS builds a breadth-first spanning tree from the root: few hops,
	// arbitrary link costs.
	BFS Strategy = "bfs"
	// MinComm builds the minimum-communication spanning tree (Prim),
	// greedily favouring the cheapest links.
	MinComm Strategy = "min-comm"
	// RandomSpanning builds a random spanning tree, the unengineered
	// baseline.
	RandomSpanning Strategy = "random"
	// Star connects every host directly to the root over its shortest
	// physical path (Dijkstra cost as overlay edge weight), maximizing
	// parallel feeding at the price of congestion-oblivious long edges.
	Star Strategy = "star"
)

// Strategies lists all construction methods in a stable order.
func Strategies() []Strategy {
	return []Strategy{BFS, MinComm, RandomSpanning, Star}
}

// Build constructs the overlay tree for the strategy, rooted at host root.
// hostOf maps each tree node back to its host. The graph must be
// connected.
func Build(g *Graph, root int, s Strategy, seed uint64) (t *tree.Tree, hostOf []int, err error) {
	if root < 0 || root >= g.Hosts() {
		return nil, nil, fmt.Errorf("overlay: root %d outside 0..%d", root, g.Hosts()-1)
	}
	if !g.Connected() {
		return nil, nil, fmt.Errorf("overlay: graph not connected")
	}
	switch s {
	case BFS:
		return buildBFS(g, root)
	case MinComm:
		return buildPrim(g, root)
	case RandomSpanning:
		return buildRandom(g, root, seed)
	case Star:
		return buildStar(g, root)
	default:
		return nil, nil, fmt.Errorf("overlay: unknown strategy %q", s)
	}
}

// grow converts parent/cost arrays into a tree.Tree rooted at root.
func grow(g *Graph, root int, parent []int, cost []int64) (*tree.Tree, []int, error) {
	t := tree.New(g.compute[root])
	ids := make([]tree.NodeID, g.Hosts())
	hostOf := []int{root}
	for i := range ids {
		ids[i] = tree.None
	}
	ids[root] = t.Root()
	// Repeatedly attach hosts whose parents are already in the tree.
	remaining := g.Hosts() - 1
	for remaining > 0 {
		progress := false
		for h := 0; h < g.Hosts(); h++ {
			if ids[h] != tree.None || h == root {
				continue
			}
			p := parent[h]
			if p < 0 || ids[p] == tree.None {
				continue
			}
			ids[h] = t.AddChild(ids[p], g.compute[h], cost[h])
			hostOf = append(hostOf, h)
			remaining--
			progress = true
		}
		if !progress {
			return nil, nil, fmt.Errorf("overlay: disconnected parent assignment")
		}
	}
	return t, hostOf, nil
}

func buildBFS(g *Graph, root int) (*tree.Tree, []int, error) {
	parent := make([]int, g.Hosts())
	cost := make([]int64, g.Hosts())
	for i := range parent {
		parent[i] = -1
	}
	queue := []int{root}
	visited := make([]bool, g.Hosts())
	visited[root] = true
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		for _, l := range g.adj[h] {
			if visited[l.to] {
				continue
			}
			visited[l.to] = true
			parent[l.to] = h
			cost[l.to] = l.c
			queue = append(queue, l.to)
		}
	}
	return grow(g, root, parent, cost)
}

// pqItem is a priority-queue entry shared by Prim and Dijkstra.
type pqItem struct {
	host int
	key  int64
}

type pq []pqItem

func (q pq) Len() int           { return len(q) }
func (q pq) Less(i, j int) bool { return q[i].key < q[j].key }
func (q pq) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x any)        { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }

func buildPrim(g *Graph, root int) (*tree.Tree, []int, error) {
	const inf = int64(1) << 62
	parent := make([]int, g.Hosts())
	cost := make([]int64, g.Hosts())
	inTree := make([]bool, g.Hosts())
	for i := range parent {
		parent[i] = -1
		cost[i] = inf
	}
	cost[root] = 0
	q := &pq{{root, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if inTree[it.host] {
			continue
		}
		inTree[it.host] = true
		for _, l := range g.adj[it.host] {
			if !inTree[l.to] && l.c < cost[l.to] {
				cost[l.to] = l.c
				parent[l.to] = it.host
				heap.Push(q, pqItem{l.to, l.c})
			}
		}
	}
	return grow(g, root, parent, cost)
}

func buildRandom(g *Graph, root int, seed uint64) (*tree.Tree, []int, error) {
	rng := rand.New(rand.NewPCG(seed, 0x9e3779b97f4a7c15))
	parent := make([]int, g.Hosts())
	cost := make([]int64, g.Hosts())
	for i := range parent {
		parent[i] = -1
	}
	visited := make([]bool, g.Hosts())
	visited[root] = true
	frontier := []int{root}
	for len(frontier) > 0 {
		// Pick a random visited host with an unvisited neighbour.
		i := rng.IntN(len(frontier))
		h := frontier[i]
		var cands []link
		for _, l := range g.adj[h] {
			if !visited[l.to] {
				cands = append(cands, l)
			}
		}
		if len(cands) == 0 {
			frontier[i] = frontier[len(frontier)-1]
			frontier = frontier[:len(frontier)-1]
			continue
		}
		l := cands[rng.IntN(len(cands))]
		visited[l.to] = true
		parent[l.to] = h
		cost[l.to] = l.c
		frontier = append(frontier, l.to)
	}
	return grow(g, root, parent, cost)
}

func buildStar(g *Graph, root int) (*tree.Tree, []int, error) {
	// Dijkstra from the root; each host becomes a direct child with the
	// shortest-path cost as its communication weight.
	const inf = int64(1) << 62
	dist := make([]int64, g.Hosts())
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	q := &pq{{root, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.key > dist[it.host] {
			continue
		}
		for _, l := range g.adj[it.host] {
			if d := it.key + l.c; d < dist[l.to] {
				dist[l.to] = d
				heap.Push(q, pqItem{l.to, d})
			}
		}
	}
	parent := make([]int, g.Hosts())
	for i := range parent {
		parent[i] = root
	}
	parent[root] = -1
	return grow(g, root, parent, dist)
}

// Comparison is the optimal steady-state rate each strategy achieves on
// one graph.
type Comparison struct {
	Strategy Strategy
	Rate     rational.Rat
	Depth    int
}

// Compare builds every strategy's overlay on g and returns their optimal
// rates, in Strategies() order.
func Compare(g *Graph, root int, seed uint64) ([]Comparison, error) {
	var out []Comparison
	for _, s := range Strategies() {
		t, _, err := Build(g, root, s, seed)
		if err != nil {
			return nil, fmt.Errorf("overlay %s: %w", s, err)
		}
		out = append(out, Comparison{
			Strategy: s,
			Rate:     optimal.Weight(t).Inv(),
			Depth:    t.MaxDepth(),
		})
	}
	return out, nil
}
