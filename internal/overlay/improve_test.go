package overlay

import (
	"testing"

	"bwcs/internal/optimal"
)

func TestImproveNeverDecreasesRate(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := Random(RandomParams{Hosts: 30, MinComm: 1, MaxComm: 60, Comp: 800, ExtraLinks: 60}, seed)
		for _, s := range Strategies() {
			base, _, err := Build(g, 0, s, seed)
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			baseRate := optimal.Compute(base).Rate
			res, err := Improve(g, 0, s, seed, 0)
			if err != nil {
				t.Fatalf("%s: Improve: %v", s, err)
			}
			if res.Rate.Less(baseRate) {
				t.Fatalf("seed %d %s: improved rate %v below base %v", seed, s, res.Rate, baseRate)
			}
			if err := res.Tree.Validate(); err != nil {
				t.Fatalf("%s: improved tree invalid: %v", s, err)
			}
			if res.Tree.Len() != g.Hosts() {
				t.Fatalf("%s: improved tree dropped hosts: %d of %d", s, res.Tree.Len(), g.Hosts())
			}
			// Rate reported matches the tree returned.
			if !optimal.Compute(res.Tree).Rate.Equal(res.Rate) {
				t.Fatalf("%s: reported rate disagrees with tree", s)
			}
		}
	}
}

func TestImproveFixesBadOverlay(t *testing.T) {
	// A graph where random spanning trees are usually poor: a hub with
	// cheap links plus expensive shortcuts. Local search must close most
	// of the gap to the best constructive strategy.
	g := Random(RandomParams{Hosts: 40, MinComm: 1, MaxComm: 80, Comp: 500, ExtraLinks: 120}, 9)
	worst, _, err := Build(g, 0, RandomSpanning, 9)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	worstRate := optimal.Compute(worst).Rate
	res, err := Improve(g, 0, RandomSpanning, 9, 0)
	if err != nil {
		t.Fatalf("Improve: %v", err)
	}
	if !worstRate.Less(res.Rate) {
		t.Fatalf("local search found no improvement over a random spanning tree (rate %v)", worstRate)
	}
	if res.Moves == 0 {
		t.Fatalf("no moves accepted despite rate change")
	}
}

func TestImproveMoveBudget(t *testing.T) {
	g := Random(RandomParams{Hosts: 30, MinComm: 1, MaxComm: 80, Comp: 500, ExtraLinks: 80}, 5)
	res, err := Improve(g, 0, RandomSpanning, 5, 2)
	if err != nil {
		t.Fatalf("Improve: %v", err)
	}
	if res.Moves > 2 {
		t.Fatalf("budget exceeded: %d moves", res.Moves)
	}
}

func TestImproveErrors(t *testing.T) {
	g := diamond()
	if _, err := Improve(g, 99, BFS, 0, 0); err == nil {
		t.Fatalf("bad root accepted")
	}
	if _, err := Improve(g, 0, Strategy("nope"), 0, 0); err == nil {
		t.Fatalf("unknown strategy accepted")
	}
}
