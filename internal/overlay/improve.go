package overlay

import (
	"fmt"

	"bwcs/internal/optimal"
	"bwcs/internal/rational"
	"bwcs/internal/tree"
)

// ImproveResult is the outcome of local-search overlay optimization.
type ImproveResult struct {
	Tree   *tree.Tree
	HostOf []int
	Rate   rational.Rat
	// Moves is the number of accepted re-parenting moves.
	Moves int
}

// Improve hill-climbs an overlay built by the given strategy: it
// repeatedly tries re-parenting one host (with its entire subtree) onto a
// physical neighbour outside that subtree, and accepts any move that
// strictly raises the tree's optimal steady-state rate, until no move
// improves or maxMoves have been accepted (0 = no limit). First-improvement
// search; deterministic given the inputs.
//
// This extends the paper's future-work question "on what basis the overlay
// network should be constructed": construction strategies give starting
// points, and local search quantifies how much headroom each leaves.
func Improve(g *Graph, root int, s Strategy, seed uint64, maxMoves int) (*ImproveResult, error) {
	t, hostOf, err := Build(g, root, s, seed)
	if err != nil {
		return nil, err
	}
	parent, cost, err := parentArrays(g, t, hostOf)
	if err != nil {
		return nil, err
	}

	// Cheapest physical link between each adjacent host pair.
	minLink := make(map[[2]int]int64)
	for u := 0; u < g.Hosts(); u++ {
		for _, l := range g.adj[u] {
			k := [2]int{u, l.to}
			if cur, ok := minLink[k]; !ok || l.c < cur {
				minLink[k] = l.c
			}
		}
	}

	rate := overlayRate(g, root, parent, cost)
	moves := 0
	improved := true
	for improved && (maxMoves <= 0 || moves < maxMoves) {
		improved = false
		for v := 0; v < g.Hosts() && !improved; v++ {
			if v == root {
				continue
			}
			for _, l := range g.adj[v] {
				u := l.to
				if u == parent[v] || inSubtree(parent, v, u) {
					continue
				}
				c := minLink[[2]int{u, v}]
				oldParent, oldCost := parent[v], cost[v]
				parent[v], cost[v] = u, c
				if candidate := overlayRate(g, root, parent, cost); rate.Less(candidate) {
					rate = candidate
					moves++
					improved = true
					break
				}
				parent[v], cost[v] = oldParent, oldCost
			}
		}
	}

	finalTree, finalHosts, err := grow(g, root, parent, cost)
	if err != nil {
		return nil, err
	}
	return &ImproveResult{Tree: finalTree, HostOf: finalHosts, Rate: rate, Moves: moves}, nil
}

// parentArrays converts a built overlay back into host-indexed parent and
// cost arrays.
func parentArrays(g *Graph, t *tree.Tree, hostOf []int) (parent []int, cost []int64, err error) {
	if len(hostOf) != g.Hosts() || t.Len() != g.Hosts() {
		return nil, nil, fmt.Errorf("overlay: tree/host mapping size mismatch")
	}
	parent = make([]int, g.Hosts())
	cost = make([]int64, g.Hosts())
	for i := range parent {
		parent[i] = -1
	}
	for node := tree.NodeID(0); int(node) < t.Len(); node++ {
		h := hostOf[node]
		if p := t.Parent(node); p != tree.None {
			parent[h] = hostOf[p]
			cost[h] = t.C(node)
		}
	}
	return parent, cost, nil
}

// inSubtree reports whether candidate lies in the subtree rooted at v
// under the parent array (i.e. v is an ancestor of candidate or equal).
func inSubtree(parent []int, v, candidate int) bool {
	for h := candidate; h >= 0; h = parent[h] {
		if h == v {
			return true
		}
	}
	return false
}

// overlayRate evaluates the optimal steady-state rate of the overlay
// described by the parent arrays.
func overlayRate(g *Graph, root int, parent []int, cost []int64) rational.Rat {
	t, _, err := grow(g, root, parent, cost)
	if err != nil {
		// Unreachable for valid move generation; surface loudly in tests.
		panic(err)
	}
	return optimal.Weight(t).Inv()
}
