package engine

import (
	"testing"

	"bwcs/internal/metrics"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/tree"
)

// timelineFixtureTree is a small two-leaf star: root w=5 with children
// (w=3,c=1) and (w=5,c=2).
func timelineFixtureTree() *tree.Tree {
	t := tree.New(5)
	t.AddChild(0, 3, 1)
	t.AddChild(0, 5, 2)
	return t
}

// TestTimelineDisabledZeroAllocs is the acceptance pin for the disabled
// path: with SampleEvery unset, a warm Runner's run must stay within the
// same allocation budget as before the timeline subsystem existed — the
// telemetry hooks are all behind one nil check and the warm path must
// not pay for them.
func TestTimelineDisabledZeroAllocs(t *testing.T) {
	tr := randtree.TreeAt(runnerParams, 7, 3)
	cfg := Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 600}
	r := NewRunner()
	if _, err := r.Run(cfg); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		res, err := r.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.Timeline != nil {
			t.Fatal("Timeline non-nil with SampleEvery unset")
		}
	})
	// Same budget as TestRunnerWarmRunAllocs: the result header and a few
	// words of bookkeeping, nothing from the (disabled) timeline.
	if allocs > 12 {
		t.Fatalf("warm run with timeline disabled allocates %.0f times per run, want <= 12", allocs)
	}
}

// TestTimelineSampling checks the recorded series against ground truth
// on a run small enough to sample every timestep without downsampling:
// the rate series integrates back to the exact task count, utilizations
// are fractions, the pool drains monotonically, and sampling leaves the
// simulation itself untouched.
func TestTimelineSampling(t *testing.T) {
	tr := timelineFixtureTree()
	base := Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 50}

	plain, err := Run(base)
	if err != nil {
		t.Fatalf("plain run: %v", err)
	}

	cfg := base
	cfg.SampleEvery = 1
	cfg.TimelineCapacity = 8192 // enough to never downsample this run
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("sampled run: %v", err)
	}

	// Telemetry is observation only: the run must be event-for-event the
	// unsampled run.
	if res.Makespan != plain.Makespan {
		t.Fatalf("sampling changed the makespan: %d vs %d", res.Makespan, plain.Makespan)
	}
	if len(res.Completions) != len(plain.Completions) {
		t.Fatalf("sampling changed the completion count")
	}
	for i := range res.Completions {
		if res.Completions[i] != plain.Completions[i] {
			t.Fatalf("sampling changed completion %d: %d vs %d", i, res.Completions[i], plain.Completions[i])
		}
	}

	tl := res.Timeline
	if tl == nil {
		t.Fatalf("Timeline nil with SampleEvery set")
	}
	if tl.SampleEvery != 1 {
		t.Fatalf("Timeline.SampleEvery = %d, want 1", tl.SampleEvery)
	}

	rate := tl.Find("rate")
	if rate == nil {
		t.Fatalf("no rate series; have %d series", len(tl.Series))
	}
	// Σ rate·Δt over the intervals is the number of completions; with
	// per-timestep sampling and no downsampling this is exact.
	var prev int64
	var integral float64
	for _, p := range rate.Points {
		integral += p.V * float64(p.T-prev)
		prev = p.T
	}
	if integral != float64(base.Tasks) {
		t.Fatalf("rate integral = %v, want %d", integral, base.Tasks)
	}
	if last := rate.Points[len(rate.Points)-1]; last.T != int64(res.Makespan) {
		t.Fatalf("last rate sample at t=%d, want the makespan %d", last.T, res.Makespan)
	}

	pool := tl.Find("pool_depth")
	if pool == nil {
		t.Fatalf("no pool_depth series")
	}
	for i := 1; i < len(pool.Points); i++ {
		if pool.Points[i].V > pool.Points[i-1].V {
			t.Fatalf("pool depth grew at %d: %v -> %v", i, pool.Points[i-1], pool.Points[i])
		}
	}

	// The root is the only node with children, so exactly one link_util
	// series exists, and a busy fraction is a fraction.
	util := tl.Find("link_util/0")
	if util == nil {
		t.Fatalf("no link_util/0 series")
	}
	for _, s := range tl.Series {
		if s.Name != "link_util/0" && len(s.Name) >= 9 && s.Name[:9] == "link_util" {
			t.Fatalf("unexpected utilization series %q (leaves have no send port)", s.Name)
		}
	}
	var busy bool
	for _, p := range util.Points {
		if p.V < 0 || p.V > 1 {
			t.Fatalf("utilization out of range: %+v", p)
		}
		if p.V > 0 {
			busy = true
		}
	}
	if !busy {
		t.Fatalf("root send port never utilized across %d samples", len(util.Points))
	}
}

// TestTimelineBounded: a long run with a tiny capacity stays within
// capacity by coarsening resolution, keeping timestamps ascending.
func TestTimelineBounded(t *testing.T) {
	tr := randtree.TreeAt(runnerParams, 7, 3)
	cfg := Config{
		Tree:             tr,
		Protocol:         protocol.Interruptible(3),
		Tasks:            600,
		SampleEvery:      1,
		TimelineCapacity: 16,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Timeline.Series {
		if len(s.Points) > 16 {
			t.Fatalf("series %q holds %d points, capacity 16", s.Name, len(s.Points))
		}
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].T <= s.Points[i-1].T {
				t.Fatalf("series %q timestamps not ascending at %d", s.Name, i)
			}
		}
	}
	if rate := res.Timeline.Find("rate"); rate.Resolution <= 1 {
		t.Fatalf("rate resolution never coarsened on a long run: %d", rate.Resolution)
	}
}

// TestTimelineMultiAppShare: multi-workload runs record one share series
// per application, named by the workload, with values that are
// fractions of each interval's completions.
func TestTimelineMultiAppShare(t *testing.T) {
	tr := timelineFixtureTree()
	cfg := Config{
		Tree:     tr,
		Protocol: protocol.Interruptible(1),
		Workloads: []Workload{
			{App: "heavy", Tasks: 60, Weight: 2},
			{App: "light", Tasks: 30, Weight: 1},
		},
		SampleEvery: 8,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"app_share/heavy", "app_share/light"} {
		s := res.Timeline.Find(name)
		if s == nil {
			t.Fatalf("no %s series", name)
		}
		for _, p := range s.Points {
			if p.V < 0 || p.V > 1 {
				t.Fatalf("%s out of range: %+v", name, p)
			}
		}
	}
}

// TestTimelineResultOutlivesRunner: unlike Completions/Nodes, the
// Timeline must be a copy that survives the Runner's next run.
func TestTimelineResultOutlivesRunner(t *testing.T) {
	tr := timelineFixtureTree()
	cfg := Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 50, SampleEvery: 4}
	r := NewRunner()
	first, err := r.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]metrics.Point, len(first.Timeline.Find("rate").Points))
	copy(want, first.Timeline.Find("rate").Points)
	if _, err := r.Run(cfg); err != nil {
		t.Fatal(err)
	}
	got := first.Timeline.Find("rate").Points
	if len(got) != len(want) {
		t.Fatalf("timeline clobbered by the next run: %d vs %d points", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("timeline point %d clobbered by the next run: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestTimelineConfigValidation: nonsense sampling configs are rejected
// up front.
func TestTimelineConfigValidation(t *testing.T) {
	tr := timelineFixtureTree()
	bad := []Config{
		{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10, SampleEvery: -1},
		{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10, SampleEvery: 4, TimelineCapacity: 1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg); err == nil {
			t.Errorf("config %d accepted, want validation error", i)
		}
	}
}
