package engine

import (
	"fmt"

	"bwcs/internal/sim"
)

// Workload describes one application (tenant) sharing the platform. The
// paper schedules exactly one application per tree; a Config carrying
// Workloads schedules several concurrently: every task is tagged with the
// application it belongs to, the root keeps one pool per application, and
// each send or compute decision that consumes a task picks the
// application by weighted round-robin before the paper's bandwidth-centric
// child priority decides where the task goes. Tagging never perturbs the
// aggregate schedule: child selection, buffer growth and decay all depend
// only on untagged totals, so a multi-application run completes tasks at
// exactly the times a single application of the same total size would.
type Workload struct {
	// App names the application; names must be unique and non-empty.
	App string
	// Tasks is the number of tasks this application brings.
	Tasks int64
	// Weight is the application's sharing weight; the weighted round-robin
	// dispatches tasks of concurrently eligible applications in proportion
	// to their weights. Zero means 1.
	Weight int64
	// Release is the simulated time at which the application's pool opens
	// at the root; zero releases it at the start. Releases let tenants
	// join a platform mid-run.
	Release sim.Time
}

// weight returns the effective sharing weight (zero-valued means 1).
func (w Workload) weight() int64 {
	if w.Weight <= 0 {
		return 1
	}
	return w.Weight
}

// AppResult is the per-application slice of a multi-workload Result.
type AppResult struct {
	// App, Weight and Release echo the workload (Weight normalized: the
	// zero value reports as 1).
	App     string
	Weight  int64
	Release sim.Time
	// Tasks is the application's task count; Completions[k] is the time
	// its (k+1)'th task completed, ascending. Every application's tasks
	// all complete: len(Completions) == Tasks.
	Tasks       int64
	Completions []sim.Time
	// Requeued counts this application's tasks returned to the root's
	// pool by departures and re-dispatched.
	Requeued int64
}

// validateWorkloads checks the Workloads field of a Config.
func validateWorkloads(ws []Workload, tasks int64) error {
	if len(ws) == 0 {
		return nil
	}
	if tasks != 0 {
		return fmt.Errorf("engine: set Tasks or Workloads, not both")
	}
	seen := make(map[string]bool, len(ws))
	for i, w := range ws {
		if w.App == "" {
			return fmt.Errorf("engine: workload %d has no app name", i)
		}
		if seen[w.App] {
			return fmt.Errorf("engine: duplicate workload app %q", w.App)
		}
		seen[w.App] = true
		if w.Tasks < 0 {
			return fmt.Errorf("engine: workload %q: negative task count %d", w.App, w.Tasks)
		}
		if w.Weight < 0 {
			return fmt.Errorf("engine: workload %q: negative weight %d", w.App, w.Weight)
		}
		if w.Release < 0 {
			return fmt.Errorf("engine: workload %q: negative release time %d", w.App, w.Release)
		}
	}
	return nil
}

// pickApp chooses which application's task node n consumes next, by
// smooth weighted round-robin over the applications with a task available
// at n (the root draws on its released pools, every other node on its
// tagged buffer occupancy). Each eligible application earns its weight in
// credit, the highest-credit one (earliest index on ties) is served and
// pays back the round's total — so over any interval in which a set of
// applications stays eligible, each receives service proportional to its
// weight. Single-application runs never call this.
func (e *engine) pickApp(n int32) int32 {
	ns := &e.nodes[n]
	avail := ns.occApp
	if n == 0 {
		avail = e.pools
	}
	credit := ns.appCredit
	best := int32(-1)
	var total int64
	for a := range avail {
		if avail[a] <= 0 {
			continue
		}
		w := e.appWeights[a]
		credit[a] += w
		total += w
		if best < 0 || credit[a] > credit[best] {
			best = int32(a)
		}
	}
	if best < 0 {
		panic("engine: pickApp with no eligible application")
	}
	credit[best] -= total
	return best
}

// onAppRelease opens application app's pool at its scheduled release
// time; the root may immediately have work for waiting children.
func (e *engine) onAppRelease(app int32) {
	n := e.cfg.Workloads[app].Tasks
	e.pools[app] += n
	e.pool += n
	e.trySchedule(0)
}
