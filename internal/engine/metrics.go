package engine

import "bwcs/internal/metrics"

// Metrics aggregates engine-wide counters over one run. Every field is
// maintained by a plain integer increment inline in the event handlers —
// no map lookups, no allocation, no virtual calls — so keeping them
// costs nothing measurable even on paper-scale sweeps.
//
// The action counters (sends, computes, requests, grows) count exactly
// the actions a trace.Recorder attached to the same run would record;
// the conformance test in internal/trace holds the two layers to that
// contract. Note Requests counts post-startup requests only: the initial
// burst (one per buffer per node) is configuration, not scheduling, and
// is likewise absent from traces.
type Metrics struct {
	// Kernel counters, snapshotted from the sim.Simulator.
	Events        uint64 // simulator events dispatched
	PeakPending   int    // event-heap high-water mark
	FreeListHits  uint64 // event allocations served by recycling
	EventAllocs   uint64 // event allocations that hit the heap
	EventsCancels uint64 // events removed by cancellation (shelving, departures)

	// Scheduling action counters.
	SendsStarted     int64 // fresh transfers begun
	SendsResumed     int64 // shelved transfers resumed
	SendsInterrupted int64 // in-flight transfers preempted onto the shelf
	SendsCompleted   int64 // transfers delivered
	ComputesStarted  int64
	ComputesDone     int64
	Requests         int64 // task requests sent upward after startup
	Grows            int64 // buffer-growth events (non-IC protocol)
	Decays           int64 // buffers retired by the decay rule

	// Platform high-water marks.
	PeakShelved  int   // most simultaneously shelved transfers at any node
	PeakOccupied int64 // most tasks queued at any single node
}

// FreeListHitRate returns the fraction of event allocations served from
// the recycler, in [0, 1]; a healthy run is near 1.
func (m *Metrics) FreeListHitRate() float64 {
	total := m.FreeListHits + m.EventAllocs
	if total == 0 {
		return 0
	}
	return float64(m.FreeListHits) / float64(total)
}

// Add accumulates o into m: counters sum, high-water marks take the max.
// Sweeps use it to aggregate per-tree metrics into population totals.
func (m *Metrics) Add(o Metrics) {
	m.Events += o.Events
	m.FreeListHits += o.FreeListHits
	m.EventAllocs += o.EventAllocs
	m.EventsCancels += o.EventsCancels
	m.SendsStarted += o.SendsStarted
	m.SendsResumed += o.SendsResumed
	m.SendsInterrupted += o.SendsInterrupted
	m.SendsCompleted += o.SendsCompleted
	m.ComputesStarted += o.ComputesStarted
	m.ComputesDone += o.ComputesDone
	m.Requests += o.Requests
	m.Grows += o.Grows
	m.Decays += o.Decays
	if o.PeakPending > m.PeakPending {
		m.PeakPending = o.PeakPending
	}
	if o.PeakShelved > m.PeakShelved {
		m.PeakShelved = o.PeakShelved
	}
	if o.PeakOccupied > m.PeakOccupied {
		m.PeakOccupied = o.PeakOccupied
	}
}

// Register publishes the metrics into a registry under the given name
// prefix (e.g. "engine"), so any layer holding a registry — the live
// status server, the sweep harness — can expose engine runs uniformly.
func (m *Metrics) Register(r *metrics.Registry, prefix string) {
	set := func(name, help string, v int64) {
		r.Gauge(prefix+"_"+name, help).Set(v)
	}
	set("events_total", "simulator events dispatched", int64(m.Events))
	set("event_heap_peak", "event-heap high-water mark", int64(m.PeakPending))
	set("event_freelist_hits_total", "event allocations served by recycling", int64(m.FreeListHits))
	set("event_allocs_total", "event allocations that hit the heap", int64(m.EventAllocs))
	set("event_cancels_total", "events removed by cancellation", int64(m.EventsCancels))
	set("sends_started_total", "fresh transfers begun", m.SendsStarted)
	set("sends_resumed_total", "shelved transfers resumed", m.SendsResumed)
	set("sends_interrupted_total", "in-flight transfers preempted", m.SendsInterrupted)
	set("sends_completed_total", "transfers delivered", m.SendsCompleted)
	set("computes_started_total", "computations begun", m.ComputesStarted)
	set("computes_done_total", "computations completed", m.ComputesDone)
	set("requests_total", "task requests sent upward after startup", m.Requests)
	set("grows_total", "buffer-growth events", m.Grows)
	set("decays_total", "buffers retired by decay", m.Decays)
	set("shelved_peak", "most simultaneously shelved transfers at any node", int64(m.PeakShelved))
	set("node_queue_peak", "most tasks queued at any single node", m.PeakOccupied)
}
