package engine

import (
	"fmt"

	"bwcs/internal/metrics"
	"bwcs/internal/sim"
)

// defaultTimelineCapacity bounds the points stored per timeline series
// when Config.TimelineCapacity is unset. With 2× downsampling on
// overflow, a capacity-c series summarizes any run length in O(c)
// memory.
const defaultTimelineCapacity = 512

// Timeline is the sampled telemetry of one run: every Config.SampleEvery
// timesteps the engine records the interval task-completion rate, the
// root pool's depth, each internal node's send-port utilization, and
// (multi-workload runs) each application's share of the interval's
// completions. Series are snapshots — copies, safe to retain across
// Runner reuse.
//
// Series names: "rate" (tasks per timestep), "pool_depth" (tasks
// undispatched at the root), "link_util/<node>" (busy fraction of the
// node's send port, one series per node that had children at run start),
// "app_share/<app>" (fraction of the interval's completions belonging to
// the application).
type Timeline struct {
	// SampleEvery is the sampling cadence in sim timesteps.
	SampleEvery sim.Time `json:"sampleEvery"`
	// Series holds every sampled series; point timestamps are sim times.
	Series []metrics.SeriesSnapshot `json:"series"`
}

// Find returns the named series, or nil if the run did not record it.
func (t *Timeline) Find(name string) *metrics.SeriesSnapshot {
	for i := range t.Series {
		if t.Series[i].Name == name {
			return &t.Series[i]
		}
	}
	return nil
}

// timeline is the engine's run-time sampling state. It exists only when
// Config.SampleEvery > 0; every hook on the event path is guarded by a
// nil check so a run without sampling pays nothing (pinned by
// TestTimelineDisabledZeroAllocs).
type timeline struct {
	every         sim.Time
	ev            *sim.Event // pending evSample, nil between ticks
	intervalStart sim.Time
	lastCompleted int64

	rate *metrics.TimeSeries
	pool *metrics.TimeSeries
	// linkUtil[n] tracks node n's send port; nil for nodes without
	// children at run start (and for nodes attached mid-run, which join
	// after the series were laid out).
	linkUtil  []*metrics.TimeSeries
	busyAccum []sim.Time // send-port busy time this interval, per node
	busyStart []sim.Time // when the in-flight send started (valid while sending)

	appShare []*metrics.TimeSeries
	lastApp  []int64
}

// initTimeline builds the sampling state for the current run and
// schedules the first tick. Called once per run, after the node table is
// built; allocation here is run setup, not the event hot path.
func (e *engine) initTimeline() {
	every := e.cfg.SampleEvery
	capacity := e.cfg.TimelineCapacity
	if capacity == 0 {
		capacity = defaultTimelineCapacity
	}
	res := int64(every)
	tl := &timeline{
		every:     every,
		rate:      metrics.NewTimeSeries("rate", capacity, res),
		pool:      metrics.NewTimeSeries("pool_depth", capacity, res),
		linkUtil:  make([]*metrics.TimeSeries, len(e.nodes)),
		busyAccum: make([]sim.Time, len(e.nodes)),
		busyStart: make([]sim.Time, len(e.nodes)),
	}
	for id := range e.nodes {
		if len(e.nodes[id].children) > 0 {
			tl.linkUtil[id] = metrics.NewTimeSeries(fmt.Sprintf("link_util/%d", id), capacity, res)
		}
	}
	if e.multi {
		tl.appShare = make([]*metrics.TimeSeries, len(e.cfg.Workloads))
		tl.lastApp = make([]int64, len(e.cfg.Workloads))
		for a, w := range e.cfg.Workloads {
			name := w.App
			if name == "" {
				name = fmt.Sprintf("app%d", a)
			}
			tl.appShare[a] = metrics.NewTimeSeries("app_share/"+name, capacity, res)
		}
	}
	e.tl = tl
	tl.ev = e.s.Schedule(every, evSample, 0, 0)
}

// tlSendStart stamps the start of a send from node n. Guard: e.tl != nil.
//
// Nodes attached mid-run fall outside the arrays laid out at run start
// and are simply not tracked.
func (e *engine) tlSendStart(n int32) {
	if int(n) < len(e.tl.busyStart) {
		e.tl.busyStart[n] = e.s.Now()
	}
}

// tlSendStop credits node n's send port with the busy time since the
// current send started. Called on every path that ends a send —
// completion, preemption, departure. Guard: e.tl != nil.
func (e *engine) tlSendStop(n int32) {
	if int(n) < len(e.tl.busyStart) {
		e.tl.busyAccum[n] += e.s.Now() - e.tl.busyStart[n]
	}
}

// onSample records one telemetry tick and schedules the next while tasks
// remain.
func (e *engine) onSample() {
	tl := e.tl
	tl.ev = nil
	e.sampleTimeline()
	if e.completed < e.totalTasks {
		tl.ev = e.s.Schedule(tl.every, evSample, 0, 0)
	}
}

// sampleTimeline flushes the current interval into the series. It is
// driven by evSample ticks and once more at final completion (a partial
// interval), so the last samples land exactly at the makespan.
func (e *engine) sampleTimeline() {
	tl := e.tl
	now := e.s.Now()
	delta := now - tl.intervalStart
	if delta <= 0 {
		return // final completion coincided with a tick; nothing new
	}

	done := e.completed - tl.lastCompleted
	tl.rate.Append(int64(now), float64(done)/float64(delta))
	tl.lastCompleted = e.completed
	tl.pool.Append(int64(now), float64(e.pool))

	for id, ts := range tl.linkUtil {
		if ts == nil {
			continue
		}
		busy := tl.busyAccum[id]
		tl.busyAccum[id] = 0
		if e.nodes[id].sending != noChild {
			// Still mid-send: charge the elapsed part to this interval and
			// restart the stopwatch for the next.
			busy += now - tl.busyStart[id]
			tl.busyStart[id] = now
		}
		ts.Append(int64(now), float64(busy)/float64(delta))
	}

	if e.multi {
		for a, ts := range tl.appShare {
			appDone := int64(len(e.appCompletions[a])) - tl.lastApp[a]
			tl.lastApp[a] = int64(len(e.appCompletions[a]))
			share := 0.0
			if done > 0 {
				share = float64(appDone) / float64(done)
			}
			ts.Append(int64(now), share)
		}
	}
	tl.intervalStart = now
}

// finishTimeline runs at final task completion: the pending sample event
// is cancelled so it cannot advance the clock past the last completion
// (Makespan is e.s.Now() when the queue drains), and the partial final
// interval is flushed.
func (e *engine) finishTimeline() {
	tl := e.tl
	if tl.ev != nil {
		e.s.Cancel(tl.ev)
		tl.ev = nil
	}
	e.sampleTimeline()
}

// timelineResult copies the run's series into an immortal Timeline.
func (e *engine) timelineResult() *Timeline {
	tl := e.tl
	out := &Timeline{SampleEvery: tl.every}
	out.Series = append(out.Series, metrics.SnapshotSeries(tl.rate), metrics.SnapshotSeries(tl.pool))
	for _, ts := range tl.linkUtil {
		if ts != nil {
			out.Series = append(out.Series, metrics.SnapshotSeries(ts))
		}
	}
	for _, ts := range tl.appShare {
		out.Series = append(out.Series, metrics.SnapshotSeries(ts))
	}
	return out
}
