// Package engine executes an independent-task application on a platform
// tree under an autonomous scheduling protocol, using the discrete-event
// kernel in package sim.
//
// # Model
//
// The engine implements the paper's "base model": every node can
// simultaneously receive one task from its parent, send one task to one of
// its children, and compute one task. The root holds the application's
// task pool. Control traffic (a child's request for a task) is free, as in
// the paper.
//
// Task flow is request-driven. A node's buffer frees at the start of a
// local computation or of a downstream send, and each freed buffer
// immediately sends one request up (Section 3.1). The parent matches a
// request with a send when its port frees — or immediately, preempting a
// lower-priority send, under the interruptible protocol (Section 3.2). A
// preempted send is shelved with its remaining time and resumes when its
// child again has the highest priority among actionable work.
//
// Under the non-interruptible protocol nodes may grow buffers on exactly
// the paper's three events:
//
//	G1: the node's buffers all become empty while a child request is
//	    outstanding;
//	G2: a send completes while a child request is outstanding and the
//	    node's buffers are all empty;
//	G3: a computation completes and the node's buffers are all empty.
//
// Each growth adds one buffer and sends one request up.
//
// # Determinism
//
// Runs are fully deterministic: simultaneous events fire in scheduling
// order, child scans break ties by node ID, and the only randomness (the
// Random baseline order) is seeded. Identical Configs produce identical
// Results.
package engine

import (
	"context"
	"fmt"
	"math/rand/v2"
	"slices"

	"bwcs/internal/protocol"
	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

// Event kinds used with the sim kernel.
const (
	evSendComplete sim.Kind = iota + 1
	evComputeComplete
	// evAppRelease opens a workload's pool at its scheduled release time
	// (multi-application runs only); Node carries the application index.
	evAppRelease
	// evSample is the timeline telemetry tick (Config.SampleEvery > 0
	// only); it re-schedules itself until the last task completes.
	evSample
)

const noChild int32 = -1

// Mutation changes a node or edge weight once a given number of tasks have
// completed. The paper's adaptability experiment (Figure 7) raises c1 from
// 1 to 3, or lowers w1 from 3 to 1, after 200 completed tasks. Changes
// apply to computations and transfers that start afterwards; work already
// in progress finishes at its original speed.
type Mutation struct {
	AfterTasks int64       // completed-task count that triggers the change
	Node       tree.NodeID // node whose weight changes
	W          int64       // new compute weight; 0 leaves it unchanged
	C          int64       // new communication weight; 0 leaves it unchanged
}

// AttachMutation grafts a subtree onto the running platform once a given
// number of tasks have completed, modeling resources joining the overlay —
// the dynamic-reconfiguration property the paper's Section 3 highlights.
type AttachMutation struct {
	AfterTasks int64
	Parent     tree.NodeID
	Subtree    *tree.Tree
	C          int64 // communication weight of the new uplink
}

// DepartMutation removes the subtree rooted at Node once a given number of
// tasks have completed, modeling resources leaving (or failing out of) the
// overlay. Every task the departing subtree held — buffered, computing, in
// flight or shelved toward it — is requeued at the root's pool and
// re-dispatched, the re-execution semantics of volunteer-computing
// platforms. Departed node IDs remain in the Result with their statistics
// frozen at departure time.
type DepartMutation struct {
	AfterTasks int64
	Node       tree.NodeID // must not be the root
}

// Config describes one simulation run.
type Config struct {
	Tree     *tree.Tree
	Protocol protocol.Protocol
	Tasks    int64 // number of application tasks at the root (single-application form)

	// Workloads runs several applications concurrently over the one tree
	// with weighted bandwidth-centric sharing (see Workload). Mutually
	// exclusive with Tasks: a Config sets one or the other. Single-
	// application callers keep using Tasks; the engine behaves
	// identically either way (a one-workload run is event-for-event the
	// Tasks run, with tags riding along).
	Workloads []Workload

	// Seed feeds the Random child-selection order; unused otherwise.
	Seed uint64

	// Checkpoints lists completed-task counts at which buffer statistics
	// are snapshotted (ascending). Table 2 uses {100, 1000, 4000}.
	Checkpoints []int64

	// Mutations are weight changes applied mid-run, in ascending
	// AfterTasks order. Attachments graft whole subtrees mid-run;
	// Departures remove them.
	Mutations   []Mutation
	Attachments []AttachMutation
	Departures  []DepartMutation

	// MaxSteps aborts the run after this many simulator events when
	// positive, as a runaway guard.
	MaxSteps uint64

	// Ctx, when non-nil, is checked for cancellation every few thousand
	// simulator events, so long sweeps over large platforms can be
	// abandoned (deadlines, ctrl-c) without waiting for the run to
	// drain. A nil Ctx runs to completion, the zero-cost default.
	Ctx context.Context

	// Tracer, when non-nil, observes every scheduling action as it
	// happens (see the trace package for recorders and renderers).
	// Tracing costs one virtual call per action; leave nil for sweeps.
	Tracer Tracer

	// SampleEvery, when positive, records timeline telemetry (completion
	// rate, link utilization, pool depth, per-application share) every
	// SampleEvery timesteps into Result.Timeline. Zero — the default —
	// disables sampling entirely; the event path then carries no
	// telemetry cost (pinned by TestTimelineDisabledZeroAllocs).
	SampleEvery sim.Time

	// TimelineCapacity caps the stored points per timeline series; on
	// overflow a series halves itself and doubles its resolution, so
	// memory stays O(TimelineCapacity) for any run length. Zero means
	// the package default (512); meaningful values are >= 2.
	TimelineCapacity int
}

// Tracer observes engine actions. Implementations must not retain the
// engine's state between calls; all arguments are values.
type Tracer interface {
	// ComputeStart fires when node starts computing a task that will
	// finish at the given time.
	ComputeStart(now sim.Time, node tree.NodeID, until sim.Time)
	// ComputeDone fires when a task completes; completed is the global
	// count including this task.
	ComputeDone(now sim.Time, node tree.NodeID, completed int64)
	// SendStart fires when parent begins (fromShelf=false) or resumes
	// (fromShelf=true) a transfer that will land at the given time.
	SendStart(now sim.Time, parent, child tree.NodeID, until sim.Time, fromShelf bool)
	// SendInterrupted fires when an in-flight transfer is shelved with the
	// given remaining time.
	SendInterrupted(now sim.Time, parent, child tree.NodeID, remaining sim.Time)
	// SendDone fires when a transfer lands in the child's buffer.
	SendDone(now sim.Time, parent, child tree.NodeID)
	// Requested fires when child asks its parent for one task.
	Requested(now sim.Time, child tree.NodeID)
	// Grew fires when node grows one buffer; capacity is the new pool
	// size.
	Grew(now sim.Time, node tree.NodeID, capacity int64)
}

// Validate reports whether the config can be run.
func (c *Config) Validate() error {
	if c.Tree == nil {
		return fmt.Errorf("engine: nil tree")
	}
	if err := c.Tree.Validate(); err != nil {
		return err
	}
	if err := c.Protocol.Validate(); err != nil {
		return err
	}
	if c.Tasks < 0 {
		return fmt.Errorf("engine: negative task count %d", c.Tasks)
	}
	if err := validateWorkloads(c.Workloads, c.Tasks); err != nil {
		return err
	}
	if c.SampleEvery < 0 {
		return fmt.Errorf("engine: negative sample interval %d", c.SampleEvery)
	}
	if c.TimelineCapacity != 0 && c.TimelineCapacity < 2 {
		return fmt.Errorf("engine: timeline capacity %d, need 0 (default) or >= 2", c.TimelineCapacity)
	}
	if !slices.IsSorted(c.Checkpoints) {
		return fmt.Errorf("engine: checkpoints must be ascending")
	}
	for _, m := range c.Mutations {
		if !c.Tree.Valid(m.Node) {
			return fmt.Errorf("engine: mutation targets unknown node %d", m.Node)
		}
		if m.C != 0 && m.Node == c.Tree.Root() {
			return fmt.Errorf("engine: mutation sets c on the root")
		}
		if m.W < 0 || m.C < 0 {
			return fmt.Errorf("engine: mutation with negative weight")
		}
		if m.W == 0 && m.C == 0 {
			return fmt.Errorf("engine: mutation changes nothing")
		}
	}
	for _, a := range c.Attachments {
		if !c.Tree.Valid(a.Parent) {
			return fmt.Errorf("engine: attachment targets unknown node %d", a.Parent)
		}
		if a.Subtree == nil {
			return fmt.Errorf("engine: attachment with nil subtree")
		}
		if a.C <= 0 {
			return fmt.Errorf("engine: attachment with non-positive link weight %d", a.C)
		}
	}
	for _, d := range c.Departures {
		// Departures may target nodes that only exist after a mid-run
		// attachment, so IDs beyond the initial tree are checked when the
		// departure fires (unknown IDs are skipped and counted).
		if d.Node <= c.Tree.Root() {
			return fmt.Errorf("engine: departure of node %d (the root cannot depart)", d.Node)
		}
	}
	return nil
}

// NodeStat aggregates per-node counters over a run.
type NodeStat struct {
	Computed  int64 // tasks this node computed
	Received  int64 // tasks delivered into this node's buffers
	Forwarded int64 // tasks this node sent to children
	Requests  int64 // requests this node sent to its parent
	// Buffers is the final buffer capacity; MaxCapacity is the capacity
	// high-water (they differ only under decay, which shrinks the pool).
	Buffers     int64
	MaxCapacity int64
	// MaxQueued is the most tasks that ever sat in this node's buffers
	// simultaneously — the buffers the node actually *needed* (the
	// paper's m_i). Grown capacity beyond this was over-growth: requests
	// in excess of what the parent could ever fill.
	MaxQueued   int64
	Interrupted int64 // times a send from this node was preempted
	MaxShelved  int   // most simultaneously shelved transfers at this node
	Decayed     int64 // buffers retired by the decay rule
	Departed    bool  // the node left the platform mid-run
}

// CheckpointStat snapshots platform-wide buffer usage when a given number
// of tasks had completed.
type CheckpointStat struct {
	AfterTasks     int64
	Time           sim.Time
	MaxNodeBuffers int64 // largest buffer capacity at any single node
	TotalBuffers   int64 // capacity summed over all nodes
	MaxNodeUsed    int64 // largest per-node queued-tasks high-water so far
}

// Result is the outcome of a run.
type Result struct {
	// Tree is the engine's working copy of the platform, including any
	// mutations and attachments applied during the run.
	Tree *tree.Tree
	// Completions[k] is the time the (k+1)'th task completed, ascending.
	Completions []sim.Time
	Makespan    sim.Time
	Nodes       []NodeStat
	Checkpoints []CheckpointStat
	Steps       uint64
	// Requeued counts tasks returned to the root's pool by departures and
	// re-dispatched.
	Requeued int64
	// SkippedMutations counts mutations and attachments that targeted a
	// node which had already departed and were therefore ignored.
	SkippedMutations int
	// Apps is the per-application breakdown of a multi-workload run, in
	// Config.Workloads order; nil for single-application (Tasks) runs.
	Apps []AppResult
	// Metrics is the run's engine-wide instrumentation snapshot.
	Metrics Metrics
	// Timeline holds the run's sampled telemetry when Config.SampleEvery
	// was positive; nil otherwise. Unlike the slices above, the Timeline
	// is a copy — it stays valid across Runner reuse.
	Timeline *Timeline
}

// UsedCount returns how many nodes computed at least one task.
func (r *Result) UsedCount() int {
	n := 0
	for i := range r.Nodes {
		if r.Nodes[i].Computed > 0 {
			n++
		}
	}
	return n
}

// UsedMaxDepth returns the depth of the deepest node that computed at
// least one task, or 0 if only the root worked.
func (r *Result) UsedMaxDepth() int {
	max := 0
	for i := range r.Nodes {
		if r.Nodes[i].Computed > 0 {
			if d := r.Tree.Depth(tree.NodeID(i)); d > max {
				max = d
			}
		}
	}
	return max
}

// MaxNodeBuffers returns the largest final buffer capacity at any node.
func (r *Result) MaxNodeBuffers() int64 {
	var max int64
	for i := range r.Nodes {
		if r.Nodes[i].Buffers > max {
			max = r.Nodes[i].Buffers
		}
	}
	return max
}

// MaxNodeUsed returns the largest number of tasks that ever sat in any
// single node's buffers — the per-node buffer count the run actually
// needed, which is what the paper's Tables 1 and 2 measure.
func (r *Result) MaxNodeUsed() int64 {
	var max int64
	for i := range r.Nodes {
		if r.Nodes[i].MaxQueued > max {
			max = r.Nodes[i].MaxQueued
		}
	}
	return max
}

// TotalBuffers returns the final buffer capacity summed over all nodes.
func (r *Result) TotalBuffers() int64 {
	var sum int64
	for i := range r.Nodes {
		sum += r.Nodes[i].Buffers
	}
	return sum
}

// shelf is a preempted transfer: remaining send time to a child, plus the
// request-arrival time that FCFS ordering uses and the application tag of
// the task in flight.
type shelf struct {
	child     int32
	remaining sim.Time
	since     sim.Time
	app       int32
}

// nodeState is the runtime state of one platform node.
type nodeState struct {
	children []int32

	capacity    int64 // current buffer count
	maxCapacity int64 // high-water of capacity
	occupied    int64 // tasks sitting in buffers
	maxOccupied int64 // high-water of occupied

	// reqPending is the number of this node's requests outstanding at its
	// parent; reqSince is when the oldest of them was sent (for FCFS).
	reqPending int64
	reqSince   sim.Time

	// incoming is true while a transfer to this node is in flight or
	// shelved at the parent; the receiving buffer is reserved.
	incoming bool

	computing bool
	sending   int32 // child currently being sent to, or noChild
	sendEv    *sim.Event
	sendSince sim.Time // request time backing the current send (FCFS)
	shelves   []shelf

	// childReqCount counts children with reqPending > 0, so growth checks
	// are O(1).
	childReqCount int
	rrNext        int // round-robin cursor into children

	computeEv *sim.Event // pending compute completion, for cancellation

	// Multi-application tagging (nil / unused in single-application
	// runs): occApp[a] is how many of the occupied tasks belong to
	// application a, appCredit the node's weighted round-robin state, and
	// computingApp / sendingApp tag the tasks on the compute port and in
	// flight at the send port.
	occApp       []int64
	appCredit    []int64
	computingApp int32
	sendingApp   int32

	// Decay bookkeeping: decayStreak counts completions since the buffers
	// last ran empty; pendingDecay buffers will be retired as they free.
	decayStreak  int64
	pendingDecay int64

	departed bool

	stat NodeStat
}

type engine struct {
	cfg   Config
	t     *tree.Tree
	s     *sim.Simulator
	nodes []nodeState
	rng   *rand.Rand

	trace Tracer
	met   Metrics

	pool        int64 // undispatched tasks at the root
	requeued    int64
	skippedMut  int
	completed   int64
	completions []sim.Time

	// statsBuf backs Result.Nodes, reused across a Runner's runs.
	statsBuf []NodeStat

	// Multi-application state (empty in single-application runs): one
	// released pool, weight, completion stream and requeue counter per
	// workload. totalTasks is the sum over workloads (== cfg.Tasks in
	// single-application runs).
	multi          bool
	totalTasks     int64
	pools          []int64
	appWeights     []int64
	appCompletions [][]sim.Time
	appRequeued    []int64

	// tl is the timeline sampling state; nil unless Config.SampleEvery is
	// positive, and every hook checks for nil so the disabled path stays
	// allocation- and branch-cheap.
	tl *timeline

	checkpoints []CheckpointStat
	mutIdx      int
	attIdx      int
	depIdx      int
	ckIdx       int
}

// Runner executes simulation runs while reusing the expensive run state
// across calls: the simulator (and with it the event free list), the
// per-node runtime-state table with its child lists, and the completions
// and node-statistics buffers. A sweep worker that evaluates thousands
// of trees through one Runner allocates this state once instead of per
// tree; at paper scale this removes most of the engine's per-run
// allocation profile.
//
// A Runner is not safe for concurrent use: run one per goroutine. The
// Result returned by Run — including its Completions, Nodes and
// Checkpoints slices — aliases the Runner's buffers and is valid only
// until the next Run call on the same Runner; callers that retain a
// Result across runs must copy what they keep. The package-level Run
// uses a fresh Runner per call and its Results are immortal, as before.
type Runner struct {
	e engine
}

// NewRunner returns an empty Runner; its buffers grow to fit the runs it
// executes and are then recycled.
func NewRunner() *Runner {
	r := &Runner{}
	r.e.s = sim.New(&r.e)
	return r
}

// Run simulates cfg to completion, reusing the Runner's buffers. Results
// are bit-identical to the package-level Run on the same Config.
func (r *Runner) Run(cfg Config) (*Result, error) {
	return r.e.run(cfg)
}

// Run simulates cfg to completion and returns the result. It returns an
// error if the configuration is invalid, the run exceeds MaxSteps, or the
// simulation deadlocks before all tasks complete (which would indicate an
// engine bug; the test suite exercises this path with fault injection).
func Run(cfg Config) (*Result, error) {
	return NewRunner().Run(cfg)
}

// reset rebuilds e for a new run, recycling the buffers that matter:
// the simulator's event free list, the nodes table (initNodes reuses the
// per-element child and shelf arrays), completions, checkpoints and the
// node-statistics buffer. Every other field restarts at its zero value.
func (e *engine) reset(cfg Config) {
	// The engine only writes to the tree when the config carries mid-run
	// mutations or attachments; a plain run can execute on the caller's
	// tree directly, which keeps the sweep hot path clone-free.
	t := cfg.Tree
	if len(cfg.Mutations) > 0 || len(cfg.Attachments) > 0 {
		t = cfg.Tree.Clone()
	}
	*e = engine{
		cfg:         cfg,
		t:           t,
		s:           e.s,
		nodes:       e.nodes,
		completions: e.completions[:0],
		checkpoints: e.checkpoints[:0],
		statsBuf:    e.statsBuf,
		pool:        cfg.Tasks,
		totalTasks:  cfg.Tasks,
		trace:       cfg.Tracer,
	}
	e.s.Reset()
}

func (e *engine) run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	e.reset(cfg)
	if cfg.Protocol.Order == protocol.Random {
		e.rng = rand.New(rand.NewPCG(cfg.Seed, 0xda3e39cb94b95bdb))
	}
	if len(cfg.Workloads) > 0 {
		e.multi = true
		e.pool = 0
		e.totalTasks = 0
		e.pools = make([]int64, len(cfg.Workloads))
		e.appWeights = make([]int64, len(cfg.Workloads))
		e.appCompletions = make([][]sim.Time, len(cfg.Workloads))
		e.appRequeued = make([]int64, len(cfg.Workloads))
		for a, w := range cfg.Workloads {
			e.totalTasks += w.Tasks
			e.appWeights[a] = w.weight()
			e.appCompletions[a] = make([]sim.Time, 0, w.Tasks)
			if w.Release <= 0 {
				e.pools[a] = w.Tasks
				e.pool += w.Tasks
			}
		}
	}
	if cap(e.completions) < int(e.totalTasks) {
		e.completions = make([]sim.Time, 0, e.totalTasks)
	}

	e.initNodes(0)
	if cfg.SampleEvery > 0 {
		// Before the t=0 scheduling pass, so the very first sends are
		// stamped for utilization accounting.
		e.initTimeline()
	}

	// Workloads arriving mid-run open their pools at their release times.
	for a, w := range cfg.Workloads {
		if w.Release > 0 {
			e.s.Schedule(w.Release, evAppRelease, int32(a), 0)
		}
	}

	// All nodes issue their initial requests (one per empty buffer) before
	// anyone acts, so t=0 scheduling sees the complete picture rather than
	// an artifact of initialization order.
	for id := 1; id < len(e.nodes); id++ {
		e.requestInitial(int32(id))
	}
	for id := range e.nodes {
		e.trySchedule(int32(id))
	}

	if err := e.runEvents(); err != nil {
		return nil, err
	}
	if cfg.MaxSteps > 0 && e.s.Steps() >= cfg.MaxSteps && e.completed < e.totalTasks {
		return nil, fmt.Errorf("engine: aborted after %d steps with %d/%d tasks complete", e.s.Steps(), e.completed, e.totalTasks)
	}
	if e.completed != e.totalTasks {
		return nil, fmt.Errorf("engine: deadlock: simulation drained with %d/%d tasks complete", e.completed, e.totalTasks)
	}

	if cap(e.statsBuf) < len(e.nodes) {
		e.statsBuf = make([]NodeStat, len(e.nodes))
	}
	res := &Result{
		Tree:             e.t,
		Completions:      e.completions,
		Makespan:         e.s.Now(),
		Nodes:            e.statsBuf[:len(e.nodes)],
		Checkpoints:      e.checkpoints,
		Steps:            e.s.Steps(),
		Requeued:         e.requeued,
		SkippedMutations: e.skippedMut,
	}
	if e.multi {
		res.Apps = make([]AppResult, len(cfg.Workloads))
		for a, w := range cfg.Workloads {
			res.Apps[a] = AppResult{
				App:         w.App,
				Weight:      w.weight(),
				Release:     w.Release,
				Tasks:       w.Tasks,
				Completions: e.appCompletions[a],
				Requeued:    e.appRequeued[a],
			}
		}
	}
	for i := range e.nodes {
		res.Nodes[i] = e.nodes[i].stat
		res.Nodes[i].Buffers = e.nodes[i].capacity
		res.Nodes[i].MaxCapacity = e.nodes[i].maxCapacity
		res.Nodes[i].MaxQueued = e.nodes[i].maxOccupied
		res.Nodes[i].Departed = e.nodes[i].departed
		if e.nodes[i].stat.MaxShelved > e.met.PeakShelved {
			e.met.PeakShelved = e.nodes[i].stat.MaxShelved
		}
		if e.nodes[i].maxOccupied > e.met.PeakOccupied {
			e.met.PeakOccupied = e.nodes[i].maxOccupied
		}
	}
	e.met.Events = e.s.Steps()
	e.met.PeakPending = e.s.PeakPending()
	e.met.FreeListHits = e.s.FreeListHits()
	e.met.EventAllocs = e.s.Allocs()
	e.met.EventsCancels = e.s.Cancelled()
	res.Metrics = e.met
	if e.tl != nil {
		res.Timeline = e.timelineResult()
	}
	return res, nil
}

// ctxCheckEvery is how many simulator events fire between cancellation
// checks — coarse enough that the check is free relative to event
// handling, fine enough that cancellation lands within microseconds.
const ctxCheckEvery = 4096

// runEvents drains the event queue, honoring MaxSteps and, when a
// context is configured, polling it for cancellation between batches.
func (e *engine) runEvents() error {
	if e.cfg.Ctx == nil {
		e.s.Run(e.cfg.MaxSteps)
		return nil
	}
	var fired uint64
	for {
		if err := e.cfg.Ctx.Err(); err != nil {
			return fmt.Errorf("engine: run canceled after %d events with %d/%d tasks complete: %w",
				e.s.Steps(), e.completed, e.totalTasks, err)
		}
		limit := uint64(ctxCheckEvery)
		if e.cfg.MaxSteps > 0 {
			if rem := e.cfg.MaxSteps - fired; rem < limit {
				limit = rem
			}
			if limit == 0 {
				return nil
			}
		}
		k := e.s.Run(limit)
		fired += k
		if k < limit {
			return nil // queue drained
		}
	}
}

// initNodes (re)builds runtime state for tree nodes with ID >= from,
// preserving existing state below from. Attachments use it to extend the
// node table mid-run.
func (e *engine) initNodes(from int) {
	n := e.t.Len()
	if cap(e.nodes) < n {
		grown := make([]nodeState, n)
		copy(grown, e.nodes)
		e.nodes = grown
	} else {
		e.nodes = e.nodes[:n]
	}
	for id := from; id < n; id++ {
		kids := e.t.Children(tree.NodeID(id))
		ns := &e.nodes[id]
		// Recycle the element's child and shelf backing arrays across runs
		// (a Runner keeps the nodes table; fresh elements start nil).
		children := ns.children[:0]
		shelves := ns.shelves[:0]
		*ns = nodeState{
			capacity:    int64(e.cfg.Protocol.InitialBuffers),
			maxCapacity: int64(e.cfg.Protocol.InitialBuffers),
			sending:     noChild,
		}
		for _, k := range kids {
			children = append(children, int32(k))
		}
		ns.children = children
		ns.shelves = shelves
		if e.multi {
			ns.occApp = make([]int64, len(e.cfg.Workloads))
			ns.appCredit = make([]int64, len(e.cfg.Workloads))
			ns.sendingApp = -1
			ns.computingApp = -1
		}
	}
	// Parents of newly attached nodes gain children; refresh child lists
	// for all pre-existing nodes too (cheap relative to a run).
	for id := 0; id < from; id++ {
		kids := e.t.Children(tree.NodeID(id))
		if len(kids) != len(e.nodes[id].children) {
			children := make([]int32, len(kids))
			for i, k := range kids {
				children[i] = int32(k)
			}
			e.nodes[id].children = children
		}
	}
}

// Handle dispatches simulator events.
func (e *engine) Handle(ev *sim.Event) {
	switch ev.Kind {
	case evSendComplete:
		e.onSendComplete(ev.Node, ev.Child)
	case evComputeComplete:
		e.onComputeComplete(ev.Node)
	case evAppRelease:
		e.onAppRelease(ev.Node)
	case evSample:
		e.onSample()
	default:
		panic(fmt.Sprintf("engine: unknown event kind %d", ev.Kind))
	}
}

// hasTask reports whether node n holds a task it could compute or send.
func (e *engine) hasTask(n int32) bool {
	if n == 0 {
		return e.pool > 0
	}
	return e.nodes[n].occupied > 0
}

// takeTask removes one task from n's buffers (or the root pool) for
// immediate use, firing the freed-buffer request and the G1 growth check.
// It returns the application tag of the task taken — always 0 for
// single-application runs; for multi-workload runs the weighted
// round-robin picks among the applications with a task available here.
func (e *engine) takeTask(n int32) int32 {
	var app int32
	if e.multi {
		app = e.pickApp(n)
	}
	if n == 0 {
		if e.pool <= 0 {
			panic("engine: takeTask on empty pool")
		}
		e.pool--
		if e.multi {
			e.pools[app]--
		}
		return app
	}
	ns := &e.nodes[n]
	if ns.occupied <= 0 {
		panic("engine: takeTask on empty buffers")
	}
	ns.occupied--
	if e.multi {
		ns.occApp[app]--
	}
	if ns.occupied == 0 {
		// Starvation observed: reset the decay observation window.
		ns.decayStreak = 0
	}
	if ns.pendingDecay > 0 && ns.capacity > int64(e.cfg.Protocol.InitialBuffers) {
		// Retire this freed buffer instead of requesting a refill.
		ns.pendingDecay--
		ns.capacity--
		ns.stat.Decayed++
		e.met.Decays++
	} else {
		e.request(n)
	}
	// G1: buffers just became all empty while a child request waits.
	if ns.occupied == 0 && ns.childReqCount > 0 {
		e.growBuffer(n)
	}
	return app
}

// request sends one task request from node n to its parent. Requests are
// control traffic and arrive instantly, per the paper's model.
func (e *engine) request(n int32) {
	ns := &e.nodes[n]
	if ns.reqPending == 0 {
		ns.reqSince = e.s.Now()
	}
	ns.reqPending++
	ns.stat.Requests++
	e.met.Requests++
	if e.trace != nil {
		e.trace.Requested(e.s.Now(), tree.NodeID(n))
	}
	parent := int32(e.t.Parent(tree.NodeID(n)))
	ps := &e.nodes[parent]
	if ns.reqPending == 1 {
		ps.childReqCount++
	}
	e.trySchedule(parent)
}

// requestInitial issues node n's startup requests, one per empty buffer,
// without triggering parent scheduling (the caller schedules everyone once
// all requests are placed).
func (e *engine) requestInitial(n int32) {
	ns := &e.nodes[n]
	ns.reqPending = ns.capacity
	ns.reqSince = 0
	ns.stat.Requests += ns.capacity
	parent := int32(e.t.Parent(tree.NodeID(n)))
	e.nodes[parent].childReqCount++
}

// growBuffer adds one buffer to node n under the growth protocol and
// requests a task to fill it. The root never grows (it owns the pool).
func (e *engine) growBuffer(n int32) {
	if n == 0 || !e.cfg.Protocol.Grow {
		return
	}
	ns := &e.nodes[n]
	if max := int64(e.cfg.Protocol.MaxBuffers); max > 0 && ns.capacity >= max {
		return
	}
	ns.capacity++
	if ns.capacity > ns.maxCapacity {
		ns.maxCapacity = ns.capacity
	}
	e.met.Grows++
	if e.trace != nil {
		e.trace.Grew(e.s.Now(), tree.NodeID(n), ns.capacity)
	}
	e.request(n)
}

// onSendComplete delivers a task from parent p to child c.
func (e *engine) onSendComplete(p, c int32) {
	ps := &e.nodes[p]
	cs := &e.nodes[c]
	if ps.sending != c {
		panic("engine: send completion for wrong child")
	}
	if e.tl != nil {
		e.tlSendStop(p)
	}
	app := ps.sendingApp
	ps.sending = noChild
	ps.sendEv = nil
	cs.incoming = false
	cs.occupied++
	if e.multi {
		cs.occApp[app]++
	}
	if cs.occupied > cs.maxOccupied {
		cs.maxOccupied = cs.occupied
	}
	cs.stat.Received++
	e.met.SendsCompleted++
	if e.trace != nil {
		e.trace.SendDone(e.s.Now(), tree.NodeID(p), tree.NodeID(c))
	}

	// G2: send completed, a child still waits, and buffers are all empty.
	if ps.occupied == 0 && ps.childReqCount > 0 && p != 0 {
		e.growBuffer(p)
	}

	// The child first (it may consume the task and re-request), then the
	// parent's freed port.
	e.trySchedule(c)
	e.trySchedule(p)
}

// onComputeComplete finishes a task at node n.
func (e *engine) onComputeComplete(n int32) {
	ns := &e.nodes[n]
	if !ns.computing {
		panic("engine: compute completion while idle")
	}
	ns.computing = false
	ns.computeEv = nil
	ns.stat.Computed++
	e.met.ComputesDone++
	e.decayTick(n)
	e.completed++
	e.completions = append(e.completions, e.s.Now())
	if e.multi {
		a := ns.computingApp
		e.appCompletions[a] = append(e.appCompletions[a], e.s.Now())
	}
	if e.trace != nil {
		e.trace.ComputeDone(e.s.Now(), tree.NodeID(n), e.completed)
	}
	if e.tl != nil && e.completed == e.totalTasks {
		// The run is over: flush the partial final interval and cancel the
		// pending tick so it cannot outlive the last completion (Makespan
		// is the time of the last fired event).
		e.finishTimeline()
	}
	e.atCompletion()
	// Attachments inside atCompletion may reallocate the node table.
	ns = &e.nodes[n]

	// G3: computation completed with all buffers empty.
	if ns.occupied == 0 && n != 0 {
		e.growBuffer(n)
	}
	e.trySchedule(n)
}

// decayTick advances node n's decay window after a completed task: a long
// enough streak of completions without starvation retires one grown
// buffer.
func (e *engine) decayTick(n int32) {
	if n == 0 || !e.cfg.Protocol.Decay {
		return
	}
	ns := &e.nodes[n]
	if ns.capacity <= int64(e.cfg.Protocol.InitialBuffers) {
		ns.decayStreak = 0
		return
	}
	window := int64(e.cfg.Protocol.DecayWindow)
	if window <= 0 {
		window = protocol.DefaultDecayWindow
	}
	ns.decayStreak++
	if ns.decayStreak >= window {
		ns.pendingDecay++
		ns.decayStreak = 0
	}
}

// atCompletion fires checkpoints, mutations and attachments tied to the
// global completed-task count.
func (e *engine) atCompletion() {
	for e.ckIdx < len(e.cfg.Checkpoints) && e.completed >= e.cfg.Checkpoints[e.ckIdx] {
		snap := CheckpointStat{AfterTasks: e.cfg.Checkpoints[e.ckIdx], Time: e.s.Now()}
		for i := range e.nodes {
			if b := e.nodes[i].capacity; b > snap.MaxNodeBuffers {
				snap.MaxNodeBuffers = b
			}
			snap.TotalBuffers += e.nodes[i].capacity
			if u := e.nodes[i].maxOccupied; u > snap.MaxNodeUsed {
				snap.MaxNodeUsed = u
			}
		}
		e.checkpoints = append(e.checkpoints, snap)
		e.ckIdx++
	}
	for e.mutIdx < len(e.cfg.Mutations) && e.completed >= e.cfg.Mutations[e.mutIdx].AfterTasks {
		m := e.cfg.Mutations[e.mutIdx]
		if e.nodes[m.Node].departed {
			e.skippedMut++
		} else {
			if m.W > 0 {
				e.t.SetW(m.Node, m.W)
			}
			if m.C > 0 {
				e.t.SetC(m.Node, m.C)
			}
		}
		e.mutIdx++
	}
	for e.depIdx < len(e.cfg.Departures) && e.completed >= e.cfg.Departures[e.depIdx].AfterTasks {
		if n := e.cfg.Departures[e.depIdx].Node; int(n) < len(e.nodes) {
			e.depart(n)
		} else {
			e.skippedMut++
		}
		e.depIdx++
	}
	for e.attIdx < len(e.cfg.Attachments) && e.completed >= e.cfg.Attachments[e.attIdx].AfterTasks {
		a := e.cfg.Attachments[e.attIdx]
		if e.nodes[a.Parent].departed {
			e.skippedMut++
			e.attIdx++
			continue
		}
		before := e.t.Len()
		e.t.Attach(a.Parent, a.Subtree, a.C)
		e.initNodes(before)
		for id := before; id < e.t.Len(); id++ {
			e.requestInitial(int32(id))
		}
		for id := before; id < e.t.Len(); id++ {
			e.trySchedule(int32(id))
		}
		e.trySchedule(int32(a.Parent))
		e.attIdx++
	}
}

// trySchedule lets node n start any action it can: computing a buffered
// task, starting or resuming a send, or (interruptible protocol)
// preempting its current send for higher-priority work.
func (e *engine) trySchedule(n int32) {
	ns := &e.nodes[n]
	if ns.departed {
		return
	}

	// CPU: the node itself is the highest-priority consumer (its
	// "communication time" is zero).
	if !ns.computing && e.hasTask(n) {
		app := e.takeTask(n)
		if e.multi {
			ns.computingApp = app
		}
		ns.computing = true
		e.met.ComputesStarted++
		ns.computeEv = e.s.Schedule(sim.Time(e.t.W(tree.NodeID(n))), evComputeComplete, n, 0)
		if e.trace != nil {
			e.trace.ComputeStart(e.s.Now(), tree.NodeID(n), ns.computeEv.At())
		}
	}

	// Send port.
	if ns.sending != noChild {
		if !e.cfg.Protocol.Interruptible {
			return
		}
		best, isShelf := e.bestCandidate(n)
		if best < 0 {
			return
		}
		if !e.higherPriority(n, best, isShelf, ns.sending, ns.sendSince) {
			return
		}
		// Preempt: shelve the in-flight transfer with its remaining time.
		if e.tl != nil {
			e.tlSendStop(n)
		}
		remaining := e.s.Cancel(ns.sendEv)
		ns.shelves = append(ns.shelves, shelf{child: ns.sending, remaining: remaining, since: ns.sendSince, app: ns.sendingApp})
		if len(ns.shelves) > ns.stat.MaxShelved {
			ns.stat.MaxShelved = len(ns.shelves)
		}
		ns.stat.Interrupted++
		e.met.SendsInterrupted++
		if e.trace != nil {
			e.trace.SendInterrupted(e.s.Now(), tree.NodeID(n), tree.NodeID(ns.sending), remaining)
		}
		ns.sending = noChild
		ns.sendEv = nil
		e.startSend(n, best, isShelf)
		return
	}

	best, isShelf := e.bestCandidate(n)
	if best >= 0 {
		e.startSend(n, best, isShelf)
	}
}

// startSend begins (or resumes) a transfer from n to child c.
func (e *engine) startSend(n, c int32, fromShelf bool) {
	ns := &e.nodes[n]
	if fromShelf {
		for i := range ns.shelves {
			if ns.shelves[i].child == c {
				sh := ns.shelves[i]
				ns.shelves = append(ns.shelves[:i], ns.shelves[i+1:]...)
				ns.sending = c
				ns.sendSince = sh.since
				ns.sendingApp = sh.app
				e.met.SendsResumed++
				if e.tl != nil {
					e.tlSendStart(n)
				}
				ns.sendEv = e.s.Schedule(sh.remaining, evSendComplete, n, c)
				if e.trace != nil {
					e.trace.SendStart(e.s.Now(), tree.NodeID(n), tree.NodeID(c), ns.sendEv.At(), true)
				}
				return
			}
		}
		panic("engine: resume of missing shelf")
	}
	cs := &e.nodes[c]
	since := cs.reqSince
	cs.reqPending--
	if cs.reqPending == 0 {
		ns.childReqCount--
	} else {
		// Remaining requests are at least as old; keep reqSince as an
		// upper bound of the oldest (requests are FIFO per child, and all
		// carry the same effective age for FCFS purposes).
		cs.reqSince = e.s.Now()
	}
	cs.incoming = true
	app := e.takeTask(n)
	if e.multi {
		ns.sendingApp = app
	}
	ns.stat.Forwarded++
	ns.sending = c
	ns.sendSince = since
	e.met.SendsStarted++
	if e.tl != nil {
		e.tlSendStart(n)
	}
	ns.sendEv = e.s.Schedule(sim.Time(e.t.C(tree.NodeID(c))), evSendComplete, n, c)
	if e.trace != nil {
		e.trace.SendStart(e.s.Now(), tree.NodeID(n), tree.NodeID(c), ns.sendEv.At(), false)
	}
}

// bestCandidate returns the highest-priority actionable work at node n's
// send port: either a shelved transfer (resumable unconditionally) or a
// child with an outstanding request (requires a task on hand and no
// transfer already in flight or shelved for that child). Returns (-1,
// false) when there is nothing to do.
func (e *engine) bestCandidate(n int32) (child int32, isShelf bool) {
	ns := &e.nodes[n]
	child = -1
	var bestKey int64
	canFresh := e.hasTask(n)

	consider := func(c int32, shelfCand bool, since sim.Time) {
		key := e.priorityKey(n, c, since)
		if child < 0 || key < bestKey || (key == bestKey && c < child) {
			child, isShelf, bestKey = c, shelfCand, key
		}
	}

	switch e.cfg.Protocol.Order {
	case protocol.RoundRobin:
		return e.roundRobinCandidate(n, canFresh)
	case protocol.Random:
		return e.randomCandidate(n, canFresh)
	}

	for i := range ns.shelves {
		consider(ns.shelves[i].child, true, ns.shelves[i].since)
	}
	if canFresh {
		for _, c := range ns.children {
			cs := &e.nodes[c]
			if cs.reqPending > 0 && !cs.incoming {
				consider(c, false, cs.reqSince)
			}
		}
	}
	return child, isShelf
}

// priorityKey returns the sort key (lower is higher priority) of serving
// child c from node n under the protocol's order.
func (e *engine) priorityKey(n, c int32, since sim.Time) int64 {
	switch e.cfg.Protocol.Order {
	case protocol.BandwidthCentric:
		return e.t.C(tree.NodeID(c))
	case protocol.ComputeCentric:
		return e.t.W(tree.NodeID(c))
	case protocol.FCFS:
		return int64(since)
	default:
		panic(fmt.Sprintf("engine: priorityKey with order %v", e.cfg.Protocol.Order))
	}
}

// higherPriority reports whether serving cand (a shelf if candShelf) beats
// continuing the current send to cur, whose backing request arrived at
// curSince.
func (e *engine) higherPriority(n, cand int32, candShelf bool, cur int32, curSince sim.Time) bool {
	var candSince sim.Time
	if candShelf {
		for i := range e.nodes[n].shelves {
			if e.nodes[n].shelves[i].child == cand {
				candSince = e.nodes[n].shelves[i].since
			}
		}
	} else {
		candSince = e.nodes[cand].reqSince
	}
	return e.priorityKey(n, cand, candSince) < e.priorityKey(n, cur, curSince)
}

// roundRobinCandidate scans children cyclically from the cursor; shelved
// transfers for a child take precedence over fresh sends to it.
func (e *engine) roundRobinCandidate(n int32, canFresh bool) (int32, bool) {
	ns := &e.nodes[n]
	k := len(ns.children)
	for i := 0; i < k; i++ {
		c := ns.children[(ns.rrNext+i)%k]
		if sh := e.hasShelf(n, c); sh {
			ns.rrNext = (ns.rrNext + i + 1) % k
			return c, true
		}
		cs := &e.nodes[c]
		if canFresh && cs.reqPending > 0 && !cs.incoming {
			ns.rrNext = (ns.rrNext + i + 1) % k
			return c, false
		}
	}
	return -1, false
}

// randomCandidate picks uniformly among actionable children.
func (e *engine) randomCandidate(n int32, canFresh bool) (int32, bool) {
	ns := &e.nodes[n]
	var pick int32 = -1
	pickShelf := false
	count := 0
	for _, c := range ns.children {
		shelf := e.hasShelf(n, c)
		cs := &e.nodes[c]
		fresh := canFresh && cs.reqPending > 0 && !cs.incoming
		if !shelf && !fresh {
			continue
		}
		count++
		if e.rng.IntN(count) == 0 {
			pick, pickShelf = c, shelf
		}
	}
	return pick, pickShelf
}

func (e *engine) hasShelf(n, c int32) bool {
	for i := range e.nodes[n].shelves {
		if e.nodes[n].shelves[i].child == c {
			return true
		}
	}
	return false
}

// depart removes the subtree rooted at node from the running platform.
// Every task the subtree held — buffered, computing, in flight within it,
// or in flight/shelved toward it from its parent — returns to the root's
// pool for re-dispatch. The departed nodes' statistics freeze; their IDs
// stay valid in the Result.
func (e *engine) depart(node tree.NodeID) {
	if e.nodes[node].departed {
		return // departing an already-gone subtree is a no-op
	}
	parent := int32(e.t.Parent(node))
	ps := &e.nodes[parent]
	if ps.departed {
		// The whole branch is already gone.
		return
	}

	var lost int64
	var lostApp []int64
	if e.multi {
		lostApp = make([]int64, len(e.cfg.Workloads))
	}

	// Parent side first: cancel or unshelve the transfer toward the
	// departing root and drop its outstanding requests.
	n32 := int32(node)
	if ps.sending == n32 {
		if e.tl != nil {
			e.tlSendStop(parent)
		}
		e.s.Cancel(ps.sendEv)
		if e.multi {
			lostApp[ps.sendingApp]++
		}
		ps.sending = noChild
		ps.sendEv = nil
		lost++
	}
	for i := 0; i < len(ps.shelves); i++ {
		if ps.shelves[i].child == n32 {
			if e.multi {
				lostApp[ps.shelves[i].app]++
			}
			ps.shelves = append(ps.shelves[:i], ps.shelves[i+1:]...)
			lost++
			break
		}
	}
	if e.nodes[node].reqPending > 0 {
		ps.childReqCount--
	}
	for i, c := range ps.children {
		if c == n32 {
			ps.children = append(ps.children[:i], ps.children[i+1:]...)
			break
		}
	}

	// Subtree side: cancel all work in progress and reclaim held tasks.
	for _, sid := range e.t.Subtree(node) {
		ns := &e.nodes[sid]
		ns.departed = true
		ns.stat.Departed = true
		lost += ns.occupied
		ns.occupied = 0
		if e.multi {
			for a, k := range ns.occApp {
				lostApp[a] += k
				ns.occApp[a] = 0
			}
		}
		if ns.computing {
			e.s.Cancel(ns.computeEv)
			if e.multi {
				lostApp[ns.computingApp]++
			}
			ns.computing = false
			ns.computeEv = nil
			lost++
		}
		if ns.sending != noChild {
			if e.tl != nil {
				e.tlSendStop(int32(sid))
			}
			e.s.Cancel(ns.sendEv)
			if e.multi {
				lostApp[ns.sendingApp]++
			}
			ns.sending = noChild
			ns.sendEv = nil
			lost++
		}
		lost += int64(len(ns.shelves))
		if e.multi {
			for i := range ns.shelves {
				lostApp[ns.shelves[i].app]++
			}
		}
		ns.shelves = nil
		ns.reqPending = 0
		ns.childReqCount = 0
	}

	e.pool += lost
	e.requeued += lost
	if e.multi {
		for a, k := range lostApp {
			e.pools[a] += k
			e.appRequeued[a] += k
		}
	}
	// The replenished pool and the parent's freed port may enable work.
	e.trySchedule(parent)
	if parent != 0 {
		e.trySchedule(0)
	}
}
