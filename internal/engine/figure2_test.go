package engine

// The paper's Figure 2 case studies, reproduced as executable tests. They
// motivate the whole protocol design: fixed small buffers cannot sustain
// the optimal rate under non-interruptible communication (2a, 2b), and
// interruptible communication removes the need to stockpile (Section 3.2).

import (
	"testing"

	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/rational"
	"bwcs/internal/tree"
	"bwcs/internal/window"
)

// figure2a builds the Figure 2(a) platform: the high-priority child B
// (c=1, w=2) should stay busy, but while A spends 5 time units sending to
// C, B burns through 2.5 tasks — so B needs at least 3 buffered tasks.
func figure2a() *tree.Tree {
	t := tree.New(1_000_000)   // A's own CPU is irrelevant to the story
	t.AddChild(t.Root(), 2, 1) // B
	t.AddChild(t.Root(), 8, 5) // C
	return t
}

// reachesOptimal runs p on t and applies the paper's onset detector (low
// threshold — these are tiny regular platforms, so the inclusive variant
// is the meaningful one; see DESIGN.md §5.8).
func reachesOptimal(t *testing.T, tr *tree.Tree, p protocol.Protocol, tasks int64) bool {
	t.Helper()
	res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks})
	series, err := window.New(res.Completions, optimal.Compute(tr).TreeWeight)
	if err != nil {
		t.Fatalf("window: %v", err)
	}
	_, ok := series.OnsetInclusive(50)
	return ok
}

func TestFigure2aOneBufferDoesNotSuffice(t *testing.T) {
	tr := figure2a()
	// Non-interruptible with one fixed buffer: B starves while C's long
	// sends run; the optimal steady state is unreachable.
	if reachesOptimal(t, tr, protocol.NonInterruptibleFixed(1), 2000) {
		t.Fatalf("figure 2(a): one fixed buffer sustained the optimal rate")
	}
	// With enough fixed buffers (3, the paper's count) non-IC recovers.
	if !reachesOptimal(t, tr, protocol.NonInterruptibleFixed(3), 2000) {
		t.Fatalf("figure 2(a): three fixed buffers did not sustain the optimal rate")
	}
}

func TestFigure2aGrowthFindsThreeBuffers(t *testing.T) {
	tr := figure2a()
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 2000})
	// B (node 1) must have needed ~3 simultaneous buffers, as the paper
	// computes, and the growth protocol must have provided them.
	if got := res.Nodes[1].MaxQueued; got < 3 {
		t.Fatalf("figure 2(a): B queued at most %d tasks, paper says 3 are needed", got)
	}
	if got := res.Nodes[1].Buffers; got < 3 {
		t.Fatalf("figure 2(a): B grew only %d buffers", got)
	}
}

func TestFigure2aInterruptionRemovesTheNeed(t *testing.T) {
	tr := figure2a()
	// "A high priority node like node B ... will not need to stockpile
	// tasks" — IC with a single buffer already sustains the optimal rate,
	// because sends to C are preempted whenever B asks.
	if !reachesOptimal(t, tr, protocol.Interruptible(1), 2000) {
		t.Fatalf("figure 2(a): IC FB=1 did not sustain the optimal rate")
	}
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 2000})
	if res.Nodes[0].Interrupted == 0 {
		t.Fatalf("figure 2(a): IC never preempted the long sends to C")
	}
	if got := res.Nodes[1].MaxQueued; got > 1 {
		t.Fatalf("figure 2(a): B stockpiled %d tasks under IC FB=1", got)
	}
}

// TestFigure2bUnboundedNeed reproduces Figure 2(b): for every k there is a
// platform where B needs more than k buffers — sending to C takes k*x+1
// while B computes a task every x.
func TestFigure2bUnboundedNeed(t *testing.T) {
	const x = 3
	for _, k := range []int64{2, 4, 6} {
		tr := tree.New(1_000_000)
		b := tr.AddChild(tr.Root(), x, 1)     // B: w=x
		tr.AddChild(tr.Root(), 10*k*x, k*x+1) // C: c=k*x+1
		res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 3000})
		if got := res.Nodes[b].MaxQueued; got < k {
			t.Fatalf("k=%d: B queued at most %d tasks, need more than %d-ish", k, got, k)
		}
		// Fixed buffers below k cannot ride out a C-send: B's coverage is
		// at most (k-1)·x buffered plus x in the CPU = k·x < k·x+1. (The
		// paper counts the in-CPU task among the k+1 "buffered" tasks, so
		// its k+1 is our k-1 queue slots plus CPU plus the in-flight one.)
		if reachesOptimal(t, tr, protocol.NonInterruptibleFixed(int(k-1)), 3000) {
			t.Fatalf("k=%d: %d fixed buffers sustained the optimal rate, contradicting figure 2(b)", k, k-1)
		}
	}
}

// TestFigure2aOptimalRate pins the analytic rate of the 2(a) platform so
// the scenario stays what the paper describes: B saturated (1/2), C fed
// with the leftover port.
func TestFigure2aOptimalRate(t *testing.T) {
	tr := figure2a()
	a := optimal.Compute(tr)
	// Port: B needs c/w = 1/2; C gets ε = 1/2 of the port → rate ε/c = 1/10.
	// Rate = 1/w_A + 1/2 + 1/10; w_A = 10^6 contributes 1/10^6.
	want := rational.New(1, 1_000_000).Add(rational.New(1, 2)).Add(rational.New(1, 10))
	if !a.Rate.Equal(want) {
		t.Fatalf("figure 2(a) optimal rate %v, want %v", a.Rate, want)
	}
	if a.Class(tr, 1) != optimal.Saturated || a.Class(tr, 2) != optimal.Partial {
		t.Fatalf("figure 2(a) classes wrong: B=%v C=%v", a.Class(tr, 1), a.Class(tr, 2))
	}
}
