package engine

// Multi-workload tests: the tagging invariance (a multi-application run's
// aggregate schedule is identical to the single-application run of the
// same total size), per-application conservation, weighted sharing,
// mid-run releases, and departure requeue attribution.

import (
	"testing"

	"bwcs/internal/protocol"
	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

// TestWorkloadsAggregateMatchesSingle is the determinism pin at the engine
// level: splitting the same task count across applications must not move a
// single aggregate completion, on every platform shape and protocol,
// because scheduling decisions read only untagged totals.
func TestWorkloadsAggregateMatchesSingle(t *testing.T) {
	const tasks = 600
	ws := []Workload{
		{App: "a", Tasks: 100, Weight: 1},
		{App: "b", Tasks: 200, Weight: 3},
		{App: "c", Tasks: 300, Weight: 2},
	}
	for _, tr := range propertyTrees(t) {
		for _, p := range propertyProtocols {
			single := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks, Seed: 9})
			multi := mustRun(t, Config{Tree: tr, Protocol: p, Workloads: ws, Seed: 9})
			if len(single.Completions) != len(multi.Completions) {
				t.Fatalf("%v: %d vs %d completions", p, len(single.Completions), len(multi.Completions))
			}
			for i := range single.Completions {
				if single.Completions[i] != multi.Completions[i] {
					t.Fatalf("%v: completion %d at %d (multi) vs %d (single)",
						p, i, multi.Completions[i], single.Completions[i])
				}
			}
			if multi.Makespan != single.Makespan {
				t.Fatalf("%v: makespan %d vs %d", p, multi.Makespan, single.Makespan)
			}
		}
	}
}

// TestWorkloadsConservation: every application's tasks all complete, each
// app's completion times are ascending, and the per-app streams merge
// exactly into the aggregate stream.
func TestWorkloadsConservation(t *testing.T) {
	ws := []Workload{
		{App: "a", Tasks: 150, Weight: 2},
		{App: "b", Tasks: 250, Weight: 1},
		{App: "c", Tasks: 200, Weight: 5},
	}
	for _, tr := range propertyTrees(t) {
		res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Workloads: ws})
		if len(res.Apps) != len(ws) {
			t.Fatalf("Apps = %d, want %d", len(res.Apps), len(ws))
		}
		counts := make(map[sim.Time]int)
		for i, ar := range res.Apps {
			if ar.App != ws[i].App || ar.Tasks != ws[i].Tasks || ar.Weight != ws[i].weight() {
				t.Fatalf("app %d echo mismatch: %+v vs %+v", i, ar, ws[i])
			}
			if int64(len(ar.Completions)) != ws[i].Tasks {
				t.Fatalf("app %s: %d completions, want %d", ar.App, len(ar.Completions), ws[i].Tasks)
			}
			for j := 1; j < len(ar.Completions); j++ {
				if ar.Completions[j] < ar.Completions[j-1] {
					t.Fatalf("app %s: completions not ascending at %d", ar.App, j)
				}
			}
			for _, c := range ar.Completions {
				counts[c]++
			}
		}
		for _, c := range res.Completions {
			counts[c]--
		}
		for at, k := range counts {
			if k != 0 {
				t.Fatalf("per-app and aggregate completion multisets differ at t=%d (delta %d)", at, k)
			}
		}
	}
}

// TestWorkloadsWeightedShares: on a star platform where every application
// stays eligible throughout, service over a mid-run window is ordered by
// weight and close to proportional.
func TestWorkloadsWeightedShares(t *testing.T) {
	star := tree.New(9)
	for i := 0; i < 8; i++ {
		star.AddChild(star.Root(), 6, 2)
	}
	ws := []Workload{
		{App: "small", Tasks: 1000, Weight: 1},
		{App: "mid", Tasks: 2000, Weight: 2},
		{App: "big", Tasks: 4000, Weight: 4},
	}
	res := mustRun(t, Config{Tree: star, Protocol: protocol.Interruptible(3), Workloads: ws})
	n := len(res.Completions)
	lo, hi := res.Completions[n/5], res.Completions[n*4/5]
	share := make([]int, len(ws))
	for a, ar := range res.Apps {
		for _, c := range ar.Completions {
			if c > lo && c <= hi {
				share[a]++
			}
		}
	}
	if !(share[0] < share[1] && share[1] < share[2]) {
		t.Fatalf("shares not monotone in weight: %v", share)
	}
	// Weight-normalized shares should agree within 15% while all pools
	// stay occupied (tasks were provisioned proportional to weights).
	per := []float64{float64(share[0]) / 1, float64(share[1]) / 2, float64(share[2]) / 4}
	for i := 1; i < len(per); i++ {
		ratio := per[i] / per[0]
		if ratio < 0.85 || ratio > 1.15 {
			t.Fatalf("weight-normalized shares uneven: %v (shares %v)", per, share)
		}
	}
}

// TestWorkloadsRelease: an application released mid-run completes nothing
// before its release time, and everything afterwards.
func TestWorkloadsRelease(t *testing.T) {
	tr := tree.New(4)
	tr.AddChild(tr.Root(), 4, 1)
	tr.AddChild(tr.Root(), 4, 2)
	const release = sim.Time(500)
	ws := []Workload{
		{App: "resident", Tasks: 400, Weight: 1},
		{App: "tenant", Tasks: 100, Weight: 1, Release: release},
	}
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Workloads: ws})
	tenant := res.Apps[1]
	if int64(len(tenant.Completions)) != 100 {
		t.Fatalf("tenant completed %d of 100", len(tenant.Completions))
	}
	if first := tenant.Completions[0]; first <= release {
		t.Fatalf("tenant completion at %d, before release %d", first, release)
	}
	if res.Apps[0].Completions[0] >= release {
		t.Fatalf("resident idle until the tenant arrived")
	}
}

// TestWorkloadsDepartureRequeue: a departure loses tasks of specific
// applications; the per-app requeue attribution must sum to the aggregate
// and every application must still finish all its tasks.
func TestWorkloadsDepartureRequeue(t *testing.T) {
	tr := tree.New(6)
	c := tr.AddChild(tr.Root(), 4, 1)
	tr.AddChild(c, 3, 2)
	tr.AddChild(tr.Root(), 5, 3)
	ws := []Workload{
		{App: "a", Tasks: 300, Weight: 1},
		{App: "b", Tasks: 300, Weight: 2},
	}
	res := mustRun(t, Config{
		Tree: tr, Protocol: protocol.Interruptible(2), Workloads: ws,
		Departures: []DepartMutation{{AfterTasks: 150, Node: c}},
	})
	var sum int64
	for _, ar := range res.Apps {
		if int64(len(ar.Completions)) != ar.Tasks {
			t.Fatalf("app %s completed %d of %d", ar.App, len(ar.Completions), ar.Tasks)
		}
		sum += ar.Requeued
	}
	if sum != res.Requeued {
		t.Fatalf("per-app requeued sums to %d, aggregate %d", sum, res.Requeued)
	}
	if res.Requeued == 0 {
		t.Fatalf("departure requeued nothing; test exercises no attribution")
	}
}

// TestWorkloadsValidate: config errors for malformed workload sets.
func TestWorkloadsValidate(t *testing.T) {
	tr := tree.New(3)
	base := func() Config {
		return Config{Tree: tr, Protocol: protocol.Interruptible(1)}
	}
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"both tasks and workloads", func(c *Config) {
			c.Tasks = 5
			c.Workloads = []Workload{{App: "a", Tasks: 5}}
		}},
		{"empty app name", func(c *Config) { c.Workloads = []Workload{{Tasks: 5}} }},
		{"duplicate app", func(c *Config) {
			c.Workloads = []Workload{{App: "a", Tasks: 5}, {App: "a", Tasks: 5}}
		}},
		{"negative tasks", func(c *Config) { c.Workloads = []Workload{{App: "a", Tasks: -1}} }},
		{"negative weight", func(c *Config) { c.Workloads = []Workload{{App: "a", Tasks: 5, Weight: -2}} }},
		{"negative release", func(c *Config) { c.Workloads = []Workload{{App: "a", Tasks: 5, Release: -1}} }},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		if _, err := Run(cfg); err == nil {
			t.Fatalf("%s: Run accepted invalid config", tc.name)
		}
	}
}
