package engine

// Tests for mid-run platform dynamics: departures (resources leaving with
// task requeue) and buffer decay.

import (
	"testing"

	"bwcs/internal/protocol"
	"bwcs/internal/tree"
)

func TestDepartureRequeuesAndCompletes(t *testing.T) {
	// A productive subtree departs halfway; every one of its in-progress
	// tasks must be requeued and the application must still finish.
	tr := tree.New(50)
	a := tr.AddChild(tr.Root(), 4, 1) // fast subtree that will depart
	tr.AddChild(a, 4, 1)
	tr.AddChild(tr.Root(), 8, 2) // survives
	res := mustRun(t, Config{
		Tree:       tr,
		Protocol:   protocol.Interruptible(2),
		Tasks:      500,
		Departures: []DepartMutation{{AfterTasks: 200, Node: a}},
	})
	var computed int64
	for _, ns := range res.Nodes {
		computed += ns.Computed
	}
	if computed != 500 {
		t.Fatalf("computed %d of 500 after departure", computed)
	}
	if res.Requeued == 0 {
		t.Fatalf("busy subtree departed with zero requeued tasks")
	}
	if !res.Nodes[a].Departed || !res.Nodes[2].Departed {
		t.Fatalf("departure flags not set: %+v", res.Nodes)
	}
	if res.Nodes[3].Departed || res.Nodes[0].Departed {
		t.Fatalf("survivors flagged departed")
	}
	// The departed subtree computed tasks before leaving, none after: its
	// totals must be below what a full run would give it.
	full := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(2), Tasks: 500})
	if res.Nodes[a].Computed >= full.Nodes[a].Computed {
		t.Fatalf("departed node computed as much as in a full run")
	}
	// And the run must be slower than the intact platform's.
	if res.Makespan <= full.Makespan {
		t.Fatalf("losing workers did not slow the run: %d <= %d", res.Makespan, full.Makespan)
	}
}

func TestDepartureOfOnlyWorker(t *testing.T) {
	// The root must finish everything alone after its only child leaves.
	tr := tree.New(5)
	c := tr.AddChild(tr.Root(), 1, 1)
	res := mustRun(t, Config{
		Tree:       tr,
		Protocol:   protocol.Interruptible(3),
		Tasks:      300,
		Departures: []DepartMutation{{AfterTasks: 50, Node: c}},
	})
	if res.Nodes[0].Computed+res.Nodes[c].Computed != 300 {
		t.Fatalf("tasks lost: %+v", res.Nodes)
	}
	if res.Nodes[c].Computed >= 300 {
		t.Fatalf("departed child computed everything")
	}
}

func TestDepartureDuringWindDown(t *testing.T) {
	// Departure near the end, when the pool is drained: requeued tasks
	// must re-enter the pool and still complete.
	tr := tree.New(100)
	c := tr.AddChild(tr.Root(), 3, 1)
	res := mustRun(t, Config{
		Tree:       tr,
		Protocol:   protocol.Interruptible(3),
		Tasks:      100,
		Departures: []DepartMutation{{AfterTasks: 95, Node: c}},
	})
	if got := len(res.Completions); got != 100 {
		t.Fatalf("completions = %d", got)
	}
}

func TestDepartureValidation(t *testing.T) {
	tr := tree.New(5)
	tr.AddChild(tr.Root(), 5, 1)
	if _, err := Run(Config{
		Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10,
		Departures: []DepartMutation{{AfterTasks: 5, Node: 0}},
	}); err == nil {
		t.Fatalf("root departure accepted")
	}
	// Unknown IDs pass validation (they may be created by a later
	// attachment) but are skipped and counted when they fire.
	res, err := Run(Config{
		Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10,
		Departures: []DepartMutation{{AfterTasks: 5, Node: 99}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.SkippedMutations != 1 {
		t.Fatalf("SkippedMutations = %d, want 1", res.SkippedMutations)
	}
}

func TestMutationAfterDepartureIsSkipped(t *testing.T) {
	tr := tree.New(10)
	c := tr.AddChild(tr.Root(), 5, 1)
	res := mustRun(t, Config{
		Tree:       tr,
		Protocol:   protocol.Interruptible(2),
		Tasks:      200,
		Departures: []DepartMutation{{AfterTasks: 50, Node: c}},
		Mutations:  []Mutation{{AfterTasks: 100, Node: c, W: 1}},
	})
	if res.SkippedMutations != 1 {
		t.Fatalf("SkippedMutations = %d, want 1", res.SkippedMutations)
	}
	if res.Tree.W(c) != 5 {
		t.Fatalf("mutation applied to departed node")
	}
}

func TestAttachToDepartedParentIsSkipped(t *testing.T) {
	tr := tree.New(10)
	c := tr.AddChild(tr.Root(), 5, 1)
	sub := tree.New(3)
	res := mustRun(t, Config{
		Tree:        tr,
		Protocol:    protocol.Interruptible(2),
		Tasks:       200,
		Departures:  []DepartMutation{{AfterTasks: 50, Node: c}},
		Attachments: []AttachMutation{{AfterTasks: 100, Parent: c, Subtree: sub, C: 1}},
	})
	if res.SkippedMutations != 1 {
		t.Fatalf("SkippedMutations = %d, want 1", res.SkippedMutations)
	}
	if res.Tree.Len() != 2 {
		t.Fatalf("subtree attached under departed parent")
	}
}

func TestNestedDepartureIsNoOp(t *testing.T) {
	// Departing a node inside an already-departed subtree changes nothing.
	tr := tree.New(10)
	a := tr.AddChild(tr.Root(), 5, 1)
	b := tr.AddChild(a, 5, 1)
	res := mustRun(t, Config{
		Tree:     tr,
		Protocol: protocol.Interruptible(2),
		Tasks:    200,
		Departures: []DepartMutation{
			{AfterTasks: 50, Node: a},
			{AfterTasks: 60, Node: b},
		},
	})
	var computed int64
	for _, ns := range res.Nodes {
		computed += ns.Computed
	}
	if computed != 200 {
		t.Fatalf("computed %d of 200", computed)
	}
}

func TestChurnAttachThenDepart(t *testing.T) {
	// A subtree joins, works, then leaves; the run still completes and
	// the joiners computed something while present.
	tr := tree.New(20)
	sub := tree.New(2)
	sub.AddChild(sub.Root(), 2, 1)
	res := mustRun(t, Config{
		Tree:        tr,
		Protocol:    protocol.Interruptible(2),
		Tasks:       600,
		Attachments: []AttachMutation{{AfterTasks: 100, Parent: 0, Subtree: sub, C: 1}},
		Departures:  []DepartMutation{{AfterTasks: 400, Node: 1}},
	})
	var computed int64
	for _, ns := range res.Nodes {
		computed += ns.Computed
	}
	if computed != 600 {
		t.Fatalf("computed %d of 600", computed)
	}
	if res.Nodes[1].Computed == 0 || res.Nodes[2].Computed == 0 {
		t.Fatalf("joiners never worked: %+v", res.Nodes)
	}
	if !res.Nodes[1].Departed || !res.Nodes[2].Departed {
		t.Fatalf("joiners not flagged departed")
	}
}

func TestDecayRetiresOverGrownBuffers(t *testing.T) {
	// Figure 2(b)-style platform forces B to grow buffers to ride out the
	// long sends to its slow sibling C. When C departs, B's supply
	// becomes continuous and its grown buffers over-provisioned: decay
	// must retire some. (While C is present the grown buffers are all
	// needed, and a variant of this test asserts decay leaves them alone
	// — see TestDecayKeepsNeededBuffers.)
	const x, k = 4, 5
	build := func() *tree.Tree {
		tr := tree.New(100000)
		tr.AddChild(tr.Root(), x, 1)
		tr.AddChild(tr.Root(), k*x+1, k*x+1)
		return tr
	}
	departC := []DepartMutation{{AfterTasks: 1000, Node: 2}}
	plain := mustRun(t, Config{Tree: build(), Protocol: protocol.NonInterruptible(1), Tasks: 2000, Departures: departC})
	decayed := mustRun(t, Config{Tree: build(), Protocol: protocol.NonInterruptible(1).WithDecay(8), Tasks: 2000, Departures: departC})
	var retired int64
	for _, ns := range decayed.Nodes {
		retired += ns.Decayed
	}
	if retired == 0 {
		t.Fatalf("decay never retired a buffer")
	}
	if decayed.TotalBuffers() >= plain.TotalBuffers() {
		t.Fatalf("decay did not reduce buffer usage: %d >= %d", decayed.TotalBuffers(), plain.TotalBuffers())
	}
	// Decay must not break the application.
	var computed int64
	for _, ns := range decayed.Nodes {
		computed += ns.Computed
	}
	if computed != 2000 {
		t.Fatalf("computed %d of 2000 with decay", computed)
	}
}

func TestDecayNeverBelowInitialBuffers(t *testing.T) {
	tr := tree.New(50)
	tr.AddChild(tr.Root(), 4, 1)
	tr.AddChild(tr.Root(), 9, 3)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(2).WithDecay(4), Tasks: 800})
	for i, ns := range res.Nodes {
		if ns.Buffers < 2 {
			t.Fatalf("node %d decayed below initial buffers: %d", i, ns.Buffers)
		}
	}
}

func TestDecayValidation(t *testing.T) {
	if err := (protocol.Protocol{InitialBuffers: 1, Decay: true}).Validate(); err == nil {
		t.Fatalf("decay without growth accepted")
	}
	if err := (protocol.Protocol{InitialBuffers: 1, Grow: true, Decay: true, DecayWindow: -1}).Validate(); err == nil {
		t.Fatalf("negative decay window accepted")
	}
	if err := (protocol.Protocol{InitialBuffers: 1, Grow: true, DecayWindow: 5}).Validate(); err == nil {
		t.Fatalf("decay window without decay accepted")
	}
	if err := protocol.NonInterruptible(1).WithDecay(0).Validate(); err != nil {
		t.Fatalf("default decay window rejected: %v", err)
	}
}

func TestExtremeWeightsDoNotOverflow(t *testing.T) {
	// Weights near 1e15 with thousands of tasks stay far below int64
	// overflow; completions must remain sane and monotone.
	tr := tree.New(1_000_000_000_000_000)
	tr.AddChild(tr.Root(), 999_999_999_999_999, 888_888_888_888)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 5})
	if res.Makespan <= 0 {
		t.Fatalf("makespan overflowed: %d", res.Makespan)
	}
	for i := 1; i < len(res.Completions); i++ {
		if res.Completions[i] < res.Completions[i-1] {
			t.Fatalf("completions not monotone under extreme weights")
		}
	}
}

func TestDeepChainPlatform(t *testing.T) {
	// A 400-deep chain exercises the recursive request path without
	// blowing the stack and still completes and reaches its optimum shape.
	tr := tree.New(1000)
	cur := tr.Root()
	for i := 0; i < 400; i++ {
		cur = tr.AddChild(cur, 1000, 1)
	}
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(2), Tasks: 2000})
	var computed int64
	deepest := 0
	for i, ns := range res.Nodes {
		computed += ns.Computed
		if ns.Computed > 0 && tr.Depth(tree.NodeID(i)) > deepest {
			deepest = tr.Depth(tree.NodeID(i))
		}
	}
	if computed != 2000 {
		t.Fatalf("computed %d of 2000", computed)
	}
	if deepest < 100 {
		t.Fatalf("work only reached depth %d of a 400-chain", deepest)
	}
}

func TestWideStarPlatform(t *testing.T) {
	// 500 children on one node exercises the O(children) scheduling scans.
	// Compute is slow relative to the links (c/w ≈ 1/100), so the port can
	// keep dozens of children fed rather than saturating on one.
	tr := tree.New(997)
	for i := 0; i < 500; i++ {
		tr.AddChild(tr.Root(), int64(200+i%40), int64(i%5+1))
	}
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(2), Tasks: 3000})
	var computed int64
	for _, ns := range res.Nodes {
		computed += ns.Computed
	}
	if computed != 3000 {
		t.Fatalf("computed %d of 3000", computed)
	}
	if res.UsedCount() < 20 {
		t.Fatalf("only %d children used on a wide star", res.UsedCount())
	}
}
