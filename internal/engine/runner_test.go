package engine

import (
	"slices"
	"testing"

	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/sim"
)

// runnerParams generates mid-sized random platforms for reuse tests.
var runnerParams = randtree.Params{MinNodes: 10, MaxNodes: 120, MinComm: 1, MaxComm: 60, Comp: 3000}

// resultSnapshot captures everything a Result exposes into freshly owned
// memory, so reused-buffer results can be compared across runs.
type resultSnapshot struct {
	completions []sim.Time
	nodes       []NodeStat
	checkpoints []CheckpointStat
	makespan    sim.Time
	steps       uint64
	requeued    int64
	met         Metrics
}

func snapshot(r *Result) resultSnapshot {
	s := resultSnapshot{
		completions: slices.Clone(r.Completions),
		nodes:       slices.Clone(r.Nodes),
		checkpoints: slices.Clone(r.Checkpoints),
		makespan:    r.Makespan,
		steps:       r.Steps,
		requeued:    r.Requeued,
		met:         r.Metrics,
	}
	// The event free list survives across a Runner's runs, so a warm run
	// legitimately reports more FreeListHits and fewer EventAllocs than a
	// cold one. Everything else must be bit-identical.
	s.met.FreeListHits = 0
	s.met.EventAllocs = 0
	return s
}

func equalSnapshots(a, b resultSnapshot) bool {
	return slices.Equal(a.completions, b.completions) &&
		slices.Equal(a.nodes, b.nodes) &&
		slices.Equal(a.checkpoints, b.checkpoints) &&
		a.makespan == b.makespan && a.steps == b.steps &&
		a.requeued == b.requeued && a.met == b.met
}

// TestRunnerReuseBitIdentical: a sequence of runs through one Runner —
// across trees of very different sizes and several protocols — produces
// results identical to fresh package-level Runs of the same configs.
func TestRunnerReuseBitIdentical(t *testing.T) {
	protos := []protocol.Protocol{
		protocol.Interruptible(3),
		protocol.NonInterruptible(1),
		protocol.Interruptible(1),
	}
	r := NewRunner()
	for i := 0; i < 6; i++ {
		tr := randtree.TreeAt(runnerParams, 99, i)
		cfg := Config{
			Tree:        tr,
			Protocol:    protos[i%len(protos)],
			Tasks:       700,
			Seed:        uint64(i),
			Checkpoints: []int64{100, 500},
		}
		fresh, err := Run(cfg)
		if err != nil {
			t.Fatalf("tree %d: fresh Run: %v", i, err)
		}
		want := snapshot(fresh)
		reused, err := r.Run(cfg)
		if err != nil {
			t.Fatalf("tree %d: Runner.Run: %v", i, err)
		}
		if got := snapshot(reused); !equalSnapshots(got, want) {
			t.Fatalf("tree %d: reused-runner result differs from fresh run\nfresh:  %+v\nreused: %+v", i, want, got)
		}
	}
}

// TestRunnerWarmFreeList: from the second run on, the simulator serves
// essentially every event from the recycled free list instead of
// allocating — the cross-tree recycling the sweep path relies on.
func TestRunnerWarmFreeList(t *testing.T) {
	tr := randtree.TreeAt(runnerParams, 7, 3)
	cfg := Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 600}
	r := NewRunner()
	cold, err := r.Run(cfg)
	if err != nil {
		t.Fatalf("cold run: %v", err)
	}
	if cold.Metrics.EventAllocs == 0 {
		t.Fatalf("cold run reported no event allocations")
	}
	warm, err := r.Run(cfg)
	if err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if warm.Metrics.EventAllocs != 0 {
		t.Fatalf("warm run allocated %d events, want 0 (free list not recycled across runs)", warm.Metrics.EventAllocs)
	}
	if warm.Metrics.FreeListHits != cold.Metrics.FreeListHits+cold.Metrics.EventAllocs {
		t.Fatalf("warm hits = %d, want all %d schedules recycled",
			warm.Metrics.FreeListHits, cold.Metrics.FreeListHits+cold.Metrics.EventAllocs)
	}
}

// TestRunnerWarmRunAllocs pins the warm-path allocation profile: after
// the first run, repeating the same run through the Runner allocates only
// the per-run irreducibles (the Result header and a few words of
// bookkeeping — measured at 5 allocations), not the event pool, the tree,
// the node table or the completions buffer.
func TestRunnerWarmRunAllocs(t *testing.T) {
	tr := randtree.TreeAt(runnerParams, 7, 3)
	cfg := Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 600}
	r := NewRunner()
	if _, err := r.Run(cfg); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := r.Run(cfg); err != nil {
			t.Fatal(err)
		}
	})
	// A cold engine.Run on this config allocates several hundred times;
	// the warm path must stay within the result-header budget. The bound
	// leaves headroom over the measured 5 to stay robust across
	// toolchains.
	if allocs > 12 {
		t.Fatalf("warm Runner.Run allocates %.0f times per run, want <= 12", allocs)
	}
}

// TestRunnerAfterMultiWorkloadRun: a Runner that just ran a
// multi-application config resets cleanly back to single-application
// runs (the tagged state must not leak).
func TestRunnerAfterMultiWorkloadRun(t *testing.T) {
	tr := randtree.TreeAt(runnerParams, 11, 1)
	r := NewRunner()
	multi := Config{
		Tree:     tr,
		Protocol: protocol.Interruptible(3),
		Workloads: []Workload{
			{App: "a", Tasks: 200, Weight: 2},
			{App: "b", Tasks: 100, Weight: 1},
		},
	}
	if _, err := r.Run(multi); err != nil {
		t.Fatalf("multi run: %v", err)
	}
	single := Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 300}
	fresh, err := Run(single)
	if err != nil {
		t.Fatalf("fresh single run: %v", err)
	}
	reused, err := r.Run(single)
	if err != nil {
		t.Fatalf("reused single run: %v", err)
	}
	if !equalSnapshots(snapshot(reused), snapshot(fresh)) {
		t.Fatalf("single-app run after multi-app run differs from fresh run")
	}
	if reused.Apps != nil {
		t.Fatalf("single-app run reports per-app results: %+v", reused.Apps)
	}
}
