package engine

// Property tests: physical invariants that must hold for every protocol on
// every platform. These cross-validate the engine against the model
// itself — ports have capacity 1, tasks are conserved, buffers are
// bounded — rather than against expected outputs.

import (
	"math/rand/v2"
	"testing"

	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/rational"
	"bwcs/internal/tree"
)

var propertyProtocols = []protocol.Protocol{
	protocol.Interruptible(1),
	protocol.Interruptible(3),
	protocol.NonInterruptible(1),
	protocol.NonInterruptibleFixed(2),
	protocol.NonInterruptible(1).WithDecay(8),
	protocol.NonInterruptibleFixed(3).WithOrder(protocol.ComputeCentric),
	protocol.NonInterruptibleFixed(3).WithOrder(protocol.FCFS),
	protocol.NonInterruptibleFixed(3).WithOrder(protocol.RoundRobin),
	protocol.NonInterruptibleFixed(3).WithOrder(protocol.Random),
}

func propertyTrees(t *testing.T) []*tree.Tree {
	t.Helper()
	params := randtree.Params{MinNodes: 2, MaxNodes: 70, MinComm: 1, MaxComm: 60, Comp: 800}
	var out []*tree.Tree
	for i := 0; i < 8; i++ {
		out = append(out, randtree.TreeAt(params, 1234, i))
	}
	// Degenerate shapes.
	single := tree.New(7)
	out = append(out, single)
	chain := tree.New(5)
	cur := chain.Root()
	for i := 0; i < 10; i++ {
		cur = chain.AddChild(cur, 3, 2)
	}
	out = append(out, chain)
	star := tree.New(9)
	for i := 0; i < 12; i++ {
		star.AddChild(star.Root(), int64(i%5+1), int64(i%7+1))
	}
	out = append(out, star)
	return out
}

func TestPropertyConservationAcrossProtocols(t *testing.T) {
	const tasks = 600
	for _, tr := range propertyTrees(t) {
		for _, p := range propertyProtocols {
			res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks, Seed: 9})
			var computed int64
			for id := 0; id < tr.Len(); id++ {
				ns := &res.Nodes[id]
				computed += ns.Computed
				// Every non-root node's intake equals its output.
				if id != 0 && ns.Received != ns.Computed+ns.Forwarded {
					t.Fatalf("%v node %d: received %d != computed %d + forwarded %d",
						p, id, ns.Received, ns.Computed, ns.Forwarded)
				}
				// A parent's forwards equal its children's receipts.
				var childReceived int64
				for _, k := range tr.Children(tree.NodeID(id)) {
					childReceived += res.Nodes[k].Received
				}
				if ns.Forwarded != childReceived {
					t.Fatalf("%v node %d: forwarded %d != children received %d", p, id, ns.Forwarded, childReceived)
				}
			}
			if computed != tasks {
				t.Fatalf("%v: computed %d of %d", p, computed, tasks)
			}
			// Root intake: pool only.
			if res.Nodes[0].Computed+res.Nodes[0].Forwarded != tasks {
				t.Fatalf("%v: root handled %d tasks, want %d", p, res.Nodes[0].Computed+res.Nodes[0].Forwarded, tasks)
			}
		}
	}
}

func TestPropertyPortCapacities(t *testing.T) {
	// CPU port: a node computing k tasks of weight w must take at least
	// k*w time. Receive port: k deliveries over a link of weight c take at
	// least k*c (interruption never shrinks total transfer time). Send
	// port: Σ_children received(j)*c(j) <= makespan + slack for the final
	// in-flight transfer.
	const tasks = 500
	for _, tr := range propertyTrees(t) {
		for _, p := range []protocol.Protocol{protocol.Interruptible(3), protocol.NonInterruptible(1)} {
			res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks, Seed: 3})
			makespan := int64(res.Makespan)
			for id := 0; id < tr.Len(); id++ {
				ns := &res.Nodes[id]
				if ns.Computed*tr.W(tree.NodeID(id)) > makespan {
					t.Fatalf("%v node %d: computed %d tasks of weight %d in %d timesteps",
						p, id, ns.Computed, tr.W(tree.NodeID(id)), makespan)
				}
				if id != 0 && ns.Received*tr.C(tree.NodeID(id)) > makespan {
					t.Fatalf("%v node %d: received %d tasks over link %d in %d timesteps",
						p, id, ns.Received, tr.C(tree.NodeID(id)), makespan)
				}
				var sendTime int64
				for _, k := range tr.Children(tree.NodeID(id)) {
					sendTime += res.Nodes[k].Received * tr.C(k)
				}
				if sendTime > makespan {
					t.Fatalf("%v node %d: send port busy %d of %d timesteps", p, id, sendTime, makespan)
				}
			}
		}
	}
}

func TestPropertyMakespanRespectsOptimalRate(t *testing.T) {
	// No protocol can finish T tasks faster than the optimal steady-state
	// rate allows: makespan >= T * wtree (within one task of slack for
	// boundary effects).
	const tasks = 800
	for _, tr := range propertyTrees(t) {
		opt := optimal.Compute(tr)
		bound := rational.FromInt(tasks - 1).Mul(opt.TreeWeight)
		for _, p := range propertyProtocols {
			res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks, Seed: 4})
			if rational.FromInt(int64(res.Makespan)).Less(bound) {
				t.Fatalf("%v on %v: makespan %d beats the optimal bound %v",
					p, tr, res.Makespan, bound.Format(2))
			}
		}
	}
}

func TestPropertyBuffersBounded(t *testing.T) {
	const tasks = 500
	for _, tr := range propertyTrees(t) {
		for _, p := range propertyProtocols {
			res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: tasks, Seed: 5})
			for id := 0; id < tr.Len(); id++ {
				ns := &res.Nodes[id]
				if !p.Grow && ns.Buffers != int64(p.InitialBuffers) {
					t.Fatalf("%v node %d: fixed buffers changed to %d", p, id, ns.Buffers)
				}
				// Queued tasks never exceed the capacity high-water (the
				// root uses the pool, not buffers; final capacity can be
				// lower under decay).
				if id != 0 && ns.MaxQueued > ns.MaxCapacity {
					t.Fatalf("%v node %d: queued %d > capacity high-water %d", p, id, ns.MaxQueued, ns.MaxCapacity)
				}
				// Shelved transfers: at most one per child.
				if ns.MaxShelved > len(tr.Children(tree.NodeID(id))) {
					t.Fatalf("%v node %d: %d shelves for %d children", p, id, ns.MaxShelved, len(tr.Children(tree.NodeID(id))))
				}
				if !p.Interruptible && ns.MaxShelved > 0 {
					t.Fatalf("%v node %d: shelved without interruption", p, id)
				}
			}
		}
	}
}

func TestPropertyDeterministicUnderChurn(t *testing.T) {
	// Even with attachments and departures mid-run, identical configs give
	// identical traces.
	params := randtree.Params{MinNodes: 10, MaxNodes: 40, MinComm: 1, MaxComm: 30, Comp: 500}
	rng := rand.New(rand.NewPCG(6, 6))
	for i := 0; i < 5; i++ {
		tr := randtree.TreeAt(params, 777, i)
		sub := tree.New(rng.Int64N(300) + 1)
		sub.AddChild(sub.Root(), rng.Int64N(300)+1, rng.Int64N(20)+1)
		cfg := Config{
			Tree:        tr,
			Protocol:    protocol.Interruptible(2),
			Tasks:       400,
			Attachments: []AttachMutation{{AfterTasks: 100, Parent: 0, Subtree: sub, C: 3}},
			Departures:  []DepartMutation{{AfterTasks: 250, Node: tree.NodeID(rng.IntN(tr.Len()-1) + 1)}},
		}
		a := mustRun(t, cfg)
		b := mustRun(t, cfg)
		if a.Makespan != b.Makespan || a.Steps != b.Steps || a.Requeued != b.Requeued {
			t.Fatalf("tree %d: churn runs diverged: (%d,%d,%d) vs (%d,%d,%d)",
				i, a.Makespan, a.Steps, a.Requeued, b.Makespan, b.Steps, b.Requeued)
		}
		for k := range a.Completions {
			if a.Completions[k] != b.Completions[k] {
				t.Fatalf("tree %d: completions diverged at %d", i, k)
			}
		}
	}
}
