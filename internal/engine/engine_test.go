package engine

import (
	"testing"

	"bwcs/internal/protocol"
	"bwcs/internal/sim"
	"bwcs/internal/tree"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return res
}

func TestSingleNodeComputesSerially(t *testing.T) {
	tr := tree.New(5)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 10})
	if len(res.Completions) != 10 {
		t.Fatalf("completions = %d, want 10", len(res.Completions))
	}
	for i, c := range res.Completions {
		if want := sim.Time(5 * (i + 1)); c != want {
			t.Fatalf("completion %d at %d, want %d", i, c, want)
		}
	}
	if res.Makespan != 50 {
		t.Fatalf("makespan = %d, want 50", res.Makespan)
	}
	if res.Nodes[0].Computed != 10 {
		t.Fatalf("root computed %d, want 10", res.Nodes[0].Computed)
	}
}

// TestTwoNodeHandTrace follows the exact event sequence of a root (w=10)
// with one child (w=10, c=1) on 4 tasks under non-IC IB=1:
//
//	t=0  root starts computing and sends task to child
//	t=1  child receives, starts computing; root sends the next task
//	t=2  second task parked in the child's buffer
//	t=10 root completes #1, starts its last task
//	t=11 child completes #2, starts the buffered task
//	t=20 root completes #3
//	t=21 child completes #4
func TestTwoNodeHandTrace(t *testing.T) {
	tr := tree.New(10)
	tr.AddChild(tr.Root(), 10, 1)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 4})
	want := []sim.Time{10, 11, 20, 21}
	if len(res.Completions) != len(want) {
		t.Fatalf("completions = %v, want %v", res.Completions, want)
	}
	for i := range want {
		if res.Completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", res.Completions, want)
		}
	}
	if res.Nodes[0].Computed != 2 || res.Nodes[1].Computed != 2 {
		t.Fatalf("split = %d/%d, want 2/2", res.Nodes[0].Computed, res.Nodes[1].Computed)
	}
	if res.Nodes[0].Forwarded != 2 || res.Nodes[1].Received != 2 {
		t.Fatalf("forwarded/received = %d/%d, want 2/2", res.Nodes[0].Forwarded, res.Nodes[1].Received)
	}
}

func TestZeroTasks(t *testing.T) {
	tr := tree.New(3)
	tr.AddChild(tr.Root(), 3, 1)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 0})
	if len(res.Completions) != 0 || res.Makespan != 0 {
		t.Fatalf("zero-task run produced work: %+v", res)
	}
}

func TestBandwidthCentricPriority(t *testing.T) {
	// Root is slow; child F has the fast link, child S the slow one. Both
	// have equal CPUs. F must receive (and compute) far more tasks.
	tr := tree.New(1000)
	f := tr.AddChild(tr.Root(), 10, 1)
	s := tr.AddChild(tr.Root(), 10, 40)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 200})
	if res.Nodes[f].Computed <= res.Nodes[s].Computed {
		t.Fatalf("fast-link child computed %d <= slow-link child %d",
			res.Nodes[f].Computed, res.Nodes[s].Computed)
	}
}

func TestInterruptionPreemptsSlowSend(t *testing.T) {
	// B (c=1, w=2) drains fast and re-requests while the root's long send
	// to C (c=10) is in flight: under IC that send must be preempted at
	// least once; under non-IC never.
	build := func() *tree.Tree {
		tr := tree.New(3)
		tr.AddChild(tr.Root(), 2, 1)   // B
		tr.AddChild(tr.Root(), 10, 10) // C
		return tr
	}
	ic := mustRun(t, Config{Tree: build(), Protocol: protocol.Interruptible(1), Tasks: 40})
	if ic.Nodes[0].Interrupted == 0 {
		t.Fatalf("IC run never interrupted a send")
	}
	if ic.Nodes[0].MaxShelved < 1 {
		t.Fatalf("IC run never shelved a transfer")
	}
	nic := mustRun(t, Config{Tree: build(), Protocol: protocol.NonInterruptible(1), Tasks: 40})
	if nic.Nodes[0].Interrupted != 0 || nic.Nodes[0].MaxShelved != 0 {
		t.Fatalf("non-IC run interrupted sends: %+v", nic.Nodes[0])
	}
	// Preemption must never lose work.
	if ic.Nodes[1].Received+ic.Nodes[2].Received != ic.Nodes[0].Forwarded {
		t.Fatalf("IC lost tasks in flight")
	}
}

func TestInterruptedTransferResumesWithRemainingTime(t *testing.T) {
	// One task to C (c=10) is interrupted by B's request and resumed; C's
	// delivery must take exactly its remaining time, not restart. With
	// B (c=2, w=100) and C (c=10, w=100), root w=100, 3 tasks, IC FB=1:
	//
	//	t=0  root computes #1; sends to B (2)
	//	t=2  B starts #2; root starts send to C (10)
	//	...B computes for 100, so no interruption before C's delivery at 12.
	//
	// To force an interrupt mid-send, B must re-request during (2,12): give
	// B w=3: at t=5 B's buffer frees... B took the task at t=2 (request
	// went up at 2, send to C started at 2 — same instant, C first? The
	// request at t=2 arrives while the port is free, B has no incoming and
	// highest priority, so B gets the next task; C's send starts after.
	// Instead delay B's re-request by giving B w=5 and 2 buffers: B's
	// second buffer is filled at t=4 (c=2), then B re-requests at t=5 when
	// it takes that task — interrupting C's send started at t=4 with 8
	// remaining. C's task then resumes at t=7 and lands at 7+8=15... This
	// test asserts the observable outcome rather than the full trace: C
	// receives exactly one task and the makespan matches a hand-computed
	// 15+100=115 < restart-from-scratch timings.
	tr := tree.New(1000)
	tr.AddChild(tr.Root(), 5, 2)         // B
	c := tr.AddChild(tr.Root(), 100, 10) // C
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(2), Tasks: 6})
	if res.Nodes[0].Interrupted == 0 {
		t.Fatalf("expected at least one interruption")
	}
	if res.Nodes[c].Received == 0 {
		t.Fatalf("C never received its task")
	}
	// All tasks accounted for despite preemption.
	var computed int64
	for _, ns := range res.Nodes {
		computed += ns.Computed
	}
	if computed != 6 {
		t.Fatalf("computed %d of 6", computed)
	}
}

func TestFixedBuffersNeverGrow(t *testing.T) {
	tr := tree.New(7)
	tr.AddChild(tr.Root(), 3, 1)
	tr.AddChild(tr.Root(), 4, 2)
	for _, p := range []protocol.Protocol{protocol.Interruptible(1), protocol.Interruptible(3), protocol.NonInterruptibleFixed(2)} {
		res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: 50})
		for i, ns := range res.Nodes {
			if ns.Buffers != int64(p.InitialBuffers) {
				t.Fatalf("%v: node %d buffers %d, want %d", p, i, ns.Buffers, p.InitialBuffers)
			}
		}
	}
}

func TestGrowthProtocolGrowsWhenStarved(t *testing.T) {
	// The Figure 2(b) construction: B (c=1, w=x) needs ~k+1 buffered tasks
	// to ride out A's long send to C (c = k*x+1). Under non-IC with one
	// initial buffer, B must grow buffers.
	const x, k = 4, 5
	tr := tree.New(100000) // root CPU effectively out of the picture
	b := tr.AddChild(tr.Root(), x, 1)
	tr.AddChild(tr.Root(), k*x+1, k*x+1) // C
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 400})
	if res.Nodes[b].Buffers <= 1 {
		t.Fatalf("B did not grow buffers: %d", res.Nodes[b].Buffers)
	}
}

func TestGrowthCap(t *testing.T) {
	const x, k = 4, 5
	tr := tree.New(100000)
	tr.AddChild(tr.Root(), x, 1)
	tr.AddChild(tr.Root(), k*x+1, k*x+1)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.NonInterruptible(1).WithCap(3), Tasks: 400})
	for i, ns := range res.Nodes[1:] {
		if ns.Buffers > 3 {
			t.Fatalf("node %d grew past cap: %d", i+1, ns.Buffers)
		}
	}
}

func TestDeterministicReplay(t *testing.T) {
	tr := tree.New(9)
	a := tr.AddChild(tr.Root(), 4, 2)
	tr.AddChild(tr.Root(), 6, 3)
	tr.AddChild(a, 2, 1)
	for _, p := range []protocol.Protocol{
		protocol.Interruptible(2),
		protocol.NonInterruptible(1),
		protocol.NonInterruptible(1).WithOrder(protocol.Random),
	} {
		cfg := Config{Tree: tr, Protocol: p, Tasks: 100, Seed: 5}
		r1 := mustRun(t, cfg)
		r2 := mustRun(t, cfg)
		if len(r1.Completions) != len(r2.Completions) {
			t.Fatalf("%v: replay lengths differ", p)
		}
		for i := range r1.Completions {
			if r1.Completions[i] != r2.Completions[i] {
				t.Fatalf("%v: replay diverged at %d", p, i)
			}
		}
		if r1.Steps != r2.Steps {
			t.Fatalf("%v: step counts differ", p)
		}
	}
}

func TestCompletionsAreMonotonic(t *testing.T) {
	tr := tree.New(9)
	a := tr.AddChild(tr.Root(), 4, 2)
	tr.AddChild(tr.Root(), 6, 3)
	tr.AddChild(a, 2, 1)
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 200})
	for i := 1; i < len(res.Completions); i++ {
		if res.Completions[i] < res.Completions[i-1] {
			t.Fatalf("completions not monotone at %d", i)
		}
	}
	if res.Makespan != res.Completions[len(res.Completions)-1] {
		t.Fatalf("makespan %d != last completion %d", res.Makespan, res.Completions[len(res.Completions)-1])
	}
}

func TestMutationChangesComputeSpeed(t *testing.T) {
	// Single node, w=10 -> w=1 after 5 tasks: completions 10..50 then 51..55.
	tr := tree.New(10)
	res := mustRun(t, Config{
		Tree:      tr,
		Protocol:  protocol.Interruptible(1),
		Tasks:     10,
		Mutations: []Mutation{{AfterTasks: 5, Node: 0, W: 1}},
	})
	want := []sim.Time{10, 20, 30, 40, 50, 51, 52, 53, 54, 55}
	for i := range want {
		if res.Completions[i] != want[i] {
			t.Fatalf("completions = %v, want %v", res.Completions, want)
		}
	}
	if res.Tree.W(0) != 1 {
		t.Fatalf("result tree not mutated: w=%d", res.Tree.W(0))
	}
}

func TestMutationDoesNotTouchCallerTree(t *testing.T) {
	tr := tree.New(10)
	tr.AddChild(tr.Root(), 5, 2)
	mustRun(t, Config{
		Tree:      tr,
		Protocol:  protocol.Interruptible(1),
		Tasks:     10,
		Mutations: []Mutation{{AfterTasks: 2, Node: 1, W: 1, C: 1}},
	})
	if tr.W(1) != 5 || tr.C(1) != 2 {
		t.Fatalf("caller's tree was mutated")
	}
}

func TestMutationChangesCommSpeed(t *testing.T) {
	// Slowing the only child's link mid-run must slow the tail of the run:
	// compare against the unmutated baseline.
	build := func() *tree.Tree {
		tr := tree.New(50)
		tr.AddChild(tr.Root(), 4, 1)
		return tr
	}
	base := mustRun(t, Config{Tree: build(), Protocol: protocol.Interruptible(2), Tasks: 200})
	slowed := mustRun(t, Config{
		Tree: build(), Protocol: protocol.Interruptible(2), Tasks: 200,
		Mutations: []Mutation{{AfterTasks: 50, Node: 1, C: 8}},
	})
	if slowed.Makespan <= base.Makespan {
		t.Fatalf("slowing the link did not slow the run: %d <= %d", slowed.Makespan, base.Makespan)
	}
}

func TestCheckpoints(t *testing.T) {
	tr := tree.New(6)
	tr.AddChild(tr.Root(), 3, 1)
	res := mustRun(t, Config{
		Tree: tr, Protocol: protocol.NonInterruptible(1), Tasks: 100,
		Checkpoints: []int64{10, 50, 100},
	})
	if len(res.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(res.Checkpoints))
	}
	var prev sim.Time
	for i, ck := range res.Checkpoints {
		if ck.AfterTasks != []int64{10, 50, 100}[i] {
			t.Fatalf("checkpoint %d AfterTasks = %d", i, ck.AfterTasks)
		}
		if ck.Time < prev {
			t.Fatalf("checkpoint times not monotone")
		}
		prev = ck.Time
		if ck.MaxNodeBuffers < 1 || ck.TotalBuffers < ck.MaxNodeBuffers {
			t.Fatalf("checkpoint %d buffer stats inconsistent: %+v", i, ck)
		}
	}
	// Buffers never decay, so the per-checkpoint numbers are monotone.
	for i := 1; i < len(res.Checkpoints); i++ {
		if res.Checkpoints[i].TotalBuffers < res.Checkpoints[i-1].TotalBuffers {
			t.Fatalf("total buffers decreased between checkpoints")
		}
	}
}

func TestAttachmentAddsWorkers(t *testing.T) {
	tr := tree.New(10)
	sub := tree.New(2)
	sub.AddChild(sub.Root(), 2, 1)
	res := mustRun(t, Config{
		Tree: tr, Protocol: protocol.Interruptible(2), Tasks: 300,
		Attachments: []AttachMutation{{AfterTasks: 20, Parent: 0, Subtree: sub, C: 1}},
	})
	if res.Tree.Len() != 3 {
		t.Fatalf("tree did not grow: %d nodes", res.Tree.Len())
	}
	if res.Nodes[1].Computed == 0 || res.Nodes[2].Computed == 0 {
		t.Fatalf("attached nodes computed nothing: %+v", res.Nodes)
	}
	var total int64
	for _, ns := range res.Nodes {
		total += ns.Computed
	}
	if total != 300 {
		t.Fatalf("computed %d of 300", total)
	}
	// The attached workers must make the run faster than the root alone.
	if res.Makespan >= 300*10 {
		t.Fatalf("attachment did not speed up the run: makespan %d", res.Makespan)
	}
}

func TestUsedHelpers(t *testing.T) {
	tr := tree.New(4)
	a := tr.AddChild(tr.Root(), 4, 1)
	tr.AddChild(a, 4, 1)
	tr.AddChild(tr.Root(), 100, 90) // too expensive to feed; likely unused
	res := mustRun(t, Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 100})
	if res.UsedCount() < 3 {
		t.Fatalf("UsedCount = %d, want >= 3", res.UsedCount())
	}
	if res.UsedMaxDepth() < 2 {
		t.Fatalf("UsedMaxDepth = %d, want >= 2", res.UsedMaxDepth())
	}
	if res.MaxNodeBuffers() != 3 {
		t.Fatalf("MaxNodeBuffers = %d, want 3", res.MaxNodeBuffers())
	}
	if res.TotalBuffers() != 3*int64(tr.Len()) {
		t.Fatalf("TotalBuffers = %d", res.TotalBuffers())
	}
}

func TestMaxStepsAborts(t *testing.T) {
	tr := tree.New(5)
	tr.AddChild(tr.Root(), 5, 1)
	_, err := Run(Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10000, MaxSteps: 10})
	if err == nil {
		t.Fatalf("MaxSteps did not abort")
	}
}

func TestConfigValidation(t *testing.T) {
	good := func() Config {
		tr := tree.New(5)
		tr.AddChild(tr.Root(), 5, 1)
		return Config{Tree: tr, Protocol: protocol.Interruptible(1), Tasks: 10}
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"nil tree", func(c *Config) { c.Tree = nil }},
		{"bad protocol", func(c *Config) { c.Protocol.InitialBuffers = 0 }},
		{"negative tasks", func(c *Config) { c.Tasks = -1 }},
		{"unsorted checkpoints", func(c *Config) { c.Checkpoints = []int64{5, 2} }},
		{"mutation bad node", func(c *Config) { c.Mutations = []Mutation{{Node: 99, W: 1}} }},
		{"mutation c on root", func(c *Config) { c.Mutations = []Mutation{{Node: 0, C: 3}} }},
		{"mutation no change", func(c *Config) { c.Mutations = []Mutation{{Node: 1}} }},
		{"mutation negative", func(c *Config) { c.Mutations = []Mutation{{Node: 1, W: -2}} }},
		{"attach bad parent", func(c *Config) { c.Attachments = []AttachMutation{{Parent: 99, Subtree: tree.New(1), C: 1}} }},
		{"attach nil subtree", func(c *Config) { c.Attachments = []AttachMutation{{Parent: 0, C: 1}} }},
		{"attach bad link", func(c *Config) { c.Attachments = []AttachMutation{{Parent: 0, Subtree: tree.New(1), C: 0}} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good()
			tc.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatalf("invalid config accepted")
			}
		})
	}
	if _, err := Run(good()); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestOrderBaselinesComplete(t *testing.T) {
	tr := tree.New(9)
	a := tr.AddChild(tr.Root(), 4, 2)
	tr.AddChild(tr.Root(), 6, 3)
	tr.AddChild(a, 2, 1)
	tr.AddChild(a, 8, 5)
	for _, o := range []protocol.Order{
		protocol.BandwidthCentric, protocol.ComputeCentric,
		protocol.FCFS, protocol.RoundRobin, protocol.Random,
	} {
		p := protocol.NonInterruptible(1).WithOrder(o)
		res := mustRun(t, Config{Tree: tr, Protocol: p, Tasks: 150, Seed: 11})
		var total int64
		for _, ns := range res.Nodes {
			total += ns.Computed
		}
		if total != 150 {
			t.Fatalf("%v computed %d of 150", o, total)
		}
	}
}

// Benchmarks: engine throughput per protocol on a paper-distribution tree.
func benchTree() *tree.Tree {
	// A fixed mid-size platform so numbers are comparable across runs.
	tr := tree.New(5000)
	for i := 0; i < 8; i++ {
		a := tr.AddChild(tr.Root(), int64(500+i*700), int64(1+i*12))
		for j := 0; j < 4; j++ {
			tr.AddChild(a, int64(300+j*900), int64(2+j*20))
		}
	}
	return tr
}

func benchmarkProtocol(b *testing.B, p protocol.Protocol) {
	tr := benchTree()
	b.ReportAllocs()
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		res, err := Run(Config{Tree: tr, Protocol: p, Tasks: 5000, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		events += res.Steps
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEngineIC3(b *testing.B)   { benchmarkProtocol(b, protocol.Interruptible(3)) }
func BenchmarkEngineIC1(b *testing.B)   { benchmarkProtocol(b, protocol.Interruptible(1)) }
func BenchmarkEngineNonIC(b *testing.B) { benchmarkProtocol(b, protocol.NonInterruptible(1)) }
func BenchmarkEngineNonICDecay(b *testing.B) {
	benchmarkProtocol(b, protocol.NonInterruptible(1).WithDecay(0))
}
func BenchmarkEngineTraced(b *testing.B) {
	tr := benchTree()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := &nopTracer{}
		if _, err := Run(Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: 5000, Tracer: rec}); err != nil {
			b.Fatal(err)
		}
	}
}

// nopTracer measures tracing overhead without recording.
type nopTracer struct{}

func (*nopTracer) ComputeStart(sim.Time, tree.NodeID, sim.Time)                 {}
func (*nopTracer) ComputeDone(sim.Time, tree.NodeID, int64)                     {}
func (*nopTracer) SendStart(sim.Time, tree.NodeID, tree.NodeID, sim.Time, bool) {}
func (*nopTracer) SendInterrupted(sim.Time, tree.NodeID, tree.NodeID, sim.Time) {}
func (*nopTracer) SendDone(sim.Time, tree.NodeID, tree.NodeID)                  {}
func (*nopTracer) Requested(sim.Time, tree.NodeID)                              {}
func (*nopTracer) Grew(sim.Time, tree.NodeID, int64)                            {}
