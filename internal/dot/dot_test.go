package dot

import (
	"strings"
	"testing"

	"bwcs/internal/optimal"
	"bwcs/internal/tree"
)

func sample() *tree.Tree {
	t := tree.New(10)
	t.AddChild(t.Root(), 1, 1)  // saturated
	t.AddChild(t.Root(), 1, 50) // starved behind a slow link
	return t
}

func TestWritePlain(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, sample(), Options{}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "platform"`, "rankdir=TB",
		"n0 [label=\"root P0\\nw=10\"", "n0 -> n1 [label=\"c=1\"]", "n0 -> n2 [label=\"c=50\"]",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "dashed") {
		t.Fatalf("plain render has allocation styling:\n%s", out)
	}
}

func TestWriteWithAllocation(t *testing.T) {
	tr := sample()
	var b strings.Builder
	if err := Write(&b, tr, Options{Name: "fig1", Rankdir: "LR", Allocation: optimal.Compute(tr)}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "fig1"`, "rankdir=LR",
		"palegreen",    // the saturated child
		"lightgray",    // the starved child
		"style=dashed", // its unused edge
		"rate=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestWriteErrors(t *testing.T) {
	var b strings.Builder
	if err := Write(&b, nil, Options{}); err == nil {
		t.Fatalf("nil tree accepted")
	}
}
