// Package dot renders platform trees as Graphviz DOT documents, so
// platforms and their optimal allocations can be inspected visually with
// standard tooling (dot -Tsvg platform.dot -o platform.svg).
//
// Nodes are annotated with their compute weight and, when an allocation is
// supplied, their steady-state role: saturated nodes are filled green,
// partially fed nodes yellow, starved nodes gray. Edges carry their
// communication weight; edges on paths that carry no tasks in the optimal
// schedule are dashed.
package dot

import (
	"fmt"
	"io"

	"bwcs/internal/optimal"
	"bwcs/internal/tree"
)

// Options customizes rendering.
type Options struct {
	// Name is the graph name; default "platform".
	Name string
	// Allocation, when non-nil, colors nodes by their optimal role and
	// annotates rates.
	Allocation *optimal.Allocation
	// Rankdir is the Graphviz layout direction; default "TB".
	Rankdir string
}

// Write renders t to w as a DOT digraph.
func Write(w io.Writer, t *tree.Tree, o Options) error {
	if t == nil {
		return fmt.Errorf("dot: nil tree")
	}
	if err := t.Validate(); err != nil {
		return fmt.Errorf("dot: %w", err)
	}
	if o.Name == "" {
		o.Name = "platform"
	}
	if o.Rankdir == "" {
		o.Rankdir = "TB"
	}
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph %q {\n", o.Name)
	p("  rankdir=%s;\n", o.Rankdir)
	p("  node [shape=box, style=filled, fillcolor=white, fontname=\"monospace\"];\n")
	t.Walk(func(id tree.NodeID) bool {
		label := fmt.Sprintf("P%d\\nw=%d", id, t.W(id))
		fill := "white"
		if a := o.Allocation; a != nil {
			switch a.Class(t, id) {
			case optimal.Saturated:
				fill = "palegreen"
			case optimal.Partial:
				fill = "khaki"
			case optimal.Starved:
				fill = "lightgray"
			}
			label += fmt.Sprintf("\\nrate=%s", a.NodeRate[id].Format(4))
		}
		if id == t.Root() {
			label = "root " + label
		}
		p("  n%d [label=\"%s\", fillcolor=%s];\n", id, label, fill)
		return true
	})
	t.Walk(func(id tree.NodeID) bool {
		if id == t.Root() {
			return true
		}
		attrs := fmt.Sprintf("label=\"c=%d\"", t.C(id))
		if a := o.Allocation; a != nil {
			if a.InflowRate[id].IsZero() {
				attrs += ", style=dashed, color=gray"
			} else {
				attrs += fmt.Sprintf(", penwidth=2, taillabel=\"%s\"", a.InflowRate[id].Format(3))
			}
		}
		p("  n%d -> n%d [%s];\n", t.Parent(id), id, attrs)
		return true
	})
	p("}\n")
	return err
}
