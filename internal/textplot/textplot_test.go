package textplot

import (
	"math"
	"strings"
	"testing"
)

func render(t *testing.T, c *Chart) string {
	t.Helper()
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		t.Fatalf("Render: %v", err)
	}
	return b.String()
}

func TestChartBasics(t *testing.T) {
	c := NewChart("throughput", 40, 10).
		Labels("tasks", "rate").
		Line("ic3", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	out := render(t, c)
	if !strings.Contains(out, "throughput") {
		t.Fatalf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "ic3") {
		t.Fatalf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "x: tasks") || !strings.Contains(out, "y: rate") {
		t.Fatalf("missing axis labels:\n%s", out)
	}
	if !strings.Contains(out, "*") {
		t.Fatalf("missing series marker:\n%s", out)
	}
	// Monotone series: the first plot row (max y) and last (min y) each
	// hold a point.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], "*") || !strings.Contains(lines[10], "*") {
		t.Fatalf("extremes not plotted:\n%s", out)
	}
}

func TestChartMultipleSeriesDistinctMarkers(t *testing.T) {
	c := NewChart("", 30, 8).
		Line("a", []float64{0, 1}, []float64{0, 0}).
		Line("b", []float64{0, 1}, []float64{1, 1})
	out := render(t, c)
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Fatalf("markers not distinct:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "+ b") {
		t.Fatalf("legend wrong:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	out := render(t, NewChart("empty", 20, 5))
	if !strings.Contains(out, "(no data)") {
		t.Fatalf("empty chart output: %q", out)
	}
}

func TestChartSkipsNonFinite(t *testing.T) {
	c := NewChart("", 20, 5).
		Line("s", []float64{0, 1, 2}, []float64{1, math.NaN(), 2}).
		Line("inf", []float64{0, math.Inf(1)}, []float64{1, 1})
	out := render(t, c)
	if strings.Contains(out, "(no data)") {
		t.Fatalf("finite points dropped:\n%s", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// A single repeated point must not divide by zero.
	c := NewChart("", 20, 5).Line("flat", []float64{5, 5}, []float64{2, 2})
	out := render(t, c)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant series not plotted:\n%s", out)
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("mismatched lengths accepted")
		}
	}()
	NewChart("", 20, 5).Line("bad", []float64{1}, []float64{1, 2})
}

func TestChartClampsTinySizes(t *testing.T) {
	c := NewChart("t", 1, 1).Line("s", []float64{0, 1}, []float64{0, 1})
	out := render(t, c)
	if len(out) == 0 {
		t.Fatalf("no output")
	}
}

func TestBars(t *testing.T) {
	var b strings.Builder
	err := Bars(&b, "buffers", []string{"x=500", "x=10000"}, []float64{3, 551}, 30)
	if err != nil {
		t.Fatalf("Bars: %v", err)
	}
	out := b.String()
	if !strings.Contains(out, "buffers") || !strings.Contains(out, "x=500") {
		t.Fatalf("missing content:\n%s", out)
	}
	// The larger value must produce the longer bar.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if strings.Count(lines[1], "=") >= strings.Count(lines[2], "=") {
		t.Fatalf("bar lengths not proportional:\n%s", out)
	}
	if !strings.Contains(lines[2], "551") {
		t.Fatalf("value label missing:\n%s", out)
	}
}

func TestBarsErrors(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, "", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatalf("mismatched lengths accepted")
	}
	if err := Bars(&b, "", []string{"a"}, []float64{-1}, 10); err == nil {
		t.Fatalf("negative value accepted")
	}
	if err := Bars(&b, "", []string{"a"}, []float64{math.NaN()}, 10); err == nil {
		t.Fatalf("NaN accepted")
	}
}

func TestBarsAllZero(t *testing.T) {
	var b strings.Builder
	if err := Bars(&b, "", []string{"a", "b"}, []float64{0, 0}, 10); err != nil {
		t.Fatalf("Bars: %v", err)
	}
}
