// Package textplot renders simple line charts and bar charts as plain
// text, so the experiment harness can show every figure of the paper
// directly in a terminal and in logged experiment reports without any
// graphics dependency.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// markers assigns a distinct glyph to each series, in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@', '%', '&'}

type series struct {
	name string
	xs   []float64
	ys   []float64
}

// Chart is a multi-series scatter/line chart drawn on a character grid.
type Chart struct {
	title  string
	xlabel string
	ylabel string
	width  int
	height int
	series []series
}

// NewChart returns an empty chart with the given plot-area size in
// characters. Sizes are clamped to a sane minimum.
func NewChart(title string, width, height int) *Chart {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Chart{title: title, width: width, height: height}
}

// Labels sets the axis labels.
func (c *Chart) Labels(x, y string) *Chart {
	c.xlabel, c.ylabel = x, y
	return c
}

// Line adds a named series. xs and ys must have equal length; points with
// NaN or Inf are skipped at render time.
func (c *Chart) Line(name string, xs, ys []float64) *Chart {
	if len(xs) != len(ys) {
		panic(fmt.Sprintf("textplot: series %q has %d xs but %d ys", name, len(xs), len(ys)))
	}
	c.series = append(c.series, series{name: name, xs: xs, ys: ys})
	return c
}

// bounds returns the data extent across all series, ignoring non-finite
// points, and reports whether any point exists.
func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.series {
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) {
				continue
			}
			ok = true
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, y), math.Max(ymax, y)
		}
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	return xmin, xmax, ymin, ymax, ok
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	var b strings.Builder
	if c.title != "" {
		fmt.Fprintf(&b, "%s\n", c.title)
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		b.WriteString("(no data)\n")
		_, err := io.WriteString(w, b.String())
		return err
	}

	grid := make([][]byte, c.height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", c.width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for i := range s.xs {
			x, y := s.xs[i], s.ys[i]
			if !finite(x) || !finite(y) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(c.width-1))
			row := c.height - 1 - int((y-ymin)/(ymax-ymin)*float64(c.height-1))
			grid[row][col] = m
		}
	}

	yLo, yHi := fmtNum(ymin), fmtNum(ymax)
	margin := len(yLo)
	if len(yHi) > margin {
		margin = len(yHi)
	}
	for i, row := range grid {
		label := strings.Repeat(" ", margin)
		switch i {
		case 0:
			label = pad(yHi, margin)
		case c.height - 1:
			label = pad(yLo, margin)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", c.width))
	xLo, xHi := fmtNum(xmin), fmtNum(xmax)
	gap := c.width - len(xLo) - len(xHi)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%s  %s%s%s\n", strings.Repeat(" ", margin), xLo, strings.Repeat(" ", gap), xHi)
	if c.xlabel != "" || c.ylabel != "" {
		fmt.Fprintf(&b, "%s  x: %s   y: %s\n", strings.Repeat(" ", margin), c.xlabel, c.ylabel)
	}
	for si, s := range c.series {
		fmt.Fprintf(&b, "%s   %c %s\n", strings.Repeat(" ", margin), markers[si%len(markers)], s.name)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, n int) string {
	if len(s) >= n {
		return s
	}
	return strings.Repeat(" ", n-len(s)) + s
}

// fmtNum renders an axis bound compactly.
func fmtNum(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e9 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3g", v)
}

// sparkRunes are the eighth-block glyphs Spark scales values onto.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline, scaled from the
// minimum to the maximum finite value. Non-finite entries render as a
// space; a flat series renders at the lowest block.
func Spark(values []float64) string {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if !finite(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		if !finite(v) {
			b.WriteByte(' ')
			continue
		}
		i := 0
		if hi > lo {
			i = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[i])
	}
	return b.String()
}

// Bars renders a horizontal bar chart of labeled non-negative values,
// scaled so the longest bar spans width characters.
func Bars(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("textplot: %d labels but %d values", len(labels), len(values))
	}
	if width < 8 {
		width = 8
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	max := 0.0
	lw := 0
	for i, v := range values {
		if v < 0 || !finite(v) {
			return fmt.Errorf("textplot: bar value %v at %d", v, i)
		}
		if v > max {
			max = v
		}
		if len(labels[i]) > lw {
			lw = len(labels[i])
		}
	}
	for i, v := range values {
		n := 0
		if max > 0 {
			n = int(v / max * float64(width))
		}
		fmt.Fprintf(&b, "%s |%s %s\n", pad(labels[i], lw), strings.Repeat("=", n), fmtNum(v))
	}
	_, err := io.WriteString(w, b.String())
	return err
}
