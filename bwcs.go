// Package bwcs implements autonomous bandwidth-centric scheduling of
// independent-task applications on tree-structured computing platforms,
// reproducing Kreaseck, Carter, Casanova and Ferrante, "Autonomous
// Protocols for Bandwidth-Centric Scheduling of Independent-task
// Applications" (IPDPS 2003).
//
// # Model
//
// A platform is a node-weighted, edge-weighted tree: W(i) is node i's time
// to compute one task, C(i) the time to move one task (input plus results)
// across the edge to i's parent. The root holds the application's pool of
// identical, independent tasks. Every node can simultaneously receive one
// task from its parent, send one task to one child, and compute ("base
// model").
//
// # What the library provides
//
//   - The optimal steady-state rate and fluid schedule of any platform
//     tree (the bandwidth-centric theorem), via Optimal.
//   - The paper's autonomous protocols — distributed, request-driven
//     scheduling using only locally observable information — with
//     interruptible (IC) and non-interruptible (NonIC) communications,
//     simulated deterministically by Simulate.
//   - The paper's steady-state detection methodology (sliding growing
//     windows, exact rational comparisons) via Evaluate and RateSeries.
//   - The paper's random platform generator (GenerateTree), its example
//     platform (ExampleTree), and overlay-construction strategies over
//     physical host graphs (the internal/overlay package, surfaced through
//     the bwexp command).
//
// # Quick start
//
// Work is described as Workloads — one per application (tenant) sharing
// the platform — and evaluated with EvaluateWorkloads. The paper's
// single-application experiments are the one-workload special case:
//
//	t := bwcs.NewTree(10)                  // root computes a task in 10
//	t.AddChild(t.Root(), 5, 1)             // fast link, medium CPU
//	t.AddChild(t.Root(), 2, 8)             // slow link, fast CPU
//	m, err := bwcs.EvaluateWorkloads(ctx, t, bwcs.IC(3), []bwcs.Workload{
//		{App: "batch", Tasks: 8_000, Weight: 1},
//		{App: "interactive", Tasks: 2_000, Weight: 3},
//	})
//	// m.Optimal.Rate       — the provably optimal steady-state rate
//	// m.Aggregate.Reached  — did the platform attain it overall?
//	// m.Apps[1].Share      — the tenant's measured mid-run share
//	// m.Fairness           — Jain's index of weighted fair sharing
//
// Run-level knobs (seeds, mid-run mutations, checkpoints, tracing,
// metrics) are functional options shared by every entry point:
// EvaluateWorkloads(ctx, t, p, ws, bwcs.WithSeed(7), bwcs.WithMetrics(&m)).
// Evaluate is the single-workload shorthand, and Simulate exposes the raw
// engine run without the analysis.
//
// The full evaluation of the paper (every figure and table) lives in the
// bwexp command; see EXPERIMENTS.md for measured-versus-paper results.
package bwcs

import (
	"context"
	"fmt"
	"io"

	"bwcs/internal/engine"
	"bwcs/internal/experiments"
	"bwcs/internal/optimal"
	"bwcs/internal/protocol"
	"bwcs/internal/randtree"
	"bwcs/internal/rational"
	"bwcs/internal/sim"
	"bwcs/internal/stats"
	"bwcs/internal/steady"
	"bwcs/internal/tree"
	"bwcs/internal/window"
)

// Tree is a weighted platform tree. Build one with NewTree and AddChild,
// decode one with DecodeTree, or generate one with GenerateTree.
type Tree = tree.Tree

// NodeID identifies a node of a Tree; the root is always 0.
type NodeID = tree.NodeID

// Rat is an exact rational number; optimal rates are exact.
type Rat = rational.Rat

// NewTree returns a platform holding only a root that computes one task in
// rootW timesteps.
func NewTree(rootW int64) *Tree { return tree.New(rootW) }

// DecodeTree reads a platform in the text format produced by Tree.Encode.
func DecodeTree(r io.Reader) (*Tree, error) { return tree.Decode(r) }

// TreeParams are the paper's five random-platform parameters (m, n, b, d,
// x); see DefaultTreeParams.
type TreeParams = randtree.Params

// DefaultTreeParams returns the paper's simulation parameters:
// 10..500 nodes, link times 1..100, compute times x/100..x with x=10000.
func DefaultTreeParams() TreeParams { return randtree.Defaults() }

// GenerateTree returns the index'th random platform of the deterministic
// stream identified by (params, seed). The same triple always yields the
// same tree.
func GenerateTree(params TreeParams, seed uint64, index int) *Tree {
	return randtree.TreeAt(params, seed, index)
}

// ExampleTree reconstructs the paper's Figure 1 three-site platform; the
// adaptability experiment of Figure 7 runs on it.
func ExampleTree() *Tree { return experiments.ExampleTree() }

// Allocation is the bandwidth-centric theorem's result: the optimal
// steady-state rate and one fluid schedule attaining it.
type Allocation = optimal.Allocation

// Optimal computes the optimal steady-state rate of t and the per-node
// allocation attaining it (Theorem 1 of the paper, applied bottom-up).
func Optimal(t *Tree) *Allocation { return optimal.Compute(t) }

// Protocol is an autonomous scheduling policy.
type Protocol = protocol.Protocol

// IC returns the paper's interruptible-communication protocol with fb
// fixed buffers per node: a request from a faster-communicating child
// preempts an in-flight send to a slower one; the preempted transfer
// resumes later from where it left off. The paper's headline protocol is
// IC(3).
func IC(fb int) Protocol { return protocol.Interruptible(fb) }

// NonIC returns the paper's non-interruptible protocol with ib initial
// buffers per node and the three buffer-growth events of Section 3.1.
func NonIC(ib int) Protocol { return protocol.NonInterruptible(ib) }

// NonICFixed returns the non-interruptible protocol with a fixed buffer
// pool (no growth), as used in the paper's adaptability experiment.
func NonICFixed(fb int) Protocol { return protocol.NonInterruptibleFixed(fb) }

// Order selects how a node prioritizes children competing for its send
// port; the paper's protocols use BandwidthCentric, the rest are
// baselines.
type Order = protocol.Order

// Child-selection orders, re-exported for Protocol.WithOrder.
const (
	BandwidthCentric = protocol.BandwidthCentric
	ComputeCentric   = protocol.ComputeCentric
	FCFS             = protocol.FCFS
	RoundRobin       = protocol.RoundRobin
	RandomOrder      = protocol.Random
)

// SimConfig configures one simulation run; see Simulate.
type SimConfig = engine.Config

// SimResult is a completed run: completion times, per-node statistics,
// buffer checkpoints.
type SimResult = engine.Result

// Mutation changes a node or edge weight mid-run (adaptability studies).
type Mutation = engine.Mutation

// AttachMutation grafts a subtree onto the platform mid-run (dynamic
// overlays).
type AttachMutation = engine.AttachMutation

// DepartMutation removes a subtree mid-run; the tasks it held are requeued
// at the root and re-dispatched (volunteer-computing re-execution
// semantics).
type DepartMutation = engine.DepartMutation

// SimTimeline is the sampled telemetry of one run — completion rate,
// per-link utilization, root-pool depth and per-application share over
// simulated time; see WithTimeline. Series are bounded: on overflow a
// series halves itself and doubles its resolution, so any run length
// fits in O(capacity) points.
type SimTimeline = engine.Timeline

// Simulate executes an independent-task application on a platform tree
// under an autonomous protocol, deterministically. It is equivalent to
// SimulateContext with context.Background().
func Simulate(cfg SimConfig) (*SimResult, error) { return engine.Run(cfg) }

// SimulateContext is Simulate under a context: the run polls ctx every
// few thousand simulator events and abandons the sweep with a wrapped
// ctx.Err() once it is canceled or its deadline passes. Determinism is
// unaffected — an uncanceled SimulateContext run returns exactly what
// Simulate returns. Any Ctx already set in cfg is overridden.
func SimulateContext(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	cfg.Ctx = ctx
	return engine.Run(cfg)
}

// RateSeries is the sliding-growing-window throughput analysis of a run.
type RateSeries = window.Series

// NewRateSeries wraps a run's completion times for windowed-rate analysis
// against the optimal steady-state weight optWeight (= 1/rate).
func NewRateSeries(completions []Time, optWeight Rat) (*RateSeries, error) {
	return window.New(completions, optWeight)
}

// Time is the simulated clock in integer timesteps.
type Time = sim.Time

// OnsetThreshold is the paper's window threshold for the onset detector.
const OnsetThreshold = window.DefaultThreshold

// SteadyState is a periodicity-based exact steady-state detection; see
// DetectSteadyState.
type SteadyState = steady.Detection

// SteadyClass classifies a detected steady rate against the optimal rate.
type SteadyClass = steady.Class

// Steady-state classifications.
const (
	NoSteadyState    = steady.NoSteadyState
	SteadySuboptimal = steady.Suboptimal
	SteadyOptimal    = steady.Optimal
	SteadyAnomalous  = steady.Anomalous
)

// DetectSteadyState finds the smallest batch b and period p such that the
// run completes exactly b tasks every p timesteps over a long interval,
// giving the steady-state rate b/p as an exact rational. This is the
// theoretically-grounded alternative to the paper's windowed heuristic
// (its Section 4.1 leaves such criteria as future work): exclusion of
// startup and wind-down falls out of the periodicity requirement, and the
// comparison against the optimal rate is exact.
func DetectSteadyState(completions []Time) SteadyState {
	return steady.Detect(completions, steady.Options{})
}

// Summary bundles everything Evaluate learns about one run.
type Summary struct {
	Result  *SimResult
	Optimal *Allocation
	Series  *RateSeries
	// Reached reports whether the run attained the optimal steady-state
	// rate under the paper's detector; Onset is the window index where.
	Reached bool
	Onset   int
	// Steady is the periodicity-based detection and Class its exact
	// comparison against the optimal rate.
	Steady SteadyState
	Class  SteadyClass
	// Timeline is the run's sampled telemetry when WithTimeline was set;
	// nil otherwise.
	Timeline *SimTimeline
	// Converged and ConvergedAt report the convergence detector's verdict
	// over the timeline's rate series: the earliest simulated time from
	// which the completion rate stayed within ConvergeEps of its trailing
	// steady value for at least ConvergeWindow consecutive samples. Only
	// meaningful when Timeline is non-nil.
	Converged   bool
	ConvergedAt Time
}

// Convergence detector defaults applied by Evaluate and
// EvaluateWorkloads to the timeline's rate series. The 5% band absorbs
// the quantization wiggle of integer completion counts per interval;
// eight samples make one spurious in-band point insufficient.
const (
	ConvergeEps    = 0.05
	ConvergeWindow = 8
)

// convergence runs the detector over a timeline's rate series,
// returning (0, false) when the timeline is nil or too short. Samples
// from the moment the root pool empties are excluded: the rate ramping
// down as the last buffered tasks drain is depletion, not instability,
// and would otherwise drag the trailing steady value toward zero.
func convergence(tl *SimTimeline) (Time, bool) {
	if tl == nil {
		return 0, false
	}
	rate := tl.Find("rate")
	if rate == nil {
		return 0, false
	}
	drainT := int64(1<<63 - 1)
	if pool := tl.Find("pool_depth"); pool != nil {
		for _, p := range pool.Points {
			// Depth readings are integer counts, but ring merges can
			// average a final 0 with its predecessor — anything below 1
			// means a pool-empty reading contributed. The interval ending
			// here straddles exhaustion; cut strictly before it.
			if p.V < 1 {
				drainT = p.T
				break
			}
		}
	}
	times := make([]int64, 0, len(rate.Points))
	values := make([]float64, 0, len(rate.Points))
	for _, p := range rate.Points {
		if p.T < drainT {
			times = append(times, p.T)
			values = append(values, p.V)
		}
	}
	at, ok := stats.Converge(times, values, ConvergeEps, ConvergeWindow)
	return Time(at), ok
}

// Evaluate runs protocol p on tree t for the given number of tasks and
// analyzes the run against the tree's optimal steady-state rate. It is a
// thin single-workload shim over the same machinery as EvaluateWorkloads:
// Evaluate(t, p, n) is event-for-event the run EvaluateWorkloads performs
// for one workload of n tasks.
//
// Evaluate uses the inclusive onset detector (windowed rate at or above
// optimal, twice after the threshold window): platforms whose schedules
// are exactly periodic at the optimal rate never go strictly above it, so
// the paper's strict criterion — designed for large random trees whose
// discrete completions wiggle around the rate — would misclassify them.
// The experiment harness (bwexp, internal/experiments) keeps the strict
// detector for paper fidelity.
//
// Deprecated-in-spirit: the positional form predates Workloads and is
// kept so existing call sites compile unchanged; new code should call
// EvaluateWorkloads, which subsumes it.
func Evaluate(t *Tree, p Protocol, tasks int64, opts ...Option) (*Summary, error) {
	return EvaluateContext(context.Background(), t, p, tasks, opts...)
}

// EvaluateContext is Evaluate under a context: long simulations of large
// platforms poll ctx every few thousand simulator events, so deadlines
// and interactive cancellation (ctrl-c) take effect mid-run instead of
// after the sweep drains. A canceled run returns a wrapped ctx.Err().
//
// Like Evaluate, this is the legacy positional single-workload form;
// prefer EvaluateWorkloads in new code.
func EvaluateContext(ctx context.Context, t *Tree, p Protocol, tasks int64, opts ...Option) (*Summary, error) {
	if tasks < 2 {
		return nil, fmt.Errorf("bwcs: need at least 2 tasks, got %d", tasks)
	}
	s := newEvalSettings(opts)
	s.cfg.Tree, s.cfg.Protocol, s.cfg.Tasks, s.cfg.Ctx = t, p, tasks, ctx
	res, err := engine.Run(s.cfg)
	if err != nil {
		return nil, err
	}
	if s.metrics != nil {
		*s.metrics = res.Metrics
	}
	return summarize(res, optimal.Compute(t), s.threshold)
}

// summarize performs the steady-state analysis shared by Evaluate and
// EvaluateWorkloads' aggregate view.
func summarize(res *SimResult, opt *Allocation, threshold int) (*Summary, error) {
	series, err := window.New(res.Completions, opt.TreeWeight)
	if err != nil {
		return nil, err
	}
	s := &Summary{Result: res, Optimal: opt, Series: series}
	s.Onset, s.Reached = series.OnsetInclusive(threshold)
	s.Steady = steady.Detect(res.Completions, steady.Options{})
	s.Class = s.Steady.Classify(opt.TreeWeight)
	s.Timeline = res.Timeline
	s.ConvergedAt, s.Converged = convergence(res.Timeline)
	return s, nil
}
