package bwcs

// Functional options: the one configuration idiom shared by every
// evaluation entry point. Evaluate, EvaluateContext and EvaluateWorkloads
// take the platform, the protocol and the work as positional arguments —
// the three things every run must state — and everything else through
// Option values, mirroring the live package's Start(name, opts...). The
// positional alternative (filling a SimConfig by hand and calling
// Simulate) remains for callers that need the raw engine Result without
// the analysis, but new code should prefer the options form.

import "bwcs/internal/engine"

// SimMetrics is the engine-wide instrumentation snapshot of one run; see
// WithMetrics.
type SimMetrics = engine.Metrics

// SimTracer observes every scheduling action of a run as it happens; see
// WithTracer and the trace package.
type SimTracer = engine.Tracer

// evalSettings collects everything an evaluation can be configured with:
// the engine knobs (a SimConfig minus the positional tree/protocol/work)
// plus the analysis knobs that have no engine equivalent.
type evalSettings struct {
	cfg       SimConfig
	threshold int
	metrics   *SimMetrics
}

func newEvalSettings(opts []Option) evalSettings {
	s := evalSettings{threshold: OnsetThreshold}
	for _, o := range opts {
		o(&s)
	}
	return s
}

// Option configures an evaluation; see the With... constructors.
type Option func(*evalSettings)

// WithSeed seeds the Random child-selection order (unused by the paper's
// deterministic protocols).
func WithSeed(seed uint64) Option {
	return func(s *evalSettings) { s.cfg.Seed = seed }
}

// WithCheckpoints snapshots platform-wide buffer statistics when the given
// completed-task counts are reached (ascending); the snapshots appear in
// Summary.Result.Checkpoints.
func WithCheckpoints(afterTasks ...int64) Option {
	return func(s *evalSettings) { s.cfg.Checkpoints = afterTasks }
}

// WithMutations applies node/edge weight changes mid-run, in ascending
// AfterTasks order (the paper's adaptability experiment).
func WithMutations(ms ...Mutation) Option {
	return func(s *evalSettings) { s.cfg.Mutations = ms }
}

// WithAttachments grafts subtrees onto the platform mid-run.
func WithAttachments(as ...AttachMutation) Option {
	return func(s *evalSettings) { s.cfg.Attachments = as }
}

// WithDepartures removes subtrees mid-run; the tasks they held are
// requeued at the root (volunteer-computing re-execution semantics).
func WithDepartures(ds ...DepartMutation) Option {
	return func(s *evalSettings) { s.cfg.Departures = ds }
}

// WithMaxSteps aborts the run after n simulator events, as a runaway
// guard for hostile inputs.
func WithMaxSteps(n uint64) Option {
	return func(s *evalSettings) { s.cfg.MaxSteps = n }
}

// WithTracer attaches a Tracer observing every scheduling action. Tracing
// costs one virtual call per action; leave unset for sweeps.
func WithTracer(tr SimTracer) Option {
	return func(s *evalSettings) { s.cfg.Tracer = tr }
}

// WithWindow overrides the onset detector's window threshold (default
// OnsetThreshold, the paper's value): the windowed rate must hold at or
// above optimal from window threshold onward to count as reached.
func WithWindow(threshold int) Option {
	return func(s *evalSettings) { s.threshold = threshold }
}

// WithMetrics copies the run's engine-wide instrumentation snapshot into
// dst after the run completes, for callers aggregating counters across
// sweeps (SimMetrics.Add).
func WithMetrics(dst *SimMetrics) Option {
	return func(s *evalSettings) { s.metrics = dst }
}

// WithTimeline samples timeline telemetry every `every` timesteps —
// completion rate, per-link utilization, root-pool depth and (for
// EvaluateWorkloads) per-application share — into Summary.Timeline, and
// runs the convergence detector over the rate series. Sampling is off by
// default and costs the simulation nothing when off.
func WithTimeline(every Time) Option {
	return func(s *evalSettings) { s.cfg.SampleEvery = every }
}

// WithTimelineCapacity caps the stored points per timeline series
// (default 512); on overflow a series halves itself and doubles its
// resolution. Meaningful values are >= 2. Only relevant with
// WithTimeline.
func WithTimelineCapacity(capacity int) Option {
	return func(s *evalSettings) { s.cfg.TimelineCapacity = capacity }
}
