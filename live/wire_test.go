package live

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"
)

// TestWireKindValuesStable pins the numeric value of every frame kind:
// the values are the wire protocol, and reordering the const block would
// silently break mixed-version overlays and recorded fault plans.
func TestWireKindValuesStable(t *testing.T) {
	want := map[msgKind]uint8{
		kindHello:     1,
		kindRequest:   2,
		kindChunk:     3,
		kindResult:    4,
		kindShutdown:  5,
		kindHeartbeat: 6,
		kindChunkAck:  7,
		kindHelloAck:  8,
		kindGoodbye:   9,
		kindResultAck: 10,
	}
	for k, v := range want {
		if uint8(k) != v {
			t.Errorf("kind %d renumbered: want %d", k, v)
		}
	}
	if FrameResultAck != FrameKind(kindResultAck) {
		t.Errorf("FrameResultAck = %d, want %d", FrameResultAck, kindResultAck)
	}
}

// TestResultAckRoundTrip runs the result-ack frame and a Holding-carrying
// hello through the real gob codec: the ack must preserve its ledger key
// (task ID + origin), the hello its reconciliation set.
func TestResultAckRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	enc, dec := gob.NewEncoder(&buf), gob.NewDecoder(&buf)
	sent := []*message{
		{Kind: kindResultAck, Task: 42, Origin: "leaf-7"},
		{Kind: kindHello, Name: "mid", Holding: []uint64{3, 9, 12},
			Resume: []ResumePoint{{Task: 5, Offset: 1024}}},
		{Kind: kindResult, Task: 42, Output: []byte{1, 2, 3}, Origin: "leaf-7"},
	}
	for i, m := range sent {
		if err := enc.Encode(m); err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
	}
	for i, want := range sent {
		var got message
		if err := dec.Decode(&got); err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if !reflect.DeepEqual(&got, want) {
			t.Errorf("frame %d round-tripped to %+v, want %+v", i, got, *want)
		}
	}
}

// legacyMessage is the wire envelope as it existed before the trace
// context was appended — no Seq, TraceNode, or TraceSeq. Gob matches
// struct fields by name and ignores ones either side does not declare, so
// old-format frames must keep decoding into the current message (with
// zero trace context) and new frames must keep decoding on old peers.
type legacyMessage struct {
	Kind     msgKind
	Name     string
	Resume   []ResumePoint
	Holding  []uint64
	Revived  bool
	Accepted []uint64
	N        int
	Task     uint64
	Size     int
	Offset   int
	Data     []byte
	Last     bool
	Output   []byte
	Origin   string
}

// TestWireTraceContextBackCompat pins both directions of the gob
// evolution contract for the appended trace-context fields.
func TestWireTraceContextBackCompat(t *testing.T) {
	// Old peer → new node: a pre-trace frame decodes with zero context.
	var buf bytes.Buffer
	old := legacyMessage{Kind: kindChunk, Task: 7, Size: 4, Offset: 0, Data: []byte{1, 2, 3, 4}, Last: true}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatalf("encode legacy: %v", err)
	}
	var got message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode legacy into current message: %v", err)
	}
	if got.Kind != kindChunk || got.Task != 7 || !got.Last || len(got.Data) != 4 {
		t.Errorf("legacy frame mangled: %+v", got)
	}
	if got.Seq != 0 || got.TraceNode != "" || got.TraceSeq != 0 {
		t.Errorf("legacy frame grew trace context from nowhere: %+v", got)
	}

	// New node → old peer: a trace-stamped frame decodes on a peer that
	// does not declare the fields.
	buf.Reset()
	stamped := message{Kind: kindResult, Task: 9, Output: []byte{5}, Origin: "w1",
		Seq: 42, TraceNode: "w1", TraceSeq: 17}
	if err := gob.NewEncoder(&buf).Encode(&stamped); err != nil {
		t.Fatalf("encode stamped: %v", err)
	}
	var back legacyMessage
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode stamped into legacy message: %v", err)
	}
	if back.Kind != kindResult || back.Task != 9 || back.Origin != "w1" {
		t.Errorf("stamped frame mangled on a legacy peer: %+v", back)
	}
}

func TestInTransferAssembly(t *testing.T) {
	tr := &inTransfer{id: 1}
	// Three chunks of a 10-byte payload.
	chunks := []*message{
		{Task: 1, Size: 10, Offset: 0, Data: []byte{0, 1, 2, 3}},
		{Task: 1, Size: 10, Offset: 4, Data: []byte{4, 5, 6, 7}},
		{Task: 1, Size: 10, Offset: 8, Data: []byte{8, 9}, Last: true},
	}
	for i, m := range chunks {
		done, err := tr.feed(m)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if done != (i == len(chunks)-1) {
			t.Fatalf("chunk %d done=%v", i, done)
		}
	}
	for i, b := range tr.payload {
		if int(b) != i {
			t.Fatalf("payload[%d] = %d", i, b)
		}
	}
}

func TestInTransferRejectsOverflowAndShort(t *testing.T) {
	tr := &inTransfer{id: 2}
	if _, err := tr.feed(&message{Task: 2, Size: 4, Offset: 2, Data: []byte{1, 2, 3}}); err == nil {
		t.Fatalf("overflowing chunk accepted")
	}
	tr2 := &inTransfer{id: 3}
	if _, err := tr2.feed(&message{Task: 3, Size: 8, Offset: 0, Data: []byte{1, 2}, Last: true}); err == nil {
		t.Fatalf("short final chunk accepted")
	}
}

func TestEwma(t *testing.T) {
	var e ewma
	if e.estimate() != 0 {
		t.Fatalf("fresh estimate not zero")
	}
	e.observe(100 * time.Millisecond)
	if got := e.estimate(); got != 0.1 {
		t.Fatalf("first observation not adopted: %v", got)
	}
	e.observe(200 * time.Millisecond)
	got := e.estimate()
	if got <= 0.1 || got >= 0.2 {
		t.Fatalf("EWMA %v not between samples", got)
	}
}

// FuzzInTransferFeed hardens chunk assembly against malformed wire input:
// feed must never panic or write out of bounds, whatever offsets and sizes
// arrive.
func FuzzInTransferFeed(f *testing.F) {
	f.Add(10, 0, 4, false)
	f.Add(10, 8, 2, true)
	f.Add(0, 0, 0, true)
	f.Add(4, 2, 3, false)
	f.Add(1<<20, 1<<19, 4096, false)
	f.Fuzz(func(t *testing.T, size, offset, dataLen int, last bool) {
		if size < 0 || size > 1<<22 || offset < 0 || dataLen < 0 || dataLen > 1<<16 {
			t.Skip()
		}
		tr := &inTransfer{id: 9}
		m := &message{Task: 9, Size: size, Offset: offset, Data: make([]byte, dataLen), Last: last}
		done, err := tr.feed(m)
		if err != nil {
			return // rejected malformed input: fine
		}
		if done && tr.got != len(tr.payload) {
			t.Fatalf("reported done with %d of %d bytes", tr.got, len(tr.payload))
		}
	})
}
