package live

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// msgKind discriminates wire messages.
type msgKind uint8

const (
	// kindHello introduces a child to its parent (child → parent). On a
	// reconnect it carries Resume points for partially received transfers.
	kindHello msgKind = iota + 1
	// kindRequest asks the parent for N more tasks (child → parent).
	kindRequest
	// kindChunk carries one slice of a task's payload (parent → child).
	// Interruptible communication interleaves chunks of different
	// children's transfers at the sending port; a single child's stream
	// is always in order.
	kindChunk
	// kindResult returns a completed task's output, relayed hop by hop to
	// the root (child → parent).
	kindResult
	// kindShutdown tells the subtree to wind down (parent → child).
	kindShutdown
	// kindHeartbeat is a liveness probe sent on an otherwise idle link in
	// both directions; any inbound frame counts as proof of life.
	kindHeartbeat
	// kindChunkAck confirms receipt of a chunk (child → parent). The
	// parent treats a task as the child's responsibility only once the
	// final chunk is acked, and resumes interrupted transfers from the
	// last acknowledged offset after a reconnect.
	kindChunkAck
	// kindHelloAck answers a hello (parent → child): whether the parent
	// revived the child's previous session and which partial transfers it
	// agreed to resume.
	kindHelloAck
	// kindGoodbye announces a deliberate departure (child → parent), so
	// the parent reclaims the subtree's tasks immediately instead of
	// waiting out the reconnect grace window.
	kindGoodbye
	// kindResultAck confirms receipt of a result (parent → child), keyed
	// by task ID + origin. The child retires the matching entry of its
	// unacked-result ledger; an unacked result is replayed after a
	// reconnect and retransmitted on a live-but-lossy link, so the
	// result path is at-least-once in transport and — because the
	// parent deduplicates before relay — exactly-once in collection.
	kindResultAck
)

// ResumePoint names a partially received transfer offered for resumption
// in a reconnecting child's hello: the child holds the first Offset bytes
// of the task's payload.
type ResumePoint struct {
	Task   uint64
	Offset int
}

// message is the single wire envelope. One gob stream per direction per
// connection.
type message struct {
	Kind msgKind

	// Hello.
	Name   string
	Resume []ResumePoint
	// Holding lists every task ID the reconnecting child's subtree still
	// accounts for — buffered, computing, forwarded onward, or computed
	// with the result awaiting an ack. The parent requeues any
	// outstanding task the hello does not cover (revive-time
	// reconciliation); partially received transfers are conveyed
	// separately as Resume points.
	Holding []uint64

	// HelloAck.
	Revived  bool
	Accepted []uint64

	// Request.
	N int

	// Chunk and ChunkAck. A ChunkAck's Offset is the contiguous byte
	// count the child holds; Last marks the final ack of a transfer.
	Task   uint64
	Size   int // total payload size, set on every chunk
	Offset int
	Data   []byte
	Last   bool

	// Result. A ResultAck echoes the result's Task and Origin, matching
	// the sender's ledger key.
	Output []byte
	Origin string // name of the node that computed the task

	// Trace context (appended fields — kind values are unchanged, and gob
	// ignores fields one side does not declare, so old-format frames
	// decode with zero trace context and old peers skip these).
	//
	// Seq is a node-unique wire sequence number stamped on every frame
	// the node sends. TraceNode and TraceSeq name the flight-recorder
	// event on the sending node that caused this frame, so a receive
	// event on one node links to the causal send event on its peer
	// (CausePeer/CauseSeq in the recorder's Event).
	Seq       uint64
	TraceNode string
	TraceSeq  uint64

	// Application tag (appended field, back-compatible both directions
	// exactly like the trace context above: old-format frames decode with
	// an empty App, old peers skip the field). Chunks carry the task's
	// application so the receiving subtree preserves tenant attribution;
	// results echo it back so every hop keeps per-tenant counters; a
	// request carries the application whose freed buffer fired it
	// (informational — requests remain anonymous capacity, exactly as in
	// the engine).
	App string

	// Codecs (appended field, back-compatible both directions like App
	// and the trace context) carries codec-version negotiation: a hello
	// lists every version beyond gob the child speaks, the hello-ack
	// echoes the parent's pick. Peers that predate versioning skip the
	// field and keep their gob streams. See Codec.
	Codecs []uint8
}

// conn wraps a network connection with gob codecs and a write lock so
// multiple goroutines (request sender, result relay, send port) can share
// the outbound stream safely. It also carries the link's supervision
// state: the receive timestamp heartbeat monitors watch, the per-message
// write deadline, and the fault-injection plan consulted on every frame.
type conn struct {
	raw net.Conn
	w   io.Writer // raw wrapped with the byte counter; all writes go through it
	enc *gob.Encoder
	dec *gob.Decoder
	// br is the shared inbound buffer: the gob decoder reads through it
	// (bufio.Reader is an io.ByteReader, so gob never double-buffers and
	// never reads past a message boundary), which is what makes switching
	// to binary framing at a frame boundary safe — the binary reader
	// picks up exactly where the handshake's gob stream stopped.
	br *bufio.Reader
	// codec is the negotiated wire codec. It is written once during the
	// handshake, before the conn is published to other goroutines, and
	// stays fixed for the connection's lifetime (a reconnect negotiates
	// afresh on a new conn).
	codec Codec
	wmu   sync.Mutex
	// Write-side scratch, guarded by wmu: the reusable gob envelope (so
	// callers' messages do not escape to the heap) and the binary encode
	// buffer.
	scratch message
	wbuf    []byte
	// Read-side scratch, owned by the conn's single reader goroutine.
	rbuf   []byte
	rmsg   message
	intern interner
	// peer is the fault-plan link selector: the remote node's name for
	// child links, the literal "parent" on an uplink. peerName is the
	// remote node's actual name for flight-recorder events; it is written
	// once during the handshake, before the conn is published to other
	// goroutines, and falls back to peer while unknown.
	peer     string
	peerName string
	faults   *FaultPlan
	writeTO  time.Duration
	// wireSeq stamps outbound frames with a node-unique sequence number;
	// it points at the owning node's counter so numbering survives
	// reconnects (one conn is replaced, the numbering is not).
	wireSeq *atomic.Uint64
	// ctr aggregates frame/byte counters into the owning node's stats;
	// never nil for conns built by newConn.
	ctr      *wireCounters
	lastRecv atomic.Int64 // unix nanos of the last inbound frame
	stop     chan struct{}
	stopOnce sync.Once
}

// wireCounters aggregates data-plane volume across a node's conns (all
// links, both directions, surviving reconnects).
type wireCounters struct {
	framesSent atomic.Int64
	framesRecv atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
}

// countingWriter and countingReader meter raw link bytes (gob and binary
// alike) into the owning node's wire counters.
type countingWriter struct {
	w io.Writer
	n *atomic.Int64
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n.Add(int64(n))
	return n, err
}

type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (cr *countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.n.Add(int64(n))
	return n, err
}

func newConn(raw net.Conn, peer string, faults *FaultPlan, writeTO time.Duration, wireSeq *atomic.Uint64, ctr *wireCounters) *conn {
	if ctr == nil {
		ctr = &wireCounters{}
	}
	w := &countingWriter{w: raw, n: &ctr.bytesSent}
	br := bufio.NewReaderSize(&countingReader{r: raw, n: &ctr.bytesRecv}, 32<<10)
	c := &conn{
		raw:     raw,
		w:       w,
		enc:     gob.NewEncoder(w),
		dec:     gob.NewDecoder(br),
		br:      br,
		peer:    peer,
		faults:  faults,
		writeTO: writeTO,
		wireSeq: wireSeq,
		ctr:     ctr,
		stop:    make(chan struct{}),
	}
	c.lastRecv.Store(time.Now().UnixNano())
	return c
}

// label is the conn's display name for flight-recorder events.
func (c *conn) label() string {
	if c.peerName != "" {
		return c.peerName
	}
	return c.peer
}

// nextSeq pre-assigns a wire sequence number so a caller can record the
// frame's flight-recorder event before handing it to send.
func (c *conn) nextSeq() uint64 {
	return c.wireSeq.Add(1)
}

// errFaultSevered reports a connection cut by the fault-injection plan; it
// surfaces through the normal link-failure path so recovery is exercised
// exactly as it would be by a real network partition.
var errFaultSevered = fmt.Errorf("live: connection severed by fault plan")

// send writes one message, serialized with the connection's write lock and
// bounded by the per-message write deadline.
func (c *conn) send(m *message) error {
	return c.sendAs(m, c.codec)
}

// sendHandshake writes a hello or hello-ack. Handshake frames are always
// gob — the codec a connection will speak is decided by this exchange,
// so the exchange itself stays in the floor format every peer speaks.
func (c *conn) sendHandshake(m *message) error {
	return c.sendAs(m, CodecGob)
}

func (c *conn) sendAs(m *message, codec Codec) error {
	if m.Seq == 0 {
		m.Seq = c.wireSeq.Add(1)
	}
	if c.faults != nil {
		switch op, d := c.faults.decide(FaultSend, c.peer, FrameKind(m.Kind)); op {
		case FaultDrop:
			return nil // silently lost in the "network"
		case FaultDelay:
			time.Sleep(d)
		case FaultSever:
			_ = c.close()
			return errFaultSevered
		}
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.writeLocked(m, codec)
}

// writeLocked encodes and writes one frame; callers hold wmu. wmu exists
// solely to serialize writes: it guards no other state, and the stall
// lockdiscipline fears is capped by the write deadline.
func (c *conn) writeLocked(m *message, codec Codec) error {
	if c.writeTO > 0 {
		_ = c.raw.SetWriteDeadline(time.Now().Add(c.writeTO))
	}
	if codec == CodecBinary {
		buf, err := appendFrame(c.wbuf[:0], m)
		if err != nil {
			return err
		}
		c.wbuf = buf
		if _, err := c.w.Write(buf); err != nil {
			return err
		}
		c.ctr.framesSent.Add(1)
		return nil
	}
	// Copy into the per-conn scratch envelope so the caller's message —
	// typically a stack-allocated literal — does not escape through the
	// encoder's interface argument.
	c.scratch = *m
	if err := c.enc.Encode(&c.scratch); err != nil {
		return err
	}
	c.ctr.framesSent.Add(1)
	return nil
}

// sendBatch writes the frames back to back — on a binary conn in one
// buffer, one syscall — and reports how many leading frames the
// "network" accepted (written or scripted as drops) before any error.
// On a write error the count is 0: none of the batch may be assumed
// delivered, and the link-failure path takes over. A scripted sever
// cuts the batch at the severed frame, exactly where sequential sends
// would have stopped.
func (c *conn) sendBatch(ms []*message) (int, error) {
	if c.codec != CodecBinary || len(ms) == 1 {
		for i, m := range ms {
			if err := c.send(m); err != nil {
				return i, err
			}
		}
		return len(ms), nil
	}
	accepted := 0
	severed := false
	keep := ms[:0] // compacted in place; only writes behind the read index
	for i := 0; i < len(ms); i++ {
		m := ms[i]
		if m.Seq == 0 {
			m.Seq = c.wireSeq.Add(1)
		}
		if c.faults != nil {
			op, d := c.faults.decide(FaultSend, c.peer, FrameKind(m.Kind))
			if op == FaultDrop {
				accepted = i + 1
				continue
			}
			if op == FaultDelay {
				time.Sleep(d)
			}
			if op == FaultSever {
				severed = true
				break
			}
		}
		keep = append(keep, m)
		accepted = i + 1
	}
	var werr error
	if len(keep) > 0 {
		c.wmu.Lock()
		if c.writeTO > 0 {
			_ = c.raw.SetWriteDeadline(time.Now().Add(c.writeTO))
		}
		buf := c.wbuf[:0]
		for _, m := range keep {
			if buf, werr = appendFrame(buf, m); werr != nil {
				break
			}
		}
		c.wbuf = buf
		if werr == nil {
			if _, werr = c.w.Write(buf); werr == nil {
				c.ctr.framesSent.Add(int64(len(keep)))
			}
		}
		c.wmu.Unlock()
	}
	if severed {
		_ = c.close()
		if werr == nil {
			werr = errFaultSevered
		}
		return accepted, werr
	}
	if werr != nil {
		return 0, werr
	}
	return accepted, nil
}

// recv reads the next message, stamping the link's proof-of-life clock.
// On a binary conn the returned message is the conn's reusable decode
// slot: it is valid until the next recv, and its Data field aliases the
// reusable read buffer (consumers copy before the next read; Output is
// already copied by the decoder because results outlive the buffer).
func (c *conn) recv() (*message, error) {
	for {
		var m *message
		if c.codec == CodecBinary {
			body, err := readFrame(c.br, c.rbuf)
			c.rbuf = body[:cap(body)]
			if err != nil {
				return nil, err
			}
			if err := decodeFrame(body, &c.rmsg, &c.intern); err != nil {
				return nil, err
			}
			c.ctr.framesRecv.Add(1)
			m = &c.rmsg
		} else {
			m = new(message)
			if err := c.dec.Decode(m); err != nil {
				return nil, err
			}
			c.ctr.framesRecv.Add(1)
		}
		c.lastRecv.Store(time.Now().UnixNano())
		if c.faults != nil {
			switch op, d := c.faults.decide(FaultRecv, c.peer, FrameKind(m.Kind)); op {
			case FaultDrop:
				continue // lost before delivery
			case FaultDelay:
				time.Sleep(d)
			case FaultSever:
				_ = c.close()
				return nil, errFaultSevered
			}
		}
		return m, nil
	}
}

// recvTimeout reads one message under a read deadline (handshakes only:
// the steady-state read loop relies on heartbeat supervision instead).
func (c *conn) recvTimeout(d time.Duration) (*message, error) {
	if d > 0 {
		_ = c.raw.SetReadDeadline(time.Now().Add(d))
		defer c.raw.SetReadDeadline(time.Time{})
	}
	return c.recv()
}

// sinceRecv reports how long the link has been silent inbound.
func (c *conn) sinceRecv() time.Duration {
	return time.Duration(time.Now().UnixNano() - c.lastRecv.Load())
}

// close shuts the connection down and releases its supervisor.
func (c *conn) close() error {
	c.stopOnce.Do(func() { close(c.stop) })
	return c.raw.Close()
}

// inTransfer assembles a task arriving in chunks.
type inTransfer struct {
	id      uint64
	payload []byte
	got     int
	// app is the task's application tag, carried on every chunk (empty
	// when the sender predates tagging or the task is untagged).
	app string
	// segment/segmentFrom track the trace context of the last chunk, so
	// the flight recorder logs one receive event per transfer segment
	// (the first chunk after each dispatch or resume on the sender).
	segment     uint64
	segmentFrom string
}

// feed applies one chunk and reports whether the task is complete.
func (t *inTransfer) feed(m *message) (bool, error) {
	if t.payload == nil {
		t.payload = make([]byte, m.Size)
	}
	if m.App != "" {
		t.app = m.App
	}
	if m.Offset+len(m.Data) > len(t.payload) {
		return false, fmt.Errorf("live: chunk overflows task %d: offset %d + %d > %d", m.Task, m.Offset, len(m.Data), len(t.payload))
	}
	copy(t.payload[m.Offset:], m.Data)
	t.got += len(m.Data)
	if m.Last {
		if t.got != len(t.payload) {
			return false, fmt.Errorf("live: task %d incomplete: %d of %d bytes", m.Task, t.got, len(t.payload))
		}
		return true, nil
	}
	return false, nil
}

// ewma tracks an exponentially weighted moving average of duration
// samples; the send port uses it as the measured per-chunk communication
// time of each child — the locally observable quantity bandwidth-centric
// priorities are built on.
type ewma struct {
	mu    sync.Mutex
	value float64 // seconds
	seen  bool
}

const ewmaAlpha = 0.25

func (e *ewma) observe(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := d.Seconds()
	if !e.seen {
		e.value = s
		e.seen = true
		return
	}
	e.value = ewmaAlpha*s + (1-ewmaAlpha)*e.value
}

// estimate returns the current average in seconds; unmeasured links
// report 0, so fresh children are probed at top priority.
func (e *ewma) estimate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}
