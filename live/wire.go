package live

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// msgKind discriminates wire messages.
type msgKind uint8

const (
	// kindHello introduces a child to its parent (child → parent).
	kindHello msgKind = iota + 1
	// kindRequest asks the parent for N more tasks (child → parent).
	kindRequest
	// kindChunk carries one slice of a task's payload (parent → child).
	// Interruptible communication interleaves chunks of different
	// children's transfers at the sending port; a single child's stream
	// is always in order.
	kindChunk
	// kindResult returns a completed task's output, relayed hop by hop to
	// the root (child → parent).
	kindResult
	// kindShutdown tells the subtree to wind down (parent → child).
	kindShutdown
)

// message is the single wire envelope. One gob stream per direction per
// connection.
type message struct {
	Kind msgKind

	// Hello.
	Name string

	// Request.
	N int

	// Chunk.
	Task   uint64
	Size   int // total payload size, set on every chunk
	Offset int
	Data   []byte
	Last   bool

	// Result.
	Output []byte
	Origin string // name of the node that computed the task
}

// conn wraps a network connection with gob codecs and a write lock so
// multiple goroutines (request sender, result relay, send port) can share
// the outbound stream safely.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
	wmu sync.Mutex
}

func newConn(raw net.Conn) *conn {
	return &conn{raw: raw, enc: gob.NewEncoder(raw), dec: gob.NewDecoder(raw)}
}

// send writes one message, serialized with the connection's write lock.
func (c *conn) send(m *message) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.enc.Encode(m)
}

// recv reads the next message.
func (c *conn) recv() (*message, error) {
	var m message
	if err := c.dec.Decode(&m); err != nil {
		return nil, err
	}
	return &m, nil
}

func (c *conn) close() error { return c.raw.Close() }

// inTransfer assembles a task arriving in chunks.
type inTransfer struct {
	id      uint64
	payload []byte
	got     int
}

// feed applies one chunk and reports whether the task is complete.
func (t *inTransfer) feed(m *message) (bool, error) {
	if t.payload == nil {
		t.payload = make([]byte, m.Size)
	}
	if m.Offset+len(m.Data) > len(t.payload) {
		return false, fmt.Errorf("live: chunk overflows task %d: offset %d + %d > %d", m.Task, m.Offset, len(m.Data), len(t.payload))
	}
	copy(t.payload[m.Offset:], m.Data)
	t.got += len(m.Data)
	if m.Last {
		if t.got != len(t.payload) {
			return false, fmt.Errorf("live: task %d incomplete: %d of %d bytes", m.Task, t.got, len(t.payload))
		}
		return true, nil
	}
	return false, nil
}

// ewma tracks an exponentially weighted moving average of duration
// samples; the send port uses it as the measured per-chunk communication
// time of each child — the locally observable quantity bandwidth-centric
// priorities are built on.
type ewma struct {
	mu    sync.Mutex
	value float64 // seconds
	seen  bool
}

const ewmaAlpha = 0.25

func (e *ewma) observe(d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := d.Seconds()
	if !e.seen {
		e.value = s
		e.seen = true
		return
	}
	e.value = ewmaAlpha*s + (1-ewmaAlpha)*e.value
}

// estimate returns the current average in seconds; unmeasured links
// report 0, so fresh children are probed at top priority.
func (e *ewma) estimate() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.value
}
