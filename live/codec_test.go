package live

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"net"
	"reflect"
	"testing"
	"time"
)

// sampleFrames returns one fully populated message per wire kind: every
// field the kind carries on the wire is set to a distinctive value, and
// no field it does not carry is set — so a decoded frame must DeepEqual
// its sample under BOTH codecs, pinning the two field projections to
// each other byte for byte.
func sampleFrames() []*message {
	return []*message{
		{Kind: kindHello, Seq: 101, TraceSeq: 11, TraceNode: "w1",
			Name:    "w1",
			Resume:  []ResumePoint{{Task: 7, Offset: 4096}, {Task: 9, Offset: 0}},
			Holding: []uint64{3, 7, 9, 1 << 40},
			Codecs:  []uint8{1, 7}},
		{Kind: kindRequest, Seq: 102, TraceSeq: 12, TraceNode: "w1",
			N: 3, App: "tenant-a"},
		{Kind: kindChunk, Seq: 103, TraceSeq: 13, TraceNode: "root",
			Task: 42, Size: 8192, Offset: 4096, Data: []byte("chunk payload bytes"),
			Last: true, App: "tenant-a"},
		{Kind: kindResult, Seq: 104, TraceSeq: 14, TraceNode: "w1",
			Task: 42, Output: []byte("result output"), Origin: "w1-leaf", App: "tenant-b"},
		{Kind: kindShutdown, Seq: 105, TraceSeq: 15, TraceNode: "root"},
		{Kind: kindHeartbeat, Seq: 106},
		{Kind: kindChunkAck, Seq: 107, TraceSeq: 17, TraceNode: "w1",
			Task: 42, Offset: 8192, Last: true},
		{Kind: kindHelloAck, Seq: 108, TraceSeq: 18, TraceNode: "root",
			Name: "root", Revived: true, Accepted: []uint64{7, 9}, Codecs: []uint8{1}},
		{Kind: kindGoodbye, Seq: 109, TraceSeq: 19, TraceNode: "w1"},
		{Kind: kindResultAck, Seq: 110, TraceSeq: 20, TraceNode: "root",
			Task: 42, Origin: "w1-leaf"},
	}
}

// TestSampleFramesCoverEveryKind pins the conformance matrix to the wire
// protocol: adding a wire kind without a sample frame fails here, so the
// cross-codec matrix below can never silently skip a kind.
func TestSampleFramesCoverEveryKind(t *testing.T) {
	seen := map[msgKind]bool{}
	for _, m := range sampleFrames() {
		if seen[m.Kind] {
			t.Fatalf("duplicate sample for kind %d", m.Kind)
		}
		seen[m.Kind] = true
	}
	for k := kindHello; k <= kindResultAck; k++ {
		if !seen[k] {
			t.Fatalf("no sample frame for wire kind %d", k)
		}
	}
	if len(seen) != int(kindResultAck) {
		t.Fatalf("%d samples for %d kinds", len(seen), kindResultAck)
	}
}

// binaryRoundTrip encodes m with appendFrame and decodes it back through
// readFrame + decodeFrame, exactly the production read path.
func binaryRoundTrip(t *testing.T, m *message, in *interner) *message {
	t.Helper()
	buf, err := appendFrame(nil, m)
	if err != nil {
		t.Fatalf("appendFrame(kind %d): %v", m.Kind, err)
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	body, err := readFrame(br, nil)
	if err != nil {
		t.Fatalf("readFrame(kind %d): %v", m.Kind, err)
	}
	var out message
	if err := decodeFrame(body, &out, in); err != nil {
		t.Fatalf("decodeFrame(kind %d): %v", m.Kind, err)
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatalf("kind %d: frame bytes left over after one decode", m.Kind)
	}
	return &out
}

func gobRoundTrip(t *testing.T, m *message) *message {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(m); err != nil {
		t.Fatalf("gob encode(kind %d): %v", m.Kind, err)
	}
	var out message
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		t.Fatalf("gob decode(kind %d): %v", m.Kind, err)
	}
	return &out
}

// TestCodecConformanceMatrix round-trips every wire kind binary↔binary
// and gob↔gob, and pins the two decodes equal to each other field by
// field — trace context, App tags, and negotiation fields included. A
// field the binary codec forgets to carry (or carries differently)
// breaks the cross-codec equality immediately.
func TestCodecConformanceMatrix(t *testing.T) {
	var in interner
	for _, m := range sampleFrames() {
		bin := binaryRoundTrip(t, m, &in)
		if !reflect.DeepEqual(bin, m) {
			t.Errorf("kind %d: binary round-trip mismatch\n got %+v\nwant %+v", m.Kind, bin, m)
		}
		g := gobRoundTrip(t, m)
		if !reflect.DeepEqual(g, m) {
			t.Errorf("kind %d: gob round-trip mismatch\n got %+v\nwant %+v", m.Kind, g, m)
		}
		if !reflect.DeepEqual(bin, g) {
			t.Errorf("kind %d: binary and gob decodes disagree\nbinary %+v\n   gob %+v", m.Kind, bin, g)
		}
	}
}

// TestBinaryFramesAreContiguous pins the batched-write invariant: frames
// appended back to back into one buffer decode back to back with no gap
// bytes — what sendBatch relies on to ship a batch in one write.
func TestBinaryFramesAreContiguous(t *testing.T) {
	samples := sampleFrames()
	var buf []byte
	var err error
	for _, m := range samples {
		if buf, err = appendFrame(buf, m); err != nil {
			t.Fatalf("appendFrame(kind %d): %v", m.Kind, err)
		}
	}
	br := bufio.NewReader(bytes.NewReader(buf))
	var in interner
	var body []byte
	for i, want := range samples {
		if body, err = readFrame(br, body); err != nil {
			t.Fatalf("frame %d: readFrame: %v", i, err)
		}
		var out message
		if err := decodeFrame(body, &out, &in); err != nil {
			t.Fatalf("frame %d: decodeFrame: %v", i, err)
		}
		if !reflect.DeepEqual(&out, want) {
			t.Fatalf("frame %d (kind %d) mismatch after batched encode", i, want.Kind)
		}
	}
	if _, err := br.ReadByte(); err == nil {
		t.Fatalf("gap or trailing bytes between batched frames")
	}
}

// negotiatedCodecs reports the codec each side of a single-child overlay
// actually speaks, read from the live conns.
func negotiatedCodecs(t *testing.T, root, w *Node) (parentSide, childSide Codec) {
	t.Helper()
	root.mu.Lock()
	if len(root.children) != 1 {
		root.mu.Unlock()
		t.Fatalf("root has %d children, want 1", len(root.children))
	}
	parentSide = root.children[0].c.codec
	root.mu.Unlock()
	w.mu.Lock()
	if w.parent == nil {
		w.mu.Unlock()
		t.Fatalf("worker has no uplink")
	}
	childSide = w.parent.codec
	w.mu.Unlock()
	return parentSide, childSide
}

// TestCodecNegotiationMatrix runs a real two-node overlay through every
// mix of codec pins — binary parent / gob child, gob parent / binary
// child, both, neither — and checks that the two sides agree on the
// negotiated codec, that it is the highest common version, and that a
// full run completes over it.
func TestCodecNegotiationMatrix(t *testing.T) {
	cases := []struct {
		name        string
		rootCodecs  []Codec
		childCodecs []Codec
		want        Codec
	}{
		{"both-binary", nil, nil, CodecBinary},
		{"gob-child", nil, []Codec{CodecGob}, CodecGob},
		{"gob-parent", []Codec{CodecGob}, nil, CodecGob},
		{"both-gob", []Codec{CodecGob}, []Codec{CodecGob}, CodecGob},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := startNode(t, Config{
				Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
				Compute: echoCompute(time.Millisecond), WireCodecs: tc.rootCodecs,
			})
			w := startNode(t, Config{
				Name: "w1", Parent: root.Addr(), Buffers: 3,
				Compute: echoCompute(0), WireCodecs: tc.childCodecs,
			})
			tasks := makeTasks(24, 2048)
			results, err := root.RunTimeout(tasks, 30*time.Second)
			if err != nil {
				t.Fatalf("run over %s: %v", tc.name, err)
			}
			assertExactlyOnce(t, results, len(tasks))
			ps, cs := negotiatedCodecs(t, root, w)
			if ps != tc.want || cs != tc.want {
				t.Fatalf("negotiated parent=%v child=%v, want %v both sides", ps, cs, tc.want)
			}
			if st := w.Stats(); st.FramesSent == 0 || st.FramesReceived == 0 ||
				st.BytesSent == 0 || st.BytesReceived == 0 {
				t.Fatalf("wire counters not metered: %+v", st)
			}
		})
	}
}

// TestVersionSkewHello pins the negotiation floor against future
// versions: a hello advertising only codec versions this build does not
// speak negotiates down to gob and the run still completes — a newer
// peer is never rejected, just downgraded.
func TestVersionSkewHello(t *testing.T) {
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		// Slow root compute so the scripted child is actually served a
		// task; no heartbeats, the script sends none.
		Compute:           echoCompute(50 * time.Millisecond),
		HeartbeatInterval: -1,
	})

	// A scripted child whose hello advertises only the (unknown) codec
	// version 99 — the shape of a build several protocol versions ahead.
	raw := dialParent(t, root.Addr())
	enc, dec := gob.NewEncoder(raw), gob.NewDecoder(raw)
	if err := enc.Encode(&message{Kind: kindHello, Name: "future", Codecs: []uint8{99}}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	var ack message
	if err := dec.Decode(&ack); err != nil || ack.Kind != kindHelloAck {
		t.Fatalf("hello ack: %v (kind %d)", err, ack.Kind)
	}
	if len(ack.Codecs) != 0 {
		t.Fatalf("parent answered codecs %v to a version-skew hello, want gob floor (none)", ack.Codecs)
	}

	// The link speaks gob: request a task, "compute" it, return the
	// result — all plain gob frames — and the run completes exactly-once.
	tasks := makeTasks(4, 512)
	resc := make(chan []Result, 1)
	errc := make(chan error, 1)
	go func() {
		rs, err := root.RunTimeout(tasks, 30*time.Second)
		resc <- rs
		errc <- err
	}()
	if err := enc.Encode(&message{Kind: kindRequest, N: 1}); err != nil {
		t.Fatalf("request: %v", err)
	}
	id, payload := recvTaskGob(t, dec, enc)
	if err := enc.Encode(&message{Kind: kindResult, Task: id,
		Output: payload, Origin: "future"}); err != nil {
		t.Fatalf("result: %v", err)
	}
	go func() { // drain acks/heartbeats so the root's writes never block
		var m message
		for dec.Decode(&m) == nil {
		}
	}()
	results := <-resc
	if err := <-errc; err != nil {
		t.Fatalf("run: %v", err)
	}
	assertExactlyOnce(t, results, len(tasks))
}

// dialParent opens a raw TCP connection to a node's listener for
// scripted peers.
func dialParent(t *testing.T, addr string) net.Conn {
	t.Helper()
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { raw.Close() })
	return raw
}

// recvTaskGob consumes one complete task over a scripted gob link —
// acking every chunk, skipping heartbeats — and returns its ID and
// assembled payload.
func recvTaskGob(t *testing.T, dec *gob.Decoder, enc *gob.Encoder) (uint64, []byte) {
	t.Helper()
	var payload []byte
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("scripted child decode: %v", err)
		}
		if m.Kind != kindChunk {
			continue
		}
		if payload == nil {
			payload = make([]byte, m.Size)
		}
		copy(payload[m.Offset:], m.Data)
		if err := enc.Encode(&message{Kind: kindChunkAck, Task: m.Task,
			Offset: m.Offset + len(m.Data), Last: m.Last}); err != nil {
			t.Fatalf("scripted child ack: %v", err)
		}
		if m.Last {
			return m.Task, payload
		}
	}
}

// FuzzDecodeFrame drives the binary read path with arbitrary bytes:
// truncated frames, oversized length prefixes, and unknown kinds must
// all error — never panic, never fabricate frame bytes, and never
// allocate more than the bytes actually presented (plus one read step).
// A frame that does decode must re-encode and re-decode to the same
// message (the decoder accepts nothing the encoder cannot produce).
func FuzzDecodeFrame(f *testing.F) {
	for _, m := range sampleFrames() {
		buf, err := appendFrame(nil, m)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf)
	}
	// Hand-built hostile seeds: empty input, a lying oversized length
	// prefix, a truncated body, an unknown kind.
	f.Add([]byte{})
	f.Add(binary.AppendUvarint(nil, 1<<40))
	f.Add(binary.AppendUvarint(nil, maxFrameBytes-1))
	f.Add(append(binary.AppendUvarint(nil, 100), 3, 1))
	f.Add(append(binary.AppendUvarint(nil, 3), 250, 0, 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		var in interner
		var buf []byte
		for {
			body, err := readFrame(br, buf)
			buf = body[:cap(body)]
			if err != nil {
				return // truncated/oversized input must stop the stream cleanly
			}
			if len(body) > len(data) {
				t.Fatalf("readFrame returned %d bytes from %d input bytes", len(body), len(data))
			}
			if cap(body) > 2*len(data)+frameReadStep {
				t.Fatalf("readFrame over-allocated: cap %d for %d input bytes", cap(body), len(data))
			}
			var m message
			if err := decodeFrame(body, &m, &in); err != nil {
				continue // malformed body; the next length prefix still frames the stream
			}
			reenc, err := appendFrame(nil, &m)
			if err != nil {
				t.Fatalf("decoded frame does not re-encode: %v (%+v)", err, m)
			}
			rebr := bufio.NewReader(bytes.NewReader(reenc))
			rebody, err := readFrame(rebr, nil)
			if err != nil {
				t.Fatalf("re-encoded frame does not re-read: %v", err)
			}
			var m2 message
			if err := decodeFrame(rebody, &m2, &in); err != nil {
				t.Fatalf("re-encoded frame does not re-decode: %v", err)
			}
			// Compare before the next readFrame reuses the buffer m.Data
			// aliases.
			if !reflect.DeepEqual(&m, &m2) {
				t.Fatalf("re-encode round-trip mismatch:\n first %+v\nsecond %+v", m, m2)
			}
		}
	})
}
