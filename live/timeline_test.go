package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestTimelineEndpointDump: a node sampling on a fast cadence serves a
// bwcs-timeline/v1 document with the rate and depth series populated
// after work has flowed.
func TestTimelineEndpointDump(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(time.Millisecond), TimelineInterval: 20 * time.Millisecond})
	startNode(t, Config{Name: "w1", Parent: root.Addr(), Buffers: 2,
		Compute: echoCompute(time.Millisecond), TimelineInterval: -1})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if _, err := root.RunTimeout(makeTasks(30, 256), 20*time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Let at least one sampling pass observe the completed run.
	deadline := time.Now().Add(5 * time.Second)
	var dump TimelineDump
	for {
		resp, err := http.Get("http://" + addr + "/timeline")
		if err != nil {
			t.Fatalf("GET /timeline: %v", err)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Fatalf("content type = %q", ct)
		}
		dump = TimelineDump{}
		if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
			t.Fatalf("decode dump: %v", err)
		}
		resp.Body.Close()
		if len(dump.Series) > 0 || time.Now().After(deadline) {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	if dump.Schema != TimelineSchema {
		t.Fatalf("schema = %q, want %q", dump.Schema, TimelineSchema)
	}
	if dump.Node != "root" {
		t.Fatalf("node = %q", dump.Node)
	}
	if dump.IntervalMS != 20 {
		t.Fatalf("intervalMs = %d, want 20", dump.IntervalMS)
	}
	names := map[string]bool{}
	for _, s := range dump.Series {
		names[s.Name] = true
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].T <= s.Points[i-1].T {
				t.Fatalf("series %q timestamps not ascending", s.Name)
			}
		}
	}
	for _, want := range []string{"computed_rate", "forwarded_rate", "received_rate",
		"bytes_sent_rate", "bytes_received_rate", "buffered"} {
		if !names[want] {
			t.Errorf("dump missing series %q (have %v)", want, names)
		}
	}
	// 30 tasks flowed through the root: the forward-rate series must have
	// seen some of them.
	var forwarded float64
	for _, s := range dump.Series {
		if s.Name == "forwarded_rate" {
			for _, p := range s.Points {
				forwarded += p.V
			}
		}
	}
	if forwarded <= 0 {
		t.Fatalf("forwarded_rate never positive across %d series", len(dump.Series))
	}
}

// TestTimelineDisabled: a negative interval turns sampling off and
// /timeline answers 404 instead of an empty document.
func TestTimelineDisabled(t *testing.T) {
	root := startNode(t, Config{Name: "root", Buffers: 1,
		Compute: echoCompute(0), TimelineInterval: -1})
	if root.sampler != nil {
		t.Fatalf("sampler running with sampling disabled")
	}
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/timeline")
	if err != nil {
		t.Fatalf("GET /timeline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", resp.StatusCode)
	}
}

// readFirstLine GETs url and returns the response and its first line,
// read while the stream is still open — which only works if the server
// flushes per line rather than buffering until the handler returns.
func readFirstLine(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		resp.Body.Close()
		t.Fatalf("GET %s: content type = %q, want application/x-ndjson", url, ct)
	}
	type lineOrErr struct {
		line string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		line, err := bufio.NewReader(resp.Body).ReadString('\n')
		ch <- lineOrErr{line, err}
	}()
	select {
	case r := <-ch:
		if r.err != nil {
			resp.Body.Close()
			t.Fatalf("GET %s: first line: %v", url, r.err)
		}
		return resp, r.line
	case <-time.After(10 * time.Second):
		resp.Body.Close()
		t.Fatalf("GET %s: no line arrived while the stream was open (missing per-line flush?)", url)
		return nil, ""
	}
}

// TestFollowStreamsFlushPerLine: both NDJSON follow endpoints must
// deliver each line as it is produced — a client reading a live stream
// sees the first line long before the response ever completes.
func TestFollowStreamsFlushPerLine(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(time.Millisecond), TimelineInterval: 20 * time.Millisecond})
	startNode(t, Config{Name: "w1", Parent: root.Addr(), Buffers: 2,
		Compute: echoCompute(time.Millisecond), TimelineInterval: -1})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	// The handshake already recorded events, and the sampler ticks on its
	// own; both streams must yield a first line while staying open.
	resp, line := readFirstLine(t, fmt.Sprintf("http://%s/debug/events?follow=1", addr))
	var ev Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("events stream line %q: %v", line, err)
	}
	resp.Body.Close()

	resp, line = readFirstLine(t, fmt.Sprintf("http://%s/timeline?follow=1", addr))
	var row timelineRow
	if err := json.Unmarshal([]byte(line), &row); err != nil {
		t.Fatalf("timeline stream line %q: %v", line, err)
	}
	if row.Series == "" || row.Tick == 0 {
		t.Fatalf("timeline stream row = %+v", row)
	}
	resp.Body.Close()
}

// TestStatsUptime: the uptime counter reflects the node's age.
func TestStatsUptime(t *testing.T) {
	root := startNode(t, Config{Name: "root", Buffers: 1, Compute: echoCompute(0)})
	if up := root.Stats().UptimeSeconds; up < 0 || up > 60 {
		t.Fatalf("UptimeSeconds = %d just after start", up)
	}
}
