package live

// Tests for the fault-tolerance machinery: the reconnect backoff schedule
// (against a fake clock), heartbeat-miss detection, requeue accounting,
// and the context-based Run timeout/cancel paths.

import (
	"context"
	"encoding/gob"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestBackoffDelay(t *testing.T) {
	const ms = time.Millisecond
	cases := []struct {
		attempt   int
		base, cap time.Duration
		want      time.Duration
	}{
		{1, 100 * ms, 2000 * ms, 100 * ms},
		{2, 100 * ms, 2000 * ms, 200 * ms},
		{3, 100 * ms, 2000 * ms, 400 * ms},
		{4, 100 * ms, 2000 * ms, 800 * ms},
		{5, 100 * ms, 2000 * ms, 1600 * ms},
		{6, 100 * ms, 2000 * ms, 2000 * ms}, // capped: 3200 > 2000
		{7, 100 * ms, 2000 * ms, 2000 * ms}, // stays at the cap
		{1, 50 * ms, 50 * ms, 50 * ms},      // base == cap
		{3, 80 * ms, 100 * ms, 100 * ms},    // cap below the next double
	}
	for _, c := range cases {
		if got := backoffDelay(c.attempt, c.base, c.cap); got != c.want {
			t.Errorf("backoffDelay(%d, %v, %v) = %v, want %v", c.attempt, c.base, c.cap, got, c.want)
		}
	}
}

// fakeParent accepts exactly one child, completes the hello / hello-ack
// handshake, then slams the connection and the listener shut — so every
// subsequent re-dial fails fast and the full backoff schedule plays out.
func fakeParent(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		dec, enc := gob.NewDecoder(c), gob.NewEncoder(c)
		var hello message
		if err := dec.Decode(&hello); err == nil && hello.Kind == kindHello {
			_ = enc.Encode(&message{Kind: kindHelloAck})
		}
		time.Sleep(50 * time.Millisecond) // let the child finish its handshake
		_ = c.Close()
		_ = l.Close()
	}()
	return l.Addr().String()
}

func TestReconnectBackoffSchedule(t *testing.T) {
	// Replace the backoff clock with a recorder: the supervisor "sleeps"
	// instantly and we assert the exact schedule it asked for.
	var mu sync.Mutex
	var slept []time.Duration
	fakeSleep := func(d time.Duration, done <-chan struct{}) bool {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
		return true
	}

	child, err := StartConfig(Config{
		Name: "c", Parent: fakeParent(t), Buffers: 2, Compute: echoCompute(0),
		HeartbeatInterval: -1,
		ReconnectBase:     10 * time.Millisecond,
		ReconnectCap:      40 * time.Millisecond,
		ReconnectAttempts: 4,
		sleep:             fakeSleep,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer child.Close()

	// The fake parent hangs up after the handshake; the supervisor then
	// burns through all four attempts (the address no longer listens) and
	// declares the parent lost.
	deadline := time.Now().Add(5 * time.Second)
	for child.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatalf("node never gave up on its parent")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !strings.Contains(child.Err().Error(), "reconnect failed after 4 attempts") {
		t.Fatalf("err = %v", child.Err())
	}

	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond, 40 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff schedule %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("attempt %d slept %v, want %v (full schedule %v)", i+1, slept[i], want[i], slept)
		}
	}
}

func TestHeartbeatMissDetection(t *testing.T) {
	// The child's fault plan drops every frame it sends after the hello,
	// so from the root's perspective the link goes permanently silent.
	// The root's supervisor must count the silent intervals and sever.
	mute := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultSend, After: 2, Repeat: true, Op: FaultDrop,
	})
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(0),
		HeartbeatInterval: 20 * time.Millisecond, HeartbeatMisses: 2,
	})
	startNode(t, Config{
		Name: "m", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(0),
		HeartbeatInterval: -1, ReconnectAttempts: -1, Faults: mute,
	})

	deadline := time.Now().Add(5 * time.Second)
	for root.Stats().HeartbeatMisses < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("root never noticed the silent link: misses = %d", root.Stats().HeartbeatMisses)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDeliberateDepartureRequeuesImmediately(t *testing.T) {
	// A child that Closes announces a goodbye, so its undone tasks requeue
	// without waiting out the reconnect grace window — and the accounting
	// shows up in Stats.Requeued.
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute: echoCompute(5 * time.Millisecond),
	})
	doomed := startNode(t, Config{
		Name: "doomed", Parent: root.Addr(), Buffers: 3,
		Compute: echoCompute(100 * time.Millisecond), // slow: tasks pile up outstanding
	})
	go func() {
		time.Sleep(200 * time.Millisecond)
		doomed.Close()
	}()
	results, err := root.RunTimeout(makeTasks(40, 64), 60*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 40 {
		t.Fatalf("results = %d", len(results))
	}
	if got := root.Stats().Requeued; got == 0 {
		t.Fatalf("no tasks requeued after the child departed mid-run")
	}
}

func TestRunDeadlineReturnsTypedErrorAndPartials(t *testing.T) {
	root := startNode(t, Config{
		Name: "root", Buffers: 2, Compute: echoCompute(50 * time.Millisecond),
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Millisecond)
	defer cancel()
	results, err := root.Run(ctx, makeTasks(50, 16))
	if err == nil {
		t.Fatalf("50 x 50ms inside 120ms did not time out")
	}
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %T %v, want *TimeoutError", err, err)
	}
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v does not match ErrTimeout and context.DeadlineExceeded", err)
	}
	if te.Expected != 50 || te.Received != len(results) {
		t.Fatalf("counts %d/%d, partials %d", te.Received, te.Expected, len(results))
	}
	if len(results) == 0 || len(results) == 50 {
		t.Fatalf("expected a strict subset of results, got %d of 50", len(results))
	}
}

func TestRunCancellation(t *testing.T) {
	root := startNode(t, Config{
		Name: "root", Buffers: 2, Compute: echoCompute(50 * time.Millisecond),
	})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(120 * time.Millisecond)
		cancel()
	}()
	_, err := root.Run(ctx, makeTasks(50, 16))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if errors.Is(err, ErrTimeout) {
		t.Fatalf("cancellation misreported as a timeout: %v", err)
	}
}

func TestOptionsDefaults(t *testing.T) {
	n, err := Start("n", WithCompute(echoCompute(0)))
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer n.Close()
	cfg := n.cfg
	if cfg.Buffers != 3 {
		t.Errorf("Buffers = %d, want the paper's FB=3", cfg.Buffers)
	}
	if cfg.HeartbeatInterval != time.Second || cfg.HeartbeatMisses != 3 {
		t.Errorf("heartbeat defaults = %v/%d, want 1s/3", cfg.HeartbeatInterval, cfg.HeartbeatMisses)
	}
	if cfg.WriteTimeout != 10*time.Second {
		t.Errorf("WriteTimeout = %v, want 10s", cfg.WriteTimeout)
	}
	if cfg.ReconnectBase != 100*time.Millisecond || cfg.ReconnectCap != 2*time.Second || cfg.ReconnectAttempts != 5 {
		t.Errorf("reconnect defaults = %v/%v/%d, want 100ms/2s/5", cfg.ReconnectBase, cfg.ReconnectCap, cfg.ReconnectAttempts)
	}
	if cfg.ReconnectGrace != 5*time.Second {
		t.Errorf("ReconnectGrace = %v, want 5s", cfg.ReconnectGrace)
	}
	if cfg.ChunkSize != 4096 {
		t.Errorf("ChunkSize = %d, want 4096", cfg.ChunkSize)
	}

	// Negative values disable the corresponding machinery.
	d, err := Start("d",
		WithCompute(echoCompute(0)),
		WithHeartbeat(-1, 0),
		WithWriteTimeout(-1),
		WithReconnect(0, 0, -1),
		WithReconnectGrace(-1),
	)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer d.Close()
	if d.cfg.HeartbeatInterval != 0 || d.cfg.WriteTimeout != 0 || d.cfg.ReconnectAttempts != 0 || d.cfg.ReconnectGrace != 0 {
		t.Errorf("disabled config = hb %v, wto %v, attempts %d, grace %v; want all zero",
			d.cfg.HeartbeatInterval, d.cfg.WriteTimeout, d.cfg.ReconnectAttempts, d.cfg.ReconnectGrace)
	}
}
