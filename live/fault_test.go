package live

// Unit tests for the deterministic fault-injection harness, plus the
// acceptance test the fault tolerance work exists for: severing a
// mid-tree node's uplink mid-run must cost throughput, not the run.

import (
	"testing"
	"time"
)

func TestFaultPlanDecide(t *testing.T) {
	t.Run("after counts matching frames", func(t *testing.T) {
		p := NewFaultPlan(FaultRule{Kind: FrameChunk, After: 3, Op: FaultDrop})
		for i := 1; i <= 2; i++ {
			if op, _ := p.decide(FaultRecv, "parent", FrameChunk); op != faultNone {
				t.Fatalf("fired on chunk %d, want the 3rd", i)
			}
		}
		// Non-matching kinds must not advance the counter.
		if op, _ := p.decide(FaultRecv, "parent", FrameHeartbeat); op != faultNone {
			t.Fatalf("fired on a non-matching kind")
		}
		if op, _ := p.decide(FaultRecv, "parent", FrameChunk); op != FaultDrop {
			t.Fatalf("did not fire on the 3rd chunk")
		}
		if op, _ := p.decide(FaultRecv, "parent", FrameChunk); op != faultNone {
			t.Fatalf("one-shot rule fired twice")
		}
	})

	t.Run("repeat fires forever from after", func(t *testing.T) {
		p := NewFaultPlan(FaultRule{After: 2, Repeat: true, Op: FaultDrop})
		if op, _ := p.decide(FaultSend, "x", FrameRequest); op != faultNone {
			t.Fatalf("fired before After")
		}
		for i := 0; i < 5; i++ {
			if op, _ := p.decide(FaultSend, "x", FrameRequest); op != FaultDrop {
				t.Fatalf("repeat rule stopped firing at %d", i)
			}
		}
		if p.Pending() != 0 {
			t.Fatalf("a fired repeat rule still counts as pending")
		}
	})

	t.Run("selectors filter link dir kind", func(t *testing.T) {
		p := NewFaultPlan(FaultRule{Link: "a", Dir: FaultSend, Kind: FrameResult, Op: FaultSever})
		miss := []struct {
			dir  FaultDir
			link string
			kind FrameKind
		}{
			{FaultSend, "b", FrameResult},   // wrong link
			{FaultRecv, "a", FrameResult},   // wrong direction
			{FaultSend, "a", FrameChunkAck}, // wrong kind
		}
		for _, m := range miss {
			if op, _ := p.decide(m.dir, m.link, m.kind); op != faultNone {
				t.Fatalf("rule fired for %+v", m)
			}
		}
		if op, _ := p.decide(FaultSend, "a", FrameResult); op != FaultSever {
			t.Fatalf("rule did not fire for its exact selector")
		}
	})

	t.Run("first match wins and delay carries", func(t *testing.T) {
		p := NewFaultPlan(
			FaultRule{Kind: FrameChunk, Op: FaultDelay, Delay: 7 * time.Millisecond},
			FaultRule{Op: FaultDrop}, // wildcard, shadowed for chunks
		)
		op, d := p.decide(FaultRecv, "parent", FrameChunk)
		if op != FaultDelay || d != 7*time.Millisecond {
			t.Fatalf("decide = %v/%v, want delay 7ms", op, d)
		}
		if op, _ := p.decide(FaultRecv, "parent", FrameHeartbeat); op != FaultDrop {
			t.Fatalf("second rule did not catch the non-chunk frame")
		}
	})

	t.Run("result ack frames are selectable", func(t *testing.T) {
		p := NewFaultPlan(FaultRule{Dir: FaultRecv, Kind: FrameResultAck, Op: FaultDrop})
		// The result itself must not trip a rule scoped to its ack.
		if op, _ := p.decide(FaultRecv, "parent", FrameResult); op != faultNone {
			t.Fatalf("FrameResultAck rule fired on a FrameResult")
		}
		if op, _ := p.decide(FaultSend, "parent", FrameResultAck); op != faultNone {
			t.Fatalf("recv-scoped rule fired on a send")
		}
		if op, _ := p.decide(FaultRecv, "parent", FrameResultAck); op != FaultDrop {
			t.Fatalf("rule did not fire on a received result ack")
		}
	})

	t.Run("nil plan injects nothing", func(t *testing.T) {
		var p *FaultPlan
		if op, _ := p.decide(FaultSend, "a", FrameChunk); op != faultNone {
			t.Fatalf("nil plan fired")
		}
	})

	t.Run("pending", func(t *testing.T) {
		p := NewFaultPlan(
			FaultRule{Kind: FrameChunk, Op: FaultDrop},
			FaultRule{Kind: FrameResult, Op: FaultDrop},
		)
		if p.Pending() != 2 {
			t.Fatalf("Pending = %d, want 2", p.Pending())
		}
		p.decide(FaultRecv, "parent", FrameChunk)
		if p.Pending() != 1 {
			t.Fatalf("Pending = %d after one fire, want 1", p.Pending())
		}
	})
}

// TestSeveredMidTreeNodeRecovers is the acceptance scenario for the fault
// tolerance work: a three-level overlay whose middle node has its uplink
// cut by a scripted fault mid-run. The root must reclaim and requeue the
// dead subtree's tasks, the middle node must reconnect with backoff, and
// the run must complete with every result delivered to the root exactly
// once — at-least-once execution, exactly-once delivery.
func TestSeveredMidTreeNodeRecovers(t *testing.T) {
	const tasks = 60

	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(25 * time.Millisecond), // slow root: work flows down
		ChunkSize:      256,
		ReconnectGrace: -1, // reclaim a dead child's tasks immediately
	})

	// The scripted fault: mid's uplink is severed while it receives its
	// 15th chunk — mid-payload, so the root holds an in-flight transfer
	// (and outstanding tasks) to reclaim.
	sever := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultRecv, Kind: FrameChunk,
		After: 15, Op: FaultSever,
	})
	mid := startNode(t, Config{
		Name: "mid", Parent: root.Addr(), Listen: "127.0.0.1:0", Buffers: 3,
		Compute:       echoCompute(5 * time.Millisecond),
		ChunkSize:     256,
		Faults:        sever,
		ReconnectBase: 50 * time.Millisecond, ReconnectCap: 200 * time.Millisecond, ReconnectAttempts: 10,
	})
	leaf := startNode(t, Config{
		Name: "leaf", Parent: mid.Addr(), Buffers: 3,
		Compute: echoCompute(2 * time.Millisecond),
	})

	results, err := root.RunTimeout(makeTasks(tasks, 2048), 60*time.Second)
	if err != nil {
		t.Fatalf("Run across the sever: %v", err)
	}

	// Exactly-once delivery: every task ID present, none twice.
	if len(results) != tasks {
		t.Fatalf("results = %d, want %d", len(results), tasks)
	}
	seen := make(map[uint64]bool, tasks)
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("task %d delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	for id := uint64(1); id <= tasks; id++ {
		if !seen[id] {
			t.Fatalf("task %d never delivered", id)
		}
	}

	if sever.Pending() != 0 {
		t.Fatalf("the scripted sever never fired")
	}
	if got := root.Stats().Requeued; got == 0 {
		t.Fatalf("root reclaimed nothing from the severed subtree")
	}
	if got := mid.Stats().Reconnects; got == 0 {
		t.Fatalf("mid never reconnected to the root")
	}
	if leaf.Stats().Computed == 0 {
		t.Fatalf("leaf never worked; the subtree below the sever stalled")
	}
	t.Logf("requeued %d, reconnects %d, leaf computed %d",
		root.Stats().Requeued, mid.Stats().Reconnects, leaf.Stats().Computed)
}

// TestSeveredFinalChunkIsRedelivered pins the nastiest revival case: with
// single-chunk tasks the sever swallows a *final* chunk in flight, so the
// parent has written everything ("sentAll") while the child holds nothing
// — and offers no resume state, exactly as if only the ack had been lost.
// The parent must retransmit rather than assume delivery, or the task is
// never computed and the run hangs.
func TestSeveredFinalChunkIsRedelivered(t *testing.T) {
	sever := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultRecv, Kind: FrameChunk,
		After: 5, Op: FaultSever,
	})
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(40 * time.Millisecond),
		ChunkSize:      1 << 16, // every task is one chunk: the sever eats a Last chunk
		ReconnectGrace: 10 * time.Second,
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:       echoCompute(2 * time.Millisecond),
		Faults:        sever,
		ReconnectBase: 10 * time.Millisecond, ReconnectCap: 50 * time.Millisecond, ReconnectAttempts: 10,
	})

	results, err := root.RunTimeout(makeTasks(30, 512), 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	if sever.Pending() != 0 {
		t.Fatalf("the scripted sever never fired")
	}
	if w.Stats().Reconnects == 0 {
		t.Fatalf("worker never reconnected")
	}
}

// TestResumeFromLastAckedChunk drives the resume path specifically: the
// child reconnects within the grace window, so the parent revives the
// session and continues the interrupted transfer from the last
// acknowledged chunk instead of requeueing.
func TestResumeFromLastAckedChunk(t *testing.T) {
	sever := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultRecv, Kind: FrameChunk,
		After: 10, Op: FaultSever,
	})
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(40 * time.Millisecond),
		ChunkSize:      128,
		ReconnectGrace: 10 * time.Second, // ample: the child must make it back in time
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:       echoCompute(2 * time.Millisecond),
		ChunkSize:     128,
		Faults:        sever,
		ReconnectBase: 10 * time.Millisecond, ReconnectCap: 50 * time.Millisecond, ReconnectAttempts: 10,
	})

	results, err := root.RunTimeout(makeTasks(30, 4096), 60*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 30 {
		t.Fatalf("results = %d", len(results))
	}
	if sever.Pending() != 0 {
		t.Fatalf("the scripted sever never fired")
	}
	if got := w.Stats().Reconnects; got == 0 {
		t.Fatalf("worker never reconnected")
	}
	// Within the grace window nothing should have been reclaimed; the
	// interrupted transfer resumed instead.
	s := root.Stats()
	if s.Requeued != 0 {
		t.Logf("note: %d tasks requeued despite the grace window (timing-dependent)", s.Requeued)
	}
	if s.Resumed == 0 && s.Requeued == 0 {
		t.Fatalf("neither resumed nor requeued after a mid-transfer sever: %+v", s)
	}
}
