package live

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Codec identifies a wire codec version. The hello handshake negotiates
// one per connection: the child advertises every version it speaks, the
// parent answers with the highest version both sides share, and all
// frames after the hello-ack use the winner. The handshake frames
// themselves are always gob — the one format every build speaks — so a
// peer that predates versioning simply advertises nothing and keeps its
// gob stream, in both directions.
type Codec uint8

const (
	// CodecGob is the original stream: one gob-encoded message envelope
	// per frame. It is never advertised explicitly — every peer speaks
	// it, and it is the floor the negotiation falls back to.
	CodecGob Codec = 0
	// CodecBinary is the length-prefixed binary framing: a uvarint body
	// length followed by an explicitly encoded body (see appendFrame for
	// the layout). Per-conn buffers are reused across frames, so
	// steady-state encode and decode allocate nothing.
	CodecBinary Codec = 1
)

// supportedWireCodecs is every codec this build offers beyond the
// implied gob floor, in no particular order (negotiation picks the
// highest common version).
var supportedWireCodecs = []Codec{CodecBinary}

func codecSupported(c Codec) bool {
	for _, s := range supportedWireCodecs {
		if s == c {
			return true
		}
	}
	return false
}

func (c Codec) String() string {
	switch c {
	case CodecGob:
		return "gob"
	case CodecBinary:
		return "binary"
	default:
		return fmt.Sprintf("codec(%d)", uint8(c))
	}
}

// codecBytes renders an offer list as the wire form carried in a hello's
// Codecs field. Gob is the implied floor, so it is never listed.
func codecBytes(cs []Codec) []uint8 {
	var out []uint8
	for _, c := range cs {
		if c != CodecGob {
			out = append(out, uint8(c))
		}
	}
	return out
}

// negotiateCodec picks the highest codec version present in both offer
// lists; gob is always common, so an empty intersection downgrades
// rather than fails.
func negotiateCodec(ours []Codec, theirs []uint8) Codec {
	best := CodecGob
	for _, o := range ours {
		for _, t := range theirs {
			if uint8(o) == t && o > best {
				best = o
			}
		}
	}
	return best
}

const (
	// maxFrameBytes bounds a binary frame's declared body length. A
	// frame carries at most one chunk of payload plus small fields, so
	// anything near this limit is a corrupt or hostile prefix.
	maxFrameBytes = 1 << 30
	// frameReadStep caps each allocation step while reading a frame
	// body: the buffer grows only as bytes actually arrive, so a lying
	// length prefix costs at most one step of memory, not the declared
	// size.
	frameReadStep = 64 << 10
	// maxFieldValue bounds decoded integer fields (sizes, offsets,
	// counts) well under both int64 and the platform int, so arithmetic
	// on them cannot overflow downstream.
	maxFieldValue = 1 << 40
)

var (
	errFrameTooBig    = errors.New("live: binary frame exceeds size limit")
	errFrameTruncated = errors.New("live: truncated binary frame")
)

// prefixMax is the widest length prefix a frame can need:
// uvarint(maxFrameBytes) fits in 5 bytes. framePad is the static
// zero-filled gap appendFrame reserves for it, so the reservation is a
// copy rather than a per-frame make().
const prefixMax = 5

var framePad [prefixMax]byte

// appendFrame appends m's length-prefixed binary encoding to buf and
// returns the extended slice. The layout is
//
//	uvarint(len(body)) body
//	body := kind(1 byte) | Seq uvarint | TraceSeq uvarint | TraceNode string | fields…
//
// where strings and byte fields are uvarint-length-prefixed and the
// per-kind fields are fixed by the switch below — which deliberately has
// no default, so bwvet's wireexhaustive analyzer fails the build when a
// new wire kind lands without a binary marshal case.
//
//bwvet:hotpath
func appendFrame(buf []byte, m *message) ([]byte, error) {
	if m.N < 0 || m.Size < 0 || m.Offset < 0 {
		return buf, fmt.Errorf("live: negative field on %d frame", m.Kind)
	}
	start := len(buf)
	// Reserve the widest possible prefix; once the body length is known
	// the real prefix is written and the body slid back over the gap, so
	// batched frames stay contiguous. The gap is copied from a static pad
	// rather than a make() so the reservation never allocates.
	buf = append(buf, framePad[:]...)
	body := len(buf)

	buf = append(buf, byte(m.Kind))
	buf = binary.AppendUvarint(buf, m.Seq)
	buf = binary.AppendUvarint(buf, m.TraceSeq)
	buf = appendStringField(buf, m.TraceNode)
	switch m.Kind {
	case kindHello:
		buf = appendStringField(buf, m.Name)
		buf = appendU64Field(buf, m.Holding)
		buf = binary.AppendUvarint(buf, uint64(len(m.Resume)))
		for _, rp := range m.Resume {
			buf = binary.AppendUvarint(buf, rp.Task)
			buf = binary.AppendUvarint(buf, uint64(rp.Offset))
		}
		buf = appendBytesField(buf, m.Codecs)
	case kindHelloAck:
		buf = appendStringField(buf, m.Name)
		buf = appendBool(buf, m.Revived)
		buf = appendU64Field(buf, m.Accepted)
		buf = appendBytesField(buf, m.Codecs)
	case kindRequest:
		buf = binary.AppendUvarint(buf, uint64(m.N))
		buf = appendStringField(buf, m.App)
	case kindChunk:
		buf = binary.AppendUvarint(buf, m.Task)
		buf = binary.AppendUvarint(buf, uint64(m.Size))
		buf = binary.AppendUvarint(buf, uint64(m.Offset))
		buf = appendBool(buf, m.Last)
		buf = appendStringField(buf, m.App)
		buf = appendBytesField(buf, m.Data)
	case kindResult:
		buf = binary.AppendUvarint(buf, m.Task)
		buf = appendStringField(buf, m.Origin)
		buf = appendStringField(buf, m.App)
		buf = appendBytesField(buf, m.Output)
	case kindChunkAck:
		buf = binary.AppendUvarint(buf, m.Task)
		buf = binary.AppendUvarint(buf, uint64(m.Offset))
		buf = appendBool(buf, m.Last)
	case kindResultAck:
		buf = binary.AppendUvarint(buf, m.Task)
		buf = appendStringField(buf, m.Origin)
	case kindShutdown, kindHeartbeat, kindGoodbye:
		// Header only.
	}

	n := len(buf) - body
	if n > maxFrameBytes {
		return buf[:start], errFrameTooBig
	}
	var prefix [prefixMax]byte
	plen := binary.PutUvarint(prefix[:], uint64(n))
	copy(buf[start:], prefix[:plen])
	if plen < prefixMax {
		// Slide the body over the unused prefix bytes to keep frames
		// contiguous for batched writes.
		copy(buf[start+plen:], buf[body:])
		buf = buf[:start+plen+n]
	}
	return buf, nil
}

//bwvet:hotpath
func appendStringField(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

//bwvet:hotpath
func appendBytesField(buf []byte, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

//bwvet:hotpath
func appendBool(buf []byte, v bool) []byte {
	if v {
		return append(buf, 1)
	}
	return append(buf, 0)
}

//bwvet:hotpath
func appendU64Field(buf []byte, vs []uint64) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(vs)))
	for _, v := range vs {
		buf = binary.AppendUvarint(buf, v)
	}
	return buf
}

// readFrame reads one length-prefixed frame body from br, reusing buf's
// storage when it is large enough. The body is read in frameReadStep
// slices so memory grows only with bytes actually received — a hostile
// length prefix cannot make the reader allocate the declared size up
// front.
//
//bwvet:hotpath
func readFrame(br *bufio.Reader, buf []byte) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return buf[:0], err
	}
	if n > maxFrameBytes {
		return buf[:0], errFrameTooBig
	}
	need := int(n)
	if cap(buf) >= need {
		buf = buf[:need]
		if _, err := io.ReadFull(br, buf); err != nil {
			return buf[:0], fmt.Errorf("%w: %v", errFrameTruncated, err)
		}
		return buf, nil
	}
	buf = buf[:0]
	got := 0
	for got < need {
		step := need - got
		if step > frameReadStep {
			step = frameReadStep
		}
		if cap(buf) < got+step {
			newCap := got + step
			if doubled := 2 * cap(buf); doubled > newCap && doubled <= need {
				newCap = doubled
			}
			nb := make([]byte, newCap)
			copy(nb, buf[:got])
			buf = nb
		}
		buf = buf[:got+step]
		if _, err := io.ReadFull(br, buf[got:]); err != nil {
			return buf[:0], fmt.Errorf("%w: %v", errFrameTruncated, err)
		}
		got += step
	}
	return buf, nil
}

// interner deduplicates the small recurring strings of a stream — node
// names, application tags, trace origins — so steady-state decode does
// not allocate one string per frame. It belongs to a conn's single
// reader goroutine (no locking) and is capped so a hostile stream
// cannot grow it without bound.
type interner struct {
	m map[string]string
}

const maxInternEntries = 4096

//bwvet:hotpath
func (in *interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok { // no allocation on the map probe
		return s
	}
	s := string(b)
	if len(in.m) < maxInternEntries {
		if in.m == nil {
			in.m = make(map[string]string, 8)
		}
		in.m[s] = s
	}
	return s
}

// frameReader is a bounds-checked cursor over one frame body.
type frameReader struct {
	b   []byte
	off int
}

//bwvet:hotpath
func (r *frameReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		return 0, errFrameTruncated
	}
	r.off += n
	return v, nil
}

// intField decodes a non-negative integer bounded by maxFieldValue.
//
//bwvet:hotpath
func (r *frameReader) intField() (int, error) {
	v, err := r.uvarint()
	if err != nil {
		return 0, err
	}
	if v > maxFieldValue {
		return 0, fmt.Errorf("live: frame field %d exceeds bound", v)
	}
	return int(v), nil
}

// raw returns the next length-prefixed byte field as a subslice of the
// frame body (valid only until the read buffer is reused).
//
//bwvet:hotpath
func (r *frameReader) raw() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, errFrameTruncated
	}
	b := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

//bwvet:hotpath
func (r *frameReader) boolField() (bool, error) {
	if r.off >= len(r.b) {
		return false, errFrameTruncated
	}
	v := r.b[r.off]
	r.off++
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("live: bad bool byte %d in frame", v)
	}
}

// u64s decodes a count-prefixed uvarint list; the count is validated
// against the bytes remaining so a lying count cannot drive a large
// allocation.
func (r *frameReader) u64s() ([]uint64, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(r.b)-r.off) { // each element is at least one byte
		return nil, errFrameTruncated
	}
	out := make([]uint64, n)
	for i := range out {
		if out[i], err = r.uvarint(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decodeFrame parses one binary frame body into m, resetting every field
// first so a reused message never leaks state across frames. Data
// aliases the frame body (its consumers copy before the next read);
// Output is copied, because results outlive the read buffer in ledgers
// and result channels. Strings pass through the conn's interner. Decode
// is strict: unknown kinds, malformed fields, and trailing bytes are all
// errors, never panics.
//
//bwvet:hotpath
func decodeFrame(data []byte, m *message, in *interner) error {
	*m = message{}
	r := frameReader{b: data}
	if len(data) == 0 {
		return errFrameTruncated
	}
	m.Kind = msgKind(data[0])
	r.off = 1
	var err error
	if m.Seq, err = r.uvarint(); err != nil {
		return err
	}
	if m.TraceSeq, err = r.uvarint(); err != nil {
		return err
	}
	var b []byte
	if b, err = r.raw(); err != nil {
		return err
	}
	m.TraceNode = in.intern(b)

	switch m.Kind {
	case kindHello:
		if b, err = r.raw(); err != nil {
			return err
		}
		m.Name = in.intern(b)
		if m.Holding, err = r.u64s(); err != nil {
			return err
		}
		count, err := r.uvarint()
		if err != nil {
			return err
		}
		if count > uint64(len(r.b)-r.off)/2 { // each resume point is ≥ 2 bytes
			return errFrameTruncated
		}
		if count > 0 {
			//lint:bwvet-ignore hello frames arrive once per connection, not in steady state; the resume list is per-reconnect
			m.Resume = make([]ResumePoint, count)
			for i := range m.Resume {
				if m.Resume[i].Task, err = r.uvarint(); err != nil {
					return err
				}
				if m.Resume[i].Offset, err = r.intField(); err != nil {
					return err
				}
			}
		}
		if m.Codecs, err = r.rawCopy(); err != nil {
			return err
		}
	case kindHelloAck:
		if b, err = r.raw(); err != nil {
			return err
		}
		m.Name = in.intern(b)
		if m.Revived, err = r.boolField(); err != nil {
			return err
		}
		if m.Accepted, err = r.u64s(); err != nil {
			return err
		}
		if m.Codecs, err = r.rawCopy(); err != nil {
			return err
		}
	case kindRequest:
		if m.N, err = r.intField(); err != nil {
			return err
		}
		if b, err = r.raw(); err != nil {
			return err
		}
		m.App = in.intern(b)
	case kindChunk:
		if m.Task, err = r.uvarint(); err != nil {
			return err
		}
		if m.Size, err = r.intField(); err != nil {
			return err
		}
		if m.Offset, err = r.intField(); err != nil {
			return err
		}
		if m.Last, err = r.boolField(); err != nil {
			return err
		}
		if b, err = r.raw(); err != nil {
			return err
		}
		m.App = in.intern(b)
		if m.Data, err = r.raw(); err != nil {
			return err
		}
		if len(m.Data) == 0 {
			m.Data = nil
		}
	case kindResult:
		if m.Task, err = r.uvarint(); err != nil {
			return err
		}
		if b, err = r.raw(); err != nil {
			return err
		}
		m.Origin = in.intern(b)
		if b, err = r.raw(); err != nil {
			return err
		}
		m.App = in.intern(b)
		if m.Output, err = r.rawCopy(); err != nil {
			return err
		}
	case kindChunkAck:
		if m.Task, err = r.uvarint(); err != nil {
			return err
		}
		if m.Offset, err = r.intField(); err != nil {
			return err
		}
		if m.Last, err = r.boolField(); err != nil {
			return err
		}
	case kindResultAck:
		if m.Task, err = r.uvarint(); err != nil {
			return err
		}
		if b, err = r.raw(); err != nil {
			return err
		}
		m.Origin = in.intern(b)
	case kindShutdown, kindHeartbeat, kindGoodbye:
		// Header only.
	default:
		return fmt.Errorf("live: unknown frame kind %d", m.Kind)
	}
	if r.off != len(data) {
		return fmt.Errorf("live: %d trailing bytes after %d frame", len(data)-r.off, m.Kind)
	}
	return nil
}

// rawCopy is raw with the bytes copied out of the frame body, for fields
// that outlive the read buffer; empty fields stay nil.
func (r *frameReader) rawCopy() ([]byte, error) {
	b, err := r.raw()
	if err != nil || len(b) == 0 {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}
