package live

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// WireBenchResult summarizes one WireBench run. Frames and Bytes are
// measured at the senders' counting writers, so Bytes includes all
// codec overhead.
type WireBenchResult struct {
	Frames  int64         `json:"frames"`
	Bytes   int64         `json:"bytes"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// FramesPerSec is the run's frame throughput across all links.
func (r WireBenchResult) FramesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Frames) / r.Elapsed.Seconds()
}

// BytesPerSec is the run's wire throughput across all links.
func (r WireBenchResult) BytesPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds()
}

// WireBench measures raw data-plane throughput — framing, codec, and
// loopback TCP, with the scheduling engine out of the picture. It opens
// links parent→child connections pinned to codec, and each sender
// streams frames chunk frames of size payload bytes, batched batch
// frames per write on binary links (gob has no batched writer and
// always sends frame-at-a-time, exactly like the engine). The receiver
// side decodes every frame; the run ends when every link has delivered
// its full count.
//
// This is the measurement bwload's -wire-only mode reports: an overlay
// under real task load adds scheduling, compute, and round-trip costs
// on top, so WireBench is the data plane's ceiling, useful for
// comparing codecs against each other rather than predicting overlay
// task throughput.
func WireBench(codec Codec, links, frames, size, batch int) (WireBenchResult, error) {
	if !codecSupported(codec) && codec != CodecGob {
		return WireBenchResult{}, fmt.Errorf("live: unsupported wire codec %d", codec)
	}
	if links < 1 || frames < 1 || size < 0 {
		return WireBenchResult{}, fmt.Errorf("live: wire bench needs links >= 1, frames >= 1, size >= 0")
	}
	if batch < 1 || codec == CodecGob {
		batch = 1
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return WireBenchResult{}, err
	}
	defer ln.Close()

	var (
		seq  atomic.Uint64
		ctr  wireCounters // senders only: counts exactly the benched direction
		wg   sync.WaitGroup
		errs = make(chan error, 2*links)
	)

	// Receivers: accept, decode every frame, report.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < links; i++ {
			raw, err := ln.Accept()
			if err != nil {
				errs <- err
				return
			}
			c := newConn(raw, "parent", nil, 0, &seq, nil)
			c.codec = codec
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer c.close()
				for n := 0; n < frames; n++ {
					if _, err := c.recv(); err != nil {
						errs <- fmt.Errorf("live: wire bench recv after %d frames: %w", n, err)
						return
					}
				}
			}()
		}
	}()

	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}

	start := time.Now()
	for l := 0; l < links; l++ {
		raw, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			ln.Close()
			return WireBenchResult{}, err
		}
		c := newConn(raw, fmt.Sprintf("w%d", l+1), nil, 0, &seq, &ctr)
		c.codec = codec
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer c.close()
			msgs := make([]message, batch)
			group := make([]*message, batch)
			for sent := 0; sent < frames; {
				n := batch
				if left := frames - sent; left < n {
					n = left
				}
				for i := 0; i < n; i++ {
					msgs[i] = message{
						Kind: kindChunk, Task: uint64(sent + i + 1),
						Size: size, Data: payload, Last: true,
					}
					group[i] = &msgs[i]
				}
				if _, err := c.sendBatch(group[:n]); err != nil {
					errs <- fmt.Errorf("live: wire bench send after %d frames: %w", sent, err)
					return
				}
				sent += n
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	select {
	case err := <-errs:
		return WireBenchResult{}, err
	default:
	}
	return WireBenchResult{
		Frames:  ctr.framesSent.Load(),
		Bytes:   ctr.bytesSent.Load(),
		Elapsed: elapsed,
	}, nil
}
