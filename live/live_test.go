package live

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// echoCompute returns the payload reversed, with a fixed artificial
// compute time.
func echoCompute(d time.Duration) ComputeFunc {
	return func(t Task) ([]byte, error) {
		time.Sleep(d)
		out := make([]byte, len(t.Payload))
		for i, b := range t.Payload {
			out[len(out)-1-i] = b
		}
		return out, nil
	}
}

func makeTasks(n, size int) []Task {
	tasks := make([]Task, n)
	for i := range tasks {
		payload := make([]byte, size)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		tasks[i] = Task{ID: uint64(i + 1), Payload: payload}
	}
	return tasks
}

func startNode(t *testing.T, cfg Config) *Node {
	t.Helper()
	n, err := StartConfig(cfg)
	if err != nil {
		t.Fatalf("Start(%s): %v", cfg.Name, err)
	}
	t.Cleanup(func() {
		dumpOnFailure(t, n)
		n.Close()
	})
	return n
}

// dumpOnFailure writes the node's flight-recorder dump — and, when
// timeline sampling is active, its /timeline telemetry dump — when the
// test failed and BWCS_TRACE_DIR names a directory. CI's live-stress job
// sets it and uploads the dumps (plus their bwtrace merges) as an
// artifact, so a stall or protocol regression arrives with its causal
// timeline and rate history attached instead of just a test name.
func dumpOnFailure(t *testing.T, n *Node) {
	dir := os.Getenv("BWCS_TRACE_DIR")
	if dir == "" || !t.Failed() {
		return
	}
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name())
	write := func(path string, v any) {
		b, err := json.MarshalIndent(v, "", "  ")
		if err == nil {
			err = os.WriteFile(path, b, 0o644)
		}
		if err != nil {
			t.Logf("dump %s: %v", path, err)
			return
		}
		t.Logf("dump written to %s", path)
	}
	write(filepath.Join(dir, name+"-"+n.cfg.Name+".json"), n.TraceDump())
	if n.sampler != nil {
		write(filepath.Join(dir, name+"-"+n.cfg.Name+"-timeline.json"), n.TimelineDump())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := StartConfig(Config{Compute: echoCompute(0), Buffers: 1}); err == nil {
		t.Fatalf("nameless node accepted")
	}
	if _, err := StartConfig(Config{Name: "x", Buffers: 1}); err == nil {
		t.Fatalf("compute-less node accepted")
	}
	if _, err := StartConfig(Config{Name: "x", Compute: echoCompute(0), Buffers: 0}); err == nil {
		t.Fatalf("zero buffers accepted")
	}
	if _, err := StartConfig(Config{Name: "x", Compute: echoCompute(0), Buffers: 1, Parent: "127.0.0.1:1"}); err == nil {
		t.Fatalf("unreachable parent accepted")
	}
}

func TestRootAloneComputesEverything(t *testing.T) {
	root := startNode(t, Config{Name: "root", Buffers: 3, Compute: echoCompute(0)})
	tasks := makeTasks(25, 64)
	results, err := root.RunTimeout(tasks, 10*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("results = %d", len(results))
	}
	for i, r := range results {
		if r.ID != uint64(i+1) || r.Origin != "root" {
			t.Fatalf("result %d = %+v", i, r)
		}
		want := tasks[i].Payload
		for j := range want {
			if r.Output[j] != want[len(want)-1-j] {
				t.Fatalf("result %d payload wrong", i)
			}
		}
	}
	if s := root.Stats(); s.Computed != 25 || s.Forwarded != 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestRunRejectsNonRootAndDuplicates(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(0)})
	child := startNode(t, Config{Name: "c", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(0)})
	if _, err := child.RunTimeout(makeTasks(1, 8), time.Second); err == nil {
		t.Fatalf("Run on child accepted")
	}
	dup := []Task{{ID: 7}, {ID: 7}}
	if _, err := root.RunTimeout(dup, time.Second); err == nil {
		t.Fatalf("duplicate ids accepted")
	}
}

func TestTwoWorkersShareTheLoad(t *testing.T) {
	// Root computes slowly; two children compute fast: the work must
	// spread and every result must come back exactly once.
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 3, Compute: echoCompute(30 * time.Millisecond)})
	a := startNode(t, Config{Name: "a", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(2 * time.Millisecond)})
	b := startNode(t, Config{Name: "b", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(2 * time.Millisecond)})

	tasks := makeTasks(60, 256)
	results, err := root.RunTimeout(tasks, 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 60 {
		t.Fatalf("results = %d", len(results))
	}
	sa, sb, sr := a.Stats(), b.Stats(), root.Stats()
	if sa.Computed+sb.Computed+sr.Computed != 60 {
		t.Fatalf("computed split %d/%d/%d", sr.Computed, sa.Computed, sb.Computed)
	}
	if sa.Computed == 0 || sb.Computed == 0 {
		t.Fatalf("a worker was starved: %d/%d", sa.Computed, sb.Computed)
	}
	if sr.Forwarded != sa.Received+sb.Received {
		t.Fatalf("forwarded %d != received %d+%d", sr.Forwarded, sa.Received, sb.Received)
	}
	// Request-driven flow control: no child ever buffered more than FB.
	if sa.MaxQueued > 3 || sb.MaxQueued > 3 {
		t.Fatalf("buffer bound violated: %d / %d", sa.MaxQueued, sb.MaxQueued)
	}
}

func TestBandwidthCentricPriorityOnMeasuredLinks(t *testing.T) {
	// Both children have identical CPUs but "slow"'s link carries a 40x
	// per-chunk delay. The bandwidth-centric port must route most tasks
	// through the fast link.
	delay := func(child string) time.Duration {
		if child == "slow" {
			return 20 * time.Millisecond
		}
		return 500 * time.Microsecond
	}
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:   echoCompute(500 * time.Millisecond), // root CPU out of the picture
		LinkDelay: delay,
	})
	fast := startNode(t, Config{Name: "fast", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(time.Millisecond)})
	slow := startNode(t, Config{Name: "slow", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(time.Millisecond)})

	tasks := makeTasks(40, 128)
	if _, err := root.RunTimeout(tasks, 30*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	sf, ss := fast.Stats().Computed, slow.Stats().Computed
	if sf <= ss {
		t.Fatalf("fast link got %d tasks, slow got %d; bandwidth-centric priority failed", sf, ss)
	}
}

func TestInterruptibleSendsPreempt(t *testing.T) {
	// Large payloads over a slow link with a fast sibling requesting:
	// interruptible mode must record preemptions; non-interruptible none.
	run := func(nonIC bool) (Stats, error) {
		delay := func(child string) time.Duration {
			if child == "slow" {
				return 5 * time.Millisecond
			}
			return 100 * time.Microsecond
		}
		root, err := StartConfig(Config{
			Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
			Compute:          echoCompute(time.Second),
			LinkDelay:        delay,
			ChunkSize:        512,
			NonInterruptible: nonIC,
		})
		if err != nil {
			return Stats{}, err
		}
		defer root.Close()
		fast, err := StartConfig(Config{Name: "fast", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
		if err != nil {
			return Stats{}, err
		}
		defer fast.Close()
		slow, err := StartConfig(Config{Name: "slow", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
		if err != nil {
			return Stats{}, err
		}
		defer slow.Close()
		if _, err := root.RunTimeout(makeTasks(24, 8192), 60*time.Second); err != nil {
			return Stats{}, err
		}
		return root.Stats(), nil
	}
	ic, err := run(false)
	if err != nil {
		t.Fatalf("IC run: %v", err)
	}
	if ic.Interrupts == 0 {
		t.Fatalf("interruptible run recorded no preemptions")
	}
	nic, err := run(true)
	if err != nil {
		t.Fatalf("non-IC run: %v", err)
	}
	if nic.Interrupts != 0 {
		t.Fatalf("non-interruptible run preempted %d times", nic.Interrupts)
	}
}

func TestThreeLevelTree(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 3, Compute: echoCompute(20 * time.Millisecond)})
	mid := startNode(t, Config{Name: "mid", Parent: root.Addr(), Listen: "127.0.0.1:0", Buffers: 3, Compute: echoCompute(20 * time.Millisecond)})
	leaf := startNode(t, Config{Name: "leaf", Parent: mid.Addr(), Buffers: 3, Compute: echoCompute(2 * time.Millisecond)})

	results, err := root.RunTimeout(makeTasks(40, 128), 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 40 {
		t.Fatalf("results = %d", len(results))
	}
	if leaf.Stats().Computed == 0 {
		t.Fatalf("leaf never worked; tasks did not flow two hops")
	}
	// Results from the leaf must have been relayed through mid.
	byOrigin := map[string]int{}
	for _, r := range results {
		byOrigin[r.Origin]++
	}
	if byOrigin["leaf"] == 0 {
		t.Fatalf("no results attributed to the leaf: %v", byOrigin)
	}
}

func TestWorkerJoinsMidRun(t *testing.T) {
	// Autonomy: a new worker connects while the application runs and
	// simply starts requesting tasks — no coordination with anyone but
	// its parent.
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 3, Compute: echoCompute(10 * time.Millisecond)})
	type outcome struct {
		results []Result
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		rs, err := root.RunTimeout(makeTasks(80, 64), 60*time.Second)
		done <- outcome{rs, err}
	}()
	time.Sleep(100 * time.Millisecond)
	late := startNode(t, Config{Name: "late", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(time.Millisecond)})
	out := <-done
	if out.err != nil {
		t.Fatalf("Run: %v", out.err)
	}
	if len(out.results) != 80 {
		t.Fatalf("results = %d", len(out.results))
	}
	if late.Stats().Computed == 0 {
		t.Fatalf("late joiner never computed")
	}
}

func TestWorkerDeathRequeuesTasks(t *testing.T) {
	// A worker dies mid-run; its in-flight tasks must be re-executed so
	// the run still completes.
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 3, Compute: echoCompute(5 * time.Millisecond)})
	doomed := startNode(t, Config{Name: "doomed", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(50 * time.Millisecond)})
	go func() {
		time.Sleep(150 * time.Millisecond)
		doomed.Close()
	}()
	results, err := root.RunTimeout(makeTasks(50, 64), 60*time.Second)
	if err != nil {
		t.Fatalf("Run after worker death: %v", err)
	}
	if len(results) != 50 {
		t.Fatalf("results = %d", len(results))
	}
}

func TestComputeErrorSurfaces(t *testing.T) {
	boom := func(t Task) ([]byte, error) {
		if t.ID == 3 {
			return nil, fmt.Errorf("task %d exploded", t.ID)
		}
		return nil, nil
	}
	root := startNode(t, Config{Name: "root", Buffers: 2, Compute: boom})
	_, err := root.RunTimeout(makeTasks(10, 8), 5*time.Second)
	if err == nil {
		t.Fatalf("compute error not surfaced")
	}
}

func TestEmptyPayloadTasks(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(5 * time.Millisecond)})
	startNode(t, Config{Name: "w", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(0)})
	tasks := make([]Task, 20)
	for i := range tasks {
		tasks[i] = Task{ID: uint64(i + 1)} // zero-length payloads
	}
	results, err := root.RunTimeout(tasks, 20*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != 20 {
		t.Fatalf("results = %d", len(results))
	}
	for _, r := range results {
		if !bytes.Equal(r.Output, []byte{}) && r.Output != nil {
			t.Fatalf("unexpected output %v", r.Output)
		}
	}
}

func TestCloseIsIdempotent(t *testing.T) {
	root := startNode(t, Config{Name: "root", Buffers: 1, Compute: echoCompute(0)})
	if err := root.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := root.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestStatusEndpoint(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(2 * time.Millisecond)})
	w := startNode(t, Config{Name: "w", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
	_ = w
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	// Second endpoint on the same node is rejected.
	if _, err := root.ServeStatus("127.0.0.1:0"); err == nil {
		t.Fatalf("duplicate status endpoint accepted")
	}
	if _, err := root.RunTimeout(makeTasks(20, 64), 20*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/status")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var snap StatusSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if snap.Name != "root" || !snap.Root {
		t.Fatalf("snapshot = %+v", snap)
	}
	if len(snap.Children) != 1 || snap.Children[0] != "w" {
		t.Fatalf("children = %v", snap.Children)
	}
	if snap.Stats.Computed+snap.Stats.Forwarded != 20 {
		t.Fatalf("stats = %+v", snap.Stats)
	}
	if _, ok := snap.Links["w"]; !ok {
		t.Fatalf("no measured link for w: %v", snap.Links)
	}
	root.StopStatus()
	// StopStatus is idempotent.
	root.StopStatus()
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Fatalf("endpoint alive after StopStatus")
	}
}

func TestStatusClosedWithNode(t *testing.T) {
	root, err := StartConfig(Config{Name: "r", Buffers: 1, Compute: echoCompute(0)})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	root.Close()
	if _, err := http.Get("http://" + addr + "/status"); err == nil {
		t.Fatalf("endpoint alive after node Close")
	}
}

func TestStatusBadAddress(t *testing.T) {
	root := startNode(t, Config{Name: "r", Buffers: 1, Compute: echoCompute(0)})
	if _, err := root.ServeStatus("256.0.0.1:99999"); err == nil {
		t.Fatalf("bad address accepted")
	}
}
