package live

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// kindSelectors pins the bijection between wire kinds and fault-injection
// selectors. Adding a kind* constant to wire.go without extending this
// map — which requires adding the matching Frame* selector to
// faultinject.go to compile — fails TestFaultSelectorExhaustive, so a new
// frame kind can never ship without fault coverage.
var kindSelectors = map[string]struct {
	kind  msgKind
	frame FrameKind
}{
	"kindHello":     {kindHello, FrameHello},
	"kindRequest":   {kindRequest, FrameRequest},
	"kindChunk":     {kindChunk, FrameChunk},
	"kindResult":    {kindResult, FrameResult},
	"kindShutdown":  {kindShutdown, FrameShutdown},
	"kindHeartbeat": {kindHeartbeat, FrameHeartbeat},
	"kindChunkAck":  {kindChunkAck, FrameChunkAck},
	"kindHelloAck":  {kindHelloAck, FrameHelloAck},
	"kindGoodbye":   {kindGoodbye, FrameGoodbye},
	"kindResultAck": {kindResultAck, FrameResultAck},
}

// constNames parses file and returns the package-level constant names
// declared with the given type name (matched syntactically: the first
// name of each const spec group carries the type).
func constNames(t *testing.T, file, typeName string) map[string]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, 0)
	if err != nil {
		t.Fatalf("parse %s: %v", file, err)
	}
	names := make(map[string]bool)
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		inType := false
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			// Within one const block, a spec with no type continues the
			// iota sequence of the last typed spec.
			if vs.Type != nil {
				id, ok := vs.Type.(*ast.Ident)
				inType = ok && id.Name == typeName
			}
			if !inType {
				continue
			}
			for _, name := range vs.Names {
				names[name.Name] = true
			}
		}
	}
	return names
}

// TestFaultSelectorExhaustive cross-checks the Frame* selector set of
// faultinject.go against the kind* wire constants of wire.go: every wire
// kind has a selector with the same numeric value, every selector except
// the FrameAny wildcard selects a real kind, and the test's own pin map
// covers the full set.
func TestFaultSelectorExhaustive(t *testing.T) {
	kinds := constNames(t, "wire.go", "msgKind")
	if len(kinds) == 0 {
		t.Fatal("no msgKind constants found in wire.go; did the type move?")
	}
	for name := range kinds {
		if !strings.HasPrefix(name, "kind") {
			t.Errorf("msgKind constant %s breaks the kind* naming convention", name)
		}
		if _, ok := kindSelectors[name]; !ok {
			t.Errorf("wire.go declares %s but this test's kindSelectors map does not cover it: add it here and a Frame%s selector to faultinject.go", name, strings.TrimPrefix(name, "kind"))
		}
	}
	for name := range kindSelectors {
		if !kinds[name] {
			t.Errorf("kindSelectors pins %s, which wire.go no longer declares", name)
		}
	}

	frames := constNames(t, "faultinject.go", "FrameKind")
	if !frames["FrameAny"] {
		t.Error("faultinject.go must keep the FrameAny wildcard selector")
	}
	if FrameAny != 0 {
		t.Errorf("FrameAny = %d, want 0 (the zero value must stay the wildcard)", FrameAny)
	}
	delete(frames, "FrameAny")
	if got, want := len(frames), len(kinds); got != want {
		t.Errorf("faultinject.go has %d Frame selectors for %d wire kinds", got, want)
	}
	for name, pin := range kindSelectors {
		frameName := "Frame" + strings.TrimPrefix(name, "kind")
		if !frames[frameName] {
			t.Errorf("wire kind %s has no %s selector in faultinject.go", name, frameName)
			continue
		}
		if FrameKind(pin.kind) != pin.frame {
			t.Errorf("%s = %d but %s = %d; selector and kind values must match for FaultRule matching to work", name, pin.kind, frameName, pin.frame)
		}
	}
}
