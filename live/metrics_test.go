package live

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"
)

// scrape fetches a Prometheus text endpoint and parses it into
// name{labels} -> value.
func scrape(t *testing.T, url string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	out := map[string]int64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable exposition line %q", line)
		}
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scan: %v", err)
	}
	return out
}

// TestMetricsEndpointMatchesStats runs a small overlay, then asserts
// every counter /metrics serves equals the corresponding field of the
// Stats snapshot — the acceptance contract for the observability layer.
func TestMetricsEndpointMatchesStats(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(2 * time.Millisecond)})
	startNode(t, Config{Name: "w1", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
	startNode(t, Config{Name: "w2", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	if _, err := root.RunTimeout(makeTasks(30, 64), 20*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	st := root.Stats()
	got := scrape(t, "http://"+addr+"/metrics")

	want := map[string]int64{
		"live_tasks_computed_total":           st.Computed,
		"live_tasks_forwarded_total":          st.Forwarded,
		"live_tasks_received_total":           st.Received,
		"live_requests_sent_total":            st.Requests,
		"live_send_interrupts_total":          st.Interrupts,
		"live_reconnects_total":               st.Reconnects,
		"live_tasks_requeued_total":           st.Requeued,
		"live_transfers_resumed_total":        st.Resumed,
		"live_heartbeat_misses_total":         st.HeartbeatMisses,
		"live_send_errors_total":              st.SendErrors,
		"live_result_acks_total":              st.ResultAcks,
		"live_results_replayed_total":         st.ResultsReplayed,
		"live_results_deduped_total":          st.ResultsDeduped,
		"live_tasks_requeued_on_revive_total": st.RequeuedOnRevive,
		"live_queued_peak":                    int64(st.MaxQueued),
		"live_connected":                      1, // the root is always connected
		"live_children":                       2,
	}
	for name, v := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("/metrics missing %s", name)
			continue
		}
		if g != v {
			t.Errorf("%s = %d, Stats says %d", name, g, v)
		}
	}
	for child, v := range st.ByChild {
		key := fmt.Sprintf("live_forwarded_by_child_total{child=%q}", child)
		if got[key] != v {
			t.Errorf("%s = %d, Stats says %d", key, got[key], v)
		}
	}
	// The uptime gauge tracks Stats.UptimeSeconds; the scrape happened
	// after the snapshot, so allow the clock to have ticked over.
	up, ok := got["live_uptime_seconds"]
	if !ok {
		t.Errorf("/metrics missing live_uptime_seconds")
	} else if up < st.UptimeSeconds || up > st.UptimeSeconds+2 {
		t.Errorf("live_uptime_seconds = %d, Stats says %d", up, st.UptimeSeconds)
	}
	// process_start_time_seconds is the conventional restart-detection
	// gauge: a unix timestamp no later than now and no earlier than the
	// test binary plausibly started.
	start, ok := got["process_start_time_seconds"]
	now := time.Now().Unix()
	if !ok {
		t.Errorf("/metrics missing process_start_time_seconds")
	} else if start > now || start < now-3600 {
		t.Errorf("process_start_time_seconds = %d, now is %d", start, now)
	}
	// The work must have actually flowed through the overlay, otherwise
	// the equalities above are all 0 == 0.
	if st.Computed+st.Forwarded != 30 || st.Forwarded == 0 {
		t.Fatalf("fixture did not distribute work: %+v", st)
	}
}

// TestMetricsEndpointOnWorker: a non-root node serves /metrics too, and
// reports its uplink as connected.
func TestMetricsEndpointOnWorker(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2, Compute: echoCompute(time.Millisecond)})
	w := startNode(t, Config{Name: "w", Parent: root.Addr(), Buffers: 2, Compute: echoCompute(time.Millisecond)})
	addr, err := w.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	if _, err := root.RunTimeout(makeTasks(10, 32), 20*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := scrape(t, "http://"+addr+"/metrics")
	if got["live_connected"] != 1 {
		t.Fatalf("worker reports disconnected uplink: %v", got)
	}
	st := w.Stats()
	if got["live_tasks_computed_total"] != st.Computed || got["live_tasks_received_total"] != st.Received {
		t.Fatalf("worker metrics diverge from Stats: %v vs %+v", got, st)
	}
}

// TestPprofServed: the status server wires the standard pprof handlers.
func TestPprofServed(t *testing.T) {
	root := startNode(t, Config{Name: "root", Buffers: 1, Compute: echoCompute(0)})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d (%s)", path, resp.StatusCode, body)
		}
	}
}
