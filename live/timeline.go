package live

// Wall-clock timeline telemetry for a running overlay node: a background
// sampler snapshots the node's counters once per interval and folds the
// deltas into bounded time series (task and wire byte rates, buffered
// depth), which /timeline serves as a JSON dump or follows as NDJSON —
// the live mirror of the simulator's Result.Timeline.

import (
	"encoding/json"
	"net/http"
	"time"

	"bwcs/internal/metrics"
)

// TimelineSchema identifies the /timeline JSON document format.
const TimelineSchema = "bwcs-timeline/v1"

// defaultTimelineInterval is the sampling cadence when
// Config.TimelineInterval is unset.
const defaultTimelineInterval = time.Second

// timelineSeriesCap bounds the stored points per live series; on
// overflow a series halves itself and doubles its resolution, so a
// long-lived node's telemetry stays O(timelineSeriesCap).
const timelineSeriesCap = 512

// TimelineDump is the JSON document /timeline serves: every sampled
// series of the node, point timestamps in milliseconds since the node
// started.
type TimelineDump struct {
	Schema     string                   `json:"schema"`
	Node       string                   `json:"node"`
	IntervalMS int64                    `json:"intervalMs"`
	Series     []metrics.SeriesSnapshot `json:"series"`
}

// TimelineDump snapshots the node's sampled telemetry. The Series are
// empty when sampling is disabled (Config.TimelineInterval < 0).
func (n *Node) TimelineDump() TimelineDump {
	d := TimelineDump{
		Schema:     TimelineSchema,
		Node:       n.cfg.Name,
		IntervalMS: n.cfg.TimelineInterval.Milliseconds(),
	}
	if n.sampler != nil {
		d.Series = n.sampler.Snapshot()
	}
	return d
}

// sampleLoop is the telemetry goroutine: once per TimelineInterval it
// diffs the node's counters against the previous pass and records the
// rates, stamped in milliseconds since the node started. Rates are
// computed against the measured (not nominal) elapsed time, so a late
// tick does not inflate them.
func (n *Node) sampleLoop() {
	t := time.NewTicker(n.cfg.TimelineInterval)
	defer t.Stop()
	prev := n.Stats()
	prevAt := time.Now()
	for {
		select {
		case <-t.C:
		case <-n.done:
			return
		}
		now := time.Now()
		dt := now.Sub(prevAt).Seconds()
		if dt <= 0 {
			continue
		}
		st := n.Stats()
		n.mu.Lock()
		buffered := len(n.buffer)
		n.mu.Unlock()

		tms := now.Sub(n.started).Milliseconds()
		rate := func(cur, old int64) float64 { return float64(cur-old) / dt }
		n.sampler.Observe("computed_rate", tms, rate(st.Computed, prev.Computed))
		n.sampler.Observe("forwarded_rate", tms, rate(st.Forwarded, prev.Forwarded))
		n.sampler.Observe("received_rate", tms, rate(st.Received, prev.Received))
		n.sampler.Observe("bytes_sent_rate", tms, rate(st.BytesSent, prev.BytesSent))
		n.sampler.Observe("bytes_received_rate", tms, rate(st.BytesReceived, prev.BytesReceived))
		n.sampler.Observe("buffered", tms, float64(buffered))
		n.sampler.Tick()
		prev, prevAt = st, now
	}
}

// timelineRow is one NDJSON line of a /timeline?follow=1 stream: the
// newest point of one series, tagged with the sampling pass that
// produced it.
type timelineRow struct {
	Tick   uint64  `json:"tick"`
	Series string  `json:"series"`
	T      int64   `json:"t"` // milliseconds since the node started
	V      float64 `json:"v"`
}

// handleTimeline serves the sampled telemetry. A plain GET returns the
// full TimelineDump as JSON; with ?follow=1 the response is an NDJSON
// stream — one timelineRow per series per sampling pass, flushed per
// line — until the client disconnects or the node closes.
func (s *statusServer) handleTimeline(w http.ResponseWriter, r *http.Request) {
	n := s.node
	if n.sampler == nil {
		http.Error(w, "live: timeline sampling disabled", http.StatusNotFound)
		return
	}
	if r.URL.Query().Get("follow") == "" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.TimelineDump())
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	// Poll well below the sampling cadence so rows stream promptly after
	// each pass; the tick cursor makes polls without fresh data free.
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	var cursor uint64
	for {
		tick, latest := n.sampler.Latest()
		if tick > cursor {
			cursor = tick
			for _, sn := range latest {
				if err := enc.Encode(timelineRow{Tick: tick, Series: sn.Name, T: sn.Points[0].T, V: sn.Points[0].V}); err != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
		}
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-n.done:
			return
		}
	}
}
