// Package live is a working distributed implementation of the paper's
// autonomous bandwidth-centric scheduling protocol over real TCP
// connections — the prototype its future-work section calls for.
//
// Nodes form a tree overlay: each node listens for children and, except at
// the root, connects to its parent. Scheduling is exactly the paper's:
//
//   - request-driven — a node sends one request up whenever one of its
//     task buffers frees (at the start of a local computation or of a
//     downstream forward);
//   - bandwidth-centric — a parent serves the requesting child with the
//     smallest *measured* communication time (an EWMA of observed chunk
//     send times; no global information);
//   - interruptible — task payloads stream in chunks through a single send
//     port, and between chunks the port switches to a higher-priority
//     child's transfer, exactly the shelve-and-resume semantics of
//     Section 3.2 (disable with Config.NonInterruptible for the non-IC
//     variant).
//
// Results return hop by hop to the root, which is the source and sink of
// all application data. Every scheduling decision uses only locally
// observable state, so subtrees can be added under any node while an
// application runs.
//
// The package is runnable both in-process (tests, examples) and as
// separate OS processes via cmd/bwnode.
package live

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"
)

// Task is one unit of application work.
type Task struct {
	ID      uint64
	Payload []byte
}

// Result is a completed task.
type Result struct {
	ID     uint64
	Output []byte
	Origin string // name of the node that computed it
}

// ComputeFunc executes one task. It runs on the node's single compute
// "port" (one task at a time, as in the paper's base model).
type ComputeFunc func(Task) ([]byte, error)

// Config describes one node of the overlay.
type Config struct {
	// Name identifies the node in results and statistics.
	Name string
	// Listen is the address to accept children on; empty for leaves.
	// Use "127.0.0.1:0" to pick a free port (see Node.Addr).
	Listen string
	// Parent is the parent node's address; empty for the root.
	Parent string
	// Buffers is the number of task buffers (the paper's FB); the
	// headline protocol uses 3.
	Buffers int
	// NonInterruptible disables chunk-level preemption at the send port
	// (the paper's non-IC variant).
	NonInterruptible bool
	// ChunkSize is the payload slice streamed per send-port turn;
	// default 4096 bytes.
	ChunkSize int
	// Compute executes tasks; required.
	Compute ComputeFunc
	// LinkDelay, when non-nil, adds an artificial delay before each chunk
	// sent to the named child — a deterministic stand-in for heterogeneous
	// link bandwidth in tests and demos (the measured priorities then
	// reflect it, exactly as they would reflect real bandwidth).
	LinkDelay func(childName string) time.Duration
}

// Stats is a snapshot of a node's counters.
type Stats struct {
	Computed   int64            // tasks computed locally
	Forwarded  int64            // tasks sent to children
	Received   int64            // tasks received from the parent
	Requests   int64            // requests sent to the parent
	Interrupts int64            // send-port switches away from an unfinished transfer
	MaxQueued  int              // most tasks simultaneously buffered
	ByChild    map[string]int64 // tasks forwarded per child
}

// Node is a running overlay node.
type Node struct {
	cfg      Config
	listener net.Listener
	parent   *conn

	mu       sync.Mutex
	children []*childSession
	buffer   []Task
	results  chan Result // root only: collected results
	inflight map[uint64]*inTransfer
	stats    Stats
	status   *statusServer
	closed   bool
	err      error

	kick chan struct{} // wakes the send port
	comp chan struct{} // wakes the compute loop
	done chan struct{} // closed by Close
	wg   sync.WaitGroup
}

// childSession is the parent-side state for one connected child.
type childSession struct {
	name    string
	c       *conn
	pending int  // outstanding requests
	link    ewma // measured per-chunk communication time
	active  *outTransfer
	gone    bool
	// outstanding holds every task fully delivered into this child's
	// subtree whose result has not yet come back through this node. If
	// the child dies, these are requeued and re-executed (at-least-once
	// semantics; the root deduplicates results by task ID).
	outstanding map[uint64]Task
}

// outTransfer is an in-progress (possibly preempted-and-resumed) send.
type outTransfer struct {
	task   Task
	offset int
}

// Start launches a node. Leaves connect to their parent immediately; the
// root becomes ready to Run once started.
func Start(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("live: node needs a name")
	}
	if cfg.Compute == nil {
		return nil, errors.New("live: node needs a Compute function")
	}
	if cfg.Buffers < 1 {
		return nil, fmt.Errorf("live: buffers %d < 1", cfg.Buffers)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	n := &Node{
		cfg:      cfg,
		inflight: make(map[uint64]*inTransfer),
		kick:     make(chan struct{}, 1),
		comp:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
	n.stats.ByChild = make(map[string]int64)

	if cfg.Listen != "" {
		l, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("live: listen: %w", err)
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptLoop()
	}
	if cfg.Parent != "" {
		raw, err := net.Dial("tcp", cfg.Parent)
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("live: dial parent: %w", err)
		}
		n.parent = newConn(raw)
		if err := n.parent.send(&message{Kind: kindHello, Name: cfg.Name}); err != nil {
			n.Close()
			return nil, fmt.Errorf("live: hello: %w", err)
		}
		// The paper's startup: one request per empty buffer.
		if err := n.parent.send(&message{Kind: kindRequest, N: cfg.Buffers}); err != nil {
			n.Close()
			return nil, fmt.Errorf("live: initial request: %w", err)
		}
		n.mu.Lock()
		n.stats.Requests += int64(cfg.Buffers)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.parentLoop()
	} else {
		n.results = make(chan Result, 1024)
	}

	n.wg.Add(2)
	go n.computeLoop()
	go n.sendPort()
	return n, nil
}

// Addr returns the node's listen address (useful with "127.0.0.1:0").
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Err returns the first fatal error the node hit, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.ByChild = make(map[string]int64, len(n.stats.ByChild))
	for k, v := range n.stats.ByChild {
		s.ByChild[k] = v
	}
	return s
}

// Close shuts the node down: children are told to wind down and all
// connections close. Closing the root before Run returns aborts the run.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	children := append([]*childSession(nil), n.children...)
	status := n.status
	n.status = nil
	n.mu.Unlock()

	if status != nil {
		_ = status.srv.Close()
	}
	close(n.done)
	for _, ch := range children {
		_ = ch.c.send(&message{Kind: kindShutdown})
		_ = ch.c.close()
	}
	if n.parent != nil {
		_ = n.parent.close()
	}
	if n.listener != nil {
		_ = n.listener.Close()
	}
	n.wake(n.kick)
	n.wake(n.comp)
	n.wg.Wait()
	return nil
}

// Run dispatches the given tasks from the root and blocks until every
// result has been collected or the timeout expires. Only the root (a node
// with no parent) may call Run.
func (n *Node) Run(tasks []Task, timeout time.Duration) ([]Result, error) {
	if n.parent != nil {
		return nil, errors.New("live: Run called on a non-root node")
	}
	seen := make(map[uint64]bool, len(tasks))
	for _, t := range tasks {
		if seen[t.ID] {
			return nil, fmt.Errorf("live: duplicate task id %d", t.ID)
		}
		seen[t.ID] = true
	}

	n.mu.Lock()
	n.buffer = append(n.buffer, tasks...) // the root's pool
	if q := len(n.buffer); q > n.stats.MaxQueued {
		n.stats.MaxQueued = q
	}
	n.mu.Unlock()
	n.wake(n.kick)
	n.wake(n.comp)

	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	out := make([]Result, 0, len(tasks))
	for len(out) < len(tasks) {
		select {
		case r := <-n.results:
			wanted, known := seen[r.ID]
			if !known {
				return out, fmt.Errorf("live: unexpected result id %d", r.ID)
			}
			if !wanted {
				continue // duplicate from a re-executed task; ignore
			}
			seen[r.ID] = false
			out = append(out, r)
		case <-deadline.C:
			return out, fmt.Errorf("live: timeout with %d of %d results", len(out), len(tasks))
		case <-n.done:
			return out, errors.New("live: node closed during run")
		}
		if err := n.Err(); err != nil {
			return out, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// wake delivers a non-blocking signal.
func (n *Node) wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// fail records the first fatal error and shuts down wakeups.
func (n *Node) fail(err error) {
	n.mu.Lock()
	if n.err == nil && err != nil {
		n.err = err
	}
	n.mu.Unlock()
	n.wake(n.kick)
	n.wake(n.comp)
}

// isClosed reports whether Close has begun.
func (n *Node) isClosed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// acceptLoop admits children.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c := newConn(raw)
		hello, err := c.recv()
		if err != nil || hello.Kind != kindHello {
			_ = c.close()
			continue
		}
		sess := &childSession{name: hello.Name, c: c, outstanding: make(map[uint64]Task)}
		n.mu.Lock()
		n.children = append(n.children, sess)
		n.mu.Unlock()
		n.wg.Add(1)
		go n.childLoop(sess)
	}
}

// childLoop reads one child's requests and relayed results.
func (n *Node) childLoop(s *childSession) {
	defer n.wg.Done()
	for {
		m, err := s.c.recv()
		if err != nil {
			n.mu.Lock()
			s.gone = true
			n.mu.Unlock()
			n.wake(n.kick)
			return
		}
		switch m.Kind {
		case kindRequest:
			n.mu.Lock()
			s.pending += m.N
			n.mu.Unlock()
			n.wake(n.kick)
		case kindResult:
			n.mu.Lock()
			delete(s.outstanding, m.Task)
			n.mu.Unlock()
			n.deliverResult(Result{ID: m.Task, Output: m.Output, Origin: m.Origin})
		}
	}
}

// parentLoop reads tasks arriving from the parent.
func (n *Node) parentLoop() {
	defer n.wg.Done()
	for {
		m, err := n.parent.recv()
		if err != nil {
			if !n.isClosed() && !errors.Is(err, io.EOF) {
				n.fail(fmt.Errorf("live: parent link: %w", err))
			}
			return
		}
		switch m.Kind {
		case kindChunk:
			t, ok := n.inflightFor(m.Task)
			if !ok {
				continue
			}
			complete, err := t.feed(m)
			if err != nil {
				n.fail(err)
				return
			}
			if complete {
				n.mu.Lock()
				delete(n.inflight, m.Task)
				n.buffer = append(n.buffer, Task{ID: m.Task, Payload: t.payload})
				n.stats.Received++
				if q := len(n.buffer); q > n.stats.MaxQueued {
					n.stats.MaxQueued = q
				}
				n.mu.Unlock()
				n.wake(n.comp)
				n.wake(n.kick)
			}
		case kindShutdown:
			n.Close()
			return
		}
	}
}

func (n *Node) inflightFor(id uint64) (*inTransfer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, false
	}
	t, ok := n.inflight[id]
	if !ok {
		t = &inTransfer{id: id}
		n.inflight[id] = t
	}
	return t, true
}

// deliverResult hands a result to the local collector (root) or relays it
// to the parent.
func (n *Node) deliverResult(r Result) {
	if n.parent == nil {
		select {
		case n.results <- r:
		case <-n.done:
		}
		return
	}
	if err := n.parent.send(&message{Kind: kindResult, Task: r.ID, Output: r.Output, Origin: r.Origin}); err != nil && !n.isClosed() {
		n.fail(fmt.Errorf("live: relay result: %w", err))
	}
}

// takeTask pops one buffered task, firing the request-on-free rule.
func (n *Node) takeTask() (Task, bool) {
	n.mu.Lock()
	if len(n.buffer) == 0 {
		n.mu.Unlock()
		return Task{}, false
	}
	t := n.buffer[0]
	n.buffer = n.buffer[1:]
	hasParent := n.parent != nil
	if hasParent {
		n.stats.Requests++
	}
	n.mu.Unlock()
	if hasParent {
		if err := n.parent.send(&message{Kind: kindRequest, N: 1}); err != nil && !n.isClosed() {
			n.fail(fmt.Errorf("live: request: %w", err))
		}
	}
	return t, true
}

// computeLoop is the node's compute port: one task at a time.
func (n *Node) computeLoop() {
	defer n.wg.Done()
	for {
		t, ok := n.takeTask()
		if !ok {
			select {
			case <-n.comp:
				continue
			case <-n.done:
				return
			}
		}
		out, err := n.cfg.Compute(t)
		if err != nil {
			n.fail(fmt.Errorf("live: compute task %d: %w", t.ID, err))
			return
		}
		n.mu.Lock()
		n.stats.Computed++
		n.mu.Unlock()
		n.deliverResult(Result{ID: t.ID, Output: out, Origin: n.cfg.Name})
		if n.isClosed() {
			return
		}
	}
}
