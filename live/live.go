// Package live is a working distributed implementation of the paper's
// autonomous bandwidth-centric scheduling protocol over real TCP
// connections — the prototype its future-work section calls for.
//
// Nodes form a tree overlay: each node listens for children and, except at
// the root, connects to its parent. Scheduling is exactly the paper's:
//
//   - request-driven — a node sends one request up whenever one of its
//     task buffers frees (at the start of a local computation or of a
//     downstream forward);
//   - bandwidth-centric — a parent serves the requesting child with the
//     smallest *measured* communication time (an EWMA of observed chunk
//     send times; no global information);
//   - interruptible — task payloads stream in chunks through a single send
//     port, and between chunks the port switches to a higher-priority
//     child's transfer, exactly the shelve-and-resume semantics of
//     Section 3.2 (disable with NonInterruptible for the non-IC variant).
//
// Results return hop by hop to the root, which is the source and sink of
// all application data. Every scheduling decision uses only locally
// observable state, so subtrees can be added under any node while an
// application runs.
//
// # Fault tolerance
//
// The runtime survives churn, the regime volunteer platforms live in:
//
//   - Every link is supervised by heartbeats (WithHeartbeat) and
//     per-message write deadlines (WithWriteTimeout); a silent or stalled
//     link is severed rather than hanging the run.
//   - When a child's link dies, its parent keeps the session revivable
//     for a grace window (WithReconnectGrace) and then reclaims every
//     task delivered into the dead subtree without a returned result,
//     requeueing them for re-dispatch — the engine's DepartMutation
//     semantics. Tasks execute at least once; parents deduplicate, so
//     results are delivered exactly once.
//   - A disconnected non-root node re-dials its parent with capped
//     exponential backoff (WithReconnect), resuming an interrupted
//     transfer from the last acknowledged chunk and replaying results it
//     computed while partitioned.
//   - Results are acknowledged frames, not fire-and-forget: each node
//     keeps every result it owes its parent in an unacked ledger,
//     retired only by the parent's ack, replayed after a reconnect, and
//     retransmitted on a lossy link (WithResultRetry). At revive time
//     the parent requeues any outstanding task the child's hello no
//     longer accounts for, so a result lost in a sever window costs a
//     retransmission, never the run.
//   - A deterministic fault-injection harness (FaultPlan, WithFaultPlan)
//     drops, delays, or severs a named link at a scripted frame, so all
//     of the above is testable in-process.
//
// The package is runnable both in-process (tests, examples) and as
// separate OS processes via cmd/bwnode.
package live

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"bwcs/internal/metrics"
)

// Task is one unit of application work. App names the application
// (tenant) the task belongs to; empty for single-application runs. The
// tag rides every chunk of the task's payload, so per-tenant accounting
// and weighted sharing work at every node of the overlay.
type Task struct {
	ID      uint64
	Payload []byte
	App     string
}

// Result is a completed task. App echoes the task's application tag.
type Result struct {
	ID     uint64
	Output []byte
	Origin string // name of the node that computed it
	App    string
}

// ComputeFunc executes one task. It runs on the node's single compute
// "port" (one task at a time, as in the paper's base model).
type ComputeFunc func(Task) ([]byte, error)

// Config describes one node of the overlay. Prefer the Start constructor
// with Options; StartConfig accepts a literal Config for callers built
// against the positional API.
type Config struct {
	// Name identifies the node in results and statistics.
	Name string
	// Listen is the address to accept children on; empty for leaves.
	// Use "127.0.0.1:0" to pick a free port (see Node.Addr).
	Listen string
	// Parent is the parent node's address; empty for the root.
	Parent string
	// Buffers is the number of task buffers (the paper's FB); the
	// headline protocol uses 3.
	Buffers int
	// NonInterruptible disables chunk-level preemption at the send port
	// (the paper's non-IC variant).
	NonInterruptible bool
	// ChunkSize is the payload slice streamed per send-port turn;
	// default 4096 bytes.
	ChunkSize int
	// Compute executes tasks; required.
	Compute ComputeFunc
	// LinkDelay, when non-nil, adds an artificial delay before each chunk
	// sent to the named child — a deterministic stand-in for heterogeneous
	// link bandwidth in tests and demos (the measured priorities then
	// reflect it, exactly as they would reflect real bandwidth).
	LinkDelay func(childName string) time.Duration
	// AppWeights are per-application sharing weights: when tasks of
	// several applications sit buffered at once, the node dispatches them
	// by weighted round-robin over the applications present (missing or
	// non-positive entries weigh 1). Bandwidth-centric child selection is
	// untouched — weights pick *whose* task moves, the measured link
	// priority picks *where*.
	AppWeights map[string]int64

	// HeartbeatInterval is the per-link supervision period: each link
	// sends a heartbeat every interval and counts silent intervals
	// inbound. 0 means the 1s default; negative disables supervision.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many consecutive silent intervals sever a
	// link; default 3.
	HeartbeatMisses int
	// WriteTimeout bounds each outbound frame; 0 means the 10s default,
	// negative disables the deadline.
	WriteTimeout time.Duration
	// ReconnectBase and ReconnectCap shape the capped exponential backoff
	// of parent re-dials: attempt k sleeps min(base<<(k-1), cap).
	// Defaults 100ms and 2s.
	ReconnectBase time.Duration
	ReconnectCap  time.Duration
	// ReconnectAttempts is how many re-dials a disconnected node makes
	// before declaring the parent lost; 0 means the default 5, negative
	// disables reconnection entirely.
	ReconnectAttempts int
	// ReconnectGrace is how long a parent keeps a dead child's session
	// revivable before reclaiming its tasks; 0 means the default 5s,
	// negative reclaims immediately.
	ReconnectGrace time.Duration
	// ResultRetry is how long an unacknowledged result may sit on a live
	// uplink before it is retransmitted; 0 means the default 2s,
	// negative disables retransmission (unacked results then replay only
	// after a reconnect).
	ResultRetry time.Duration
	// WireCodecs lists the wire codec versions this node offers in its
	// hello (as a child) and accepts (as a parent). nil offers every
	// codec this build speaks; a list of only CodecGob pins the legacy
	// gob envelope. Gob itself is always implied — the handshake runs in
	// it and negotiation falls back to it — so mixed-version overlays
	// interoperate in both directions.
	WireCodecs []Codec
	// ChunkBatch is the most chunks of one transfer the send port writes
	// per port turn on a binary conn (one buffer, one syscall); preemption
	// still happens between turns, so a large batch trades preemption
	// granularity for throughput. 0 means the default 8; negative (or a
	// LinkDelay, which is emulated per chunk) forces single-chunk turns.
	ChunkBatch int
	// HandshakeTimeout bounds the hello / hello-ack exchange on each
	// side; 0 means the 5s default.
	HandshakeTimeout time.Duration
	// Faults, when non-nil, is a deterministic fault-injection script
	// consulted on every frame this node sends or receives.
	Faults *FaultPlan
	// RecorderCap is the flight recorder's ring capacity in events;
	// 0 means the 8192 default, negative disables the recorder. Overflow
	// evicts the oldest events and counts them in Stats.RecorderDropped.
	RecorderCap int
	// TimelineInterval is the telemetry sampling cadence: every interval
	// the node records its task and wire byte rates and buffered depth
	// into the bounded series /timeline serves. 0 means the 1s default;
	// negative disables sampling (and /timeline answers 404).
	TimelineInterval time.Duration

	// sleep is the backoff clock, replaceable by tests; nil means real
	// time.Sleep interruptible by node shutdown.
	sleep func(d time.Duration, done <-chan struct{}) bool
}

// Stats is a snapshot of a node's counters.
type Stats struct {
	Computed   int64            // tasks computed locally
	Forwarded  int64            // tasks sent to children
	Received   int64            // tasks received from the parent
	Requests   int64            // requests sent to the parent
	Interrupts int64            // send-port switches away from an unfinished transfer
	MaxQueued  int              // most tasks simultaneously buffered
	ByChild    map[string]int64 // tasks forwarded per child

	// Recovery counters.
	Reconnects      int64 // successful re-dials of a lost parent link
	Requeued        int64 // tasks reclaimed from dead subtrees and requeued
	Resumed         int64 // transfers resumed mid-payload after a child reconnected
	HeartbeatMisses int64 // supervision intervals that passed with a silent link
	SendErrors      int64 // ack sends that failed on a dying link (replay covers them)

	// Result-path delivery counters.
	ResultAcks       int64 // ledger entries retired by a parent's result ack
	ResultsReplayed  int64 // unacked results retransmitted (reconnect replay or retry)
	ResultsDeduped   int64 // duplicate results suppressed before relay/collection
	RequeuedOnRevive int64 // tasks requeued by revive-time reconciliation (subset of Requeued)

	// RecorderDropped counts flight-recorder events evicted by ring
	// overflow; nonzero means dumps hold a truncated window.
	RecorderDropped int64

	// UptimeSeconds is how long the node has been running, in whole
	// seconds since StartConfig returned it.
	UptimeSeconds int64

	// Wire data-plane volume, aggregated over all of the node's links in
	// both directions (and across reconnects). Bytes are measured at the
	// socket, so they include codec overhead — the ratio of frames to
	// bytes is the codec's framing efficiency.
	FramesSent     int64
	FramesReceived int64
	BytesSent      int64
	BytesReceived  int64

	// PerApp breaks the task-path counters down by application tag, for
	// tagged tasks only (single-application runs with untagged tasks keep
	// it empty).
	PerApp map[string]AppStats
}

// AppStats is one application's slice of a node's counters.
type AppStats struct {
	Computed  int64 // tasks of this app computed locally
	Forwarded int64 // tasks of this app sent to children
	Received  int64 // tasks of this app received from the parent
	Requeued  int64 // tasks of this app reclaimed and requeued
	Collected int64 // root only: results of this app delivered to Run
	Deduped   int64 // duplicate results of this app suppressed
}

// Node is a running overlay node.
type Node struct {
	cfg      Config
	root     bool
	listener net.Listener

	// rec is the flight recorder; nil when disabled. wireSeq numbers
	// every frame the node sends, across all conns and reconnects.
	// wireCtr meters data-plane volume across all conns.
	rec     *flightRecorder
	wireSeq atomic.Uint64
	wireCtr wireCounters

	// started anchors uptime and timeline timestamps; sampler is the
	// timeline telemetry state, nil when sampling is disabled.
	started time.Time
	sampler *metrics.Sampler

	// portMsgs and portFrames are the send port's reusable chunk-batch
	// scratch; touched only by the sendPort goroutine.
	portMsgs   []message
	portFrames []*message

	mu         sync.Mutex
	parentName string // parent's node name, learned from its hello-ack
	// appCredit is the node's weighted-round-robin ledger over application
	// tags: each dispatch decision among a mixed buffer credits every
	// application present by its weight and debits the chosen one by the
	// round total (smooth WRR).
	appCredit  map[string]int64
	parent     *conn // current uplink; nil while disconnected (or root)
	reqDeficit int   // requests owed to the parent, accrued while disconnected
	// unacked is the result ledger: every result this node owes its
	// parent, in arrival order, retired only by a matching result ack.
	// The flusher goroutine is its sole sender, so wire order follows
	// ledger order even across reconnects and retransmits.
	unacked   []*resultEntry
	computing map[uint64]bool // tasks on the compute port right now
	children  []*childSession
	buffer    []Task
	results   chan Result // root only: collected results
	inflight  map[uint64]*inTransfer
	stats     Stats
	status    *statusServer
	closed    bool
	err       error

	kick     chan struct{} // wakes the send port
	comp     chan struct{} // wakes the compute loop
	resKick  chan struct{} // wakes the result flusher
	done     chan struct{} // closed by Close
	failed   chan struct{} // closed on the first fatal error
	failOnce sync.Once
	wg       sync.WaitGroup
}

// childSession is the parent-side state for one connected child.
type childSession struct {
	name    string
	c       *conn
	pending int  // outstanding requests
	link    ewma // measured per-chunk communication time
	active  *outTransfer
	gone    bool
	left    bool      // announced a deliberate departure: reclaim without grace
	goneAt  time.Time // when the link died, for the reconnect grace window
	// outstanding holds every task fully delivered into this child's
	// subtree whose result has not yet come back through this node. If
	// the child dies, these are requeued and re-executed (at-least-once
	// semantics; the root deduplicates results by task ID).
	outstanding map[uint64]Task
}

// outTransfer is an in-progress (possibly preempted-and-resumed) send.
type outTransfer struct {
	task    Task
	offset  int  // next byte to send
	acked   int  // bytes the child confirmed receiving
	sentAll bool // every byte written; awaiting the final ack
	// resumed marks the next chunk as the start of a new transfer segment
	// (after a preemption, reconnect resume, or retransmit-from-top), so
	// the flight recorder logs it as a resume. traceSeq is the recorder
	// sequence of the segment's dispatch event, stamped on every chunk
	// frame of the segment as its causal trace context.
	resumed  bool
	traceSeq uint64
}

// resultEntry is one slot of the unacked-result ledger: a result owed to
// the parent, keyed by task ID + origin. A successful write does not
// retire it — only the parent's ack does — so a frame lost to a severed
// or lossy link is replayed rather than silently dropped.
type resultEntry struct {
	res    Result
	sentOn *conn     // uplink the entry was last written to; nil = never sent
	sentAt time.Time // when it was last written, for the retransmit timer
}

// defaultHandshakeTimeout bounds the hello / hello-ack exchange when
// Config.HandshakeTimeout is unset.
const defaultHandshakeTimeout = 5 * time.Second

// defaultChunkBatch is how many chunks of one transfer the send port
// writes per turn on a binary conn when Config.ChunkBatch is unset.
const defaultChunkBatch = 8

// ErrTimeout reports a Run whose context deadline expired with results
// still missing; match with errors.Is. The concrete *TimeoutError
// carries the partial counts.
var ErrTimeout = errors.New("live: run timed out")

// TimeoutError is the error Run returns alongside its partial results
// when the context deadline expires.
type TimeoutError struct {
	Received int // results collected before the deadline
	Expected int // tasks dispatched
}

func (e *TimeoutError) Error() string {
	return fmt.Sprintf("live: timeout with %d of %d results", e.Received, e.Expected)
}

// Unwrap makes errors.Is report both ErrTimeout and
// context.DeadlineExceeded.
func (e *TimeoutError) Unwrap() []error {
	return []error{ErrTimeout, context.DeadlineExceeded}
}

// StartConfig launches a node from a literal Config. Leaves connect to
// their parent immediately; the root becomes ready to Run once started.
//
// Deprecated: use Start, which names the node and takes functional
// Options with documented defaults.
func StartConfig(cfg Config) (*Node, error) {
	if cfg.Name == "" {
		return nil, errors.New("live: node needs a name")
	}
	if cfg.Compute == nil {
		return nil, errors.New("live: node needs a Compute function")
	}
	if cfg.Buffers < 1 {
		return nil, fmt.Errorf("live: buffers %d < 1", cfg.Buffers)
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = 4096
	}
	switch {
	case cfg.HeartbeatInterval == 0:
		cfg.HeartbeatInterval = time.Second
	case cfg.HeartbeatInterval < 0:
		cfg.HeartbeatInterval = 0 // disabled
	}
	if cfg.HeartbeatMisses <= 0 {
		cfg.HeartbeatMisses = 3
	}
	switch {
	case cfg.WriteTimeout == 0:
		cfg.WriteTimeout = 10 * time.Second
	case cfg.WriteTimeout < 0:
		cfg.WriteTimeout = 0 // disabled
	}
	if cfg.ReconnectBase <= 0 {
		cfg.ReconnectBase = 100 * time.Millisecond
	}
	if cfg.ReconnectCap <= 0 {
		cfg.ReconnectCap = 2 * time.Second
	}
	switch {
	case cfg.ReconnectAttempts == 0:
		cfg.ReconnectAttempts = 5
	case cfg.ReconnectAttempts < 0:
		cfg.ReconnectAttempts = 0 // disabled
	}
	switch {
	case cfg.ReconnectGrace == 0:
		cfg.ReconnectGrace = 5 * time.Second
	case cfg.ReconnectGrace < 0:
		cfg.ReconnectGrace = 0 // reclaim immediately
	}
	switch {
	case cfg.ResultRetry == 0:
		cfg.ResultRetry = 2 * time.Second
	case cfg.ResultRetry < 0:
		cfg.ResultRetry = 0 // retransmit only on reconnect
	}
	switch {
	case cfg.TimelineInterval == 0:
		cfg.TimelineInterval = defaultTimelineInterval
	case cfg.TimelineInterval < 0:
		cfg.TimelineInterval = 0 // disabled
	}
	switch {
	case cfg.ChunkBatch == 0:
		cfg.ChunkBatch = defaultChunkBatch
	case cfg.ChunkBatch < 0:
		cfg.ChunkBatch = 1
	}
	if cfg.LinkDelay != nil {
		// The emulated delay is charged per chunk; batching would fold a
		// whole batch under one delay and skew the measured priorities.
		cfg.ChunkBatch = 1
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = defaultHandshakeTimeout
	}
	for _, wc := range cfg.WireCodecs {
		if wc != CodecGob && !codecSupported(wc) {
			return nil, fmt.Errorf("live: unsupported wire codec %v", wc)
		}
	}
	if cfg.sleep == nil {
		cfg.sleep = realSleep
	}

	recCap := cfg.RecorderCap
	if recCap == 0 {
		recCap = defaultRecorderCap
	}
	n := &Node{
		cfg:       cfg,
		root:      cfg.Parent == "",
		started:   time.Now(),
		inflight:  make(map[uint64]*inTransfer),
		computing: make(map[uint64]bool),
		kick:      make(chan struct{}, 1),
		comp:      make(chan struct{}, 1),
		resKick:   make(chan struct{}, 1),
		done:      make(chan struct{}),
		failed:    make(chan struct{}),
	}
	n.stats.ByChild = make(map[string]int64)
	if recCap > 0 {
		n.rec = newFlightRecorder(recCap)
	}
	if cfg.TimelineInterval > 0 {
		// Millisecond timestamps at the sampling cadence never collide, so
		// resolution 1 keeps every pass distinct until capacity forces
		// downsampling.
		n.sampler = metrics.NewSampler(timelineSeriesCap, 1)
	}

	if cfg.Listen != "" {
		l, err := net.Listen("tcp", cfg.Listen)
		if err != nil {
			return nil, fmt.Errorf("live: listen: %w", err)
		}
		n.listener = l
		n.wg.Add(1)
		go n.acceptLoop()
	}
	if n.root {
		n.results = make(chan Result, 1024)
	} else {
		if err := n.connectParent(); err != nil {
			n.Close()
			return nil, err
		}
		n.wg.Add(2)
		go n.parentSupervisor()
		go n.resultFlusher()
	}

	n.wg.Add(2)
	go n.computeLoop()
	go n.sendPort()
	if n.sampler != nil {
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.sampleLoop()
		}()
	}
	return n, nil
}

// realSleep pauses for d, abandoning the wait when done closes. The
// reconnect backoff goes through Config.sleep so tests can substitute a
// fake clock.
func realSleep(d time.Duration, done <-chan struct{}) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}

// backoffDelay is the capped exponential reconnect schedule: attempt k
// (1-based) sleeps min(base<<(k-1), cap).
func backoffDelay(attempt int, base, cap time.Duration) time.Duration {
	d := base
	for i := 1; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// Addr returns the node's listen address (useful with "127.0.0.1:0").
func (n *Node) Addr() string {
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Err returns the first fatal error the node hit, if any.
func (n *Node) Err() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.err
}

// Failed returns a channel closed when the node hits a fatal error — a
// parent link lost with every reconnect attempt exhausted, a compute
// failure (see Err). A worker process should watch it to exit once its
// overlay is gone instead of serving a dead tree.
func (n *Node) Failed() <-chan struct{} {
	return n.failed
}

// Done returns a channel closed when the node has shut down — by Close,
// or by a shutdown ordered from upstream when the application finished.
func (n *Node) Done() <-chan struct{} {
	return n.done
}

// Stats returns a snapshot of the node's counters.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	s := n.stats
	s.ByChild = make(map[string]int64, len(n.stats.ByChild))
	for k, v := range n.stats.ByChild {
		s.ByChild[k] = v
	}
	s.PerApp = make(map[string]AppStats, len(n.stats.PerApp))
	for k, v := range n.stats.PerApp {
		s.PerApp[k] = v
	}
	if n.rec != nil {
		s.RecorderDropped = n.rec.dropped()
	}
	s.FramesSent = n.wireCtr.framesSent.Load()
	s.FramesReceived = n.wireCtr.framesRecv.Load()
	s.BytesSent = n.wireCtr.bytesSent.Load()
	s.BytesReceived = n.wireCtr.bytesRecv.Load()
	s.UptimeSeconds = int64(time.Since(n.started).Seconds())
	return s
}

// countSendError tallies a failed ack send. The connection's read loop
// observes the same dead link and drives recovery, so nothing else needs
// doing here; the counter lets operators correlate replay churn with
// write-path failures.
func (n *Node) countSendError() {
	n.mu.Lock()
	n.stats.SendErrors++
	n.mu.Unlock()
}

// offeredWireCodecs is the negotiation offer list: the configured pin,
// or everything this build speaks.
func (n *Node) offeredWireCodecs() []Codec {
	if n.cfg.WireCodecs != nil {
		return n.cfg.WireCodecs
	}
	return supportedWireCodecs
}

// parentLabel is the uplink's display name for flight-recorder events:
// the parent's node name once its hello-ack revealed it, "parent" before.
func (n *Node) parentLabel() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.parentName != "" {
		return n.parentName
	}
	return "parent"
}

// Close shuts the node down: children are told to wind down, the parent
// is told this subtree is leaving for good (so it reclaims and requeues
// immediately instead of waiting out the reconnect grace), and all
// connections close. Closing the root before Run returns aborts the run.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	children := append([]*childSession(nil), n.children...)
	parent := n.parent
	status := n.status
	n.status = nil
	n.mu.Unlock()

	if status != nil {
		_ = status.srv.Close()
	}
	close(n.done)
	for _, ch := range children {
		_ = ch.c.send(&message{Kind: kindShutdown}) //lint:bwvet-ignore best-effort farewell on teardown; an unreachable child recovers via supervision
		_ = ch.c.close()
	}
	if parent != nil {
		_ = parent.send(&message{Kind: kindGoodbye}) //lint:bwvet-ignore best-effort farewell on teardown; a dead parent severs us anyway
		_ = parent.close()
	}
	if n.listener != nil {
		_ = n.listener.Close()
	}
	n.wake(n.kick)
	n.wake(n.comp)
	n.wg.Wait()
	return nil
}

// Run dispatches the given tasks from the root and blocks until every
// result has been collected or ctx ends. Only the root (a node with no
// parent) may call Run.
//
// On a context deadline, Run returns the partial results alongside a
// *TimeoutError (errors.Is(err, ErrTimeout)); on cancellation it returns
// the partial results and the context's error. Re-executed tasks from
// recovered failures are deduplicated by ID: each result is delivered
// exactly once.
func (n *Node) Run(ctx context.Context, tasks []Task) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if !n.root {
		return nil, errors.New("live: Run called on a non-root node")
	}
	seen := make(map[uint64]bool, len(tasks))
	for _, t := range tasks {
		if seen[t.ID] {
			return nil, fmt.Errorf("live: duplicate task id %d", t.ID)
		}
		seen[t.ID] = true
	}

	n.mu.Lock()
	n.buffer = append(n.buffer, tasks...) // the root's pool
	if q := len(n.buffer); q > n.stats.MaxQueued {
		n.stats.MaxQueued = q
	}
	n.mu.Unlock()
	n.wake(n.kick)
	n.wake(n.comp)

	out := make([]Result, 0, len(tasks))
	for len(out) < len(tasks) {
		select {
		case r := <-n.results:
			wanted, known := seen[r.ID]
			if !known {
				return out, fmt.Errorf("live: unexpected result id %d", r.ID)
			}
			if !wanted {
				continue // duplicate from a re-executed task; ignore
			}
			seen[r.ID] = false
			out = append(out, r)
		case <-ctx.Done():
			if errors.Is(ctx.Err(), context.DeadlineExceeded) {
				return out, &TimeoutError{Received: len(out), Expected: len(tasks)}
			}
			return out, fmt.Errorf("live: run canceled: %w", ctx.Err())
		case <-n.done:
			return out, errors.New("live: node closed during run")
		}
		if err := n.Err(); err != nil {
			return out, err
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// RunTimeout dispatches tasks with the deadline expressed as a duration.
//
// Deprecated: use Run with a context carrying the deadline.
func (n *Node) RunTimeout(tasks []Task, timeout time.Duration) ([]Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	return n.Run(ctx, tasks)
}

// bumpApp updates one application's counter slice; untagged tasks (empty
// app) keep no per-app entry. Callers hold n.mu.
func (n *Node) bumpApp(app string, f func(*AppStats)) {
	if app == "" {
		return
	}
	if n.stats.PerApp == nil {
		n.stats.PerApp = make(map[string]AppStats)
	}
	s := n.stats.PerApp[app]
	f(&s)
	n.stats.PerApp[app] = s
}

// appWeight is the application's sharing weight (missing or non-positive
// configures as 1).
func (n *Node) appWeight(app string) int64 {
	if w := n.cfg.AppWeights[app]; w > 0 {
		return w
	}
	return 1
}

// popTaskLocked removes the next task to dispatch from the buffer. With
// one application present this is plain FIFO (the engine's order). With a
// mixed buffer the application is chosen first by smooth weighted
// round-robin — each application present earns its weight in credit, the
// richest (earliest in buffer order on ties) is served and pays back the
// round total — and the chosen application's oldest buffered task moves.
// Callers hold n.mu and guarantee the buffer is non-empty.
func (n *Node) popTaskLocked() Task {
	mixed := false
	for _, t := range n.buffer[1:] {
		if t.App != n.buffer[0].App {
			mixed = true
			break
		}
	}
	if !mixed {
		t := n.buffer[0]
		n.buffer = n.buffer[1:]
		return t
	}
	if n.appCredit == nil {
		n.appCredit = make(map[string]int64)
	}
	first := make(map[string]int) // app -> oldest buffered index
	order := make([]string, 0, 4) // apps in buffer order, for deterministic ties
	for i, t := range n.buffer {
		if _, ok := first[t.App]; !ok {
			first[t.App] = i
			order = append(order, t.App)
		}
	}
	var total int64
	best := ""
	for _, app := range order {
		w := n.appWeight(app)
		n.appCredit[app] += w
		total += w
		if best == "" || n.appCredit[app] > n.appCredit[best] {
			best = app
		}
	}
	n.appCredit[best] -= total
	i := first[best]
	t := n.buffer[i]
	n.buffer = append(n.buffer[:i], n.buffer[i+1:]...)
	return t
}

// wake delivers a non-blocking signal.
func (n *Node) wake(ch chan struct{}) {
	select {
	case ch <- struct{}{}:
	default:
	}
}

// fail records the first fatal error and shuts down wakeups.
func (n *Node) fail(err error) {
	if err == nil {
		return
	}
	n.mu.Lock()
	if n.err == nil {
		n.err = err
	}
	n.mu.Unlock()
	n.failOnce.Do(func() { close(n.failed) })
	n.wake(n.kick)
	n.wake(n.comp)
}

// isClosed reports whether Close has begun.
func (n *Node) isClosed() bool {
	select {
	case <-n.done:
		return true
	default:
		return false
	}
}

// goTracked runs fn on a goroutine counted by the node's WaitGroup,
// unless shutdown has already begun (Close flips closed under the same
// lock before waiting, so the Add cannot race the Wait).
func (n *Node) goTracked(fn func()) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		fn()
	}()
}

// superviseConn watches one link: it sends a heartbeat every interval
// and, after HeartbeatMisses consecutive intervals with no inbound
// frame, severs the connection so the owning read loop fails fast into
// the recovery path (requeue at a parent, reconnect at a child).
func (n *Node) superviseConn(c *conn) {
	interval := n.cfg.HeartbeatInterval
	if interval <= 0 {
		return
	}
	n.goTracked(func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		misses := 0
		for {
			select {
			case <-t.C:
				_ = c.send(&message{Kind: kindHeartbeat}) //lint:bwvet-ignore a failed probe shows up as recv silence below and supervision severs the link
				if c.sinceRecv() > interval {
					misses++
					n.mu.Lock()
					n.stats.HeartbeatMisses++
					n.mu.Unlock()
					n.record(Event{Kind: EvHeartbeatMiss, Peer: c.label(), Value: int64(misses)})
					if misses >= n.cfg.HeartbeatMisses {
						n.record(Event{Kind: EvSever, Peer: c.label()})
						_ = c.close()
						return
					}
				} else {
					misses = 0
				}
			case <-c.stop:
				return
			case <-n.done:
				return
			}
		}
	})
}

// acceptLoop admits children.
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		raw, err := n.listener.Accept()
		if err != nil {
			return // listener closed
		}
		c := newConn(raw, "", n.cfg.Faults, n.cfg.WriteTimeout, &n.wireSeq, &n.wireCtr)
		hello, err := c.recvTimeout(n.cfg.HandshakeTimeout)
		if err != nil || hello.Kind != kindHello {
			_ = c.close()
			continue
		}
		c.peer = hello.Name
		c.peerName = hello.Name
		n.admitChild(c, hello)
	}
}

// admitChild installs a connection as a fresh child session — or, when
// the hello names a session whose link died within the reconnect grace
// window, revives that session: its request ledger and outstanding tasks
// survive, and an interrupted transfer resumes from the chunk offset the
// child reports holding.
func (n *Node) admitChild(c *conn, hello *message) {
	offered := make(map[uint64]int, len(hello.Resume))
	for _, rp := range hello.Resume {
		offered[rp.Task] = rp.Offset
	}
	// covered is every task the child's hello still accounts for: held
	// somewhere in its subtree (Holding) or partially received and
	// offered for resumption (Resume). An outstanding task outside this
	// set was lost with the old connection.
	covered := make(map[uint64]bool, len(hello.Holding)+len(hello.Resume))
	for _, id := range hello.Holding {
		covered[id] = true
	}
	for _, rp := range hello.Resume {
		covered[rp.Task] = true
	}
	// Codec negotiation: highest version both sides offer, gob floor.
	// The conn's codec is set before it is published to the child loop
	// and send port; the ack itself still travels as gob (the child
	// switches after reading it).
	c.codec = negotiateCodec(n.offeredWireCodecs(), hello.Codecs)
	ack := &message{Kind: kindHelloAck, Name: n.cfg.Name, Codecs: codecBytes([]Codec{c.codec})}

	n.mu.Lock()
	helloSeq := n.record(Event{Kind: EvHello, Peer: hello.Name, WireSeq: hello.Seq,
		CausePeer: hello.TraceNode, CauseSeq: hello.TraceSeq})
	ack.TraceNode, ack.TraceSeq = n.cfg.Name, helloSeq
	var sess *childSession
	var oldConn *conn
	for _, s := range n.children {
		if s.name == hello.Name && s.gone && !s.left {
			sess = s
			break
		}
	}
	if sess != nil {
		oldConn = sess.c
		sess.c = c
		sess.gone = false
		sess.goneAt = time.Time{}
		ack.Revived = true
		n.record(Event{Kind: EvRevive, Peer: hello.Name})
		if tr := sess.active; tr != nil {
			off, ok := offered[tr.task.ID]
			switch {
			case ok && off >= 0 && off <= len(tr.task.Payload):
				// Resume mid-payload from what the child confirmed.
				tr.offset = off
				tr.acked = off
				tr.sentAll = false
				tr.resumed = true
				ack.Accepted = append(ack.Accepted, tr.task.ID)
				n.stats.Resumed++
			case covered[tr.task.ID]:
				// The child holds the complete payload — only the final
				// chunk ack was lost in the disconnect. Delivery stands:
				// the task becomes the child's responsibility and its
				// result is awaited, with no duplicate retransmission.
				sess.outstanding[tr.task.ID] = tr.task
				sess.active = nil
				// The handshake is an implied final chunk ack.
				n.record(Event{Kind: EvChunkAck, Task: tr.task.ID, Peer: hello.Name,
					Off: len(tr.task.Payload), Value: 1})
			default:
				// No partial state offered and the subtree does not hold
				// the task: retransmit from the top. A fully written
				// transfer whose final chunk was lost in the disconnect
				// offers nothing, so re-delivery is the only safe choice.
				// At-least-once, never zero.
				tr.offset = 0
				tr.acked = 0
				tr.sentAll = false
				tr.resumed = true
			}
		}
		// Revive-time reconciliation: requeue every outstanding task the
		// hello no longer covers — not held in the subtree, not resuming,
		// no unacked result to replay. It was lost with the old
		// connection, and waiting for a grace expiry that perpetual
		// revival keeps pushing out would stall the run forever.
		var lost []uint64
		for id := range sess.outstanding {
			if !covered[id] {
				lost = append(lost, id)
			}
		}
		if len(lost) > 0 {
			sort.Slice(lost, func(i, j int) bool { return lost[i] < lost[j] })
			for _, id := range lost {
				t := sess.outstanding[id]
				n.buffer = append(n.buffer, t)
				delete(sess.outstanding, id)
				n.bumpApp(t.App, func(s *AppStats) { s.Requeued++ })
				n.record(Event{Kind: EvRequeue, Task: id, Peer: hello.Name})
			}
			n.stats.Requeued += int64(len(lost))
			n.stats.RequeuedOnRevive += int64(len(lost))
			if q := len(n.buffer); q > n.stats.MaxQueued {
				n.stats.MaxQueued = q
			}
			n.wakeLocked()
		}
	} else {
		sess = &childSession{name: hello.Name, c: c, outstanding: make(map[uint64]Task)}
		n.children = append(n.children, sess)
	}
	n.mu.Unlock()
	if oldConn != nil {
		_ = oldConn.close()
	}

	if err := c.sendHandshake(ack); err != nil {
		_ = c.close()
		n.markChildGone(sess, c)
		return
	}
	n.goTracked(func() { n.childLoop(sess, c) })
	n.superviseConn(c)
	n.wake(n.kick)
}

// childLoop reads one child's requests, acks, and relayed results. It is
// bound to the connection it was started with: once the session is
// revived on a newer connection, a stale loop may no longer mutate it.
func (n *Node) childLoop(s *childSession, c *conn) {
	for {
		m, err := c.recv()
		if err != nil {
			n.markChildGone(s, c)
			return
		}
		switch m.Kind {
		case kindRequest:
			n.mu.Lock()
			if s.c == c {
				s.pending += m.N
				// Recorded in the same critical section as the pending
				// bump, so per-node event order matches the order the
				// send port observes serviceability.
				n.record(Event{Kind: EvRequestServed, Peer: s.name, Value: int64(m.N),
					WireSeq: m.Seq, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			}
			n.mu.Unlock()
			n.wake(n.kick)
		case kindResult:
			// A result is expected exactly while its task is outstanding;
			// anything else is a replay of one already relayed (or of a
			// task reclaimed and re-dispatched elsewhere) — ack it so the
			// child retires its ledger entry, but do not relay it again.
			r := Result{ID: m.Task, Output: m.Output, Origin: m.Origin, App: m.App}
			n.mu.Lock()
			recvSeq := n.record(Event{Kind: EvResultRecv, Task: m.Task, Origin: m.Origin,
				Peer: s.name, WireSeq: m.Seq, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			_, expected := s.outstanding[m.Task]
			if expected {
				delete(s.outstanding, m.Task)
				if !n.root {
					// Commit to this node's own ledger atomically with the
					// outstanding delete, so a concurrent reconnect hello
					// never catches the task accounted nowhere.
					n.enqueueResultLocked(r)
				}
			} else {
				n.stats.ResultsDeduped++
				n.bumpApp(m.App, func(s *AppStats) { s.Deduped++ })
				n.record(Event{Kind: EvResultDedupe, Task: m.Task, Origin: m.Origin, Peer: s.name})
			}
			n.mu.Unlock()
			if expected {
				if n.root {
					n.collectRoot(r)
				} else {
					n.wake(n.resKick)
				}
			}
			if err := c.send(&message{Kind: kindResultAck, Task: m.Task, Origin: m.Origin,
				TraceNode: n.cfg.Name, TraceSeq: recvSeq}); err != nil {
				// The read loop owning c fails on the same dead link and
				// recovers; the child replays the unacked result then.
				n.countSendError()
			}
		case kindChunkAck:
			n.mu.Lock()
			if s.c == c && s.active != nil && s.active.task.ID == m.Task {
				s.active.acked = m.Offset
				if m.Last {
					// Delivery confirmed end to end: the task is the
					// child's responsibility until its result returns.
					n.record(Event{Kind: EvChunkAck, Task: m.Task, Peer: s.name, Off: m.Offset,
						Value: 1, WireSeq: m.Seq, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
					s.outstanding[m.Task] = s.active.task
					s.active = nil
					n.wakeLocked()
				}
			}
			n.mu.Unlock()
		case kindGoodbye:
			n.mu.Lock()
			if s.c == c {
				s.gone = true
				s.left = true
				n.record(Event{Kind: EvGoodbye, Peer: s.name, WireSeq: m.Seq,
					CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			}
			n.mu.Unlock()
			n.wake(n.kick)
		case kindHeartbeat:
			// Receipt alone refreshed the link's proof-of-life clock.
		default:
			// kindHello arrives only through the accept handshake, and
			// kindChunk, kindHelloAck, kindShutdown, and kindResultAck flow
			// parent→child, never up a child link. Anything here is a peer
			// protocol bug; receipt already counted as proof of life, and
			// dropping the frame is the safe response.
		}
	}
}

// markChildGone flags a child's link dead — unless the session has
// already been revived on a newer connection — and schedules the reclaim
// wakeup for when the reconnect grace window expires.
func (n *Node) markChildGone(s *childSession, c *conn) {
	n.mu.Lock()
	if s.c != c || s.gone {
		n.mu.Unlock()
		return
	}
	s.gone = true
	s.goneAt = time.Now()
	grace := n.cfg.ReconnectGrace
	n.record(Event{Kind: EvSever, Peer: s.name})
	n.mu.Unlock()
	_ = c.close()
	if grace > 0 {
		time.AfterFunc(grace+10*time.Millisecond, func() { n.wake(n.kick) })
	}
	n.wake(n.kick)
}

// connectParent dials the parent, offers to resume partially received
// transfers, re-syncs the request ledger from the hello-ack, replays
// results computed while disconnected, and installs the new link.
func (n *Node) connectParent() error {
	raw, err := net.Dial("tcp", n.cfg.Parent)
	if err != nil {
		return fmt.Errorf("live: dial parent: %w", err)
	}
	c := newConn(raw, "parent", n.cfg.Faults, n.cfg.WriteTimeout, &n.wireSeq, &n.wireCtr)

	n.mu.Lock()
	resume := make([]ResumePoint, 0, len(n.inflight))
	for id, t := range n.inflight {
		resume = append(resume, ResumePoint{Task: id, Offset: t.got})
	}
	holding := n.holdingLocked()
	n.mu.Unlock()
	sort.Slice(resume, func(i, j int) bool { return resume[i].Task < resume[j].Task })

	offered := n.offeredWireCodecs()
	helloWire := c.nextSeq()
	helloSeq := n.record(Event{Kind: EvHello, Peer: "parent", WireSeq: helloWire})
	if err := c.sendHandshake(&message{Kind: kindHello, Name: n.cfg.Name, Resume: resume, Holding: holding,
		Codecs: codecBytes(offered), Seq: helloWire, TraceNode: n.cfg.Name, TraceSeq: helloSeq}); err != nil {
		_ = c.close()
		return fmt.Errorf("live: hello: %w", err)
	}
	ack, err := c.recvTimeout(n.cfg.HandshakeTimeout)
	if err != nil {
		_ = c.close()
		return fmt.Errorf("live: hello ack: %w", err)
	}
	if ack.Kind != kindHelloAck {
		_ = c.close()
		return fmt.Errorf("live: expected hello ack, got frame kind %d", ack.Kind)
	}
	if len(ack.Codecs) > 0 {
		// The parent answered with its pick; a pick we never offered means
		// the peers disagree on the protocol and the link must not come up
		// half-speaking it.
		chosen := negotiateCodec(offered, ack.Codecs)
		if chosen == CodecGob {
			_ = c.close()
			return fmt.Errorf("live: parent chose unsupported wire codec %v", ack.Codecs)
		}
		c.codec = chosen
	}
	if ack.Name != "" {
		// Written before the conn is published; recorder events on this
		// link can now carry the parent's real name.
		c.peerName = ack.Name
	}
	revived := int64(0)
	if ack.Revived {
		revived = 1
	}
	n.record(Event{Kind: EvHelloAck, Peer: c.label(), Value: revived, WireSeq: ack.Seq,
		CausePeer: ack.TraceNode, CauseSeq: ack.TraceSeq})
	accepted := make(map[uint64]bool, len(ack.Accepted))
	for _, id := range ack.Accepted {
		accepted[id] = true
	}

	n.mu.Lock()
	n.parentName = ack.Name
	// Partial transfers the parent will not resume were reclaimed on its
	// side; drop their assembly state so a fresh stream starts clean.
	for id := range n.inflight {
		if !accepted[id] {
			delete(n.inflight, id)
		}
	}
	var reqN int
	if ack.Revived {
		// The parent kept the session's request ledger; only requests
		// that failed to send while disconnected are owed.
		reqN = n.reqDeficit
	} else {
		// Fresh session: one request per free buffer slot, exactly the
		// paper's startup rule. Slots filled by buffered tasks or by
		// transfers the parent agreed to resume are spoken for.
		reqN = n.cfg.Buffers - len(n.buffer) - len(ack.Accepted)
	}
	if reqN < 0 {
		reqN = 0
	}
	n.reqDeficit = 0
	if reqN > 0 {
		n.stats.Requests += int64(reqN)
	}
	n.parent = c
	n.mu.Unlock()

	if reqN > 0 {
		reqSeq := n.record(Event{Kind: EvRequestSent, Peer: c.label(), Value: int64(reqN)})
		if err := c.send(&message{Kind: kindRequest, N: reqN,
			TraceNode: n.cfg.Name, TraceSeq: reqSeq}); err != nil {
			// The link died instantly; the supervisor will notice and
			// retry, and the requests are owed again.
			n.mu.Lock()
			n.reqDeficit += reqN
			n.stats.Requests -= int64(reqN)
			n.mu.Unlock()
		}
	}
	// Wake the flusher: every ledger entry — results computed while
	// partitioned and ones written to the old conn but never acked —
	// replays on the new link, in arrival order.
	n.wake(n.resKick)
	n.superviseConn(c)
	return nil
}

// holdingLocked enumerates every task ID this node's subtree still
// accounts for: buffered, on the compute port, handed to the send port,
// delivered into a child subtree without a returned result, or computed
// with the result awaiting an ack. The reconnect hello carries the set
// so the parent can requeue outstanding tasks the subtree lost
// (revive-time reconciliation). Partially received transfers are
// conveyed separately as Resume points. Callers hold n.mu.
func (n *Node) holdingLocked() []uint64 {
	set := make(map[uint64]bool, len(n.buffer)+len(n.unacked)+len(n.computing))
	for _, t := range n.buffer {
		set[t.ID] = true
	}
	for id := range n.computing {
		set[id] = true
	}
	for _, s := range n.children {
		if s.active != nil {
			set[s.active.task.ID] = true
		}
		for id := range s.outstanding {
			set[id] = true
		}
	}
	for _, e := range n.unacked {
		set[e.res.ID] = true
	}
	ids := make([]uint64, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// parentSupervisor owns the uplink: it runs the read loop and, when the
// link dies without a shutdown, re-dials with capped exponential backoff.
// Only exhausting every attempt makes the loss fatal.
func (n *Node) parentSupervisor() {
	defer n.wg.Done()
	for {
		n.mu.Lock()
		c := n.parent
		n.mu.Unlock()
		if c == nil {
			return
		}
		shutdown := n.readParent(c)
		_ = c.close()
		if shutdown {
			// Close waits on this goroutine's WaitGroup entry, so it
			// must run detached.
			//lint:bwvet-ignore deliberately detached: Close blocks on this goroutine's own WaitGroup entry and is idempotent
			go n.Close()
			return
		}
		if n.isClosed() {
			return
		}
		n.mu.Lock()
		n.parent = nil // queue outbound work until the link is back
		n.record(Event{Kind: EvSever, Peer: c.label()})
		n.mu.Unlock()
		if !n.reconnect() {
			if !n.isClosed() {
				n.fail(fmt.Errorf("live: parent link lost; reconnect failed after %d attempts", n.cfg.ReconnectAttempts))
			}
			return
		}
	}
}

// reconnect re-dials the parent under the backoff schedule; it reports
// whether a new link was established.
func (n *Node) reconnect() bool {
	for attempt := 1; attempt <= n.cfg.ReconnectAttempts; attempt++ {
		if !n.cfg.sleep(backoffDelay(attempt, n.cfg.ReconnectBase, n.cfg.ReconnectCap), n.done) {
			return false // node closed mid-wait
		}
		if err := n.connectParent(); err == nil {
			n.mu.Lock()
			n.stats.Reconnects++
			n.mu.Unlock()
			n.record(Event{Kind: EvReconnect, Peer: n.parentLabel(), Value: int64(attempt)})
			return true
		}
	}
	return false
}

// readParent consumes frames from the current uplink until it fails or
// orders a shutdown; the supervisor decides what happens next.
func (n *Node) readParent(c *conn) (shutdown bool) {
	for {
		m, err := c.recv()
		if err != nil {
			return false
		}
		switch m.Kind {
		case kindChunk:
			t, ok := n.inflightFor(m.Task)
			if !ok {
				continue
			}
			if m.TraceSeq != t.segment || m.TraceNode != t.segmentFrom {
				// First chunk of a new transfer segment (fresh dispatch or
				// a resume after preemption/reconnect on the parent side).
				t.segment, t.segmentFrom = m.TraceSeq, m.TraceNode
				n.record(Event{Kind: EvChunkRecv, Task: m.Task, Peer: c.label(), Off: m.Offset,
					WireSeq: m.Seq, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			}
			complete, err := t.feed(m)
			if err != nil {
				n.fail(err)
				return false
			}
			var recvSeq uint64
			if complete {
				recvSeq = n.record(Event{Kind: EvTaskReceived, Task: m.Task, Peer: c.label(),
					Off: t.got, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			}
			// Ack every chunk: after a disconnect the parent resumes
			// from this offset, and on the final ack responsibility for
			// the task transfers to this subtree.
			if err := c.send(&message{Kind: kindChunkAck, Task: m.Task, Offset: t.got, Last: complete,
				TraceNode: n.cfg.Name, TraceSeq: recvSeq}); err != nil {
				// A lost chunk ack makes the parent resume from the last
				// acked offset after the reconnect; just count it.
				n.countSendError()
			}
			if complete {
				n.mu.Lock()
				delete(n.inflight, m.Task)
				n.buffer = append(n.buffer, Task{ID: m.Task, Payload: t.payload, App: t.app})
				n.stats.Received++
				n.bumpApp(t.app, func(s *AppStats) { s.Received++ })
				if q := len(n.buffer); q > n.stats.MaxQueued {
					n.stats.MaxQueued = q
				}
				n.mu.Unlock()
				n.wake(n.comp)
				n.wake(n.kick)
			}
		case kindResultAck:
			n.mu.Lock()
			n.retireResultLocked(m.Task, m.Origin)
			n.record(Event{Kind: EvResultAck, Task: m.Task, Origin: m.Origin, Peer: c.label(),
				WireSeq: m.Seq, CausePeer: m.TraceNode, CauseSeq: m.TraceSeq})
			n.mu.Unlock()
			n.wake(n.resKick) // the retry timer may now rest or re-aim
		case kindShutdown:
			n.record(Event{Kind: EvShutdown, Peer: c.label(), WireSeq: m.Seq})
			return true
		case kindHeartbeat, kindHelloAck:
			// Heartbeats only refresh the proof-of-life clock; a stray
			// hello-ack after the handshake is ignored.
		default:
			// kindHello, kindRequest, kindResult, kindChunkAck, and
			// kindGoodbye flow child→parent, never down the uplink. A frame
			// of a kind this build does not know (a newer peer) lands here
			// too; dropping it keeps the link alive rather than desyncing
			// the stream.
		}
	}
}

func (n *Node) inflightFor(id uint64) (*inTransfer, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, false
	}
	t, ok := n.inflight[id]
	if !ok {
		t = &inTransfer{id: id}
		n.inflight[id] = t
	}
	return t, true
}

// deliverResult hands a result to the local collector (root) or commits
// it to the unacked-result ledger for the flusher to send. Every uplink
// result routes through the ledger — there is no direct send path — so a
// frame lost to a just-severed conn (the old read-parent-then-send
// TOCTOU window), a scripted drop, or a disconnect is always replayed:
// only the parent's ack retires an entry.
func (n *Node) deliverResult(r Result) {
	if n.root {
		n.collectRoot(r)
		return
	}
	n.mu.Lock()
	n.enqueueResultLocked(r)
	n.mu.Unlock()
	n.wake(n.resKick)
}

// collectRoot hands a result to the root's Run loop.
func (n *Node) collectRoot(r Result) {
	n.mu.Lock()
	n.bumpApp(r.App, func(s *AppStats) { s.Collected++ })
	n.mu.Unlock()
	n.record(Event{Kind: EvResultCollect, Task: r.ID, Origin: r.Origin})
	select {
	case n.results <- r:
	case <-n.done:
	}
}

// enqueueResultLocked appends a result to the unacked ledger unless an
// entry with the same task ID + origin is already pending (a duplicate
// from a re-delivered task; it would be deduplicated upstream anyway).
// Callers hold n.mu.
func (n *Node) enqueueResultLocked(r Result) {
	for _, e := range n.unacked {
		if e.res.ID == r.ID && e.res.Origin == r.Origin {
			n.stats.ResultsDeduped++
			return
		}
	}
	n.unacked = append(n.unacked, &resultEntry{res: r})
}

// resultFlusher is the sole sender of result frames on the uplink. It
// walks the ledger in arrival order, (re)sending every entry not yet
// written to the current parent conn — which after a reconnect replays
// all outstanding results — and, on a live link, retransmitting entries
// unacked past the ResultRetry deadline. Single-sender FIFO means replay
// order always matches arrival order, with no re-append races.
//
// Sends are pipelined: every due entry goes out in one batched write
// (one syscall on a binary conn) instead of one frame in flight at a
// time; acks stream back asynchronously and retire entries as they
// arrive. An entry acked between the snapshot and the write is sent
// redundantly and deduplicated upstream — exactly-once is preserved by
// the parent's dedupe, not by the flusher's timing.
func (n *Node) resultFlusher() {
	defer n.wg.Done()
	var frames []*message
	var msgs []message
	for {
		batch, c, replays := n.dueResultBatch()
		if len(batch) == 0 {
			var timerC <-chan time.Time
			var timer *time.Timer
			if d := n.resultRetryWait(); d > 0 {
				timer = time.NewTimer(d)
				timerC = timer.C
			}
			select {
			case <-n.resKick:
			case <-timerC:
			case <-n.done:
				if timer != nil {
					timer.Stop()
				}
				return
			}
			if timer != nil {
				timer.Stop()
			}
			continue
		}
		if cap(msgs) < len(batch) {
			msgs = make([]message, len(batch))
		}
		msgs = msgs[:len(batch)]
		frames = frames[:0]
		for i, e := range batch {
			kind := EvResultSend
			if e.sentOn != nil {
				kind = EvResultReplay
			}
			wire := c.nextSeq()
			sendSeq := n.record(Event{Kind: kind, Task: e.res.ID, Origin: e.res.Origin,
				Peer: c.label(), WireSeq: wire})
			msgs[i] = message{Kind: kindResult, Task: e.res.ID, Output: e.res.Output, Origin: e.res.Origin,
				App: e.res.App, Seq: wire, TraceNode: n.cfg.Name, TraceSeq: sendSeq}
			frames = append(frames, &msgs[i])
		}
		accepted, err := c.sendBatch(frames)
		now := time.Now()
		n.mu.Lock()
		for _, e := range batch[:accepted] {
			e.sentOn = c
			e.sentAt = now
		}
		n.stats.ResultsReplayed += int64(replays)
		n.mu.Unlock()
		if err != nil && !n.isClosed() {
			// Dead uplink: the supervisor will reconnect and wake us; the
			// unwritten entries stay in the ledger untouched.
			select {
			case <-n.resKick:
			case <-n.done:
				return
			}
		}
		if n.isClosed() {
			return
		}
	}
}

// maxResultBatch caps how many ledger entries one flusher round writes;
// a longer backlog simply takes several rounds back to back.
const maxResultBatch = 128

// dueResultBatch snapshots, in ledger (arrival) order, every entry due
// on the wire: entries never written to the current uplink (first send,
// or replay after a reconnect) and — when retransmission is enabled —
// entries unacked past the retry deadline. replays counts the entries
// being retransmitted rather than first-sent.
func (n *Node) dueResultBatch() (batch []*resultEntry, c *conn, replays int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c = n.parent
	if c == nil || len(n.unacked) == 0 {
		return nil, nil, 0
	}
	retry := n.cfg.ResultRetry
	for _, e := range n.unacked {
		due := e.sentOn != c
		if !due && retry > 0 && time.Since(e.sentAt) >= retry {
			due = true
		}
		if !due {
			continue
		}
		if e.sentOn != nil {
			replays++
		}
		batch = append(batch, e)
		if len(batch) == maxResultBatch {
			break
		}
	}
	return batch, c, replays
}

// resultRetryWait reports how long the flusher may sleep before the
// earliest-sent unacked entry hits its retransmit deadline; 0 means no
// timer is needed (retry disabled, link down, or ledger empty).
func (n *Node) resultRetryWait() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	retry := n.cfg.ResultRetry
	if retry <= 0 || n.parent == nil || len(n.unacked) == 0 {
		return 0
	}
	earliest := time.Duration(-1)
	for _, e := range n.unacked {
		if e.sentAt.IsZero() {
			continue
		}
		if d := retry - time.Since(e.sentAt); earliest < 0 || d < earliest {
			earliest = d
		}
	}
	if earliest < 0 {
		return 0
	}
	if earliest < time.Millisecond {
		earliest = time.Millisecond
	}
	return earliest
}

// retireResultLocked removes the ledger entry matching an ack; callers
// hold n.mu.
func (n *Node) retireResultLocked(task uint64, origin string) {
	for i, e := range n.unacked {
		if e.res.ID == task && e.res.Origin == origin {
			n.unacked = append(n.unacked[:i], n.unacked[i+1:]...)
			n.stats.ResultAcks++
			return
		}
	}
}

// requestMore sends task requests upstream; while the parent link is down
// they are owed and re-sent after the reconnect handshake. Callers
// account Stats.Requests themselves. app tags the request with the
// application whose freed buffer fired it — informational, exactly like
// the engine: requests grant anonymous capacity, the parent's own
// weighted round-robin decides whose task fills it.
func (n *Node) requestMore(k int, app string) {
	n.mu.Lock()
	c := n.parent
	if c == nil {
		n.reqDeficit += k
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	reqSeq := n.record(Event{Kind: EvRequestSent, Peer: c.label(), Value: int64(k)})
	if err := c.send(&message{Kind: kindRequest, N: k, App: app,
		TraceNode: n.cfg.Name, TraceSeq: reqSeq}); err != nil && !n.isClosed() {
		n.mu.Lock()
		n.reqDeficit += k
		n.mu.Unlock()
	}
}

// takeTask pops one buffered task, firing the request-on-free rule.
func (n *Node) takeTask() (Task, bool) {
	n.mu.Lock()
	if len(n.buffer) == 0 {
		n.mu.Unlock()
		return Task{}, false
	}
	t := n.popTaskLocked()
	n.computing[t.ID] = true // accounted until the result enters the ledger
	if !n.root {
		n.stats.Requests++
	}
	n.mu.Unlock()
	if !n.root {
		n.requestMore(1, t.App)
	}
	return t, true
}

// computeLoop is the node's compute port: one task at a time.
func (n *Node) computeLoop() {
	defer n.wg.Done()
	for {
		t, ok := n.takeTask()
		if !ok {
			select {
			case <-n.comp:
				continue
			case <-n.done:
				return
			}
		}
		n.record(Event{Kind: EvComputeStart, Task: t.ID})
		started := time.Now()
		out, err := n.cfg.Compute(t)
		if err != nil {
			n.fail(fmt.Errorf("live: compute task %d: %w", t.ID, err))
			return
		}
		n.record(Event{Kind: EvComputeDone, Task: t.ID, Origin: n.cfg.Name,
			Value: time.Since(started).Nanoseconds()})
		n.mu.Lock()
		n.stats.Computed++
		n.bumpApp(t.App, func(s *AppStats) { s.Computed++ })
		n.mu.Unlock()
		n.deliverResult(Result{ID: t.ID, Output: out, Origin: n.cfg.Name, App: t.App})
		// Cleared only after deliverResult committed the result to the
		// ledger, so a reconnect hello always accounts for the task.
		n.mu.Lock()
		delete(n.computing, t.ID)
		n.mu.Unlock()
		if n.isClosed() {
			return
		}
	}
}
