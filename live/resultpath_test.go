package live

// Tests for exactly-once result delivery: the unacked-result ledger and
// its ack-retire/replay/retry machinery, parent-side dedupe, and
// revive-time reconciliation. The headline scenarios pin the ROADMAP
// stall — a result frame lost in a sever window used to hang Run forever
// because the perpetually revived session never hit the grace-expiry
// requeue.

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"testing"
	"time"
)

// assertExactlyOnce checks a completed run delivered every task ID in
// [1, n] exactly once.
func assertExactlyOnce(t *testing.T, results []Result, n int) {
	t.Helper()
	if len(results) != n {
		t.Fatalf("results = %d, want %d", len(results), n)
	}
	seen := make(map[uint64]bool, n)
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("task %d delivered twice", r.ID)
		}
		seen[r.ID] = true
	}
	for id := uint64(1); id <= uint64(n); id++ {
		if !seen[id] {
			t.Fatalf("task %d never delivered", id)
		}
	}
}

// TestResultDropInSeverWindowCompletes is the acceptance scenario for the
// acked result path: one result frame is silently dropped (the send
// "succeeds", so before the ledger the result was gone for good) and a
// later result send severs the uplink. Retransmission is disabled, so
// only the reconnect replay can recover the dropped frame — the run must
// complete with every result exactly once instead of hanging.
func TestResultDropInSeverWindowCompletes(t *testing.T) {
	const tasks = 30
	plan := NewFaultPlan(
		FaultRule{Link: "parent", Dir: FaultSend, Kind: FrameResult, After: 2, Op: FaultDrop},
		FaultRule{Link: "parent", Dir: FaultSend, Kind: FrameResult, After: 4, Op: FaultSever},
	)
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(20 * time.Millisecond),
		ReconnectGrace: 10 * time.Second, // the session must revive, not reclaim
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:       echoCompute(2 * time.Millisecond),
		Faults:        plan,
		ReconnectBase: 20 * time.Millisecond, ReconnectCap: 100 * time.Millisecond, ReconnectAttempts: 20,
		ResultRetry: -1, // pin the replay path: no retry timer to the rescue
	})

	results, err := root.RunTimeout(makeTasks(tasks, 512), 60*time.Second)
	if err != nil {
		t.Fatalf("Run across the dropped result: %v", err)
	}
	assertExactlyOnce(t, results, tasks)
	if plan.Pending() != 0 {
		t.Fatalf("the scripted faults never fired: %d pending", plan.Pending())
	}
	// The dropped frame was "successfully" written, so its redelivery on
	// the new conn is a replay (the severed frame never made it onto the
	// wire and re-sends as a first transmission).
	if got := w.Stats().ResultsReplayed; got == 0 {
		t.Fatalf("the dropped result was never replayed")
	}
	if got := w.Stats().Reconnects; got == 0 {
		t.Fatalf("worker never reconnected")
	}
}

// TestRoadmapStallRepro pins the exact configuration the ROADMAP stall
// was reproduced under: asymmetric heartbeats (root supervising at
// 100ms, children at the 1s default) with the uplink severed while the
// child is sending — and, after the first reconnect, replaying —
// results. Before the acked ledger, a result frame swallowed by a sever
// window was never requeued (the session kept reviving, so grace expiry
// never fired) and Run hung forever.
func TestRoadmapStallRepro(t *testing.T) {
	const tasks = 40
	plan := NewFaultPlan(
		FaultRule{Link: "parent", Dir: FaultSend, Kind: FrameResult, After: 3, Op: FaultSever},
		FaultRule{Link: "parent", Dir: FaultSend, Kind: FrameResult, After: 6, Op: FaultSever},
	)
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:           echoCompute(15 * time.Millisecond),
		HeartbeatInterval: 100 * time.Millisecond, // the ROADMAP repro's aggressive root
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute: echoCompute(5 * time.Millisecond),
		// HeartbeatInterval left zero: the 1s default, per the repro.
		Faults:        plan,
		ReconnectBase: 20 * time.Millisecond, ReconnectCap: 100 * time.Millisecond, ReconnectAttempts: 20,
	})

	results, err := root.RunTimeout(makeTasks(tasks, 256), 60*time.Second)
	if err != nil {
		t.Fatalf("Run across the sever-while-replaying window: %v", err)
	}
	assertExactlyOnce(t, results, tasks)
	if plan.Pending() != 0 {
		t.Fatalf("the scripted severs never fired: %d pending", plan.Pending())
	}
	ws := w.Stats()
	if ws.Reconnects == 0 {
		t.Fatalf("worker never reconnected")
	}
	if ws.ResultsReplayed == 0 {
		t.Fatalf("no results replayed across the severs: %+v", ws)
	}
}

// TestResultRetryRecoversPureDrop: a result frame lost on a link that
// stays up (no sever, so no reconnect replay) must be retransmitted by
// the retry timer. Before the ledger this was an unconditional hang.
func TestResultRetryRecoversPureDrop(t *testing.T) {
	const tasks = 20
	plan := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultSend, Kind: FrameResult, After: 3, Op: FaultDrop,
	})
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute: echoCompute(10 * time.Millisecond),
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:     echoCompute(2 * time.Millisecond),
		Faults:      plan,
		ResultRetry: 50 * time.Millisecond,
	})

	results, err := root.RunTimeout(makeTasks(tasks, 256), 60*time.Second)
	if err != nil {
		t.Fatalf("Run across the dropped result: %v", err)
	}
	assertExactlyOnce(t, results, tasks)
	if plan.Pending() != 0 {
		t.Fatalf("the scripted drop never fired")
	}
	if got := w.Stats().ResultsReplayed; got == 0 {
		t.Fatalf("the dropped result was never retransmitted")
	}
	if got := w.Stats().Reconnects; got != 0 {
		t.Fatalf("retry path must not need a reconnect, saw %d", got)
	}
}

// TestResultAcksRetireLedger: on a healthy link every delivered result
// is acked and the ledger drains to empty — and a clean run dedupes
// nothing.
func TestResultAcksRetireLedger(t *testing.T) {
	const tasks = 20
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(5 * time.Millisecond),
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 2,
		Compute: echoCompute(time.Millisecond),
	})
	results, err := root.RunTimeout(makeTasks(tasks, 128), 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertExactlyOnce(t, results, tasks)

	// Acks race Run's completion; the ledger must drain shortly after.
	deadline := time.Now().Add(5 * time.Second)
	for {
		w.mu.Lock()
		left := len(w.unacked)
		w.mu.Unlock()
		if left == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ledger never drained: %d entries unacked", left)
		}
		time.Sleep(5 * time.Millisecond)
	}
	ws := w.Stats()
	if ws.ResultAcks != ws.Computed || ws.Computed == 0 {
		t.Fatalf("ResultAcks = %d, want one per computed task (%d)", ws.ResultAcks, ws.Computed)
	}
	if got := root.Stats().ResultsDeduped; got != 0 {
		t.Fatalf("clean run deduped %d results", got)
	}
}

// TestReviveReconciliationRequeues drives a scripted child over raw gob:
// it takes one task end to end (final chunk acked, so the root holds it
// outstanding), dies without computing it, and revives within the grace
// window holding nothing. The root must requeue the task at revive time
// — the hello covers nothing — and account it in both Requeued and
// RequeuedOnRevive exactly once, with no later grace-expiry double
// count.
func TestReviveReconciliationRequeues(t *testing.T) {
	const tasks = 8
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:           echoCompute(25 * time.Millisecond),
		HeartbeatInterval: -1, // the scripted child sends no heartbeats
	})

	type taken struct {
		id  uint64
		err error
	}
	tookc := make(chan taken, 1)
	go func() {
		raw, err := net.Dial("tcp", root.Addr())
		if err != nil {
			tookc <- taken{err: err}
			return
		}
		defer raw.Close()
		enc, dec := gob.NewEncoder(raw), gob.NewDecoder(raw)
		if err := enc.Encode(&message{Kind: kindHello, Name: "fake"}); err != nil {
			tookc <- taken{err: err}
			return
		}
		var ack message
		if err := dec.Decode(&ack); err != nil {
			tookc <- taken{err: err}
			return
		}
		if err := enc.Encode(&message{Kind: kindRequest, N: 1}); err != nil {
			tookc <- taken{err: err}
			return
		}
		for {
			var m message
			if err := dec.Decode(&m); err != nil {
				tookc <- taken{err: err}
				return
			}
			if m.Kind != kindChunk {
				continue
			}
			if err := enc.Encode(&message{Kind: kindChunkAck, Task: m.Task, Offset: m.Offset + len(m.Data), Last: m.Last}); err != nil {
				tookc <- taken{err: err}
				return
			}
			if m.Last {
				tookc <- taken{id: m.Task}
				return // the deferred close severs the link with the task swallowed
			}
		}
	}()

	resc := make(chan []Result, 1)
	errc := make(chan error, 1)
	go func() {
		results, err := root.RunTimeout(makeTasks(tasks, 128), 60*time.Second)
		resc <- results
		errc <- err
	}()

	took := <-tookc
	if took.err != nil {
		t.Fatalf("scripted child: %v", took.err)
	}

	// Wait for the root to notice the dead link, so the reconnect below
	// revives the session instead of opening a second one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		root.mu.Lock()
		gone := false
		for _, s := range root.children {
			if s.name == "fake" && s.gone {
				gone = true
			}
		}
		root.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("root never marked the scripted child gone")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Revive with an empty hello: no Resume, no Holding — the swallowed
	// task is accounted nowhere and must be requeued right now.
	raw2, err := net.Dial("tcp", root.Addr())
	if err != nil {
		t.Fatalf("re-dial: %v", err)
	}
	defer raw2.Close()
	enc2, dec2 := gob.NewEncoder(raw2), gob.NewDecoder(raw2)
	if err := enc2.Encode(&message{Kind: kindHello, Name: "fake"}); err != nil {
		t.Fatalf("revive hello: %v", err)
	}
	var ack2 message
	if err := dec2.Decode(&ack2); err != nil {
		t.Fatalf("revive hello ack: %v", err)
	}
	if !ack2.Revived {
		t.Fatalf("session was not revived")
	}
	go func() { // drain so the root's writes never block
		for {
			var m message
			if dec2.Decode(&m) != nil {
				return
			}
		}
	}()

	results := <-resc
	if err := <-errc; err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertExactlyOnce(t, results, tasks)

	s := root.Stats()
	if s.RequeuedOnRevive != 1 {
		t.Fatalf("RequeuedOnRevive = %d, want 1 (the swallowed task %d)", s.RequeuedOnRevive, took.id)
	}
	if s.Requeued != 1 {
		t.Fatalf("Requeued = %d, want 1 — revive-time reconciliation must not double-count with grace expiry", s.Requeued)
	}
}

// TestResultLedgerOrderAndRetire unit-tests the ledger scheduler: after
// a reconnect, entries written to the old conn and entries queued while
// disconnected are sent strictly in arrival order (the old flush used to
// re-append an unflushed tail AFTER concurrently queued results,
// breaking FIFO), and acks retire exactly the keyed entry.
func TestResultLedgerOrderAndRetire(t *testing.T) {
	n := &Node{}
	oldC, newC := &conn{}, &conn{}
	n.parent = newC
	mk := func(id uint64, sent *conn) *resultEntry {
		e := &resultEntry{res: Result{ID: id, Origin: "w"}, sentOn: sent}
		if sent != nil {
			e.sentAt = time.Now()
		}
		return e
	}
	// Arrival order: 1 (sent on the old link), 2 (queued while down),
	// 3 (sent on the old link) — a replay interleaved with fresh sends.
	n.unacked = []*resultEntry{mk(1, oldC), mk(2, nil), mk(3, oldC)}

	batch, c, replays := n.dueResultBatch()
	if c != newC {
		t.Fatalf("batch scheduled on the wrong conn")
	}
	wantOrder := []uint64{1, 2, 3}
	if len(batch) != len(wantOrder) {
		t.Fatalf("batch holds %d entries, want %d", len(batch), len(wantOrder))
	}
	for i, want := range wantOrder {
		if batch[i].res.ID != want {
			t.Fatalf("step %d: scheduled task %d, want %d", i, batch[i].res.ID, want)
		}
	}
	if replays != 2 {
		t.Fatalf("replays = %d, want 2 (entries written to the old conn)", replays)
	}
	for _, e := range batch {
		e.sentOn = newC
		e.sentAt = time.Now()
	}
	if again, _, _ := n.dueResultBatch(); len(again) != 0 {
		t.Fatalf("entry %d scheduled with everything sent and retry disabled", again[0].res.ID)
	}

	n.retireResultLocked(2, "x") // wrong origin: not our entry
	if len(n.unacked) != 3 {
		t.Fatalf("mismatched origin retired an entry")
	}
	n.retireResultLocked(2, "w")
	if len(n.unacked) != 2 || n.stats.ResultAcks != 1 {
		t.Fatalf("ack did not retire the keyed entry: %d left, %d acks", len(n.unacked), n.stats.ResultAcks)
	}
	for _, e := range n.unacked {
		if e.res.ID == 2 {
			t.Fatalf("retired entry still in the ledger")
		}
	}
}

// TestMidStreamReconnectSwitchesCodec covers a codec downgrade across a
// reconnect: a scripted child handshakes binary, takes one task and
// returns its result entirely over binary frames, then dies before the
// result ack arrives. It revives inside the grace window with a
// gob-only hello (no Codecs field — an old build after a rollback) that
// still claims the task, and replays the unacked result over gob. The
// root must serve each connection in its own negotiated codec, dedupe
// the replay, and still ack it so the child's ledger can retire —
// exactly-once end to end.
func TestMidStreamReconnectSwitchesCodec(t *testing.T) {
	const tasks = 6
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:           echoCompute(15 * time.Millisecond),
		HeartbeatInterval: -1, // the scripted child sends no heartbeats
	})

	type legOne struct {
		id      uint64
		payload []byte
		err     error
	}
	leg1c := make(chan legOne, 1)
	go func() {
		fail := func(format string, args ...any) {
			leg1c <- legOne{err: fmt.Errorf(format, args...)}
		}
		raw, err := net.Dial("tcp", root.Addr())
		if err != nil {
			fail("dial: %v", err)
			return
		}
		defer raw.Close()
		// One bufio.Reader shared between the gob handshake and the
		// binary frame reader, exactly as conn does it: gob reads one
		// message at a time off it, so the codec switch happens at a
		// clean frame boundary.
		br := bufio.NewReader(raw)
		enc, dec := gob.NewEncoder(raw), gob.NewDecoder(br)
		if err := enc.Encode(&message{Kind: kindHello, Name: "fake",
			Codecs: codecBytes([]Codec{CodecBinary})}); err != nil {
			fail("hello: %v", err)
			return
		}
		var ack message
		if err := dec.Decode(&ack); err != nil {
			fail("hello ack: %v", err)
			return
		}
		if len(ack.Codecs) != 1 || Codec(ack.Codecs[0]) != CodecBinary {
			fail("first hello-ack pinned codecs %v, want [binary]", ack.Codecs)
			return
		}

		// Binary from here on, both directions.
		var in interner
		writeBin := func(m *message) error {
			buf, err := appendFrame(nil, m)
			if err != nil {
				return err
			}
			_, err = raw.Write(buf)
			return err
		}
		readBin := func() (*message, error) {
			body, err := readFrame(br, nil)
			if err != nil {
				return nil, err
			}
			m := new(message)
			if err := decodeFrame(body, m, &in); err != nil {
				return nil, err
			}
			return m, nil
		}
		if err := writeBin(&message{Kind: kindRequest, N: 1}); err != nil {
			fail("request: %v", err)
			return
		}
		var id uint64
		var payload []byte
		for {
			m, err := readBin()
			if err != nil {
				fail("read chunk: %v", err)
				return
			}
			if m.Kind != kindChunk {
				continue
			}
			payload = append(payload, m.Data...)
			if err := writeBin(&message{Kind: kindChunkAck, Task: m.Task,
				Offset: m.Offset + len(m.Data), Last: m.Last}); err != nil {
				fail("chunk ack: %v", err)
				return
			}
			if m.Last {
				id = m.Task
				break
			}
		}
		// Return the result over the binary stream and die without
		// waiting for the ack: the result stays unacked on the (fake)
		// ledger and must be replayed after the revive.
		if err := writeBin(&message{Kind: kindResult, Task: id, Origin: "fake",
			Output: payload}); err != nil {
			fail("result: %v", err)
			return
		}
		leg1c <- legOne{id: id, payload: payload}
	}()

	resc := make(chan []Result, 1)
	errc := make(chan error, 1)
	go func() {
		results, err := root.RunTimeout(makeTasks(tasks, 2048), 60*time.Second)
		resc <- results
		errc <- err
	}()

	leg1 := <-leg1c
	if leg1.err != nil {
		t.Fatalf("scripted child, binary leg: %v", leg1.err)
	}

	// Wait for the root to notice the dead link so the second dial
	// revives the session rather than opening a parallel one.
	deadline := time.Now().Add(5 * time.Second)
	for {
		root.mu.Lock()
		gone := false
		for _, s := range root.children {
			if s.name == "fake" && s.gone {
				gone = true
			}
		}
		root.mu.Unlock()
		if gone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("root never marked the scripted child gone")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Revive speaking plain gob: the hello carries no Codecs, so the
	// parent must drop this link to the gob floor even though the same
	// session ran binary a moment ago.
	raw2, err := net.Dial("tcp", root.Addr())
	if err != nil {
		t.Fatalf("re-dial: %v", err)
	}
	defer raw2.Close()
	enc2, dec2 := gob.NewEncoder(raw2), gob.NewDecoder(raw2)
	if err := enc2.Encode(&message{Kind: kindHello, Name: "fake",
		Holding: []uint64{leg1.id}}); err != nil {
		t.Fatalf("revive hello: %v", err)
	}
	var ack2 message
	if err := dec2.Decode(&ack2); err != nil {
		t.Fatalf("revive hello ack: %v", err)
	}
	if !ack2.Revived {
		t.Fatalf("session was not revived")
	}
	if len(ack2.Codecs) != 0 {
		t.Fatalf("gob-only revive got codec pick %v, want none (gob floor)", ack2.Codecs)
	}
	// Replay the unacked result over gob; the root already relayed it
	// from the binary leg, so this must dedupe — and still be acked.
	if err := enc2.Encode(&message{Kind: kindResult, Task: leg1.id, Origin: "fake",
		Output: leg1.payload}); err != nil {
		t.Fatalf("replay result: %v", err)
	}
	ackDeadline := time.After(10 * time.Second)
	got := make(chan message, 1)
	go func() {
		for {
			var m message
			if dec2.Decode(&m) != nil {
				return
			}
			if m.Kind == kindResultAck && m.Task == leg1.id {
				select {
				case got <- m:
				default:
				}
			}
		}
	}()
	select {
	case <-got:
	case <-ackDeadline:
		t.Fatalf("replayed result never acked over the gob leg")
	}

	results := <-resc
	if err := <-errc; err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertExactlyOnce(t, results, tasks)
	if s := root.Stats(); s.ResultsDeduped < 1 {
		t.Fatalf("ResultsDeduped = %d, want >= 1 (the gob replay of task %d)", s.ResultsDeduped, leg1.id)
	}
}

// TestHelloAckDropRecovers injects a dropped hello-ack into a real
// worker's reconnect: a scripted sever cuts the link mid-run, and the
// first reconnect attempt's hello-ack is swallowed so the handshake
// times out and the backoff loop must try again. The run must still
// finish exactly-once, with the handshake timeout (not the 10s frame
// write timeout) bounding the stall.
func TestHelloAckDropRecovers(t *testing.T) {
	const tasks = 24
	plan := NewFaultPlan(
		// Sever on the second chunk received, forcing a reconnect with a
		// transfer mid-flight.
		FaultRule{Link: "parent", Dir: FaultRecv, Kind: FrameChunk, After: 2, Op: FaultSever},
		// Swallow the reconnect's hello-ack (ack #1 was the initial
		// connect): the handshake must time out and retry.
		FaultRule{Link: "parent", Dir: FaultRecv, Kind: FrameHelloAck, After: 2, Op: FaultDrop},
	)
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute: echoCompute(20 * time.Millisecond),
	})
	w := startNode(t, Config{
		Name: "w", Parent: root.Addr(), Buffers: 3,
		Compute:           echoCompute(2 * time.Millisecond),
		Faults:            plan,
		HandshakeTimeout:  300 * time.Millisecond,
		ReconnectBase:     20 * time.Millisecond,
		ReconnectCap:      200 * time.Millisecond,
		ReconnectAttempts: 8,
	})

	results, err := root.RunTimeout(makeTasks(tasks, 2048), 60*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	assertExactlyOnce(t, results, tasks)
	if got := plan.Pending(); got != 0 {
		t.Fatalf("fault plan has %d rules pending, want 0 (sever + ack drop must both fire)", got)
	}
	if s := w.Stats(); s.Reconnects < 1 {
		t.Fatalf("Reconnects = %d, want >= 1", s.Reconnects)
	}
}
