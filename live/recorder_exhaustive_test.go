package live

import (
	"strings"
	"testing"
)

// TestRecorderWireExhaustive cross-checks the wireTraced coverage map of
// recorder.go against the kind* wire constants of wire.go: every wire
// frame kind must name at least one recorder event kind that traces it,
// so a future frame type cannot ship untraced — the recorder counterpart
// of TestFaultSelectorExhaustive.
func TestRecorderWireExhaustive(t *testing.T) {
	kinds := constNames(t, "wire.go", "msgKind")
	if len(kinds) == 0 {
		t.Fatal("no msgKind constants found in wire.go; did the type move?")
	}
	// wireTraced keys cannot be compared by name (map keys are values), so
	// pin the name→value pairing here, mirroring kindSelectors.
	byName := map[string]msgKind{
		"kindHello":     kindHello,
		"kindRequest":   kindRequest,
		"kindChunk":     kindChunk,
		"kindResult":    kindResult,
		"kindShutdown":  kindShutdown,
		"kindHeartbeat": kindHeartbeat,
		"kindChunkAck":  kindChunkAck,
		"kindHelloAck":  kindHelloAck,
		"kindGoodbye":   kindGoodbye,
		"kindResultAck": kindResultAck,
	}
	for name := range kinds {
		k, pinned := byName[name]
		if !pinned {
			t.Errorf("wire.go declares %s but this test's byName map does not cover it: add it here and trace it in recorder.go's wireTraced", name)
			continue
		}
		evs, traced := wireTraced[k]
		if !traced || len(evs) == 0 {
			t.Errorf("wire kind %s has no recorder event kinds in wireTraced: frames of this kind would cross links unobserved", name)
		}
	}
	for name := range byName {
		if !kinds[name] {
			t.Errorf("this test pins %s, which wire.go no longer declares", name)
		}
	}
	if got, want := len(wireTraced), len(kinds); got != want {
		t.Errorf("wireTraced covers %d wire kinds, wire.go declares %d", got, want)
	}

	// Every event kind referenced by the coverage map must have a stable
	// name (the JSON encoding bwtrace parses), and names must round-trip.
	seen := map[EventKind]bool{}
	for _, evs := range wireTraced {
		for _, ev := range evs {
			seen[ev] = true
		}
	}
	for ev := range seen {
		name := ev.String()
		if name == "unknown" || name == "" {
			t.Errorf("event kind %d has no name in eventKindNames", ev)
			continue
		}
		var back EventKind
		if err := back.UnmarshalText([]byte(name)); err != nil || back != ev {
			t.Errorf("event kind %v does not round-trip through its name %q (got %v, err %v)", ev, name, back, err)
		}
	}
	// And every named event kind is kebab-case, the dump convention.
	for i, name := range eventKindNames {
		if name == "" {
			continue
		}
		if name != strings.ToLower(name) || strings.Contains(name, "_") {
			t.Errorf("event kind %d name %q is not kebab-case", i, name)
		}
	}
}
