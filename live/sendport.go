package live

import (
	"sort"
	"time"
)

// sendPort is the node's single outbound task port. Each iteration
// advances exactly one transfer by one chunk, choosing the
// highest-priority transfer by measured link speed — so under the
// interruptible protocol a request from a faster child preempts a slower
// child's transfer at the next chunk boundary, and the preempted transfer
// later resumes from its offset (the paper's shelve-and-resume). Under the
// non-interruptible protocol the port sticks with a transfer until its
// last chunk.
func (n *Node) sendPort() {
	defer n.wg.Done()
	for {
		s := n.nextChunk()
		if s == nil {
			select {
			case <-n.kick:
				continue
			case <-n.done:
				return
			}
		}
		n.sendChunk(s)
		if n.isClosed() {
			return
		}
	}
}

// nextChunk picks the child whose transfer the port should advance,
// starting a fresh transfer (consuming a buffered task and the child's
// request) when that child has no active one. It returns nil when there is
// nothing to send.
func (n *Node) nextChunk() *childSession {
	n.mu.Lock()

	// Reclaim work from dead children once the reconnect grace window
	// expires (immediately for deliberate departures): the in-flight
	// transfer and every task delivered into the dead subtree without a
	// result yet go back into the buffer for re-execution — the engine's
	// DepartMutation semantics. Reclaimed sessions leave the child list;
	// a later reconnect starts a fresh session.
	grace := n.cfg.ReconnectGrace
	kept := n.children[:0]
	for _, s := range n.children {
		if !s.gone || (!s.left && grace > 0 && time.Since(s.goneAt) < grace) {
			kept = append(kept, s)
			continue
		}
		if s.active != nil {
			n.buffer = append(n.buffer, s.active.task)
			n.record(Event{Kind: EvRequeue, Task: s.active.task.ID, Peer: s.name})
			n.bumpApp(s.active.task.App, func(a *AppStats) { a.Requeued++ })
			s.active = nil
			n.stats.Requeued++
			n.wakeLocked()
		}
		if len(s.outstanding) > 0 {
			ids := make([]uint64, 0, len(s.outstanding))
			for id := range s.outstanding {
				ids = append(ids, id)
			}
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			for _, id := range ids {
				t := s.outstanding[id]
				n.buffer = append(n.buffer, t)
				n.bumpApp(t.App, func(a *AppStats) { a.Requeued++ })
				n.record(Event{Kind: EvRequeue, Task: id, Peer: s.name})
			}
			n.stats.Requeued += int64(len(ids))
			s.outstanding = make(map[uint64]Task)
			n.wakeLocked()
		}
	}
	n.children = kept

	var best *childSession
	bestFresh := false
	better := func(a *childSession, b *childSession) bool {
		if b == nil {
			return true
		}
		ka, kb := a.link.estimate(), b.link.estimate()
		if ka != kb {
			return ka < kb
		}
		return a.name < b.name
	}
	haveTask := len(n.buffer) > 0
	for _, s := range n.children {
		if s.gone {
			continue
		}
		switch {
		// A transfer with every byte written is awaiting its final ack:
		// the port is free, but the child is not ready for a fresh task.
		case s.active != nil && !s.active.sentAll:
			if n.cfg.NonInterruptible {
				// Run-to-completion: an unfinished transfer owns the port.
				n.mu.Unlock()
				return s
			}
			if better(s, best) {
				best, bestFresh = s, false
			}
		case s.active == nil && s.pending > 0 && haveTask:
			if better(s, best) {
				best, bestFresh = s, true
			}
		}
	}
	if best == nil {
		n.mu.Unlock()
		return nil
	}

	needReq := false
	reqApp := ""
	if bestFresh {
		// Preemption accounting: starting a fresh transfer while another
		// child's transfer is unfinished is an interruption.
		interrupted := false
		for _, s := range n.children {
			if s != best && s.active != nil && !s.active.sentAll {
				if !interrupted {
					n.stats.Interrupts++
					interrupted = true
				}
				// The shelved transfer's next chunk opens a new segment.
				n.record(Event{Kind: EvChunkInterrupt, Task: s.active.task.ID,
					Peer: s.name, Off: s.active.offset})
				s.active.resumed = true
			}
		}
		// WRR over application tags decides whose task moves; the
		// bandwidth-centric choice of *which child* was made above.
		t := n.popTaskLocked()
		best.pending--
		best.active = &outTransfer{task: t}
		// The dispatch decision, recorded in the same critical section that
		// consumes the buffered task and the child's request. Value is the
		// chosen child's measured link estimate (ns) at decision time; the
		// send port is a single goroutine, so recorder order is exactly the
		// order decisions and estimate updates became visible to it.
		best.active.traceSeq = n.record(Event{Kind: EvChunkSend, Task: t.ID, Peer: best.name,
			Value: int64(best.link.estimate() * 1e9)})
		n.stats.Forwarded++
		n.stats.ByChild[best.name]++
		n.bumpApp(t.App, func(a *AppStats) { a.Forwarded++ })
		reqApp = t.App
		if !n.root {
			n.stats.Requests++
			needReq = true
		}
	}
	n.mu.Unlock()

	if needReq {
		// The freed buffer requests a refill (the paper's rule).
		n.requestMore(1, reqApp)
	}
	return best
}

// wakeLocked nudges compute and port; callers hold n.mu (the channels are
// non-blocking, so signaling under the lock is safe).
func (n *Node) wakeLocked() {
	select {
	case n.comp <- struct{}{}:
	default:
	}
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// sendChunk streams up to ChunkBatch chunks of s's active transfer in
// one batched write, measures the time it took (including any emulated
// link delay), and updates the child's measured link speed — the only
// information the priority uses. Preemption still happens between port
// turns: a turn commits to at most one batch on one child.
func (n *Node) sendChunk(s *childSession) {
	n.mu.Lock()
	tr := s.active
	c := s.c
	if tr == nil || tr.sentAll || s.gone {
		n.mu.Unlock()
		return
	}
	payload := tr.task.Payload
	offset := tr.offset
	if tr.resumed {
		// First chunk after a preemption, reconnect resume, or
		// retransmit-from-top: a new transfer segment begins here, and its
		// trace context replaces the original dispatch's on the wire.
		tr.traceSeq = n.record(Event{Kind: EvChunkResume, Task: tr.task.ID,
			Peer: s.name, Off: offset})
		tr.resumed = false
	}
	traceSeq := tr.traceSeq
	task := tr.task
	n.mu.Unlock()

	// Build the turn's chunk frames into the port's reusable scratch. An
	// empty payload still takes exactly one (empty, Last) chunk.
	batch := n.cfg.ChunkBatch
	if cap(n.portMsgs) < batch {
		n.portMsgs = make([]message, batch)
		n.portFrames = make([]*message, 0, batch)
	}
	msgs := n.portMsgs[:0]
	frames := n.portFrames[:0]
	end := offset
	for {
		chunkEnd := end + n.cfg.ChunkSize
		if chunkEnd > len(payload) {
			chunkEnd = len(payload)
		}
		msgs = append(msgs, message{
			Kind:      kindChunk,
			Task:      task.ID,
			Size:      len(payload),
			Offset:    end,
			Data:      payload[end:chunkEnd],
			Last:      chunkEnd == len(payload),
			TraceNode: n.cfg.Name,
			TraceSeq:  traceSeq,
			App:       task.App,
		})
		end = chunkEnd
		if end == len(payload) || len(msgs) == batch {
			break
		}
	}
	for i := range msgs {
		frames = append(frames, &msgs[i])
	}

	if n.cfg.LinkDelay != nil { // ChunkBatch is forced to 1 with a LinkDelay
		if d := n.cfg.LinkDelay(s.name); d > 0 {
			time.Sleep(d)
		}
	}
	start := time.Now()
	accepted, err := c.sendBatch(frames)
	perChunk := time.Since(start)
	if accepted > 1 {
		perChunk /= time.Duration(accepted)
	}
	s.link.observe(perChunk + delayOf(n.cfg.LinkDelay, s.name))

	// The accepted prefix of the batch is on the wire (or scripted as
	// dropped, which sequential sends also count as progress); advance the
	// transfer that far even when the tail failed — the chunk-ack /
	// resume machinery recovers the rest. The session may have been
	// revived on a newer connection mid-send; only the owning connection
	// may advance the transfer.
	n.mu.Lock()
	if accepted > 0 && s.c == c && s.active == tr {
		lastFrame := frames[accepted-1]
		tr.offset = lastFrame.Offset + len(lastFrame.Data)
		if lastFrame.Last {
			// Every byte is written, but the task becomes the child's
			// responsibility only when the final chunk is acked (or a
			// reconnect handshake proves receipt).
			tr.sentAll = true
		}
	}
	n.mu.Unlock()

	if err != nil {
		// The child is unreachable; the grace window starts now and the
		// task is reclaimed when it expires.
		n.markChildGone(s, c)
	}
}

// delayOf folds the emulated link delay into the measured chunk time so
// priorities reflect it.
func delayOf(fn func(string) time.Duration, name string) time.Duration {
	if fn == nil {
		return 0
	}
	return fn(name)
}
