package live

import (
	"fmt"
	"time"
)

// sendPort is the node's single outbound task port. Each iteration
// advances exactly one transfer by one chunk, choosing the
// highest-priority transfer by measured link speed — so under the
// interruptible protocol a request from a faster child preempts a slower
// child's transfer at the next chunk boundary, and the preempted transfer
// later resumes from its offset (the paper's shelve-and-resume). Under the
// non-interruptible protocol the port sticks with a transfer until its
// last chunk.
func (n *Node) sendPort() {
	defer n.wg.Done()
	for {
		s := n.nextChunk()
		if s == nil {
			select {
			case <-n.kick:
				continue
			case <-n.done:
				return
			}
		}
		n.sendChunk(s)
		if n.isClosed() {
			return
		}
	}
}

// nextChunk picks the child whose transfer the port should advance,
// starting a fresh transfer (consuming a buffered task and the child's
// request) when that child has no active one. It returns nil when there is
// nothing to send.
func (n *Node) nextChunk() *childSession {
	n.mu.Lock()

	// Reclaim work from children that disappeared: the in-flight transfer
	// and every task delivered into the dead subtree without a result yet
	// go back into the buffer for re-execution.
	for _, s := range n.children {
		if !s.gone {
			continue
		}
		if s.active != nil {
			n.buffer = append(n.buffer, s.active.task)
			s.active = nil
			n.wakeLocked()
		}
		if len(s.outstanding) > 0 {
			for _, t := range s.outstanding {
				n.buffer = append(n.buffer, t)
			}
			s.outstanding = make(map[uint64]Task)
			n.wakeLocked()
		}
	}

	var best *childSession
	bestFresh := false
	better := func(a *childSession, b *childSession) bool {
		if b == nil {
			return true
		}
		ka, kb := a.link.estimate(), b.link.estimate()
		if ka != kb {
			return ka < kb
		}
		return a.name < b.name
	}
	haveTask := len(n.buffer) > 0
	for _, s := range n.children {
		if s.gone {
			continue
		}
		switch {
		case s.active != nil:
			if n.cfg.NonInterruptible {
				// Run-to-completion: an unfinished transfer owns the port.
				n.mu.Unlock()
				return s
			}
			if better(s, best) {
				best, bestFresh = s, false
			}
		case s.pending > 0 && haveTask:
			if better(s, best) {
				best, bestFresh = s, true
			}
		}
	}
	if best == nil {
		n.mu.Unlock()
		return nil
	}

	needReq := false
	if bestFresh {
		// Preemption accounting: starting a fresh transfer while another
		// child's transfer is unfinished is an interruption.
		for _, s := range n.children {
			if s != best && s.active != nil {
				n.stats.Interrupts++
				break
			}
		}
		t := n.buffer[0]
		n.buffer = n.buffer[1:]
		best.pending--
		best.active = &outTransfer{task: t}
		n.stats.Forwarded++
		n.stats.ByChild[best.name]++
		if n.parent != nil {
			n.stats.Requests++
			needReq = true
		}
	}
	n.mu.Unlock()

	if needReq {
		// The freed buffer requests a refill (the paper's rule).
		if err := n.parent.send(&message{Kind: kindRequest, N: 1}); err != nil && !n.isClosed() {
			n.fail(fmt.Errorf("live: request: %w", err))
		}
	}
	return best
}

// wakeLocked nudges compute and port; callers hold n.mu (the channels are
// non-blocking, so signaling under the lock is safe).
func (n *Node) wakeLocked() {
	select {
	case n.comp <- struct{}{}:
	default:
	}
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// sendChunk streams one chunk of s's active transfer, measures the time it
// took (including any emulated link delay), and updates the child's
// measured link speed — the only information the priority uses.
func (n *Node) sendChunk(s *childSession) {
	n.mu.Lock()
	tr := s.active
	if tr == nil || s.gone {
		n.mu.Unlock()
		return
	}
	payload := tr.task.Payload
	offset := tr.offset
	n.mu.Unlock()

	end := offset + n.cfg.ChunkSize
	if end > len(payload) {
		end = len(payload)
	}
	last := end == len(payload)
	m := &message{
		Kind:   kindChunk,
		Task:   tr.task.ID,
		Size:   len(payload),
		Offset: offset,
		Data:   payload[offset:end],
		Last:   last,
	}

	if n.cfg.LinkDelay != nil {
		if d := n.cfg.LinkDelay(s.name); d > 0 {
			time.Sleep(d)
		}
	}
	start := time.Now()
	err := s.c.send(m)
	s.link.observe(time.Since(start) + delayOf(n.cfg.LinkDelay, s.name))

	n.mu.Lock()
	if err != nil {
		// The child is unreachable; reclaim the task on the next pick.
		s.gone = true
		n.mu.Unlock()
		n.wake(n.kick)
		return
	}
	tr.offset = end
	if last {
		// Fully delivered: the task is now the child's responsibility
		// until its result passes back through.
		s.outstanding[tr.task.ID] = tr.task
		s.active = nil
	}
	n.mu.Unlock()
}

// delayOf folds the emulated link delay into the measured chunk time so
// priorities reflect it.
func delayOf(fn func(string) time.Duration, name string) time.Duration {
	if fn == nil {
		return 0
	}
	return fn(name)
}
