package live

// This file is the live runtime's flight recorder: a fixed-capacity ring
// buffer of structured events covering the complete journey of every task
// through the overlay — request, chunked transfer, compute, result
// delivery — plus every recovery transition (heartbeat miss, sever,
// reconnect, requeue, revive reconciliation). It is the event-level
// counterpart of the aggregate Stats counters: when a deployment
// misbehaves, counters say how many, the recorder says which task, on
// which link, in what order.
//
// Events recorded at protocol decision points are appended inside the
// same critical section as the state change they describe, so the
// per-node event order is exactly the order the node observed its own
// state — cmd/bwtrace relies on this to re-verify scheduling decisions
// from merged dumps. Cross-node causality is carried on the wire: chunk
// and result frames are stamped with the sender's name and the sequence
// number of the recorder event that caused them (appended gob fields, see
// wire.go), so a receive event on one node names the send event on its
// peer.

import (
	"sync"
	"time"
)

// EventKind discriminates flight-recorder events.
type EventKind uint8

const (
	// EvHello is a reconnect/join handshake hello: recorded by the child
	// when it sends one and by the parent when it receives one.
	EvHello EventKind = iota + 1
	// EvHelloAck is the handshake answer; Value is 1 when the parent
	// revived the child's previous session.
	EvHelloAck
	// EvRevive marks a parent reviving a dead child's session within the
	// reconnect grace window.
	EvRevive
	// EvGoodbye is a deliberate departure announcement.
	EvGoodbye
	// EvShutdown is a wind-down order received from the parent.
	EvShutdown
	// EvRequestSent is a task request sent up the tree; Value is the
	// number of tasks requested.
	EvRequestSent
	// EvRequestServed is a child's task request registered by its parent;
	// Value is the number of tasks requested.
	EvRequestServed
	// EvChunkSend is the dispatch of a fresh transfer to a child — the
	// bandwidth-centric scheduling decision. Value is the chosen child's
	// measured link estimate in nanoseconds at decision time.
	EvChunkSend
	// EvChunkResume is a shelved or reconnect-interrupted transfer
	// resuming; Off is the byte offset it resumes from.
	EvChunkResume
	// EvChunkInterrupt is the send port preempting an unfinished transfer
	// for a higher-priority child; Off is the interrupted offset.
	EvChunkInterrupt
	// EvChunkRecv is the first chunk of a transfer segment arriving at
	// the receiver; Off is the segment's starting offset.
	EvChunkRecv
	// EvChunkAck is the parent learning a transfer is fully delivered:
	// the final chunk ack arrived (or a reconnect handshake proved
	// receipt, Value 1 either way).
	EvChunkAck
	// EvTaskReceived is a complete task payload assembled at the receiver.
	EvTaskReceived
	// EvComputeStart is a task entering the local compute port.
	EvComputeStart
	// EvComputeDone is a local computation finishing; Value is the
	// elapsed nanoseconds.
	EvComputeDone
	// EvResultSend is a result written to the uplink for the first time.
	EvResultSend
	// EvResultReplay is an unacked result retransmitted (reconnect replay
	// or retry timer).
	EvResultReplay
	// EvResultRecv is a result arriving from a child.
	EvResultRecv
	// EvResultDedupe is a duplicate result suppressed before relay or
	// collection.
	EvResultDedupe
	// EvResultAck is a result ack arriving from the parent, retiring the
	// matching unacked-ledger entry.
	EvResultAck
	// EvResultCollect is the root handing a result to Run.
	EvResultCollect
	// EvHeartbeatMiss is a supervision interval that passed with a silent
	// link; Value is the consecutive miss count.
	EvHeartbeatMiss
	// EvSever is a link declared dead.
	EvSever
	// EvReconnect is a successful re-dial of a lost parent link; Value is
	// the attempt number that succeeded.
	EvReconnect
	// EvRequeue is a task reclaimed from a dead or reconciled subtree and
	// put back in the buffer for re-dispatch.
	EvRequeue
)

var eventKindNames = [...]string{
	EvHello:          "hello",
	EvHelloAck:       "hello-ack",
	EvRevive:         "revive",
	EvGoodbye:        "goodbye",
	EvShutdown:       "shutdown",
	EvRequestSent:    "request-sent",
	EvRequestServed:  "request-served",
	EvChunkSend:      "chunk-send",
	EvChunkResume:    "chunk-resume",
	EvChunkInterrupt: "chunk-interrupt",
	EvChunkRecv:      "chunk-recv",
	EvChunkAck:       "chunk-ack",
	EvTaskReceived:   "task-received",
	EvComputeStart:   "compute-start",
	EvComputeDone:    "compute-done",
	EvResultSend:     "result-send",
	EvResultReplay:   "result-replay",
	EvResultRecv:     "result-recv",
	EvResultDedupe:   "result-dedupe",
	EvResultAck:      "result-ack",
	EvResultCollect:  "result-collect",
	EvHeartbeatMiss:  "heartbeat-miss",
	EvSever:          "sever",
	EvReconnect:      "reconnect",
	EvRequeue:        "requeue",
}

// String returns the event kind's stable name (the names are the JSON
// encoding served by /debug/events and parsed by cmd/bwtrace).
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) && eventKindNames[k] != "" {
		return eventKindNames[k]
	}
	return "unknown"
}

// MarshalText renders the kind as its stable name in JSON dumps.
func (k EventKind) MarshalText() ([]byte, error) {
	return []byte(k.String()), nil
}

// UnmarshalText parses a kind name; unknown names decode to 0 rather
// than erroring, so dumps from newer nodes still load.
func (k *EventKind) UnmarshalText(b []byte) error {
	s := string(b)
	for i, name := range eventKindNames {
		if name == s {
			*k = EventKind(i)
			return nil
		}
	}
	*k = 0
	return nil
}

// wireTraced maps every wire frame kind to the recorder event kinds that
// trace it, so no frame type can cross a link unobserved. The recorder
// exhaustiveness test cross-checks this map against the kind* constants
// of wire.go; adding a wire kind without extending it is a test failure.
var wireTraced = map[msgKind][]EventKind{
	kindHello:     {EvHello},
	kindRequest:   {EvRequestSent, EvRequestServed},
	kindChunk:     {EvChunkSend, EvChunkResume, EvChunkRecv},
	kindResult:    {EvResultSend, EvResultReplay, EvResultRecv},
	kindShutdown:  {EvShutdown},
	kindHeartbeat: {EvHeartbeatMiss},
	kindChunkAck:  {EvChunkAck, EvTaskReceived},
	kindHelloAck:  {EvHelloAck, EvRevive},
	kindGoodbye:   {EvGoodbye},
	kindResultAck: {EvResultAck},
}

// Event is one flight-recorder entry. Events are immutable once recorded.
type Event struct {
	// Seq is the node-local event sequence number, dense from 1. Peers
	// reference it through the wire's trace context (CauseSeq).
	Seq uint64 `json:"seq"`
	// At is a monotonic timestamp: nanoseconds since the node's recorder
	// epoch. Dumps from different nodes are aligned per-link by
	// cmd/bwtrace using matched send/receive event pairs.
	At int64 `json:"at"`
	// Kind discriminates the event.
	Kind EventKind `json:"kind"`
	// Task is the task ID the event concerns, when any.
	Task uint64 `json:"task,omitempty"`
	// Origin is the computing node's name for result-path events.
	Origin string `json:"origin,omitempty"`
	// Peer names the remote end of the link the event concerns.
	Peer string `json:"peer,omitempty"`
	// WireSeq is the node-unique sequence number of the wire frame the
	// event corresponds to, when it corresponds to one.
	WireSeq uint64 `json:"wireSeq,omitempty"`
	// CausePeer and CauseSeq name the causal event on the peer node for
	// events triggered by a received frame: CauseSeq is the Seq of the
	// sender-side event carried in the frame's trace context.
	CausePeer string `json:"causePeer,omitempty"`
	CauseSeq  uint64 `json:"causeSeq,omitempty"`
	// Off is a byte offset for transfer events.
	Off int `json:"off,omitempty"`
	// Value carries kind-specific data; see the kind constants.
	Value int64 `json:"value,omitempty"`
}

// TraceDump is the serializable form of a node's flight recorder, served
// by /debug/events and merged across nodes by cmd/bwtrace.
type TraceDump struct {
	Node string `json:"node"`
	Root bool   `json:"root"`
	// EpochUnixNano is the recorder epoch as wall-clock time — a coarse
	// fallback for aligning nodes that share no link.
	EpochUnixNano int64 `json:"epochUnixNano"`
	// Dropped counts events evicted by ring wrap-around; the retained
	// window starts Dropped events into the node's history.
	Dropped int64   `json:"dropped"`
	Events  []Event `json:"events"`
}

// defaultRecorderCap is the flight recorder's default ring capacity.
const defaultRecorderCap = 8192

// flightRecorder is the fixed-capacity event ring. Writers never block
// and entries are never mutated after being written: overflow overwrites
// the oldest event and counts it as dropped, so the recorder always
// holds the most recent window of the node's history.
type flightRecorder struct {
	epoch time.Time

	mu   sync.Mutex
	buf  []Event // ring storage; index seq-1 mod cap
	next uint64  // total events ever recorded; the next event gets Seq next+1
}

func newFlightRecorder(capacity int) *flightRecorder {
	return &flightRecorder{epoch: time.Now(), buf: make([]Event, 0, capacity)}
}

// add assigns the event its sequence number and monotonic timestamp,
// appends it, and returns the sequence number for wire stamping.
func (r *flightRecorder) add(e Event) uint64 {
	at := time.Since(r.epoch).Nanoseconds()
	r.mu.Lock()
	r.next++
	e.Seq = r.next
	e.At = at
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[(e.Seq-1)%uint64(cap(r.buf))] = e
	}
	r.mu.Unlock()
	return e.Seq
}

// dropped reports how many events were evicted by wrap-around.
func (r *flightRecorder) dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedLocked()
}

func (r *flightRecorder) droppedLocked() int64 {
	if c := uint64(cap(r.buf)); r.next > c {
		return int64(r.next - c)
	}
	return 0
}

// snapshot returns the retained events in sequence order plus the evicted
// count.
func (r *flightRecorder) snapshot() ([]Event, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	start := uint64(r.droppedLocked()) // seq of the oldest retained event, minus one
	for seq := start + 1; seq <= r.next; seq++ {
		out = append(out, r.buf[(seq-1)%uint64(cap(r.buf))])
	}
	return out, r.droppedLocked()
}

// since returns the retained events with Seq > after, in order, and the
// sequence number the next call should resume from. Events evicted before
// they could be read are skipped (the caller observes the gap in Seq).
func (r *flightRecorder) since(after uint64) ([]Event, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if oldest := uint64(r.droppedLocked()); after < oldest {
		after = oldest
	}
	if after >= r.next {
		return nil, r.next
	}
	out := make([]Event, 0, r.next-after)
	for seq := after + 1; seq <= r.next; seq++ {
		out = append(out, r.buf[(seq-1)%uint64(cap(r.buf))])
	}
	return out, r.next
}

// record appends one event to the node's flight recorder, returning its
// sequence number for wire stamping; a node with the recorder disabled
// records nothing. Safe to call while holding n.mu (the recorder has its
// own lock and never takes the node's).
func (n *Node) record(e Event) uint64 {
	if n.rec == nil {
		return 0
	}
	return n.rec.add(e)
}

// Events returns a snapshot of the flight recorder's retained events in
// order; nil when the recorder is disabled.
func (n *Node) Events() []Event {
	if n.rec == nil {
		return nil
	}
	evs, _ := n.rec.snapshot()
	return evs
}

// TraceDump returns the node's flight-recorder dump — the document
// /debug/events serves and cmd/bwtrace merges. The Events slice is nil
// when the recorder is disabled.
func (n *Node) TraceDump() TraceDump {
	d := TraceDump{Node: n.cfg.Name, Root: n.root}
	if n.rec == nil {
		return d
	}
	d.EpochUnixNano = n.rec.epoch.UnixNano()
	d.Events, d.Dropped = n.rec.snapshot()
	return d
}
