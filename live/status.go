package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"
)

// StatusSnapshot is the JSON document served by the status endpoint.
type StatusSnapshot struct {
	Name     string             `json:"name"`
	Root     bool               `json:"root"`
	Buffered int                `json:"buffered"`
	Children []string           `json:"children"`
	Stats    Stats              `json:"stats"`
	Links    map[string]float64 `json:"measuredLinkSeconds"` // EWMA per-chunk time by child
	Uptime   string             `json:"uptime"`
	// Connected reports whether the uplink is currently established; a
	// non-root node mid-reconnect shows false (always true at the root).
	Connected bool `json:"connected"`
}

// statusServer serves node introspection over HTTP.
type statusServer struct {
	node    *Node
	started time.Time
	srv     *http.Server
	ln      net.Listener
}

// ServeStatus exposes the node's live statistics as JSON at /status on the
// given address (use "127.0.0.1:0" for an ephemeral port; the chosen
// address is returned). The endpoint is read-only introspection for
// operating a deployed overlay; it stops when the node closes or
// StopStatus is called.
func (n *Node) ServeStatus(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: status listen: %w", err)
	}
	ss := &statusServer{node: n, started: time.Now(), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", ss.handle)
	ss.srv = &http.Server{Handler: mux}

	n.mu.Lock()
	if n.status != nil {
		n.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("live: status endpoint already running")
	}
	n.status = ss
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = ss.srv.Serve(ln) // returns on Close
	}()
	return ln.Addr().String(), nil
}

// StopStatus shuts the status endpoint down; safe to call when none runs.
func (n *Node) StopStatus() {
	n.mu.Lock()
	ss := n.status
	n.status = nil
	n.mu.Unlock()
	if ss != nil {
		_ = ss.srv.Close()
	}
}

// handle renders the snapshot.
func (s *statusServer) handle(w http.ResponseWriter, r *http.Request) {
	n := s.node
	n.mu.Lock()
	snap := StatusSnapshot{
		Name:      n.cfg.Name,
		Root:      n.root,
		Buffered:  len(n.buffer),
		Links:     map[string]float64{},
		Uptime:    time.Since(s.started).Round(time.Millisecond).String(),
		Connected: n.root || n.parent != nil,
	}
	for _, c := range n.children {
		if !c.gone {
			snap.Children = append(snap.Children, c.name)
			snap.Links[c.name] = c.link.estimate()
		}
	}
	n.mu.Unlock()
	snap.Stats = n.Stats()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}
