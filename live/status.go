package live

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"time"

	"bwcs/internal/metrics"
)

// StatusSnapshot is the JSON document served by the status endpoint.
type StatusSnapshot struct {
	Name     string             `json:"name"`
	Root     bool               `json:"root"`
	Buffered int                `json:"buffered"`
	Children []string           `json:"children"`
	Stats    Stats              `json:"stats"`
	Links    map[string]float64 `json:"measuredLinkSeconds"` // EWMA per-chunk time by child
	// Codecs is the negotiated wire codec per link: one entry per
	// connected child plus "parent" for the uplink.
	Codecs map[string]string `json:"codecs,omitempty"`
	Uptime string            `json:"uptime"`
	// Connected reports whether the uplink is currently established; a
	// non-root node mid-reconnect shows false (always true at the root).
	Connected bool `json:"connected"`
}

// statusServer serves node introspection over HTTP.
type statusServer struct {
	node    *Node
	started time.Time
	srv     *http.Server
	ln      net.Listener
}

// ServeStatus exposes the node's introspection endpoints on the given
// address (use "127.0.0.1:0" for an ephemeral port; the chosen address
// is returned):
//
//	/status        the node's statistics as JSON (StatusSnapshot)
//	/metrics       the same counters in Prometheus text format
//	/timeline      the node's sampled telemetry as JSON (TimelineDump);
//	               ?follow=1 streams each sampling pass as NDJSON until
//	               the client disconnects or the node closes
//	/debug/events  the flight recorder's event dump as JSON (TraceDump);
//	               ?follow=1 streams new events as NDJSON until the
//	               client disconnects or the node closes
//	/debug/pprof/  the standard net/http/pprof profiling handlers
//
// The endpoints are read-only introspection for operating a deployed
// overlay; they stop when the node closes or StopStatus is called.
func (n *Node) ServeStatus(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("live: status listen: %w", err)
	}
	ss := &statusServer{node: n, started: time.Now(), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", ss.handle)
	mux.HandleFunc("/metrics", ss.handleMetrics)
	mux.HandleFunc("/timeline", ss.handleTimeline)
	mux.HandleFunc("/debug/events", ss.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ss.srv = &http.Server{
		Handler: mux,
		// Slowloris guard: a client must deliver its request header
		// promptly. Response writes are deliberately unbounded — pprof
		// profiles and ?follow=1 event streams run for as long as the
		// client asks — so only the read side carries deadlines.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	n.mu.Lock()
	if n.status != nil {
		n.mu.Unlock()
		ln.Close()
		return "", fmt.Errorf("live: status endpoint already running")
	}
	n.status = ss
	n.mu.Unlock()

	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		_ = ss.srv.Serve(ln) // returns on Close
	}()
	return ln.Addr().String(), nil
}

// StopStatus shuts the status endpoint down; safe to call when none runs.
func (n *Node) StopStatus() {
	n.mu.Lock()
	ss := n.status
	n.status = nil
	n.mu.Unlock()
	if ss != nil {
		_ = ss.srv.Close()
	}
}

// handle renders the snapshot.
func (s *statusServer) handle(w http.ResponseWriter, r *http.Request) {
	n := s.node
	n.mu.Lock()
	snap := StatusSnapshot{
		Name:      n.cfg.Name,
		Root:      n.root,
		Buffered:  len(n.buffer),
		Links:     map[string]float64{},
		Codecs:    map[string]string{},
		Uptime:    time.Since(s.started).Round(time.Millisecond).String(),
		Connected: n.root || n.parent != nil,
	}
	if n.parent != nil {
		snap.Codecs["parent"] = n.parent.codec.String()
	}
	for _, c := range n.children {
		if !c.gone {
			snap.Children = append(snap.Children, c.name)
			snap.Links[c.name] = c.link.estimate()
			snap.Codecs[c.name] = c.c.codec.String()
		}
	}
	n.mu.Unlock()
	snap.Stats = n.Stats()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(snap)
}

// handleMetrics renders the node's counters in the Prometheus text
// exposition format. Every sample is derived from the same Stats
// snapshot /status serves, so the two endpoints always agree.
func (s *statusServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	n := s.node
	st := n.Stats()
	n.mu.Lock()
	buffered := int64(len(n.buffer))
	connected := int64(0)
	if n.root || n.parent != nil {
		connected = 1
	}
	children := int64(0)
	for _, c := range n.children {
		if !c.gone {
			children++
		}
	}
	n.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = metricsSnapshot(st, buffered, connected, children).WritePrometheus(w)
}

// processStart anchors process_start_time_seconds, the conventional
// Prometheus gauge scrapers use to detect restarts and compute process
// age.
var processStart = time.Now()

// handleEvents serves the flight recorder. A plain GET returns the full
// TraceDump as JSON — the document cmd/bwtrace merges. With ?follow=1 the
// response is an NDJSON stream of events (one Event per line), starting
// from the oldest retained and polling for new ones until the client
// disconnects or the node closes; events evicted between polls appear as
// gaps in seq.
func (s *statusServer) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := s.node
	if r.URL.Query().Get("follow") == "" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(n.TraceDump())
		return
	}
	if n.rec == nil {
		http.Error(w, "live: flight recorder disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	t := time.NewTicker(50 * time.Millisecond)
	defer t.Stop()
	var cursor uint64
	for {
		evs, next := n.rec.since(cursor)
		cursor = next
		for i := range evs {
			if err := enc.Encode(&evs[i]); err != nil {
				return
			}
			// Flush per line, not per batch: a follower must see each
			// event as soon as it is encoded, even mid-batch on a slow
			// or long-polling connection.
			if flusher != nil {
				flusher.Flush()
			}
		}
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		case <-n.done:
			return
		}
	}
}

// metricsSnapshot converts a Stats snapshot (plus point-in-time gauges)
// into a renderable metric set. Factored out so tests can assert the
// exact exposition against a Stats value.
func metricsSnapshot(st Stats, buffered, connected, children int64) metrics.Snapshot {
	counter := func(name, help string, v int64) metrics.Family {
		return metrics.Family{Name: name, Help: help, Type: "counter", Samples: []metrics.Sample{{Value: v}}}
	}
	gauge := func(name, help string, v int64) metrics.Family {
		return metrics.Family{Name: name, Help: help, Type: "gauge", Samples: []metrics.Sample{{Value: v}}}
	}
	snap := metrics.Snapshot{
		counter("live_tasks_computed_total", "tasks computed locally", st.Computed),
		counter("live_tasks_forwarded_total", "tasks sent to children", st.Forwarded),
		counter("live_tasks_received_total", "tasks received from the parent", st.Received),
		counter("live_requests_sent_total", "requests sent to the parent", st.Requests),
		counter("live_send_interrupts_total", "send-port switches away from an unfinished transfer", st.Interrupts),
		counter("live_reconnects_total", "successful re-dials of a lost parent link", st.Reconnects),
		counter("live_tasks_requeued_total", "tasks reclaimed from dead subtrees and requeued", st.Requeued),
		counter("live_transfers_resumed_total", "transfers resumed mid-payload after a child reconnected", st.Resumed),
		counter("live_heartbeat_misses_total", "supervision intervals that passed with a silent link", st.HeartbeatMisses),
		counter("live_send_errors_total", "ack sends that failed on a dying link (replay covers them)", st.SendErrors),
		counter("live_result_acks_total", "unacked-ledger entries retired by a parent's result ack", st.ResultAcks),
		counter("live_results_replayed_total", "unacked results retransmitted (reconnect replay or retry)", st.ResultsReplayed),
		counter("live_results_deduped_total", "duplicate results suppressed before relay or collection", st.ResultsDeduped),
		counter("live_tasks_requeued_on_revive_total", "tasks requeued by revive-time reconciliation", st.RequeuedOnRevive),
		counter("live_recorder_dropped_total", "flight-recorder events evicted by ring overflow", st.RecorderDropped),
		counter("live_wire_frames_sent_total", "wire frames sent on all links", st.FramesSent),
		counter("live_wire_frames_received_total", "wire frames received on all links", st.FramesReceived),
		counter("live_wire_bytes_sent_total", "bytes written to all links, codec overhead included", st.BytesSent),
		counter("live_wire_bytes_received_total", "bytes read from all links, codec overhead included", st.BytesReceived),
		gauge("live_buffered_tasks", "tasks currently buffered", buffered),
		gauge("live_queued_peak", "most tasks simultaneously buffered", int64(st.MaxQueued)),
		gauge("live_connected", "whether the uplink is established (always 1 at the root)", connected),
		gauge("live_children", "currently connected children", children),
		gauge("live_uptime_seconds", "seconds since the node started", st.UptimeSeconds),
		gauge("process_start_time_seconds", "unix time the process started", processStart.Unix()),
	}
	if len(st.ByChild) > 0 {
		names := make([]string, 0, len(st.ByChild))
		for name := range st.ByChild {
			names = append(names, name)
		}
		sort.Strings(names)
		f := metrics.Family{Name: "live_forwarded_by_child_total", Help: "tasks forwarded per child", Type: "counter"}
		for _, name := range names {
			f.Samples = append(f.Samples, metrics.Sample{
				Labels: []metrics.Label{{Key: "child", Value: name}},
				Value:  st.ByChild[name],
			})
		}
		snap = append(snap, f)
	}
	if len(st.PerApp) > 0 {
		apps := make([]string, 0, len(st.PerApp))
		for app := range st.PerApp {
			apps = append(apps, app)
		}
		sort.Strings(apps)
		perApp := func(name, help string, get func(AppStats) int64) metrics.Family {
			f := metrics.Family{Name: name, Help: help, Type: "counter"}
			for _, app := range apps {
				f.Samples = append(f.Samples, metrics.Sample{
					Labels: []metrics.Label{{Key: "app", Value: app}},
					Value:  get(st.PerApp[app]),
				})
			}
			return f
		}
		snap = append(snap,
			perApp("live_app_tasks_computed_total", "tasks computed locally per application", func(a AppStats) int64 { return a.Computed }),
			perApp("live_app_tasks_forwarded_total", "tasks sent to children per application", func(a AppStats) int64 { return a.Forwarded }),
			perApp("live_app_tasks_received_total", "tasks received from the parent per application", func(a AppStats) int64 { return a.Received }),
			perApp("live_app_tasks_requeued_total", "tasks reclaimed and requeued per application", func(a AppStats) int64 { return a.Requeued }),
			perApp("live_app_results_collected_total", "results delivered to Run per application (root only)", func(a AppStats) int64 { return a.Collected }),
			perApp("live_app_results_deduped_total", "duplicate results suppressed per application", func(a AppStats) int64 { return a.Deduped }),
		)
	}
	return snap
}
