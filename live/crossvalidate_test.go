package live

// Cross-validation against the discrete-event engine: the same logical
// platform, expressed once in simulator timesteps and once as real
// sleeps/delays, must produce the same qualitative schedule. This ties the
// repository's two halves together — the simulator that reproduces the
// paper's numbers and the runtime that deploys the protocol.

import (
	"testing"
	"time"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/tree"
)

// TestSimAndLiveAgreeOnTaskSplit builds a platform with a strong, clear
// asymmetry — a fast-linked slow CPU, a slow-linked fast CPU, and a
// mid-everything child — and checks that the per-node ranking of computed
// tasks matches between the simulator and the live runtime. Rankings (not
// exact counts) are robust to wall-clock noise.
func TestSimAndLiveAgreeOnTaskSplit(t *testing.T) {
	const tasks = 90
	const step = 2 * time.Millisecond // one simulator timestep in wall time

	// Platform: root w=40; A (c=1, w=4), B (c=12, w=2), C (c=4, w=8).
	tr := tree.New(40)
	tr.AddChild(tr.Root(), 4, 1)  // A: fast link
	tr.AddChild(tr.Root(), 2, 12) // B: fast CPU, slow link
	tr.AddChild(tr.Root(), 8, 4)  // C: middling

	sim, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: tasks})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	sleepCompute := func(w int64) ComputeFunc {
		return func(Task) ([]byte, error) {
			time.Sleep(time.Duration(w) * step)
			return nil, nil
		}
	}
	delays := map[string]time.Duration{
		"A": 1 * step,
		"B": 12 * step,
		"C": 4 * step,
	}
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:   sleepCompute(40),
		LinkDelay: func(child string) time.Duration { return delays[child] },
		ChunkSize: 1 << 20, // one chunk per task: the delay is the whole c
	})
	workers := map[string]*Node{}
	for name, w := range map[string]int64{"A": 4, "B": 2, "C": 8} {
		workers[name] = startNode(t, Config{Name: name, Parent: root.Addr(), Buffers: 3, Compute: sleepCompute(w)})
	}
	if _, err := root.Run(makeTasks(tasks, 64), 120*time.Second); err != nil {
		t.Fatalf("live run: %v", err)
	}

	simCounts := map[string]int64{
		"A": sim.Nodes[1].Computed,
		"B": sim.Nodes[2].Computed,
		"C": sim.Nodes[3].Computed,
	}
	liveCounts := map[string]int64{}
	for name, w := range workers {
		liveCounts[name] = w.Stats().Computed
	}
	t.Logf("sim split: %v, live split: %v (root sim %d)", simCounts, liveCounts, sim.Nodes[0].Computed)

	// The fast-linked child dominates in both worlds.
	for _, counts := range []map[string]int64{simCounts, liveCounts} {
		if counts["A"] <= counts["B"] {
			t.Fatalf("A (fast link) did not beat B (slow link): %v", counts)
		}
		if counts["A"] <= counts["C"] {
			t.Fatalf("A (fast link) did not beat C: %v", counts)
		}
	}
	// And the simulator's winner is the live runtime's winner.
	simWinner, liveWinner := argmax(simCounts), argmax(liveCounts)
	if simWinner != liveWinner {
		t.Fatalf("winners disagree: sim %s, live %s", simWinner, liveWinner)
	}
}

func argmax(m map[string]int64) string {
	best, bestV := "", int64(-1)
	for k, v := range m {
		if v > bestV || (v == bestV && k < best) {
			best, bestV = k, v
		}
	}
	return best
}
