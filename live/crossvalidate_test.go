package live

// Cross-validation against the discrete-event engine: the same logical
// platform, expressed once in simulator timesteps and once as real
// sleeps/delays, must produce the same qualitative schedule. This ties the
// repository's two halves together — the simulator that reproduces the
// paper's numbers and the runtime that deploys the protocol.

import (
	"testing"
	"time"

	"bwcs/internal/engine"
	"bwcs/internal/protocol"
	"bwcs/internal/tree"
)

// TestSimAndLiveAgreeOnTaskSplit builds a platform with a strong, clear
// asymmetry — a fast-linked slow CPU, a slow-linked fast CPU, and a
// mid-everything child — and checks that the per-node ranking of computed
// tasks matches between the simulator and the live runtime. Rankings (not
// exact counts) are robust to wall-clock noise.
func TestSimAndLiveAgreeOnTaskSplit(t *testing.T) {
	const tasks = 90
	const step = 2 * time.Millisecond // one simulator timestep in wall time

	// Platform: root w=40; A (c=1, w=4), B (c=12, w=2), C (c=4, w=8).
	tr := tree.New(40)
	tr.AddChild(tr.Root(), 4, 1)  // A: fast link
	tr.AddChild(tr.Root(), 2, 12) // B: fast CPU, slow link
	tr.AddChild(tr.Root(), 8, 4)  // C: middling

	sim, err := engine.Run(engine.Config{Tree: tr, Protocol: protocol.Interruptible(3), Tasks: tasks})
	if err != nil {
		t.Fatalf("engine: %v", err)
	}

	sleepCompute := func(w int64) ComputeFunc {
		return func(Task) ([]byte, error) {
			time.Sleep(time.Duration(w) * step)
			return nil, nil
		}
	}
	delays := map[string]time.Duration{
		"A": 1 * step,
		"B": 12 * step,
		"C": 4 * step,
	}
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:   sleepCompute(40),
		LinkDelay: func(child string) time.Duration { return delays[child] },
		ChunkSize: 1 << 20, // one chunk per task: the delay is the whole c
	})
	workers := map[string]*Node{}
	for name, w := range map[string]int64{"A": 4, "B": 2, "C": 8} {
		workers[name] = startNode(t, Config{Name: name, Parent: root.Addr(), Buffers: 3, Compute: sleepCompute(w)})
	}
	if _, err := root.RunTimeout(makeTasks(tasks, 64), 120*time.Second); err != nil {
		t.Fatalf("live run: %v", err)
	}

	simCounts := map[string]int64{
		"A": sim.Nodes[1].Computed,
		"B": sim.Nodes[2].Computed,
		"C": sim.Nodes[3].Computed,
	}
	liveCounts := map[string]int64{}
	for name, w := range workers {
		liveCounts[name] = w.Stats().Computed
	}
	t.Logf("sim split: %v, live split: %v (root sim %d)", simCounts, liveCounts, sim.Nodes[0].Computed)

	// The fast-linked child dominates in both worlds.
	for _, counts := range []map[string]int64{simCounts, liveCounts} {
		if counts["A"] <= counts["B"] {
			t.Fatalf("A (fast link) did not beat B (slow link): %v", counts)
		}
		if counts["A"] <= counts["C"] {
			t.Fatalf("A (fast link) did not beat C: %v", counts)
		}
	}
	// And the simulator's winner is the live runtime's winner.
	simWinner, liveWinner := argmax(simCounts), argmax(liveCounts)
	if simWinner != liveWinner {
		t.Fatalf("winners disagree: sim %s, live %s", simWinner, liveWinner)
	}
}

// TestSimAndLiveAgreeOnDeparture cross-validates the failure-recovery
// semantics: the engine's DepartMutation (a subtree leaves mid-run, its
// tasks requeue at the root) against the live runtime's recovery from a
// severed link with reconnection disabled — the same logical event. Both
// worlds must complete every task anyway, and both must record requeues.
func TestSimAndLiveAgreeOnDeparture(t *testing.T) {
	const tasks = 90

	// Platform: root w=30 with two equal children; one departs mid-run.
	tr := tree.New(30)
	tr.AddChild(tr.Root(), 3, 1) // A: stays
	tr.AddChild(tr.Root(), 3, 1) // D: departs after 30 tasks

	sim, err := engine.Run(engine.Config{
		Tree: tr, Protocol: protocol.Interruptible(3), Tasks: tasks,
		Departures: []engine.DepartMutation{{AfterTasks: 30, Node: 2}},
	})
	if err != nil {
		t.Fatalf("engine with departure: %v", err)
	}
	if got := int64(len(sim.Completions)); got != tasks {
		t.Fatalf("engine completed %d of %d tasks after the departure", got, tasks)
	}
	if sim.Requeued == 0 {
		t.Fatalf("engine departure requeued nothing")
	}
	if !sim.Nodes[2].Departed {
		t.Fatalf("node 2 not marked departed")
	}

	// Live: the same shape. D's uplink is severed by a scripted fault and
	// its reconnection is disabled, so the sever is a permanent departure;
	// the root reclaims after a short grace window.
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(30 * time.Millisecond),
		ChunkSize:      256,
		ReconnectGrace: 50 * time.Millisecond,
	})
	a := startNode(t, Config{
		Name: "A", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(3 * time.Millisecond),
	})
	d := startNode(t, Config{
		Name: "D", Parent: root.Addr(), Buffers: 3, Compute: echoCompute(3 * time.Millisecond),
		ChunkSize: 256,
		Faults: NewFaultPlan(FaultRule{
			Link: "parent", Dir: FaultRecv, Kind: FrameChunk,
			After: 40, Op: FaultSever,
		}),
		ReconnectAttempts: -1, // a severed link is a permanent departure
	})
	results, err := root.RunTimeout(makeTasks(tasks, 2048), 60*time.Second)
	if err != nil {
		t.Fatalf("live run across the departure: %v", err)
	}
	if len(results) != tasks {
		t.Fatalf("live completed %d of %d tasks after the departure", len(results), tasks)
	}
	if got := root.Stats().Requeued; got == 0 {
		t.Fatalf("live departure requeued nothing")
	}
	if a.Stats().Computed == 0 {
		t.Fatalf("the surviving worker computed nothing")
	}
	if d.Err() == nil {
		t.Fatalf("the departed worker should have declared its parent lost")
	}
	t.Logf("requeued: sim %d, live %d; departed worker computed %d before the sever",
		sim.Requeued, root.Stats().Requeued, d.Stats().Computed)
}

func argmax(m map[string]int64) string {
	best, bestV := "", int64(-1)
	for k, v := range m {
		if v > bestV || (v == bestV && k < best) {
			best, bestV = k, v
		}
	}
	return best
}
