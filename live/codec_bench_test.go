package live

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"io"
	"testing"
)

// benchFrames is the steady-state frame mix of a busy link: payload
// chunks dominate, with their acks and the result round-trip riding
// along. The chunk carries the default 4096-byte payload slice.
func benchFrames() []message {
	data := bytes.Repeat([]byte{0xA5}, 4096)
	out := bytes.Repeat([]byte{0x5A}, 1024)
	return []message{
		{Kind: kindChunk, Seq: 101, Task: 7, Size: 65536, Offset: 40960,
			Data: data, App: "alpha", TraceNode: "root", TraceSeq: 33},
		{Kind: kindChunkAck, Seq: 102, Task: 7, Offset: 45056, TraceNode: "w1", TraceSeq: 12},
		{Kind: kindResult, Seq: 103, Task: 6, Origin: "w1", App: "alpha",
			Output: out, TraceNode: "w1", TraceSeq: 11},
		{Kind: kindResultAck, Seq: 104, Task: 6, Origin: "w1", TraceNode: "root", TraceSeq: 34},
	}
}

// BenchmarkEncodeFrame pits the two wire codecs against each other on
// the steady-state frame mix, the way each is actually driven: binary
// re-uses the conn's append buffer, gob keeps one persistent encoder
// per conn (its type dictionary is sent once, like on a long-lived
// link) writing through the conn's scratch copy.
func BenchmarkEncodeFrame(b *testing.B) {
	mix := benchFrames()

	b.Run("binary", func(b *testing.B) {
		var buf []byte
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := &mix[i%len(mix)]
			var err error
			buf, err = appendFrame(buf[:0], m)
			if err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob", func(b *testing.B) {
		enc := gob.NewEncoder(io.Discard)
		var scratch message
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			scratch = mix[i%len(mix)]
			if err := enc.Encode(&scratch); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDecodeFrame measures the read side over a pre-encoded
// stream: binary through readFrame + decodeFrame with the conn's
// reusable buffers and interner, gob through a persistent decoder whose
// re-creation on stream wrap is amortized over streamFrames messages
// (a reconnect every streamFrames frames, far more often than reality).
func BenchmarkDecodeFrame(b *testing.B) {
	const streamFrames = 4096
	mix := benchFrames()

	b.Run("binary", func(b *testing.B) {
		var stream []byte
		for i := 0; i < streamFrames; i++ {
			var err error
			stream, err = appendFrame(stream, &mix[i%len(mix)])
			if err != nil {
				b.Fatal(err)
			}
		}
		r := bytes.NewReader(stream)
		br := bufio.NewReaderSize(r, 32<<10)
		var (
			rbuf []byte
			m    message
			in   interner
		)
		b.SetBytes(int64(len(stream) / streamFrames))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%streamFrames == 0 {
				r.Reset(stream)
				br.Reset(r)
			}
			body, err := readFrame(br, rbuf)
			rbuf = body[:cap(body)]
			if err != nil {
				b.Fatal(err)
			}
			if err := decodeFrame(body, &m, &in); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("gob", func(b *testing.B) {
		var stream bytes.Buffer
		enc := gob.NewEncoder(&stream)
		for i := 0; i < streamFrames; i++ {
			if err := enc.Encode(&mix[i%len(mix)]); err != nil {
				b.Fatal(err)
			}
		}
		raw := stream.Bytes()
		r := bytes.NewReader(raw)
		dec := gob.NewDecoder(r)
		b.SetBytes(int64(len(raw) / streamFrames))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%streamFrames == 0 {
				r.Reset(raw)
				dec = gob.NewDecoder(r)
			}
			var m message
			if err := dec.Decode(&m); err != nil {
				b.Fatal(err)
			}
		}
	})
}
