package live

import "time"

// Option configures a node started with Start. Each option documents its
// default; a node started with no options beyond the required WithCompute
// is a leaf root with the paper's headline parameters.
type Option func(*Config)

// WithListen sets the address the node accepts children on; default none
// (the node is a leaf). Use "127.0.0.1:0" to pick a free port (see
// Node.Addr).
func WithListen(addr string) Option {
	return func(c *Config) { c.Listen = addr }
}

// WithParent sets the parent node's address; default none (the node is
// the root).
func WithParent(addr string) Option {
	return func(c *Config) { c.Parent = addr }
}

// WithBuffers sets the number of task buffers (the paper's FB); default
// 3, the paper's headline value.
func WithBuffers(n int) Option {
	return func(c *Config) { c.Buffers = n }
}

// WithCompute sets the function that executes tasks; required.
func WithCompute(fn ComputeFunc) Option {
	return func(c *Config) { c.Compute = fn }
}

// WithChunkSize sets the payload slice streamed per send-port turn;
// default 4096 bytes.
func WithChunkSize(bytes int) Option {
	return func(c *Config) { c.ChunkSize = bytes }
}

// NonInterruptible disables chunk-level preemption at the send port (the
// paper's non-IC variant); default interruptible.
func NonInterruptible() Option {
	return func(c *Config) { c.NonInterruptible = true }
}

// WithLinkDelay adds an artificial delay before each chunk sent to the
// named child — a deterministic stand-in for heterogeneous link bandwidth
// in tests and demos; default none.
func WithLinkDelay(fn func(childName string) time.Duration) Option {
	return func(c *Config) { c.LinkDelay = fn }
}

// WithHeartbeat sets per-link supervision: each link sends a heartbeat
// every interval, and a link silent inbound for misses consecutive
// intervals is declared dead and severed, triggering recovery (requeue at
// the parent, reconnect at the child). Defaults: interval 1s, misses 3.
// A negative interval disables heartbeats.
func WithHeartbeat(interval time.Duration, misses int) Option {
	return func(c *Config) {
		c.HeartbeatInterval = interval
		c.HeartbeatMisses = misses
	}
}

// WithWriteTimeout bounds every outbound frame by a per-message write
// deadline, replacing unbounded blocking on a stalled peer; default 10s.
// Negative disables the deadline.
func WithWriteTimeout(d time.Duration) Option {
	return func(c *Config) { c.WriteTimeout = d }
}

// WithReconnect configures the capped exponential backoff a disconnected
// non-root node uses to re-dial its parent: attempt k sleeps
// min(base<<(k-1), cap). Defaults: base 100ms, cap 2s, attempts 5.
// attempts < 0 disables reconnection (a lost parent link is fatal, the
// pre-fault-tolerance behavior).
func WithReconnect(base, cap time.Duration, attempts int) Option {
	return func(c *Config) {
		c.ReconnectBase = base
		c.ReconnectCap = cap
		c.ReconnectAttempts = attempts
	}
}

// WithReconnectGrace sets how long a parent keeps a dead child's session
// (its in-flight transfer and un-returned tasks) revivable before
// reclaiming and requeueing everything for re-dispatch; default 5s.
// Negative reclaims immediately. A child that reconnects within the
// grace window resumes its interrupted transfer from the last
// acknowledged chunk; one that announced a deliberate departure is
// reclaimed immediately regardless.
func WithReconnectGrace(d time.Duration) Option {
	return func(c *Config) { c.ReconnectGrace = d }
}

// WithResultRetry sets how long a result may sit unacknowledged on a
// live uplink before the ledger retransmits it; default 2s. Negative
// disables retransmission — unacked results then replay only after a
// reconnect. Duplicates either way are suppressed by the parent's
// dedupe, so delivery stays exactly-once.
func WithResultRetry(d time.Duration) Option {
	return func(c *Config) { c.ResultRetry = d }
}

// WithAppWeights sets per-application sharing weights: when tasks of
// several applications sit buffered at once, the node dispatches them by
// weighted round-robin over the applications present, proportional to
// these weights (missing or non-positive entries weigh 1; default all 1,
// plain round-robin among tenants). Child selection stays purely
// bandwidth-centric — weights decide whose task moves, not where.
func WithAppWeights(weights map[string]int64) Option {
	return func(c *Config) { c.AppWeights = weights }
}

// WithWireCodecs pins the wire codec versions this node offers in its
// hello (as a child) and accepts (as a parent); default all codecs this
// build speaks, currently gob and the length-prefixed binary framing.
// The handshake picks the highest version both peers offer and falls
// back to gob, so pinning only CodecGob forces the legacy stream on
// every link of this node in both directions.
func WithWireCodecs(codecs ...Codec) Option {
	return func(c *Config) { c.WireCodecs = codecs }
}

// WithChunkBatch sets how many chunks of one transfer the send port
// writes per port turn on a binary-codec link (one buffer, one syscall);
// default 8, negative forces single-chunk turns. Preemption happens
// between turns, so a larger batch trades preemption granularity for
// throughput. A LinkDelay forces single-chunk turns regardless, keeping
// the emulated per-chunk delay faithful.
func WithChunkBatch(chunks int) Option {
	return func(c *Config) { c.ChunkBatch = chunks }
}

// WithHandshakeTimeout bounds the hello / hello-ack exchange on each
// side of a connection; default 5s.
func WithHandshakeTimeout(d time.Duration) Option {
	return func(c *Config) { c.HandshakeTimeout = d }
}

// WithFaultPlan installs a deterministic fault-injection script consulted
// on every frame this node sends or receives; default none. See
// FaultPlan.
func WithFaultPlan(p *FaultPlan) Option {
	return func(c *Config) { c.Faults = p }
}

// WithRecorderCapacity sets the flight recorder's ring capacity in
// events; default 8192, negative disables the recorder entirely. When the
// ring wraps, the oldest events are evicted and counted in
// Stats.RecorderDropped (live_recorder_dropped_total on /metrics), so a
// dump always holds the most recent window. Dumps are served by
// /debug/events and Node.TraceDump.
func WithRecorderCapacity(events int) Option {
	return func(c *Config) { c.RecorderCap = events }
}

// WithTimelineInterval sets the telemetry sampling cadence: every
// interval the node records its task and wire byte rates and buffered
// depth into the bounded series /timeline serves (and streams with
// ?follow=1). Default 1s; negative disables sampling.
func WithTimelineInterval(d time.Duration) Option {
	return func(c *Config) { c.TimelineInterval = d }
}

// Start launches a node named name. A root only needs a compute function:
//
//	root, err := live.Start("root",
//		live.WithListen("127.0.0.1:0"),
//		live.WithCompute(fn))
//
// Workers join by address — live.Start("w1", live.WithParent(root.Addr()),
// live.WithCompute(fn)) — and request work autonomously. Defaults are
// documented on each Option.
func Start(name string, opts ...Option) (*Node, error) {
	cfg := Config{Name: name}
	for _, opt := range opts {
		opt(&cfg)
	}
	if cfg.Buffers == 0 {
		cfg.Buffers = 3
	}
	return StartConfig(cfg)
}
