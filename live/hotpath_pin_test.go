package live

import (
	"bufio"
	"bytes"
	"testing"
)

// TestHotPathAllocsPinned is the runtime half of the bwvet hotpathalloc
// contract for this package: the steady-state codec path — appendFrame,
// readFrame and decodeFrame over the data-plane frames (kindChunk and
// kindChunkAck), plus the field helpers and interner under them — runs
// allocation-free once the buffers and the interner are warm. The static
// analyzer proves no allocating construct appears in the source; this
// probe proves the toolchain agrees at run time (see
// internal/lint/hotpath_audit_test.go for the annotation-to-probe
// cross-check). kindResult is deliberately absent: its decode copies the
// output payload by design (rawCopy), which is a reasoned ignore in
// codec.go, not a zero-alloc path.
func TestHotPathAllocsPinned(t *testing.T) {
	payload := bytes.Repeat([]byte{0xAB}, 512)
	chunk := message{Kind: kindChunk, Seq: 9, Task: 41, Size: 2048, Offset: 512,
		Last: false, App: "appA", Data: payload, TraceNode: "parent", TraceSeq: 3}
	ack := message{Kind: kindChunkAck, Seq: 10, Task: 41, Offset: 1024, Last: true,
		TraceNode: "child", TraceSeq: 4}

	var (
		wbuf []byte
		body []byte
		in   interner
		out  message
		src  bytes.Reader
		br   = bufio.NewReader(&src)
	)
	cycle := func() {
		wbuf = wbuf[:0]
		var err error
		if wbuf, err = appendFrame(wbuf, &chunk); err != nil {
			t.Fatalf("appendFrame(chunk): %v", err)
		}
		if wbuf, err = appendFrame(wbuf, &ack); err != nil {
			t.Fatalf("appendFrame(ack): %v", err)
		}
		src.Reset(wbuf)
		br.Reset(&src)
		for i := 0; i < 2; i++ {
			if body, err = readFrame(br, body); err != nil {
				t.Fatalf("readFrame: %v", err)
			}
			if err = decodeFrame(body, &out, &in); err != nil {
				t.Fatalf("decodeFrame: %v", err)
			}
		}
		if out.Kind != kindChunkAck || out.Task != 41 || !out.Last {
			t.Fatalf("round trip corrupted the ack: %+v", out)
		}
	}
	cycle() // warm: grows wbuf/body once, interns "appA"/"parent"/"child"
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("warm codec round trip allocates %.0f times, want 0 (hotpathalloc contract)", allocs)
	}
}
