package live

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestRecorderWrapExact asserts the ring's eviction accounting is exact:
// after writing more events than the capacity, dropped is precisely the
// overflow, the snapshot holds exactly the newest cap events in order,
// and since() resumes across eviction gaps without duplicates.
func TestRecorderWrapExact(t *testing.T) {
	const capacity, writes = 16, 45
	r := newFlightRecorder(capacity)
	for i := 1; i <= writes; i++ {
		if seq := r.add(Event{Kind: EvRequestSent, Value: int64(i)}); seq != uint64(i) {
			t.Fatalf("event %d got seq %d", i, seq)
		}
	}
	if got, want := r.dropped(), int64(writes-capacity); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
	evs, dropped := r.snapshot()
	if dropped != int64(writes-capacity) {
		t.Fatalf("snapshot dropped = %d, want %d", dropped, writes-capacity)
	}
	if len(evs) != capacity {
		t.Fatalf("snapshot holds %d events, want %d", len(evs), capacity)
	}
	for i, e := range evs {
		wantSeq := uint64(writes - capacity + 1 + i)
		if e.Seq != wantSeq || e.Value != int64(wantSeq) {
			t.Fatalf("snapshot[%d] = seq %d value %d, want seq %d", i, e.Seq, e.Value, wantSeq)
		}
	}

	// A follower that fell behind the eviction horizon skips the gap and
	// resumes at the oldest retained event.
	got, cursor := r.since(5)
	if len(got) != capacity || got[0].Seq != uint64(writes-capacity+1) || cursor != writes {
		t.Fatalf("since(5): %d events from seq %d cursor %d", len(got), got[0].Seq, cursor)
	}
	// Caught up: nothing new.
	if more, c2 := r.since(cursor); len(more) != 0 || c2 != cursor {
		t.Fatalf("since(caught-up) returned %d events cursor %d", len(more), c2)
	}
	// One more write: exactly one event, exactly one more eviction.
	r.add(Event{Kind: EvRequestSent, Value: writes + 1})
	more, _ := r.since(cursor)
	if len(more) != 1 || more[0].Seq != writes+1 {
		t.Fatalf("since after one write: %+v", more)
	}
	if got := r.dropped(); got != int64(writes+1-capacity) {
		t.Fatalf("dropped after one more write = %d", got)
	}
}

// TestRecorderDisabled pins that a negative capacity turns recording off
// entirely: no events, no dumps, no counter.
func TestRecorderDisabled(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(0), RecorderCap: -1})
	if evs := root.Events(); evs != nil {
		t.Fatalf("disabled recorder returned %d events", len(evs))
	}
	if d := root.TraceDump(); d.Events != nil || d.Node != "root" {
		t.Fatalf("disabled recorder dump: %+v", d)
	}
	if _, err := root.Run(nil, makeTasks(3, 256)); err != nil {
		t.Fatalf("run with recorder disabled: %v", err)
	}
	if s := root.Stats(); s.RecorderDropped != 0 {
		t.Fatalf("disabled recorder dropped %d", s.RecorderDropped)
	}
}

// TestRecorderConcurrentFollow drives a two-node overlay under -race with
// every frame-handling goroutine writing events while a ?follow=1 reader
// streams them: the stream must be valid NDJSON with strictly increasing
// sequence numbers, and the final Stats must surface exact eviction
// counts from the deliberately tiny ring.
func TestRecorderConcurrentFollow(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(time.Millisecond), RecorderCap: 64})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	startNode(t, Config{Name: "w1", Parent: root.Addr(), Buffers: 2,
		Compute: echoCompute(time.Millisecond), RecorderCap: 64})

	var wg sync.WaitGroup
	wg.Add(1)
	streamed := make([]Event, 0, 1024)
	var streamErr error
	go func() {
		defer wg.Done()
		resp, err := http.Get(fmt.Sprintf("http://%s/debug/events?follow=1", addr))
		if err != nil {
			streamErr = err
			return
		}
		defer resp.Body.Close()
		sc := bufio.NewScanner(resp.Body)
		var lastSeq uint64
		for sc.Scan() {
			var e Event
			if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
				streamErr = fmt.Errorf("bad NDJSON line %q: %w", sc.Text(), err)
				return
			}
			if e.Seq <= lastSeq {
				streamErr = fmt.Errorf("seq went %d -> %d", lastSeq, e.Seq)
				return
			}
			lastSeq = e.Seq
			streamed = append(streamed, e)
		}
	}()

	if _, err := root.RunTimeout(makeTasks(60, 2048), 30*time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}
	root.Close() // ends the follow stream
	wg.Wait()
	if streamErr != nil {
		t.Fatalf("follow stream: %v", streamErr)
	}
	if len(streamed) == 0 {
		t.Fatal("follow stream saw no events")
	}

	// The tiny ring must have wrapped, and the counter must be exact:
	// total recorded = retained + dropped.
	s := root.Stats()
	dump := root.TraceDump()
	if s.RecorderDropped != dump.Dropped {
		t.Fatalf("Stats.RecorderDropped %d != dump.Dropped %d", s.RecorderDropped, dump.Dropped)
	}
	if len(dump.Events) > 0 {
		lastSeq := dump.Events[len(dump.Events)-1].Seq
		if total := uint64(len(dump.Events)) + uint64(dump.Dropped); total != lastSeq {
			t.Fatalf("retained %d + dropped %d != last seq %d", len(dump.Events), dump.Dropped, lastSeq)
		}
	}
	if s.RecorderDropped == 0 {
		t.Fatalf("ring of 64 never wrapped over a 60-task run")
	}
}

// TestRecorderJourneyEvents runs a two-node overlay and asserts the root's
// recorder holds a complete outbound journey for some task — dispatch,
// delivery ack, result receive, collection — and the worker's recorder the
// inbound one, with the wire-carried causality pointing at real events.
func TestRecorderJourneyEvents(t *testing.T) {
	root := startNode(t, Config{Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(50 * time.Millisecond)})
	w1 := startNode(t, Config{Name: "w1", Parent: root.Addr(), Buffers: 2,
		Compute: echoCompute(time.Millisecond)})
	if _, err := root.RunTimeout(makeTasks(8, 1024), 30*time.Second); err != nil {
		t.Fatalf("run: %v", err)
	}

	rootKinds := map[EventKind][]Event{}
	for _, e := range root.Events() {
		rootKinds[e.Kind] = append(rootKinds[e.Kind], e)
	}
	w1Kinds := map[EventKind][]Event{}
	w1Seqs := map[uint64]Event{}
	for _, e := range w1.Events() {
		w1Kinds[e.Kind] = append(w1Kinds[e.Kind], e)
		w1Seqs[e.Seq] = e
	}
	for _, k := range []EventKind{EvHello, EvRequestServed, EvChunkSend, EvChunkAck, EvResultRecv, EvResultCollect} {
		if len(rootKinds[k]) == 0 {
			t.Errorf("root recorded no %v events", k)
		}
	}
	for _, k := range []EventKind{EvHello, EvHelloAck, EvRequestSent, EvChunkRecv, EvTaskReceived, EvComputeStart, EvComputeDone, EvResultSend, EvResultAck} {
		if len(w1Kinds[k]) == 0 {
			t.Errorf("w1 recorded no %v events", k)
		}
	}
	// Causality: the root's result-recv events must name real w1 events of
	// the result-send/replay kinds.
	for _, e := range rootKinds[EvResultRecv] {
		if e.CausePeer != "w1" || e.CauseSeq == 0 {
			t.Errorf("result-recv without wire causality: %+v", e)
			continue
		}
		cause, ok := w1Seqs[e.CauseSeq]
		if !ok {
			t.Errorf("result-recv names w1#%d, which w1 did not record", e.CauseSeq)
			continue
		}
		if cause.Kind != EvResultSend && cause.Kind != EvResultReplay {
			t.Errorf("result-recv caused by %v, want result-send/replay", cause.Kind)
		}
		if cause.Task != e.Task {
			t.Errorf("result-recv task %d caused by send of task %d", e.Task, cause.Task)
		}
	}
	// And the worker's chunk-recv events must name the root's dispatches.
	for _, e := range w1Kinds[EvChunkRecv] {
		if e.CausePeer != "root" || e.CauseSeq == 0 {
			t.Errorf("chunk-recv without wire causality: %+v", e)
		}
	}
}
