package live

// Multi-application (multi-tenant) tests: application tags must survive
// every hop of the overlay — chunked transfers, result relay, sever,
// revive, and re-execution — with per-app exactly-once delivery and
// per-app counters that add up.

import (
	"bytes"
	"encoding/gob"
	"testing"
	"time"
)

// makeAppTasks builds n tasks alternating round-robin over the given
// application names (task i gets apps[i%len(apps)]).
func makeAppTasks(n, size int, apps ...string) []Task {
	tasks := makeTasks(n, size)
	for i := range tasks {
		tasks[i].App = apps[i%len(apps)]
	}
	return tasks
}

// TestTwoAppsShareOverlay runs two tenants through a two-worker overlay
// and checks attribution end to end: every result carries its task's app
// tag, per-app collection counts are exact, and the workers' per-app
// counters cover everything they computed.
func TestTwoAppsShareOverlay(t *testing.T) {
	const tasks = 40
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:    echoCompute(20 * time.Millisecond), // slow root: work flows down
		ChunkSize:  512,
		AppWeights: map[string]int64{"alpha": 2, "beta": 1},
	})
	w1 := startNode(t, Config{
		Name: "w1", Parent: root.Addr(), Buffers: 3,
		Compute: echoCompute(time.Millisecond),
	})
	w2 := startNode(t, Config{
		Name: "w2", Parent: root.Addr(), Buffers: 3,
		Compute: echoCompute(time.Millisecond),
	})

	in := makeAppTasks(tasks, 2048, "alpha", "beta")
	results, err := root.RunTimeout(in, 30*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != tasks {
		t.Fatalf("results = %d, want %d", len(results), tasks)
	}
	wantApp := make(map[uint64]string, tasks)
	for _, task := range in {
		wantApp[task.ID] = task.App
	}
	got := map[string]int{}
	for _, r := range results {
		if r.App != wantApp[r.ID] {
			t.Fatalf("task %d returned with app %q, want %q", r.ID, r.App, wantApp[r.ID])
		}
		got[r.App]++
	}
	if got["alpha"] != tasks/2 || got["beta"] != tasks/2 {
		t.Fatalf("per-app result counts %v, want %d each", got, tasks/2)
	}

	st := root.Stats()
	if c := st.PerApp["alpha"].Collected + st.PerApp["beta"].Collected; c < tasks {
		t.Fatalf("root collected %d tagged results, want >= %d", c, tasks)
	}
	var workerComputed int64
	for _, w := range []*Node{w1, w2} {
		ws := w.Stats()
		for app, a := range ws.PerApp {
			if a.Computed != 0 && app != "alpha" && app != "beta" {
				t.Fatalf("%s computed tasks of unknown app %q", w.cfg.Name, app)
			}
			workerComputed += a.Computed
			if a.Received < a.Computed {
				t.Fatalf("%s app %s: received %d < computed %d", w.cfg.Name, app, a.Received, a.Computed)
			}
		}
		if ws.Computed != ws.PerApp["alpha"].Computed+ws.PerApp["beta"].Computed {
			t.Fatalf("%s: per-app computed does not sum to total", w.cfg.Name)
		}
	}
	rootStats := root.Stats()
	if rootStats.Computed+workerComputed < int64(tasks) {
		t.Fatalf("computed %d tasks overall, want >= %d", rootStats.Computed+workerComputed, tasks)
	}
}

// TestTwoAppsSeverReviveExactlyOnce is the multi-tenant acceptance
// scenario: two applications share a three-level overlay whose middle
// node is severed mid-run by a scripted fault. Tasks of both tenants are
// reclaimed, re-dispatched, and possibly re-executed — yet each tenant's
// results arrive exactly once, still carrying the right app tag.
func TestTwoAppsSeverReviveExactlyOnce(t *testing.T) {
	const tasks = 60

	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:        echoCompute(25 * time.Millisecond),
		ChunkSize:      256,
		ReconnectGrace: -1, // reclaim a dead child's tasks immediately
		AppWeights:     map[string]int64{"alpha": 1, "beta": 3},
	})
	sever := NewFaultPlan(FaultRule{
		Link: "parent", Dir: FaultRecv, Kind: FrameChunk,
		After: 15, Op: FaultSever,
	})
	mid := startNode(t, Config{
		Name: "mid", Parent: root.Addr(), Listen: "127.0.0.1:0", Buffers: 3,
		Compute:       echoCompute(5 * time.Millisecond),
		ChunkSize:     256,
		Faults:        sever,
		ReconnectBase: 50 * time.Millisecond, ReconnectCap: 200 * time.Millisecond, ReconnectAttempts: 10,
	})
	leaf := startNode(t, Config{
		Name: "leaf", Parent: mid.Addr(), Buffers: 3,
		Compute: echoCompute(2 * time.Millisecond),
	})

	in := makeAppTasks(tasks, 2048, "alpha", "beta")
	results, err := root.RunTimeout(in, 60*time.Second)
	if err != nil {
		t.Fatalf("Run across the sever: %v", err)
	}
	if len(results) != tasks {
		t.Fatalf("results = %d, want %d", len(results), tasks)
	}

	// Per-app exactly-once: every ID once, under its own app tag.
	wantApp := make(map[uint64]string, tasks)
	for _, task := range in {
		wantApp[task.ID] = task.App
	}
	seen := make(map[uint64]bool, tasks)
	perApp := map[string]int{}
	for _, r := range results {
		if seen[r.ID] {
			t.Fatalf("task %d delivered twice", r.ID)
		}
		seen[r.ID] = true
		if r.App != wantApp[r.ID] {
			t.Fatalf("task %d returned with app %q, want %q (tag lost across sever/revive)", r.ID, r.App, wantApp[r.ID])
		}
		perApp[r.App]++
	}
	if perApp["alpha"] != tasks/2 || perApp["beta"] != tasks/2 {
		t.Fatalf("per-app delivery %v, want %d each", perApp, tasks/2)
	}

	if sever.Pending() != 0 {
		t.Fatalf("the scripted sever never fired")
	}
	st := root.Stats()
	if st.Requeued == 0 {
		t.Fatalf("root reclaimed nothing from the severed subtree")
	}
	// Requeues carry attribution: the tagged requeue counters must account
	// for every reclaimed task (all tasks in this run are tagged).
	var requeuedTagged int64
	for _, a := range st.PerApp {
		requeuedTagged += a.Requeued
	}
	if requeuedTagged != st.Requeued {
		t.Fatalf("per-app requeued %d != total %d", requeuedTagged, st.Requeued)
	}
	if mid.Stats().Reconnects == 0 {
		t.Fatalf("mid never reconnected")
	}
	if leaf.Stats().Computed == 0 {
		t.Fatalf("leaf never worked")
	}
	t.Logf("requeued %d (tagged %d), per-app %v", st.Requeued, requeuedTagged, perApp)
}

// TestWeightedDispatchOrder pins the WRR pop deterministically: with a
// mixed buffer and weights 3:1, popTaskLocked serves the heavy app three
// times as often, in the smooth-WRR order, while a uniform buffer stays
// strict FIFO.
func TestWeightedDispatchOrder(t *testing.T) {
	n := &Node{cfg: Config{AppWeights: map[string]int64{"heavy": 3, "light": 1}}}
	for i := 0; i < 8; i++ {
		app := "heavy"
		if i >= 6 {
			app = "light"
		}
		n.buffer = append(n.buffer, Task{ID: uint64(i + 1), App: app})
	}
	var order []string
	for len(n.buffer) > 0 {
		order = append(order, n.popTaskLocked().App)
	}
	// Smooth WRR with weights 3:1 over 4 slots: heavy, heavy, light, heavy.
	want := []string{"heavy", "heavy", "light", "heavy", "heavy", "heavy", "light", "heavy"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", order, want)
		}
	}

	// Uniform buffer: FIFO, no credit ledger involvement.
	n2 := &Node{}
	for i := 0; i < 4; i++ {
		n2.buffer = append(n2.buffer, Task{ID: uint64(i + 1), App: "only"})
	}
	for i := 0; i < 4; i++ {
		if got := n2.popTaskLocked().ID; got != uint64(i+1) {
			t.Fatalf("uniform buffer popped %d at %d", got, i)
		}
	}
	if n2.appCredit != nil {
		t.Fatalf("uniform buffer built a credit ledger")
	}
}

// TestPerAppMetricsExposition asserts the /metrics per-application
// families: a tagged run exposes one labeled sample per app per family,
// equal to the Stats.PerApp counters (an untagged run exposes none —
// covered by TestMetricsEndpointMatchesStats's full-exposition sweep).
func TestPerAppMetricsExposition(t *testing.T) {
	root := startNode(t, Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 2,
		Compute: echoCompute(2 * time.Millisecond),
	})
	addr, err := root.ServeStatus("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServeStatus: %v", err)
	}
	if _, err := root.RunTimeout(makeAppTasks(20, 256, "alpha", "beta"), 30*time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	got := scrape(t, "http://"+addr+"/metrics")
	st := root.Stats()
	for app, a := range st.PerApp {
		for name, want := range map[string]int64{
			"live_app_tasks_computed_total":    a.Computed,
			"live_app_results_collected_total": a.Collected,
			"live_app_tasks_forwarded_total":   a.Forwarded,
			"live_app_tasks_received_total":    a.Received,
			"live_app_tasks_requeued_total":    a.Requeued,
			"live_app_results_deduped_total":   a.Deduped,
		} {
			key := name + `{app="` + app + `"}`
			if got[key] != want {
				t.Errorf("%s = %d, want %d", key, got[key], want)
			}
		}
	}
	if st.PerApp["alpha"].Computed+st.PerApp["beta"].Computed != 20 {
		t.Fatalf("per-app computed %v does not cover the run", st.PerApp)
	}
}

// preAppMessage is the wire envelope as it existed before the App tag was
// appended (PR 5's trace-context layout). Gob ignores fields either side
// does not declare, so old frames must decode with an empty App and
// tagged frames must decode on old peers.
type preAppMessage struct {
	Kind      msgKind
	Name      string
	Resume    []ResumePoint
	Holding   []uint64
	Revived   bool
	Accepted  []uint64
	N         int
	Task      uint64
	Size      int
	Offset    int
	Data      []byte
	Last      bool
	Output    []byte
	Origin    string
	Seq       uint64
	TraceNode string
	TraceSeq  uint64
}

// TestWireAppTagBackCompat pins both directions of the gob evolution
// contract for the appended App field.
func TestWireAppTagBackCompat(t *testing.T) {
	// Old peer → new node: a pre-app chunk decodes with an empty App.
	var buf bytes.Buffer
	old := preAppMessage{Kind: kindChunk, Task: 7, Size: 4, Offset: 0,
		Data: []byte{1, 2, 3, 4}, Last: true, Seq: 3, TraceNode: "p", TraceSeq: 2}
	if err := gob.NewEncoder(&buf).Encode(&old); err != nil {
		t.Fatalf("encode pre-app: %v", err)
	}
	var got message
	if err := gob.NewDecoder(&buf).Decode(&got); err != nil {
		t.Fatalf("decode pre-app into current message: %v", err)
	}
	if got.Kind != kindChunk || got.Task != 7 || !got.Last || got.TraceNode != "p" {
		t.Errorf("pre-app frame mangled: %+v", got)
	}
	if got.App != "" {
		t.Errorf("pre-app frame grew an app tag from nowhere: %q", got.App)
	}

	// New node → old peer: a tagged result decodes on a peer that does not
	// declare App.
	buf.Reset()
	tagged := message{Kind: kindResult, Task: 9, Output: []byte{5}, Origin: "w1",
		Seq: 42, TraceNode: "w1", TraceSeq: 17, App: "alpha"}
	if err := gob.NewEncoder(&buf).Encode(&tagged); err != nil {
		t.Fatalf("encode tagged: %v", err)
	}
	var back preAppMessage
	if err := gob.NewDecoder(&buf).Decode(&back); err != nil {
		t.Fatalf("decode tagged into pre-app message: %v", err)
	}
	if back.Kind != kindResult || back.Task != 9 || back.Origin != "w1" || back.TraceSeq != 17 {
		t.Errorf("tagged frame mangled on a pre-app peer: %+v", back)
	}

	// An untagged transfer (single-application run) must not fabricate an
	// app on assembly.
	tr := &inTransfer{id: 7}
	if _, err := tr.feed(&got); err != nil {
		t.Fatalf("feed: %v", err)
	}
	if tr.app != "" {
		t.Errorf("untagged transfer acquired app %q", tr.app)
	}
}
