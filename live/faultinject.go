package live

import (
	"sync"
	"time"
)

// This file is the deterministic fault-injection harness for the live
// runtime. A FaultPlan is a script of link failures — drop a frame, delay
// it, or sever the connection — attached to one node with WithFaultPlan.
// Faults fire at exact points in the node's frame sequence (the After'th
// matching frame on a named link), so recovery paths — requeue, reconnect
// with backoff, resume from the last acked chunk — are testable
// in-process with no real network misbehavior required.

// FrameKind selects wire frames in a FaultRule. The values mirror the
// wire protocol's message kinds; FrameAny matches every frame.
type FrameKind uint8

const (
	FrameAny       FrameKind = 0
	FrameHello     FrameKind = FrameKind(kindHello)
	FrameRequest   FrameKind = FrameKind(kindRequest)
	FrameChunk     FrameKind = FrameKind(kindChunk)
	FrameResult    FrameKind = FrameKind(kindResult)
	FrameShutdown  FrameKind = FrameKind(kindShutdown)
	FrameHeartbeat FrameKind = FrameKind(kindHeartbeat)
	FrameChunkAck  FrameKind = FrameKind(kindChunkAck)
	FrameHelloAck  FrameKind = FrameKind(kindHelloAck)
	FrameGoodbye   FrameKind = FrameKind(kindGoodbye)
	FrameResultAck FrameKind = FrameKind(kindResultAck)
)

// FaultDir selects which side of the node's connection a rule watches.
type FaultDir uint8

const (
	// FaultBoth matches frames in either direction.
	FaultBoth FaultDir = iota
	// FaultSend matches frames this node writes.
	FaultSend
	// FaultRecv matches frames this node reads.
	FaultRecv
)

// FaultOp is what happens when a rule fires.
type FaultOp uint8

const (
	faultNone FaultOp = iota
	// FaultDrop silently discards the frame (send: never written; recv:
	// never delivered).
	FaultDrop
	// FaultDelay stalls the frame by the rule's Delay before it proceeds.
	FaultDelay
	// FaultSever closes the connection mid-protocol, as a crash or
	// network partition would; the node's normal recovery machinery
	// (requeue, reconnect) takes over.
	FaultSever
)

// FaultRule scripts one fault. Zero-valued selectors are wildcards: an
// empty Link matches every link, FrameAny every frame kind, FaultBoth
// both directions.
type FaultRule struct {
	// Link names the remote end of the connection the rule watches: a
	// child's name, or "parent" for the uplink. Empty matches any link.
	Link string
	// Dir restricts the rule to frames sent or received by this node.
	Dir FaultDir
	// Kind restricts the rule to one frame kind.
	Kind FrameKind
	// After fires the rule on the After'th matching frame (1-based);
	// 0 means the first.
	After int
	// Repeat makes the rule fire on every matching frame from After
	// onward instead of exactly once.
	Repeat bool
	// Op is the fault to inject.
	Op FaultOp
	// Delay is the stall duration for FaultDelay.
	Delay time.Duration
}

// FaultPlan is a deterministic script of injected faults for one node.
// Install it with WithFaultPlan; it is consulted on every frame the node
// sends or receives. A nil *FaultPlan injects nothing.
type FaultPlan struct {
	mu    sync.Mutex
	rules []faultRuleState
}

type faultRuleState struct {
	FaultRule
	seen  int
	fired bool
}

// NewFaultPlan builds a plan from rules; rules are evaluated in order and
// the first one that fires on a frame decides its fate.
func NewFaultPlan(rules ...FaultRule) *FaultPlan {
	p := &FaultPlan{rules: make([]faultRuleState, len(rules))}
	for i, r := range rules {
		if r.After < 1 {
			r.After = 1
		}
		p.rules[i].FaultRule = r
	}
	return p
}

// Pending reports how many rules have not fired yet — zero means the
// script ran to completion (Repeat rules count as fired after their first
// match).
func (p *FaultPlan) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for i := range p.rules {
		if !p.rules[i].fired {
			n++
		}
	}
	return n
}

// decide matches one frame against the script and returns the fault to
// inject, if any.
func (p *FaultPlan) decide(dir FaultDir, link string, kind FrameKind) (FaultOp, time.Duration) {
	if p == nil {
		return faultNone, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range p.rules {
		r := &p.rules[i]
		if r.fired && !r.Repeat {
			continue
		}
		if r.Link != "" && r.Link != link {
			continue
		}
		if r.Dir != FaultBoth && r.Dir != dir {
			continue
		}
		if r.Kind != FrameAny && r.Kind != kind {
			continue
		}
		r.seen++
		if r.seen < r.After {
			continue
		}
		r.fired = true
		return r.Op, r.Delay
	}
	return faultNone, 0
}
