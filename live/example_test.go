package live_test

import (
	"context"
	"fmt"
	"log"
	"time"

	"bwcs/live"
)

// A minimal two-node overlay over loopback TCP: the root dispatches ten
// tasks; the worker joins by address and requests work autonomously. Only
// the (deterministic) result count is asserted — how the ten tasks split
// between the two CPUs depends on wall-clock timing.
func Example() {
	root, err := live.Start("root",
		live.WithListen("127.0.0.1:0"),
		live.WithCompute(func(t live.Task) ([]byte, error) {
			time.Sleep(5 * time.Millisecond) // the root's own CPU
			return t.Payload, nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()

	worker, err := live.Start("worker",
		live.WithParent(root.Addr()), // join by address — nothing else to configure
		live.WithCompute(func(t live.Task) ([]byte, error) {
			time.Sleep(time.Millisecond)
			return t.Payload, nil
		}),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer worker.Close()

	tasks := make([]live.Task, 10)
	for i := range tasks {
		tasks[i] = live.Task{ID: uint64(i + 1), Payload: []byte("work unit")}
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	results, err := root.Run(ctx, tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(results), "results collected")
	// Output: 10 results collected
}
