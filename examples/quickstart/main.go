// Quickstart: build a small heterogeneous platform, compute its provably
// optimal steady-state rate, run the paper's autonomous IC protocol with 3
// buffers, and check that the protocol attains the optimum using only
// local information.
package main

import (
	"fmt"
	"log"

	"bwcs"
)

func main() {
	// A root (the data repository) with a moderate CPU, one child with a
	// fast link, one with a fast CPU behind a slow link, and a grandchild.
	t := bwcs.NewTree(10)
	fast := t.AddChild(t.Root(), 5, 1) // w=5, c=1
	t.AddChild(t.Root(), 2, 8)         // w=2, c=8
	t.AddChild(fast, 6, 2)             // deeper worker

	// The bandwidth-centric theorem: optimal steady-state rate and the
	// fluid schedule attaining it.
	opt := bwcs.Optimal(t)
	fmt.Printf("optimal steady-state rate: %s tasks/timestep (= %.4f)\n",
		opt.Rate, opt.Rate.Float64())
	for id := bwcs.NodeID(0); int(id) < t.Len(); id++ {
		fmt.Printf("  node %d: %-9s computes at %.4f tasks/timestep\n",
			id, opt.Class(t, id), opt.NodeRate[id].Float64())
	}

	// Run the autonomous protocol: every node decides locally, requesting
	// tasks when buffers free and serving the fastest-communicating child
	// first, preempting slower in-flight sends.
	sum, err := bwcs.Evaluate(t, bwcs.IC(3), 10_000)
	if err != nil {
		log.Fatal(err)
	}
	measured := float64(len(sum.Result.Completions)) / float64(sum.Result.Makespan)
	fmt.Printf("\nsimulated 10000 tasks in %d timesteps: %.4f tasks/timestep (%.2f%% of optimal)\n",
		sum.Result.Makespan, measured, 100*measured/opt.Rate.Float64())
	if sum.Reached {
		fmt.Printf("reached the optimal steady state at window %d\n", sum.Onset)
	} else {
		fmt.Println("did not reach the optimal steady state")
	}
}
