// Adaptive: the paper's Section 4.2.3 adaptability scenario. The platform
// changes while the application runs — network contention triples P1's
// communication time, then later the contention clears and P1's CPU
// becomes three times faster — and the autonomous protocol re-converges to
// each phase's optimal rate without any global coordination, because every
// decision uses only locally measured information.
package main

import (
	"fmt"
	"log"

	"bwcs"
)

func main() {
	const tasks = 3000
	t := bwcs.ExampleTree()

	// Optimal rates of the three phases.
	phase1 := bwcs.Optimal(t).Rate
	contended := bwcs.ExampleTree()
	contended.SetC(1, 3)
	phase2 := bwcs.Optimal(contended).Rate
	upgraded := bwcs.ExampleTree()
	upgraded.SetW(1, 1)
	phase3 := bwcs.Optimal(upgraded).Rate

	res, err := bwcs.Simulate(bwcs.SimConfig{
		Tree:     t,
		Protocol: bwcs.NonICFixed(2),
		Tasks:    tasks,
		Mutations: []bwcs.Mutation{
			{AfterTasks: 1000, Node: 1, C: 3},       // network contention hits P1
			{AfterTasks: 2000, Node: 1, C: 1, W: 1}, // contention clears; P1's CPU frees up
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	rate := func(from, to int64) float64 {
		dt := res.Completions[to-1] - res.Completions[from-1]
		return float64(to-from) / float64(dt)
	}
	report := func(name string, measured float64, opt bwcs.Rat) {
		fmt.Printf("%-34s measured %.5f  optimal %.5f  (%.1f%%)\n",
			name, measured, opt.Float64(), 100*measured/opt.Float64())
	}
	fmt.Printf("3000 tasks on the Figure 1 platform, %s; platform mutates at 1000 and 2000 tasks\n\n",
		bwcs.NonICFixed(2))
	// Skip the first quarter of each phase so startup and re-adaptation
	// transients do not blur the steady-state comparison.
	report("phase 1 (c1=1, w1=3)", rate(250, 1000), phase1)
	report("phase 2 (c1=3, w1=3, contended)", rate(1250, 2000), phase2)
	report("phase 3 (c1=1, w1=1, upgraded)", rate(2250, 3000), phase3)
	fmt.Printf("\ntotal makespan %d timesteps; the protocol tracked every phase's optimum autonomously\n", res.Makespan)
}
