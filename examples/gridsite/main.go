// Gridsite: the paper's Figure 1 three-site Grid platform. Compares the
// autonomous protocols (and a deliberately wrong compute-centric baseline)
// on the same application, showing why priorities must follow
// communication capability rather than compute speed.
package main

import (
	"fmt"
	"log"

	"bwcs"
)

func main() {
	const tasks = 10_000
	t := bwcs.ExampleTree()
	opt := bwcs.Optimal(t)

	fmt.Printf("Figure 1 platform: %d nodes across 3 sites, optimal rate %s (= %.4f tasks/timestep)\n\n",
		t.Len(), opt.Rate, opt.Rate.Float64())
	fmt.Println("optimal fluid schedule:")
	for id := bwcs.NodeID(0); int(id) < t.Len(); id++ {
		fmt.Printf("  P%d: w=%d c=%d  %-9s rate %.4f\n",
			id, t.W(id), t.C(id), opt.Class(t, id), opt.NodeRate[id].Float64())
	}

	protocols := []bwcs.Protocol{
		bwcs.IC(3),
		bwcs.IC(1),
		bwcs.NonIC(1),
		bwcs.NonICFixed(2),
		bwcs.IC(3).WithOrder(bwcs.ComputeCentric), // the wrong priority, as a baseline
	}

	fmt.Printf("\n%-28s %10s %12s %10s %10s\n", "protocol", "makespan", "rate", "% optimal", "buffers")
	for _, p := range protocols {
		res, err := bwcs.Simulate(bwcs.SimConfig{Tree: t, Protocol: p, Tasks: tasks})
		if err != nil {
			log.Fatal(err)
		}
		rate := float64(tasks) / float64(res.Makespan)
		fmt.Printf("%-28s %10d %12.5f %9.2f%% %10d\n",
			p, res.Makespan, rate, 100*rate/opt.Rate.Float64(), res.MaxNodeBuffers())
	}
	fmt.Println("\nall variants track the optimum on this small CPU-bound platform — but note the")
	fmt.Println("non-IC growth protocol's buffer explosion; on bandwidth-starved platforms the")
	fmt.Println("orderings separate too (run: bwexp -exp ablation-policy)")
}
