// Liveoverlay: the paper's protocol running over real TCP sockets, not a
// simulator — an in-process demonstration of the live package that
// cmd/bwnode deploys across machines.
//
// A root with a deliberately slow CPU dispatches 200 tasks. Two workers
// join over loopback TCP: both have identical CPUs, but one sits behind an
// emulated slow link. The root measures each link as it sends (an EWMA of
// chunk times — purely local information) and routes work
// bandwidth-centrically; a third worker joins halfway through the run and
// is folded in automatically.
package main

import (
	"fmt"
	"log"
	"time"

	"bwcs/live"
)

func main() {
	const tasks = 200

	compute := func(d time.Duration) live.ComputeFunc {
		return func(t live.Task) ([]byte, error) {
			time.Sleep(d) // stand-in for real per-task work
			return []byte{byte(t.ID)}, nil
		}
	}

	// Emulated link bandwidth: "farworker" is behind a 20x slower link.
	linkDelay := func(child string) time.Duration {
		if child == "farworker" {
			return 10 * time.Millisecond
		}
		return 500 * time.Microsecond
	}

	root, err := live.Start(live.Config{
		Name: "root", Listen: "127.0.0.1:0", Buffers: 3,
		Compute:   compute(50 * time.Millisecond),
		LinkDelay: linkDelay,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()

	near, err := live.Start(live.Config{Name: "nearworker", Parent: root.Addr(), Buffers: 3, Compute: compute(3 * time.Millisecond)})
	if err != nil {
		log.Fatal(err)
	}
	defer near.Close()
	far, err := live.Start(live.Config{Name: "farworker", Parent: root.Addr(), Buffers: 3, Compute: compute(3 * time.Millisecond)})
	if err != nil {
		log.Fatal(err)
	}
	defer far.Close()

	// A latecomer joins mid-run with zero coordination: it just connects
	// and starts requesting tasks.
	go func() {
		time.Sleep(300 * time.Millisecond)
		late, err := live.Start(live.Config{Name: "latecomer", Parent: root.Addr(), Buffers: 3, Compute: compute(3 * time.Millisecond)})
		if err != nil {
			log.Print(err)
			return
		}
		defer late.Close()
		time.Sleep(5 * time.Second) // serve until the demo ends
	}()

	work := make([]live.Task, tasks)
	for i := range work {
		work[i] = live.Task{ID: uint64(i + 1), Payload: make([]byte, 2048)}
	}
	start := time.Now()
	results, err := root.Run(work, 2*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	byOrigin := map[string]int{}
	for _, r := range results {
		byOrigin[r.Origin]++
	}
	fmt.Printf("%d tasks over live TCP in %v (%.0f tasks/s)\n\n", len(results), elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	for _, name := range []string{"root", "nearworker", "farworker", "latecomer"} {
		fmt.Printf("  %-12s computed %3d tasks\n", name, byOrigin[name])
	}
	s := root.Stats()
	fmt.Printf("\nroot send port: %d forwards, %d preemptions; per child: %v\n", s.Forwarded, s.Interrupts, s.ByChild)
	if byOrigin["nearworker"] > byOrigin["farworker"] {
		fmt.Println("the near (fast-link) worker was preferred — bandwidth-centric, from measured link times only")
	}
}
