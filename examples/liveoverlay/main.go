// Liveoverlay: the paper's protocol running over real TCP sockets, not a
// simulator — an in-process demonstration of the live package that
// cmd/bwnode deploys across machines.
//
// A root with a deliberately slow CPU dispatches 200 tasks. Two workers
// join over loopback TCP: both have identical CPUs, but one sits behind an
// emulated slow link. The root measures each link as it sends (an EWMA of
// chunk times — purely local information) and routes work
// bandwidth-centrically; a third worker joins halfway through the run and
// is folded in automatically. The near worker's connection is severed
// mid-run by a scripted fault — it reconnects with backoff and the run
// completes anyway, every result delivered exactly once.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"bwcs/live"
)

func main() {
	const tasks = 200

	compute := func(d time.Duration) live.ComputeFunc {
		return func(t live.Task) ([]byte, error) {
			time.Sleep(d) // stand-in for real per-task work
			return []byte{byte(t.ID)}, nil
		}
	}

	// Emulated link bandwidth: "farworker" is behind a 20x slower link.
	linkDelay := func(child string) time.Duration {
		if child == "farworker" {
			return 10 * time.Millisecond
		}
		return 500 * time.Microsecond
	}

	root, err := live.Start("root",
		live.WithListen("127.0.0.1:0"),
		live.WithCompute(compute(50*time.Millisecond)),
		live.WithLinkDelay(linkDelay),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer root.Close()

	// The near worker's uplink is severed by a scripted fault after its
	// 40th received chunk — standing in for a flaky network. Its reconnect
	// machinery re-dials the root and the run absorbs the blip.
	nearFaults := live.NewFaultPlan(live.FaultRule{
		Link: "parent", Dir: live.FaultRecv, Kind: live.FrameChunk,
		After: 40, Op: live.FaultSever,
	})
	near, err := live.Start("nearworker",
		live.WithParent(root.Addr()),
		live.WithCompute(compute(3*time.Millisecond)),
		live.WithFaultPlan(nearFaults),
		live.WithReconnect(20*time.Millisecond, 200*time.Millisecond, 5),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer near.Close()
	far, err := live.Start("farworker",
		live.WithParent(root.Addr()),
		live.WithCompute(compute(3*time.Millisecond)),
	)
	if err != nil {
		log.Fatal(err)
	}
	defer far.Close()

	// A latecomer joins mid-run with zero coordination: it just connects
	// and starts requesting tasks.
	go func() {
		time.Sleep(300 * time.Millisecond)
		late, err := live.Start("latecomer",
			live.WithParent(root.Addr()),
			live.WithCompute(compute(3*time.Millisecond)),
		)
		if err != nil {
			log.Print(err)
			return
		}
		defer late.Close()
		time.Sleep(5 * time.Second) // serve until the demo ends
	}()

	work := make([]live.Task, tasks)
	for i := range work {
		work[i] = live.Task{ID: uint64(i + 1), Payload: make([]byte, 2048)}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	start := time.Now()
	results, err := root.Run(ctx, work)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	byOrigin := map[string]int{}
	for _, r := range results {
		byOrigin[r.Origin]++
	}
	fmt.Printf("%d tasks over live TCP in %v (%.0f tasks/s)\n\n", len(results), elapsed.Round(time.Millisecond),
		float64(len(results))/elapsed.Seconds())
	for _, name := range []string{"root", "nearworker", "farworker", "latecomer"} {
		fmt.Printf("  %-12s computed %3d tasks\n", name, byOrigin[name])
	}
	s := root.Stats()
	fmt.Printf("\nroot send port: %d forwards, %d preemptions; per child: %v\n", s.Forwarded, s.Interrupts, s.ByChild)
	if byOrigin["nearworker"] > byOrigin["farworker"] {
		fmt.Println("the near (fast-link) worker was preferred — bandwidth-centric, from measured link times only")
	}
	if ns := near.Stats(); ns.Reconnects > 0 {
		fmt.Printf("nearworker survived a severed link: %d reconnect(s); root requeued %d, resumed %d transfers\n",
			ns.Reconnects, s.Requeued, s.Resumed)
	}
}
