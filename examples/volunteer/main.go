// Volunteer: a SETI@home-style volunteer computing scenario — the class of
// application the paper's introduction motivates. A repository dispatches
// a large batch of identical work units over a random wide-area overlay;
// mid-run, a whole new site of volunteer machines joins under an existing
// node, and the autonomous protocol folds them in with no global
// coordination: the new nodes simply start requesting tasks from their
// parent.
package main

import (
	"fmt"
	"log"

	"bwcs"
)

func main() {
	const tasks = 20_000

	// A ~100-node wide-area platform from the paper's generator.
	params := bwcs.DefaultTreeParams()
	params.MinNodes, params.MaxNodes = 100, 100
	base := bwcs.GenerateTree(params, 11, 0)

	// A new volunteer site: one gateway with eight fast machines.
	site := bwcs.NewTree(2000)
	for i := 0; i < 8; i++ {
		site.AddChild(site.Root(), 1500+int64(i)*100, 5)
	}

	before := bwcs.Optimal(base).Rate
	grown := base.Clone()
	gateway := grown.Attach(bwcs.NodeID(0), site, 2)
	after := bwcs.Optimal(grown).Rate
	fmt.Printf("platform: %d nodes; optimal rate %.5f tasks/timestep\n", base.Len(), before.Float64())
	fmt.Printf("after site join (+%d nodes under the root, gateway %d): optimal rate %.5f (+%.1f%%)\n\n",
		site.Len(), gateway, after.Float64(), 100*(after.Float64()/before.Float64()-1))

	static, err := bwcs.Simulate(bwcs.SimConfig{Tree: base, Protocol: bwcs.IC(3), Tasks: tasks})
	if err != nil {
		log.Fatal(err)
	}
	dynamic, err := bwcs.Simulate(bwcs.SimConfig{
		Tree:     base,
		Protocol: bwcs.IC(3),
		Tasks:    tasks,
		Attachments: []bwcs.AttachMutation{
			{AfterTasks: tasks / 4, Parent: 0, Subtree: site, C: 2},
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s makespan %8d  whole-run rate %.5f\n", "static platform",
		static.Makespan, float64(tasks)/float64(static.Makespan))
	fmt.Printf("%-34s makespan %8d  whole-run rate %.5f\n", "volunteers join at 25%",
		dynamic.Makespan, float64(tasks)/float64(dynamic.Makespan))

	var joined int64
	for i := base.Len(); i < dynamic.Tree.Len(); i++ {
		joined += dynamic.Nodes[i].Computed
	}
	fmt.Printf("\nthe %d joining volunteers computed %d of the %d tasks (%.1f%%)\n",
		dynamic.Tree.Len()-base.Len(), joined, tasks, 100*float64(joined)/tasks)
	if dynamic.Makespan < static.Makespan {
		fmt.Println("joining mid-run shortened the application with zero reconfiguration of existing nodes")
	}
}
