// Verify: the repository's correctness story on one small platform, end
// to end — four independent methods agree on what "optimal" means and
// that the autonomous protocol achieves it:
//
//  1. the bandwidth-centric theorem computes the optimal steady-state
//     rate analytically;
//  2. exhaustive search over every valid schedule confirms no schedule
//     beats the rate (within the theory's additive startup constant);
//  3. the autonomous protocol — using only local information — matches
//     the exhaustive optimum's makespan to within that same constant;
//  4. periodicity detection proves the protocol's steady-state rate
//     equals the theorem's rate exactly, not approximately.
package main

import (
	"fmt"
	"log"

	"bwcs"

	"bwcs/internal/brute"
	"bwcs/internal/steady"
)

func main() {
	// A platform small enough for exhaustive search but rich enough to be
	// interesting: the port can't keep every child saturated.
	t := bwcs.NewTree(4)
	t.AddChild(t.Root(), 2, 1) // saturable
	t.AddChild(t.Root(), 2, 2) // partially fed (gets the leftover port)

	// 1. The theorem.
	opt := bwcs.Optimal(t)
	fmt.Printf("1. theorem: optimal steady-state rate = %s tasks/timestep\n", opt.Rate)

	// 2. Exhaustive search, small horizon.
	const smallTasks = 8
	var slack int64
	for id := bwcs.NodeID(0); int(id) < t.Len(); id++ {
		slack += t.W(id) + t.C(id)
	}
	res, err := brute.Search(t, smallTasks, brute.Options{})
	if err != nil {
		log.Fatal(err)
	}
	bound := float64(smallTasks) / opt.Rate.Float64()
	fmt.Printf("2. exhaustive search over all schedules: %d tasks need >= %d timesteps\n", smallTasks, res.Makespan)
	fmt.Printf("   steady-state bound %.1f - startup constant %d <= %d  (theorem respected; %d states searched)\n",
		bound, slack, res.Makespan, res.States)

	// 3. The autonomous protocol on the same instance.
	small, err := bwcs.Simulate(bwcs.SimConfig{Tree: t, Protocol: bwcs.IC(3), Tasks: smallTasks})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("3. autonomous IC FB=3 finishes the same %d tasks in %d timesteps (optimum %d, gap %d <= %d)\n",
		smallTasks, small.Makespan, res.Makespan, int64(small.Makespan)-int64(res.Makespan), slack)

	// 4. Long horizon: exact periodicity.
	long, err := bwcs.Evaluate(t, bwcs.IC(3), 4000)
	if err != nil {
		log.Fatal(err)
	}
	det := steady.Detect(long.Result.Completions, steady.Options{})
	fmt.Printf("4. over 4000 tasks the protocol settles into %s\n", det)
	fmt.Printf("   detected rate %s == theorem rate %s: %v — exact, no tolerances\n",
		det.Rate, opt.Rate, det.Classify(opt.TreeWeight) == steady.Optimal)
}
