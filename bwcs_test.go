package bwcs

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"
)

func TestQuickstartFlow(t *testing.T) {
	tr := NewTree(10)
	tr.AddChild(tr.Root(), 5, 1)
	tr.AddChild(tr.Root(), 2, 8)
	sum, err := Evaluate(tr, IC(3), 2000)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if sum.Optimal.Rate.Sign() <= 0 {
		t.Fatalf("non-positive optimal rate")
	}
	if got := len(sum.Result.Completions); got != 2000 {
		t.Fatalf("completions = %d", got)
	}
	if !sum.Reached {
		t.Fatalf("bandwidth-rich 3-node platform did not reach optimal")
	}
	if sum.Onset <= OnsetThreshold {
		t.Fatalf("onset %d not after threshold %d", sum.Onset, OnsetThreshold)
	}
}

func TestEvaluateRejectsTinyRuns(t *testing.T) {
	if _, err := Evaluate(NewTree(5), IC(1), 1); err == nil {
		t.Fatalf("accepted 1-task run")
	}
}

func TestProtocolsConstructors(t *testing.T) {
	if p := IC(3); !p.Interruptible || p.InitialBuffers != 3 {
		t.Fatalf("IC wrong: %+v", p)
	}
	if p := NonIC(1); p.Interruptible || !p.Grow {
		t.Fatalf("NonIC wrong: %+v", p)
	}
	if p := NonICFixed(2); p.Interruptible || p.Grow || p.InitialBuffers != 2 {
		t.Fatalf("NonICFixed wrong: %+v", p)
	}
}

func TestGenerateTreeDeterministic(t *testing.T) {
	a := GenerateTree(DefaultTreeParams(), 3, 14)
	b := GenerateTree(DefaultTreeParams(), 3, 14)
	if a.Len() != b.Len() {
		t.Fatalf("same-index trees differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("generated tree invalid: %v", err)
	}
}

func TestExampleTreeSimulates(t *testing.T) {
	sum, err := Evaluate(ExampleTree(), NonICFixed(2), 1000)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if sum.Result.UsedCount() < 2 {
		t.Fatalf("example platform barely used: %d nodes", sum.Result.UsedCount())
	}
}

func TestTreeCodecRoundTripViaFacade(t *testing.T) {
	tr := ExampleTree()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	back, err := DecodeTree(&buf)
	if err != nil {
		t.Fatalf("DecodeTree: %v", err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("round trip lost nodes")
	}
}

func TestMutationsThroughFacade(t *testing.T) {
	res, err := Simulate(SimConfig{
		Tree:      ExampleTree(),
		Protocol:  NonICFixed(2),
		Tasks:     500,
		Mutations: []Mutation{{AfterTasks: 100, Node: 1, C: 3}},
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Tree.C(1) != 3 {
		t.Fatalf("mutation not applied")
	}
}

func TestRateSeriesThroughFacade(t *testing.T) {
	sum, err := Evaluate(ExampleTree(), IC(3), 800)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	s, err := NewRateSeries(sum.Result.Completions, sum.Optimal.TreeWeight)
	if err != nil {
		t.Fatalf("NewRateSeries: %v", err)
	}
	if s.Windows() != 400 {
		t.Fatalf("windows = %d", s.Windows())
	}
}

func TestTimelineThroughFacade(t *testing.T) {
	sum, err := Evaluate(ExampleTree(), IC(3), 2000, WithTimeline(64))
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if sum.Timeline == nil {
		t.Fatalf("WithTimeline set but Summary.Timeline nil")
	}
	rate := sum.Timeline.Find("rate")
	if rate == nil || len(rate.Points) == 0 {
		t.Fatalf("timeline missing the rate series: %+v", sum.Timeline)
	}
	if !sum.Converged {
		t.Fatalf("steady 2000-task run did not converge")
	}
	if sum.ConvergedAt <= 0 || sum.ConvergedAt > sum.Result.Makespan {
		t.Fatalf("ConvergedAt = %d outside (0, %d]", sum.ConvergedAt, sum.Result.Makespan)
	}

	// Without the option the run pays nothing and reports nothing.
	plain, err := Evaluate(ExampleTree(), IC(3), 2000)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if plain.Timeline != nil || plain.Converged || plain.ConvergedAt != 0 {
		t.Fatalf("timeline fields set without WithTimeline: %+v", plain)
	}
}

func TestSimulateContextMatchesSimulate(t *testing.T) {
	cfg := SimConfig{Tree: ExampleTree(), Protocol: IC(3), Tasks: 500}
	plain, err := Simulate(cfg)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	ctxed, err := SimulateContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("SimulateContext: %v", err)
	}
	if plain.Makespan != ctxed.Makespan || plain.Steps != ctxed.Steps {
		t.Fatalf("context run diverged: makespan %v vs %v, steps %d vs %d",
			plain.Makespan, ctxed.Makespan, plain.Steps, ctxed.Steps)
	}
}

func TestSimulateContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // pre-canceled: the run must abort, not drain
	_, err := SimulateContext(ctx, SimConfig{Tree: ExampleTree(), Protocol: IC(3), Tasks: 5000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

func TestEvaluateContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := EvaluateContext(ctx, ExampleTree(), IC(3), 5000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want wrapped context.DeadlineExceeded", err)
	}
}

func TestEvaluateContextUncanceled(t *testing.T) {
	sum, err := EvaluateContext(context.Background(), ExampleTree(), IC(3), 800)
	if err != nil {
		t.Fatalf("EvaluateContext: %v", err)
	}
	if len(sum.Result.Completions) != 800 {
		t.Fatalf("completions = %d", len(sum.Result.Completions))
	}
}
